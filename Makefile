# Developer and CI entry points. `make ci` is the gate every change must
# pass: vet plus the full test suite under the race detector, so a dropped
# lock in the concurrent I/O engine fails the build rather than a user.

GO ?= go

.PHONY: all build vet test race bench ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Engine and experiment benchmarks (wall-clock + counted I/Os).
bench:
	$(GO) test -run xxx -bench 'BenchmarkVolumeBatchRead|BenchmarkAsync' -benchtime 3x .

ci: build vet race
