# Developer and CI entry points. `make ci` is the gate every change must
# pass: vet plus the full test suite under the race detector, so a dropped
# lock in the concurrent I/O engine fails the build rather than a user.
# The GitHub workflow (.github/workflows/ci.yml) runs lint + ci + cover on
# every push/PR and bench-json as a non-gating trajectory job.

GO ?= go

# Pinned lint/vuln tool versions — CI installs exactly these (never
# @latest, so a tool release cannot break the gate under anyone's feet).
STATICCHECK_VERSION ?= 2024.1.1
GOVULNCHECK_VERSION ?= v1.1.3

.PHONY: all build vet lint emlint staticcheck govulncheck tools test race cover bench bench-json ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Lint is gofmt cleanliness, vet, the repo's own emlint analyzers, and
# staticcheck when installed; CI fails if any of them flags anything.
lint: emlint staticcheck
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi
	$(GO) vet ./...

# The in-repo analyzers (cmd/emlint): poolbalance, pinpair, joinasync,
# closesink — the I/O-accounting disciplines. See CONTRIBUTING.md.
emlint:
	$(GO) run ./cmd/emlint ./...

# Gates in CI (which installs the pinned version via `make tools`); a dev
# box without the binary skips rather than fails, since the container may
# be offline.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (run 'make tools')"; \
	fi

# Non-gating everywhere: vulnerability reports inform, new CVE disclosures
# must not break unrelated merges.
govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (run 'make tools')"; \
	fi

# Install the pinned tool versions (needs network; CI runs this).
tools:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)

test:
	$(GO) test ./...

# -shuffle=on randomises test order within each package, so a test that
# leaks state into a sibling fails here instead of in a user's tree.
race:
	$(GO) test -race -shuffle=on ./...

# Coverage profile across every package, with a per-function summary.
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# Engine and experiment benchmarks (wall-clock + counted I/Os). The full
# suite — every experiment table plus the engine, async, and query-serving
# benchmarks — runs; -benchtime 3x keeps each at three iterations.
bench:
	$(GO) test -run xxx -bench . -benchtime 3x .

# Machine-readable benchmark trajectory: sync vs async sort/bulk-load, the
# write-behind and pipelined sort→index modes, the query-serving points
# (looped vs batched lookups, sync vs prefetched scans), the online
# store's mixed-workload points (buffered writes vs per-key inserts,
# serving quiesced vs through a drain) at D in {1,4}, the sharded
# serving points (merge-cut batch, stitched scan at S in {1,4}), and the
# robustness points (open-loop p50/p99 and shed profile at half and twice
# calibrated capacity, clean-vs-faulted serving with the retry audit),
# wall-clock and counted I/Os, written to BENCH_PR9.json. Committed once
# per PR so perf history accumulates as a diffable series
# (BENCH_PR3..PR8.json are the previous points).
bench-json:
	$(GO) run ./cmd/embench -json BENCH_PR9.json
	@cat BENCH_PR9.json

ci: build vet race
