# Developer and CI entry points. `make ci` is the gate every change must
# pass: vet plus the full test suite under the race detector, so a dropped
# lock in the concurrent I/O engine fails the build rather than a user.
# The GitHub workflow (.github/workflows/ci.yml) runs lint + ci + cover on
# every push/PR and bench-json as a non-gating trajectory job.

GO ?= go

.PHONY: all build vet lint test race cover bench bench-json ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Lint is gofmt cleanliness plus vet; CI fails if either flags anything.
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Coverage profile across every package, with a per-function summary.
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# Engine and experiment benchmarks (wall-clock + counted I/Os). The full
# suite — every experiment table plus the engine, async, and query-serving
# benchmarks — runs; -benchtime 3x keeps each at three iterations.
bench:
	$(GO) test -run xxx -bench . -benchtime 3x .

# Machine-readable benchmark trajectory: sync vs async sort/bulk-load, the
# write-behind and pipelined sort→index modes, the query-serving points
# (looped vs batched lookups, sync vs prefetched scans), and the online
# store's mixed-workload points (buffered writes vs per-key inserts,
# serving quiesced vs through a drain) at D in {1,4}, wall-clock and
# counted I/Os, written to BENCH_PR6.json. Committed once per PR so perf
# history accumulates as a diffable series (BENCH_PR3/PR4/PR5.json are the
# previous points).
bench-json:
	$(GO) run ./cmd/embench -json BENCH_PR6.json
	@cat BENCH_PR6.json

ci: build vet race
