package em

// Ablation benchmarks for the design choices DESIGN.md calls out: each
// sweeps one knob of one algorithm and reports counted I/Os, isolating the
// contribution of run formation, striping width, cache size, buffer-tree
// fanout, and memory for the blocked transpose.

import (
	"fmt"
	"math/rand"
	"testing"

	"em/internal/btree"
	"em/internal/buffertree"
	"em/internal/extsort"
	"em/internal/matrix"
	"em/internal/pdm"
	"em/internal/record"
	"em/internal/stream"
)

func ablEnv(blockBytes, memBlocks, disks int) (*pdm.Volume, *pdm.Pool) {
	vol := pdm.MustVolume(pdm.Config{BlockBytes: blockBytes, MemBlocks: memBlocks, Disks: disks})
	return vol, pdm.PoolFor(vol)
}

func ablRecords(n int) []record.Record {
	rng := rand.New(rand.NewSource(61))
	rs := make([]record.Record, n)
	for i := range rs {
		rs[i] = record.Record{Key: rng.Uint64(), Val: uint64(i)}
	}
	return rs
}

// BenchmarkAblationRunFormation isolates the run-formation choice: total
// merge-sort I/Os with load-sort versus replacement-selection runs. Longer
// runs mean fewer of them, which can save a whole merge pass.
func BenchmarkAblationRunFormation(b *testing.B) {
	for _, mode := range []extsort.RunMode{extsort.LoadSort, extsort.ReplacementSelection} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				vol, pool := ablEnv(1024, 8, 1) // tiny memory: passes matter
				f, err := stream.FromSlice(vol, pool, record.RecordCodec{}, ablRecords(1<<15))
				if err != nil {
					b.Fatal(err)
				}
				vol.Stats().Reset()
				out, err := extsort.MergeSort(f, pool, record.Record.Less, &extsort.Options{RunMode: mode})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(vol.Stats().Total()), "ios")
				}
				out.Release()
			}
		})
	}
}

// BenchmarkAblationStripingWidth fixes D=4 disks and sweeps the reader/
// writer striping width: width 1 ignores the parallel disks (steps =
// transfers), width D exploits them. The knob isolates stream-level
// striping from the rest of the sort.
func BenchmarkAblationStripingWidth(b *testing.B) {
	const d = 4
	for _, width := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("width=%d", width), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				vol, pool := ablEnv(1024, 32, d)
				f, err := stream.FromSlice(vol, pool, record.RecordCodec{}, ablRecords(1<<15))
				if err != nil {
					b.Fatal(err)
				}
				vol.Stats().Reset()
				out, err := extsort.MergeSort(f, pool, record.Record.Less, &extsort.Options{Width: width})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(vol.Stats().Total()), "ios")
					b.ReportMetric(float64(vol.Stats().Steps), "steps")
				}
				out.Release()
			}
		})
	}
}

// BenchmarkAblationBTreeCache sweeps the B-tree's buffer-manager size for a
// random-insert workload: more cached nodes absorb more path re-reads, the
// classic buffer-pool trade-off.
func BenchmarkAblationBTreeCache(b *testing.B) {
	for _, frames := range []int{3, 8, 16, 32} {
		b.Run(fmt.Sprintf("cache=%d", frames), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				vol, pool := ablEnv(1024, 64, 1)
				bt, err := btree.New(vol, pool, frames)
				if err != nil {
					b.Fatal(err)
				}
				rng := rand.New(rand.NewSource(67))
				vol.Stats().Reset()
				for j := 0; j < 1<<13; j++ {
					if _, err := bt.Insert(rng.Uint64(), uint64(j)); err != nil {
						b.Fatal(err)
					}
				}
				if err := bt.Close(); err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(vol.Stats().Total()), "ios")
				}
			}
		})
	}
}

// BenchmarkAblationBufferTreeFanout sweeps the buffer tree's fanout at a
// fixed buffer size: higher fanout means shallower trees but smaller
// per-child flush batches.
func BenchmarkAblationBufferTreeFanout(b *testing.B) {
	for _, fanout := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("fanout=%d", fanout), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				vol, pool := ablEnv(1024, 32, 1)
				tr, err := buffertree.New(vol, pool, buffertree.Config{Fanout: fanout, BufferRecords: 1024})
				if err != nil {
					b.Fatal(err)
				}
				rng := rand.New(rand.NewSource(71))
				vol.Stats().Reset()
				for _, k := range rng.Perm(1 << 14) {
					if err := tr.Insert(uint64(k), uint64(k)); err != nil {
						b.Fatal(err)
					}
				}
				out, err := tr.Seal()
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(vol.Stats().Total()), "ios")
				}
				out.Release()
			}
		})
	}
}

// BenchmarkAblationTransposeMemory sweeps the frame budget for the blocked
// transpose of a fixed matrix: larger tiles (√(M·B) on a side) push the
// advantage over the naive walk toward the full factor of B.
func BenchmarkAblationTransposeMemory(b *testing.B) {
	for _, frames := range []int{4, 8, 16, 64} {
		b.Run(fmt.Sprintf("mem=%d", frames), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				vol, pool := ablEnv(1024, frames, 1)
				data := make([]float64, 128*128)
				for j := range data {
					data[j] = float64(j)
				}
				m, err := matrix.FromSlice(vol, pool, 128, 128, data)
				if err != nil {
					b.Fatal(err)
				}
				vol.Stats().Reset()
				mt, err := matrix.TransposeBlocked(m, pool)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(vol.Stats().Total()), "ios")
				}
				mt.Release()
				m.Release()
			}
		})
	}
}

// BenchmarkAblationBlockSize sweeps the device's block size for a fixed
// byte volume of data: the survey's point that every bound improves with B
// until memory frames run out.
func BenchmarkAblationBlockSize(b *testing.B) {
	const dataBytes = 1 << 22 // 4 MiB of records
	for _, bb := range []int{512, 1024, 4096, 16384} {
		b.Run(fmt.Sprintf("B=%d", bb), func(b *testing.B) {
			n := dataBytes / 16
			for i := 0; i < b.N; i++ {
				vol, pool := ablEnv(bb, 16, 1)
				f, err := stream.FromSlice(vol, pool, record.RecordCodec{}, ablRecords(n))
				if err != nil {
					b.Fatal(err)
				}
				vol.Stats().Reset()
				out, err := extsort.MergeSort(f, pool, record.Record.Less, nil)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(vol.Stats().Total()), "ios")
				}
				out.Release()
			}
		})
	}
}
