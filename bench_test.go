package em

// bench_test.go regenerates every table and figure of the survey's
// evaluation, one benchmark per experiment id (see DESIGN.md §3 and
// EXPERIMENTS.md). Each iteration runs the full experiment on a fresh
// instrumented volume; the counted block I/Os — the survey's own currency —
// are attached as custom metrics (suffix "ios" or named per algorithm), so
// `go test -bench .` reports both wall-clock and model cost.
//
// The cmd/embench tool prints the same experiments as human-readable tables.

import (
	"fmt"
	"testing"

	"em/internal/experiments"
)

// lastCells extracts the last row of a table.
func lastCells(t *experiments.Table) (map[string]float64, []string) {
	if len(t.Rows) == 0 {
		return nil, nil
	}
	r := t.Rows[len(t.Rows)-1]
	return r.Cells, r.Order
}

func reportTable(b *testing.B, t *experiments.Table) {
	cells, order := lastCells(t)
	for _, k := range order {
		b.ReportMetric(cells[k], k)
	}
}

// BenchmarkT1FundamentalBounds regenerates the fundamental-bounds table:
// measured Scan, Sort and Search against their Θ-formulas.
func BenchmarkT1FundamentalBounds(b *testing.B) {
	for _, n := range []int{1 << 14, 1 << 16, 1 << 18} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := experiments.T1FundamentalBounds([]int{n})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					reportTable(b, t)
				}
			}
		})
	}
}

// BenchmarkT2SortingAlgorithms regenerates the sorting table: merge sort ≈
// distribution sort ≈ Sort(N), B-tree insertion sort worse by ≈ B/log m.
func BenchmarkT2SortingAlgorithms(b *testing.B) {
	for _, n := range []int{1 << 14, 1 << 16} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := experiments.T2SortingAlgorithms([]int{n})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					reportTable(b, t)
				}
			}
		})
	}
}

// BenchmarkF1MergePassesVsMemory regenerates the passes-vs-memory figure.
func BenchmarkF1MergePassesVsMemory(b *testing.B) {
	for _, fanin := range []int{2, 4, 8, 16, 64} {
		b.Run(fmt.Sprintf("fanin=%d", fanin), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := experiments.F1MergePassesVsMemory(1<<16, []int{fanin})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					reportTable(b, t)
				}
			}
		})
	}
}

// BenchmarkF2RunFormation regenerates the run-length figure: replacement
// selection vs load-sort on random and nearly-sorted inputs.
func BenchmarkF2RunFormation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.F2RunFormation(1 << 16)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			// Report the headline number: replacement-selection run length
			// over M on random input (row 1).
			b.ReportMetric(t.Rows[1].Cells["lenOverM"], "replsel-lenOverM")
			b.ReportMetric(t.Rows[0].Cells["lenOverM"], "loadsort-lenOverM")
		}
	}
}

// BenchmarkF3DiskStriping regenerates the striping figure across D.
func BenchmarkF3DiskStriping(b *testing.B) {
	for _, d := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("D=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := experiments.F3DiskStriping(1<<15, []int{d})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					reportTable(b, t)
				}
			}
		})
	}
}

// BenchmarkT3Permuting regenerates the permuting table and its crossover.
func BenchmarkT3Permuting(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 13, 1 << 16} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := experiments.T3Permuting([]int{n})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					reportTable(b, t)
				}
			}
		})
	}
}

// BenchmarkT4Transpose regenerates the transpose table.
func BenchmarkT4Transpose(b *testing.B) {
	for _, s := range []int{64, 128, 256} {
		b.Run(fmt.Sprintf("%dx%d", s, s), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := experiments.T4Transpose([]int{s})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					reportTable(b, t)
				}
			}
		})
	}
}

// BenchmarkT5OnlineSearch regenerates the online-search table: binary search
// vs B-tree vs extendible hashing, in reads per lookup.
func BenchmarkT5OnlineSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.T5OnlineSearch(1<<17, 300)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportTable(b, t)
		}
	}
}

// BenchmarkT6BufferTreeVsBTree regenerates the batched-update table.
func BenchmarkT6BufferTreeVsBTree(b *testing.B) {
	for _, n := range []int{1 << 13, 1 << 15} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := experiments.T6BufferTreeVsBTree([]int{n})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					reportTable(b, t)
				}
			}
		})
	}
}

// BenchmarkT7PriorityQueue regenerates the priority-queue table.
func BenchmarkT7PriorityQueue(b *testing.B) {
	for _, n := range []int{1 << 13, 1 << 15} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := experiments.T7PriorityQueue([]int{n})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					reportTable(b, t)
				}
			}
		})
	}
}

// BenchmarkF4ListRanking regenerates the list-ranking figure.
func BenchmarkF4ListRanking(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 15} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := experiments.F4ListRanking([]int{n})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					reportTable(b, t)
				}
			}
		})
	}
}

// BenchmarkF5ExternalBFS regenerates the BFS figure.
func BenchmarkF5ExternalBFS(b *testing.B) {
	for _, v := range []int{1000, 4000} {
		b.Run(fmt.Sprintf("V=%d", v), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := experiments.F5ExternalBFS([]int{v})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					reportTable(b, t)
				}
			}
		})
	}
}

// BenchmarkT8DistributionSweep regenerates the segment-intersection table.
func BenchmarkT8DistributionSweep(b *testing.B) {
	for _, n := range []int{512, 2048} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := experiments.T8DistributionSweep([]int{n})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					reportTable(b, t)
				}
			}
		})
	}
}

// BenchmarkF6Paging regenerates the paging-policy figure.
func BenchmarkF6Paging(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.F6Paging(48, 32, 20)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			// Loop workload is the interesting row: LRU pathological.
			loop := t.Rows[0]
			for _, k := range loop.Order {
				b.ReportMetric(loop.Cells[k], "loop-"+k)
			}
		}
	}
}

// BenchmarkF7FFT regenerates the FFT figure: six-step external FFT vs
// unblocked butterflies.
func BenchmarkF7FFT(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 12} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := experiments.F7FFT([]int{n})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					reportTable(b, t)
				}
			}
		})
	}
}

// BenchmarkF8TimeForward regenerates the time-forward-processing figure.
func BenchmarkF8TimeForward(b *testing.B) {
	for _, v := range []int{1000, 4000} {
		b.Run(fmt.Sprintf("V=%d", v), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := experiments.F8TimeForward([]int{v})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					reportTable(b, t)
				}
			}
		})
	}
}

// BenchmarkT9BulkLoad regenerates the index-construction table.
func BenchmarkT9BulkLoad(b *testing.B) {
	for _, n := range []int{1 << 13, 1 << 15} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := experiments.T9BulkLoad([]int{n})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					reportTable(b, t)
				}
			}
		})
	}
}
