package em

// bench_test.go regenerates every table and figure of the survey's
// evaluation, one benchmark per experiment id (see DESIGN.md §3 and
// EXPERIMENTS.md). Each iteration runs the full experiment on a fresh
// instrumented volume; the counted block I/Os — the survey's own currency —
// are attached as custom metrics (suffix "ios" or named per algorithm), so
// `go test -bench .` reports both wall-clock and model cost.
//
// The cmd/embench tool prints the same experiments as human-readable tables.

import (
	"fmt"
	"testing"
	"time"

	"em/internal/experiments"
)

// lastCells extracts the last row of a table.
func lastCells(t *experiments.Table) (map[string]float64, []string) {
	if len(t.Rows) == 0 {
		return nil, nil
	}
	r := t.Rows[len(t.Rows)-1]
	return r.Cells, r.Order
}

func reportTable(b *testing.B, t *experiments.Table) {
	cells, order := lastCells(t)
	for _, k := range order {
		b.ReportMetric(cells[k], k)
	}
}

// BenchmarkT1FundamentalBounds regenerates the fundamental-bounds table:
// measured Scan, Sort and Search against their Θ-formulas.
func BenchmarkT1FundamentalBounds(b *testing.B) {
	for _, n := range []int{1 << 14, 1 << 16, 1 << 18} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := experiments.T1FundamentalBounds([]int{n})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					reportTable(b, t)
				}
			}
		})
	}
}

// BenchmarkT2SortingAlgorithms regenerates the sorting table: merge sort ≈
// distribution sort ≈ Sort(N), B-tree insertion sort worse by ≈ B/log m.
func BenchmarkT2SortingAlgorithms(b *testing.B) {
	for _, n := range []int{1 << 14, 1 << 16} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := experiments.T2SortingAlgorithms([]int{n})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					reportTable(b, t)
				}
			}
		})
	}
}

// BenchmarkF1MergePassesVsMemory regenerates the passes-vs-memory figure.
func BenchmarkF1MergePassesVsMemory(b *testing.B) {
	for _, fanin := range []int{2, 4, 8, 16, 64} {
		b.Run(fmt.Sprintf("fanin=%d", fanin), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := experiments.F1MergePassesVsMemory(1<<16, []int{fanin})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					reportTable(b, t)
				}
			}
		})
	}
}

// BenchmarkF2RunFormation regenerates the run-length figure: replacement
// selection vs load-sort on random and nearly-sorted inputs.
func BenchmarkF2RunFormation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.F2RunFormation(1 << 16)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			// Report the headline number: replacement-selection run length
			// over M on random input (row 1).
			b.ReportMetric(t.Rows[1].Cells["lenOverM"], "replsel-lenOverM")
			b.ReportMetric(t.Rows[0].Cells["lenOverM"], "loadsort-lenOverM")
		}
	}
}

// BenchmarkF3DiskStriping regenerates the striping figure across D.
func BenchmarkF3DiskStriping(b *testing.B) {
	for _, d := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("D=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := experiments.F3DiskStriping(1<<15, []int{d})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					reportTable(b, t)
				}
			}
		})
	}
}

// BenchmarkT3Permuting regenerates the permuting table and its crossover.
func BenchmarkT3Permuting(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 13, 1 << 16} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := experiments.T3Permuting([]int{n})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					reportTable(b, t)
				}
			}
		})
	}
}

// BenchmarkT4Transpose regenerates the transpose table.
func BenchmarkT4Transpose(b *testing.B) {
	for _, s := range []int{64, 128, 256} {
		b.Run(fmt.Sprintf("%dx%d", s, s), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := experiments.T4Transpose([]int{s})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					reportTable(b, t)
				}
			}
		})
	}
}

// BenchmarkT5OnlineSearch regenerates the online-search table: binary search
// vs B-tree vs extendible hashing, in reads per lookup.
func BenchmarkT5OnlineSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.T5OnlineSearch(1<<17, 300)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportTable(b, t)
		}
	}
}

// BenchmarkT6BufferTreeVsBTree regenerates the batched-update table.
func BenchmarkT6BufferTreeVsBTree(b *testing.B) {
	for _, n := range []int{1 << 13, 1 << 15} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := experiments.T6BufferTreeVsBTree([]int{n})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					reportTable(b, t)
				}
			}
		})
	}
}

// BenchmarkT7PriorityQueue regenerates the priority-queue table.
func BenchmarkT7PriorityQueue(b *testing.B) {
	for _, n := range []int{1 << 13, 1 << 15} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := experiments.T7PriorityQueue([]int{n})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					reportTable(b, t)
				}
			}
		})
	}
}

// BenchmarkF4ListRanking regenerates the list-ranking figure.
func BenchmarkF4ListRanking(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 15} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := experiments.F4ListRanking([]int{n})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					reportTable(b, t)
				}
			}
		})
	}
}

// BenchmarkF5ExternalBFS regenerates the BFS figure.
func BenchmarkF5ExternalBFS(b *testing.B) {
	for _, v := range []int{1000, 4000} {
		b.Run(fmt.Sprintf("V=%d", v), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := experiments.F5ExternalBFS([]int{v})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					reportTable(b, t)
				}
			}
		})
	}
}

// BenchmarkT8DistributionSweep regenerates the segment-intersection table.
func BenchmarkT8DistributionSweep(b *testing.B) {
	for _, n := range []int{512, 2048} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := experiments.T8DistributionSweep([]int{n})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					reportTable(b, t)
				}
			}
		})
	}
}

// BenchmarkF6Paging regenerates the paging-policy figure.
func BenchmarkF6Paging(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.F6Paging(48, 32, 20)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			// Loop workload is the interesting row: LRU pathological.
			loop := t.Rows[0]
			for _, k := range loop.Order {
				b.ReportMetric(loop.Cells[k], "loop-"+k)
			}
		}
	}
}

// BenchmarkF7FFT regenerates the FFT figure: six-step external FFT vs
// unblocked butterflies.
func BenchmarkF7FFT(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 12} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := experiments.F7FFT([]int{n})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					reportTable(b, t)
				}
			}
		})
	}
}

// BenchmarkF8TimeForward regenerates the time-forward-processing figure.
func BenchmarkF8TimeForward(b *testing.B) {
	for _, v := range []int{1000, 4000} {
		b.Run(fmt.Sprintf("V=%d", v), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := experiments.F8TimeForward([]int{v})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					reportTable(b, t)
				}
			}
		})
	}
}

// BenchmarkT9BulkLoad regenerates the index-construction table.
func BenchmarkT9BulkLoad(b *testing.B) {
	for _, n := range []int{1 << 13, 1 << 15} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := experiments.T9BulkLoad([]int{n})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					reportTable(b, t)
				}
			}
		})
	}
}

// BenchmarkVolumeBatchRead measures the wall-clock effect of the concurrent
// per-disk worker engine: the same 64-block striped read workload at a fixed
// per-block service latency, swept over disk counts. With D disks the
// workers overlap service, so elapsed time drops by ≈D while counted block
// I/Os stay constant — the acceptance check for the parallel engine is
// Disks=4 beating Disks=1 by at least 2x here.
func BenchmarkVolumeBatchRead(b *testing.B) {
	const (
		blocks  = 32
		width   = 4
		latency = 2 * time.Millisecond // above timer granularity so D, not the clock, dominates
	)
	for _, disks := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("Disks=%d", disks), func(b *testing.B) {
			vol := MustVolume(Config{BlockBytes: 4096, MemBlocks: 16, Disks: disks, DiskLatency: latency})
			defer vol.Close()
			base := vol.Alloc(blocks)
			src := make([]byte, 4096)
			for a := int64(0); a < blocks; a++ {
				if err := vol.WriteBlock(base+a, src); err != nil {
					b.Fatal(err)
				}
			}
			addrs := make([]int64, width)
			bufs := make([][]byte, width)
			for i := range bufs {
				bufs[i] = make([]byte, 4096)
			}
			vol.Stats().Reset()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for blk := 0; blk < blocks; blk += width {
					for j := 0; j < width; j++ {
						addrs[j] = base + int64(blk+j)
					}
					if err := vol.BatchRead(addrs, bufs); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			s := vol.Stats().Snapshot()
			b.ReportMetric(float64(s.Reads)/float64(b.N), "blockreads/op")
			b.ReportMetric(float64(s.Steps)/float64(b.N), "iosteps/op")
		})
	}
}

// BenchmarkAsyncMergeSort compares synchronous and forecast-driven
// asynchronous merge sort on a latency volume; counted I/Os are reported
// alongside wall-clock so both currencies are visible. Counted I/Os must be
// identical; the async path wins modestly on the clock by overlapping run
// reads with run writes (the full overlap win on compute-heavy consumers is
// BenchmarkAsyncScan's subject).
func BenchmarkAsyncMergeSort(b *testing.B) {
	const n = 1 << 12
	for _, async := range []bool{false, true} {
		b.Run(fmt.Sprintf("async=%v", async), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				vol := MustVolume(Config{BlockBytes: 512, MemBlocks: 64, Disks: 4, DiskLatency: 50 * time.Microsecond})
				pool := PoolFor(vol)
				f, err := FromSlice(vol, pool, RecordCodec{}, experiments.RandomRecords(42, n))
				if err != nil {
					b.Fatal(err)
				}
				vol.Stats().Reset()
				b.StartTimer()
				sorted, err := SortRecords(f, pool, &SortOptions{Width: 4, Async: async})
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if sorted.Len() != n {
					b.Fatal("bad output length")
				}
				if i == b.N-1 {
					s := vol.Stats().Snapshot()
					b.ReportMetric(float64(s.Reads+s.Writes), "blockios")
					b.ReportMetric(float64(s.Steps), "iosteps")
				}
				vol.Close()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkAsyncScan measures forecasting read-ahead where it pays: a scan
// whose consumer does real per-record work. The synchronous scan serialises
// fetch and compute; the prefetching scan overlaps them, approaching
// max(I/O, compute) instead of their sum.
func BenchmarkAsyncScan(b *testing.B) {
	const n = 1 << 12
	work := func(r Record) uint64 {
		h := r.Key
		for i := 0; i < 60000; i++ {
			h = h*2654435761 + r.Val
		}
		return h
	}
	for _, async := range []bool{false, true} {
		b.Run(fmt.Sprintf("async=%v", async), func(b *testing.B) {
			vol := MustVolume(Config{BlockBytes: 512, MemBlocks: 16, Disks: 4, DiskLatency: 2 * time.Millisecond})
			defer vol.Close()
			pool := PoolFor(vol)
			f, err := FromSlice(vol, pool, RecordCodec{}, experiments.RandomRecords(7, n))
			if err != nil {
				b.Fatal(err)
			}
			vol.Stats().Reset()
			var sink uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				scan := ForEach[Record]
				if async {
					scan = AsyncScan[Record]
				}
				if err := scan(f, pool, func(r Record) error {
					sink += work(r)
					return nil
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			_ = sink
			s := vol.Stats().Snapshot()
			b.ReportMetric(float64(s.Reads)/float64(b.N), "blockreads/op")
			b.ReportMetric(float64(s.Steps)/float64(b.N), "iosteps/op")
		})
	}
}

// BenchmarkAsyncDistributionSort is BenchmarkAsyncMergeSort's twin for the
// distribution path: synchronous vs forecast-driven bucket partitioning on a
// latency volume, counted I/Os reported alongside wall-clock. Memory is
// sized so both variants partition in one level (the async fan-out is half).
func BenchmarkAsyncDistributionSort(b *testing.B) {
	const n = 1 << 12
	for _, async := range []bool{false, true} {
		b.Run(fmt.Sprintf("async=%v", async), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				vol := MustVolume(Config{BlockBytes: 512, MemBlocks: 96, Disks: 4, DiskLatency: 50 * time.Microsecond})
				pool := PoolFor(vol)
				f, err := FromSlice(vol, pool, RecordCodec{}, experiments.RandomRecords(42, n))
				if err != nil {
					b.Fatal(err)
				}
				vol.Stats().Reset()
				b.StartTimer()
				sorted, err := DistributionSort(f, pool, Record.Less, &SortOptions{Width: 4, Async: async})
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if sorted.Len() != n {
					b.Fatal("bad output length")
				}
				if i == b.N-1 {
					s := vol.Stats().Snapshot()
					b.ReportMetric(float64(s.Reads+s.Writes), "blockios")
					b.ReportMetric(float64(s.Steps), "iosteps")
				}
				vol.Close()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkAsyncBulkLoad measures forecasting read-ahead on B-tree bulk
// loading: the prefetching input reader overlaps the sorted run's block
// fetches with leaf packing and node write-backs.
func BenchmarkAsyncBulkLoad(b *testing.B) {
	const n = 1 << 12
	for _, async := range []bool{false, true} {
		b.Run(fmt.Sprintf("async=%v", async), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				vol := MustVolume(Config{BlockBytes: 512, MemBlocks: 64, Disks: 4, DiskLatency: 50 * time.Microsecond})
				pool := PoolFor(vol)
				recs := make([]Record, n)
				for j := range recs {
					recs[j] = Record{Key: uint64(j + 1), Val: uint64(j)}
				}
				f, err := FromSlice(vol, pool, RecordCodec{}, recs)
				if err != nil {
					b.Fatal(err)
				}
				vol.Stats().Reset()
				b.StartTimer()
				tr, err := BulkLoadBTreeWith(vol, pool, 8, f, &BulkLoadOptions{Width: 4, Async: async})
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if tr.Len() != n {
					b.Fatal("bad tree size")
				}
				if i == b.N-1 {
					s := vol.Stats().Snapshot()
					b.ReportMetric(float64(s.Reads+s.Writes), "blockios")
					b.ReportMetric(float64(s.Steps), "iosteps")
				}
				if err := tr.Close(); err != nil {
					b.Fatal(err)
				}
				vol.Close()
				b.StartTimer()
			}
		})
	}
}
