// Command embench regenerates every table and figure of the survey
// reproduction as aligned text rows — the same experiments bench_test.go
// runs under testing.B, at the full parameter sweeps recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	embench                 # run everything
//	embench T1 F4 ...       # run selected experiment ids
//	embench -quick          # reduced sweeps (seconds instead of minutes)
//	embench -list           # list experiment ids and claims
//	embench -dir path       # file-backed volumes: disks are real files under path
//	embench -json out.json  # emit the machine-readable benchmark trajectory
//
// Most numbers are counted block transfers on the instrumented Parallel
// Disk Model — the survey's currency. Since the volume grew a concurrent
// per-disk engine with a configurable service latency, wall-clock time is
// meaningful too: every experiment prints its elapsed time, F9 sweeps the
// engine itself (elapsed ms falling ×D at constant block count, and
// forecasting prefetch overlapping compute with I/O), F10 extends the
// forecasting comparison to distribution sort and B-tree bulk loading, F11
// covers the write side — write-behind leaf batching and the pipelined
// sort→index build against their synchronous twins — F12 the read side:
// batched point lookups, prefetched range scans, and concurrent read
// sessions against one-at-a-time serving, on both storage backends — and
// F13 the online store that composes the two: buffer-tree write absorption
// against per-key B-tree inserts, and read throughput while a background
// drain hands a new B-tree generation over — F14 the sharded serving
// facade: merge-cut batched lookups and stitched scans across S
// range-partitioned volumes against the single-volume layout, with
// aggregated counters pinned byte-identical across backends — and F15 the
// robustness surface: an open-loop YCSB-style mix at twice calibrated
// capacity shedding typed overload errors instead of failing, a faulted
// volume with retries serving identical counted I/Os at bounded p99, and
// a batch across a crashed shard degrading to a partial result. F12–F15
// check their own acceptance gates and fail (non-zero exit) when one is
// missed, so CI can gate on the sweeps.
//
// With -dir every experiment volume maps its simulated disks to real files
// under the given directory (one numbered subdirectory per volume), so the
// full catalogue exercises actual storage with identical counted I/Os.
//
// With -json the catalogue is skipped; instead the benchmark trajectory —
// sync vs async merge sort, distribution sort, B-tree bulk load (plus its
// write-behind mode), the sequential vs pipelined sort→index build, the
// query-serving points (looped vs batched lookups, sync vs prefetched
// scans), the online store's mixed-workload points (buffered writes vs
// per-key inserts, serving quiesced vs through a drain) at D ∈ {1, 4},
// the sharded serving points (merge-cut batch and stitched scan at
// S ∈ {1, 4} volumes), and the robustness points (open-loop latency and
// shed profile, clean-vs-faulted serving with retry audit), wall-clock
// and counted I/Os — is written to the given file
// (the repository commits these as BENCH_*.json, one per PR, so perf
// regressions show up as a diffable series; `make bench-json` regenerates
// the current one).
//
// Any experiment failure is reported on stderr and the remaining
// experiments still run, but the process exits non-zero, so CI gates on it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"em/internal/experiments"
)

// experiment couples an id with the function that regenerates its table.
type experiment struct {
	id    string
	claim string
	run   func(quick bool) (*experiments.Table, error)
}

var catalogue = []experiment{
	{"T1", "fundamental bounds: Scan/Sort/Search match Θ-formulas", func(q bool) (*experiments.Table, error) {
		if q {
			return experiments.T1FundamentalBounds([]int{1 << 12, 1 << 14})
		}
		return experiments.T1FundamentalBounds([]int{1 << 14, 1 << 16, 1 << 18})
	}},
	{"T2", "merge ≈ distribution ≈ Sort(N); B-tree insertion sort loses ~B/log m", func(q bool) (*experiments.Table, error) {
		if q {
			return experiments.T2SortingAlgorithms([]int{1 << 12})
		}
		return experiments.T2SortingAlgorithms([]int{1 << 12, 1 << 14, 1 << 16})
	}},
	{"F1", "merge passes = ceil(log_m(runs)) as memory sweeps", func(q bool) (*experiments.Table, error) {
		n := 1 << 16
		if q {
			n = 1 << 14
		}
		return experiments.F1MergePassesVsMemory(n, []int{2, 4, 8, 16, 64, 256})
	}},
	{"F2", "replacement selection: 2M runs on random input, 1 run nearly-sorted", func(q bool) (*experiments.Table, error) {
		n := 1 << 16
		if q {
			n = 1 << 13
		}
		return experiments.F2RunFormation(n)
	}},
	{"F3", "disk striping: scan steps ÷D, striped sort pays reduced arity", func(q bool) (*experiments.Table, error) {
		n := 1 << 15
		if q {
			n = 1 << 13
		}
		return experiments.F3DiskStriping(n, []int{1, 2, 4, 8})
	}},
	{"T3", "permuting Θ(min(N, Sort(N))): crossover location", func(q bool) (*experiments.Table, error) {
		if q {
			return experiments.T3Permuting([]int{1 << 8, 1 << 12})
		}
		return experiments.T3Permuting([]int{1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16})
	}},
	{"T4", "transpose: blocked beats naive column walk ≈ ×B", func(q bool) (*experiments.Table, error) {
		if q {
			return experiments.T4Transpose([]int{32, 64})
		}
		return experiments.T4Transpose([]int{32, 64, 128, 256})
	}},
	{"T5", "online search: binary > B-tree > hashing in probes/lookup", func(q bool) (*experiments.Table, error) {
		if q {
			return experiments.T5OnlineSearch(1<<13, 100)
		}
		return experiments.T5OnlineSearch(1<<17, 500)
	}},
	{"T6", "buffer tree amortised insert ≪ B-tree insert", func(q bool) (*experiments.Table, error) {
		if q {
			return experiments.T6BufferTreeVsBTree([]int{1 << 12})
		}
		return experiments.T6BufferTreeVsBTree([]int{1 << 12, 1 << 14, 1 << 16})
	}},
	{"T7", "external PQ ≈ Sort(N) total vs B-tree PQ Θ(N log_B N)", func(q bool) (*experiments.Table, error) {
		if q {
			return experiments.T7PriorityQueue([]int{1 << 12})
		}
		return experiments.T7PriorityQueue([]int{1 << 12, 1 << 14, 1 << 16})
	}},
	{"T8", "distribution sweep vs all-pairs segment intersection", func(q bool) (*experiments.Table, error) {
		if q {
			return experiments.T8DistributionSweep([]int{256, 512})
		}
		return experiments.T8DistributionSweep([]int{256, 1024, 4096})
	}},
	{"T9", "B-tree build: sort+bulk load ≪ repeated insertion", func(q bool) (*experiments.Table, error) {
		if q {
			return experiments.T9BulkLoad([]int{1 << 12})
		}
		return experiments.T9BulkLoad([]int{1 << 12, 1 << 14, 1 << 16})
	}},
	{"F4", "list ranking O(Sort(N)) vs pointer chasing Θ(N)", func(q bool) (*experiments.Table, error) {
		if q {
			return experiments.F4ListRanking([]int{1 << 10, 1 << 12})
		}
		return experiments.F4ListRanking([]int{1 << 10, 1 << 13, 1 << 15})
	}},
	{"F5", "external BFS O(V+Sort(E)) vs naive Θ(V+E)", func(q bool) (*experiments.Table, error) {
		if q {
			return experiments.F5ExternalBFS([]int{500})
		}
		return experiments.F5ExternalBFS([]int{500, 2000, 8000})
	}},
	{"F6", "paging: MIN ≤ LRU/FIFO/CLOCK; LRU pathological on loops", func(q bool) (*experiments.Table, error) {
		if q {
			return experiments.F6Paging(24, 16, 5)
		}
		return experiments.F6Paging(48, 32, 20)
	}},
	{"F7", "FFT: six-step O(Sort(N)) vs unblocked butterflies Θ(N·log₂N)", func(q bool) (*experiments.Table, error) {
		if q {
			return experiments.F7FFT([]int{1 << 8})
		}
		return experiments.F7FFT([]int{1 << 8, 1 << 10, 1 << 12})
	}},
	{"F8", "time-forward processing O(Sort(E)) vs per-arc reads Θ(E)", func(q bool) (*experiments.Table, error) {
		if q {
			return experiments.F8TimeForward([]int{500})
		}
		return experiments.F8TimeForward([]int{1000, 4000, 16000})
	}},
	{"F9", "concurrent engine: wall-clock ÷D at equal blocks; prefetch overlaps compute", func(q bool) (*experiments.Table, error) {
		if q {
			return experiments.F9ParallelEngine(1<<11, []int{1, 4}, 2*time.Millisecond)
		}
		return experiments.F9ParallelEngine(1<<12, []int{1, 2, 4, 8}, 2*time.Millisecond)
	}},
	{"F10", "forecasting beyond merge: async distribution sort and bulk load overlap I/O across D", func(q bool) (*experiments.Table, error) {
		if q {
			return experiments.F10ForecastSortIndex(1<<13, []int{1, 4}, 2*time.Millisecond)
		}
		return experiments.F10ForecastSortIndex(1<<13, []int{1, 2, 4, 8}, 2*time.Millisecond)
	}},
	{"F11", "write-behind bulk load and sort→index pipeline recover the write path's serialization", func(q bool) (*experiments.Table, error) {
		if q {
			return experiments.F11WriteBehind(1<<13, []int{1, 4}, 2*time.Millisecond)
		}
		return experiments.F11WriteBehind(1<<13, []int{1, 2, 4, 8}, 2*time.Millisecond)
	}},
	{"F12", "query serving: batched lookups dedupe and fan reads across D; prefetched scans and sessions scale", func(q bool) (*experiments.Table, error) {
		if q {
			return experiments.F12QueryServing(1<<12, []int{1, 4}, 2*time.Millisecond)
		}
		return experiments.F12QueryServing(1<<13, []int{1, 2, 4, 8}, 2*time.Millisecond)
	}},
	{"F13", "online store: buffer-tree front absorbs updates cheaper than per-key inserts; reads stay live through handover", func(q bool) (*experiments.Table, error) {
		if q {
			return experiments.F13StoreOnline(1<<12, []int{1, 4}, 2*time.Millisecond)
		}
		return experiments.F13StoreOnline(1<<13, []int{1, 2, 4, 8}, 2*time.Millisecond)
	}},
	{"F14", "sharded serving: merge-cut batches scale QPS toward S volumes; aggregated stats backend-identical", func(q bool) (*experiments.Table, error) {
		if q {
			return experiments.F14ShardedServing(1<<12, []int{1, 4}, 2*time.Millisecond)
		}
		return experiments.F14ShardedServing(1<<13, []int{1, 2, 4}, 2*time.Millisecond)
	}},
	{"F15", "robustness: oversubscribed load sheds typed; faulted retries keep counted I/Os; crashed shard degrades", func(q bool) (*experiments.Table, error) {
		if q {
			return experiments.F15Robustness(1<<11, 160, 2*time.Millisecond)
		}
		return experiments.F15Robustness(1<<12, 320, 2*time.Millisecond)
	}},
}

func main() {
	var (
		quick   = flag.Bool("quick", false, "reduced parameter sweeps")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		dir     = flag.String("dir", "", "file-backed volumes: store simulated disks as real files under this directory")
		jsonOut = flag.String("json", "", "skip the catalogue; write the benchmark trajectory as JSON to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range catalogue {
			fmt.Printf("%-4s %s\n", e.id, e.claim)
		}
		return
	}
	if *dir != "" {
		experiments.SetVolumeDir(*dir)
	}

	if *jsonOut != "" {
		if err := writeBenchJSON(*jsonOut, *quick); err != nil {
			fmt.Fprintln(os.Stderr, "embench:", err)
			os.Exit(1)
		}
		return
	}

	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[strings.ToUpper(a)] = true
	}
	ran, failed := 0, 0
	for _, e := range catalogue {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		ran++
		start := time.Now()
		tab, err := runExperiment(e, *quick)
		if err != nil {
			// Report and keep going so one broken experiment doesn't hide
			// the state of the rest, but fail the process at the end — CI
			// gates on the exit code.
			fmt.Fprintf(os.Stderr, "embench: %s: FAILED: %v\n", e.id, err)
			failed++
			continue
		}
		fmt.Print(tab.String())
		fmt.Printf("   elapsed: %v\n\n", time.Since(start).Round(time.Millisecond))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "embench: no experiment matched %v (try -list)\n", flag.Args())
		os.Exit(1)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "embench: %d of %d experiments failed\n", failed, ran)
		os.Exit(1)
	}
}

// runExperiment runs one experiment, converting a panic — experiments.NewEnv
// panics when a volume cannot be created, e.g. -dir on an unwritable path —
// into an error, so one broken experiment is reported like any other failure
// instead of killing the rest of the catalogue.
func runExperiment(e experiment, quick bool) (tab *experiments.Table, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return e.run(quick)
}

// benchFile is the on-disk shape of a BENCH_*.json trajectory file.
type benchFile struct {
	// Schema names the measurement set so future PRs with different
	// trajectories stay distinguishable.
	Schema string `json:"schema"`
	Go     string `json:"go"`
	OS     string `json:"os"`
	Arch   string `json:"arch"`
	Quick  bool   `json:"quick"`
	// Results holds one point per (workload, mode, disks) coordinate.
	Results []experiments.BenchResult `json:"results"`
}

// writeBenchJSON measures the benchmark trajectory and writes it to path.
func writeBenchJSON(path string, quick bool) error {
	results, err := experiments.BenchTrajectory(quick)
	if err != nil {
		return err
	}
	blob, err := json.MarshalIndent(benchFile{
		Schema:  "em-bench-trajectory/v3",
		Go:      runtime.Version(),
		OS:      runtime.GOOS,
		Arch:    runtime.GOARCH,
		Quick:   quick,
		Results: results,
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o666)
}
