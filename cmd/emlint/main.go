// Command emlint runs the repository's static analyzers — poolbalance,
// pinpair, joinasync, closesink — over Go package patterns and exits
// non-zero on any finding. It is the multichecker for the I/O-accounting
// disciplines every algorithm in this module hand-enforces:
//
//	poolbalance  every pool frame handed out reaches Release/ReleaseAll
//	             on all return paths (the M/B memory budget stays exact)
//	pinpair      every pinned cache page is unpinned on all return paths
//	             (pinned pages can never be evicted)
//	joinasync    every dispatched async batch is joined before returning
//	             (no write is ever silently abandoned)
//	closesink    every opened Source/Sink/Scanner/Session/Cache is closed
//	             on all return paths (they hold frames and pins)
//
// A deliberate ownership transfer the analysis cannot see is annotated at
// the acquisition with `//emlint:owns: <why>`, which suppresses the
// report; CONTRIBUTING.md documents the disciplines and the escape hatch.
//
// Usage:
//
//	emlint [packages]     # defaults to ./...
//
// Exit status is 0 when clean, 1 on findings, 2 on load or usage errors.
// (The standard `go vet -vettool` protocol needs x/tools' unitchecker,
// which this offline toolchain does not ship; emlint therefore drives
// loading itself via `go list`.)
package main

import (
	"flag"
	"fmt"
	"os"

	"em/internal/analysis/emlint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: emlint [packages]\n\nruns the em I/O-accounting analyzers (poolbalance, pinpair, joinasync, closesink)\nover the given package patterns (default ./...) and exits 1 on any finding.\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := emlint.Check("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "emlint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "emlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
