// Command emsort sorts a file of numeric records with the external merge
// sort running on the instrumented Parallel Disk Model, and reports the
// exact block I/Os next to the survey's Sort(N) prediction.
//
// Input is text: one record per line, either "key" or "key value", both
// unsigned 64-bit integers. Output is the sorted records, one per line.
//
// Usage:
//
//	emsort [-block bytes] [-mem blocks] [-disks d] [-dir path] [-algo merge|dist|btree] [-runs load|replsel] [-async] [-o out.txt] in.txt
//
// The device shape flags set the model's B (bytes), M/B (frames) and D.
// -async switches the merge and distribution sorts to forecast-driven
// prefetching readers and write-behind writers (identical counted I/Os at
// equal fan-in/fan-out, double the frames per stream). -dir stores the
// model's disks as real files, one per disk, under the given directory —
// same algorithms, same counted I/Os, real hardware underneath (O_DIRECT
// where the platform and filesystem allow). With -v the tool prints run
// counts, merge passes, and the I/O ledger.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"em"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "emsort:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		blockBytes = flag.Int("block", 4096, "block size in bytes (the model's B)")
		memBlocks  = flag.Int("mem", 64, "internal memory in blocks (the model's M/B)")
		disks      = flag.Int("disks", 1, "number of disks (the model's D)")
		dir        = flag.String("dir", "", "store each simulated disk as a real file under this directory")
		algo       = flag.String("algo", "merge", "sorting algorithm: merge, dist, or btree")
		runMode    = flag.String("runs", "load", "run formation for merge sort: load or replsel")
		async      = flag.Bool("async", false, "forecast-driven asynchronous I/O (read-ahead and write-behind)")
		out        = flag.String("o", "", "output file (default stdout)")
		verbose    = flag.Bool("v", false, "print the I/O ledger and device shape")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: emsort [flags] input.txt (see -help)")
	}

	recs, err := readRecords(flag.Arg(0))
	if err != nil {
		return err
	}

	vol, err := em.NewVolume(em.Config{BlockBytes: *blockBytes, MemBlocks: *memBlocks, Disks: *disks, Dir: *dir})
	if err != nil {
		return err
	}
	defer vol.Close()
	pool := em.PoolFor(vol)
	f, err := em.FromSlice(vol, pool, em.RecordCodec{}, recs)
	if err != nil {
		return err
	}
	vol.Stats().Reset()

	opts := &em.SortOptions{Width: *disks, Async: *async}
	switch *runMode {
	case "load":
		opts.RunMode = em.LoadSort
	case "replsel":
		opts.RunMode = em.ReplacementSelection
	default:
		return fmt.Errorf("unknown run mode %q (want load or replsel)", *runMode)
	}

	var sorted *em.File[em.Record]
	switch *algo {
	case "merge":
		sorted, err = em.SortRecords(f, pool, opts)
	case "dist":
		sorted, err = em.DistributionSort(f, pool, em.Record.Less, opts)
	case "btree":
		sorted, err = em.SortViaBTree(f, pool, *memBlocks/2)
	default:
		return fmt.Errorf("unknown algorithm %q (want merge, dist, or btree)", *algo)
	}
	if err != nil {
		return err
	}
	ok, err := em.IsSorted(sorted, pool, em.Record.Less)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("internal error: output not sorted")
	}

	if *verbose {
		per := *blockBytes / 16
		n := len(recs)
		pred := predictSort(n, per, *memBlocks, *disks)
		backend := "memory simulation"
		if *dir != "" {
			backend = "files under " + *dir
		}
		fmt.Fprintf(os.Stderr, "device: B=%d bytes (%d records), M/B=%d frames, D=%d (%s)\n",
			*blockBytes, per, *memBlocks, *disks, backend)
		fmt.Fprintf(os.Stderr, "records: %d  algorithm: %s/%s\n", n, *algo, *runMode)
		fmt.Fprintf(os.Stderr, "I/O: %s (verification scan included)\n", vol.Stats())
		fmt.Fprintf(os.Stderr, "Sort(N) prediction: ~%.0f block transfers\n", pred)
	}

	return writeRecords(*out, sorted, pool)
}

// predictSort evaluates the survey's Sort(N) formula.
func predictSort(n, perBlock, memBlocks, disks int) float64 {
	nb := float64(n) / float64(perBlock)
	passes := 1.0
	runs := float64(n) / (float64(memBlocks) * float64(perBlock))
	if runs > 1 {
		passes += math.Ceil(math.Log(runs) / math.Log(float64(memBlocks-1)))
	}
	return 2 * nb / float64(disks) * passes
}

// readRecords parses "key" or "key value" lines.
func readRecords(path string) ([]em.Record, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	var recs []em.Record
	sc := bufio.NewScanner(fh)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		key, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad key %q: %v", path, line, fields[0], err)
		}
		var val uint64
		if len(fields) > 1 {
			val, err = strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad value %q: %v", path, line, fields[1], err)
			}
		}
		recs = append(recs, em.Record{Key: key, Val: val})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// writeRecords emits "key value" lines.
func writeRecords(path string, f *em.File[em.Record], pool *em.Pool) error {
	var w *bufio.Writer
	if path == "" {
		w = bufio.NewWriter(os.Stdout)
	} else {
		fh, err := os.Create(path)
		if err != nil {
			return err
		}
		defer fh.Close()
		w = bufio.NewWriter(fh)
	}
	if err := em.ForEach(f, pool, func(r em.Record) error {
		_, err := fmt.Fprintf(w, "%d %d\n", r.Key, r.Val)
		return err
	}); err != nil {
		return err
	}
	return w.Flush()
}
