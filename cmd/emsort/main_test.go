package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"em"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "in.txt")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestReadRecordsParsesKeysAndValues(t *testing.T) {
	p := writeTemp(t, "5 50\n3\n# comment\n\n  7 70  \n")
	recs, err := readRecords(p)
	if err != nil {
		t.Fatal(err)
	}
	want := []em.Record{{Key: 5, Val: 50}, {Key: 3, Val: 0}, {Key: 7, Val: 70}}
	if len(recs) != len(want) {
		t.Fatalf("got %d records", len(recs))
	}
	for i := range want {
		if recs[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, recs[i], want[i])
		}
	}
}

func TestReadRecordsRejectsBadInput(t *testing.T) {
	for _, content := range []string{"abc\n", "5 xyz\n", "-3\n"} {
		p := writeTemp(t, content)
		if _, err := readRecords(p); err == nil {
			t.Errorf("input %q accepted", content)
		}
	}
	if _, err := readRecords(filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestWriteRecordsRoundTrip(t *testing.T) {
	vol := em.MustVolume(em.Config{BlockBytes: 256, MemBlocks: 8, Disks: 1})
	pool := em.PoolFor(vol)
	recs := []em.Record{{Key: 1, Val: 10}, {Key: 2, Val: 20}}
	f, err := em.FromSlice(vol, pool, em.RecordCodec{}, recs)
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "out.txt")
	if err := writeRecords(out, f, pool); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(data)); got != "1 10\n2 20" {
		t.Fatalf("output = %q", got)
	}
	// Round trip back through the parser.
	back, err := readRecords(out)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if back[i] != recs[i] {
			t.Fatalf("round trip record %d = %+v", i, back[i])
		}
	}
}

func TestPredictSortShape(t *testing.T) {
	// One in-memory run: a single read+write pass.
	if got := predictSort(1000, 100, 64, 1); got != 2*10 {
		t.Fatalf("in-memory prediction = %g", got)
	}
	// Out-of-memory: at least two passes.
	small := predictSort(100_000, 100, 4, 1)
	if small <= 2*1000 {
		t.Fatalf("out-of-memory prediction %g not > one pass", small)
	}
	// More disks divide the cost.
	if d2 := predictSort(100_000, 100, 4, 2); d2 >= small {
		t.Fatalf("D=2 prediction %g not below D=1's %g", d2, small)
	}
}
