// Package em is the public facade of the external-memory algorithm suite.
//
// The library reproduces, as a working system, the algorithm catalogue of
// the PODS 1998 survey "External Memory Algorithms": the Parallel Disk
// Model and the classical I/O-efficient algorithms and data structures
// built on it. Everything runs on an instrumented in-process disk model
// (see NewVolume) that counts block transfers exactly and enforces the
// internal-memory budget M through a frame pool, so measured I/O counts are
// directly comparable to the survey's Θ-bounds:
//
//	Scan(N)   = Θ(N / (D·B))
//	Sort(N)   = Θ(N/(D·B) · log_{M/B}(N/B))
//	Search(N) = Θ(log_B N)
//	Perm(N)   = Θ(min(N/D, Sort(N)))
//
// # Getting started
//
// Create a volume (the disk) and a pool (the memory budget), materialise
// records, and run algorithms:
//
//	vol := em.MustVolume(em.Config{BlockBytes: 4096, MemBlocks: 64, Disks: 1})
//	pool := em.PoolFor(vol)
//	f, _ := em.FromSlice(vol, pool, em.RecordCodec{}, records)
//	sorted, _ := em.SortRecords(f, pool, nil)
//	fmt.Println(vol.Stats()) // exact block reads/writes
//
// # Concurrency
//
// The volume is a genuinely concurrent I/O engine, not just a counter. Each
// simulated disk serialises its own transfers behind a per-disk lock, and
// when Config.DiskLatency is non-zero the volume runs one worker goroutine
// per disk draining a per-disk request queue, so a striped batch costs the
// wall-clock time of the worst single disk — the model's parallel-step cost
// becomes measurable with a stopwatch, and D disks give ≈D-way speedup on
// striped scans. Volumes with workers should be Closed when done. Volumes
// and pools are safe for concurrent use; read Stats via Snapshot when I/O
// may be in flight on other goroutines.
//
// On top of the engine, AsyncScan, the SortOptions.Async flag (honoured by
// both MergeSort and DistributionSort), and BulkLoadBTreeWith enable
// forecast-driven overlap: prefetching readers keep their next block group
// in flight (read-ahead — for a sequentially consumed file, the block the
// survey's forecast selects is exactly the next sequential one) and
// write-behind writers flush the previous group while the caller fills the
// next. Asynchronous streams hold double buffers charged to the same Pool,
// so the memory budget M still binds, and they issue the same batches as
// their synchronous counterparts, so counted I/Os are unchanged at equal
// fan-in (merge) or fan-out (distribution).
//
// # Write-optimal index construction
//
// Index construction gets the same treatment on its write side. The B-tree
// bulk loader threads each leaf's sibling pointer forward — the successor's
// block is allocated before the leaf is sealed — so no leaf is ever
// revisited, and BulkLoadOptions.WriteBehind exploits exactly that: leaves
// bypass the pinning cache and stream to the disks in Width-block batches
// through the async engine while the next group is packed (internal nodes,
// at most N/B of them, stay on the cache path). SortIndex composes the two
// halves of index building — DistributionSort, then bulk load — and its
// Pipeline mode overlaps them: the sort announces each durable block group
// of its output through a bounded pipe (smallest key ranges first, since
// the distribution recursion finishes buckets in key order) and the loader
// packs leaves from those groups while later buckets still sort.
//
// None of this moves the counted model: write-behind issues exactly the
// cache path's read and write I/Os, and the pipelined build issues exactly
// the sequential build's — invariants the test suite pins on both storage
// backends. The currencies traded are pool frames and wall-clock time.
// Write-behind costs 2×Width extra frames (its double buffer): worth it
// whenever leaf write-back dominates, since a cache-path loader writes one
// block per step while D-1 disks idle, but on a tight pool those frames
// come out of the loader's cache or the sort's fan-out, which can add a
// pass — experiment F11 measures both sides of that trade. SortIndex
// reserves the loader's whole budget (CacheFrames + 4×Width) up front in
// every mode, so the sort's splitting decisions — and therefore its I/O
// counts — are identical with and without the concurrent loader; the
// pipeline's win is filling the disk idle the synchronous phases leave,
// which is largest when the loader's writes are serialized (cache path)
// and shrinks to nothing once write-behind already saturates the disks.
//
// # Serving queries
//
// The read path gets the same treatment as construction, because a built
// index is only as good as the queries it serves. Three mechanisms make
// B-tree query serving parallel-disk-optimal (see examples/kvserve for all
// of them together):
//
// Batched point lookups. BTree.GetBatch answers a batch of keys level by
// level: the batch is sorted, so consecutive keys share their upper-level
// nodes, and each level's distinct nodes are read exactly once — the root
// costs one read per batch, not one per key — in disk-count groups through
// the async engine, with the next group in flight while the current one is
// searched. Counted reads never exceed a loop of Gets from the same cache
// state, and with shared internals are strictly below it.
//
// Prefetched range scans. BTree.NewScanner (and RangePrefetch) streams a
// key range with up to Width leaf reads in flight: upcoming leaf addresses
// are forecast from cache-resident parent nodes — an internal node lists
// its children, consecutive leaves, in key order — and the scan degrades to
// pipelining one leaf ahead along the sibling chain when a parent is not
// resident. Leaves are read into the scanner's own frames instead of being
// admitted to the buffer manager (a scan touches each leaf once; polluting
// the cache would evict the hot internals point queries rely on), so a full
// scan costs exactly Range's reads at AsyncScan's wall clock. BTree.Warm
// preloads the internal levels — Θ(N/B²) blocks — so forecasting starts
// with resident parents, the classical serving posture. BTree.Max joins
// Min for the key-space edges.
//
// Concurrent read sessions. BTree.NewSessionOn opens a read-only query
// handle with a private buffer manager and scanner budget, reserved from
// the caller's pool up front exactly like SortIndex's loader budget, so G
// goroutines serve a mixed point/range workload against one tree — the
// per-disk engine overlaps their transfers and QPS scales toward D — while
// the memory bound M still holds. (The interface form, BTree.NewSession,
// draws the budget from the tree's own pool.) Sessions never dirty a page
// and cannot evict a writer's pinned working set; like all readers they
// must not overlap mutations. Experiment F12 measures the three
// mechanisms' gates (batch speedup and read savings, scan speedup at
// identical reads, session QPS scaling) on both storage backends.
//
// # An updatable store
//
// Store closes the loop between the write-optimal and read-optimal halves:
// an online key-value index that serves Get/GetBatch/Scan while absorbing
// Insert/Delete, with neither side giving up its bound. Updates land in a
// buffer-tree write front at the amortised O((1/B)·log_m n) cost above;
// when the front crosses a configurable threshold (StoreConfig.FrontOps)
// it is sealed and a background drain merge-applies its resolved
// operations — delete tombstones included, last writer wins by sequence
// number — into a scan of the current B-tree generation, streaming the
// result through the write-behind bulk loader into a fresh generation at
// Θ(n/B) I/Os. Readers swap over atomically: generations are
// reference-counted, so in-flight StoreScanners and StoreSessions keep
// their generation (and its blocks) until they close, and a superseded
// generation is reclaimed when its last reader departs. The drain runs on
// a budget reserved at Open at half-width striping, and the two fronts'
// resolved operations are mirrored in bounded memory, so read throughput
// holds while the rebuild runs — experiment F13 gates the write
// amortisation and the in-drain read QPS. See examples/kvstore.
//
// # Sharded serving
//
// Every serving implementation above — the read-optimised BTree and the
// updatable Store — presents the same five-method surface, named by the
// Index interface (Get, GetBatch, Scan, NewSession, Stats, Close) with
// Session as its read-handle counterpart, so engines and examples are
// written once against Index and run unchanged over any backend.
//
// The sharded types scale that surface past one volume's disk set: the
// Parallel Disk Model's striping lifted one level, D disks inside a
// volume, S volumes inside a system. NewShardedTree and OpenShardedStore
// range-partition the keyspace across S independent volumes — each with
// its own Config, directory, disks, and pool — by S-1 split keys, shard i
// owning [splits[i-1], splits[i]). GetBatch cuts the sorted batch at the
// partition boundaries (a merge cut: one binary search per shard touched,
// never a per-key pass) and fans the per-shard sub-batches out
// concurrently, each shard deduping and striping its piece over its own
// disks; Scan stitches per-shard scanners in shard order — which range
// partitioning makes key order — behind one Scanner; NewSession composes
// per-shard sessions, each with its reserved budget on its shard's pool;
// ShardedStore routes Insert/Delete to the owning shard's buffer-tree
// front, and the shards seal and drain independently, so one shard's
// rebuild never stalls another's reads. Aggregated Stats sum the counters
// and concatenate the per-disk breakdowns in shard order, extending the
// sim==file byte-identity invariant verbatim; every error a shard
// surfaces is wrapped with its shard index (errors.Is still sees the
// cause), so a starved pool names the shard that hit its budget.
// Experiment F14 gates the sharded QPS scaling and the cross-backend
// aggregate identity.
//
// # Robustness
//
// The model assumes D disks that always answer; the serving stack does
// not. Four mechanisms keep the guarantees under faults and overload:
//
// Fault model. Errors are classified transient or permanent with the
// Transient marker (IsTransient): a transient error — a flaky pread, a
// momentarily busy device — is retryable; everything else propagates
// unchanged. FaultPlan is a deterministic, seeded schedule of injected
// faults (transient read/write errors, per-disk latency spikes, a
// fail-after-N crash point) wrapped around any storage backend via
// Config.Fault, so every layer's unwind paths are exercised mechanically:
// the same seed replays the same faults. Faults fire before any data
// moves, so a retried transfer is indistinguishable from a clean one.
//
// Retry policy. Config.Retry enables capped exponential backoff under a
// per-op deadline in the volume's per-disk service loop, on the
// single-block and batched paths alike. Retried attempts are not
// re-charged to Reads/Writes — the transfer is the same block op however
// many attempts it took — so a faulted run that retries to success
// reports output and counted I/Os identical to the clean run's, with the
// extra work auditable in Stats.Retries. The sim==file byte-identity
// invariant therefore extends to faulted runs.
//
// Overload semantics. With admission control configured (AdmitQueue /
// AdmitWait on btree Options, store Config, and their sharded facades),
// pool starvation inside GetBatch, Scan, or NewSession becomes a bounded
// FIFO wait for frames: the request queues in arrival order, wakes as
// frames free, and retries; past the queue bound or the deadline it is
// shed with an OverloadError matching both ErrOverload ("the system chose
// to shed") and ErrNoFrames (the starvation underneath). Admission off —
// the default — keeps starvation a hard error.
//
// PartialError contract. A sharded GetBatch that loses some shards but
// not all returns the surviving shards' answers alongside a *PartialError
// naming the failed shards (with their wrapped causes), the shards that
// answered, and a per-key Served mask; only a batch with no surviving
// shard fails outright. Callers that can tolerate holes keep the answers,
// callers that cannot treat the error as fatal — either way errors.Is
// sees through to each cause. Experiment F15 gates all four mechanisms
// under an open-loop YCSB-style workload.
//
// # Invariants
//
// Four resource disciplines keep the I/O accounting exact, and every
// algorithm in the module hand-enforces them:
//
//   - Pool balance: every frame handed out by a Pool (Alloc, MustAlloc,
//     AllocN) reaches Release or ReleaseAll on every path to return —
//     including error unwinds — so the memory budget M stays exact and
//     pool exhaustion is a caller bug, never a leak.
//   - Pin pairing: every page pinned by a buffer manager (Get, GetNew,
//     Peek, GetBatchAsync) is unpinned on every path; a page whose pin
//     count never returns to zero can never be evicted, which silently
//     shrinks the cache until admission fails.
//   - Async joins: every dispatched batch (BatchReadAsync,
//     BatchWriteAsync, GetBatchAsync's join) is joined before returning,
//     so no I/O is silently abandoned and no buffer is mutated behind its
//     owner's back.
//   - Stream lifecycle: every opened Reader, Writer, Scanner, Session and
//     Cache is closed on every path; these hold frames and pins, so a
//     handle dropped on an unwind leaks part of the budget.
//
// These are machine-checked: cmd/emlint is a static analyzer suite
// (poolbalance, pinpair, joinasync, closesink) that proves them per
// function over the whole module, runs from `make lint`, gates CI, and is
// pinned by a repo-wide test. A deliberate ownership handoff the analysis
// cannot see is annotated `//emlint:owns: <why>` at the acquisition; see
// CONTRIBUTING.md.
//
// # File-backed volumes
//
// Where a volume's blocks live is pluggable through the Backend seam: the
// volume owns addressing, counters, service-time reservations and worker
// scheduling, and delegates only the final one-block transfer. The default
// backend simulates the disks in memory; setting Config.Dir (or calling
// NewFileVolume) maps each of the D simulated disks to its own file under a
// directory, so every algorithm in the module — including the asynchronous
// sort and bulk-load paths — runs unchanged against real storage:
//
//	vol, err := em.NewFileVolume(em.Config{BlockBytes: 4096, MemBlocks: 64, Disks: 4}, "/data/pdm")
//	defer vol.Close()
//
// Counters are charged before the backend is invoked, so Stats snapshots
// are identical between the memory and file backends for the same workload
// (a property the test suite pins down with quick-checks over the sorts and
// the bulk loader); only the wall clock changes meaning. On Linux, backing
// files are opened with O_DIRECT when BlockBytes is a multiple of 4 KiB and
// the filesystem accepts the flag (tmpfs, for one, does not), so transfers
// bypass the page cache and the measured times are the medium's; everywhere
// else the backend transparently falls back to ordinary buffered I/O, which
// preserves semantics but lets the OS cache absorb re-reads. File-backed
// volumes should always be Closed; the per-disk files are left on disk for
// inspection and are the caller's to delete.
//
// The subsystems exposed here are:
//
//   - external sorting: MergeSort, DistributionSort, SortViaBTree (baseline)
//   - permuting: Permute, PermuteNaive, PermuteBySorting
//   - matrices: Matrix, Transpose, TransposeNaive, MatMul
//   - online dictionaries: BTree (with BulkLoadBTree and SortIndex), HashTable
//   - batched updates: BufferTree
//   - updatable store: Store (buffer-tree front + generational B-tree)
//   - priority queues: PQ
//   - graph algorithms: Graph, BFS, BFSUndirected, ConnectedComponents
//   - list ranking: RankList, RankListNaive
//   - batched geometry: Intersections (distribution sweep)
//   - paging policies: FaultsLRU, FaultsFIFO, FaultsCLOCK, FaultsMIN
//
// Each algorithm's doc comment states the I/O bound it meets and, where the
// survey describes one, the naive baseline it is benchmarked against. The
// benchmark suite in bench_test.go regenerates every experiment table; see
// DESIGN.md and EXPERIMENTS.md.
package em

import (
	"em/internal/btree"
	"em/internal/buffertree"
	"em/internal/cache"
	"em/internal/emgraph"
	"em/internal/emtree"
	"em/internal/extcoll"
	"em/internal/extsort"
	"em/internal/fft"
	"em/internal/geometry"
	"em/internal/hashing"
	"em/internal/index"
	"em/internal/listrank"
	"em/internal/matrix"
	"em/internal/pdm"
	"em/internal/permute"
	"em/internal/pqueue"
	"em/internal/record"
	"em/internal/shard"
	"em/internal/store"
	"em/internal/stream"
	"em/internal/timefwd"
)

// ---------------------------------------------------------------------------
// Parallel Disk Model
// ---------------------------------------------------------------------------

// Config fixes the device shape of a Parallel Disk Model instance: block
// size in bytes, memory capacity in blocks (M/B), disk count D, and the
// simulated per-block service time DiskLatency (zero keeps the purely
// counted model; non-zero starts one worker goroutine per disk and makes
// parallel-step costs wall-clock measurable — Close such volumes when done).
type Config = pdm.Config

// Volume is an instrumented block device striped over D simulated disks,
// safe for concurrent use; transfers to distinct disks proceed in parallel.
// All I/O performed by the algorithms in this module flows through a Volume
// and is counted in its Stats.
type Volume = pdm.Volume

// Pool enforces the internal-memory budget: it lends out at most M/B
// block-sized frames and fails loudly beyond that. Pool is safe for
// concurrent use, so asynchronous streams charge their double buffers to
// the same budget.
type Pool = pdm.Pool

// Stats holds a volume's I/O counters: block reads, block writes, and
// parallel I/O steps, maintained with per-disk atomic shards. Sequential
// callers may read fields directly; use Snapshot while I/O is in flight.
type Stats = pdm.Stats

// Frame is one block-sized buffer on loan from a Pool.
type Frame = pdm.Frame

// Backend is the storage seam behind a Volume: the medium holding the D
// simulated disks' blocks. The volume charges all counters itself, so Stats
// are identical whichever backend serves the bytes. See the package
// comment's file-backed volumes section.
type Backend = pdm.Backend

// NewVolume creates an empty volume with the given configuration. With
// Config.Dir set the volume is file-backed (see NewFileVolume).
func NewVolume(cfg Config) (*Volume, error) { return pdm.NewVolume(cfg) }

// NewFileVolume creates a volume whose D simulated disks are real files —
// one per disk — under dir, created if absent. It is shorthand for setting
// cfg.Dir. Close the volume to close the files.
func NewFileVolume(cfg Config, dir string) (*Volume, error) {
	cfg.Dir = dir
	return pdm.NewVolume(cfg)
}

// MustVolume is NewVolume for known-good configurations; it panics on error.
func MustVolume(cfg Config) *Volume { return pdm.MustVolume(cfg) }

// PoolFor creates the frame pool implied by a volume's configuration:
// MemBlocks frames of BlockBytes bytes each.
func PoolFor(v *Volume) *Pool { return pdm.PoolFor(v) }

// NewPool creates a pool of capacity frames of blockBytes bytes each, for
// callers that want a budget different from the volume's default.
func NewPool(blockBytes, capacity int) *Pool { return pdm.NewPool(blockBytes, capacity) }

// ErrNoFrames reports that a buffer pool is exhausted — the memory budget
// M is exceeded. Reservations that fail (a session's cache budget, an
// async stream's double buffer) wrap it, and the sharded facades prefix
// the owning shard's index, so errors.Is(err, ErrNoFrames) holds across
// every layer.
var ErrNoFrames = pdm.ErrNoFrames

// ---------------------------------------------------------------------------
// Robustness: fault model, retry policy, overload, partial results
// ---------------------------------------------------------------------------

// ErrTransient is the marker carried by Transient-classified (retryable)
// errors; match with IsTransient or errors.Is.
var ErrTransient = pdm.ErrTransient

// ErrFaulted is the permanent error a fault plan's fail-after-N crash
// point produces: the disk is dead and retries are pointless.
var ErrFaulted = pdm.ErrFaulted

// ErrOverload is the marker for a request shed by admission control. A
// shed error matches both ErrOverload and ErrNoFrames, so backpressure is
// distinguishable from a hard memory-budget violation.
var ErrOverload = index.ErrOverload

// Transient classifies err as retryable; the volume's retry policy
// re-drives transient service errors and propagates everything else.
func Transient(err error) error { return pdm.Transient(err) }

// IsTransient reports whether err is classified retryable.
func IsTransient(err error) bool { return pdm.IsTransient(err) }

// FaultPlan is a deterministic, seeded schedule of injected faults —
// transient read/write errors, per-disk latency spikes, a fail-after-N
// crash point — installed on a volume via Config.Fault. See the package
// comment's robustness section.
type FaultPlan = pdm.FaultPlan

// FaultBackend is the fault-injecting backend a FaultPlan installs;
// Volume.Fault returns it for auditing injected counts.
type FaultBackend = pdm.FaultBackend

// RetryPolicy drives the volume's handling of transient service errors:
// capped exponential backoff under a per-op deadline, enabled via
// Config.Retry, audited in Stats.Retries.
type RetryPolicy = pdm.RetryPolicy

// OverloadError carries the admission decision behind a shed request: the
// queue depth observed, the time waited, and the starvation cause.
type OverloadError = index.OverloadError

// PartialError reports a sharded GetBatch that lost some shards while the
// rest answered; it accompanies the surviving results. See the package
// comment's robustness section for the contract.
type PartialError = shard.PartialError

// ---------------------------------------------------------------------------
// Records and files
// ---------------------------------------------------------------------------

// Codec converts values of type T to and from a fixed-width binary form.
type Codec[T any] = record.Codec[T]

// Record is the workhorse 16-byte record: a uint64 key and a uint64 value.
type Record = record.Record

// RecordCodec is the Codec for Record.
type RecordCodec = record.RecordCodec

// Pair is a two-field record of int64s, used for edges, list nodes, and
// intersection output.
type Pair = record.Pair

// PairCodec is the Codec for Pair.
type PairCodec = record.PairCodec

// Triple is a three-field record of int64s.
type Triple = record.Triple

// TripleCodec is the Codec for Triple.
type TripleCodec = record.TripleCodec

// U64Codec is the Codec for bare uint64 values.
type U64Codec = record.U64Codec

// F64Codec is the Codec for float64 values.
type F64Codec = record.F64Codec

// File is a sequence of fixed-size records packed into whole blocks on a
// volume.
type File[T any] = stream.File[T]

// Reader iterates a File in order, block by block.
type Reader[T any] = stream.Reader[T]

// Writer appends records to a File, block by block.
type Writer[T any] = stream.Writer[T]

// NewFile creates an empty file on vol.
func NewFile[T any](vol *Volume, codec Codec[T]) *File[T] { return stream.NewFile[T](vol, codec) }

// NewReader creates a width-1 reader over f. Reading costs one block read
// per B records.
func NewReader[T any](f *File[T], pool *Pool) (*Reader[T], error) {
	return stream.NewReader(f, pool)
}

// NewWriter creates a width-1 writer appending to f.
func NewWriter[T any](f *File[T], pool *Pool) (*Writer[T], error) {
	return stream.NewWriter(f, pool)
}

// FromSlice materialises vs as a file on vol, charging the usual write I/Os.
func FromSlice[T any](vol *Volume, pool *Pool, codec Codec[T], vs []T) (*File[T], error) {
	return stream.FromSlice(vol, pool, codec, vs)
}

// ToSlice reads an entire file into memory, charging the usual read I/Os.
// Intended for small outputs and tests.
func ToSlice[T any](f *File[T], pool *Pool) ([]T, error) { return stream.ToSlice(f, pool) }

// ForEach streams every record of f through fn: Scan(N) I/Os.
func ForEach[T any](f *File[T], pool *Pool, fn func(T) error) error {
	return stream.ForEach(f, pool, fn)
}

// ---------------------------------------------------------------------------
// Asynchronous streams (forecasting read-ahead and write-behind)
// ---------------------------------------------------------------------------

// PrefetchReader iterates a File like Reader while keeping its next block
// group in flight on a background goroutine — the survey's forecasting
// read-ahead for sequential consumers. It holds 2×width pool frames and
// charges the same I/O counts as a synchronous width-w reader.
type PrefetchReader[T any] = stream.PrefetchReader[T]

// AsyncWriter appends records like Writer while flushing each full block
// group behind the caller — double-buffered write-behind at identical I/O
// counts.
type AsyncWriter[T any] = stream.AsyncWriter[T]

// NewPrefetchReader creates an asynchronous reader over f fetching width
// blocks per parallel batch, with the following batch always in flight.
func NewPrefetchReader[T any](f *File[T], pool *Pool, width int) (*PrefetchReader[T], error) {
	return stream.NewPrefetchReader(f, pool, width)
}

// NewAsyncWriter creates a write-behind writer appending to f in batches of
// width blocks.
func NewAsyncWriter[T any](f *File[T], pool *Pool, width int) (*AsyncWriter[T], error) {
	return stream.NewAsyncWriter(f, pool, width)
}

// AsyncScan streams every record of f through fn with width-1 read-ahead:
// the next block is fetched while fn processes the current one. I/O counts
// are identical to ForEach; on a volume with non-zero DiskLatency the
// wall-clock time overlaps fetch and compute.
func AsyncScan[T any](f *File[T], pool *Pool, fn func(T) error) error {
	return stream.AsyncForEach(f, pool, 1, fn)
}

// ---------------------------------------------------------------------------
// Sorting (survey §3: fundamental batched problem)
// ---------------------------------------------------------------------------

// SortOptions tunes the external sorts: striping width, run-formation mode,
// a fan-in/fan-out cap for experiments, and the Async flag, which switches
// both merge sort and distribution sort to forecast-driven prefetching
// readers and write-behind writers (same counted I/Os at equal
// fan-in/fan-out, overlapped wall-clock, half the stream arity).
type SortOptions = extsort.Options

// RunMode selects the run-formation technique for merge sort.
type RunMode = extsort.RunMode

// Run-formation modes.
const (
	// LoadSort fills memory, sorts, and writes runs of exactly M records.
	LoadSort = extsort.LoadSort
	// ReplacementSelection streams through an M-record tournament, giving
	// runs of expected length 2M on random input.
	ReplacementSelection = extsort.ReplacementSelection
)

// MergeSort sorts f by less with multiway external merge sort in
// Θ(n log_m n) I/Os, the survey's Sort(N) bound. The input is unchanged.
func MergeSort[T any](f *File[T], pool *Pool, less func(a, b T) bool, opts *SortOptions) (*File[T], error) {
	return extsort.MergeSort(f, pool, less, opts)
}

// DistributionSort sorts f by less with sample-based distribution sort,
// also Θ(n log_m n) I/Os. It honours the same SortOptions as MergeSort:
// Width stripes the partition readers and bucket writers over the disks,
// and Async switches them to forecasting read-ahead and write-behind
// (double-buffered streams cost 2×Width frames each, so the distribution
// fan-out halves — the mirror of the merge fan-in trade). At equal fan-out
// the counted I/Os match the synchronous path exactly.
func DistributionSort[T any](f *File[T], pool *Pool, less func(a, b T) bool, opts *SortOptions) (*File[T], error) {
	return extsort.DistributionSort(f, pool, less, opts)
}

// SortRecords sorts a Record file by key with merge sort — the common case.
func SortRecords(f *File[Record], pool *Pool, opts *SortOptions) (*File[Record], error) {
	return extsort.MergeSort(f, pool, Record.Less, opts)
}

// SortViaBTree is the survey's strawman "online sort": insert every record
// into a B-tree and scan the leaves, Θ(N log_B N) I/Os — worse than Sort(N)
// by roughly a factor of B/log(M/B).
func SortViaBTree(f *File[Record], pool *Pool, cacheFrames int) (*File[Record], error) {
	return extsort.SortViaBTree(f, pool, cacheFrames)
}

// IsSorted reports whether f is ordered by less, in one scan.
func IsSorted[T any](f *File[T], pool *Pool, less func(a, b T) bool) (bool, error) {
	return extsort.IsSorted(f, pool, less)
}

// ---------------------------------------------------------------------------
// Permuting and matrices (survey §4)
// ---------------------------------------------------------------------------

// PermuteNaive moves each record independently to its target position:
// Θ(N) I/Os, the survey's lower-bound branch for small N.
func PermuteNaive[T any](f *File[T], pool *Pool, perm []int64) (*File[T], error) {
	return permute.Naive(f, pool, perm)
}

// PermuteBySorting tags each record with its destination and sorts:
// Sort(N) I/Os, the winning branch for large N.
func PermuteBySorting[T any](f *File[T], pool *Pool, perm []int64, opts *SortOptions) (*File[T], error) {
	return permute.BySorting(f, pool, perm, opts)
}

// Permute applies perm to f, choosing the cheaper of the naive and
// sort-based methods — the survey's Θ(min(N, Sort(N))) permuting bound.
func Permute[T any](f *File[T], pool *Pool, perm []int64, opts *SortOptions) (*File[T], error) {
	return permute.Auto(f, pool, perm, opts)
}

// BitReversalPerm returns the bit-reversal permutation of size n (a power
// of two), the survey's canonical hard permutation (it forces Sort(N)).
func BitReversalPerm(n int) ([]int64, error) { return permute.BitReversal(n) }

// Matrix is a dense row-major matrix of float64 stored on a volume.
type Matrix = matrix.Matrix

// NewMatrix creates a zero rows×cols matrix on vol.
func NewMatrix(vol *Volume, pool *Pool, rows, cols int) (*Matrix, error) {
	return matrix.New(vol, pool, rows, cols)
}

// MatrixFromSlice materialises data (row-major, rows*cols long) on vol.
func MatrixFromSlice(vol *Volume, pool *Pool, rows, cols int, data []float64) (*Matrix, error) {
	return matrix.FromSlice(vol, pool, rows, cols, data)
}

// Transpose transposes m blockwise, O(n·log_m min(...)) ≈ Sort I/Os in the
// general case and Θ(n) for square block-aligned shapes.
func Transpose(m *Matrix, pool *Pool) (*Matrix, error) { return matrix.TransposeBlocked(m, pool) }

// TransposeNaive walks the output in row-major order, reading one input
// element per I/O once the matrix exceeds memory: the Θ(N) baseline.
func TransposeNaive(m *Matrix, pool *Pool) (*Matrix, error) { return matrix.TransposeNaive(m, pool) }

// MatMul multiplies a×b with the blocked sub-matrix algorithm,
// Θ(n³/(B·√M)) ≈ Θ(N^{3/2}/(B√M)) I/Os for N = n² elements.
func MatMul(a, b *Matrix, pool *Pool) (*Matrix, error) { return matrix.Multiply(a, b, pool) }

// ---------------------------------------------------------------------------
// The unified serving API
// ---------------------------------------------------------------------------

// Index is the serving surface every key-value index in the module
// presents: point reads, sorted-batch reads, snapshot range scans, read
// sessions with reserved budgets, and aggregate I/O counters. BTree and
// Store implement it over one volume; ShardedTree and ShardedStore
// implement it over S volumes — code written against Index serves
// unchanged from any of them. Implementations substitute their configured
// defaults for out-of-range NewSession arguments, so NewSession(0, 0)
// always means "this index's defaults".
type Index = index.Index

// Session is a read-only query handle opened by Index.NewSession: a
// private reserved cache budget, safe to use from its own goroutine
// beside other sessions. The concrete types (BTreeSession, StoreSession,
// ShardedSession) add index-specific extras such as Warm.
type Session = index.Session

// Scanner is the stream shape every Index.Scan returns: records in key
// order, Close releasing the scan's frames (and, for stores, its
// generation pin). The concrete scanners implement it.
type Scanner = index.Scanner

// The serving implementations satisfy the unified API.
var (
	_ Index   = (*BTree)(nil)
	_ Index   = (*Store)(nil)
	_ Index   = (*ShardedTree)(nil)
	_ Index   = (*ShardedStore)(nil)
	_ Session = (*BTreeSession)(nil)
	_ Session = (*StoreSession)(nil)
	_ Session = (*ShardedSession)(nil)
	_ Scanner = (*BTreeScanner)(nil)
	_ Scanner = (*StoreScanner)(nil)
	_ Scanner = (*ShardedScanner)(nil)
)

// ---------------------------------------------------------------------------
// Online dictionaries (survey §6: B-trees, hashing)
// ---------------------------------------------------------------------------

// BTree is an on-volume B+-tree over uint64 keys and values: Search, Insert,
// Delete in Θ(log_B N) I/Os; Range in Θ(log_B N + Z/B). Its read side is
// built for serving: GetBatch (deduplicated, disk-parallel batched
// lookups), NewScanner/RangePrefetch (forecasting leaf-chain scans), Warm
// (resident internal levels), Min/Max, and NewSession (concurrent read
// handles) — see the package comment's serving-queries section.
type BTree = btree.Tree

// NewBTree creates an empty B+-tree whose node cache holds cacheFrames
// blocks drawn from pool. It is the positional shorthand for NewBTreeWith.
func NewBTree(vol *Volume, pool *Pool, cacheFrames int) (*BTree, error) {
	return btree.New(vol, pool, cacheFrames)
}

// BTreeOptions tunes NewBTreeWith, mirroring the options forms the bulk
// loader and store already take: CacheFrames is the node cache's budget
// (zero means 8; below 3 is an error) and Width the default striping for
// the tree's interface-form Scan and NewSession (zero means the volume's
// disk count).
type BTreeOptions = btree.Options

// NewBTreeWith creates an empty B+-tree with options-driven defaults; nil
// options take every default.
func NewBTreeWith(vol *Volume, pool *Pool, opts *BTreeOptions) (*BTree, error) {
	return btree.NewWith(vol, pool, opts)
}

// ScanOptions tunes BTree.NewScanner and RangePrefetch: Width is the
// number of leaf reads kept in flight (zero means the volume's disk
// count); the scan holds 2×Width pool frames.
type ScanOptions = btree.ScanOptions

// BTreeScanner streams a key range in order with its leaf reads batched
// and kept in flight. It implements the stream Source shape over Record,
// so a scan can feed anything a file reader can.
type BTreeScanner = btree.Scanner

// BTreeSession is a read-only query handle over a shared BTree: a private
// buffer manager and scanner budget reserved up front, safe to use from
// its own goroutine beside other sessions. See BTree.NewSession.
type BTreeSession = btree.Session

// BulkLoadBTree builds a B+-tree bottom-up from a key-sorted record file in
// Θ(N/B) I/Os — versus Θ(N log_B N) for repeated insertion (experiment T9).
// The input is read synchronously one block at a time; BulkLoadBTreeWith
// adds striping, forecasting read-ahead, and write-behind leaf batching.
func BulkLoadBTree(vol *Volume, pool *Pool, cacheFrames int, sorted *File[Record]) (*BTree, error) {
	return btree.BulkLoad(vol, pool, cacheFrames, sorted, nil)
}

// BulkLoadOptions tunes BulkLoadBTreeWith's streams: Width stripes the
// reads over the disks, Async keeps the next block group of the sorted run
// in flight (forecasting read-ahead, 2×Width pool frames) while leaves are
// packed and nodes written back, and WriteBehind batches the leaf writes
// Width at a time through the async engine (another 2×Width frames — see
// the package comment's write-optimal index construction section). Counted
// I/Os are identical to the synchronous paths' at equal width.
type BulkLoadOptions = btree.BulkLoadOptions

// BulkLoadBTreeWith is BulkLoadBTree with an options-driven input stream.
// On any error — unsorted input, failed read or write, exhausted pool —
// every block and frame the load took is returned and any in-flight leaf
// batch is joined, so the pool is exactly as it was.
func BulkLoadBTreeWith(vol *Volume, pool *Pool, cacheFrames int, sorted *File[Record], opts *BulkLoadOptions) (*BTree, error) {
	return btree.BulkLoad(vol, pool, cacheFrames, sorted, opts)
}

// ErrUnsortedInput reports a bulk-load input that is not strictly
// increasing by key (duplicates included).
var ErrUnsortedInput = btree.ErrUnsortedInput

// HashTable is an extendible-hashing dictionary: O(1) expected probes per
// lookup, versus the B-tree's Θ(log_B N).
type HashTable = hashing.Table

// NewHashTable creates an empty extendible hash table.
func NewHashTable(vol *Volume, pool *Pool, cacheFrames int) (*HashTable, error) {
	return hashing.New(vol, pool, cacheFrames)
}

// ---------------------------------------------------------------------------
// Batched updates and priority queues (survey §7: buffer trees)
// ---------------------------------------------------------------------------

// BufferTree is Arge's buffer tree: inserts and deletes cost amortised
// O((1/B)·log_{M/B}(N/B)) I/Os — a factor ≈ B·log better than a B-tree's
// per-operation bound. Seal flushes everything and returns the sorted
// contents.
type BufferTree = buffertree.Tree

// BufferTreeConfig tunes a buffer tree's fanout and per-node buffer size.
type BufferTreeConfig = buffertree.Config

// NewBufferTree creates an empty buffer tree.
func NewBufferTree(vol *Volume, pool *Pool, cfg BufferTreeConfig) (*BufferTree, error) {
	return buffertree.New(vol, pool, cfg)
}

// Store is the online updatable key-value index: a buffer-tree write front
// over reference-counted B-tree generations, drained in the background.
// Inserts and deletes cost the buffer tree's amortised bound; reads see
// every operation accepted before them, through drains included.
type Store = store.Store

// StoreConfig tunes the store's seal threshold, cache and striping widths,
// and its write front's shape.
type StoreConfig = store.Config

// StoreScanner is a consistent snapshot range scan over a Store.
type StoreScanner = store.Scanner

// StoreSession is a point-read handle with a private cache budget that
// re-pins itself across generation handovers.
type StoreSession = store.Session

// ErrStoreClosed reports an operation on a closed Store.
var ErrStoreClosed = store.ErrClosed

// OpenStore creates a store on vol; the background drain's budget is
// reserved from pool up front, like SortIndex's loader budget.
func OpenStore(vol *Volume, pool *Pool, cfg StoreConfig) (*Store, error) {
	return store.Open(vol, pool, cfg)
}

// ---------------------------------------------------------------------------
// Sharded serving (range partitioning across volumes)
// ---------------------------------------------------------------------------

// ShardedTree serves the Index surface over S read-only B+-trees
// range-partitioned across independent volumes: routed Gets, merge-cut
// concurrent GetBatch, stitched Scans, composed sessions, aggregated
// Stats. See the package comment's sharded-serving section.
type ShardedTree = shard.Tree

// ShardedTreeOptions configures NewShardedTree; Splits are the S-1
// strictly increasing partition boundaries (shard i owns keys in
// [Splits[i-1], Splits[i])).
type ShardedTreeOptions = shard.TreeOptions

// ShardedStore is the updatable sharded index: one Store per shard, each
// on its own volume with its own background drain. Writes route to the
// owning shard's buffer-tree front; reads serve the Index surface.
type ShardedStore = shard.Store

// ShardedStoreOptions configures OpenShardedStore: the partition
// boundaries plus the per-shard StoreConfig.
type ShardedStoreOptions = shard.StoreOptions

// ShardedScanner stitches per-shard scanners into one key-ordered stream —
// range partitioning makes concatenation in shard order the merge.
type ShardedScanner = shard.Scanner

// ShardedSession composes per-shard read sessions, each with its own
// reserved budget on its shard's pool; batches fan out across them.
type ShardedSession = shard.Session

// NewShardedTree assembles a sharded serving facade over per-shard trees
// built separately (each on its own volume); every key a shard's tree
// holds must fall in the shard's split interval. The trees are used in
// place; the caller keeps ownership of their volumes and pools.
func NewShardedTree(shards []*BTree, opts *ShardedTreeOptions) (*ShardedTree, error) {
	return shard.NewTree(shards, opts)
}

// OpenShardedStore opens one store per volume — vols[i] and pools[i] back
// shard i — behind the sharded facade. Each shard's drain budget is
// reserved from its own pool at open, and its drains run independently.
func OpenShardedStore(vols []*Volume, pools []*Pool, opts *ShardedStoreOptions) (*ShardedStore, error) {
	return shard.OpenStore(vols, pools, opts)
}

// PQ is an external-memory priority queue (merge-based): N inserts and N
// delete-mins cost O(Sort(N)) I/Os in total.
type PQ = pqueue.Queue

// NewPQ creates an empty external priority queue.
func NewPQ(vol *Volume, pool *Pool) (*PQ, error) { return pqueue.New(vol, pool) }

// ---------------------------------------------------------------------------
// Graphs and lists (survey §8)
// ---------------------------------------------------------------------------

// Graph is a static graph stored as a sorted adjacency file on a volume.
type Graph = emgraph.Graph

// BuildGraph builds a directed graph on v vertices from an arc file.
func BuildGraph(vol *Volume, pool *Pool, v int64, arcs *File[Pair]) (*Graph, error) {
	return emgraph.Build(vol, pool, v, arcs)
}

// BuildUndirectedGraph builds an undirected graph (each edge stored both
// ways) on v vertices from an edge file.
func BuildUndirectedGraph(vol *Volume, pool *Pool, v int64, edges *File[Pair]) (*Graph, error) {
	return emgraph.BuildUndirected(vol, pool, v, edges)
}

// BFS runs external breadth-first search from src on a (possibly directed)
// graph, returning (vertex, level) pairs sorted by vertex.
func BFS(g *Graph, pool *Pool, src int64) (*File[Pair], error) {
	return emgraph.BFS(g, pool, src)
}

// BFSUndirected is the Munagala–Ranade external BFS exactly as the survey
// states it — O(V + Sort(E)) I/Os — valid on undirected graphs only.
func BFSUndirected(g *Graph, pool *Pool, src int64) (*File[Pair], error) {
	return emgraph.BFSUndirected(g, pool, src)
}

// NaiveBFS is the baseline: textbook BFS probing an on-disk visited bitmap
// once per arc, Θ(V + E) I/Os.
func NaiveBFS(g *Graph, pool *Pool, src int64) (*File[Pair], error) {
	return emgraph.NaiveBFS(g, pool, src)
}

// ConnectedComponents labels every vertex of an undirected graph with the
// smallest vertex id in its component.
func ConnectedComponents(g *Graph, pool *Pool) (*File[Pair], error) {
	return emgraph.ConnectedComponents(g, pool)
}

// GridEdges generates the edges of a rows×cols grid graph, the canonical
// large-diameter BFS workload.
func GridEdges(vol *Volume, pool *Pool, rows, cols int) (*File[Pair], error) {
	return emgraph.GridEdges(vol, pool, rows, cols)
}

// ListTail is the successor value marking the end of a linked list.
const ListTail = listrank.Tail

// RankList computes each node's distance from the head of an on-disk linked
// list in O(Sort(N)) I/Os by independent-set contraction.
func RankList(list *File[Pair], pool *Pool, head int64) (*File[Pair], error) {
	return listrank.Rank(list, pool, head)
}

// RankListNaive chases pointers one random block read per node: Θ(N) I/Os.
func RankListNaive(list *File[Pair], pool *Pool, head int64) (*File[Pair], error) {
	return listrank.NaiveRank(list, pool, head)
}

// ---------------------------------------------------------------------------
// Batched geometry (survey §5: distribution sweep)
// ---------------------------------------------------------------------------

// Segment is an axis-parallel segment for the geometry algorithms.
type Segment = geometry.Segment

// SegmentCodec is the Codec for Segment.
type SegmentCodec = geometry.SegmentCodec

// HSeg constructs a horizontal segment from (x1,y) to (x2,y).
func HSeg(id int64, x1, x2, y float64) Segment { return geometry.Horizontal(id, x1, x2, y) }

// VSeg constructs a vertical segment from (x,y1) to (x,y2).
func VSeg(id int64, x, y1, y2 float64) Segment { return geometry.Vertical(id, x, y1, y2) }

// Intersections reports all horizontal/vertical crossing pairs by
// distribution sweep in O(Sort(N) + Z/B) I/Os.
func Intersections(segs *File[Segment], pool *Pool) (*File[Pair], error) {
	return geometry.Intersections(segs, pool)
}

// NaiveIntersections is the all-pairs baseline, Θ(N²/B) I/Os.
func NaiveIntersections(segs *File[Segment], pool *Pool) (*File[Pair], error) {
	return geometry.NaiveIntersections(segs, pool)
}

// ---------------------------------------------------------------------------
// Elementary collections, tree computations, and the FFT
// ---------------------------------------------------------------------------

// ExtStack is an external-memory stack: amortised O(1/B) I/Os per
// push/pop via two-block buffering.
type ExtStack[T any] = extcoll.Stack[T]

// ExtQueue is an external-memory FIFO queue: amortised O(1/B) I/Os per op.
type ExtQueue[T any] = extcoll.Queue[T]

// NewExtStack creates an empty external stack on vol.
func NewExtStack[T any](vol *Volume, pool *Pool, codec Codec[T]) (*ExtStack[T], error) {
	return extcoll.NewStack(vol, pool, codec)
}

// NewExtQueue creates an empty external queue on vol.
func NewExtQueue[T any](vol *Volume, pool *Pool, codec Codec[T]) (*ExtQueue[T], error) {
	return extcoll.NewQueue(vol, pool, codec)
}

// EulerTour is a rooted tree linearised for list-ranking computations.
type EulerTour = emtree.Tour

// BuildEulerTour linearises a rooted tree given as (parent, child) pairs in
// O(Sort(N)) I/Os.
func BuildEulerTour(edges *File[Pair], pool *Pool, n, root int64) (*EulerTour, error) {
	return emtree.BuildEulerTour(edges, pool, n, root)
}

// TreeDepths computes every node's depth via the Euler-tour technique in
// O(Sort(N)) I/Os.
func TreeDepths(t *EulerTour, pool *Pool) (*File[Pair], error) {
	return emtree.Depths(t, pool)
}

// TreeSubtreeSizes computes every node's subtree size via the Euler-tour
// technique in O(Sort(N)) I/Os.
func TreeSubtreeSizes(t *EulerTour, pool *Pool) (*File[Pair], error) {
	return emtree.SubtreeSizes(t, pool)
}

// RankListWeighted ranks a weighted on-disk linked list — rank(x) is the
// sum of edge weights from head — in O(Sort(N)) I/Os.
func RankListWeighted(list *File[Triple], pool *Pool, head int64) (*File[Pair], error) {
	return listrank.RankWeighted(list, pool, head)
}

// Combine computes a DAG vertex's value from its in-neighbours' values
// (given in ascending order) for time-forward processing.
type Combine = timefwd.Combine

// TimeForwardEval evaluates a topologically-numbered DAG stored on disk by
// time-forward processing — values travel to their consumers through an
// external priority queue — in O(Sort(E)) I/Os.
func TimeForwardEval(vol *Volume, pool *Pool, v int64, arcs *File[Pair], fn Combine) (*File[Pair], error) {
	return timefwd.Eval(vol, pool, v, arcs, fn)
}

// TimeForwardEvalNaive is the baseline that reads each predecessor's value
// with a random block I/O per arc: Θ(E) I/Os.
func TimeForwardEvalNaive(vol *Volume, pool *Pool, v int64, arcs *File[Pair], fn Combine) (*File[Pair], error) {
	return timefwd.EvalNaive(vol, pool, v, arcs, fn)
}

// Complex is a complex sample for the external FFT.
type Complex = fft.Complex

// ComplexCodec is the Codec for Complex.
type ComplexCodec = fft.ComplexCodec

// FFT computes the forward DFT of a power-of-two-length file with the
// six-step external algorithm: O(Sort(N)) I/Os (requires √N ≤ M).
func FFT(f *File[Complex], pool *Pool) (*File[Complex], error) {
	return fft.Forward(f, pool)
}

// InverseFFT computes the scaled inverse DFT, so InverseFFT(FFT(x)) = x.
func InverseFFT(f *File[Complex], pool *Pool) (*File[Complex], error) {
	return fft.Inverse(f, pool)
}

// FFTNaiveStages is the unblocked butterfly baseline, Θ(N·log₂N) I/Os.
func FFTNaiveStages(f *File[Complex], pool *Pool) (*File[Complex], error) {
	return fft.NaiveStages(f, pool, -1)
}

// ---------------------------------------------------------------------------
// Paging (survey §2.2: memory hierarchy management)
// ---------------------------------------------------------------------------

// FaultsLRU counts page faults of least-recently-used eviction on a
// reference string with the given frame count.
func FaultsLRU(refs []int64, frames int) int { return cache.FaultsLRU(refs, frames) }

// FaultsFIFO counts page faults of first-in-first-out eviction.
func FaultsFIFO(refs []int64, frames int) int { return cache.FaultsFIFO(refs, frames) }

// FaultsCLOCK counts page faults of the CLOCK (second-chance) policy.
func FaultsCLOCK(refs []int64, frames int) int { return cache.FaultsCLOCK(refs, frames) }

// FaultsMIN counts page faults of Belady's optimal offline policy, the
// lower bound every online policy is compared against.
func FaultsMIN(refs []int64, frames int) int { return cache.FaultsMIN(refs, frames) }
