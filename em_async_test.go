package em_test

import (
	"math/rand"
	"testing"
	"time"

	"em"
)

// TestFacadeAsyncScan checks the prefetching scan through the public API:
// same records, same counted I/Os as ForEach.
func TestFacadeAsyncScan(t *testing.T) {
	vol, pool := env(t, 256, 16, 4)
	recs := randomRecords(rand.New(rand.NewSource(3)), 1000)
	f, err := em.FromSlice(vol, pool, em.RecordCodec{}, recs)
	if err != nil {
		t.Fatal(err)
	}

	vol.Stats().Reset()
	var syncOut []em.Record
	if err := em.ForEach(f, pool, func(r em.Record) error {
		syncOut = append(syncOut, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	syncReads := vol.Stats().Snapshot().Reads

	vol.Stats().Reset()
	var asyncOut []em.Record
	if err := em.AsyncScan(f, pool, func(r em.Record) error {
		asyncOut = append(asyncOut, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	asyncReads := vol.Stats().Snapshot().Reads

	if len(syncOut) != len(asyncOut) {
		t.Fatalf("lengths %d vs %d", len(syncOut), len(asyncOut))
	}
	for i := range syncOut {
		if syncOut[i] != asyncOut[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	if syncReads != asyncReads {
		t.Fatalf("reads differ: sync %d async %d", syncReads, asyncReads)
	}
	if pool.InUse() != 0 {
		t.Fatalf("frame leak: %d", pool.InUse())
	}
}

// TestFacadeAsyncSortOnLatencyVolume runs the async sort end to end on a
// worker-engine volume through the public API and verifies the result.
func TestFacadeAsyncSortOnLatencyVolume(t *testing.T) {
	vol := em.MustVolume(em.Config{
		BlockBytes: 256, MemBlocks: 32, Disks: 4,
		DiskLatency: 10 * time.Microsecond,
	})
	defer vol.Close()
	pool := em.PoolFor(vol)
	recs := randomRecords(rand.New(rand.NewSource(9)), 3000)
	f, err := em.FromSlice(vol, pool, em.RecordCodec{}, recs)
	if err != nil {
		t.Fatal(err)
	}
	sorted, err := em.SortRecords(f, pool, &em.SortOptions{Width: 4, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := em.IsSorted(sorted, pool, em.Record.Less)
	if err != nil || !ok {
		t.Fatalf("async sort output not sorted (err=%v)", err)
	}
	if sorted.Len() != int64(len(recs)) {
		t.Fatalf("length changed: %d != %d", sorted.Len(), len(recs))
	}
	if pool.InUse() != 0 {
		t.Fatalf("frame leak: %d", pool.InUse())
	}
}

// TestFacadePrefetchReaderAndAsyncWriter round-trips through the exported
// asynchronous stream types.
func TestFacadePrefetchReaderAndAsyncWriter(t *testing.T) {
	vol, pool := env(t, 256, 16, 4)
	f := em.NewFile[em.Record](vol, em.RecordCodec{})
	w, err := em.NewAsyncWriter(f, pool, 2)
	if err != nil {
		t.Fatal(err)
	}
	recs := randomRecords(rand.New(rand.NewSource(5)), 500)
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := em.NewPrefetchReader(f, pool, 2)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for {
		v, ok, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if v != recs[i] {
			t.Fatalf("record %d differs", i)
		}
		i++
	}
	r.Close()
	if i != len(recs) {
		t.Fatalf("read %d records, want %d", i, len(recs))
	}
	if pool.InUse() != 0 {
		t.Fatalf("frame leak: %d", pool.InUse())
	}
}
