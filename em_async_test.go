package em_test

import (
	"math/rand"
	"testing"
	"time"

	"em"
)

// TestFacadeAsyncScan checks the prefetching scan through the public API:
// same records, same counted I/Os as ForEach.
func TestFacadeAsyncScan(t *testing.T) {
	vol, pool := env(t, 256, 16, 4)
	recs := randomRecords(rand.New(rand.NewSource(3)), 1000)
	f, err := em.FromSlice(vol, pool, em.RecordCodec{}, recs)
	if err != nil {
		t.Fatal(err)
	}

	vol.Stats().Reset()
	var syncOut []em.Record
	if err := em.ForEach(f, pool, func(r em.Record) error {
		syncOut = append(syncOut, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	syncReads := vol.Stats().Snapshot().Reads

	vol.Stats().Reset()
	var asyncOut []em.Record
	if err := em.AsyncScan(f, pool, func(r em.Record) error {
		asyncOut = append(asyncOut, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	asyncReads := vol.Stats().Snapshot().Reads

	if len(syncOut) != len(asyncOut) {
		t.Fatalf("lengths %d vs %d", len(syncOut), len(asyncOut))
	}
	for i := range syncOut {
		if syncOut[i] != asyncOut[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	if syncReads != asyncReads {
		t.Fatalf("reads differ: sync %d async %d", syncReads, asyncReads)
	}
	if pool.InUse() != 0 {
		t.Fatalf("frame leak: %d", pool.InUse())
	}
}

// TestFacadeAsyncSortOnLatencyVolume runs the async sort end to end on a
// worker-engine volume through the public API and verifies the result.
func TestFacadeAsyncSortOnLatencyVolume(t *testing.T) {
	vol := em.MustVolume(em.Config{
		BlockBytes: 256, MemBlocks: 32, Disks: 4,
		DiskLatency: 10 * time.Microsecond,
	})
	defer vol.Close()
	pool := em.PoolFor(vol)
	recs := randomRecords(rand.New(rand.NewSource(9)), 3000)
	f, err := em.FromSlice(vol, pool, em.RecordCodec{}, recs)
	if err != nil {
		t.Fatal(err)
	}
	sorted, err := em.SortRecords(f, pool, &em.SortOptions{Width: 4, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := em.IsSorted(sorted, pool, em.Record.Less)
	if err != nil || !ok {
		t.Fatalf("async sort output not sorted (err=%v)", err)
	}
	if sorted.Len() != int64(len(recs)) {
		t.Fatalf("length changed: %d != %d", sorted.Len(), len(recs))
	}
	if pool.InUse() != 0 {
		t.Fatalf("frame leak: %d", pool.InUse())
	}
}

// TestFacadePrefetchReaderAndAsyncWriter round-trips through the exported
// asynchronous stream types.
func TestFacadePrefetchReaderAndAsyncWriter(t *testing.T) {
	vol, pool := env(t, 256, 16, 4)
	f := em.NewFile[em.Record](vol, em.RecordCodec{})
	w, err := em.NewAsyncWriter(f, pool, 2)
	if err != nil {
		t.Fatal(err)
	}
	recs := randomRecords(rand.New(rand.NewSource(5)), 500)
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := em.NewPrefetchReader(f, pool, 2)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for {
		v, ok, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if v != recs[i] {
			t.Fatalf("record %d differs", i)
		}
		i++
	}
	r.Close()
	if i != len(recs) {
		t.Fatalf("read %d records, want %d", i, len(recs))
	}
	if pool.InUse() != 0 {
		t.Fatalf("frame leak: %d", pool.InUse())
	}
}

// TestFacadeAsyncDistributionSortOnLatencyVolume runs the async distribution
// sort end to end on a worker-engine volume through the public API — the
// options DistributionSort used to silently drop — and verifies the result.
func TestFacadeAsyncDistributionSortOnLatencyVolume(t *testing.T) {
	vol := em.MustVolume(em.Config{
		BlockBytes: 256, MemBlocks: 48, Disks: 4,
		DiskLatency: 10 * time.Microsecond,
	})
	defer vol.Close()
	pool := em.PoolFor(vol)
	recs := randomRecords(rand.New(rand.NewSource(11)), 3000)
	f, err := em.FromSlice(vol, pool, em.RecordCodec{}, recs)
	if err != nil {
		t.Fatal(err)
	}
	sorted, err := em.DistributionSort(f, pool, em.Record.Less, &em.SortOptions{Width: 4, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := em.IsSorted(sorted, pool, em.Record.Less)
	if err != nil || !ok {
		t.Fatalf("async distribution sort output not sorted (err=%v)", err)
	}
	if sorted.Len() != int64(len(recs)) {
		t.Fatalf("length changed: %d != %d", sorted.Len(), len(recs))
	}
	if pool.InUse() != 0 {
		t.Fatalf("frame leak: %d", pool.InUse())
	}
}

// TestFacadeAsyncBulkLoadMatchesSync round-trips a sorted file through the
// synchronous and forecasting bulk loaders and checks the trees answer
// identically, with no frames retained beyond the trees' own caches.
func TestFacadeAsyncBulkLoadMatchesSync(t *testing.T) {
	vol, pool := env(t, 256, 32, 4)
	recs := make([]em.Record, 2000)
	for i := range recs {
		recs[i] = em.Record{Key: uint64(i + 1), Val: uint64(i * 3)}
	}
	f, err := em.FromSlice(vol, pool, em.RecordCodec{}, recs)
	if err != nil {
		t.Fatal(err)
	}
	sync, err := em.BulkLoadBTree(vol, pool, 8, f)
	if err != nil {
		t.Fatal(err)
	}
	async, err := em.BulkLoadBTreeWith(vol, pool, 8, f, &em.BulkLoadOptions{Width: 4, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		sv, sok, serr := sync.Get(r.Key)
		av, aok, aerr := async.Get(r.Key)
		if serr != nil || aerr != nil || !sok || !aok || sv != av || av != r.Val {
			t.Fatalf("key %d: sync (%d,%v,%v) async (%d,%v,%v)", r.Key, sv, sok, serr, av, aok, aerr)
		}
	}
	if err := sync.Close(); err != nil {
		t.Fatal(err)
	}
	if err := async.Close(); err != nil {
		t.Fatal(err)
	}
	if pool.InUse() != 0 {
		t.Fatalf("frame leak: %d", pool.InUse())
	}
}

// TestAsyncSortIndexSpeedupGate is the wall-clock acceptance gate for
// forecasting beyond the merge path, the distribution-side mirror of the
// engine's TestDiskLatencyParallelSpeedup: at a fixed per-block service
// latency, the async width-4 distribution sort and B-tree bulk load on four
// disks must beat their serial one-disk synchronous baselines by >= 1.5x
// (the model predicts more; 1.5x leaves headroom for scheduler noise).
func TestAsyncSortIndexSpeedupGate(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const latency = 2 * time.Millisecond
	run := func(disks int, async bool) (distMs, bulkMs time.Duration) {
		vol := em.MustVolume(em.Config{
			BlockBytes: 1024, MemBlocks: 96, Disks: disks, DiskLatency: latency,
		})
		defer vol.Close()
		pool := em.PoolFor(vol)
		recs := randomRecords(rand.New(rand.NewSource(29)), 1<<13)
		f, err := em.FromSlice(vol, pool, em.RecordCodec{}, recs)
		if err != nil {
			t.Fatal(err)
		}
		opts := &em.SortOptions{Width: disks, Async: async}
		start := time.Now()
		sorted, err := em.DistributionSort(f, pool, em.Record.Less, opts)
		if err != nil {
			t.Fatal(err)
		}
		distMs = time.Since(start)
		start = time.Now()
		tr, err := em.BulkLoadBTreeWith(vol, pool, 8, sorted, &em.BulkLoadOptions{Width: disks, Async: async})
		if err != nil {
			t.Fatal(err)
		}
		bulkMs = time.Since(start)
		if tr.Len() != sorted.Len() {
			t.Fatalf("bulk load lost records: %d != %d", tr.Len(), sorted.Len())
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		return distMs, bulkMs
	}
	serialDist, serialBulk := run(1, false)
	asyncDist, asyncBulk := run(4, true)
	distSpeedup := float64(serialDist) / float64(asyncDist)
	bulkSpeedup := float64(serialBulk) / float64(asyncBulk)
	t.Logf("dist: D=1 sync %v, D=4 async %v, speedup %.2fx", serialDist, asyncDist, distSpeedup)
	t.Logf("bulk: D=1 sync %v, D=4 async %v, speedup %.2fx", serialBulk, asyncBulk, bulkSpeedup)
	if distSpeedup < 1.5 {
		t.Errorf("async distribution sort D=4 speedup %.2fx, want >= 1.5x", distSpeedup)
	}
	if bulkSpeedup < 1.5 {
		t.Errorf("async bulk load D=4 speedup %.2fx, want >= 1.5x", bulkSpeedup)
	}
}
