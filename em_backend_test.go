package em_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"em"
)

// sortIndexWorkload drives the acceptance workload for the storage-backend
// invariants — MergeSort, DistributionSort, and B-tree BulkLoad over the
// same input — on one volume and returns the cumulative Stats snapshot.
// Keys are a shuffled permutation of 1..n so the bulk load sees strictly
// increasing keys once sorted.
func sortIndexWorkload(t *testing.T, vol *em.Volume, seed int64, n int, async bool) em.Stats {
	t.Helper()
	pool := em.PoolFor(vol)
	rng := rand.New(rand.NewSource(seed))
	recs := make([]em.Record, n)
	for i := range recs {
		recs[i] = em.Record{Key: uint64(i + 1), Val: rng.Uint64()}
	}
	rng.Shuffle(n, func(i, j int) { recs[i], recs[j] = recs[j], recs[i] })

	f, err := em.FromSlice(vol, pool, em.RecordCodec{}, recs)
	if err != nil {
		t.Fatal(err)
	}
	vol.Stats().Reset()
	opts := &em.SortOptions{Width: vol.Disks(), Async: async}
	merged, err := em.SortRecords(f, pool, opts)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := em.DistributionSort(f, pool, em.Record.Less, opts)
	if err != nil {
		t.Fatal(err)
	}
	dist.Release()
	tr, err := em.BulkLoadBTreeWith(vol, pool, 8, merged, &em.BulkLoadOptions{Width: vol.Disks(), Async: async})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != int64(n) {
		t.Fatalf("bulk load lost records: %d != %d", tr.Len(), n)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if pool.InUse() != 0 {
		t.Fatalf("frame leak: %d", pool.InUse())
	}
	return vol.Stats().Snapshot()
}

// TestQuickBackendCountersIdentical is the acceptance property of the
// file-backed volume backend: for the same MergeSort + DistributionSort +
// BulkLoad workload, the Stats snapshot — reads, writes, steps, and the
// per-disk shards — is byte-identical between the memory backend and the
// file backend, in both synchronous and forecasting (async) modes.
func TestQuickBackendCountersIdentical(t *testing.T) {
	prop := func(seedRaw uint32, nRaw uint16, disksRaw uint8, async bool) bool {
		seed := int64(seedRaw)
		n := 512 + int(nRaw)%2048
		disks := 1 + int(disksRaw)%4
		cfg := em.Config{BlockBytes: 256, MemBlocks: 96, Disks: disks}

		memVol := em.MustVolume(cfg)
		memStats := sortIndexWorkload(t, memVol, seed, n, async)
		memVol.Close()

		fileVol, err := em.NewFileVolume(cfg, t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		fileStats := sortIndexWorkload(t, fileVol, seed, n, async)
		if err := fileVol.Close(); err != nil {
			t.Fatal(err)
		}

		if !reflect.DeepEqual(memStats, fileStats) {
			t.Logf("seed=%d n=%d D=%d async=%v: mem %+v file %+v", seed, n, disks, async, memStats, fileStats)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAsyncMatchesSyncPerBackend re-runs the async==sync counter
// property on each storage backend: at equal fan-out — forced below both
// paths' natural budgets, with the async pool compensated by the 2×width
// frames its double-buffered writer holds, exactly like the extsort suite —
// the forecasting distribution sort and bulk load must charge the
// synchronous paths' I/Os to the byte, whether the blocks live in memory or
// in files.
func TestQuickAsyncMatchesSyncPerBackend(t *testing.T) {
	const width, fanOut, syncCap = 2, 3, 20
	for _, backend := range []string{"mem", "file"} {
		t.Run(backend, func(t *testing.T) {
			prop := func(seedRaw uint32, nRaw uint16) bool {
				seed := uint64(seedRaw)
				n := 1 + int(nRaw)%1500
				run := func(async bool) (distStats, bulkStats em.Stats) {
					cfg := em.Config{BlockBytes: 256, MemBlocks: 24, Disks: 4}
					if backend == "file" {
						cfg.Dir = t.TempDir()
					}
					vol := em.MustVolume(cfg)
					defer vol.Close()
					capacity := syncCap
					if async {
						capacity += 2 * width
					}
					pool := em.NewPool(cfg.BlockBytes, capacity)
					// Pairwise-distinct keys (odd multiplier is a bijection
					// mod 2^64): no all-equal fallback in the distribution
					// sort, strictly increasing keys for the bulk load.
					vs := make([]em.Record, n)
					for i := range vs {
						vs[i] = em.Record{Key: (uint64(i) + seed) * 2654435761, Val: uint64(i)}
					}
					f, err := em.FromSlice(vol, pool, em.RecordCodec{}, vs)
					if err != nil {
						t.Fatal(err)
					}
					vol.Stats().Reset()
					opts := &em.SortOptions{Width: width, ForceFanIn: fanOut, Async: async}
					sorted, err := em.DistributionSort(f, pool, em.Record.Less, opts)
					if err != nil {
						t.Fatal(err)
					}
					distStats = vol.Stats().Snapshot()

					vol.Stats().Reset()
					tr, err := em.BulkLoadBTreeWith(vol, pool, 8, sorted, &em.BulkLoadOptions{Width: width, Async: async})
					if err != nil {
						t.Fatal(err)
					}
					bulkStats = vol.Stats().Snapshot()
					if tr.Len() != int64(n) {
						t.Fatalf("bulk load lost records: %d != %d", tr.Len(), n)
					}
					if err := tr.Close(); err != nil {
						t.Fatal(err)
					}
					if pool.InUse() != 0 {
						t.Fatalf("async=%v: leaked %d frames", async, pool.InUse())
					}
					return distStats, bulkStats
				}
				syncDist, syncBulk := run(false)
				asyncDist, asyncBulk := run(true)
				if !reflect.DeepEqual(syncDist, asyncDist) {
					t.Logf("seed=%d n=%d dist: sync %+v async %+v", seed, n, syncDist, asyncDist)
					return false
				}
				if !reflect.DeepEqual(syncBulk, asyncBulk) {
					t.Logf("seed=%d n=%d bulk: sync %+v async %+v", seed, n, syncBulk, asyncBulk)
					return false
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 6}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFileVolumeEndToEnd exercises the facade constructor on a worker-engine
// file volume: async sort and bulk load against real files, verified output.
func TestFileVolumeEndToEnd(t *testing.T) {
	vol, err := em.NewFileVolume(em.Config{BlockBytes: 256, MemBlocks: 64, Disks: 4}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer vol.Close()
	pool := em.PoolFor(vol)
	recs := randomRecords(rand.New(rand.NewSource(77)), 4000)
	f, err := em.FromSlice(vol, pool, em.RecordCodec{}, recs)
	if err != nil {
		t.Fatal(err)
	}
	sorted, err := em.SortRecords(f, pool, &em.SortOptions{Width: 4, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := em.IsSorted(sorted, pool, em.Record.Less)
	if err != nil || !ok {
		t.Fatalf("file-backed async sort output not sorted (err=%v)", err)
	}
	if sorted.Len() != int64(len(recs)) {
		t.Fatalf("length changed: %d != %d", sorted.Len(), len(recs))
	}
	if pool.InUse() != 0 {
		t.Fatalf("frame leak: %d", pool.InUse())
	}
}
