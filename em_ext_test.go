package em_test

// Facade tests for the extension subsystems: external stack/queue, Euler
// tours, weighted list ranking, and the external FFT.

import (
	"math"
	"math/rand"
	"testing"

	"em"
)

func TestFacadeExtStackAndQueue(t *testing.T) {
	vol, pool := env(t, 256, 8, 1)
	s, err := em.NewExtStack(vol, pool, em.U64Codec{})
	if err != nil {
		t.Fatal(err)
	}
	q, err := em.NewExtQueue(vol, pool, em.U64Codec{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	vol.Stats().Reset()
	for i := uint64(0); i < n; i++ {
		if err := s.Push(i); err != nil {
			t.Fatal(err)
		}
		if err := q.Push(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < n; i++ {
		sv, ok, err := s.Pop()
		if err != nil || !ok || sv != n-1-i {
			t.Fatalf("stack pop %d = %d,%v,%v", i, sv, ok, err)
		}
		qv, ok, err := q.Pop()
		if err != nil || !ok || qv != i {
			t.Fatalf("queue pop %d = %d,%v,%v", i, qv, ok, err)
		}
	}
	// Amortised O(1/B): 4n operations on 32-record blocks must cost far
	// fewer than n I/Os.
	if got := vol.Stats().Total(); got > n {
		t.Fatalf("collections used %d I/Os for %d ops", got, 4*n)
	}
	s.Close()
	q.Close()
}

func TestFacadeEulerTour(t *testing.T) {
	vol, pool := env(t, 256, 12, 1)
	// Balanced binary tree on 15 nodes: parent(v) = (v-1)/2.
	var pairs []em.Pair
	for v := int64(1); v < 15; v++ {
		pairs = append(pairs, em.Pair{A: (v - 1) / 2, B: v})
	}
	ef, err := em.FromSlice(vol, pool, em.PairCodec{}, pairs)
	if err != nil {
		t.Fatal(err)
	}
	tour, err := em.BuildEulerTour(ef, pool, 15, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tour.Release()
	depths, err := em.TreeDepths(tour, pool)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64]int64{}
	if err := em.ForEach(depths, pool, func(p em.Pair) error {
		got[p.A] = p.B
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for v := int64(0); v < 15; v++ {
		want := int64(math.Floor(math.Log2(float64(v + 1))))
		if got[v] != want {
			t.Fatalf("depth(%d) = %d, want %d", v, got[v], want)
		}
	}
	sizes, err := em.TreeSubtreeSizes(tour, pool)
	if err != nil {
		t.Fatal(err)
	}
	sz := map[int64]int64{}
	if err := em.ForEach(sizes, pool, func(p em.Pair) error {
		sz[p.A] = p.B
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sz[0] != 15 || sz[1] != 7 || sz[3] != 3 || sz[7] != 1 {
		t.Fatalf("sizes wrong: root=%d, 1=%d, 3=%d, leaf=%d", sz[0], sz[1], sz[3], sz[7])
	}
}

func TestFacadeWeightedRank(t *testing.T) {
	vol, pool := env(t, 256, 12, 1)
	// List 0 -> 1 -> 2 with weights 5 then 7.
	list := []em.Triple{
		{A: 0, B: 1, C: 5},
		{A: 1, B: 2, C: 7},
		{A: 2, B: em.ListTail, C: 0},
	}
	lf, err := em.FromSlice(vol, pool, em.TripleCodec{}, list)
	if err != nil {
		t.Fatal(err)
	}
	ranks, err := em.RankListWeighted(lf, pool, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := em.ToSlice(ranks, pool)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64]int64{0: 0, 1: 5, 2: 12}
	for _, p := range got {
		if want[p.A] != p.B {
			t.Fatalf("rank(%d) = %d, want %d", p.A, p.B, want[p.A])
		}
	}
}

func TestFacadeFFT(t *testing.T) {
	vol, pool := env(t, 256, 16, 1)
	rng := rand.New(rand.NewSource(21))
	n := 1 << 9
	x := make([]em.Complex, n)
	for i := range x {
		x[i] = em.Complex{Re: rng.NormFloat64(), Im: rng.NormFloat64()}
	}
	f, err := em.FromSlice(vol, pool, em.ComplexCodec{}, x)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := em.FFT(f, pool)
	if err != nil {
		t.Fatal(err)
	}
	back, err := em.InverseFFT(spec, pool)
	if err != nil {
		t.Fatal(err)
	}
	got, err := em.ToSlice(back, pool)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(got[i].Re-x[i].Re) > 1e-9 || math.Abs(got[i].Im-x[i].Im) > 1e-9 {
			t.Fatalf("round trip diverged at %d: %v vs %v", i, got[i], x[i])
		}
	}
	if pool.InUse() != 0 {
		t.Fatalf("leaked %d frames", pool.InUse())
	}
}
