package em_test

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"em"
)

// queryEnv creates a volume on the requested backend and a tree over a
// shuffled permutation of keys 1..n (distinct, so SortIndex/BulkLoad
// accept it), returning the sorted key list for reference checks.
func queryEnv(t *testing.T, backend string, seed int64, n, disks int) (*em.Volume, *em.Pool, *em.BTree, []uint64) {
	t.Helper()
	cfg := em.Config{BlockBytes: 256, MemBlocks: 96, Disks: disks}
	var vol *em.Volume
	var err error
	if backend == "file" {
		vol, err = em.NewFileVolume(cfg, t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
	} else {
		vol = em.MustVolume(cfg)
	}
	pool := em.PoolFor(vol)
	rng := rand.New(rand.NewSource(seed))
	recs := make([]em.Record, n)
	keys := make([]uint64, n)
	for i := range recs {
		k := uint64(i+1) * 3
		recs[i] = em.Record{Key: k, Val: k + 7}
		keys[i] = k
	}
	rng.Shuffle(n, func(i, j int) { recs[i], recs[j] = recs[j], recs[i] })
	f, err := em.FromSlice(vol, pool, em.RecordCodec{}, recs)
	if err != nil {
		t.Fatal(err)
	}
	sorted, err := em.SortRecords(f, pool, &em.SortOptions{Width: disks})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := em.BulkLoadBTreeWith(vol, pool, 8, sorted, &em.BulkLoadOptions{Width: disks})
	if err != nil {
		t.Fatal(err)
	}
	return vol, pool, tr, keys
}

// TestQuickGetBatchMatchesGetLoop is the read-path acceptance property at
// the facade level, the GetBatch analogue of TestQuickBackendCountersIdentical:
// across random batch sizes, tree heights, and both storage backends,
// GetBatch from a cold cache returns exactly what a loop of Gets returns
// and counts no more block reads.
func TestQuickGetBatchMatchesGetLoop(t *testing.T) {
	for _, backend := range []string{"mem", "file"} {
		t.Run(backend, func(t *testing.T) {
			prop := func(seedRaw uint32, nRaw, qRaw uint16, disksRaw uint8) bool {
				seed := int64(seedRaw)
				n := 16 + int(nRaw)%2500
				q := 1 + int(qRaw)%800
				disks := 1 + int(disksRaw)%4
				vol, pool, tr, _ := queryEnv(t, backend, seed, n, disks)
				defer vol.Close()

				rng := rand.New(rand.NewSource(seed + 1))
				probes := make([]uint64, q)
				for i := range probes {
					probes[i] = uint64(rng.Intn(3*n + 6))
				}

				if err := tr.Rehome(pool, 8); err != nil {
					t.Fatal(err)
				}
				vol.Stats().Reset()
				loopVals := make([]uint64, q)
				loopFound := make([]bool, q)
				for i, k := range probes {
					v, ok, err := tr.Get(k)
					if err != nil {
						t.Fatal(err)
					}
					loopVals[i], loopFound[i] = v, ok
				}
				loopReads := vol.Stats().Snapshot().Reads

				if err := tr.Rehome(pool, 8); err != nil {
					t.Fatal(err)
				}
				vol.Stats().Reset()
				vals, found, err := tr.GetBatch(probes)
				if err != nil {
					t.Fatal(err)
				}
				batchReads := vol.Stats().Snapshot().Reads

				for i := range probes {
					if vals[i] != loopVals[i] || found[i] != loopFound[i] {
						t.Logf("%s n=%d q=%d probe %d: batch (%d,%v) loop (%d,%v)",
							backend, n, q, probes[i], vals[i], found[i], loopVals[i], loopFound[i])
						return false
					}
				}
				if batchReads > loopReads {
					t.Logf("%s n=%d q=%d D=%d: batch %d reads > loop %d",
						backend, n, q, disks, batchReads, loopReads)
					return false
				}
				if err := tr.Close(); err != nil {
					t.Fatal(err)
				}
				if pool.InUse() != 0 {
					t.Fatalf("frame leak: %d", pool.InUse())
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 6}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestQuickMinMaxMatchReference: Min and Max agree with a sorted reference
// slice across random insert/delete histories, on both storage backends.
func TestQuickMinMaxMatchReference(t *testing.T) {
	for _, backend := range []string{"mem", "file"} {
		t.Run(backend, func(t *testing.T) {
			prop := func(seedRaw uint32, nRaw uint16) bool {
				seed := int64(seedRaw)
				n := int(nRaw)%800 + 1
				cfg := em.Config{BlockBytes: 256, MemBlocks: 64, Disks: 2}
				var vol *em.Volume
				var err error
				if backend == "file" {
					vol, err = em.NewFileVolume(cfg, t.TempDir())
					if err != nil {
						t.Fatal(err)
					}
				} else {
					vol = em.MustVolume(cfg)
				}
				defer vol.Close()
				pool := em.PoolFor(vol)
				tr, err := em.NewBTree(vol, pool, 8)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(seed))
				live := map[uint64]uint64{}
				check := func() bool {
					ref := make([]uint64, 0, len(live))
					for k := range live {
						ref = append(ref, k)
					}
					sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
					mink, minv, minOK, err := tr.Min()
					if err != nil {
						t.Fatal(err)
					}
					maxk, maxv, maxOK, err := tr.Max()
					if err != nil {
						t.Fatal(err)
					}
					if len(ref) == 0 {
						return !minOK && !maxOK
					}
					return minOK && maxOK &&
						mink == ref[0] && minv == live[ref[0]] &&
						maxk == ref[len(ref)-1] && maxv == live[ref[len(ref)-1]]
				}
				if !check() { // empty tree
					return false
				}
				for i := 0; i < n; i++ {
					k := uint64(rng.Intn(200))
					if rng.Intn(3) == 0 {
						if _, err := tr.Delete(k); err != nil {
							t.Fatal(err)
						}
						delete(live, k)
					} else {
						v := uint64(i)
						if _, err := tr.Insert(k, v); err != nil {
							t.Fatal(err)
						}
						live[k] = v
					}
					if i%37 == 0 && !check() {
						return false
					}
				}
				ok := check()
				if err := tr.Close(); err != nil {
					t.Fatal(err)
				}
				return ok
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFacadeScannerAndSessions drives the serving surface end to end
// through the public API on the file backend: a prefetched scan equals
// Range record for record at no extra reads, and concurrent sessions
// answer correctly.
func TestFacadeScannerAndSessions(t *testing.T) {
	vol, pool, tr, keys := queryEnv(t, "file", 99, 3000, 4)
	defer vol.Close()
	if err := tr.Rehome(pool, 32); err != nil {
		t.Fatal(err)
	}
	if err := tr.Warm(); err != nil {
		t.Fatal(err)
	}

	lo, hi := keys[100], keys[2500]
	vol.Stats().Reset()
	var got []uint64
	if err := tr.RangePrefetch(pool, lo, hi, nil, func(k, v uint64) error {
		if v != k+7 {
			t.Fatalf("value mismatch at %d", k)
		}
		got = append(got, k)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	scanReads := vol.Stats().Snapshot().Reads

	vol.Stats().Reset()
	var want []uint64
	if err := tr.Range(lo, hi, func(k, v uint64) error {
		want = append(want, k)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	rangeReads := vol.Stats().Snapshot().Reads

	if len(got) != len(want) || len(got) != 2401 {
		t.Fatalf("scan %d records, range %d, want 2401", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: scan %d range %d", i, got[i], want[i])
		}
	}
	if scanReads > rangeReads {
		t.Fatalf("prefetched scan %d reads > range %d", scanReads, rangeReads)
	}

	s1, err := tr.NewSessionOn(pool, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := tr.NewSessionOn(pool, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 2)
	for i, s := range []*em.BTreeSession{s1, s2} {
		go func(i int, s *em.BTreeSession) {
			probes := make([]uint64, 64)
			for j := range probes {
				probes[j] = keys[(i*997+j*31)%len(keys)]
			}
			vals, found, err := s.GetBatch(probes)
			if err != nil {
				done <- err
				return
			}
			for j, k := range probes {
				if !found[j] || vals[j] != k+7 {
					t.Errorf("session %d: key %d -> %d,%v", i, k, vals[j], found[j])
				}
			}
			done <- nil
		}(i, s)
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if pool.InUse() != 0 {
		t.Fatalf("frame leak: %d", pool.InUse())
	}
}
