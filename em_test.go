package em_test

import (
	"math/rand"
	"testing"

	"em"
)

func env(t testing.TB, blockBytes, memBlocks, disks int) (*em.Volume, *em.Pool) {
	t.Helper()
	vol := em.MustVolume(em.Config{BlockBytes: blockBytes, MemBlocks: memBlocks, Disks: disks})
	return vol, em.PoolFor(vol)
}

func randomRecords(rng *rand.Rand, n int) []em.Record {
	rs := make([]em.Record, n)
	for i := range rs {
		rs[i] = em.Record{Key: rng.Uint64(), Val: uint64(i)}
	}
	return rs
}

// TestFacadeSortPipeline runs the quickstart flow end to end through the
// public API: materialise, sort, verify, count I/Os.
func TestFacadeSortPipeline(t *testing.T) {
	vol, pool := env(t, 512, 16, 1)
	rng := rand.New(rand.NewSource(1))
	recs := randomRecords(rng, 5000)
	f, err := em.FromSlice(vol, pool, em.RecordCodec{}, recs)
	if err != nil {
		t.Fatal(err)
	}
	vol.Stats().Reset()
	sorted, err := em.SortRecords(f, pool, nil)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := em.IsSorted(sorted, pool, em.Record.Less)
	if err != nil || !ok {
		t.Fatalf("not sorted (err=%v)", err)
	}
	if sorted.Len() != int64(len(recs)) {
		t.Fatalf("length changed: %d != %d", sorted.Len(), len(recs))
	}
	if vol.Stats().Total() == 0 {
		t.Fatal("sort performed no counted I/O")
	}
	if pool.InUse() != 0 {
		t.Fatalf("frame leak: %d", pool.InUse())
	}
}

// TestFacadeDictionaries exercises BTree, HashTable and BulkLoad through the
// facade.
func TestFacadeDictionaries(t *testing.T) {
	vol, pool := env(t, 512, 32, 1)
	bt, err := em.NewBTree(vol, pool, 8)
	if err != nil {
		t.Fatal(err)
	}
	ht, err := em.NewHashTable(vol, pool, 8)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 500; k++ {
		if _, err := bt.Insert(k*7, k); err != nil {
			t.Fatal(err)
		}
		if _, err := ht.Insert(k*7, k); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < 500; k++ {
		v, found, err := bt.Get(k * 7)
		if err != nil || !found || v != k {
			t.Fatalf("btree get(%d) = %d,%v,%v", k*7, v, found, err)
		}
		v, found, err = ht.Get(k * 7)
		if err != nil || !found || v != k {
			t.Fatalf("hash get(%d) = %d,%v,%v", k*7, v, found, err)
		}
	}
	if _, found, _ := bt.Get(3); found {
		t.Fatal("btree found absent key")
	}
	if err := bt.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ht.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeBufferTreeAndPQ checks the batched structures round-trip.
func TestFacadeBufferTreeAndPQ(t *testing.T) {
	vol, pool := env(t, 512, 32, 1)
	btc, err := em.NewBufferTree(vol, pool, em.BufferTreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	const n = 2000
	// Distinct keys: the buffer tree is a dictionary, so a repeated key
	// would overwrite (the latest operation per key wins at Seal).
	for _, k := range rng.Perm(n) {
		if err := btc.Insert(uint64(k), uint64(k)*3); err != nil {
			t.Fatal(err)
		}
	}
	out, err := btc.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != n {
		t.Fatalf("sealed %d records, want %d", out.Len(), n)
	}
	ok, err := em.IsSorted(out, pool, em.Record.Less)
	if err != nil || !ok {
		t.Fatalf("buffer tree output unsorted (err=%v)", err)
	}

	pq, err := em.NewPQ(vol, pool)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := pq.Push(rng.Uint64()%500, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	var last uint64
	for i := 0; i < 1000; i++ {
		k, _, ok, err := pq.PopMin()
		if err != nil || !ok {
			t.Fatalf("popmin %d: ok=%v err=%v", i, ok, err)
		}
		if k < last {
			t.Fatalf("heap order violated: %d after %d", k, last)
		}
		last = k
	}
	if _, _, ok, _ := pq.PopMin(); ok {
		t.Fatal("popmin on empty queue returned a value")
	}
	if err := pq.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeGraphAndList exercises graph building, BFS and list ranking.
func TestFacadeGraphAndList(t *testing.T) {
	vol, pool := env(t, 512, 16, 1)
	edges, err := em.GridEdges(vol, pool, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	g, err := em.BuildUndirectedGraph(vol, pool, 25, edges)
	if err != nil {
		t.Fatal(err)
	}
	lv, err := em.BFSUndirected(g, pool, 0)
	if err != nil {
		t.Fatal(err)
	}
	levels, err := em.ToSlice(lv, pool)
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 25 {
		t.Fatalf("BFS visited %d of 25", len(levels))
	}
	// Corner-to-corner distance on a 5x5 grid is 8.
	for _, p := range levels {
		if p.A == 24 && p.B != 8 {
			t.Fatalf("level(24) = %d, want 8", p.B)
		}
	}

	// A 100-node list 0 -> 1 -> ... -> 99.
	nodes := make([]em.Pair, 100)
	for i := range nodes {
		succ := int64(i + 1)
		if i == 99 {
			succ = em.ListTail
		}
		nodes[i] = em.Pair{A: int64(i), B: succ}
	}
	lf, err := em.FromSlice(vol, pool, em.PairCodec{}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	ranks, err := em.RankList(lf, pool, 0)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := em.ToSlice(ranks, pool)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rs {
		if p.A != p.B {
			t.Fatalf("rank(%d) = %d", p.A, p.B)
		}
	}
}

// TestFacadeGeometryAndPaging exercises the sweep and the paging policies.
func TestFacadeGeometryAndPaging(t *testing.T) {
	vol, pool := env(t, 512, 16, 1)
	segs := []em.Segment{
		em.HSeg(0, 0, 10, 5),
		em.VSeg(1, 5, 0, 10),
		em.VSeg(2, 50, 0, 10),
	}
	f, err := em.FromSlice(vol, pool, em.SegmentCodec{}, segs)
	if err != nil {
		t.Fatal(err)
	}
	out, err := em.Intersections(f, pool)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := em.ToSlice(out, pool)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0] != (em.Pair{A: 0, B: 1}) {
		t.Fatalf("intersections = %v", pairs)
	}

	// MIN dominates LRU dominates (or equals) pathological FIFO on loops.
	refs := make([]int64, 0, 300)
	for pass := 0; pass < 10; pass++ {
		for p := int64(0); p < 30; p++ {
			refs = append(refs, p)
		}
	}
	min := em.FaultsMIN(refs, 10)
	lru := em.FaultsLRU(refs, 10)
	if min > lru {
		t.Fatalf("MIN (%d) worse than LRU (%d)", min, lru)
	}
}

// TestFacadePermuteAndMatrix exercises permuting and matrix transpose.
func TestFacadePermuteAndMatrix(t *testing.T) {
	vol, pool := env(t, 512, 16, 1)
	n := 1 << 10
	recs := make([]uint64, n)
	for i := range recs {
		recs[i] = uint64(i)
	}
	f, err := em.FromSlice(vol, pool, em.U64Codec{}, recs)
	if err != nil {
		t.Fatal(err)
	}
	perm, err := em.BitReversalPerm(n)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := em.Permute(f, pool, perm, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := em.ToSlice(pf, pool)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if int(perm[v]) != i {
			t.Fatalf("perm mismatch at %d: record %d", i, v)
		}
	}

	m, err := em.MatrixFromSlice(vol, pool, 8, 16, seq(8*16))
	if err != nil {
		t.Fatal(err)
	}
	mt, err := em.Transpose(m, pool)
	if err != nil {
		t.Fatal(err)
	}
	if mt.Rows() != 16 || mt.Cols() != 8 {
		t.Fatalf("transpose shape %dx%d", mt.Rows(), mt.Cols())
	}
	v, err := mt.At(pool, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v != float64(2*16+3) {
		t.Fatalf("At(3,2) = %g", v)
	}
}

func seq(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = float64(i)
	}
	return s
}
