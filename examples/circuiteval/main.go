// Circuiteval: evaluate a dataflow circuit that lives on disk — the
// survey's time-forward processing application. The circuit here is a
// layered max-plus network (as in dynamic programming over a DAG): each
// gate outputs its id plus the maximum of its inputs. The same circuit is
// evaluated twice:
//
//   - time-forward processing: values travel to their consumers through an
//     external priority queue, O(Sort(E)) I/Os;
//   - naive evaluation: every wire triggers a random block read of its
//     source gate's value, Θ(E) I/Os.
//
// Run with:
//
//	go run ./examples/circuiteval
package main

import (
	"fmt"
	"log"
	"math/rand"

	"em"
)

const (
	gates      = 30_000
	fanIn      = 4
	blockBytes = 4096
	memBlocks  = 24
)

func main() {
	vol := em.MustVolume(em.Config{BlockBytes: blockBytes, MemBlocks: memBlocks, Disks: 1})
	pool := em.PoolFor(vol)

	// Wire each gate to fanIn earlier gates (gate ids are a topological
	// numbering by construction).
	rng := rand.New(rand.NewSource(4))
	var wires []em.Pair
	for g := int64(1); g < gates; g++ {
		for i := 0; i < fanIn && int64(i) < g; i++ {
			wires = append(wires, em.Pair{A: rng.Int63n(g), B: g})
		}
	}
	wf, err := em.FromSlice(vol, pool, em.PairCodec{}, wires)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit: %d gates, %d wires, on %d-byte blocks\n", gates, len(wires), blockBytes)

	maxPlus := func(g int64, inputs []int64) int64 {
		best := int64(0)
		for _, x := range inputs {
			if x > best {
				best = x
			}
		}
		return best + g%7 // bounded per-gate contribution keeps values small
	}

	vol.Stats().Reset()
	fast, err := em.TimeForwardEval(vol, pool, gates, wf, maxPlus)
	if err != nil {
		log.Fatal(err)
	}
	tfIOs := vol.Stats().Total()

	vol.Stats().Reset()
	slow, err := em.TimeForwardEvalNaive(vol, pool, gates, wf, maxPlus)
	if err != nil {
		log.Fatal(err)
	}
	naiveIOs := vol.Stats().Total()

	// The two evaluations must agree gate for gate.
	want := map[int64]int64{}
	if err := em.ForEach(fast, pool, func(p em.Pair) error {
		want[p.A] = p.B
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	var maxVal int64
	if err := em.ForEach(slow, pool, func(p em.Pair) error {
		if want[p.A] != p.B {
			return fmt.Errorf("gate %d: %d vs %d", p.A, want[p.A], p.B)
		}
		if p.B > maxVal {
			maxVal = p.B
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("deepest signal value: %d (both evaluations agree)\n", maxVal)
	fmt.Printf("time-forward (PQ):  %8d I/Os\n", tfIOs)
	fmt.Printf("naive per-wire read:%8d I/Os (%.0fx more)\n",
		naiveIOs, float64(naiveIOs)/float64(tfIOs))
}
