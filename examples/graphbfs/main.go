// Graphbfs: single-source shortest hop counts over a road-grid graph that
// lives on disk — the GIS workload the survey's graph section targets.
// Compares the external Munagala–Ranade BFS, O(V + Sort(E)) I/Os, with the
// naive visited-bitmap BFS, Θ(V + E) I/Os, and prints the reached levels.
//
// Run with:
//
//	go run ./examples/graphbfs
package main

import (
	"fmt"
	"log"

	"em"
)

const (
	rows, cols = 120, 120 // 14,400 intersections
	blockBytes = 2048
	memBlocks  = 24
)

func main() {
	vol := em.MustVolume(em.Config{BlockBytes: blockBytes, MemBlocks: memBlocks, Disks: 1})
	pool := em.PoolFor(vol)

	edges, err := em.GridEdges(vol, pool, rows, cols)
	if err != nil {
		log.Fatal(err)
	}
	v := int64(rows * cols)
	g, err := em.BuildUndirectedGraph(vol, pool, v, edges)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("road grid: %d vertices, %d arcs, stored in %d-byte blocks\n",
		g.V(), g.E(), blockBytes)

	vol.Stats().Reset()
	mr, err := em.BFSUndirected(g, pool, 0)
	if err != nil {
		log.Fatal(err)
	}
	mrIOs := vol.Stats().Total()

	vol.Stats().Reset()
	naive, err := em.NaiveBFS(g, pool, 0)
	if err != nil {
		log.Fatal(err)
	}
	naiveIOs := vol.Stats().Total()

	// Verify the two traversals agree and report the level histogram shape.
	levels := map[int64]int64{}
	if err := em.ForEach(mr, pool, func(p em.Pair) error {
		levels[p.A] = p.B
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	mismatch := 0
	if err := em.ForEach(naive, pool, func(p em.Pair) error {
		if levels[p.A] != p.B {
			mismatch++
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	if mismatch != 0 || int64(len(levels)) != v {
		log.Fatalf("traversals disagree: %d mismatches, %d visited", mismatch, len(levels))
	}

	far := levels[v-1] // opposite corner: Manhattan distance
	fmt.Printf("reached all %d vertices; opposite corner is %d hops away (expect %d)\n",
		len(levels), far, rows+cols-2)
	fmt.Printf("external BFS: %8d I/Os\n", mrIOs)
	fmt.Printf("naive BFS:    %8d I/Os (%.1fx more)\n",
		naiveIOs, float64(naiveIOs)/float64(mrIOs))
	fmt.Println("\nNote: a grid has diameter Θ(√V), the hard case the survey flags for")
	fmt.Println("level-synchronized BFS — the win here comes from batching the per-level")
	fmt.Println("neighbour fetches; on low-diameter graphs the gap widens further.")
}
