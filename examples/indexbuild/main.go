// Indexbuild: construct a searchable index over a large key/value dataset
// three ways and compare their I/O cost — the decision every database
// engine makes when building secondary indexes:
//
//  1. repeated B-tree insertion       Θ(N·log_B N) I/Os
//  2. pipelined sort→index build      Θ(Sort(N))   I/Os
//  3. buffer tree, then bulk load     Θ(Sort(N))   I/Os, online inserts
//
// Method 2 is em.SortIndex in full: distribution sort and bottom-up bulk
// load running concurrently, the loader packing leaves from each durable
// block group of sorted output while later buckets still sort, and leaf
// write-back batched D blocks at a time through the async engine. The
// pipelining and write-behind change when the I/Os happen — overlapped,
// D disks at a step — never how many there are, so the counted savings
// shown here are exactly the survey's Sort(N) vs N·log_B N gap.
//
// Run with:
//
//	go run ./examples/indexbuild
package main

import (
	"fmt"
	"log"
	"math/rand"

	"em"
)

const (
	blockBytes = 2048
	memBlocks  = 64
	disks      = 4
	n          = 200_000
)

func dataset() []em.Record {
	rng := rand.New(rand.NewSource(7))
	recs := make([]em.Record, n)
	for i, k := range rng.Perm(n) {
		recs[i] = em.Record{Key: uint64(k), Val: uint64(i)}
	}
	return recs
}

// freshEnv materialises the dataset on a new volume and resets counters.
func freshEnv(recs []em.Record) (*em.Volume, *em.Pool, *em.File[em.Record]) {
	vol := em.MustVolume(em.Config{BlockBytes: blockBytes, MemBlocks: memBlocks, Disks: disks})
	pool := em.PoolFor(vol)
	f, err := em.FromSlice(vol, pool, em.RecordCodec{}, recs)
	if err != nil {
		log.Fatal(err)
	}
	vol.Stats().Reset()
	return vol, pool, f
}

func main() {
	recs := dataset()
	fmt.Printf("building an index over %d records (block=%dB, mem=%d blocks, D=%d)\n\n",
		n, blockBytes, memBlocks, disks)

	// 1. Repeated insertion.
	vol, pool, f := freshEnv(recs)
	bt, err := em.NewBTree(vol, pool, 8)
	if err != nil {
		log.Fatal(err)
	}
	if err := em.ForEach(f, pool, func(r em.Record) error {
		_, err := bt.Insert(r.Key, r.Val)
		return err
	}); err != nil {
		log.Fatal(err)
	}
	if err := bt.Close(); err != nil {
		log.Fatal(err)
	}
	insertIOs := vol.Stats().Total()
	fmt.Printf("%-28s %10d I/Os   (height %d, %d keys)\n",
		"repeated insertion:", insertIOs, bt.Height(), bt.Len())

	// 2. Pipelined sort→index: sort and loader overlapped, leaves batched
	// D at a time write-behind.
	vol, pool, f = freshEnv(recs)
	bt2, err := em.SortIndex(f, pool, &em.SortIndexOptions{
		Width: disks, Async: true, WriteBehind: true, Pipeline: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := bt2.Close(); err != nil {
		log.Fatal(err)
	}
	pipeIOs := vol.Stats().Total()
	fmt.Printf("%-28s %10d I/Os   (height %d, %d keys)\n",
		"pipelined sort→index:", pipeIOs, bt2.Height(), bt2.Len())

	// 3. Buffer tree absorbing online inserts, sealed into a bulk load.
	vol, pool, f = freshEnv(recs)
	buf, err := em.NewBufferTree(vol, pool, em.BufferTreeConfig{})
	if err != nil {
		log.Fatal(err)
	}
	if err := em.ForEach(f, pool, func(r em.Record) error {
		return buf.Insert(r.Key, r.Val)
	}); err != nil {
		log.Fatal(err)
	}
	sealed, err := buf.Seal()
	if err != nil {
		log.Fatal(err)
	}
	bt3, err := em.BulkLoadBTree(vol, pool, 8, sealed)
	if err != nil {
		log.Fatal(err)
	}
	if err := bt3.Close(); err != nil {
		log.Fatal(err)
	}
	bufIOs := vol.Stats().Total()
	fmt.Printf("%-28s %10d I/Os   (height %d, %d keys)\n",
		"buffer tree + bulk load:", bufIOs, bt3.Height(), bt3.Len())

	fmt.Printf("\nthe pipelined build saves %d I/Os — %.1fx cheaper than repeated insertion —\n",
		insertIOs-pipeIOs, float64(insertIOs)/float64(pipeIOs))
	fmt.Printf("while overlapping the sort and the load on the volume's %d disks;\n", disks)
	fmt.Printf("the buffer tree keeps inserts online at %.1fx cheaper.\n",
		float64(insertIOs)/float64(bufIOs))

	// Sanity: the three indexes answer the same queries.
	for _, probe := range []uint64{0, 12345, n - 1, n + 5} {
		_, ok1, _ := bt.Get(probe)
		_, ok2, _ := bt2.Get(probe)
		_, ok3, _ := bt3.Get(probe)
		if ok1 != ok2 || ok2 != ok3 {
			log.Fatalf("indexes disagree on key %d: %v %v %v", probe, ok1, ok2, ok3)
		}
	}
	fmt.Println("\nall three indexes agree on point lookups ✓")
}
