// Kvserve: serve a Zipf-skewed point/range workload from a key/value index
// — the read side of every storage engine — four ways, showing how the
// serving subsystem reaches the parallel-disk floor:
//
//  1. one-at-a-time Gets            one serialized read per descent step
//  2. batched Gets (GetBatch)       shared internals deduped, leaves D at a time
//  3. prefetched scans (Scanner)    leaf chain forecast, D reads in flight
//  4. four read sessions            private cache budgets, QPS scales with D
//  5. one API, two layouts          the same em.Index code over the single
//     tree and a 4×1-disk sharded layout
//
// The index is built with the pipelined write-optimal SortIndex from PR 4
// and warmed (internal levels resident, Θ(N/B²) blocks) before serving —
// the classical database posture. The volume simulates D disks with a
// fixed per-block service time, so the wall clock below is the model's
// parallel-step cost, not host noise; counted block reads come from the
// same Stats all experiments report.
//
// Run with:
//
//	go run ./examples/kvserve
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"em"
)

const (
	blockBytes = 2048
	memBlocks  = 256
	disks      = 4
	latency    = 500 * time.Microsecond
	n          = 100_000
	pointQ     = 2048 // point lookups replayed per serving strategy
	scanQ      = 64   // range scans replayed
	scanSpan   = 4096 // key-space span of each range scan
	sessions   = 4
)

func main() {
	vol := em.MustVolume(em.Config{
		BlockBytes: blockBytes, MemBlocks: memBlocks, Disks: disks, DiskLatency: latency,
	})
	defer vol.Close()
	pool := em.PoolFor(vol)

	// Build the index from unsorted records with the pipelined, write-behind
	// sort→index path, then adopt the serving posture: fan-out in memory.
	rng := rand.New(rand.NewSource(1))
	recs := make([]em.Record, n)
	for i, k := range rng.Perm(n) {
		recs[i] = em.Record{Key: uint64(k + 1), Val: uint64(i)}
	}
	f, err := em.FromSlice(vol, pool, em.RecordCodec{}, recs)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	idx, err := em.SortIndex(f, pool, &em.SortIndexOptions{
		Width: disks, Async: true, WriteBehind: true, Pipeline: true, CacheFrames: 32,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := idx.Warm(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d records in %v (height %d, D=%d disks, %v/block)\n\n",
		n, time.Since(start).Round(time.Millisecond), idx.Height(), disks, latency)

	// The workload: Zipf-skewed point keys (hot keys dominate, as real
	// traffic does) plus occasional short range scans.
	zipf := rand.NewZipf(rng, 1.2, 1, n-1)
	points := make([]uint64, pointQ)
	for i := range points {
		points[i] = zipf.Uint64() + 1
	}

	measure := func(label string, queries int, fn func() error) {
		vol.Stats().Reset()
		start := time.Now()
		if err := fn(); err != nil {
			log.Fatal(err)
		}
		el := time.Since(start)
		fmt.Printf("%-34s %8.0f qps  %7d reads  %v\n",
			label+":", float64(queries)/el.Seconds(), vol.Stats().Snapshot().Reads,
			el.Round(time.Millisecond))
	}

	// 1. One descent per query, one synchronous read per step.
	var loopVals []uint64
	measure("looped Gets", pointQ, func() error {
		for _, k := range points {
			v, ok, err := idx.Get(k)
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("key %d missing", k)
			}
			loopVals = append(loopVals, v)
		}
		return nil
	})

	// 2. The same keys as one batch: sorted, shared internals read once,
	// leaf reads fanned D at a time.
	var batchVals []uint64
	measure("batched Gets (GetBatch)", pointQ, func() error {
		vals, found, err := idx.GetBatch(points)
		if err != nil {
			return err
		}
		for i := range points {
			if !found[i] {
				return fmt.Errorf("key %d missing", points[i])
			}
		}
		batchVals = vals
		return nil
	})
	for i := range loopVals {
		if loopVals[i] != batchVals[i] {
			log.Fatalf("loop and batch disagree on key %d", points[i])
		}
	}

	// 3. Range scans: synchronous sibling chain vs forecasting scanner,
	// replaying the identical ranges.
	scanLos := make([]uint64, scanQ)
	for i := range scanLos {
		scanLos[i] = uint64(rng.Intn(n-scanSpan)) + 1
	}
	scanFrom := func(prefetch bool) error {
		for s := 0; s < scanQ; s++ {
			lo := scanLos[s]
			got := 0
			fn := func(k, v uint64) error { got++; return nil }
			var err error
			if prefetch {
				err = idx.RangePrefetch(pool, lo, lo+scanSpan-1, nil, fn)
			} else {
				err = idx.Range(lo, lo+scanSpan-1, fn)
			}
			if err != nil {
				return err
			}
			if got != scanSpan {
				return fmt.Errorf("scan at %d returned %d of %d", lo, got, scanSpan)
			}
		}
		return nil
	}
	measure("sync Range scans", scanQ, func() error { return scanFrom(false) })
	measure("prefetched scans (Scanner)", scanQ, func() error { return scanFrom(true) })

	// 4. Concurrent serving: the mixed workload behind G read sessions.
	serve := func(g int) func() error {
		return func() error {
			ss := make([]*em.BTreeSession, g)
			for i := range ss {
				s, err := idx.NewSessionOn(pool, 16, disks)
				if err != nil {
					return err
				}
				defer s.Close()
				if err := s.Warm(); err != nil {
					return err
				}
				ss[i] = s
			}
			var wg sync.WaitGroup
			errs := make([]error, g)
			for i, s := range ss {
				wg.Add(1)
				go func(i int, s *em.BTreeSession) {
					defer wg.Done()
					z := rand.NewZipf(rand.New(rand.NewSource(int64(i+7))), 1.2, 1, n-1)
					for j := 0; j < pointQ/g; j++ {
						if _, ok, err := s.Get(z.Uint64() + 1); err != nil || !ok {
							errs[i] = fmt.Errorf("session %d: get failed (%v)", i, err)
							return
						}
					}
				}(i, s)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return err
				}
			}
			return nil
		}
	}
	fmt.Println()
	measure("1 read session", pointQ, serve(1))
	measure(fmt.Sprintf("%d read sessions", sessions), pointQ, serve(sessions))

	// 5. The unified serving API: the identical code drives the single tree
	// and a sharded layout — four one-disk volumes range-partitioned by
	// key, the same total disk count as the volume above — through
	// em.Index, with reads taken from the interface's own aggregated Stats.
	kv := make(map[uint64]uint64, n)
	for _, r := range recs {
		kv[r.Key] = r.Val
	}
	const shardCount = 4
	splits := make([]uint64, shardCount-1)
	for i := range splits {
		splits[i] = uint64((i+1)*n/shardCount) + 1
	}
	shardTrees := make([]*em.BTree, shardCount)
	for i := range shardTrees {
		v := em.MustVolume(em.Config{
			BlockBytes: blockBytes, MemBlocks: memBlocks, Disks: 1, DiskLatency: latency,
		})
		defer v.Close()
		p := em.PoolFor(v)
		lo, hi := uint64(i*n/shardCount)+1, uint64((i+1)*n/shardCount)
		srecs := make([]em.Record, 0, hi-lo+1)
		for k := lo; k <= hi; k++ {
			srecs = append(srecs, em.Record{Key: k, Val: kv[k]})
		}
		sf, err := em.FromSlice(v, p, em.RecordCodec{}, srecs)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := em.BulkLoadBTreeWith(v, p, 16, sf,
			&em.BulkLoadOptions{Width: 1, Async: true, WriteBehind: true})
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.Warm(); err != nil {
			log.Fatal(err)
		}
		shardTrees[i] = tr
	}
	sharded, err := em.NewShardedTree(shardTrees, &em.ShardedTreeOptions{Splits: splits})
	if err != nil {
		log.Fatal(err)
	}
	defer sharded.Close()

	fmt.Println()
	for _, layout := range []struct {
		label string
		index em.Index
	}{
		{"em.Index, one 4-disk volume", idx},
		{"em.Index, 4 sharded volumes", sharded},
	} {
		qps, reads, err := serveIndex(layout.index)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s %8.0f qps  %7d reads\n", layout.label+":", qps, reads)
	}

	fmt.Printf("\nbatching dedupes the index fan-out and stripes leaf reads over %d disks;\n", disks)
	fmt.Println("the scanner forecasts the leaf chain from resident parents, never reading")
	fmt.Println("more than Range; sessions overlap independent descents on the engine; one")
	fmt.Println("em.Index surface serves the single and the sharded layout unchanged ✓")
}

// serveIndex replays a mixed workload — the point batch, cross-boundary
// range scans, a batched read through a session — against any em.Index,
// written once for every layout. Reads come from the index's own Stats, so
// the sharded layout reports its aggregate.
func serveIndex(index em.Index) (qps float64, reads uint64, err error) {
	rng := rand.New(rand.NewSource(9))
	points := make([]uint64, pointQ)
	for i := range points {
		points[i] = uint64(rng.Intn(n)) + 1
	}
	before := index.Stats().Reads
	queries := 0
	start := time.Now()
	if _, _, err := index.GetBatch(points); err != nil {
		return 0, 0, err
	}
	queries += len(points)
	for s := 0; s < scanQ/8; s++ {
		lo := uint64(rng.Intn(n-scanSpan)) + 1
		sc, err := index.Scan(lo, lo+scanSpan-1)
		if err != nil {
			return 0, 0, err
		}
		got := 0
		for {
			_, ok, err := sc.Next()
			if err != nil {
				sc.Close()
				return 0, 0, err
			}
			if !ok {
				break
			}
			got++
		}
		sc.Close()
		if got != scanSpan {
			return 0, 0, fmt.Errorf("scan at %d returned %d of %d", lo, got, scanSpan)
		}
		queries++
	}
	sess, err := index.NewSession(16, 0)
	if err != nil {
		return 0, 0, err
	}
	if _, _, err := sess.GetBatch(points); err != nil {
		sess.Close()
		return 0, 0, err
	}
	queries += len(points)
	if err := sess.Close(); err != nil {
		return 0, 0, err
	}
	return float64(queries) / time.Since(start).Seconds(), index.Stats().Reads - before, nil
}
