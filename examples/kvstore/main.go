// Kvstore: run a mixed read/write workload against the online updatable
// store — the LSM-shaped composition of the module's two optimal halves.
// Writes are absorbed by a buffer-tree front at amortised O((1/B)·log_m n)
// I/Os per operation; when the front crosses its threshold it is sealed
// and a background drain merges it (tombstones applied, last writer wins)
// with the current B-tree generation through the write-behind bulk loader
// into the next generation, while reads keep being served:
//
//  1. load phase        n inserts through the front vs per-key B-tree cost
//  2. mixed phase       inserts, deletes, overwrites with drains in flight
//  3. serving           Get / GetBatch / snapshot Scan during a live drain,
//     the read side driven through the unified em.Index
//     surface the B-tree and the sharded layouts share
//
// The volume simulates D disks with a fixed per-block service time, so the
// wall clock below is the model's parallel-step cost, not host noise;
// counted block I/Os come from the same Stats all experiments report.
//
// Run with:
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"em"
)

const (
	blockBytes = 2048
	memBlocks  = 256
	disks      = 4
	latency    = 500 * time.Microsecond
	n          = 50_000
	frontOps   = 8192
)

func main() {
	vol := em.MustVolume(em.Config{
		BlockBytes: blockBytes, MemBlocks: memBlocks, Disks: disks, DiskLatency: latency,
	})
	defer vol.Close()
	pool := em.PoolFor(vol)

	st, err := em.OpenStore(vol, pool, em.StoreConfig{FrontOps: frontOps})
	if err != nil {
		log.Fatal(err)
	}

	// Load: n random-order inserts. The front batches ~B ops per buffer
	// block and the background drains rebuild generations at Θ(n/B), so
	// total I/O stays far below n·log_B n per-key inserts.
	rng := rand.New(rand.NewSource(1))
	vol.Stats().Reset()
	start := time.Now()
	for i, k := range rng.Perm(n) {
		if err := st.Insert(uint64(k+1), uint64(i)); err != nil {
			log.Fatal(err)
		}
	}
	if err := st.Drain(); err != nil {
		log.Fatal(err)
	}
	s := vol.Stats().Snapshot()
	fmt.Printf("load     %6d inserts   %8.0fms   %6d reads %6d writes   %d drains\n",
		n, ms(start), s.Reads, s.Writes, st.Drains())

	// Mixed: deletes, overwrites, and fresh inserts interleaved; drains
	// trigger themselves as the front fills, while every read below stays
	// correct.
	vol.Stats().Reset()
	start = time.Now()
	for i := 0; i < n/2; i++ {
		k := uint64(rng.Intn(n) + 1)
		switch i % 4 {
		case 0:
			if err := st.Delete(k); err != nil {
				log.Fatal(err)
			}
		default:
			if err := st.Insert(k, uint64(i)); err != nil {
				log.Fatal(err)
			}
		}
	}
	s = vol.Stats().Snapshot()
	fmt.Printf("mixed    %6d updates   %8.0fms   %6d reads %6d writes   %d drains\n",
		n/2, ms(start), s.Reads, s.Writes, st.Drains())

	// Serve while a drain runs: seal the current front and read through
	// the handover. The sealed front's resolved ops are mirrored in
	// memory, the old generation stays pinned for in-flight readers, and
	// the rebuild streams at half width, so lookups keep their floor.
	st.StartDrain()
	start = time.Now()
	reads := 0
	for st.Draining() {
		if _, _, err := st.Get(uint64(rng.Intn(n) + 1)); err != nil {
			log.Fatal(err)
		}
		reads++
	}
	if reads > 0 {
		fmt.Printf("serve    %6d gets during drain, %.0f qps\n",
			reads, float64(reads)/time.Since(start).Seconds())
	}

	// The snapshot scan and the batched session run through the unified
	// em.Index surface — the store, the plain B-tree, and the sharded
	// layouts all serve this same function unchanged.
	cnt, hits, err := snapshotReads(st, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scan     %6d records in [1,2048]\n", cnt)
	fmt.Printf("session  %6d batched gets, %d hits, epoch %d\n", 512, hits, st.Epoch())
	if err := st.Close(); err != nil {
		log.Fatal(err)
	}
}

// snapshotReads drives the snapshot read side through any em.Index: a
// range scan — opened now, it sees exactly the index as of this moment,
// even if writes and drains continue underneath — and a batched read
// session with a private cache budget (a store's session re-pins itself
// when a drain hands over a new generation).
func snapshotReads(index em.Index, rng *rand.Rand) (scanned, hits int, err error) {
	sc, err := index.Scan(1, 2048)
	if err != nil {
		return 0, 0, err
	}
	for {
		_, ok, err := sc.Next()
		if err != nil {
			sc.Close()
			return 0, 0, err
		}
		if !ok {
			break
		}
		scanned++
	}
	sc.Close()

	sess, err := index.NewSession(0, 0)
	if err != nil {
		return 0, 0, err
	}
	keys := make([]uint64, 512)
	for i := range keys {
		keys[i] = uint64(rng.Intn(n) + 1)
	}
	_, found, err := sess.GetBatch(keys)
	if err != nil {
		sess.Close()
		return 0, 0, err
	}
	for _, ok := range found {
		if ok {
			hits++
		}
	}
	return scanned, hits, sess.Close()
}

func ms(start time.Time) float64 {
	return float64(time.Since(start).Microseconds()) / 1000
}
