// Logjoin: the classic database workload the survey's introduction
// motivates — joining two tables, each far larger than memory, with a
// sort-merge join built entirely from the public API:
//
//	orders(orderID, customerID)  ⋈  events(orderID, eventCode)
//
// Both sides are externally sorted on the join key (Sort(N) I/Os each) and
// merged in one synchronized scan (Scan(N) I/Os), the textbook
// O(Sort(N) + Sort(M) + Scan(N+M)) sort-merge join. A blockwise
// nested-loop join is run for contrast at a smaller scale.
//
// Run with:
//
//	go run ./examples/logjoin
package main

import (
	"fmt"
	"log"
	"math/rand"

	"em"
)

const (
	blockBytes = 2048
	memBlocks  = 24
	nOrders    = 60_000
	nEvents    = 180_000 // ~3 events per order
)

func main() {
	vol := em.MustVolume(em.Config{BlockBytes: blockBytes, MemBlocks: memBlocks, Disks: 1})
	pool := em.PoolFor(vol)
	rng := rand.New(rand.NewSource(99))

	// orders: Key = orderID (unique), Val = customerID.
	orders := make([]em.Record, nOrders)
	for i, id := range rng.Perm(nOrders) {
		orders[i] = em.Record{Key: uint64(id), Val: uint64(rng.Intn(5000))}
	}
	// events: Key = orderID (resampled), Val = event code.
	events := make([]em.Record, nEvents)
	for i := range events {
		events[i] = em.Record{Key: uint64(rng.Intn(nOrders)), Val: uint64(rng.Intn(16))}
	}

	of, err := em.FromSlice(vol, pool, em.RecordCodec{}, orders)
	if err != nil {
		log.Fatal(err)
	}
	ef, err := em.FromSlice(vol, pool, em.RecordCodec{}, events)
	if err != nil {
		log.Fatal(err)
	}

	vol.Stats().Reset()
	joined, err := sortMergeJoin(vol, pool, of, ef)
	if err != nil {
		log.Fatal(err)
	}
	smIOs := vol.Stats().Total()
	fmt.Printf("sort-merge join: %d orders ⋈ %d events -> %d rows in %d I/Os\n",
		nOrders, nEvents, joined.Len(), smIOs)

	// Contrast: blockwise nested loops on a 20x smaller instance, then
	// scaled. Cost is Θ(|orders|·|events|/B²·B) so it explodes quadratically.
	smallO, err := em.FromSlice(vol, pool, em.RecordCodec{}, orders[:nOrders/20])
	if err != nil {
		log.Fatal(err)
	}
	smallE, err := em.FromSlice(vol, pool, em.RecordCodec{}, events[:nEvents/20])
	if err != nil {
		log.Fatal(err)
	}
	vol.Stats().Reset()
	nl, err := nestedLoopJoin(vol, pool, smallO, smallE)
	if err != nil {
		log.Fatal(err)
	}
	nlIOs := vol.Stats().Total()
	fmt.Printf("nested loops (1/20 scale): %d rows in %d I/Os\n", nl.Len(), nlIOs)
	fmt.Printf("scaled to full size that is ~%d I/Os — %.0fx the sort-merge cost\n",
		nlIOs*400, float64(nlIOs*400)/float64(smIOs))
}

// joinedRow pairs a customerID with an event code for a shared orderID.
// Stored as a Pair: A = customerID, B = event code.
func sortMergeJoin(vol *em.Volume, pool *em.Pool, orders, events *em.File[em.Record]) (*em.File[em.Pair], error) {
	so, err := em.SortRecords(orders, pool, nil)
	if err != nil {
		return nil, err
	}
	se, err := em.SortRecords(events, pool, nil)
	if err != nil {
		return nil, err
	}
	out := em.NewFile[em.Pair](vol, em.PairCodec{})
	w, err := em.NewWriter(out, pool)
	if err != nil {
		return nil, err
	}
	defer w.Close()
	or, err := em.NewReader(so, pool)
	if err != nil {
		return nil, err
	}
	defer or.Close()
	er, err := em.NewReader(se, pool)
	if err != nil {
		return nil, err
	}
	defer er.Close()

	o, oOK, err := or.Next()
	if err != nil {
		return nil, err
	}
	e, eOK, err := er.Next()
	if err != nil {
		return nil, err
	}
	// orderIDs are unique on the orders side, so a plain two-pointer merge
	// suffices: advance events within each matching run.
	for oOK && eOK {
		switch {
		case o.Key < e.Key:
			if o, oOK, err = or.Next(); err != nil {
				return nil, err
			}
		case o.Key > e.Key:
			if e, eOK, err = er.Next(); err != nil {
				return nil, err
			}
		default:
			if err := w.Append(em.Pair{A: int64(o.Val), B: int64(e.Val)}); err != nil {
				return nil, err
			}
			if e, eOK, err = er.Next(); err != nil {
				return nil, err
			}
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// nestedLoopJoin rescans the whole events table once per order — the
// baseline whose cost is quadratic in table size.
func nestedLoopJoin(vol *em.Volume, pool *em.Pool, orders, events *em.File[em.Record]) (*em.File[em.Pair], error) {
	out := em.NewFile[em.Pair](vol, em.PairCodec{})
	w, err := em.NewWriter(out, pool)
	if err != nil {
		return nil, err
	}
	err = em.ForEach(orders, pool, func(o em.Record) error {
		return em.ForEach(events, pool, func(e em.Record) error {
			if e.Key == o.Key {
				return w.Append(em.Pair{A: int64(o.Val), B: int64(e.Val)})
			}
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return out, nil
}
