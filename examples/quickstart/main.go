// Quickstart: sort a dataset that is 64x larger than memory and watch the
// I/O ledger match the survey's Sort(N) formula.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"em"
)

func main() {
	// Device shape: 4 KiB blocks (256 records each), 32 blocks of memory
	// (8192 records), one disk. N = 64·M, so this cannot be sorted in RAM.
	const (
		blockBytes = 4096
		memBlocks  = 32
		n          = 64 * memBlocks * (blockBytes / 16)
	)
	vol := em.MustVolume(em.Config{BlockBytes: blockBytes, MemBlocks: memBlocks, Disks: 1})
	pool := em.PoolFor(vol)

	// Materialise N random records on the simulated disk.
	rng := rand.New(rand.NewSource(1))
	recs := make([]em.Record, n)
	for i := range recs {
		recs[i] = em.Record{Key: rng.Uint64(), Val: uint64(i)}
	}
	f, err := em.FromSlice(vol, pool, em.RecordCodec{}, recs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d records in %d blocks; memory holds %d blocks\n",
		f.Len(), f.Blocks(), pool.Capacity())

	// Sort and count every block transfer.
	vol.Stats().Reset()
	sorted, err := em.SortRecords(f, pool, nil)
	if err != nil {
		log.Fatal(err)
	}
	st := vol.Stats().Snapshot()

	ok, err := em.IsSorted(sorted, pool, em.Record.Less)
	if err != nil || !ok {
		log.Fatalf("output unsorted (err=%v)", err)
	}

	// Compare with Sort(N) = 2·(N/B)·(1 + ceil(log_{M/B}(N/M))).
	perBlock := float64(blockBytes / 16)
	blocks := float64(n) / perBlock
	passes := 1 + math.Ceil(math.Log(float64(n)/float64(memBlocks)/perBlock)/math.Log(float64(memBlocks-1)))
	pred := 2 * blocks * passes

	fmt.Printf("merge sort I/O: %d block transfers (%d reads, %d writes)\n",
		st.Total(), st.Reads, st.Writes)
	fmt.Printf("Sort(N) formula: ~%.0f transfers (%g passes over %g blocks)\n",
		pred, passes, blocks)
	fmt.Printf("measured/predicted = %.3f\n", float64(st.Total())/pred)
}
