package em_test

// Failure-injection and misuse tests: every component must fail loudly and
// cleanly — returning errors, not corrupting state or silently borrowing
// memory — when its contract is violated. The memory-budget cases are the
// library's core promise (see DESIGN.md §5: "the pool panics on
// over-subscription so model violations cannot pass silently").

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"em"
)

func TestConfigValidation(t *testing.T) {
	bad := []em.Config{
		{BlockBytes: 0, MemBlocks: 4, Disks: 1},
		{BlockBytes: -5, MemBlocks: 4, Disks: 1},
		{BlockBytes: 512, MemBlocks: 1, Disks: 1}, // fewer than 2 frames
		{BlockBytes: 512, MemBlocks: 4, Disks: 0},
	}
	for _, cfg := range bad {
		if _, err := em.NewVolume(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MustVolume did not panic on a bad config")
		}
	}()
	em.MustVolume(em.Config{BlockBytes: 0, MemBlocks: 0, Disks: 0})
}

func TestPoolBudgetEnforced(t *testing.T) {
	vol := em.MustVolume(em.Config{BlockBytes: 256, MemBlocks: 3, Disks: 1})
	pool := em.PoolFor(vol)
	frames := make([]*em.Frame, 0, 3)
	for i := 0; i < 3; i++ {
		f, err := pool.Alloc()
		if err != nil {
			t.Fatalf("alloc %d within budget failed: %v", i, err)
		}
		frames = append(frames, f)
	}
	if _, err := pool.Alloc(); err == nil {
		t.Fatal("allocation beyond M/B succeeded")
	}
	for _, f := range frames {
		f.Release()
	}
	if pool.InUse() != 0 || pool.Peak() != 3 {
		t.Fatalf("accounting wrong: inUse=%d peak=%d", pool.InUse(), pool.Peak())
	}
	// Double release must panic: it means buffer accounting is corrupt.
	defer func() {
		if recover() == nil {
			t.Error("double frame release did not panic")
		}
	}()
	frames[0].Release()
}

func TestSortFailsCleanlyWithoutMemory(t *testing.T) {
	// A merge sort needs at least a few frames; with a starved pool it must
	// return an error — not panic, not fall back to hidden RAM.
	vol := em.MustVolume(em.Config{BlockBytes: 256, MemBlocks: 16, Disks: 1})
	pool := em.PoolFor(vol)
	f, err := em.FromSlice(vol, pool, em.RecordCodec{}, randomRecords(rand.New(rand.NewSource(1)), 2000))
	if err != nil {
		t.Fatal(err)
	}
	starved := em.NewPool(256, 2)
	if _, err := em.SortRecords(f, starved, nil); err == nil {
		t.Fatal("sort with a 2-frame pool should fail")
	}
	if starved.InUse() != 0 {
		t.Fatalf("failed sort leaked %d frames", starved.InUse())
	}
}

func TestBTreeContractViolations(t *testing.T) {
	vol := em.MustVolume(em.Config{BlockBytes: 512, MemBlocks: 16, Disks: 1})
	pool := em.PoolFor(vol)
	if _, err := em.NewBTree(vol, pool, 2); err == nil {
		t.Error("B-tree with 2 cache frames accepted (needs 3 for splits)")
	}
	// Bulk load rejects unsorted input.
	unsorted, err := em.FromSlice(vol, pool, em.RecordCodec{}, []em.Record{
		{Key: 5, Val: 0}, {Key: 3, Val: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := em.BulkLoadBTree(vol, pool, 4, unsorted); err == nil {
		t.Error("bulk load accepted unsorted input")
	}
	// Bulk load rejects duplicate keys (not strictly increasing).
	dup, err := em.FromSlice(vol, pool, em.RecordCodec{}, []em.Record{
		{Key: 3, Val: 0}, {Key: 3, Val: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := em.BulkLoadBTree(vol, pool, 4, dup); err == nil {
		t.Error("bulk load accepted duplicate keys")
	}
}

func TestWriterReaderMisuse(t *testing.T) {
	vol := em.MustVolume(em.Config{BlockBytes: 256, MemBlocks: 8, Disks: 1})
	pool := em.PoolFor(vol)
	f := em.NewFile[em.Record](vol, em.RecordCodec{})
	w, err := em.NewWriter(f, pool)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(em.Record{Key: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second close should be a no-op, got %v", err)
	}
	if err := w.Append(em.Record{Key: 2}); err == nil {
		t.Error("append after close accepted")
	}
	r, err := em.NewReader(f, pool)
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	if _, _, err := r.Next(); err == nil {
		t.Error("read after close accepted")
	}
	if pool.InUse() != 0 {
		t.Fatalf("leaked %d frames", pool.InUse())
	}
}

func TestGraphRejectsBadInput(t *testing.T) {
	vol := em.MustVolume(em.Config{BlockBytes: 256, MemBlocks: 8, Disks: 1})
	pool := em.PoolFor(vol)
	arcs, err := em.FromSlice(vol, pool, em.PairCodec{}, []em.Pair{{A: 0, B: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := em.BuildGraph(vol, pool, 3, arcs); err == nil {
		t.Error("graph accepted arc to vertex 7 with V=3")
	}
	ok, err := em.FromSlice(vol, pool, em.PairCodec{}, []em.Pair{{A: 0, B: 1}})
	if err != nil {
		t.Fatal(err)
	}
	g, err := em.BuildGraph(vol, pool, 2, ok)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := em.BFS(g, pool, 9); err == nil {
		t.Error("BFS accepted out-of-range source")
	}
}

func TestListRankRejectsMalformedLists(t *testing.T) {
	vol := em.MustVolume(em.Config{BlockBytes: 256, MemBlocks: 8, Disks: 1})
	pool := em.PoolFor(vol)

	// A cycle: 0 -> 1 -> 0, never reaching Tail.
	cyc, err := em.FromSlice(vol, pool, em.PairCodec{}, []em.Pair{
		{A: 0, B: 1}, {A: 1, B: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := em.RankListNaive(cyc, pool, 0); err == nil {
		t.Error("naive rank accepted a cyclic list")
	}

	// Successor out of range.
	oob, err := em.FromSlice(vol, pool, em.PairCodec{}, []em.Pair{
		{A: 0, B: 99},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := em.RankListNaive(oob, pool, 0); err == nil {
		t.Error("naive rank accepted an out-of-range successor")
	}
}

func TestPermuteRejectsInvalidPermutations(t *testing.T) {
	vol := em.MustVolume(em.Config{BlockBytes: 256, MemBlocks: 8, Disks: 1})
	pool := em.PoolFor(vol)
	f, err := em.FromSlice(vol, pool, em.U64Codec{}, []uint64{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	cases := [][]int64{
		{0, 1, 2},     // wrong length
		{0, 1, 2, 9},  // out of range
		{0, 1, 1, 3},  // duplicate target
		{-1, 1, 2, 3}, // negative
	}
	for _, perm := range cases {
		if _, err := em.PermuteNaive(f, pool, perm); err == nil {
			t.Errorf("naive permute accepted %v", perm)
		}
		if _, err := em.PermuteBySorting(f, pool, perm, nil); err == nil {
			t.Errorf("sort permute accepted %v", perm)
		}
	}
	if _, err := em.BitReversalPerm(12); err == nil {
		t.Error("bit reversal of non-power-of-two accepted")
	}
}

func TestVolumeAddressAndBufferChecks(t *testing.T) {
	vol := em.MustVolume(em.Config{BlockBytes: 128, MemBlocks: 4, Disks: 2})
	buf := make([]byte, 128)
	if err := vol.ReadBlock(0, buf); err == nil {
		t.Error("read of unallocated address accepted")
	}
	addr := vol.Alloc(1)
	if err := vol.WriteBlock(addr, make([]byte, 64)); err == nil {
		t.Error("write with short buffer accepted")
	}
	if err := vol.WriteBlock(addr, buf); err != nil {
		t.Fatal(err)
	}
	if err := vol.ReadBlock(addr, make([]byte, 256)); err == nil {
		t.Error("read with oversized buffer accepted")
	}
	if err := vol.ReadBlock(-1, buf); err == nil {
		t.Error("negative address accepted")
	}
}

func TestSegmentValidation(t *testing.T) {
	good := em.HSeg(1, 3, 9, 5)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := em.Segment{ID: 2, Vertical: true, Y: 9, Y2: 1}
	err := bad.Validate()
	if err == nil {
		t.Fatal("inverted vertical accepted")
	}
	if !strings.Contains(err.Error(), "malformed") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestBufferTreeSealedRejectsUpdates(t *testing.T) {
	vol := em.MustVolume(em.Config{BlockBytes: 512, MemBlocks: 16, Disks: 1})
	pool := em.PoolFor(vol)
	tr, err := em.NewBufferTree(vol, pool, em.BufferTreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(2, 2); err == nil {
		t.Error("insert after seal accepted")
	}
	if _, err := tr.Seal(); err == nil {
		t.Error("double seal accepted")
	}
}

// errorsIsChain double-checks that sentinel errors survive wrapping through
// the public API (callers match with errors.Is).
func TestSentinelErrorsAreMatchable(t *testing.T) {
	vol := em.MustVolume(em.Config{BlockBytes: 256, MemBlocks: 3, Disks: 1})
	pool := em.PoolFor(vol)
	a, _ := pool.Alloc()
	b, _ := pool.Alloc()
	c, _ := pool.Alloc()
	_, err := pool.Alloc()
	if err == nil {
		t.Fatal("expected exhaustion")
	}
	var sentinel = err
	if !errors.Is(sentinel, sentinel) {
		t.Fatal("error identity broken")
	}
	a.Release()
	b.Release()
	c.Release()
}
