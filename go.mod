module em

go 1.23
