// Package analysis is a small static-analysis framework in the shape of
// golang.org/x/tools/go/analysis, built on the standard library's go/ast and
// go/types only. The toolchain image this repository builds in has no module
// proxy access, so x/tools cannot be a dependency; the subset implemented
// here — Analyzer, Pass, Diagnostic, a package loader and an analysistest
// harness — is exactly what the emlint checkers need, with the same names so
// the suite can migrate to the real framework by swapping imports if the
// dependency ever becomes available.
//
// The analyzers themselves live in subpackages (poolbalance, pinpair,
// joinasync, closesink) and encode the repository's I/O-accounting
// disciplines; see the pairing subpackage for the shared dataflow engine and
// cmd/emlint for the multichecker driver.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and annotations.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package, reporting findings through
	// pass.Report.
	Run func(*Pass) error
}

// A Pass provides one analyzer run with the syntax and type information of a
// single type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
