// Package analysistest runs an analyzer over fixture packages under a
// testdata/src directory and checks its diagnostics against `// want`
// comments, mirroring x/tools' package of the same name. A want comment
// holds one or more quoted regular expressions:
//
//	f, err := pool.Alloc() // want `pool frame .* not released`
//
// Every diagnostic on a line must match a want on that line and every want
// must be matched by exactly one diagnostic, so fixtures pin both the
// positives and the silences.
//
// Fixture packages are parsed and type-checked from testdata/src, imports
// resolving to sibling fixture directories first (that is how the stubs
// named pdm, cache, and stream stand in for the real packages: the
// analyzers match types by defining-package basename) and to the standard
// library via the source importer otherwise.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"em/internal/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// Run loads each fixture package under testdata/src, applies a, and checks
// the diagnostics against the fixtures' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	ld := &loader{
		src:  filepath.Join(testdata, "src"),
		fset: token.NewFileSet(),
		pkgs: map[string]*loaded{},
	}
	ld.fallback = importer.ForCompiler(ld.fset, "source", nil)
	for _, path := range pkgs {
		lp, err := ld.load(path)
		if err != nil {
			t.Fatalf("loading fixture package %q: %v", path, err)
		}
		if len(lp.typeErrors) > 0 {
			t.Fatalf("fixture package %q has type errors: %v", path, lp.typeErrors)
		}
		runOne(t, a, ld.fset, lp)
	}
}

type loaded struct {
	files      []*ast.File
	pkg        *types.Package
	info       *types.Info
	typeErrors []error
}

type loader struct {
	src      string
	fset     *token.FileSet
	pkgs     map[string]*loaded
	fallback types.Importer
}

// Import implements types.Importer, resolving fixture-local packages
// before the standard library.
func (ld *loader) Import(path string) (*types.Package, error) {
	if st, err := os.Stat(filepath.Join(ld.src, path)); err == nil && st.IsDir() {
		lp, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return lp.pkg, nil
	}
	return ld.fallback.Import(path)
}

func (ld *loader) load(path string) (*loaded, error) {
	if lp, ok := ld.pkgs[path]; ok {
		return lp, nil
	}
	dir := filepath.Join(ld.src, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	lp := &loaded{}
	ld.pkgs[path] = lp
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		lp.files = append(lp.files, f)
	}
	if len(lp.files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	lp.info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: ld,
		Error:    func(err error) { lp.typeErrors = append(lp.typeErrors, err) },
	}
	lp.pkg, _ = conf.Check(path, ld.fset, lp.files, lp.info)
	return lp, nil
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile("(\"(?:[^\"\\\\]|\\\\.)*\")|(`[^`]*`)")

func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				const marker = "// want "
				text := c.Text
				i := strings.Index(text, marker)
				if i < 0 {
					continue
				}
				p := fset.Position(c.Pos())
				for _, m := range wantRE.FindAllString(text[i+len(marker):], -1) {
					var pat string
					if strings.HasPrefix(m, "`") {
						pat = strings.Trim(m, "`")
					} else {
						pat = strings.Trim(m, `"`)
						pat = strings.ReplaceAll(pat, `\"`, `"`)
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", p, m, err)
					}
					wants = append(wants, &want{file: p.Filename, line: p.Line, rx: rx})
				}
			}
		}
	}
	return wants
}

func runOne(t *testing.T, a *analysis.Analyzer, fset *token.FileSet, lp *loaded) {
	t.Helper()
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     lp.files,
		Pkg:       lp.pkg,
		TypesInfo: lp.info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	wants := parseWants(t, fset, lp.files)
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		p := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if w.matched || w.file != p.Filename || w.line != p.Line {
				continue
			}
			if w.rx.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", p, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
		}
	}
}
