// Package cfg builds an intraprocedural control-flow graph over a function
// body's AST, the substrate for the pairing dataflow engine. It is a
// deliberately small sibling of x/tools' go/cfg: blocks hold the statements
// and branch-condition expressions executed straight-line, edges record the
// controlling condition and its polarity so the dataflow can refine facts
// like "err != nil on this edge", and all normal exits (returns and the
// final fallthrough) converge on a single synthetic Exit block.
//
// Panicking statements (`panic(...)`, os.Exit, log.Fatal*, runtime.Goexit)
// terminate their path without reaching Exit: a resource held on a panic
// path is unwinding a programming error, not leaking I/O accounting, and
// the repo's MustAlloc-style helpers rely on that reading.
package cfg

import (
	"go/ast"
	"go/token"
)

// A Graph is the control-flow graph of one function body.
type Graph struct {
	Blocks []*Block
	Entry  *Block
	// Exit is the synthetic join of every normal return path. A resource
	// still held on entry to Exit leaks on some path.
	Exit *Block
}

// A Block is a straight-line sequence of AST nodes: simple statements,
// branch-condition and case expressions, and range-statement headers.
// Compound statements never appear whole (their pieces are distributed
// across blocks), with the single exception of *ast.RangeStmt, which is
// appended as its own header node.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []Edge
}

// An Edge is one control-flow transfer. When Cond is non-nil the edge is
// taken iff Cond evaluates to CondTrue, letting dataflow refine state on
// branches like `if err != nil`.
type Edge struct {
	To       *Block
	Cond     ast.Expr
	CondTrue bool
}

type loopTarget struct {
	label      string
	brk, cont  *Block
	continueOK bool
}

type builder struct {
	g       *Graph
	targets []loopTarget
	labels  map[string]*Block // goto targets (placeholder blocks)
	// pendingLabel is the label of the LabeledStmt currently being
	// entered, attached to the next loop/switch/select pushed.
	pendingLabel string
}

// New builds the graph for body.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g, labels: map[string]*Block{}}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	end := b.stmtList(g.Entry, body.List)
	if end != nil {
		b.jump(end, g.Exit)
	}
	return g
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) jump(from, to *Block) {
	from.Succs = append(from.Succs, Edge{To: to})
}

func (b *builder) branch(from, to *Block, cond ast.Expr, when bool) {
	from.Succs = append(from.Succs, Edge{To: to, Cond: cond, CondTrue: when})
}

func (b *builder) stmtList(cur *Block, list []ast.Stmt) *Block {
	for _, s := range list {
		if cur == nil {
			// Unreachable code (after return/break/...). Process it
			// anyway in a fresh, never-entered block so goto labels
			// inside it still resolve.
			cur = b.newBlock()
		}
		cur = b.stmt(cur, s)
	}
	return cur
}

// stmt wires s into the graph starting at cur and returns the block where
// control continues, or nil if s never falls through.
func (b *builder) stmt(cur *Block, s ast.Stmt) *Block {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(cur, s.List)

	case *ast.LabeledStmt:
		entry, ok := b.labels[s.Label.Name]
		if !ok {
			entry = b.newBlock()
			b.labels[s.Label.Name] = entry
		}
		b.jump(cur, entry)
		b.pendingLabel = s.Label.Name
		return b.stmt(entry, s.Stmt)

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, s)
		b.jump(cur, b.g.Exit)
		return nil

	case *ast.BranchStmt:
		return b.branchStmt(cur, s)

	case *ast.ExprStmt:
		cur.Nodes = append(cur.Nodes, s)
		if isTerminatingCall(s.X) {
			return nil // panic/os.Exit path: no edge to Exit
		}
		return cur

	case *ast.IfStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		cur.Nodes = append(cur.Nodes, s.Cond)
		thenB := b.newBlock()
		b.branch(cur, thenB, s.Cond, true)
		done := b.newBlock()
		thenEnd := b.stmt(thenB, s.Body)
		if thenEnd != nil {
			b.jump(thenEnd, done)
		}
		if s.Else != nil {
			elseB := b.newBlock()
			b.branch(cur, elseB, s.Cond, false)
			elseEnd := b.stmt(elseB, s.Else)
			if elseEnd != nil {
				b.jump(elseEnd, done)
			}
		} else {
			b.branch(cur, done, s.Cond, false)
		}
		return done

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		head := b.newBlock()
		b.jump(cur, head)
		body := b.newBlock()
		done := b.newBlock()
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
			b.branch(head, body, s.Cond, true)
			b.branch(head, done, s.Cond, false)
		} else {
			b.jump(head, body)
		}
		cont := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			b.jump(post, head)
			cont = post
		}
		b.push(label, done, cont, true)
		bodyEnd := b.stmt(body, s.Body)
		b.pop()
		if bodyEnd != nil {
			b.jump(bodyEnd, cont)
		}
		return done

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		b.jump(cur, head)
		head.Nodes = append(head.Nodes, s) // header node: X + key/value binding
		body := b.newBlock()
		done := b.newBlock()
		b.jump(head, body)
		b.jump(head, done)
		b.push(label, done, head, true)
		bodyEnd := b.stmt(body, s.Body)
		b.pop()
		if bodyEnd != nil {
			b.jump(bodyEnd, head)
		}
		return done

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		if s.Tag != nil {
			cur.Nodes = append(cur.Nodes, s.Tag)
		}
		return b.switchBody(cur, label, s.Body)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		cur.Nodes = append(cur.Nodes, s.Assign)
		return b.switchBody(cur, label, s.Body)

	case *ast.SelectStmt:
		label := b.takeLabel()
		done := b.newBlock()
		b.push(label, done, nil, false)
		for _, c := range s.Body.List {
			clause := c.(*ast.CommClause)
			cb := b.newBlock()
			b.jump(cur, cb)
			if clause.Comm != nil {
				cb.Nodes = append(cb.Nodes, clause.Comm)
			}
			if end := b.stmtList(cb, clause.Body); end != nil {
				b.jump(end, done)
			}
		}
		b.pop()
		return done

	case *ast.GoStmt, *ast.DeferStmt, *ast.AssignStmt, *ast.DeclStmt,
		*ast.SendStmt, *ast.IncDecStmt, *ast.EmptyStmt:
		cur.Nodes = append(cur.Nodes, s)
		return cur

	default:
		cur.Nodes = append(cur.Nodes, s)
		return cur
	}
}

// switchBody wires the clauses of a switch or type switch.
func (b *builder) switchBody(cur *Block, label string, body *ast.BlockStmt) *Block {
	done := b.newBlock()
	entries := make([]*Block, len(body.List))
	for i := range body.List {
		entries[i] = b.newBlock()
	}
	hasDefault := false
	b.push(label, done, nil, false)
	for i, c := range body.List {
		clause := c.(*ast.CaseClause)
		if clause.List == nil {
			hasDefault = true
		}
		b.jump(cur, entries[i])
		for _, e := range clause.List {
			entries[i].Nodes = append(entries[i].Nodes, e)
		}
		var next *Block
		if i+1 < len(entries) {
			next = entries[i+1]
		}
		if end := b.clauseList(entries[i], clause.Body, next); end != nil {
			b.jump(end, done)
		}
	}
	b.pop()
	if !hasDefault {
		b.jump(cur, done)
	}
	return done
}

// clauseList is stmtList with a fallthrough target.
func (b *builder) clauseList(cur *Block, list []ast.Stmt, fall *Block) *Block {
	for _, s := range list {
		if cur == nil {
			cur = b.newBlock()
		}
		if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && fall != nil {
			b.jump(cur, fall)
			return nil
		}
		cur = b.stmt(cur, s)
	}
	return cur
}

func (b *builder) branchStmt(cur *Block, s *ast.BranchStmt) *Block {
	name := ""
	if s.Label != nil {
		name = s.Label.Name
	}
	switch s.Tok {
	case token.GOTO:
		entry, ok := b.labels[name]
		if !ok {
			entry = b.newBlock()
			b.labels[name] = entry
		}
		b.jump(cur, entry)
		return nil
	case token.BREAK:
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if name == "" || t.label == name {
				b.jump(cur, t.brk)
				return nil
			}
		}
	case token.CONTINUE:
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if t.continueOK && (name == "" || t.label == name) {
				b.jump(cur, t.cont)
				return nil
			}
		}
	}
	// Malformed (or fallthrough outside clauseList): drop the edge.
	return nil
}

func (b *builder) push(label string, brk, cont *Block, continueOK bool) {
	b.targets = append(b.targets, loopTarget{label: label, brk: brk, cont: cont, continueOK: continueOK})
}

func (b *builder) pop() { b.targets = b.targets[:len(b.targets)-1] }

func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// isTerminatingCall reports whether e is a call that never returns, matched
// syntactically: panic(...), os.Exit, log.Fatal/Fatalf/Fatalln,
// runtime.Goexit.
func isTerminatingCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fn.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name + "." + fn.Sel.Name {
		case "os.Exit", "log.Fatal", "log.Fatalf", "log.Fatalln", "runtime.Goexit":
			return true
		}
	}
	return false
}
