// Package closesink enforces the stream lifecycle discipline: opened
// stream Sources and Sinks (Reader, Writer, PrefetchReader, AsyncWriter,
// TailSource, and the Source/Sink interfaces), B-tree Scanners and
// Sessions, store Scanners and Sessions, sharded Scanners and Sessions,
// sessions behind the unified index.Session interface, and Caches are
// closed on every path to return, unless they escape into a struct or
// caller that owns them or the acquisition is annotated //emlint:owns.
// These types hold pool frames and pinned pages; a Source dropped on an
// error unwind leaks its frames, an unclosed AsyncWriter abandons its
// in-flight write-behind batch, and a dropped sharded handle leaks
// per-shard frames on every volume it spans.
package closesink

import (
	"go/ast"
	"go/types"

	"em/internal/analysis"
	"em/internal/analysis/match"
	"em/internal/analysis/pairing"
)

var Analyzer = &analysis.Analyzer{
	Name: "closesink",
	Doc:  "check that opened sources, sinks, scanners, sessions and caches are closed on every return path",
	Run:  run,
}

// closeable lists the tracked types as (defining package basename, type
// name). The em facade's aliases resolve to these same types.
var closeable = [...][2]string{
	{"stream", "Reader"},
	{"stream", "Writer"},
	{"stream", "PrefetchReader"},
	{"stream", "AsyncWriter"},
	{"stream", "TailSource"},
	{"stream", "Source"},
	{"stream", "Sink"},
	{"btree", "Scanner"},
	{"btree", "Session"},
	{"store", "Scanner"},
	{"store", "Session"},
	{"shard", "Scanner"},
	{"shard", "Session"},
	{"index", "Session"},
	{"cache", "Cache"},
}

func isCloseable(t types.Type) bool {
	for _, c := range closeable {
		if match.IsNamed(t, c[0], c[1]) {
			return true
		}
	}
	return false
}

var spec = &pairing.Spec{
	What: "open stream/handle",
	Acquires: func(info *types.Info, call *ast.CallExpr) []bool {
		results := match.ResultTypes(info, call)
		var tracked []bool
		any := false
		for _, t := range results {
			is := isCloseable(t)
			tracked = append(tracked, is)
			any = any || is
		}
		if !any {
			return nil
		}
		return tracked
	},
	Releases: func(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
		if match.CalleeName(call) != "Close" {
			return false
		}
		return match.ReceiverIs(info, call, obj)
	},
	Remedy: "close it on the unwind (Close releases its frames and joins any in-flight batch)",
}

func run(pass *analysis.Pass) error {
	pairing.Run(pass, spec)
	return nil
}
