package closesink

import (
	"testing"

	"em/internal/analysis/analysistest"
)

func TestCloseSink(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), Analyzer, "sinks")
}
