// Package index is a self-contained stand-in for em/internal/index: the
// unified serving interfaces every concrete index satisfies. Session is a
// defined interface type (not an alias), so closesink must match handles
// held behind it by the same basename+name rule as the concrete types.
package index

// Session mirrors the unified batched read session interface.
type Session interface {
	Get(key uint64) (uint64, bool, error)
	GetBatch(keys []uint64) ([]uint64, []bool, error)
	Close() error
}
