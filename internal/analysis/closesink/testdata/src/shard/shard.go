// Package shard is a self-contained stand-in for em/internal/shard: the
// cross-shard Scanner and Session hold per-shard handles — frames on every
// volume the layout spans — so dropping one on an unwind leaks S volumes'
// worth of pins, not one.
package shard

import "index"

// Tree stands in for the sharded index facade.
type Tree struct{}

// Scanner stitches per-shard scanners into one key-ordered stream.
type Scanner struct{}

func (s *Scanner) Next() (uint64, bool, error) { return 0, false, nil }
func (s *Scanner) Close()                      {}

// Session composes per-shard read sessions with reserved budgets.
type Session struct{}

func (s *Session) Get(key uint64) (uint64, bool, error)             { return 0, false, nil }
func (s *Session) GetBatch(keys []uint64) ([]uint64, []bool, error) { return nil, nil, nil }
func (s *Session) Close() error                                     { return nil }

// Scan opens a cross-shard scanner over [lo, hi].
func (t *Tree) Scan(lo, hi uint64) (*Scanner, error) { return &Scanner{}, nil }

// NewSession composes per-shard sessions behind the unified interface.
func (t *Tree) NewSession(cacheFrames, width int) (index.Session, error) { return &Session{}, nil }

// Validate stands in for work between open and close.
func Validate() error { return nil }
