// Package sinks is the closesink corpus: the leak shapes drop an open
// reader/writer on an unwind (leaking the frames and pins it holds — the
// class PR 2's mid-loop Close hardening fixed), and the ok shapes are the
// lifecycle idioms the sweep must stay silent on.
package sinks

import (
	"index"
	"shard"
	"stream"
)

// leakOnErrorReturn opens a reader and forgets it on a later error unwind.
func leakOnErrorReturn(path string) error {
	r, err := stream.OpenReader[int](path) // want `open stream/handle "r" \(from OpenReader\) is not released`
	if err != nil {
		return err
	}
	if err := stream.Validate(path); err != nil {
		return err // leak: r still holds its frames
	}
	r.Close()
	return nil
}

// leakWriterNeverClosed never closes, so the tail block is never flushed.
func leakWriterNeverClosed(path string, vs []int) error {
	w, err := stream.OpenWriter[int](path) // want `open stream/handle "w" \(from OpenWriter\) is not released`
	if err != nil {
		return err
	}
	for _, v := range vs {
		if err := w.Push(v); err != nil {
			return err
		}
	}
	return nil
}

// leakInterfaceSource leaks behind the Source interface too.
func leakInterfaceSource(path string) (int, error) {
	src, err := stream.OpenSource[int](path) // want `open stream/handle "src" \(from OpenSource\) is not released`
	if err != nil {
		return 0, err
	}
	sum := 0
	for v, ok := src.Next(); ok; v, ok = src.Next() {
		sum += v
	}
	return sum, src.Err() // leak: src is never closed
}

// okErrorCheckedThenClosed is the canonical correct shape.
func okErrorCheckedThenClosed(path string) error {
	w, err := stream.OpenWriter[int](path)
	if err != nil {
		return err
	}
	if err := w.Push(1); err != nil {
		_ = w.Close()
		return err
	}
	return w.Close()
}

// okDeferredClose covers every path with a defer.
func okDeferredClose(path string) (int, error) {
	r, err := stream.OpenReader[int](path)
	if err != nil {
		return 0, err
	}
	defer r.Close()
	n := 0
	for _, ok := r.Next(); ok; _, ok = r.Next() {
		n++
	}
	return n, r.Err()
}

// okInterfaceDeferredClose closes a Source through the interface.
func okInterfaceDeferredClose(path string) error {
	src, err := stream.OpenSource[int](path)
	if err != nil {
		return err
	}
	defer src.Close()
	return stream.Validate(path)
}

// okReturned transfers the close obligation to the caller.
func okReturned(path string) (*stream.Reader[int], error) {
	r, err := stream.OpenReader[int](path)
	if err != nil {
		return nil, err
	}
	return r, nil
}

// merger owns the sources parked in it.
type merger struct {
	srcs []stream.Source[int]
}

// okStoredInStruct parks the source in a struct that owns it.
func okStoredInStruct(m *merger, path string) error {
	src, err := stream.OpenSource[int](path)
	if err != nil {
		return err
	}
	m.srcs = append(m.srcs, src)
	return nil
}

// okNilGuardedDeferBeforeLoop registers cleanup before the loop that
// (re)assigns the writer — the partitioned-write idiom: the defer covers
// whichever writer is live when the function unwinds.
func okNilGuardedDeferBeforeLoop(paths []string) error {
	var w *stream.Writer[int]
	defer func() {
		if w != nil {
			_ = w.Close()
		}
	}()
	for _, p := range paths {
		if w != nil {
			if err := w.Close(); err != nil {
				w = nil
				return err
			}
		}
		var err error
		w, err = stream.OpenWriter[int](p)
		if err != nil {
			w = nil
			return err
		}
		if err := w.Push(1); err != nil {
			return err
		}
	}
	return nil
}

// leakShardScanner drops a cross-shard scanner on an error unwind —
// leaking frames on every volume the stitched scan spans.
func leakShardScanner(t *shard.Tree) (int, error) {
	sc, err := t.Scan(1, 2048) // want `open stream/handle "sc" \(from Scan\) is not released`
	if err != nil {
		return 0, err
	}
	cnt := 0
	for {
		_, ok, err := sc.Next()
		if err != nil {
			return 0, err // leak: sc still holds per-shard scanners
		}
		if !ok {
			return cnt, nil
		}
		cnt++
	}
}

// leakIndexSession never closes a session opened behind the unified
// index.Session interface, abandoning its reserved per-shard budgets.
func leakIndexSession(t *shard.Tree, keys []uint64) error {
	sess, err := t.NewSession(16, 0) // want `open stream/handle "sess" \(from NewSession\) is not released`
	if err != nil {
		return err
	}
	_, _, err = sess.GetBatch(keys)
	return err
}

// okShardScannerDeferred covers the cross-shard scanner with a defer.
func okShardScannerDeferred(t *shard.Tree) (int, error) {
	sc, err := t.Scan(1, 2048)
	if err != nil {
		return 0, err
	}
	defer sc.Close()
	cnt := 0
	for {
		_, ok, err := sc.Next()
		if err != nil {
			return 0, err
		}
		if !ok {
			return cnt, nil
		}
		cnt++
	}
}

// okIndexSessionClosed closes the interface-typed session on both paths.
func okIndexSessionClosed(t *shard.Tree, keys []uint64) error {
	sess, err := t.NewSession(16, 0)
	if err != nil {
		return err
	}
	if _, _, err := sess.GetBatch(keys); err != nil {
		_ = sess.Close()
		return err
	}
	return sess.Close()
}

// okGateClosure is the admission-gate retry shape: the closure opens the
// scanner into the enclosing function's variable — ownership lands in the
// outer scope the moment the gate admits the attempt — so the closure
// itself owes no Close. The outer function returns the handle to its
// caller as usual.
func okGateClosure(t *shard.Tree, gate func(func() error) error) (*shard.Scanner, error) {
	var sc *shard.Scanner
	err := gate(func() (err error) {
		sc, err = t.Scan(1, 2048)
		return err
	})
	if err != nil {
		return nil, err
	}
	return sc, nil
}

// okGateClosureSession is the same shape behind the unified interface —
// a shed attempt leaves sess nil, an admitted one hands it out.
func okGateClosureSession(t *shard.Tree, gate func(func() error) error) (index.Session, error) {
	var sess index.Session
	err := gate(func() (err error) {
		sess, err = t.NewSession(16, 0)
		return err
	})
	if err != nil {
		return nil, err
	}
	return sess, nil
}

// okAnnotated documents a handoff the analysis cannot see.
func okAnnotated(reg map[string]*stream.Writer[int], path string) error {
	w, err := stream.OpenWriter[int](path) //emlint:owns: closed by the registry's shutdown sweep
	if err != nil {
		return err
	}
	reg[path] = w
	return nil
}
