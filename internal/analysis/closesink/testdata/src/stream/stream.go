// Package stream is a self-contained stand-in for em/internal/stream: the
// analyzers match resources by defining-package basename plus type name,
// so these generic stubs exercise exactly the same matching as the real
// package (including instantiated type arguments).
package stream

// Source mirrors the pull side of the real streaming interface.
type Source[T any] interface {
	Next() (T, bool)
	Err() error
	Close()
}

// Sink mirrors the push side.
type Sink[T any] interface {
	Push(v T) error
	Close() error
}

// Reader is a block-buffered source over a volume run.
type Reader[T any] struct{}

func (r *Reader[T]) Next() (T, bool) { var z T; return z, false }
func (r *Reader[T]) Err() error      { return nil }
func (r *Reader[T]) Close()          {}

// Writer is a block-buffered sink over a volume run.
type Writer[T any] struct{}

func (w *Writer[T]) Push(v T) error { return nil }
func (w *Writer[T]) Close() error   { return nil }

// OpenReader opens a run for streaming reads; the reader holds frames
// until closed.
func OpenReader[T any](path string) (*Reader[T], error) { return &Reader[T]{}, nil }

// OpenWriter opens a run for streaming writes; Close flushes the tail
// block.
func OpenWriter[T any](path string) (*Writer[T], error) { return &Writer[T]{}, nil }

// OpenSource opens a reader behind the Source interface.
func OpenSource[T any](path string) (Source[T], error) { return &Reader[T]{}, nil }

// Validate stands in for work between open and close.
func Validate(path string) error { return nil }
