// Package emlint bundles the repository's analyzers — poolbalance,
// pinpair, joinasync, closesink — into one suite and runs them over `go
// list` package patterns. cmd/emlint is the command-line front end; the
// smoke test in this package keeps the whole repository clean under the
// suite.
package emlint

import (
	"fmt"
	"go/token"
	"sort"

	"em/internal/analysis"
	"em/internal/analysis/closesink"
	"em/internal/analysis/joinasync"
	"em/internal/analysis/load"
	"em/internal/analysis/pinpair"
	"em/internal/analysis/poolbalance"
)

// Analyzers is the emlint suite, the four I/O-accounting disciplines.
var Analyzers = []*analysis.Analyzer{
	poolbalance.Analyzer,
	pinpair.Analyzer,
	joinasync.Analyzer,
	closesink.Analyzer,
}

// A Finding is one diagnostic from one analyzer.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// Check loads the packages matched by patterns (resolved in dir) and runs
// the full suite, returning all findings sorted by position. Type-check
// errors in the analyzed packages are returned as an error, since
// analyzers cannot be trusted over broken type information.
func Check(dir string, patterns ...string) ([]Finding, error) {
	pkgs, err := load.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("%s: type errors: %v", pkg.PkgPath, pkg.TypeErrors[0])
		}
		for _, a := range Analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				findings = append(findings, Finding{
					Pos:      pkg.Fset.Position(d.Pos),
					Analyzer: name,
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}
