package emlint

import "testing"

// TestRepoClean asserts the whole module passes every emlint discipline:
// any pool frame, cache pin, async join, or open stream handle that can
// leak on a return path is either fixed or carries an //emlint:owns
// annotation explaining the handoff. New code that breaks a discipline
// fails this test (and `make lint`, and CI).
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	findings, err := Check("../../..", "./...")
	if err != nil {
		t.Fatalf("emlint load: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Errorf("emlint: %d finding(s); fix the leak or annotate the acquisition with //emlint:owns", len(findings))
	}
}
