// Package joinasync enforces the async-batch discipline: the join handle
// returned by a dispatching call (Volume.BatchReadAsync,
// Volume.BatchWriteAsync, Cache.GetBatchAsync, and any *Async helper
// returning `func() error`) is invoked on every path to return. A batch
// that is dispatched and never joined abandons in-flight writes — the
// caller can observe success while blocks were never durably written —
// and its buffers are mutated behind the caller's back. Discarding the
// handle (`_` or a bare call statement) is reported unconditionally.
package joinasync

import (
	"go/ast"
	"go/types"
	"strings"

	"em/internal/analysis"
	"em/internal/analysis/match"
	"em/internal/analysis/pairing"
)

var Analyzer = &analysis.Analyzer{
	Name: "joinasync",
	Doc:  "check that async batch join handles are called on every return path",
	Run:  run,
}

var spec = &pairing.Spec{
	What: "async batch join",
	Acquires: func(info *types.Info, call *ast.CallExpr) []bool {
		name := match.CalleeName(call)
		if !strings.HasSuffix(name, "Async") {
			return nil
		}
		results := match.ResultTypes(info, call)
		var tracked []bool
		any := false
		for _, t := range results {
			isJoin := match.IsErrorFunc(t)
			tracked = append(tracked, isJoin)
			any = any || isJoin
		}
		if !any {
			return nil
		}
		return tracked
	},
	Releases: func(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
		// The join is released by calling it: join().
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		return info.Uses[id] == obj || info.Defs[id] == obj
	},
	Remedy: "call the join before every return (including error unwinds) so no dispatched I/O is abandoned",
}

func run(pass *analysis.Pass) error {
	pairing.Run(pass, spec)
	return nil
}
