package joinasync

import (
	"testing"

	"em/internal/analysis/analysistest"
)

func TestJoinAsync(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), Analyzer, "joins")
}
