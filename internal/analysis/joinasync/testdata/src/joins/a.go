// Package joins is the joinasync corpus: the leak shapes abandon
// dispatched I/O (the caller observes success while blocks were never
// durably written), and the ok shapes are the join idioms the sweep must
// stay silent on.
package joins

import "pdm"

// leakOnErrorReturn dispatches a batch and forgets the join on a later
// error unwind.
func leakOnErrorReturn(v *pdm.Volume, addrs []int64, dsts [][]byte) error {
	join := v.BatchReadAsync(addrs, dsts) // want `async batch join "join" \(from BatchReadAsync\) is not released`
	if err := pdm.Prep(); err != nil {
		return err // leak: the dispatched read is abandoned
	}
	return join()
}

// leakNeverJoined dispatches and returns without ever joining.
func leakNeverJoined(v *pdm.Volume, addrs []int64, srcs [][]byte) {
	join := v.BatchWriteAsync(addrs, srcs) // want `async batch join "join" \(from BatchWriteAsync\) is not released`
	_ = join
}

// leakDiscardedUnderscore throws the join handle away by name.
func leakDiscardedUnderscore(v *pdm.Volume, addrs []int64, srcs [][]byte) {
	_ = v.BatchWriteAsync(addrs, srcs) // want `async batch join result of BatchWriteAsync is discarded`
}

// leakDiscardedBare drops the handle without even binding it.
func leakDiscardedBare(v *pdm.Volume, addrs []int64, srcs [][]byte) {
	v.BatchWriteAsync(addrs, srcs) // want `async batch join result of BatchWriteAsync is discarded`
}

// okJoinedBothPaths joins before every return.
func okJoinedBothPaths(v *pdm.Volume, addrs []int64, dsts [][]byte) error {
	join := v.BatchReadAsync(addrs, dsts)
	if err := join(); err != nil {
		return err
	}
	return nil
}

// okJoinedOnUnwind overlaps compute with the batch and still joins on the
// error path.
func okJoinedOnUnwind(v *pdm.Volume, addrs []int64, dsts [][]byte) error {
	join := v.BatchReadAsync(addrs, dsts)
	if err := pdm.Prep(); err != nil {
		_ = join() // drain the batch before unwinding
		return err
	}
	return join()
}

// okDeferredJoin joins through a deferred closure.
func okDeferredJoin(v *pdm.Volume, addrs []int64, srcs [][]byte) (err error) {
	join := v.BatchWriteAsync(addrs, srcs)
	defer func() {
		if jerr := join(); err == nil {
			err = jerr
		}
	}()
	return pdm.Prep()
}

// okReturnedHandle transfers the join obligation to the caller.
func okReturnedHandle(v *pdm.Volume, addrs []int64, srcs [][]byte) func() error {
	join := v.BatchWriteAsync(addrs, srcs)
	return join
}

// okRetryLoopJoinsEachAttempt is the retry-under-faults shape: every
// dispatched attempt is joined before the loop decides to retry — an
// unjoined prior attempt would still be mutating the shared buffers
// behind the next attempt's back.
func okRetryLoopJoinsEachAttempt(v *pdm.Volume, addrs []int64, dsts [][]byte, tries int) error {
	var err error
	for i := 0; i < tries; i++ {
		join := v.BatchReadAsync(addrs, dsts)
		if err = join(); err == nil {
			return nil
		}
	}
	return err
}

// leakRetryLoopSkipsJoin re-enters the retry loop without joining the
// attempt it is abandoning.
func leakRetryLoopSkipsJoin(v *pdm.Volume, addrs []int64, dsts [][]byte, tries int) error {
	for i := 0; i < tries; i++ {
		join := v.BatchReadAsync(addrs, dsts) // want `async batch join "join" \(from BatchReadAsync\) is not released`
		if pdm.Prep() != nil {
			continue // leak: the dispatched batch is never joined
		}
		return join()
	}
	return nil
}

// okAnnotated documents a handoff the analysis cannot see.
func okAnnotated(v *pdm.Volume, joins map[string]func() error, addrs []int64, srcs [][]byte) {
	join := v.BatchWriteAsync(addrs, srcs) //emlint:owns: joined by the flush loop via the joins map
	joins["batch"] = join
}
