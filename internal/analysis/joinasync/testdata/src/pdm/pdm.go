// Package pdm is a self-contained stand-in for em/internal/pdm's async
// batch surface: joinasync matches dispatching calls by the *Async name
// suffix plus a `func() error` result, so these stubs exercise exactly
// the same matching as the real package.
package pdm

// Volume mirrors the async dispatch surface of the real parallel-disk
// volume.
type Volume struct{}

// BatchReadAsync dispatches a batched read and returns its join.
func (v *Volume) BatchReadAsync(addrs []int64, dsts [][]byte) func() error {
	return func() error { return nil }
}

// BatchWriteAsync dispatches a batched write and returns its join.
func (v *Volume) BatchWriteAsync(addrs []int64, srcs [][]byte) func() error {
	return func() error { return nil }
}

// Prep stands in for work between dispatch and join.
func Prep() error { return nil }
