// Package load turns `go list` package patterns into parsed, type-checked
// packages for the analysis framework. It shells out to the go tool twice:
// once for the package graph (`go list -deps -json -export`), which also
// compiles export data for every dependency into the build cache, and then
// type-checks the target packages from source against that export data via
// the standard library's gc importer. This is the same division of labour as
// x/tools' go/packages LoadAllSyntax for the root packages, without the
// dependency.
//
// Only non-test GoFiles are loaded: the I/O-accounting disciplines emlint
// enforces are production-code invariants, and tests routinely hold
// resources across t.Cleanup in ways the analyzers would have to
// special-case.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one type-checked package with its syntax trees.
type Package struct {
	PkgPath   string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	// TypeErrors holds any errors the type checker reported. Analyzers
	// still run over packages with type errors, but drivers should
	// surface them.
	TypeErrors []error
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load expands patterns (relative to dir, "" meaning the current directory)
// and returns the matched packages, parsed and type-checked. Dependencies
// are resolved through compiler export data, so the full source of the
// module is only parsed for the packages actually being analyzed.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-e", "-export", "-json=Dir,ImportPath,Name,Export,GoFiles,Standard,DepOnly,Incomplete,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{} // import path -> export data file
	var roots []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if !lp.DepOnly && !lp.Standard {
			p := lp
			roots = append(roots, &p)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, lp := range roots {
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := typeCheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func typeCheck(fset *token.FileSet, imp types.Importer, lp *listPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg := &Package{PkgPath: lp.ImportPath, Fset: fset, Files: files, TypesInfo: info}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(lp.ImportPath, fset, files, info)
	pkg.Types = tpkg
	return pkg, nil
}
