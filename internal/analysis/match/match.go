// Package match holds the small type- and call-shape predicates the emlint
// analyzers share: "is this a call (not a conversion or builtin)?", "what
// are its result types?", "is this type <pkg>.<Name>?". Types are matched
// by defining-package basename plus type name rather than full import path
// so the same analyzers run unchanged against this module's packages, the
// em facade's aliases (aliases preserve type identity), and the analyzers'
// own self-contained testdata stubs.
package match

import (
	"go/ast"
	"go/types"
	"strings"
)

// ResultTypes returns the result types of call, or nil if call is not a
// genuine function or method call (type conversions and builtins return
// nil).
func ResultTypes(info *types.Info, call *ast.CallExpr) []types.Type {
	fun := ast.Unparen(call.Fun)
	if tv, ok := info.Types[fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
		return nil
	}
	tv, ok := info.Types[call]
	if !ok {
		return nil
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		out := make([]types.Type, t.Len())
		for i := 0; i < t.Len(); i++ {
			out[i] = t.At(i).Type()
		}
		return out
	default:
		if tv.Type == nil || tv.IsVoid() {
			return nil
		}
		return []types.Type{tv.Type}
	}
}

// CalleeName returns the name of the called function or method, or "".
func CalleeName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	case *ast.IndexExpr:
		return CalleeName(&ast.CallExpr{Fun: fn.X})
	case *ast.IndexListExpr:
		return CalleeName(&ast.CallExpr{Fun: fn.X})
	}
	return ""
}

// IsNamed reports whether t (after stripping pointers) is a named type
// Name defined in a package whose path basename is pkgBase. Generic
// instantiations match their origin name.
func IsNamed(t types.Type, pkgBase, name string) bool {
	t = types.Unalias(t)
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return PathBase(obj.Pkg().Path()) == pkgBase
}

// IsSliceOfNamed reports whether t is []E with E matching IsNamed.
func IsSliceOfNamed(t types.Type, pkgBase, name string) bool {
	s, ok := types.Unalias(t).(*types.Slice)
	return ok && IsNamed(s.Elem(), pkgBase, name)
}

// IsErrorFunc reports whether t is `func() error`.
func IsErrorFunc(t types.Type) bool {
	sig, ok := t.Underlying().(*types.Signature)
	if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	return sig.Results().At(0).Type().String() == "error"
}

// ReceiverIs reports whether call is a method call whose receiver
// expression is exactly the object obj.
func ReceiverIs(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	if got := info.Uses[id]; got != nil {
		return got == obj
	}
	return info.Defs[id] == obj
}

// HasArg reports whether obj appears as a direct argument of call.
func HasArg(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	for _, a := range call.Args {
		id, ok := ast.Unparen(a).(*ast.Ident)
		if !ok {
			continue
		}
		if info.Uses[id] == obj || info.Defs[id] == obj {
			return true
		}
	}
	return false
}

// PathBase returns the last element of an import path.
func PathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
