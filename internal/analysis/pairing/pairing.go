// Package pairing is the dataflow engine shared by the emlint analyzers.
// Each analyzer describes its discipline as a Spec — which calls acquire a
// resource, which calls release it — and the engine proves, per function,
// that every acquired resource is released, handed off, or provably absent
// on every path to every return.
//
// The analysis is a forward may-analysis over the cfg package's graph. Per
// resource the state is a set over {HeldFresh, Held, Safe}:
//
//   - HeldFresh: acquired, and the companion error variable (the trailing
//     error result of the acquiring call, if any) has not been reassigned,
//     so `if err != nil` still implies the resource is absent. The edge
//     refinement uses this to kill the false "leak on the error return"
//     path of the universal `v, err := acquire(); if err != nil { return }`
//     shape.
//   - Held: acquired; the error companion (if any) has been reused, so
//     error branches say nothing about the resource anymore.
//   - Safe: released, escaped, or known nil on this path.
//
// Escape is deliberately generous — returning the resource, storing it in
// a field, map, slice, or composite literal, passing it to any call,
// sending it on a channel, aliasing it, binding it to a variable from an
// enclosing scope (the admission-gate closure shape), or capturing it in
// a closure all transfer ownership and end tracking. The engine therefore only reports
// the shape every real leak fixed in this repo's history had: a
// locally-owned resource and a return path that forgets it. A deliberate
// handoff the engine cannot see is documented with an `//emlint:owns`
// comment on (or immediately above) the acquiring line, which suppresses
// the report.
package pairing

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"em/internal/analysis"
	"em/internal/analysis/cfg"
)

// A Spec describes one acquire/release discipline.
type Spec struct {
	// What names the resource in diagnostics, e.g. "pool frame".
	What string
	// Acquires classifies call: element i is true if result i hands the
	// caller a resource this Spec tracks. A nil slice means the call is
	// not an acquisition.
	Acquires func(info *types.Info, call *ast.CallExpr) []bool
	// Releases reports whether call releases the resource held in obj.
	// obj may appear as the method receiver, as an argument, or as the
	// callee itself (batch join handles are released by calling them).
	Releases func(info *types.Info, call *ast.CallExpr, obj types.Object) bool
	// Remedy is the diagnostic's "what to do" clause, e.g.
	// "release it on the unwind (Release, or ReleaseAll for batches)".
	Remedy string
}

// Run applies spec to every function and function literal in the pass.
func Run(pass *analysis.Pass, spec *Spec) {
	owns := ownsLines(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				analyzeBody(pass, spec, body, owns)
			}
			return true // visit nested literals too; each gets its own run
		})
	}
}

// ownsLines collects, per file line, whether an `//emlint:owns` annotation
// is present (on the acquiring line itself or the line above it).
func ownsLines(pass *analysis.Pass) map[string]map[int]bool {
	m := map[string]map[int]bool{}
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.Contains(c.Text, "emlint:owns") {
					continue
				}
				p := pass.Fset.Position(c.Pos())
				lines := m[p.Filename]
				if lines == nil {
					lines = map[int]bool{}
					m[p.Filename] = lines
				}
				lines[p.Line] = true   // trailing comment on the acquire line
				lines[p.Line+1] = true // comment on the line above the acquire
			}
		}
	}
	return m
}

// A resource is one tracked acquisition in a function body.
type resource struct {
	obj  types.Object // the variable bound to the resource
	err  types.Object // trailing error result bound alongside, or nil
	stmt ast.Node     // the acquiring statement (strong update site)
	pos  token.Pos
	name string
	what string // callee name, for the diagnostic
}

// Per-resource dataflow state: a bitset of facts that may hold on some path
// reaching the program point.
const (
	bHeldFresh uint8 = 1 << iota // held; error companion still trustworthy
	bHeld                        // held; error companion reused
	bSafe                        // released / escaped / nil on this path
	bAnyHeld   = bHeldFresh | bHeld
)

func analyzeBody(pass *analysis.Pass, spec *Spec, body *ast.BlockStmt, owns map[string]map[int]bool) {
	res := discover(pass, spec, body, owns)
	if len(res) == 0 {
		return
	}
	g := cfg.New(body)
	a := &analyzer{pass: pass, spec: spec, res: res, g: g}
	a.solve()
	for i, r := range res {
		if a.in[g.Exit][i]&bAnyHeld != 0 && !a.deferReleases(body, r) {
			pass.Reportf(r.pos, "%s %q (from %s) is not released on every path to return; %s, or mark the acquisition //emlint:owns if ownership moves somewhere emlint cannot see",
				spec.What, r.name, r.what, spec.Remedy)
		}
	}
}

// discover finds the tracked acquisitions in body (skipping nested function
// literals, which are analyzed on their own) and reports immediately on
// results that are discarded outright.
func discover(pass *analysis.Pass, spec *Spec, body *ast.BlockStmt, owns map[string]map[int]bool) []*resource {
	var res []*resource
	suppressed := func(pos token.Pos) bool {
		p := pass.Fset.Position(pos)
		return owns[p.Filename][p.Line]
	}
	bind := func(stmt ast.Node, lhs []ast.Expr, call *ast.CallExpr) {
		tracked := spec.Acquires(pass.TypesInfo, call)
		if tracked == nil || suppressed(call.Pos()) || len(lhs) != len(tracked) {
			return
		}
		// Trailing error result assigned to a plain variable, if any.
		var errObj types.Object
		if n := len(lhs); n > 1 {
			if id, ok := lhs[n-1].(*ast.Ident); ok && id.Name != "_" {
				if obj := objectOf(pass.TypesInfo, id); obj != nil && isErrorType(obj.Type()) {
					errObj = obj
				}
			}
		}
		for i, isRes := range tracked {
			if !isRes {
				continue
			}
			id, ok := lhs[i].(*ast.Ident)
			if !ok {
				continue // stored straight into a field/element: escape
			}
			if id.Name == "_" {
				pass.Reportf(call.Pos(), "%s result of %s is discarded; %s",
					spec.What, calleeName(call), spec.Remedy)
				continue
			}
			obj := objectOf(pass.TypesInfo, id)
			if obj == nil {
				continue
			}
			if obj.Pos() < body.Pos() || obj.Pos() >= body.End() {
				// Bound to a variable declared outside this body — a
				// captured outer variable (the admission-gate closure
				// shape: `err := gate.Do(func() error { s, err =
				// open(...); ... })`) or a named result. Either way
				// ownership lands in an enclosing scope: an escape.
				continue
			}
			res = append(res, &resource{
				obj: obj, err: errObj, stmt: stmt,
				pos: id.Pos(), name: id.Name, what: calleeName(call),
			})
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // analyzed separately
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 {
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok {
					bind(n, n.Lhs, call)
				}
			}
		case *ast.ValueSpec:
			if len(n.Values) == 1 {
				if call, ok := n.Values[0].(*ast.CallExpr); ok {
					lhs := make([]ast.Expr, len(n.Names))
					for i, id := range n.Names {
						lhs[i] = id
					}
					bind(n, lhs, call)
				}
			}
		case *ast.ExprStmt:
			call, ok := n.X.(*ast.CallExpr)
			if !ok {
				break
			}
			tracked := spec.Acquires(pass.TypesInfo, call)
			if tracked == nil || suppressed(call.Pos()) {
				break
			}
			for _, isRes := range tracked {
				if isRes {
					pass.Reportf(call.Pos(), "%s result of %s is discarded; %s",
						spec.What, calleeName(call), spec.Remedy)
					break
				}
			}
		}
		return true
	})
	return res
}

type analyzer struct {
	pass *analysis.Pass
	spec *Spec
	res  []*resource
	g    *cfg.Graph
	in   map[*cfg.Block][]uint8
}

func (a *analyzer) solve() {
	a.in = make(map[*cfg.Block][]uint8, len(a.g.Blocks))
	for _, b := range a.g.Blocks {
		a.in[b] = make([]uint8, len(a.res))
	}
	// Seed every block, not just the entry: with an all-bottom initial
	// state the first sweep often changes nothing, and a change-driven
	// worklist would otherwise never look past the entry chain.
	work := make([]*cfg.Block, len(a.g.Blocks))
	onWork := make(map[*cfg.Block]bool, len(a.g.Blocks))
	copy(work, a.g.Blocks)
	for _, b := range work {
		onWork[b] = true
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		onWork[b] = false
		state := append([]uint8(nil), a.in[b]...)
		for _, n := range b.Nodes {
			a.transfer(n, state)
		}
		for _, e := range b.Succs {
			out := append([]uint8(nil), state...)
			a.refine(e, out)
			dst := a.in[e.To]
			changed := false
			for i := range dst {
				if dst[i]|out[i] != dst[i] {
					dst[i] |= out[i]
					changed = true
				}
			}
			if changed && !onWork[e.To] {
				work = append(work, e.To)
				onWork[e.To] = true
			}
		}
	}
}

// transfer applies one straight-line node to the state.
func (a *analyzer) transfer(n ast.Node, state []uint8) {
	for i, r := range a.res {
		if n == r.stmt {
			// Strong update at the acquisition site. Other resources
			// appearing in the call's arguments are handled by their own
			// transferOne below.
			state[i] = bHeldFresh
			continue
		}
		a.transferOne(n, r, &state[i])
	}
}

func (a *analyzer) transferOne(n ast.Node, r *resource, st *uint8) {
	info := a.pass.TypesInfo
	switch n := n.(type) {
	case *ast.DeferStmt:
		a.deferStmt(n, r, st)
	case *ast.GoStmt:
		if mentions(n.Call, r.obj, info) {
			markSafe(st) // escapes into the goroutine
		}
	case *ast.ReturnStmt:
		for _, e := range n.Results {
			if passesValue(e, r.obj, info) {
				markSafe(st) // ownership returned to the caller
				return
			}
		}
		// `return f.Buf` or `return sum, src.Err()` return a projection,
		// not the resource; scan classifies any calls in the results.
		for _, e := range n.Results {
			a.scan(e, r, st)
		}
	case *ast.RangeStmt:
		a.rangeHeader(n, r, st)
	case *ast.AssignStmt:
		a.assign(n, r, st)
	case *ast.SendStmt:
		if mentions(n.Value, r.obj, info) {
			markSafe(st) // sent away on a channel
			return
		}
		a.scan(n.Chan, r, st)
	default:
		a.scan(n, r, st)
	}
}

// scan walks one straight-line node (a simple statement or a bare
// expression from a branch condition or case clause) for effects on r:
// release calls, escapes into calls, closures, composite literals, or
// address-taking.
func (a *analyzer) scan(n ast.Node, r *resource, st *uint8) {
	info := a.pass.TypesInfo
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			if mentionsIn(m, r.obj, info) {
				markSafe(st) // captured by a closure: escapes
			}
			return false
		case *ast.CallExpr:
			a.callEffect(m, r, st)
		case *ast.CompositeLit:
			if mentionsIn(m, r.obj, info) {
				markSafe(st) // stored in a literal: escapes
				return false
			}
		case *ast.UnaryExpr:
			if m.Op == token.AND && mentions(m.X, r.obj, info) {
				markSafe(st) // address taken: escapes
				return false
			}
		case *ast.ValueSpec:
			for _, v := range m.Values {
				if isIdentFor(v, r.obj, info) {
					markSafe(st) // aliased: escapes
					return false
				}
			}
		}
		return true
	})
}

// callEffect classifies one call's effect on r: release, benign use, or
// escape.
func (a *analyzer) callEffect(call *ast.CallExpr, r *resource, st *uint8) {
	info := a.pass.TypesInfo
	if a.spec.Releases(info, call, r.obj) {
		release(st)
		return
	}
	// The resource as the callee itself or as a method receiver is a
	// benign use: r.method(...) reads or advances the resource without
	// transferring ownership.
	if isIdentFor(call.Fun, r.obj, info) {
		return
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && isIdentFor(sel.X, r.obj, info) {
		return
	}
	// Builtins that inspect without consuming.
	if id, ok := call.Fun.(*ast.Ident); ok {
		switch id.Name {
		case "len", "cap":
			return
		}
	}
	for _, arg := range call.Args {
		if passesValue(arg, r.obj, info) {
			markSafe(st) // handed to another function: ownership escapes
			return
		}
	}
}

// passesValue reports whether arg hands the resource itself to a callee:
// the bare identifier, its address, or a composite literal containing it.
// Projections — f.Buf, f[i], f[:n] — lend a view of the resource without
// transferring ownership, so they are benign uses, not escapes.
func passesValue(arg ast.Expr, obj types.Object, info *types.Info) bool {
	switch e := ast.Unparen(arg).(type) {
	case *ast.Ident:
		return objectOf(info, e) == obj
	case *ast.UnaryExpr:
		return e.Op == token.AND && passesValue(e.X, obj, info)
	case *ast.CompositeLit:
		return mentionsIn(e, obj, info)
	case *ast.FuncLit:
		return mentionsIn(e, obj, info) // captured: escapes via the closure
	}
	return false
}

// assign handles reassignment of the resource or its companion error
// variable, and aliasing.
func (a *analyzer) assign(n *ast.AssignStmt, r *resource, st *uint8) {
	info := a.pass.TypesInfo
	for _, lhs := range n.Lhs {
		if isIdentFor(lhs, r.obj, info) {
			markSafe(st) // overwritten (commonly `v = nil` after handoff)
			return
		}
		if r.err != nil && isIdentFor(lhs, r.err, info) {
			// The error companion now holds some other call's error;
			// `if err != nil` no longer implies the resource is absent.
			if *st&bHeldFresh != 0 {
				*st = (*st &^ bHeldFresh) | bHeld
			}
		}
	}
	// `_ = v` keeps nothing alive: only a binding to a real name (or a
	// field/element store, handled by scan below) transfers ownership.
	allBlank := true
	for _, lhs := range n.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); !ok || id.Name != "_" {
			allBlank = false
		}
	}
	for _, rhs := range n.Rhs {
		if !allBlank && isIdentFor(rhs, r.obj, info) {
			markSafe(st) // plain alias: `g := f`
			return
		}
		a.scan(rhs, r, st)
	}
	for _, lhs := range n.Lhs {
		a.scan(lhs, r, st) // index expressions etc. on the left
	}
}

// deferStmt recognizes deferred releases — `defer v.Close()` and
// `defer func() { ... v.Close() ... }()` — which cover every path out of
// the function from this point on.
func (a *analyzer) deferStmt(n *ast.DeferStmt, r *resource, st *uint8) {
	info := a.pass.TypesInfo
	if a.spec.Releases(info, n.Call, r.obj) {
		release(st)
		return
	}
	if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
		found := false
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok && a.spec.Releases(info, call, r.obj) {
				found = true
			}
			return !found
		})
		if found {
			release(st)
			return
		}
		// A deferred closure may release a ranged-over slice's elements.
		if a.releasesElements(lit.Body, r) {
			release(st)
			return
		}
	}
	if mentionsIn(n.Call, r.obj, info) {
		markSafe(st) // deferred handoff we cannot model: stop tracking
	}
}

// rangeHeader recognizes the batch-release idiom
//
//	for _, f := range frames { f.Release() }
//
// as a release of the ranged-over slice resource.
func (a *analyzer) rangeHeader(n *ast.RangeStmt, r *resource, st *uint8) {
	info := a.pass.TypesInfo
	if !isIdentFor(n.X, r.obj, info) {
		a.scan(n.X, r, st)
		return
	}
	if released := a.rangeReleases(n, r); released {
		release(st)
	}
}

// rangeReleases reports whether the range statement iterates r's slice
// releasing each element.
func (a *analyzer) rangeReleases(n *ast.RangeStmt, r *resource) bool {
	info := a.pass.TypesInfo
	val, ok := n.Value.(*ast.Ident)
	if !ok || val.Name == "_" {
		return false
	}
	elem := objectOf(info, val)
	if elem == nil {
		return false
	}
	released := false
	ast.Inspect(n.Body, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok && a.spec.Releases(info, call, elem) {
			released = true
		}
		return !released
	})
	return released
}

// deferReleases reports whether any defer statement in body releases r —
// directly, through a deferred closure, or by releasing a ranged batch's
// elements. The flow analysis only credits defers executed after the
// acquisition; this pass additionally credits the cleanup idiom where the
// defer is registered before a loop that (re)assigns the resource:
//
//	var w *stream.Writer[Op]
//	defer func() { if w != nil { w.Close() } }()
//	for ... { w, err = stream.NewWriter(...); ... }
//
// A defer registered only on some paths is credited on all of them; that
// trades a rare false negative for never flagging this correct shape.
func (a *analyzer) deferReleases(body ast.Node, r *resource) bool {
	info := a.pass.TypesInfo
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a nested function's defers are its own
		case *ast.DeferStmt:
			if a.spec.Releases(info, n.Call, r.obj) {
				found = true
				return false
			}
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok && a.spec.Releases(info, call, r.obj) {
						found = true
					}
					return !found
				})
				if !found && a.releasesElements(lit.Body, r) {
					found = true
				}
			}
			return false
		}
		return true
	})
	return found
}

// releasesElements reports whether body contains a range over r's slice
// that releases each element (the deferred-cleanup variant).
func (a *analyzer) releasesElements(body ast.Node, r *resource) bool {
	info := a.pass.TypesInfo
	found := false
	ast.Inspect(body, func(m ast.Node) bool {
		if rng, ok := m.(*ast.RangeStmt); ok && isIdentFor(rng.X, r.obj, info) {
			if a.rangeReleases(rng, r) {
				found = true
			}
		}
		return !found
	})
	return found
}

// refine applies branch-condition facts along an edge: on the nil side of a
// `v == nil` test the resource is absent, and on the error side of an
// `err != nil` test a still-fresh acquisition is known to have failed.
func (a *analyzer) refine(e cfg.Edge, state []uint8) {
	if e.Cond == nil {
		return
	}
	bin, ok := ast.Unparen(e.Cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return
	}
	var operand ast.Expr
	switch {
	case isNil(bin.Y):
		operand = bin.X
	case isNil(bin.X):
		operand = bin.Y
	default:
		return
	}
	id, ok := ast.Unparen(operand).(*ast.Ident)
	if !ok {
		return
	}
	obj := objectOf(a.pass.TypesInfo, id)
	if obj == nil {
		return
	}
	// nilEdge: this edge is the one taken when the operand is nil.
	nilEdge := (bin.Op == token.EQL) == e.CondTrue
	for i, r := range a.res {
		if obj == r.obj && nilEdge {
			state[i] = markedSafe(state[i]) // the resource itself is nil here
		}
		if r.err != nil && obj == r.err && !nilEdge {
			// err != nil on this edge: a still-fresh acquisition failed,
			// so its resource is absent here. Paths where the companion
			// was reused (bHeld) keep their held fact.
			if state[i]&bHeldFresh != 0 {
				state[i] = (state[i] &^ bHeldFresh) | bSafe
			}
		}
	}
}

func markSafe(st *uint8) { *st = markedSafe(*st) }

// markedSafe moves any held fact to Safe; an unacquired (zero) state stays
// zero.
func markedSafe(st uint8) uint8 {
	if st == 0 {
		return 0
	}
	return (st &^ bAnyHeld) | bSafe
}

func release(st *uint8) {
	if *st&bAnyHeld != 0 {
		*st = (*st &^ bAnyHeld) | bSafe
	}
}

// --- small AST/type helpers ---

func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

func isIdentFor(e ast.Expr, obj types.Object, info *types.Info) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && objectOf(info, id) == obj
}

// mentions reports whether obj is referenced anywhere inside e.
func mentions(e ast.Expr, obj types.Object, info *types.Info) bool {
	return mentionsIn(e, obj, info)
}

func mentionsIn(n ast.Node, obj types.Object, info *types.Info) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && objectOf(info, id) == obj {
			found = true
		}
		return !found
	})
	return found
}

func isNil(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

func isErrorType(t types.Type) bool {
	return t != nil && t.String() == "error"
}

func calleeName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	case *ast.IndexExpr: // generic instantiation f[T](...)
		return calleeName(&ast.CallExpr{Fun: fn.X})
	case *ast.IndexListExpr:
		return calleeName(&ast.CallExpr{Fun: fn.X})
	}
	return "call"
}
