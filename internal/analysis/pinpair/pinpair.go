// Package pinpair enforces the buffer-cache pin discipline: every
// *cache.Page (or []*cache.Page batch) pinned by a call — Cache.Get,
// GetNew, Peek, GetBatchAsync, or any helper returning pages — is unpinned
// on every path to return, unless the page escapes into a structure that
// owns the pin or the acquisition is annotated //emlint:owns. A page whose
// pin count never returns to zero can never be evicted, which silently
// shrinks the cache until admission fails.
package pinpair

import (
	"go/ast"
	"go/types"

	"em/internal/analysis"
	"em/internal/analysis/match"
	"em/internal/analysis/pairing"
)

var Analyzer = &analysis.Analyzer{
	Name: "pinpair",
	Doc:  "check that pinned cache pages are unpinned on every return path",
	Run:  run,
}

var spec = &pairing.Spec{
	What: "pinned page",
	Acquires: func(info *types.Info, call *ast.CallExpr) []bool {
		results := match.ResultTypes(info, call)
		var tracked []bool
		any := false
		for _, t := range results {
			isPage := match.IsNamed(t, "cache", "Page") || match.IsSliceOfNamed(t, "cache", "Page")
			tracked = append(tracked, isPage)
			any = any || isPage
		}
		if !any {
			return nil
		}
		return tracked
	},
	Releases: func(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
		switch match.CalleeName(call) {
		// Unpin is the public release; failBatch and discard are the
		// cache's internal paths that also drop the pin.
		case "Unpin", "failBatch", "discard":
			return match.HasArg(info, call, obj)
		}
		return false
	},
	Remedy: "unpin it on the unwind (Cache.Unpin)",
}

func run(pass *analysis.Pass) error {
	pairing.Run(pass, spec)
	return nil
}
