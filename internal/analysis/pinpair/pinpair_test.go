package pinpair

import (
	"testing"

	"em/internal/analysis/analysistest"
)

func TestPinPair(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), Analyzer, "pins")
}
