// Package cache is a self-contained stand-in for em/internal/cache: the
// analyzers match resources by defining-package basename plus type name,
// so these stubs exercise exactly the same matching as the real package.
package cache

// Page is one cached block; every pointer handed out holds a pin.
type Page struct {
	Addr int64
	Data []byte
}

// Cache mirrors the pinning surface of the real buffer cache.
type Cache struct{}

func (c *Cache) Get(addr int64) (*Page, error)    { return &Page{Addr: addr}, nil }
func (c *Cache) GetNew(addr int64) (*Page, error) { return &Page{Addr: addr}, nil }
func (c *Cache) Peek(addr int64) *Page            { return nil }

// GetBatchAsync pins every page up front and returns a join for the misses.
func (c *Cache) GetBatchAsync(addrs []int64) ([]*Page, func() error, error) {
	return nil, func() error { return nil }, nil
}

// Unpin drops one pin.
func (c *Cache) Unpin(p *Page) {}

// Checksum reads a page's data without taking the pin.
func Checksum(data []byte) error { return nil }
