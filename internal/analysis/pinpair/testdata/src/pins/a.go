// Package pins is the pinpair corpus: the leak shapes are the pin classes
// fixed by hand in this repository's history (PR 3 fixed a batch-lookup
// path that kept pages pinned after a mid-batch read error), and the ok
// shapes are the idioms the sweep must stay silent on.
package pins

import "cache"

// leakOnErrorReturn pins a page and forgets it on a later error unwind.
func leakOnErrorReturn(c *cache.Cache, addr int64) error {
	pg, err := c.Get(addr) // want `pinned page "pg" \(from Get\) is not released`
	if err != nil {
		return err
	}
	if err := cache.Checksum(pg.Data); err != nil {
		return err // leak: pg is still pinned
	}
	c.Unpin(pg)
	return nil
}

// leakPeekNeverUnpinned holds a peeked page's pin forever.
func leakPeekNeverUnpinned(c *cache.Cache, addr int64) []byte {
	pg := c.Peek(addr) // want `pinned page "pg" \(from Peek\) is not released`
	if pg == nil {
		return nil
	}
	return append([]byte(nil), pg.Data...)
}

// leakBatchOnJoinError keeps the whole batch pinned when the join fails.
func leakBatchOnJoinError(c *cache.Cache, addrs []int64) error {
	pages, join, err := c.GetBatchAsync(addrs) // want `pinned page "pages" \(from GetBatchAsync\) is not released`
	if err != nil {
		return err
	}
	if err := join(); err != nil {
		return err // leak: every page in the batch is still pinned
	}
	for _, pg := range pages {
		c.Unpin(pg)
	}
	return nil
}

// leakDiscarded drops the pinned page on the floor outright.
func leakDiscarded(c *cache.Cache, addr int64) {
	_ = c.Peek(addr) // want `pinned page result of Peek is discarded`
}

// okErrorCheckedThenUnpinned is the canonical correct shape.
func okErrorCheckedThenUnpinned(c *cache.Cache, addr int64) error {
	pg, err := c.Get(addr)
	if err != nil {
		return err
	}
	if err := cache.Checksum(pg.Data); err != nil {
		c.Unpin(pg)
		return err
	}
	c.Unpin(pg)
	return nil
}

// okDeferredUnpin covers every path with a defer.
func okDeferredUnpin(c *cache.Cache, addr int64) error {
	pg, err := c.GetNew(addr)
	if err != nil {
		return err
	}
	defer c.Unpin(pg)
	return cache.Checksum(pg.Data)
}

// okPeekGuarded unpins the peeked page on the hit path.
func okPeekGuarded(c *cache.Cache, addr int64) []byte {
	pg := c.Peek(addr)
	if pg == nil {
		return nil
	}
	data := append([]byte(nil), pg.Data...)
	c.Unpin(pg)
	return data
}

// okBatchUnpinnedOnBothPaths unpins the batch on the join failure too.
func okBatchUnpinnedOnBothPaths(c *cache.Cache, addrs []int64) error {
	pages, join, err := c.GetBatchAsync(addrs)
	if err != nil {
		return err
	}
	if err := join(); err != nil {
		for _, pg := range pages {
			c.Unpin(pg)
		}
		return err
	}
	for _, pg := range pages {
		c.Unpin(pg)
	}
	return nil
}

// okReturned transfers the pin to the caller.
func okReturned(c *cache.Cache, addr int64) (*cache.Page, error) {
	pg, err := c.Get(addr)
	if err != nil {
		return nil, err
	}
	return pg, nil
}

// cursor owns the pin on the page it parks.
type cursor struct {
	pg *cache.Page
}

// okStoredInStruct parks the page in a struct that owns the pin.
func okStoredInStruct(c *cache.Cache, cur *cursor, addr int64) error {
	pg, err := c.Get(addr)
	if err != nil {
		return err
	}
	cur.pg = pg
	return nil
}

// okAnnotated documents a pin handoff the analysis cannot see.
func okAnnotated(c *cache.Cache, out chan<- *cache.Page, addr int64) error {
	pg, err := c.Get(addr) //emlint:owns: the consumer goroutine unpins
	if err != nil {
		return err
	}
	out <- pg
	return nil
}
