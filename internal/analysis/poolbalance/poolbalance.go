// Package poolbalance enforces the pool-frame discipline: every
// *pdm.Frame (or []*pdm.Frame batch) handed out by a call — Pool.Alloc,
// MustAlloc, AllocN, or any helper returning frames — reaches a matching
// Frame.Release / pdm.ReleaseAll on every path to return, unless ownership
// provably escapes (returned, stored, passed on) or the acquisition is
// annotated //emlint:owns. This is the invariant behind Pool.InUse()==0
// leak checks: a frame forgotten on an error unwind permanently shrinks
// the memory budget M/B that the PDM cost model charges against.
package poolbalance

import (
	"go/ast"
	"go/types"

	"em/internal/analysis"
	"em/internal/analysis/match"
	"em/internal/analysis/pairing"
)

var Analyzer = &analysis.Analyzer{
	Name: "poolbalance",
	Doc:  "check that pool frames are released or handed off on every return path",
	Run:  run,
}

var spec = &pairing.Spec{
	What: "pool frame",
	Acquires: func(info *types.Info, call *ast.CallExpr) []bool {
		results := match.ResultTypes(info, call)
		var tracked []bool
		any := false
		for _, t := range results {
			isFrame := match.IsNamed(t, "pdm", "Frame") || match.IsSliceOfNamed(t, "pdm", "Frame")
			tracked = append(tracked, isFrame)
			any = any || isFrame
		}
		if !any {
			return nil
		}
		return tracked
	},
	Releases: func(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
		switch match.CalleeName(call) {
		case "Release":
			return match.ReceiverIs(info, call, obj)
		case "ReleaseAll":
			return match.HasArg(info, call, obj)
		}
		return false
	},
	Remedy: "release it on the unwind (Frame.Release, or pdm.ReleaseAll for batches)",
}

func run(pass *analysis.Pass) error {
	pairing.Run(pass, spec)
	return nil
}
