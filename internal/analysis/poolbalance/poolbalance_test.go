package poolbalance

import (
	"testing"

	"em/internal/analysis/analysistest"
)

func TestPoolBalance(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), Analyzer, "poolframes")
}
