// Package pdm is a self-contained stand-in for em/internal/pdm: the
// analyzers match resources by defining-package basename plus type name,
// so these stubs exercise exactly the same matching as the real package.
package pdm

type errNoFrames struct{}

func (errNoFrames) Error() string { return "pdm: no frames" }

// ErrNoFrames mirrors the real pool-exhaustion error.
var ErrNoFrames error = errNoFrames{}

// Frame is one block-sized buffer on loan from a Pool.
type Frame struct {
	Buf []byte
}

// Release returns the frame to its pool.
func (f *Frame) Release() {}

// Pool hands out frames against the memory budget.
type Pool struct{}

func (p *Pool) Alloc() (*Frame, error)         { return &Frame{}, nil }
func (p *Pool) MustAlloc() *Frame              { return &Frame{} }
func (p *Pool) AllocN(n int) ([]*Frame, error) { return nil, nil }

// ReleaseAll releases every frame in frames.
func ReleaseAll(frames []*Frame) {}

// Sink consumes frames, taking ownership.
type Sink struct{}

func (s *Sink) Consume(f *Frame) error { return nil }

// Process uses a frame without taking ownership.
func Process(buf []byte) error { return nil }
