// Package poolframes is the poolbalance corpus: every known-bad shape is a
// leak class fixed by hand in this repository's history (PR 2 fixed
// partition leaking frames when a mid-loop Close failed; PR 2's review
// hardened MergeSort and copyFile error paths the same way), and every
// known-good shape is an idiom the sweep must stay silent on.
package poolframes

import "pdm"

// leakOnErrorReturn is the classic unwind bug: the frame is held, a later
// step fails, and the error return forgets it (the PR 2 partition class).
func leakOnErrorReturn(p *pdm.Pool) error {
	f, err := p.Alloc() // want `pool frame "f" \(from Alloc\) is not released on every path`
	if err != nil {
		return err
	}
	if err := pdm.Process(f.Buf); err != nil {
		return err // leak: f still held
	}
	f.Release()
	return nil
}

// leakNeverReleased never releases at all.
func leakNeverReleased(p *pdm.Pool) {
	f := p.MustAlloc() // want `pool frame "f" \(from MustAlloc\) is not released`
	_ = f.Buf
}

// leakBatchOnError loses a whole AllocN batch on the error path.
func leakBatchOnError(p *pdm.Pool) error {
	frames, err := p.AllocN(4) // want `pool frame "frames" \(from AllocN\) is not released`
	if err != nil {
		return err
	}
	for _, f := range frames {
		if err := pdm.Process(f.Buf); err != nil {
			return err // leak: the batch is still held
		}
	}
	pdm.ReleaseAll(frames)
	return nil
}

// leakDiscarded drops the frame on the floor outright.
func leakDiscarded(p *pdm.Pool) {
	_ = p.MustAlloc() // want `pool frame result of MustAlloc is discarded`
}

// okErrorCheckedThenReleased is the canonical correct shape.
func okErrorCheckedThenReleased(p *pdm.Pool) error {
	f, err := p.Alloc()
	if err != nil {
		return err
	}
	if err := pdm.Process(f.Buf); err != nil {
		f.Release()
		return err
	}
	f.Release()
	return nil
}

// okDeferred releases through a defer, covering every path.
func okDeferred(p *pdm.Pool) error {
	f, err := p.Alloc()
	if err != nil {
		return err
	}
	defer f.Release()
	return pdm.Process(f.Buf)
}

// okDeferredClosure releases inside a deferred closure.
func okDeferredClosure(p *pdm.Pool) error {
	f, err := p.Alloc()
	if err != nil {
		return err
	}
	defer func() { f.Release() }()
	return pdm.Process(f.Buf)
}

// okBatchRangeRelease releases a batch with the range idiom on the unwind.
func okBatchRangeRelease(p *pdm.Pool) error {
	frames, err := p.AllocN(4)
	if err != nil {
		return err
	}
	for _, f := range frames {
		if err := pdm.Process(f.Buf); err != nil {
			for _, g := range frames {
				g.Release()
			}
			return err
		}
	}
	pdm.ReleaseAll(frames)
	return nil
}

// okReturned transfers ownership to the caller.
func okReturned(p *pdm.Pool) (*pdm.Frame, error) {
	f, err := p.Alloc()
	if err != nil {
		return nil, err
	}
	return f, nil
}

// okEscapesIntoSink hands the frame to a consumer that owns it.
func okEscapesIntoSink(p *pdm.Pool, s *pdm.Sink) error {
	f, err := p.Alloc()
	if err != nil {
		return err
	}
	return s.Consume(f)
}

// okStoredInStruct parks the frame in a struct that owns it.
type holder struct {
	f *pdm.Frame
}

func okStoredInStruct(p *pdm.Pool, h *holder) error {
	f, err := p.Alloc()
	if err != nil {
		return err
	}
	h.f = f
	return nil
}

// okAppendedToOwnedSlice escapes into a slice the caller manages.
func okAppendedToOwnedSlice(p *pdm.Pool, frames []*pdm.Frame) ([]*pdm.Frame, error) {
	f, err := p.Alloc()
	if err != nil {
		return frames, err
	}
	frames = append(frames, f)
	return frames, nil
}

// okAnnotated documents a handoff the analysis cannot see.
func okAnnotated(p *pdm.Pool, ch chan<- *pdm.Frame) error {
	f, err := p.Alloc() //emlint:owns: handed to the drain goroutine via ch
	if err != nil {
		return err
	}
	select {
	case ch <- f:
	default:
		f.Release()
	}
	return nil
}

// okLoopBodyRelease acquires and releases each iteration.
func okLoopBodyRelease(p *pdm.Pool, n int) error {
	for i := 0; i < n; i++ {
		f, err := p.Alloc()
		if err != nil {
			return err
		}
		if err := pdm.Process(f.Buf); err != nil {
			f.Release()
			return err
		}
		f.Release()
	}
	return nil
}

// leakBreakBeforeRelease leaks when the loop breaks before the release.
func leakBreakBeforeRelease(p *pdm.Pool, n int) error {
	for i := 0; i < n; i++ {
		f, err := p.Alloc() // want `pool frame "f" \(from Alloc\) is not released`
		if err != nil {
			return err
		}
		if i == n-1 {
			break // leak: f held past the loop
		}
		f.Release()
	}
	return nil
}

// okSwitchAllPaths releases in every switch arm.
func okSwitchAllPaths(p *pdm.Pool, mode int) error {
	f, err := p.Alloc()
	if err != nil {
		return err
	}
	switch mode {
	case 0:
		f.Release()
	case 1:
		defer f.Release()
	default:
		f.Release()
	}
	return nil
}

// leakMissedSwitchArm forgets one arm (caught because switch joins merge).
func leakMissedSwitchArm(p *pdm.Pool, mode int) error {
	f, err := p.Alloc() // want `pool frame "f" \(from Alloc\) is not released`
	if err != nil {
		return err
	}
	switch mode {
	case 0:
		f.Release()
	case 1:
		// leak: falls out of the switch still holding f
	}
	return nil
}

// okAdmissionShedReleases is the admission-queue discipline: a queued
// request holding reservations that gets shed on overload returns every
// frame it held before surfacing the typed error — a shed that kept its
// frames would convert backpressure into a permanent budget leak.
func okAdmissionShedReleases(p *pdm.Pool, tries int) error {
	frames, err := p.AllocN(2)
	if err != nil {
		return err
	}
	for i := 0; i < tries; i++ {
		if err := pdm.Process(frames[0].Buf); err == nil {
			pdm.ReleaseAll(frames)
			return nil
		}
	}
	pdm.ReleaseAll(frames) // shed: the queued reservations come back
	return pdm.ErrNoFrames
}

// leakAdmissionShed sheds without releasing the queued reservations.
func leakAdmissionShed(p *pdm.Pool, tries int) error {
	frames, err := p.AllocN(2) // want `pool frame "frames" \(from AllocN\) is not released`
	if err != nil {
		return err
	}
	for i := 0; i < tries; i++ {
		if err := pdm.Process(frames[0].Buf); err == nil {
			pdm.ReleaseAll(frames)
			return nil
		}
	}
	return pdm.ErrNoFrames // leak: shed while still holding the frames
}

// okGoroutineHandoff escapes into a goroutine that owns it.
func okGoroutineHandoff(p *pdm.Pool) error {
	f, err := p.Alloc()
	if err != nil {
		return err
	}
	go func() {
		defer f.Release()
		_ = pdm.Process(f.Buf)
	}()
	return nil
}
