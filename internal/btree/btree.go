// Package btree implements an external-memory B+-tree, the survey's
// canonical online search structure: Θ(log_B N) I/Os per point operation,
// Θ(log_B N + Z/B) per range query, and Θ(Sort(N)) for bottom-up bulk
// loading from a sorted stream.
//
// Keys and values are uint64; the key space is treated as a map (Insert
// overwrites). Nodes occupy exactly one block. Blocks move through a small
// pinning cache so that repeated root/branch accesses hit memory, exactly as
// a database buffer manager would serve them.
//
// BulkLoad's input can be striped over the disks and driven by a
// forecasting prefetch reader (see BulkLoadOptions): the sorted run is
// consumed strictly in order, so its next block group stays in flight while
// leaves are packed and nodes written back, at counted I/Os identical to
// the synchronous reader's.
package btree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"em/internal/cache"
	"em/internal/index"
	"em/internal/pdm"
)

// ErrBlockTooSmall reports a block size too small to host a B-tree node.
var ErrBlockTooSmall = errors.New("btree: block too small for a node")

// Node layout (little-endian):
//
//	off 0  uint16  flags (bit 0 set = leaf)
//	off 2  uint16  count
//	off 4  uint32  reserved
//	off 8  int64   next-leaf address (leaves) / unused (internal)
//	off 16 payload:
//	  leaf:     count × (key uint64, val uint64) pairs, 16 bytes each
//	  internal: keys at 16+8i (maxKeys slots), children at keyEnd+8j
//	            (maxKeys+1 slots)
const (
	offFlags = 0
	offCount = 2
	offNext  = 8
	offData  = 16

	flagLeaf = 1
)

// Tree is an external B+-tree over (uint64 key → uint64 value).
type Tree struct {
	vol     *pdm.Volume
	pool    *pdm.Pool // the pool the tree was created on: serves Scan and NewSession
	cache   *cache.Cache
	root    int64
	height  int // 1 = root is a leaf
	n       int64
	leafCap int
	keyCap  int // max keys in an internal node
	width   int // default scan/batch striping, usually the disk count

	// Admission control over the serving entry points; nil means off
	// (starvation surfaces immediately as pdm.ErrNoFrames).
	gate       *index.Gate
	admitQueue int
	admitWait  time.Duration
}

// Options normalizes tree construction onto the option-struct convention
// BulkLoadOptions and store.Config already follow, so the sharded facades
// don't invent a third one. The zero value is a served tree at the
// defaults.
type Options struct {
	// CacheFrames sizes the tree's buffer manager. Zero means 8; values
	// below 3 (a split pins parent, child, and sibling at once) are an
	// error.
	CacheFrames int
	// Width is the default striping of Scan and NewSession — the leaf
	// reads kept in flight. Zero picks the volume's disk count.
	Width int
	// AdmitQueue and AdmitWait enable admission control on the serving
	// entry points (GetBatch, Scan, NewSession): a request that finds the
	// pool starved joins a bounded FIFO of at most AdmitQueue waiters and
	// retries as frames free up, for at most AdmitWait, before shedding
	// with an index.OverloadError (which wraps pdm.ErrNoFrames). Both
	// zero — the default — leaves admission off and starvation a hard
	// error; setting one picks the package default for the other.
	AdmitQueue int
	AdmitWait  time.Duration
}

// New creates an empty tree whose node blocks live on vol and whose working
// pages are served by a cache of cacheFrames pages drawn from pool.
func New(vol *pdm.Volume, pool *pdm.Pool, cacheFrames int) (*Tree, error) {
	// Splits pin a parent, a child, and the new sibling simultaneously, so
	// the buffer manager needs at least three frames. The positional form
	// takes cacheFrames literally — no zero default.
	if cacheFrames < 3 {
		return nil, fmt.Errorf("btree: cache needs >= 3 frames, got %d", cacheFrames)
	}
	return NewWith(vol, pool, &Options{CacheFrames: cacheFrames})
}

// NewWith is New driven by an Options struct.
func NewWith(vol *pdm.Volume, pool *pdm.Pool, opts *Options) (*Tree, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	if o.CacheFrames == 0 {
		o.CacheFrames = 8
	}
	if o.CacheFrames < 3 {
		return nil, fmt.Errorf("btree: cache needs >= 3 frames, got %d", o.CacheFrames)
	}
	if o.Width < 1 {
		o.Width = vol.Disks()
	}
	bb := vol.BlockBytes()
	// One spare slot per node absorbs the transient overflow between insert
	// and split, so capacities are one below what the block could hold.
	leafCap := (bb-offData)/16 - 1
	keyCap := (bb - offData - 24) / 16 // fits keyCap+1 keys and keyCap+2 children
	if leafCap < 2 || keyCap < 2 {
		return nil, fmt.Errorf("%w: %d bytes", ErrBlockTooSmall, bb)
	}
	c, err := cache.New(vol, pool, o.CacheFrames)
	if err != nil {
		return nil, err
	}
	t := &Tree{vol: vol, pool: pool, cache: c, leafCap: leafCap, keyCap: keyCap, height: 1, width: o.Width,
		gate: index.NewGate(pool, o.AdmitQueue, o.AdmitWait), admitQueue: o.AdmitQueue, admitWait: o.AdmitWait}
	root, err := t.newNode(true)
	if err != nil {
		return nil, err
	}
	t.root = root.Addr()
	c.Unpin(root)
	return t, nil
}

// Close flushes and releases the tree's cache.
func (t *Tree) Close() error { return t.cache.Close() }

// Rehome flushes the tree's buffer manager and replaces it with a fresh one
// drawing cacheFrames frames from pool. em.SortIndex builds trees against a
// reserved construction budget and rehomes them onto the caller's pool
// before returning, so a tree's steady-state frames are always charged
// where its future I/O is. The cache must have no pinned pages.
func (t *Tree) Rehome(pool *pdm.Pool, cacheFrames int) error {
	if cacheFrames < 3 {
		return fmt.Errorf("btree: cache needs >= 3 frames, got %d", cacheFrames)
	}
	// Close (flush) the old cache before creating the replacement, so a
	// flush failure leaves nothing half-constructed behind; the new cache
	// allocates its frames lazily, so creation cannot fail on a tight pool.
	if err := t.cache.Close(); err != nil {
		return err
	}
	c, err := cache.New(t.vol, pool, cacheFrames)
	if err != nil {
		return err
	}
	t.cache = c
	t.pool = pool
	// Admission waits on the pool the serving budget comes from, so the
	// gate follows the rehome.
	t.gate = index.NewGate(pool, t.admitQueue, t.admitWait)
	return nil
}

// Stats returns a snapshot of the underlying volume's I/O counters.
func (t *Tree) Stats() pdm.Stats { return t.vol.Stats().Snapshot() }

// Len returns the number of keys stored.
func (t *Tree) Len() int64 { return t.n }

// Height returns the number of levels (1 = the root is a leaf).
func (t *Tree) Height() int { return t.height }

// LeafCapacity returns the records per leaf (the model's B for this tree).
func (t *Tree) LeafCapacity() int { return t.leafCap }

// Fanout returns the maximum internal fanout.
func (t *Tree) Fanout() int { return t.keyCap + 1 }

// CacheStats exposes the buffer-manager counters.
func (t *Tree) CacheStats() cache.CacheStats { return t.cache.Stats() }

// --- node accessors -------------------------------------------------------
//
// The buf* functions operate on a raw block image, so a node can be built
// directly in a pool frame (the bulk loader's write-behind leaf path) as
// well as in a cache page; the page accessors delegate to them and add the
// dirty-bit bookkeeping the buffer manager needs.

func bufInitNode(b []byte, leaf bool) {
	clear(b)
	var flags uint16
	if leaf {
		flags = flagLeaf
	}
	binary.LittleEndian.PutUint16(b[offFlags:], flags)
	binary.LittleEndian.PutUint64(b[offNext:], ^uint64(0)) // -1: no sibling
}
func bufSetCount(b []byte, n int) { binary.LittleEndian.PutUint16(b[offCount:], uint16(n)) }
func bufSetNextLeaf(b []byte, a int64) {
	binary.LittleEndian.PutUint64(b[offNext:], uint64(a))
}
func bufSetLeafKV(b []byte, i int, k, v uint64) {
	binary.LittleEndian.PutUint64(b[offData+16*i:], k)
	binary.LittleEndian.PutUint64(b[offData+16*i+8:], v)
}

func bufCount(b []byte) int      { return int(binary.LittleEndian.Uint16(b[offCount:])) }
func bufNextLeaf(b []byte) int64 { return int64(binary.LittleEndian.Uint64(b[offNext:])) }
func bufLeafKey(b []byte, i int) uint64 {
	return binary.LittleEndian.Uint64(b[offData+16*i:])
}
func bufLeafVal(b []byte, i int) uint64 {
	return binary.LittleEndian.Uint64(b[offData+16*i+8:])
}

// bufSearchLeafSlot returns the index of the first leaf key >= k in a raw
// leaf image.
func bufSearchLeafSlot(b []byte, k uint64) int {
	lo, hi := 0, bufCount(b)
	for lo < hi {
		mid := (lo + hi) / 2
		if bufLeafKey(b, mid) < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func isLeaf(p *cache.Page) bool { return binary.LittleEndian.Uint16(p.Buf[offFlags:])&flagLeaf != 0 }
func count(p *cache.Page) int   { return bufCount(p.Buf) }
func setCount(p *cache.Page, n int) {
	bufSetCount(p.Buf, n)
	p.MarkDirty()
}
func nextLeaf(p *cache.Page) int64 { return bufNextLeaf(p.Buf) }
func setNextLeaf(p *cache.Page, a int64) {
	bufSetNextLeaf(p.Buf, a)
	p.MarkDirty()
}

func leafKey(p *cache.Page, i int) uint64 { return bufLeafKey(p.Buf, i) }
func leafVal(p *cache.Page, i int) uint64 { return bufLeafVal(p.Buf, i) }
func setLeafKV(p *cache.Page, i int, k, v uint64) {
	bufSetLeafKV(p.Buf, i, k, v)
	p.MarkDirty()
}

func (t *Tree) childBase() int { return offData + 8*(t.keyCap+1) }

func intKey(p *cache.Page, i int) uint64 {
	return binary.LittleEndian.Uint64(p.Buf[offData+8*i:])
}
func setIntKey(p *cache.Page, i int, k uint64) {
	binary.LittleEndian.PutUint64(p.Buf[offData+8*i:], k)
	p.MarkDirty()
}
func (t *Tree) child(p *cache.Page, i int) int64 {
	return int64(binary.LittleEndian.Uint64(p.Buf[t.childBase()+8*i:]))
}
func (t *Tree) setChild(p *cache.Page, i int, a int64) {
	binary.LittleEndian.PutUint64(p.Buf[t.childBase()+8*i:], uint64(a))
	p.MarkDirty()
}

// newNode allocates and pins a fresh zeroed node page. If the cache cannot
// admit the page (pool exhausted, every frame pinned), the just-allocated
// block is returned to the volume rather than stranded.
func (t *Tree) newNode(leaf bool) (*cache.Page, error) {
	addr := t.vol.Alloc(1)
	p, err := t.newNodeAt(addr, leaf)
	if err != nil {
		t.vol.Free(addr)
		return nil, err
	}
	return p, nil
}

// newNodeAt pins a fresh node page for a block address the caller already
// allocated (the bulk loader pre-allocates each leaf's successor so sibling
// pointers can be threaded forward). The caller keeps ownership of addr on
// error.
func (t *Tree) newNodeAt(addr int64, leaf bool) (*cache.Page, error) {
	p, err := t.cache.GetNew(addr)
	if err != nil {
		return nil, err
	}
	bufInitNode(p.Buf, leaf)
	p.MarkDirty()
	return p, nil
}

// searchLeafSlot returns the index of the first leaf key >= k.
func searchLeafSlot(p *cache.Page, k uint64) int { return bufSearchLeafSlot(p.Buf, k) }

// searchChildSlot returns the child index to descend into for key k: the
// number of separator keys <= k.
func searchChildSlot(p *cache.Page, k uint64) int {
	lo, hi := 0, count(p)
	for lo < hi {
		mid := (lo + hi) / 2
		if intKey(p, mid) <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns the value stored under key.
func (t *Tree) Get(key uint64) (uint64, bool, error) {
	return t.getWith(t.cache, key)
}

// getWith is Get through an explicit buffer manager, shared between the
// tree's own cache and read Sessions' private ones.
func (t *Tree) getWith(c *cache.Cache, key uint64) (uint64, bool, error) {
	addr := t.root
	for level := t.height; level > 1; level-- {
		p, err := c.Get(addr)
		if err != nil {
			return 0, false, err
		}
		addr = t.child(p, searchChildSlot(p, key))
		c.Unpin(p)
	}
	p, err := c.Get(addr)
	if err != nil {
		return 0, false, err
	}
	defer c.Unpin(p)
	i := searchLeafSlot(p, key)
	if i < count(p) && leafKey(p, i) == key {
		return leafVal(p, i), true, nil
	}
	return 0, false, nil
}

// Insert stores value under key, overwriting any previous value. It returns
// true if the key was new.
func (t *Tree) Insert(key, val uint64) (bool, error) {
	promoKey, promoAddr, added, err := t.insertAt(t.root, t.height, key, val)
	if err != nil {
		return false, err
	}
	if promoAddr >= 0 {
		// Root split: grow the tree by one level.
		newRoot, err := t.newNode(false)
		if err != nil {
			return false, err
		}
		setCount(newRoot, 1)
		setIntKey(newRoot, 0, promoKey)
		t.setChild(newRoot, 0, t.root)
		t.setChild(newRoot, 1, promoAddr)
		t.root = newRoot.Addr()
		t.height++
		t.cache.Unpin(newRoot)
	}
	if added {
		t.n++
	}
	return added, nil
}

// insertAt inserts into the subtree rooted at addr (at the given level,
// 1 = leaf). On split it returns the promoted separator key and the new
// right sibling's address; promoAddr is -1 when no split occurred.
//
// Only O(1) pages are pinned at any moment: the parent is unpinned during
// the recursive descent and re-pinned only if the child split. This keeps
// the tree usable with a three-frame buffer manager, at the cost of an
// occasional extra read when the parent was evicted mid-descent — exactly
// the trade a real buffer manager makes.
func (t *Tree) insertAt(addr int64, level int, key, val uint64) (promoKey uint64, promoAddr int64, added bool, err error) {
	p, err := t.cache.Get(addr)
	if err != nil {
		return 0, -1, false, err
	}

	if level == 1 {
		defer t.cache.Unpin(p)
		i := searchLeafSlot(p, key)
		n := count(p)
		if i < n && leafKey(p, i) == key {
			setLeafKV(p, i, key, val)
			return 0, -1, false, nil
		}
		// Shift right and insert; the layout reserves one spare slot for
		// this transient overflow.
		for j := n; j > i; j-- {
			setLeafKV(p, j, leafKey(p, j-1), leafVal(p, j-1))
		}
		setLeafKV(p, i, key, val)
		setCount(p, n+1)
		if n+1 <= t.leafCap {
			return 0, -1, true, nil
		}
		return t.splitLeaf(p)
	}

	slot := searchChildSlot(p, key)
	childAddr := t.child(p, slot)
	t.cache.Unpin(p)
	ck, ca, added, err := t.insertAt(childAddr, level-1, key, val)
	if err != nil {
		return 0, -1, false, err
	}
	if ca < 0 {
		return 0, -1, added, nil
	}
	// The child split: re-pin the parent and install the new separator.
	p, err = t.cache.Get(addr)
	if err != nil {
		return 0, -1, false, err
	}
	defer t.cache.Unpin(p)
	n := count(p)
	for j := n; j > slot; j-- {
		setIntKey(p, j, intKey(p, j-1))
		t.setChild(p, j+1, t.child(p, j))
	}
	setIntKey(p, slot, ck)
	t.setChild(p, slot+1, ca)
	setCount(p, n+1)
	if n+1 <= t.keyCap {
		return 0, -1, added, nil
	}
	pk, pa, _, err := t.splitInternal(p)
	return pk, pa, added, err
}

// splitLeaf moves the upper half of an over-full leaf into a new right
// sibling, returning the first right key as separator.
func (t *Tree) splitLeaf(p *cache.Page) (uint64, int64, bool, error) {
	n := count(p)
	right, err := t.newNode(true)
	if err != nil {
		return 0, -1, false, err
	}
	defer t.cache.Unpin(right)
	mid := n / 2
	for j := mid; j < n; j++ {
		setLeafKV(right, j-mid, leafKey(p, j), leafVal(p, j))
	}
	setCount(right, n-mid)
	setCount(p, mid)
	setNextLeaf(right, nextLeaf(p))
	setNextLeaf(p, right.Addr())
	return leafKey(right, 0), right.Addr(), true, nil
}

// splitInternal moves the upper half of an over-full internal node into a
// new right sibling, promoting the middle key.
func (t *Tree) splitInternal(p *cache.Page) (uint64, int64, bool, error) {
	n := count(p)
	right, err := t.newNode(false)
	if err != nil {
		return 0, -1, false, err
	}
	defer t.cache.Unpin(right)
	mid := n / 2
	promo := intKey(p, mid)
	for j := mid + 1; j < n; j++ {
		setIntKey(right, j-mid-1, intKey(p, j))
	}
	for j := mid + 1; j <= n; j++ {
		t.setChild(right, j-mid-1, t.child(p, j))
	}
	setCount(right, n-mid-1)
	setCount(p, mid)
	return promo, right.Addr(), true, nil
}

// Range calls fn for every (key, value) with lo <= key <= hi, in key order.
// It descends once and then follows leaf sibling links: Θ(log_B N + Z/B)
// I/Os for Z reported records.
func (t *Tree) Range(lo, hi uint64, fn func(k, v uint64) error) error {
	addr := t.root
	for level := t.height; level > 1; level-- {
		p, err := t.cache.Get(addr)
		if err != nil {
			return err
		}
		addr = t.child(p, searchChildSlot(p, lo))
		t.cache.Unpin(p)
	}
	for addr >= 0 {
		p, err := t.cache.Get(addr)
		if err != nil {
			return err
		}
		n := count(p)
		for i := searchLeafSlot(p, lo); i < n; i++ {
			k := leafKey(p, i)
			if k > hi {
				t.cache.Unpin(p)
				return nil
			}
			if err := fn(k, leafVal(p, i)); err != nil {
				t.cache.Unpin(p)
				return err
			}
		}
		next := nextLeaf(p)
		t.cache.Unpin(p)
		addr = next
	}
	return nil
}

// Min returns the smallest key and its value.
func (t *Tree) Min() (uint64, uint64, bool, error) {
	if t.n == 0 {
		return 0, 0, false, nil
	}
	addr := t.root
	for level := t.height; level > 1; level-- {
		p, err := t.cache.Get(addr)
		if err != nil {
			return 0, 0, false, err
		}
		addr = t.child(p, 0)
		t.cache.Unpin(p)
	}
	p, err := t.cache.Get(addr)
	if err != nil {
		return 0, 0, false, err
	}
	defer t.cache.Unpin(p)
	if count(p) == 0 {
		return 0, 0, false, nil
	}
	return leafKey(p, 0), leafVal(p, 0), true, nil
}

// Max returns the largest key and its value, Min's right-edge mirror: it
// descends the last child at every level and reads the rightmost leaf's
// last slot, Θ(log_B N) I/Os.
func (t *Tree) Max() (uint64, uint64, bool, error) {
	if t.n == 0 {
		return 0, 0, false, nil
	}
	addr := t.root
	for level := t.height; level > 1; level-- {
		p, err := t.cache.Get(addr)
		if err != nil {
			return 0, 0, false, err
		}
		addr = t.child(p, count(p))
		t.cache.Unpin(p)
	}
	p, err := t.cache.Get(addr)
	if err != nil {
		return 0, 0, false, err
	}
	defer t.cache.Unpin(p)
	n := count(p)
	if n == 0 {
		return 0, 0, false, nil
	}
	return leafKey(p, n-1), leafVal(p, n-1), true, nil
}
