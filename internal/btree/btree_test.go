package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"em/internal/pdm"
	"em/internal/record"
	"em/internal/stream"
)

func newEnv(t testing.TB) (*pdm.Volume, *pdm.Pool) {
	t.Helper()
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 128, MemBlocks: 32, Disks: 1})
	return vol, pdm.PoolFor(vol)
}

func newTree(t testing.TB) (*Tree, *pdm.Volume, *pdm.Pool) {
	t.Helper()
	vol, pool := newEnv(t)
	tr, err := New(vol, pool, 8)
	if err != nil {
		t.Fatal(err)
	}
	return tr, vol, pool
}

func TestBlockTooSmall(t *testing.T) {
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 48, MemBlocks: 8, Disks: 1})
	if _, err := New(vol, pdm.PoolFor(vol), 4); err == nil {
		t.Fatal("48-byte blocks should be rejected")
	}
}

func TestEmptyTree(t *testing.T) {
	tr, _, _ := newTree(t)
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatal("fresh tree should be empty with height 1")
	}
	if _, ok, err := tr.Get(5); err != nil || ok {
		t.Fatalf("get on empty: ok=%v err=%v", ok, err)
	}
	if _, _, ok, err := tr.Min(); err != nil || ok {
		t.Fatalf("min on empty: ok=%v err=%v", ok, err)
	}
	if removed, err := tr.Delete(5); err != nil || removed {
		t.Fatalf("delete on empty: %v %v", removed, err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertGetSequential(t *testing.T) {
	tr, _, _ := newTree(t)
	n := uint64(500)
	for k := uint64(0); k < n; k++ {
		added, err := tr.Insert(k, k*3)
		if err != nil {
			t.Fatal(err)
		}
		if !added {
			t.Fatalf("key %d reported duplicate", k)
		}
	}
	if tr.Len() != int64(n) {
		t.Fatalf("len = %d", tr.Len())
	}
	if tr.Height() < 3 {
		t.Fatalf("height = %d, expected a multi-level tree", tr.Height())
	}
	for k := uint64(0); k < n; k++ {
		v, ok, err := tr.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || v != k*3 {
			t.Fatalf("get(%d) = %d,%v", k, v, ok)
		}
	}
	if _, ok, _ := tr.Get(n + 100); ok {
		t.Fatal("absent key found")
	}
}

func TestInsertOverwrite(t *testing.T) {
	tr, _, _ := newTree(t)
	if _, err := tr.Insert(7, 1); err != nil {
		t.Fatal(err)
	}
	added, err := tr.Insert(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if added {
		t.Fatal("overwrite reported as new key")
	}
	if tr.Len() != 1 {
		t.Fatalf("len = %d", tr.Len())
	}
	v, ok, _ := tr.Get(7)
	if !ok || v != 2 {
		t.Fatalf("get = %d,%v", v, ok)
	}
}

func TestInsertRandomOrder(t *testing.T) {
	tr, _, _ := newTree(t)
	rng := rand.New(rand.NewSource(1))
	keys := rng.Perm(1000)
	for _, k := range keys {
		if _, err := tr.Insert(uint64(k), uint64(k)+1); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys {
		v, ok, err := tr.Get(uint64(k))
		if err != nil || !ok || v != uint64(k)+1 {
			t.Fatalf("get(%d) = %d,%v,%v", k, v, ok, err)
		}
	}
}

func TestRange(t *testing.T) {
	tr, _, _ := newTree(t)
	for k := uint64(0); k < 300; k += 3 { // keys 0,3,6,...,297
		if _, err := tr.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	err := tr.Range(10, 50, func(k, v uint64) error {
		got = append(got, k)
		if k != v {
			t.Fatal("value mismatch")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var want []uint64
	for k := uint64(12); k <= 48; k += 3 {
		want = append(want, k)
	}
	if len(got) != len(want) {
		t.Fatalf("range returned %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Empty range.
	count := 0
	tr.Range(1000, 2000, func(k, v uint64) error { count++; return nil })
	if count != 0 {
		t.Fatal("empty range reported records")
	}
}

func TestMin(t *testing.T) {
	tr, _, _ := newTree(t)
	for _, k := range []uint64{50, 20, 90, 10, 70} {
		tr.Insert(k, k*2)
	}
	k, v, ok, err := tr.Min()
	if err != nil || !ok || k != 10 || v != 20 {
		t.Fatalf("min = %d,%d,%v,%v", k, v, ok, err)
	}
}

func TestDeleteAll(t *testing.T) {
	tr, _, _ := newTree(t)
	rng := rand.New(rand.NewSource(2))
	keys := rng.Perm(800)
	for _, k := range keys {
		tr.Insert(uint64(k), uint64(k))
	}
	maxHeight := tr.Height()
	del := rng.Perm(800)
	for i, k := range del {
		removed, err := tr.Delete(uint64(k))
		if err != nil {
			t.Fatalf("delete %d: %v", k, err)
		}
		if !removed {
			t.Fatalf("key %d missing at delete", k)
		}
		if tr.Len() != int64(800-i-1) {
			t.Fatalf("len = %d after %d deletes", tr.Len(), i+1)
		}
		// Spot-check an undeleted key stays findable.
		if i+1 < 800 {
			probe := uint64(del[800-1])
			if i < 799 {
				v, ok, err := tr.Get(probe)
				if err != nil || !ok || v != probe {
					t.Fatalf("probe %d lost after deleting %d", probe, k)
				}
			}
		}
	}
	if tr.Len() != 0 {
		t.Fatal("tree not empty")
	}
	if tr.Height() != 1 {
		t.Fatalf("emptied tree height = %d (was %d), should collapse to 1", tr.Height(), maxHeight)
	}
	if removed, _ := tr.Delete(5); removed {
		t.Fatal("delete from empty tree succeeded")
	}
}

func TestDeleteInterleaved(t *testing.T) {
	tr, _, _ := newTree(t)
	live := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		k := uint64(rng.Intn(400))
		if rng.Intn(2) == 0 {
			tr.Insert(k, k+1)
			live[k] = k + 1
		} else {
			removed, err := tr.Delete(k)
			if err != nil {
				t.Fatal(err)
			}
			_, had := live[k]
			if removed != had {
				t.Fatalf("delete(%d) = %v, want %v", k, removed, had)
			}
			delete(live, k)
		}
	}
	if tr.Len() != int64(len(live)) {
		t.Fatalf("len = %d, want %d", tr.Len(), len(live))
	}
	for k, v := range live {
		got, ok, err := tr.Get(k)
		if err != nil || !ok || got != v {
			t.Fatalf("get(%d) = %d,%v,%v want %d", k, got, ok, err, v)
		}
	}
}

func TestSearchIOLogarithmic(t *testing.T) {
	// With a tiny cache, a point lookup should cost about height block
	// reads — the survey's Θ(log_B N) search bound.
	vol, pool := newEnv(t)
	tr, err := New(vol, pool, 3) // minimal cache: cannot retain the path
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 2000; k++ {
		if _, err := tr.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	h := tr.Height()
	vol.Stats().Reset()
	const probes = 50
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < probes; i++ {
		k := uint64(rng.Intn(2000))
		if _, ok, err := tr.Get(k); err != nil || !ok {
			t.Fatal("probe failed")
		}
	}
	perProbe := float64(vol.Stats().Reads) / probes
	if perProbe > float64(h)+1 {
		t.Fatalf("search cost %.1f reads per probe, height %d", perProbe, h)
	}
}

func TestBulkLoad(t *testing.T) {
	vol, pool := newEnv(t)
	n := 1000
	recs := make([]record.Record, n)
	for i := range recs {
		recs[i] = record.Record{Key: uint64(i * 2), Val: uint64(i)}
	}
	f, err := stream.FromSlice(vol, pool, record.RecordCodec{}, recs)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := BulkLoad(vol, pool, 8, f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != int64(n) {
		t.Fatalf("len = %d", tr.Len())
	}
	for i := 0; i < n; i++ {
		v, ok, err := tr.Get(uint64(i * 2))
		if err != nil || !ok || v != uint64(i) {
			t.Fatalf("get(%d) = %d,%v,%v", i*2, v, ok, err)
		}
	}
	if _, ok, _ := tr.Get(1); ok {
		t.Fatal("absent odd key found")
	}
	// Full range scan returns everything in order.
	var keys []uint64
	tr.Range(0, ^uint64(0), func(k, v uint64) error {
		keys = append(keys, k)
		return nil
	})
	if len(keys) != n {
		t.Fatalf("scan returned %d keys", len(keys))
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatal("scan out of order")
	}
}

func TestBulkLoadEmptyAndTiny(t *testing.T) {
	vol, pool := newEnv(t)
	empty := stream.NewFile[record.Record](vol, record.RecordCodec{})
	tr, err := BulkLoad(vol, pool, 8, empty, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatal("empty bulk load wrong shape")
	}
	one, err := stream.FromSlice(vol, pool, record.RecordCodec{}, []record.Record{{Key: 9, Val: 1}})
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := BulkLoad(vol, pool, 8, one, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, ok, _ := tr2.Get(9)
	if !ok || v != 1 {
		t.Fatal("single-record bulk load broken")
	}
}

func TestBulkLoadRejectsUnsorted(t *testing.T) {
	vol, pool := newEnv(t)
	f, err := stream.FromSlice(vol, pool, record.RecordCodec{}, []record.Record{
		{Key: 5}, {Key: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BulkLoad(vol, pool, 8, f, nil); err == nil {
		t.Fatal("unsorted input accepted")
	}
	dup, err := stream.FromSlice(vol, pool, record.RecordCodec{}, []record.Record{
		{Key: 5}, {Key: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BulkLoad(vol, pool, 8, dup, nil); err == nil {
		t.Fatal("duplicate keys accepted")
	}
}

func TestBulkLoadInsertAfter(t *testing.T) {
	vol, pool := newEnv(t)
	recs := make([]record.Record, 200)
	for i := range recs {
		recs[i] = record.Record{Key: uint64(i * 10), Val: uint64(i)}
	}
	f, _ := stream.FromSlice(vol, pool, record.RecordCodec{}, recs)
	tr, err := BulkLoad(vol, pool, 8, f, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Mixed inserts and deletes after bulk load must keep working.
	for i := 0; i < 200; i++ {
		if _, err := tr.Insert(uint64(i*10+5), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i += 2 {
		if removed, err := tr.Delete(uint64(i * 10)); err != nil || !removed {
			t.Fatalf("delete(%d): %v %v", i*10, removed, err)
		}
	}
	if tr.Len() != 300 {
		t.Fatalf("len = %d, want 300", tr.Len())
	}
	for i := 0; i < 200; i++ {
		if v, ok, _ := tr.Get(uint64(i*10 + 5)); !ok || v != uint64(i) {
			t.Fatalf("inserted key %d lost", i*10+5)
		}
	}
}

func TestBulkLoadIOCheaperThanInserts(t *testing.T) {
	vol, pool := newEnv(t)
	n := 2000
	recs := make([]record.Record, n)
	for i := range recs {
		recs[i] = record.Record{Key: uint64(i), Val: uint64(i)}
	}
	f, _ := stream.FromSlice(vol, pool, record.RecordCodec{}, recs)
	vol.Stats().Reset()
	if _, err := BulkLoad(vol, pool, 8, f, nil); err != nil {
		t.Fatal(err)
	}
	bulkIO := vol.Stats().Total()
	vol.Stats().Reset()
	tr, _ := New(vol, pool, 8)
	rng := rand.New(rand.NewSource(6))
	for _, i := range rng.Perm(n) { // random order: the realistic case
		tr.Insert(recs[i].Key, recs[i].Val)
	}
	tr.Close()
	insertIO := vol.Stats().Total()
	if bulkIO*2 >= insertIO {
		t.Fatalf("bulk load (%d I/Os) should be far cheaper than inserts (%d I/Os)", bulkIO, insertIO)
	}
}

// Property: the tree agrees with a map reference under arbitrary
// insert/delete/get interleavings.
func TestQuickTreeMatchesMap(t *testing.T) {
	type op struct {
		Key uint64
		Del bool
	}
	f := func(ops []op) bool {
		vol := pdm.MustVolume(pdm.Config{BlockBytes: 128, MemBlocks: 32, Disks: 1})
		pool := pdm.PoolFor(vol)
		tr, err := New(vol, pool, 8)
		if err != nil {
			return false
		}
		ref := map[uint64]uint64{}
		for i, o := range ops {
			k := o.Key % 64
			if o.Del {
				removed, err := tr.Delete(k)
				if err != nil {
					return false
				}
				_, had := ref[k]
				if removed != had {
					return false
				}
				delete(ref, k)
			} else {
				v := uint64(i)
				if _, err := tr.Insert(k, v); err != nil {
					return false
				}
				ref[k] = v
			}
		}
		if tr.Len() != int64(len(ref)) {
			return false
		}
		for k, v := range ref {
			got, ok, err := tr.Get(k)
			if err != nil || !ok || got != v {
				return false
			}
		}
		// Scan order must be sorted and complete.
		var prev uint64
		cnt := 0
		err = tr.Range(0, ^uint64(0), func(k, v uint64) error {
			if cnt > 0 && k <= prev {
				return ErrUnsortedInput
			}
			prev = k
			cnt++
			return nil
		})
		return err == nil && cnt == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
