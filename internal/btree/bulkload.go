package btree

import (
	"errors"

	"em/internal/cache"
	"em/internal/pdm"
	"em/internal/record"
	"em/internal/stream"
)

// ErrUnsortedInput reports a bulk-load stream that is not strictly
// increasing by key.
var ErrUnsortedInput = errors.New("btree: bulk load input not strictly sorted by key")

// BulkLoadOptions tunes the bulk loader's input stream. The node writes
// themselves go through the tree's buffer manager either way.
type BulkLoadOptions struct {
	// Width is the striping width of the input reader; set it to the
	// volume's disk count D to fetch D blocks per parallel batch. Zero
	// means 1.
	Width int
	// Async drives the input through a forecasting PrefetchReader: the next
	// block group of the sorted run stays in flight while the loader packs
	// leaves and writes nodes back — the survey's read-ahead applied to
	// index construction. The reader then holds 2×Width pool frames instead
	// of Width; counted I/Os are identical to the synchronous reader's at
	// equal width.
	Async bool
}

func (o *BulkLoadOptions) width() int {
	if o == nil || o.Width < 1 {
		return 1
	}
	return o.Width
}

// openReader opens the sorted input according to opts: striped when
// synchronous, forecasting when async.
func (o *BulkLoadOptions) openReader(sorted *stream.File[record.Record], pool *pdm.Pool) (stream.Source[record.Record], error) {
	return stream.OpenSource(sorted, pool, o.width(), o != nil && o.Async)
}

// BulkLoad builds a tree bottom-up from a stream of records sorted strictly
// by key. Leaves are filled left to right at fill-factor occupancy, then
// each internal level is built over the previous one; the whole construction
// costs Θ(N/B) I/Os on top of the sort that produced the input — the
// survey's Sort(N) index-construction bound, versus Θ(N·log_B N) for
// repeated insertion (experiment T9). A nil opts reads the input with a
// synchronous width-1 reader.
//
// On any error — unsorted input, a failed read, an exhausted pool — every
// node allocated by the load is freed, every cache frame is returned, and no
// page stays pinned, so the caller's pool is exactly as it was.
func BulkLoad(vol *pdm.Volume, pool *pdm.Pool, cacheFrames int, sorted *stream.File[record.Record], opts *BulkLoadOptions) (*Tree, error) {
	t, err := New(vol, pool, cacheFrames)
	if err != nil {
		return nil, err
	}
	// Failure cleanup: unpin whatever node was mid-construction, then drop
	// and free every block the load (and New's placeholder root) allocated.
	// That leaves the cache empty, so Close returns its frames without
	// flushing garbage nodes to the volume.
	done := false
	var pinned *cache.Page
	nodes := []int64{t.root}
	defer func() {
		if done {
			return
		}
		if pinned != nil {
			t.cache.Unpin(pinned)
		}
		for _, a := range nodes {
			t.cache.Drop(a)
			t.vol.Free(a)
		}
		t.cache.Close()
	}()
	newNode := func(leaf bool) (*cache.Page, error) {
		p, err := t.newNode(leaf)
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, p.Addr())
		return p, nil
	}

	r, err := opts.openReader(sorted, pool)
	if err != nil {
		return nil, err
	}
	defer r.Close()

	type levelEntry struct {
		firstKey uint64
		addr     int64
	}
	var leaves []levelEntry
	var prevLeaf int64 = -1

	// Build the leaf level.
	var prevKey uint64
	havePrev := false
	cur, err := newNode(true)
	if err != nil {
		return nil, err
	}
	pinned = cur
	curCount := 0
	flushLeaf := func() error {
		if curCount == 0 {
			return nil
		}
		setCount(cur, curCount)
		leaves = append(leaves, levelEntry{firstKey: leafKey(cur, 0), addr: cur.Addr()})
		if prevLeaf >= 0 {
			prev, err := t.cache.Get(prevLeaf)
			if err != nil {
				return err
			}
			setNextLeaf(prev, cur.Addr())
			t.cache.Unpin(prev)
		}
		prevLeaf = cur.Addr()
		t.cache.Unpin(cur)
		pinned = nil
		return nil
	}
	for {
		rec, ok, err := r.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if havePrev && rec.Key <= prevKey {
			return nil, ErrUnsortedInput
		}
		prevKey, havePrev = rec.Key, true
		if curCount == t.leafCap {
			if err := flushLeaf(); err != nil {
				return nil, err
			}
			cur, err = newNode(true)
			if err != nil {
				return nil, err
			}
			pinned = cur
			curCount = 0
		}
		setLeafKV(cur, curCount, rec.Key, rec.Val)
		curCount++
		t.n++
	}
	if curCount > 0 {
		if err := flushLeaf(); err != nil {
			return nil, err
		}
	} else {
		// curCount can only be zero here when no record was ever placed: a
		// leaf is allocated only immediately before a record lands in it, so
		// the fresh leaf is the tree's sole node — keep it as the empty root.
		leaves = append(leaves, levelEntry{firstKey: 0, addr: cur.Addr()})
		t.cache.Unpin(cur)
		pinned = nil
	}

	// Build internal levels until a single node remains.
	level := leaves
	height := 1
	for len(level) > 1 {
		var next []levelEntry
		i := 0
		for i < len(level) {
			hi := i + t.keyCap + 1 // fanout children per node
			if hi > len(level) {
				hi = len(level)
			}
			node, err := newNode(false)
			if err != nil {
				return nil, err
			}
			pinned = node
			group := level[i:hi]
			for j, e := range group {
				t.setChild(node, j, e.addr)
				if j > 0 {
					setIntKey(node, j-1, e.firstKey)
				}
			}
			setCount(node, len(group)-1)
			next = append(next, levelEntry{firstKey: group[0].firstKey, addr: node.Addr()})
			t.cache.Unpin(node)
			pinned = nil
			i = hi
		}
		level = next
		height++
	}
	// Release the placeholder root created by New.
	if t.root != level[0].addr {
		t.cache.Drop(t.root)
		t.vol.Free(t.root)
	}
	t.root = level[0].addr
	t.height = height
	done = true
	return t, nil
}
