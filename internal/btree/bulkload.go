package btree

import (
	"errors"

	"em/internal/pdm"
	"em/internal/record"
	"em/internal/stream"
)

// ErrUnsortedInput reports a bulk-load stream that is not strictly
// increasing by key.
var ErrUnsortedInput = errors.New("btree: bulk load input not strictly sorted by key")

// BulkLoad builds a tree bottom-up from a stream of records sorted strictly
// by key. Leaves are filled left to right at fill-factor occupancy, then
// each internal level is built over the previous one; the whole construction
// costs Θ(N/B) I/Os on top of the sort that produced the input — the
// survey's Sort(N) index-construction bound, versus Θ(N·log_B N) for
// repeated insertion (experiment T9).
func BulkLoad(vol *pdm.Volume, pool *pdm.Pool, cacheFrames int, sorted *stream.File[record.Record]) (*Tree, error) {
	t, err := New(vol, pool, cacheFrames)
	if err != nil {
		return nil, err
	}
	r, err := stream.NewReader(sorted, pool)
	if err != nil {
		return nil, err
	}
	defer r.Close()

	type levelEntry struct {
		firstKey uint64
		addr     int64
	}
	var leaves []levelEntry
	var prevLeaf int64 = -1

	// Build the leaf level.
	var prevKey uint64
	havePrev := false
	cur, err := t.newNode(true)
	if err != nil {
		return nil, err
	}
	curCount := 0
	flushLeaf := func() error {
		if curCount == 0 {
			return nil
		}
		setCount(cur, curCount)
		leaves = append(leaves, levelEntry{firstKey: leafKey(cur, 0), addr: cur.Addr()})
		if prevLeaf >= 0 {
			prev, err := t.cache.Get(prevLeaf)
			if err != nil {
				return err
			}
			setNextLeaf(prev, cur.Addr())
			t.cache.Unpin(prev)
		}
		prevLeaf = cur.Addr()
		t.cache.Unpin(cur)
		return nil
	}
	for {
		rec, ok, err := r.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if havePrev && rec.Key <= prevKey {
			return nil, ErrUnsortedInput
		}
		prevKey, havePrev = rec.Key, true
		if curCount == t.leafCap {
			if err := flushLeaf(); err != nil {
				return nil, err
			}
			cur, err = t.newNode(true)
			if err != nil {
				return nil, err
			}
			curCount = 0
		}
		setLeafKV(cur, curCount, rec.Key, rec.Val)
		curCount++
		t.n++
	}
	if curCount > 0 {
		if err := flushLeaf(); err != nil {
			return nil, err
		}
	} else if len(leaves) == 0 {
		// Empty input: keep the fresh empty leaf as root.
		leaves = append(leaves, levelEntry{firstKey: 0, addr: cur.Addr()})
		t.cache.Unpin(cur)
	} else {
		t.cache.Unpin(cur)
		t.vol.Free(cur.Addr())
	}

	// Build internal levels until a single node remains.
	level := leaves
	height := 1
	for len(level) > 1 {
		var next []levelEntry
		i := 0
		for i < len(level) {
			hi := i + t.keyCap + 1 // fanout children per node
			if hi > len(level) {
				hi = len(level)
			}
			node, err := t.newNode(false)
			if err != nil {
				return nil, err
			}
			group := level[i:hi]
			for j, e := range group {
				t.setChild(node, j, e.addr)
				if j > 0 {
					setIntKey(node, j-1, e.firstKey)
				}
			}
			setCount(node, len(group)-1)
			next = append(next, levelEntry{firstKey: group[0].firstKey, addr: node.Addr()})
			t.cache.Unpin(node)
			i = hi
		}
		level = next
		height++
	}
	// Release the placeholder root created by New.
	if t.root != level[0].addr {
		t.cache.Drop(t.root)
		t.vol.Free(t.root)
	}
	t.root = level[0].addr
	t.height = height
	return t, nil
}
