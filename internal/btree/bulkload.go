package btree

import (
	"errors"

	"em/internal/cache"
	"em/internal/pdm"
	"em/internal/record"
	"em/internal/stream"
)

// ErrUnsortedInput reports a bulk-load stream that is not strictly
// increasing by key.
var ErrUnsortedInput = errors.New("btree: bulk load input not strictly sorted by key")

// BulkLoadOptions tunes the bulk loader's input and leaf-output streams.
type BulkLoadOptions struct {
	// Width is the striping width of the input reader and of the
	// write-behind leaf batches; set it to the volume's disk count D to move
	// D blocks per parallel batch. Zero means 1.
	Width int
	// Async drives a file input through a forecasting PrefetchReader: the
	// next block group of the sorted run stays in flight while the loader
	// packs leaves and writes nodes back — the survey's read-ahead applied
	// to index construction. The reader then holds 2×Width pool frames
	// instead of Width; counted I/Os are identical to the synchronous
	// reader's at equal width. It has no effect on BulkLoadFrom, whose
	// caller owns the input stream.
	Async bool
	// WriteBehind routes the leaf level around the pinning cache: leaves
	// are written exactly once and never revisited, so they are packed
	// directly in pool frames and flushed Width at a time through
	// Volume.BatchWriteAsync while the next group is packed. This costs
	// 2×Width extra pool frames (the double buffer) but gives node
	// write-back the same D-disk parallelism the input reads already have;
	// counted read and write I/Os are identical to the cache path's.
	// Internal levels — at most N/B nodes — stay on the cache path.
	WriteBehind bool
}

func (o *BulkLoadOptions) width() int {
	if o == nil || o.Width < 1 {
		return 1
	}
	return o.Width
}

func (o *BulkLoadOptions) writeBehind() bool { return o != nil && o.WriteBehind }

// openReader opens the sorted input according to opts: striped when
// synchronous, forecasting when async.
func (o *BulkLoadOptions) openReader(sorted *stream.File[record.Record], pool *pdm.Pool) (stream.Source[record.Record], error) {
	return stream.OpenSource(sorted, pool, o.width(), o != nil && o.Async)
}

// BulkLoad builds a tree bottom-up from a file of records sorted strictly by
// key, opening the input stream according to opts (see BulkLoadFrom for the
// construction itself). A nil opts reads the input with a synchronous
// width-1 reader and retires leaves through the cache.
func BulkLoad(vol *pdm.Volume, pool *pdm.Pool, cacheFrames int, sorted *stream.File[record.Record], opts *BulkLoadOptions) (*Tree, error) {
	r, err := opts.openReader(sorted, pool)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return BulkLoadFrom(vol, pool, cacheFrames, r, opts)
}

// BulkLoadFrom builds a tree bottom-up from any stream of records sorted
// strictly by key — a file reader, or a pipeline source fed by a sort still
// in progress. Leaves are filled left to right at fill-factor occupancy,
// then each internal level is built over the previous one; the whole
// construction costs Θ(N/B) I/Os on top of the sort that produced the input
// — the survey's Sort(N) index-construction bound, versus Θ(N·log_B N) for
// repeated insertion (experiment T9).
//
// Each leaf's successor block is allocated the moment the leaf overflows,
// so the sibling pointer is threaded forward into the leaf before it is
// sealed — no leaf is ever re-fetched to patch its pointer. With
// opts.WriteBehind the sealed leaves bypass the cache entirely and stream
// to the disks in Width-block batches behind the loader.
//
// On any error — unsorted input, a failed read or write, an exhausted pool
// — every node allocated by the load is freed, every cache and batch frame
// is returned, any in-flight leaf batch is joined (never abandoned
// mid-write), and no page stays pinned, so the caller's pool is exactly as
// it was. BulkLoadFrom does not close src.
func BulkLoadFrom(vol *pdm.Volume, pool *pdm.Pool, cacheFrames int, src stream.Source[record.Record], opts *BulkLoadOptions) (*Tree, error) {
	t, err := New(vol, pool, cacheFrames)
	if err != nil {
		return nil, err
	}
	// New's placeholder root would cost one spurious block write whenever
	// the cache evicted it mid-load; drop and free it now so every write the
	// load performs is a node of the final tree, on both leaf paths.
	t.cache.Drop(t.root)
	t.vol.Free(t.root)

	// Failure cleanup: join any in-flight leaf batch, unpin whatever node
	// was mid-construction, then drop and free every block the load
	// allocated. That leaves the cache empty, so Close returns its frames
	// without flushing garbage nodes to the volume.
	done := false
	var pinned *cache.Page
	var nodes []int64
	var wb *leafBatch
	defer func() {
		if done {
			return
		}
		if wb != nil {
			wb.abort()
		}
		if pinned != nil {
			t.cache.Unpin(pinned)
		}
		for _, a := range nodes {
			t.cache.Drop(a)
			t.vol.Free(a)
		}
		t.cache.Close()
	}()
	alloc := func() int64 {
		a := t.vol.Alloc(1)
		nodes = append(nodes, a)
		return a
	}

	if opts.writeBehind() {
		wb, err = newLeafBatch(vol, pool, opts.width())
		if err != nil {
			return nil, err
		}
	}
	// startLeaf, putLeaf and finishLeaf abstract over the two leaf paths:
	// the pinning cache (leaves retire through the buffer manager, written
	// on eviction or Close) and the write-behind batch.
	var cur *cache.Page
	startLeaf := func(addr int64) error {
		if wb != nil {
			wb.start(addr)
			return nil
		}
		p, err := t.newNodeAt(addr, true)
		if err != nil {
			return err
		}
		cur, pinned = p, p
		return nil
	}
	putLeaf := func(i int, k, v uint64) {
		if wb != nil {
			wb.put(i, k, v)
			return
		}
		setLeafKV(cur, i, k, v)
	}
	finishLeaf := func(count int, next int64) error {
		if wb != nil {
			return wb.finish(count, next)
		}
		setCount(cur, count)
		if next >= 0 {
			setNextLeaf(cur, next)
		}
		t.cache.Unpin(cur)
		cur, pinned = nil, nil
		return nil
	}

	type levelEntry struct {
		firstKey uint64
		addr     int64
	}
	var leaves []levelEntry

	// Build the leaf level.
	var prevKey, firstKey uint64
	havePrev := false
	curAddr := alloc()
	if err := startLeaf(curAddr); err != nil {
		return nil, err
	}
	curCount := 0
	for {
		rec, ok, err := src.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if havePrev && rec.Key <= prevKey {
			return nil, ErrUnsortedInput
		}
		prevKey, havePrev = rec.Key, true
		if curCount == t.leafCap {
			next := alloc()
			leaves = append(leaves, levelEntry{firstKey: firstKey, addr: curAddr})
			if err := finishLeaf(curCount, next); err != nil {
				return nil, err
			}
			curAddr = next
			if err := startLeaf(curAddr); err != nil {
				return nil, err
			}
			curCount = 0
		}
		if curCount == 0 {
			firstKey = rec.Key
		}
		putLeaf(curCount, rec.Key, rec.Val)
		curCount++
		t.n++
	}
	// The final leaf keeps next = -1 from its initialisation; an empty
	// input leaves the sole allocated leaf as the empty root.
	leaves = append(leaves, levelEntry{firstKey: firstKey, addr: curAddr})
	if err := finishLeaf(curCount, -1); err != nil {
		return nil, err
	}
	if wb != nil {
		// Send the tail group on its way; the internal levels build while
		// it is in flight, and close joins before the tree is handed back.
		if err := wb.flush(); err != nil {
			return nil, err
		}
	}

	newNode := func(leaf bool) (*cache.Page, error) {
		p, err := t.newNode(leaf)
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, p.Addr())
		return p, nil
	}

	// Build internal levels until a single node remains.
	level := leaves
	height := 1
	for len(level) > 1 {
		var next []levelEntry
		i := 0
		for i < len(level) {
			hi := i + t.keyCap + 1 // fanout children per node
			if hi > len(level) {
				hi = len(level)
			}
			node, err := newNode(false)
			if err != nil {
				return nil, err
			}
			pinned = node
			group := level[i:hi]
			for j, e := range group {
				t.setChild(node, j, e.addr)
				if j > 0 {
					setIntKey(node, j-1, e.firstKey)
				}
			}
			setCount(node, len(group)-1)
			next = append(next, levelEntry{firstKey: group[0].firstKey, addr: node.Addr()})
			t.cache.Unpin(node)
			pinned = nil
			i = hi
		}
		level = next
		height++
	}
	if wb != nil {
		if err := wb.close(); err != nil {
			return nil, err
		}
		wb = nil
	}
	t.root = level[0].addr
	t.height = height
	done = true
	return t, nil
}
