package btree

import (
	"errors"
	"testing"

	"em/internal/pdm"
	"em/internal/record"
	"em/internal/stream"
)

// sortedRecords produces n records with strictly increasing keys.
func sortedRecords(n int) []record.Record {
	vs := make([]record.Record, n)
	for i := range vs {
		vs[i] = record.Record{Key: uint64(i + 1), Val: uint64(i)}
	}
	return vs
}

// TestBulkLoadAsyncMatchesSync bulk-loads the same sorted file through the
// synchronous striped reader and the forecasting prefetch reader at equal
// width and asserts identical trees and identical I/O counters — the async
// input changes overlap, never the counted model or the built index.
func TestBulkLoadAsyncMatchesSync(t *testing.T) {
	for _, width := range []int{1, 2} {
		for _, n := range []int{0, 1, 100, 3000} {
			run := func(async bool) ([][2]uint64, pdm.Stats) {
				vol := pdm.MustVolume(pdm.Config{BlockBytes: 256, MemBlocks: 24, Disks: 4})
				pool := pdm.PoolFor(vol)
				f, err := stream.FromSlice(vol, pool, record.RecordCodec{}, sortedRecords(n))
				if err != nil {
					t.Fatal(err)
				}
				vol.Stats().Reset()
				tr, err := BulkLoad(vol, pool, 8, f, &BulkLoadOptions{Width: width, Async: async})
				if err != nil {
					t.Fatal(err)
				}
				st := vol.Stats().Snapshot()
				var kvs [][2]uint64
				if err := tr.Range(0, ^uint64(0), func(k, v uint64) error {
					kvs = append(kvs, [2]uint64{k, v})
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				if tr.Len() != int64(n) {
					t.Fatalf("async=%v: tree has %d keys, want %d", async, tr.Len(), n)
				}
				if err := tr.Close(); err != nil {
					t.Fatal(err)
				}
				if pool.InUse() != 0 {
					t.Fatalf("async=%v: leaked %d frames", async, pool.InUse())
				}
				return kvs, st
			}
			sKVs, sSt := run(false)
			aKVs, aSt := run(true)
			if len(sKVs) != len(aKVs) || len(sKVs) != n {
				t.Fatalf("w=%d n=%d: lengths sync=%d async=%d", width, n, len(sKVs), len(aKVs))
			}
			for i := range sKVs {
				if sKVs[i] != aKVs[i] {
					t.Fatalf("w=%d n=%d: entry %d differs", width, n, i)
				}
			}
			if sSt.Reads != aSt.Reads || sSt.Writes != aSt.Writes || sSt.Steps != aSt.Steps {
				t.Fatalf("w=%d n=%d: stats differ: sync %+v async %+v", width, n, sSt, aSt)
			}
		}
	}
}

// TestBulkLoadErrorRestoresPool injects every reachable failure into the
// bulk loader — unsorted input, duplicate keys, and a pool exhausted
// mid-load — synchronously and asynchronously, and asserts Pool.Free() is
// exactly its pre-call value afterwards: no leaked frames, no page left
// pinned, no cache holding on to the aborted tree.
func TestBulkLoadErrorRestoresPool(t *testing.T) {
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 256, MemBlocks: 64, Disks: 1})
	build := pdm.PoolFor(vol)

	unsorted := sortedRecords(500)
	unsorted[250], unsorted[251] = unsorted[251], unsorted[250]
	dup := sortedRecords(500)
	dup[300].Key = dup[299].Key

	files := map[string][]record.Record{
		"unsorted": unsorted,
		"dup":      dup,
		"starved":  sortedRecords(5000),
	}
	for name, vs := range files {
		f, err := stream.FromSlice(vol, build, record.RecordCodec{}, vs)
		if err != nil {
			t.Fatal(err)
		}
		for _, opts := range []*BulkLoadOptions{
			nil,
			{Width: 2},
			{Width: 2, Async: true},
			{Width: 2, WriteBehind: true},
			{Width: 2, Async: true, WriteBehind: true},
		} {
			// 12 frames suffice for the reader and a working cache on the
			// sorted-violation cases; the "starved" case asks for a 64-page
			// cache that exhausts the pool once enough leaves are resident.
			capacity, cacheFrames := 12, 8
			if name == "starved" {
				cacheFrames = 64
			}
			pool := pdm.NewPool(256, capacity)
			preFree := pool.Free()
			preLive := vol.Allocated() - vol.FreeBlocks()
			tr, err := BulkLoad(vol, pool, cacheFrames, f, opts)
			if err == nil {
				t.Fatalf("%s opts=%+v: bulk load succeeded", name, opts)
			}
			if tr != nil {
				t.Fatalf("%s opts=%+v: error return kept a tree", name, opts)
			}
			if (name == "unsorted" || name == "dup") && !errors.Is(err, ErrUnsortedInput) {
				t.Fatalf("%s opts=%+v: error %v, want ErrUnsortedInput", name, opts, err)
			}
			if pool.Free() != preFree || pool.InUse() != 0 {
				t.Fatalf("%s opts=%+v: pool not restored: free %d (pre %d), in use %d",
					name, opts, pool.Free(), preFree, pool.InUse())
			}
			if live := vol.Allocated() - vol.FreeBlocks(); live != preLive {
				t.Fatalf("%s opts=%+v: stranded %d volume blocks", name, opts, live-preLive)
			}
		}
		f.Release()
	}
	if build.InUse() != 0 {
		t.Fatalf("builder pool leaked %d frames", build.InUse())
	}
}
