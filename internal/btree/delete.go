package btree

import "em/internal/cache"

// Deletion with the standard B+-tree rebalancing: a node that underflows
// below half occupancy is either merged with an adjacent sibling or refilled
// by redistributing entries with it, removing or updating one separator in
// the parent. The root collapses when it is an internal node with a single
// child, so the tree shrinks as it empties. Every delete stays within
// Θ(log_B N) I/Os.

// minLeaf and minKeys give the underflow thresholds. The root is exempt.
func (t *Tree) minLeaf() int { return (t.leafCap + 1) / 2 }
func (t *Tree) minKeys() int { return (t.keyCap + 1) / 2 }

// Delete removes key, reporting whether it was present.
func (t *Tree) Delete(key uint64) (bool, error) {
	removed, _, err := t.deleteAt(t.root, t.height, key)
	if err != nil {
		return false, err
	}
	if removed {
		t.n--
	}
	// Collapse internal roots left with a single child.
	for t.height > 1 {
		p, err := t.cache.Get(t.root)
		if err != nil {
			return removed, err
		}
		if count(p) > 0 {
			t.cache.Unpin(p)
			break
		}
		old := t.root
		t.root = t.child(p, 0)
		t.cache.Unpin(p)
		t.cache.Drop(old)
		t.vol.Free(old)
		t.height--
	}
	return removed, nil
}

// deleteAt removes key from the subtree at addr (level 1 = leaf). underflow
// reports whether the node at addr dropped below its minimum and needs the
// parent to rebalance it.
func (t *Tree) deleteAt(addr int64, level int, key uint64) (removed, underflow bool, err error) {
	p, err := t.cache.Get(addr)
	if err != nil {
		return false, false, err
	}

	if level == 1 {
		defer t.cache.Unpin(p)
		i := searchLeafSlot(p, key)
		n := count(p)
		if i >= n || leafKey(p, i) != key {
			return false, false, nil
		}
		for j := i; j < n-1; j++ {
			setLeafKV(p, j, leafKey(p, j+1), leafVal(p, j+1))
		}
		setCount(p, n-1)
		return true, n-1 < t.minLeaf(), nil
	}

	slot := searchChildSlot(p, key)
	childAddr := t.child(p, slot)
	// As in insertAt, unpin during the descent so only O(1) pages are
	// pinned at once.
	t.cache.Unpin(p)
	removed, childUnder, err := t.deleteAt(childAddr, level-1, key)
	if err != nil {
		return false, false, err
	}
	if !childUnder {
		return removed, false, nil
	}
	p, err = t.cache.Get(addr)
	if err != nil {
		return false, false, err
	}
	defer t.cache.Unpin(p)
	// Rebalance the child with its left sibling when it has one, otherwise
	// with its right sibling.
	li := slot - 1
	if slot == 0 {
		li = 0
	}
	if err := t.fixPair(p, li, level-1); err != nil {
		return removed, false, err
	}
	return removed, count(p) < t.minKeys(), nil
}

// fixPair rebalances the adjacent children of p at slots li and li+1 (the
// separator between them is key li): merge if everything fits in one node,
// redistribute evenly otherwise. childLevel is 1 when the children are
// leaves.
func (t *Tree) fixPair(p *cache.Page, li, childLevel int) error {
	ri := li + 1
	left, err := t.cache.Get(t.child(p, li))
	if err != nil {
		return err
	}
	right, err := t.cache.Get(t.child(p, ri))
	if err != nil {
		t.cache.Unpin(left)
		return err
	}
	defer t.cache.Unpin(left)

	if childLevel == 1 {
		nl, nr := count(left), count(right)
		if nl+nr <= t.leafCap {
			// Merge right into left.
			for j := 0; j < nr; j++ {
				setLeafKV(left, nl+j, leafKey(right, j), leafVal(right, j))
			}
			setCount(left, nl+nr)
			setNextLeaf(left, nextLeaf(right))
			rAddr := right.Addr()
			t.cache.Unpin(right)
			t.cache.Drop(rAddr)
			t.vol.Free(rAddr)
			t.removeSeparator(p, li)
			return nil
		}
		// Redistribute evenly across the pair.
		keys := make([]uint64, 0, nl+nr)
		vals := make([]uint64, 0, nl+nr)
		for j := 0; j < nl; j++ {
			keys = append(keys, leafKey(left, j))
			vals = append(vals, leafVal(left, j))
		}
		for j := 0; j < nr; j++ {
			keys = append(keys, leafKey(right, j))
			vals = append(vals, leafVal(right, j))
		}
		half := (nl + nr + 1) / 2
		for j := 0; j < half; j++ {
			setLeafKV(left, j, keys[j], vals[j])
		}
		setCount(left, half)
		for j := half; j < len(keys); j++ {
			setLeafKV(right, j-half, keys[j], vals[j])
		}
		setCount(right, len(keys)-half)
		setIntKey(p, li, leafKey(right, 0))
		t.cache.Unpin(right)
		return nil
	}

	// Internal children: the separator key participates.
	nl, nr := count(left), count(right)
	sep := intKey(p, li)
	if nl+nr+1 <= t.keyCap {
		// Merge: left keys + separator + right keys; children concatenate.
		setIntKey(left, nl, sep)
		for j := 0; j < nr; j++ {
			setIntKey(left, nl+1+j, intKey(right, j))
		}
		for j := 0; j <= nr; j++ {
			t.setChild(left, nl+1+j, t.child(right, j))
		}
		setCount(left, nl+nr+1)
		rAddr := right.Addr()
		t.cache.Unpin(right)
		t.cache.Drop(rAddr)
		t.vol.Free(rAddr)
		t.removeSeparator(p, li)
		return nil
	}
	// Redistribute through the separator.
	keys := make([]uint64, 0, nl+nr+1)
	kids := make([]int64, 0, nl+nr+2)
	for j := 0; j < nl; j++ {
		keys = append(keys, intKey(left, j))
	}
	for j := 0; j <= nl; j++ {
		kids = append(kids, t.child(left, j))
	}
	keys = append(keys, sep)
	for j := 0; j < nr; j++ {
		keys = append(keys, intKey(right, j))
	}
	for j := 0; j <= nr; j++ {
		kids = append(kids, t.child(right, j))
	}
	half := len(keys) / 2
	for j := 0; j < half; j++ {
		setIntKey(left, j, keys[j])
	}
	for j := 0; j <= half; j++ {
		t.setChild(left, j, kids[j])
	}
	setCount(left, half)
	newSep := keys[half]
	rest := keys[half+1:]
	for j := 0; j < len(rest); j++ {
		setIntKey(right, j, rest[j])
	}
	for j := 0; j < len(kids)-half-1; j++ {
		t.setChild(right, j, kids[half+1+j])
	}
	setCount(right, len(rest))
	setIntKey(p, li, newSep)
	t.cache.Unpin(right)
	return nil
}

// removeSeparator deletes separator key li and child li+1 from p.
func (t *Tree) removeSeparator(p *cache.Page, li int) {
	n := count(p)
	for j := li; j < n-1; j++ {
		setIntKey(p, j, intKey(p, j+1))
	}
	for j := li + 1; j < n; j++ {
		t.setChild(p, j, t.child(p, j+1))
	}
	setCount(p, n-1)
}
