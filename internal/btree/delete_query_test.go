package btree

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"em/internal/pdm"
)

// Deletion interacting with the query paths: after merges, redistributions,
// and root collapses the prefetched Scanner and the level-batched GetBatch
// must still serve exactly the surviving records, at a counted-read cost no
// worse than the synchronous reference walk.

// buildDeleted inserts n records and deletes a pseudo-random subset,
// returning the tree and the surviving reference map.
func buildDeleted(t *testing.T, vol *pdm.Volume, pool *pdm.Pool, n int, seed int64) (*Tree, map[uint64]uint64) {
	t.Helper()
	tr, err := New(vol, pool, 8)
	if err != nil {
		t.Fatal(err)
	}
	ref := map[uint64]uint64{}
	for i := 0; i < n; i++ {
		k, v := uint64(i*3), uint64(i*7+1)
		if _, err := tr.Insert(k, v); err != nil {
			t.Fatal(err)
		}
		ref[k] = v
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		if rng.Intn(3) == 0 {
			continue // survivor
		}
		k := uint64(i * 3)
		removed, err := tr.Delete(k)
		if err != nil {
			t.Fatal(err)
		}
		if !removed {
			t.Fatalf("Delete(%d) found nothing", k)
		}
		delete(ref, k)
	}
	// Deleting absent keys is a no-op.
	for _, k := range []uint64{1, 5, uint64(3*n + 10)} {
		if removed, err := tr.Delete(k); err != nil || removed {
			t.Fatalf("Delete(absent %d) = (%v, %v)", k, removed, err)
		}
	}
	return tr, ref
}

func TestScannerAfterDeletes(t *testing.T) {
	cfg := pdm.Config{BlockBytes: 256, MemBlocks: 64, Disks: 2}
	forEachBackend(t, cfg, func(t *testing.T, vol *pdm.Volume, pool *pdm.Pool) {
		tr, ref := buildDeleted(t, vol, pool, 900, 17)
		if int(tr.Len()) != len(ref) {
			t.Fatalf("tree holds %d records, reference %d", tr.Len(), len(ref))
		}

		// Synchronous reference walk over a cold cache.
		if err := tr.Rehome(pool, 8); err != nil {
			t.Fatal(err)
		}
		syncGot := map[uint64]uint64{}
		before := atomic.LoadUint64(&vol.Stats().Reads)
		if err := tr.Range(0, ^uint64(0), func(k, v uint64) error {
			syncGot[k] = v
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		syncReads := atomic.LoadUint64(&vol.Stats().Reads) - before

		// Prefetched scan from the same cold state.
		if err := tr.Rehome(pool, 8); err != nil {
			t.Fatal(err)
		}
		before = atomic.LoadUint64(&vol.Stats().Reads)
		sc, err := tr.NewScanner(pool, 0, ^uint64(0), nil)
		if err != nil {
			t.Fatal(err)
		}
		scanGot := map[uint64]uint64{}
		lastKey, first := uint64(0), true
		for {
			r, ok, err := sc.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			if !first && r.Key <= lastKey {
				t.Fatalf("scan out of order: %d after %d", r.Key, lastKey)
			}
			lastKey, first = r.Key, false
			scanGot[r.Key] = r.Val
		}
		sc.Close()
		scanReads := atomic.LoadUint64(&vol.Stats().Reads) - before

		for _, got := range []map[uint64]uint64{syncGot, scanGot} {
			if len(got) != len(ref) {
				t.Fatalf("walk saw %d records, want %d", len(got), len(ref))
			}
			for k, v := range ref {
				if got[k] != v {
					t.Fatalf("walk[%d] = %d, want %d", k, got[k], v)
				}
			}
		}
		if scanReads > syncReads {
			t.Fatalf("prefetched scan cost %d reads, sync reference %d", scanReads, syncReads)
		}
		// Flushing the tree's cache leaves only leaked frames in use.
		if err := tr.Rehome(pool, 8); err != nil {
			t.Fatal(err)
		}
		if got := pool.InUse(); got != 0 {
			t.Fatalf("scanner leaked %d frames", got)
		}
	})
}

func TestGetBatchAfterDeletes(t *testing.T) {
	cfg := pdm.Config{BlockBytes: 256, MemBlocks: 64, Disks: 2}
	forEachBackend(t, cfg, func(t *testing.T, vol *pdm.Volume, pool *pdm.Pool) {
		tr, ref := buildDeleted(t, vol, pool, 700, 23)

		// Query a mix of survivors, deleted keys, and never-inserted keys.
		keys := make([]uint64, 0, 3*700)
		for i := 0; i < 700; i++ {
			keys = append(keys, uint64(i*3), uint64(i*3+1))
		}

		if err := tr.Rehome(pool, 8); err != nil {
			t.Fatal(err)
		}
		before := atomic.LoadUint64(&vol.Stats().Reads)
		var syncReads uint64
		syncVals := make([]uint64, len(keys))
		syncFound := make([]bool, len(keys))
		for i, k := range keys {
			v, f, err := tr.Get(k)
			if err != nil {
				t.Fatal(err)
			}
			syncVals[i], syncFound[i] = v, f
		}
		syncReads = atomic.LoadUint64(&vol.Stats().Reads) - before

		if err := tr.Rehome(pool, 8); err != nil {
			t.Fatal(err)
		}
		before = atomic.LoadUint64(&vol.Stats().Reads)
		vals, found, err := tr.GetBatch(keys)
		if err != nil {
			t.Fatal(err)
		}
		batchReads := atomic.LoadUint64(&vol.Stats().Reads) - before

		for i, k := range keys {
			want, ok := ref[k]
			if found[i] != ok || syncFound[i] != ok {
				t.Fatalf("found[%d] (key %d) = %v/%v, want %v", i, k, found[i], syncFound[i], ok)
			}
			if ok && (vals[i] != want || syncVals[i] != want) {
				t.Fatalf("vals[%d] (key %d) = %d/%d, want %d", i, k, vals[i], syncVals[i], want)
			}
		}
		if batchReads > syncReads {
			t.Fatalf("GetBatch cost %d reads, per-key reference %d", batchReads, syncReads)
		}
	})
}

// TestSessionQueriesAfterDeletes drives the session paths (the ones the
// store's reads ride) over a deletion-heavy tree.
func TestSessionQueriesAfterDeletes(t *testing.T) {
	cfg := pdm.Config{BlockBytes: 256, MemBlocks: 64, Disks: 2}
	forEachBackend(t, cfg, func(t *testing.T, vol *pdm.Volume, pool *pdm.Pool) {
		tr, ref := buildDeleted(t, vol, pool, 500, 29)
		sess, err := tr.NewSessionOn(pool, 8, 2)
		if err != nil {
			t.Fatal(err)
		}
		keys := make([]uint64, 0, 1000)
		for i := 0; i < 500; i++ {
			keys = append(keys, uint64(i*3), uint64(i*3+2))
		}
		vals, found, err := sess.GetBatch(keys)
		if err != nil {
			t.Fatal(err)
		}
		for i, k := range keys {
			want, ok := ref[k]
			if found[i] != ok || (ok && vals[i] != want) {
				t.Fatalf("session GetBatch key %d: (%d,%v), want (%d,%v)", k, vals[i], found[i], want, ok)
			}
		}
		sc, err := sess.NewScanner(30, 900, nil)
		if err != nil {
			t.Fatal(err)
		}
		seen := 0
		for {
			r, ok, err := sc.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			if r.Key < 30 || r.Key > 900 {
				t.Fatalf("scan yielded %d outside [30,900]", r.Key)
			}
			if want := ref[r.Key]; want != r.Val {
				t.Fatalf("scan[%d] = %d, want %d", r.Key, r.Val, want)
			}
			seen++
		}
		sc.Close()
		want := 0
		for k := range ref {
			if k >= 30 && k <= 900 {
				want++
			}
		}
		if seen != want {
			t.Fatalf("session scan saw %d records, want %d", seen, want)
		}
		if err := sess.Close(); err != nil {
			t.Fatal(err)
		}
		if err := tr.Rehome(pool, 8); err != nil {
			t.Fatal(err)
		}
		if got := pool.InUse(); got != 0 {
			t.Fatalf("session leaked %d frames", got)
		}
	})
}
