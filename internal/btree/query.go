package btree

import (
	"sort"

	"em/internal/cache"
)

// Batched query serving. A batch of point lookups over one tree shares most
// of its upper-level node reads: sorted by key, consecutive queries descend
// through the same internal nodes, so each level of the tree touches each
// distinct node exactly once no matter how many keys route through it. The
// distinct nodes of a level are then fetched through the buffer manager in
// disk-count groups on the volume's async engine — the batched filtering of
// the survey's batched problems applied to the search structure — so a
// level's reads cost parallel steps, not serialized block times, and the
// group after the one being searched is always in flight.

// groupWidth bounds a batched fetch so that two groups — the one being
// searched and the one in flight — fit pinned in the buffer manager with at
// least one evictable page to spare.
func groupWidth(c *cache.Cache, disks int) int {
	w := disks
	if w < 1 {
		w = 1
	}
	if maxW := (c.Capacity() - 1) / 2; w > maxW {
		w = maxW
	}
	if w < 1 {
		w = 1
	}
	return w
}

// GetBatch answers a batch of point lookups, returning values and presence
// flags aligned with keys. The batch is processed level by level: keys are
// sorted, each level's distinct nodes are read once (shared internal nodes
// are deduplicated — the root costs one read per batch, not one per key) in
// groups of the volume's disk count through the async engine, with the next
// group dispatched while the current one is searched. Counted reads never
// exceed — and with shared internals are strictly below — a loop of Get
// calls over the same keys from the same cache state; results are
// identical. Duplicate keys are answered from a single descent.
func (t *Tree) GetBatch(keys []uint64) ([]uint64, []bool, error) {
	var vals []uint64
	var found []bool
	err := t.gate.Do(func() (err error) {
		vals, found, err = t.getBatch(t.cache, keys)
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	return vals, found, nil
}

// fetchGroup is one in-flight slice of a level's distinct nodes.
type fetchGroup struct {
	spans []span
	pages []*cache.Page
	join  func() error
}

// span is a run of sorted batch positions [lo, hi) that all descend through
// the node at addr on the current level.
type span struct {
	addr   int64
	lo, hi int
}

// getBatch is GetBatch through an explicit buffer manager (tree cache or
// session cache).
func (t *Tree) getBatch(c *cache.Cache, keys []uint64) ([]uint64, []bool, error) {
	vals := make([]uint64, len(keys))
	found := make([]bool, len(keys))
	if len(keys) == 0 {
		return vals, found, nil
	}
	order := make([]int, len(keys))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return keys[order[i]] < keys[order[j]] })
	// addrs[k] is the node the k-th smallest key visits on the current level.
	addrs := make([]int64, len(keys))
	for i := range addrs {
		addrs[i] = t.root
	}
	gw := groupWidth(c, t.vol.Disks())

	for level := t.height; level >= 1; level-- {
		// The level's distinct nodes: keys are sorted and child slots are
		// monotone in the key, so equal addresses are consecutive and one
		// pass yields the spans in key order.
		var spans []span
		for k := 0; k < len(order); {
			j := k + 1
			for j < len(order) && addrs[j] == addrs[k] {
				j++
			}
			spans = append(spans, span{addr: addrs[k], lo: k, hi: j})
			k = j
		}
		if err := t.forEachSpan(c, gw, spans, func(sp span, p *cache.Page) {
			if level == 1 {
				for k := sp.lo; k < sp.hi; k++ {
					key := keys[order[k]]
					i := searchLeafSlot(p, key)
					if i < count(p) && leafKey(p, i) == key {
						vals[order[k]] = leafVal(p, i)
						found[order[k]] = true
					}
				}
				return
			}
			for k := sp.lo; k < sp.hi; k++ {
				addrs[k] = t.child(p, searchChildSlot(p, keys[order[k]]))
			}
		}); err != nil {
			return nil, nil, err
		}
	}
	return vals, found, nil
}

// forEachSpan streams the spans' nodes through the cache in groups of gw,
// always dispatching the next group's batched read before searching the
// current one, and calls fn with each span's pinned page. On any error the
// cache has already dropped the failed group's unread pages; forEachSpan
// drains whatever else it put in flight before returning.
func (t *Tree) forEachSpan(c *cache.Cache, gw int, spans []span, fn func(span, *cache.Page)) error {
	fetch := func(gs []span) (*fetchGroup, error) {
		ga := make([]int64, len(gs))
		for i, s := range gs {
			ga[i] = s.addr
		}
		pages, join, err := c.GetBatchAsync(ga)
		if err != nil {
			return nil, err
		}
		return &fetchGroup{spans: gs, pages: pages, join: join}, nil
	}
	// drain disposes of a group when unwinding: join the read (the engine
	// writes into cache frames until it completes) and unpin on success —
	// on failure the cache has already cleaned up.
	drain := func(g *fetchGroup) {
		if g == nil {
			return
		}
		if g.join() == nil {
			for _, p := range g.pages {
				c.Unpin(p)
			}
		}
	}

	pending := spans
	take := min(gw, len(pending))
	cur, err := fetch(pending[:take])
	if err != nil {
		return err
	}
	pending = pending[take:]
	for cur != nil {
		var next *fetchGroup
		if len(pending) > 0 {
			take := min(gw, len(pending))
			next, err = fetch(pending[:take])
			if err != nil {
				drain(cur)
				return err
			}
			pending = pending[take:]
		}
		if err := cur.join(); err != nil {
			drain(next)
			return err
		}
		for i, sp := range cur.spans {
			fn(sp, cur.pages[i])
		}
		for _, p := range cur.pages {
			c.Unpin(p)
		}
		cur = next
	}
	return nil
}

// Warm loads every internal node of the tree into the buffer manager, level
// by level in disk-count batches, without touching a single leaf. A query
// server calls it once after loading (or restart) so that descents are
// memory hits and scan forecasting sees resident parents — the classical
// serving assumption that an index's fan-out levels, Θ(N/B²) blocks, live
// in RAM while the Θ(N/B) leaves stay on disk. It costs at most one read
// per internal node; nodes beyond the cache capacity simply wash through.
func (t *Tree) Warm() error {
	return t.warmWith(t.cache)
}

// warmWith is Warm through an explicit buffer manager.
func (t *Tree) warmWith(c *cache.Cache) error {
	if t.height < 2 {
		return nil
	}
	gw := groupWidth(c, t.vol.Disks())
	level := []int64{t.root}
	for depth := t.height; depth > 1; depth-- {
		var next []int64
		spans := make([]span, len(level))
		for i, a := range level {
			spans[i] = span{addr: a}
		}
		if err := t.forEachSpan(c, gw, spans, func(sp span, p *cache.Page) {
			if depth > 2 {
				for j := 0; j <= count(p); j++ {
					next = append(next, t.child(p, j))
				}
			}
		}); err != nil {
			return err
		}
		level = next
	}
	return nil
}
