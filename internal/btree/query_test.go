package btree

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"em/internal/pdm"
	"em/internal/record"
	"em/internal/stream"
)

// bulkTree builds a tree over keys i*2 -> i for i in [0, n) on a fresh
// volume, so odd probes miss and even probes hit.
func bulkTree(t testing.TB, vol *pdm.Volume, pool *pdm.Pool, n int, opts *BulkLoadOptions) *Tree {
	t.Helper()
	recs := make([]record.Record, n)
	for i := range recs {
		recs[i] = record.Record{Key: uint64(i * 2), Val: uint64(i)}
	}
	f, err := stream.FromSlice(vol, pool, record.RecordCodec{}, recs)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := BulkLoad(vol, pool, 8, f, opts)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestGetBatchBasic(t *testing.T) {
	vol, pool := newEnv(t)
	tr := bulkTree(t, vol, pool, 1000, nil)

	// Empty batch.
	vals, found, err := tr.GetBatch(nil)
	if err != nil || len(vals) != 0 || len(found) != 0 {
		t.Fatalf("empty batch: %v %v %v", vals, found, err)
	}

	// Mixed present/absent keys with duplicates, deliberately unsorted.
	keys := []uint64{14, 3, 1998, 14, 0, 2001, 500, 500}
	vals, found, err = tr.GetBatch(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		wantOK := k%2 == 0 && k < 2000
		if found[i] != wantOK {
			t.Fatalf("key %d: found=%v want %v", k, found[i], wantOK)
		}
		if wantOK && vals[i] != k/2 {
			t.Fatalf("key %d: val=%d want %d", k, vals[i], k/2)
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if pool.InUse() != 0 {
		t.Fatalf("frame leak: %d", pool.InUse())
	}
}

// TestQuickGetBatchMatchesGets is the batched-lookup acceptance property at
// the engine level: from the same cold cache state, GetBatch must return
// exactly what a loop of Gets returns while counting no more block reads,
// across random tree sizes/heights, batch sizes, disk counts, and both
// construction paths (bulk load and random insertion).
func TestQuickGetBatchMatchesGets(t *testing.T) {
	prop := func(seedRaw uint32, nRaw, qRaw uint16, disksRaw uint8, inserted bool) bool {
		rng := rand.New(rand.NewSource(int64(seedRaw)))
		n := 1 + int(nRaw)%3000
		q := 1 + int(qRaw)%600
		disks := 1 + int(disksRaw)%4
		vol := pdm.MustVolume(pdm.Config{BlockBytes: 256, MemBlocks: 64, Disks: disks})
		pool := pdm.PoolFor(vol)

		var tr *Tree
		var err error
		if inserted {
			tr, err = New(vol, pool, 8)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range rng.Perm(n) {
				if _, err := tr.Insert(uint64(k*2), uint64(k)); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			tr = bulkTree(t, vol, pool, n, &BulkLoadOptions{Width: disks})
		}
		keys := make([]uint64, q)
		for i := range keys {
			keys[i] = uint64(rng.Intn(2*n + 2))
		}

		// Loop of Gets from a cold cache.
		if err := tr.Rehome(pool, 8); err != nil {
			t.Fatal(err)
		}
		vol.Stats().Reset()
		loopVals := make([]uint64, q)
		loopFound := make([]bool, q)
		for i, k := range keys {
			loopVals[i], loopFound[i], err = tr.Get(k)
			if err != nil {
				t.Fatal(err)
			}
		}
		loopReads := vol.Stats().Snapshot().Reads

		// GetBatch from an equally cold cache.
		if err := tr.Rehome(pool, 8); err != nil {
			t.Fatal(err)
		}
		vol.Stats().Reset()
		vals, found, err := tr.GetBatch(keys)
		if err != nil {
			t.Fatal(err)
		}
		batchReads := vol.Stats().Snapshot().Reads

		for i := range keys {
			if vals[i] != loopVals[i] || found[i] != loopFound[i] {
				t.Logf("n=%d q=%d key %d: batch (%d,%v) loop (%d,%v)",
					n, q, keys[i], vals[i], found[i], loopVals[i], loopFound[i])
				return false
			}
		}
		if batchReads > loopReads {
			t.Logf("n=%d q=%d D=%d inserted=%v: batch %d reads > loop %d",
				n, q, disks, inserted, batchReads, loopReads)
			return false
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		if pool.InUse() != 0 {
			t.Fatalf("frame leak: %d", pool.InUse())
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestGetBatchDedupesSharedInternals pins the headline saving: a batch big
// enough to route many keys through every internal node must read each
// internal node once, i.e. strictly fewer total reads than the Get loop.
func TestGetBatchDedupesSharedInternals(t *testing.T) {
	vol, pool := newEnv(t)
	tr := bulkTree(t, vol, pool, 4000, nil)
	rng := rand.New(rand.NewSource(11))
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = uint64(rng.Intn(8000))
	}
	if err := tr.Rehome(pool, 8); err != nil {
		t.Fatal(err)
	}
	vol.Stats().Reset()
	for _, k := range keys {
		if _, _, err := tr.Get(k); err != nil {
			t.Fatal(err)
		}
	}
	loopReads := vol.Stats().Snapshot().Reads
	if err := tr.Rehome(pool, 8); err != nil {
		t.Fatal(err)
	}
	vol.Stats().Reset()
	if _, _, err := tr.GetBatch(keys); err != nil {
		t.Fatal(err)
	}
	batchReads := vol.Stats().Snapshot().Reads
	if batchReads >= loopReads {
		t.Fatalf("batch reads %d not strictly below loop reads %d", batchReads, loopReads)
	}
	tr.Close()
	if pool.InUse() != 0 {
		t.Fatalf("frame leak: %d", pool.InUse())
	}
}

// scanAll drains a scanner into (keys, vals), closing it.
func scanAll(t testing.TB, sc *Scanner) (ks, vs []uint64) {
	t.Helper()
	defer sc.Close()
	err := stream.Drain[record.Record](sc, func(r record.Record) error {
		ks = append(ks, r.Key)
		vs = append(vs, r.Val)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return ks, vs
}

// TestQuickScannerMatchesRange: from the same cache state, a prefetched
// scan must return exactly Range's records in order while counting no more
// reads, across random trees (inserted and bulk-loaded, with deletions),
// bounds, and widths.
func TestQuickScannerMatchesRange(t *testing.T) {
	prop := func(seedRaw uint32, nRaw uint16, widthRaw, disksRaw uint8, inserted bool) bool {
		rng := rand.New(rand.NewSource(int64(seedRaw)))
		n := 1 + int(nRaw)%2500
		width := 1 + int(widthRaw)%5
		disks := 1 + int(disksRaw)%4
		vol := pdm.MustVolume(pdm.Config{BlockBytes: 256, MemBlocks: 64, Disks: disks})
		pool := pdm.PoolFor(vol)

		var tr *Tree
		var err error
		if inserted {
			tr, err = New(vol, pool, 8)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range rng.Perm(n) {
				if _, err := tr.Insert(uint64(k*2), uint64(k)); err != nil {
					t.Fatal(err)
				}
			}
			// Random deletions exercise merged/redistributed leaves.
			for i := 0; i < n/4; i++ {
				if _, err := tr.Delete(uint64(rng.Intn(n) * 2)); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			tr = bulkTree(t, vol, pool, n, &BulkLoadOptions{Width: disks})
		}
		lo := uint64(rng.Intn(2*n + 2))
		hi := uint64(rng.Intn(2*n + 2))
		switch rng.Intn(4) {
		case 0:
			lo, hi = 0, ^uint64(0) // full scan
		case 1:
			hi = lo + uint64(rng.Intn(64)) // short range
		}

		if err := tr.Rehome(pool, 8); err != nil {
			t.Fatal(err)
		}
		vol.Stats().Reset()
		var rKeys, rVals []uint64
		if err := tr.Range(lo, hi, func(k, v uint64) error {
			rKeys = append(rKeys, k)
			rVals = append(rVals, v)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		rangeReads := vol.Stats().Snapshot().Reads

		if err := tr.Rehome(pool, 8); err != nil {
			t.Fatal(err)
		}
		vol.Stats().Reset()
		sc, err := tr.NewScanner(pool, lo, hi, &ScanOptions{Width: width})
		if err != nil {
			t.Fatal(err)
		}
		sKeys, sVals := scanAll(t, sc)
		scanReads := vol.Stats().Snapshot().Reads

		if len(sKeys) != len(rKeys) {
			t.Logf("n=%d lo=%d hi=%d w=%d: scanner %d records, range %d",
				n, lo, hi, width, len(sKeys), len(rKeys))
			return false
		}
		for i := range rKeys {
			if sKeys[i] != rKeys[i] || sVals[i] != rVals[i] {
				t.Logf("record %d: scanner (%d,%d) range (%d,%d)", i, sKeys[i], sVals[i], rKeys[i], rVals[i])
				return false
			}
		}
		if scanReads > rangeReads {
			t.Logf("n=%d lo=%d hi=%d w=%d inserted=%v: scan %d reads > range %d",
				n, lo, hi, width, inserted, scanReads, rangeReads)
			return false
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		if pool.InUse() != 0 {
			t.Fatalf("frame leak: %d", pool.InUse())
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestScannerFullScanReadsIdentical pins the F12 invariant at unit level:
// with internal nodes resident (Warm) and leaves cold, a full prefetched
// scan issues exactly the reads of the synchronous Range.
func TestScannerFullScanReadsIdentical(t *testing.T) {
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 256, MemBlocks: 96, Disks: 4})
	pool := pdm.PoolFor(vol)
	// 1500 records over 256-byte blocks: 108 leaves under 9 internal nodes,
	// which fit a 16-frame cache with room to spare, so Warm keeps the whole
	// fan-out resident.
	tr := bulkTree(t, vol, pool, 1500, &BulkLoadOptions{Width: 4})
	if err := tr.Rehome(pool, 16); err != nil {
		t.Fatal(err)
	}
	if err := tr.Warm(); err != nil {
		t.Fatal(err)
	}

	vol.Stats().Reset()
	sc, err := tr.NewScanner(pool, 0, ^uint64(0), nil)
	if err != nil {
		t.Fatal(err)
	}
	sKeys, _ := scanAll(t, sc)
	scanReads := vol.Stats().Snapshot().Reads

	// The scan must not have polluted the cache: Range sees the same warm
	// internals and cold leaves.
	vol.Stats().Reset()
	cnt := 0
	if err := tr.Range(0, ^uint64(0), func(k, v uint64) error { cnt++; return nil }); err != nil {
		t.Fatal(err)
	}
	rangeReads := vol.Stats().Snapshot().Reads

	if len(sKeys) != 1500 || cnt != 1500 {
		t.Fatalf("scan %d range %d records, want 1500", len(sKeys), cnt)
	}
	if scanReads != rangeReads {
		t.Fatalf("scan reads %d != range reads %d", scanReads, rangeReads)
	}
	tr.Close()
	if pool.InUse() != 0 {
		t.Fatalf("frame leak: %d", pool.InUse())
	}
}

func TestWarmMakesDescentsResident(t *testing.T) {
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 256, MemBlocks: 64, Disks: 1})
	pool := pdm.PoolFor(vol)
	tr := bulkTree(t, vol, pool, 1500, nil) // 9 internal nodes: fits 16 frames
	if err := tr.Rehome(pool, 16); err != nil {
		t.Fatal(err)
	}
	vol.Stats().Reset()
	if err := tr.Warm(); err != nil {
		t.Fatal(err)
	}
	if reads := vol.Stats().Snapshot().Reads; reads != 9 {
		t.Fatalf("warm read %d blocks, want the 9 internal nodes", reads)
	}
	// Every descent now misses at most the leaf (the odd probe briefly
	// evicts an unvisited parent on this 16-frame cache — allow a little).
	vol.Stats().Reset()
	for k := uint64(0); k < 100; k++ {
		if _, _, err := tr.Get(k * 29); err != nil {
			t.Fatal(err)
		}
	}
	if reads := vol.Stats().Snapshot().Reads; reads > 120 {
		t.Fatalf("warm tree cost %d reads over 100 gets, want ~1 per get", reads)
	}
	tr.Close()
}

func TestMax(t *testing.T) {
	tr, _, _ := newTree(t)
	if _, _, ok, err := tr.Max(); err != nil || ok {
		t.Fatalf("max on empty: ok=%v err=%v", ok, err)
	}
	for _, k := range []uint64{50, 20, 90, 10, 70} {
		tr.Insert(k, k*2)
	}
	k, v, ok, err := tr.Max()
	if err != nil || !ok || k != 90 || v != 180 {
		t.Fatalf("max = %d,%d,%v,%v", k, v, ok, err)
	}
	// Max tracks deletions of the right edge.
	if _, err := tr.Delete(90); err != nil {
		t.Fatal(err)
	}
	k, _, ok, err = tr.Max()
	if err != nil || !ok || k != 70 {
		t.Fatalf("max after delete = %d,%v,%v", k, ok, err)
	}
}

// TestSessionsConcurrent serves a mixed point/range workload from four
// read sessions on four goroutines against one latency-engine volume; run
// under -race by make ci, it is the data-race gate for the session design.
func TestSessionsConcurrent(t *testing.T) {
	vol := pdm.MustVolume(pdm.Config{
		BlockBytes: 256, MemBlocks: 128, Disks: 4,
		DiskLatency: 20 * time.Microsecond,
	})
	defer vol.Close()
	pool := pdm.PoolFor(vol)
	const n = 2000
	tr := bulkTree(t, vol, pool, n, &BulkLoadOptions{Width: 4, Async: true, WriteBehind: true})

	const g = 4
	sessions := make([]*Session, g)
	for i := range sessions {
		s, err := tr.NewSessionOn(pool, 8, 4)
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
	}
	var wg sync.WaitGroup
	errs := make(chan error, g)
	for i, s := range sessions {
		wg.Add(1)
		go func(i int, s *Session) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			for j := 0; j < 150; j++ {
				k := uint64(rng.Intn(2 * n))
				if j%10 == 9 {
					sc, err := s.NewScanner(k, k+200, nil)
					if err != nil {
						errs <- err
						return
					}
					prev := uint64(0)
					first := true
					err = stream.Drain[record.Record](sc, func(r record.Record) error {
						if !first && r.Key <= prev {
							t.Errorf("session %d: scan out of order", i)
						}
						prev, first = r.Key, false
						return nil
					})
					sc.Close()
					if err != nil {
						errs <- err
						return
					}
					continue
				}
				v, ok, err := s.Get(k)
				if err != nil {
					errs <- err
					return
				}
				if want := k%2 == 0 && k < 2*n; ok != want || (ok && v != k/2) {
					t.Errorf("session %d: get(%d) = %d,%v", i, k, v, ok)
				}
			}
		}(i, s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for _, s := range sessions {
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if pool.InUse() != 0 {
		t.Fatalf("frame leak: %d", pool.InUse())
	}
}

// TestSessionBudgetReserved checks the up-front reservation: opening a
// session charges its whole budget to the caller's pool, closing returns
// it, and a pool too small to cover the budget refuses the session.
func TestSessionBudgetReserved(t *testing.T) {
	vol, pool := newEnv(t)
	tr := bulkTree(t, vol, pool, 500, nil)
	base := pool.InUse()
	s, err := tr.NewSessionOn(pool, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := pool.InUse() - base; got != 8+2*2 {
		t.Fatalf("session reserved %d frames, want %d", got, 8+2*2)
	}
	if _, _, err := s.GetBatch([]uint64{2, 4, 999}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if pool.InUse() != base {
		t.Fatalf("close left %d frames on loan", pool.InUse()-base)
	}
	tight := pdm.NewPool(vol.BlockBytes(), 5)
	if _, err := tr.NewSessionOn(tight, 8, 2); err == nil {
		t.Fatal("session opened past the pool budget")
	}
	if tight.InUse() != 0 {
		t.Fatalf("failed open leaked %d frames", tight.InUse())
	}
	tr.Close()
}
