package btree

// Release ends the tree's life: it walks the internal levels to collect
// every node address, returns all node blocks to the volume, and closes
// the buffer manager without writing anything back. A generational store
// calls it when the last reader of a superseded generation departs, so a
// retired tree's Θ(N/B) blocks are reclaimed instead of leaking for the
// store's lifetime. It costs one read per internal node (Θ(N/B²); leaves
// are freed without being read) against a flushed tree; the tree is
// unusable afterwards.
func (t *Tree) Release() error {
	addrs := make([]int64, 0, 16)
	level := []int64{t.root}
	var walkErr error
	for depth := t.height; depth > 1; depth-- {
		next := make([]int64, 0, len(level)*(t.keyCap+1))
		for _, a := range level {
			p, err := t.cache.Get(a)
			if err != nil {
				walkErr = err
				break
			}
			for j := 0; j <= count(p); j++ {
				next = append(next, t.child(p, j))
			}
			t.cache.Unpin(p)
		}
		addrs = append(addrs, level...)
		if walkErr != nil {
			// Best effort: free what was discovered before the failure.
			addrs = append(addrs, next...)
			break
		}
		level = next
	}
	if walkErr == nil {
		addrs = append(addrs, level...)
	}
	// Drop before Close so no freed block is ever written back, then free:
	// a block returned to the volume may be reallocated immediately.
	for _, a := range addrs {
		t.cache.Drop(a)
	}
	err := t.cache.Close()
	for _, a := range addrs {
		t.vol.Free(a)
	}
	if walkErr != nil {
		return walkErr
	}
	return err
}
