package btree

import (
	"em/internal/cache"
	"em/internal/index"
	"em/internal/pdm"
	"em/internal/record"
	"em/internal/stream"
)

// Prefetched range scans. A range query's leaf chain is a forecastable
// sequential source, exactly like the merge runs the stream package already
// prefetches: the leaves it will visit are known ahead of time whenever the
// parent level is in memory, because an internal node lists its children —
// consecutive leaves — in key order. The Scanner exploits that: it takes
// upcoming leaf addresses from cache-resident parents (a residency probe,
// never an extra read) and keeps up to Width leaf reads in flight through
// the volume's async engine; when a parent is not resident it degrades to
// pipelining one leaf ahead along the sibling chain, which is always known
// once the current leaf has arrived. Leaves are read into the scanner's own
// pool frames rather than admitted to the buffer manager — a scan touches
// each leaf once, and a scan-resistant path keeps it from evicting the hot
// internal nodes point queries depend on — except that leaves already
// resident are served from the cache, so counted reads never exceed the
// synchronous Range's from the same cache state.

// ScanOptions tunes a prefetched range scan.
type ScanOptions struct {
	// Width is the number of leaf reads the scanner keeps in flight (and
	// the size of its fetch groups); the scanner holds 2×Width pool frames.
	// Zero means the volume's disk count D, the width at which a forecast
	// group costs one parallel step.
	Width int
}

func (o *ScanOptions) width(disks int) int {
	if o == nil || o.Width < 1 {
		if disks < 1 {
			return 1
		}
		return disks
	}
	return o.Width
}

// pathLevel is the scanner's forecast cursor at one internal level: the
// node it is currently inside, the child slot handed to the level below,
// and the node's separator count.
type pathLevel struct {
	addr int64
	slot int
	cnt  int
}

// leafGroup is one group of leaves, either being consumed or in flight.
// Each slot is served from a pinned cache page (the leaf was resident) or
// from one of the scanner's private frames (read off the volume).
type leafGroup struct {
	addrs  []int64
	pages  []*cache.Page
	frames []*pdm.Frame
	join   func() error
}

// Scanner streams every record with lo <= key <= hi in key order, keeping
// up to Width leaf reads in flight. It implements stream.Source[Record], so
// a scan can feed anything a file reader can — stream.Drain, or even a
// bulk load of a second tree. The scanner holds 2×Width frames from the
// pool it was created with and pins cache pages only transiently (plus any
// resident leaves of the two live groups); Close releases everything.
//
// A Scanner must not overlap tree mutations, like Range.
type Scanner struct {
	t      *Tree
	c      *cache.Cache
	lo, hi uint64
	width  int

	frames []*pdm.Frame // the 2×width allocation, released on Close
	freeFr []*pdm.Frame

	path     []pathLevel // descent cursor, root first, leaf parents last
	pending  []int64     // forecast leaf addresses not yet dispatched
	forecast bool        // parent-level forecasting still alive
	fcDone   bool        // no leaf beyond those scheduled can hold a key <= hi

	cur, next *leafGroup
	slot      int    // current leaf within cur
	buf       []byte // current leaf image
	pos, cnt  int    // record cursor within the current leaf

	started bool
	done    bool
	closed  bool
	err     error
}

var _ stream.Source[record.Record] = (*Scanner)(nil)

// NewScanner opens a prefetched scan of [lo, hi] drawing its 2×Width leaf
// frames from pool. See Scanner for the fetch strategy; counted reads are
// at most the synchronous Range's over the same interval from the same
// cache state (identical for full scans with cold leaves).
func (t *Tree) NewScanner(pool *pdm.Pool, lo, hi uint64, opts *ScanOptions) (*Scanner, error) {
	return t.newScanner(t.cache, pool, lo, hi, opts)
}

// Scan is NewScanner at the index.Index signature: frames come from the
// pool the tree was created on and the scan runs at the tree's configured
// width.
func (t *Tree) Scan(lo, hi uint64) (index.Scanner, error) {
	var sc *Scanner
	err := t.gate.Do(func() (err error) {
		sc, err = t.newScanner(t.cache, t.pool, lo, hi, &ScanOptions{Width: t.width})
		return err
	})
	if err != nil {
		return nil, err
	}
	return sc, nil
}

func (t *Tree) newScanner(c *cache.Cache, pool *pdm.Pool, lo, hi uint64, opts *ScanOptions) (*Scanner, error) {
	w := opts.width(t.vol.Disks())
	frames, err := pool.AllocN(2 * w)
	if err != nil {
		return nil, err
	}
	s := &Scanner{
		t: t, c: c, lo: lo, hi: hi, width: w,
		frames:   frames,
		freeFr:   append([]*pdm.Frame(nil), frames...),
		forecast: true,
	}
	if err := s.descend(); err != nil {
		s.Close()
		return nil, err
	}
	// Dispatch the first group now; its successor goes out the moment it
	// arrives, so there is always one group in flight behind the reader.
	g, err := s.dispatchForecast()
	if err != nil {
		s.Close()
		return nil, err
	}
	s.cur = g
	return s, nil
}

// descend walks from the root to lo's leaf parent through the cache — the
// same counted reads as Range's descent — recording the path as the
// forecast cursor and collecting the first batch of upcoming leaves.
func (s *Scanner) descend() error {
	t := s.t
	if t.height == 1 {
		// The root is the only leaf; nothing to forecast from.
		s.pending = []int64{t.root}
		s.forecast, s.fcDone = false, true
		return nil
	}
	addr := t.root
	for level := t.height; level > 1; level-- {
		p, err := s.c.Get(addr)
		if err != nil {
			return err
		}
		slot := searchChildSlot(p, s.lo)
		n := count(p)
		if level > 2 {
			s.path = append(s.path, pathLevel{addr: addr, slot: slot, cnt: n})
			addr = t.child(p, slot)
			s.c.Unpin(p)
			continue
		}
		// Leaf parent: schedule every child from lo's onward whose key
		// range can still intersect [lo, hi]. Child j's keys are all >=
		// separator j-1, so a separator beyond hi ends the scan's leaf set.
		s.path = append(s.path, pathLevel{addr: addr, slot: n, cnt: n})
		for j := slot; j <= n; j++ {
			if j > slot && intKey(p, j-1) > s.hi {
				s.fcDone = true
				break
			}
			s.pending = append(s.pending, t.child(p, j))
		}
		s.c.Unpin(p)
	}
	return nil
}

// refill extends pending with the next leaf parent's children, advancing
// the forecast cursor through cache-resident nodes only: a single
// non-resident ancestor ends forecasting for the rest of the scan (the
// sibling chain takes over) rather than costing a read Range would not
// have issued.
func (s *Scanner) refill() {
	if !s.forecast || s.fcDone {
		return
	}
	// Climb to the deepest ancestor with an unvisited child.
	j := len(s.path) - 2
	for ; j >= 0; j-- {
		if s.path[j].slot < s.path[j].cnt {
			break
		}
	}
	if j < 0 {
		s.fcDone = true
		return
	}
	p := s.c.Peek(s.path[j].addr)
	if p == nil {
		s.forecast = false
		return
	}
	s.path[j].slot++
	slot := s.path[j].slot
	if slot > 0 && intKey(p, slot-1) > s.hi {
		s.c.Unpin(p)
		s.fcDone = true
		return
	}
	addr := s.t.child(p, slot)
	s.c.Unpin(p)
	// Walk the leftmost path of the new subtree down to its leaf parent.
	for k := j + 1; k < len(s.path); k++ {
		p := s.c.Peek(addr)
		if p == nil {
			s.forecast = false
			return
		}
		n := count(p)
		if k < len(s.path)-1 {
			s.path[k] = pathLevel{addr: addr, slot: 0, cnt: n}
			addr = s.t.child(p, 0)
			s.c.Unpin(p)
			continue
		}
		s.path[k] = pathLevel{addr: addr, slot: n, cnt: n}
		for c := 0; c <= n; c++ {
			if c > 0 && intKey(p, c-1) > s.hi {
				s.fcDone = true
				break
			}
			s.pending = append(s.pending, s.t.child(p, c))
		}
		s.c.Unpin(p)
	}
}

// dispatchForecast cuts the next group from the forecast and sends its
// reads on their way; nil when no forecast leaves are available.
func (s *Scanner) dispatchForecast() (*leafGroup, error) {
	if len(s.pending) == 0 {
		s.refill()
	}
	if len(s.pending) == 0 {
		return nil, nil
	}
	take := min(s.width, len(s.pending))
	g := &leafGroup{addrs: append([]int64(nil), s.pending[:take]...)}
	s.pending = s.pending[take:]
	return g, s.dispatch(g)
}

// dispatch resolves a group's slots — resident leaves pin their cache page,
// the rest read into private frames as one async batch.
func (s *Scanner) dispatch(g *leafGroup) error {
	g.pages = make([]*cache.Page, len(g.addrs))
	g.frames = make([]*pdm.Frame, len(g.addrs))
	var rAddrs []int64
	var rBufs [][]byte
	for i, a := range g.addrs {
		if p := s.c.Peek(a); p != nil {
			g.pages[i] = p
			continue
		}
		fr := s.takeFrame()
		g.frames[i] = fr
		rAddrs = append(rAddrs, a)
		rBufs = append(rBufs, fr.Buf)
	}
	if len(rAddrs) > 0 {
		g.join = s.t.vol.BatchReadAsync(rAddrs, rBufs)
	}
	return nil
}

func (s *Scanner) takeFrame() *pdm.Frame {
	n := len(s.freeFr)
	if n == 0 {
		panic("btree: scanner frame accounting corrupt")
	}
	fr := s.freeFr[n-1]
	s.freeFr = s.freeFr[:n-1]
	return fr
}

// joinGroup waits for a group's in-flight reads, if any.
func (s *Scanner) joinGroup(g *leafGroup) error {
	if g.join == nil {
		return nil
	}
	err := g.join()
	g.join = nil
	return err
}

// retire returns a consumed group's resources.
func (s *Scanner) retire(g *leafGroup) {
	for i := range g.addrs {
		if g.pages[i] != nil {
			s.c.Unpin(g.pages[i])
			g.pages[i] = nil
		}
		if g.frames[i] != nil {
			s.freeFr = append(s.freeFr, g.frames[i])
			g.frames[i] = nil
		}
	}
}

func (s *Scanner) leafImage(g *leafGroup, i int) []byte {
	if g.pages[i] != nil {
		return g.pages[i].Buf
	}
	return g.frames[i].Buf
}

// scheduleNext keeps one group in flight behind the one being consumed. It
// is called as soon as cur's reads have arrived: first from the forecast,
// and — when the forecast has nothing but leaves may remain — one ahead
// along the sibling chain, whose next address cur's tail leaf just made
// known. The chain is followed exactly when Range would follow it: the
// tail holds no key beyond hi (so Range, too, would read the successor).
func (s *Scanner) scheduleNext() error {
	if s.next != nil {
		return nil
	}
	g, err := s.dispatchForecast()
	if err != nil {
		return err
	}
	if g != nil {
		s.next = g
		return nil
	}
	if s.fcDone {
		// Every remaining leaf starts beyond hi; Range would read one more
		// block only to find its first key past the bound. Skipping it is
		// the one place the scanner reads strictly less than Range.
		return nil
	}
	tail := s.leafImage(s.cur, len(s.cur.addrs)-1)
	n := bufCount(tail)
	if n > 0 && bufLeafKey(tail, n-1) > s.hi {
		return nil
	}
	if nxt := bufNextLeaf(tail); nxt >= 0 {
		g := &leafGroup{addrs: []int64{nxt}}
		if err := s.dispatch(g); err != nil {
			return err
		}
		s.next = g
	}
	return nil
}

// openLeaf positions the scanner on the next leaf, crossing group
// boundaries as needed.
func (s *Scanner) openLeaf() error {
	first := false
	if !s.started {
		s.started = true
		first = true
		if s.cur == nil {
			s.done = true
			return nil
		}
		if err := s.joinGroup(s.cur); err != nil {
			return err
		}
		s.slot = 0
		if err := s.scheduleNext(); err != nil {
			return err
		}
	} else {
		s.slot++
		if s.slot >= len(s.cur.addrs) {
			s.retire(s.cur)
			s.cur, s.next = s.next, nil
			if s.cur == nil {
				s.done = true
				return nil
			}
			if err := s.joinGroup(s.cur); err != nil {
				return err
			}
			s.slot = 0
			if err := s.scheduleNext(); err != nil {
				return err
			}
		}
	}
	s.buf = s.leafImage(s.cur, s.slot)
	s.cnt = bufCount(s.buf)
	s.pos = 0
	if first {
		s.pos = bufSearchLeafSlot(s.buf, s.lo)
	}
	return nil
}

// Next returns the next record in key order; ok is false once every key in
// [lo, hi] has been returned.
func (s *Scanner) Next() (record.Record, bool, error) {
	var zero record.Record
	if s.closed {
		return zero, false, stream.ErrClosed
	}
	if s.err != nil {
		return zero, false, s.err
	}
	for !s.done {
		if s.buf == nil {
			if err := s.openLeaf(); err != nil {
				s.err = err
				return zero, false, err
			}
			continue
		}
		if s.pos >= s.cnt {
			s.buf = nil
			continue
		}
		k := bufLeafKey(s.buf, s.pos)
		if k > s.hi {
			s.done = true
			break
		}
		v := bufLeafVal(s.buf, s.pos)
		s.pos++
		return record.Record{Key: k, Val: v}, true, nil
	}
	return zero, false, nil
}

// Close joins any in-flight reads (the engine writes into the scanner's
// frames until they complete) and releases every frame and pin. It is
// idempotent and safe after errors.
func (s *Scanner) Close() {
	if s.closed {
		return
	}
	s.closed = true
	for _, g := range []*leafGroup{s.cur, s.next} {
		if g == nil {
			continue
		}
		if g.join != nil {
			g.join()
			g.join = nil
		}
		s.retire(g)
	}
	s.cur, s.next = nil, nil
	s.buf = nil
	if s.frames != nil {
		pdm.ReleaseAll(s.frames)
		s.frames, s.freeFr = nil, nil
	}
}

// RangePrefetch is Range with the Scanner underneath: fn observes the same
// records in the same order as Range(lo, hi, fn), with leaf reads batched
// and kept in flight according to opts. It needs 2×Width frames from pool
// for the scan's lifetime.
func (t *Tree) RangePrefetch(pool *pdm.Pool, lo, hi uint64, opts *ScanOptions, fn func(k, v uint64) error) error {
	s, err := t.NewScanner(pool, lo, hi, opts)
	if err != nil {
		return err
	}
	defer s.Close()
	return stream.Drain[record.Record](s, func(r record.Record) error { return fn(r.Key, r.Val) })
}
