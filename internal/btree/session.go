package btree

import (
	"fmt"

	"em/internal/cache"
	"em/internal/index"
	"em/internal/pdm"
)

// The tree and its sessions present the module-wide serving contract.
var (
	_ index.Index   = (*Tree)(nil)
	_ index.Session = (*Session)(nil)
)

// Session is a read-only query handle over a shared tree. Each session owns
// a private buffer manager and a private frame budget, reserved from the
// caller's pool up front the way em.SortIndex reserves its loader's budget,
// so G sessions on G goroutines serve a mixed point/range workload against
// one tree — the volume's per-disk engine overlaps their transfers — while
// the memory bound M still holds and no session can starve another
// mid-query. Sessions never dirty a page and never touch the tree's own
// cache, so they cannot evict a writer's pinned working set. Two
// constraints: sessions must not overlap tree mutations (Insert, Delete,
// BulkLoad — the usual reader rule), and NewSession itself is a Tree
// method like any other — it flushes the tree's own cache — so open
// sessions from the tree owner's goroutine and hand them out; only the
// Session methods are safe to run concurrently, each session from its own
// goroutine.
type Session struct {
	t       *Tree
	cache   *cache.Cache
	pool    *pdm.Pool    // private pool serving the cache and scanners
	reserve []*pdm.Frame // frames held from the caller's pool
	width   int
}

// NewSession opens a read session at the index.Index signature: the budget
// is reserved from the pool the tree was created on (or last rehomed to),
// out-of-range arguments select the tree's own defaults — cacheFrames < 3
// means the tree's cache capacity, width < 1 its configured striping — so
// NewSession(0, 0) is always valid. NewSessionOn keeps the explicit-pool
// form for callers that charge sessions to a budget of their own.
func (t *Tree) NewSession(cacheFrames, width int) (index.Session, error) {
	if cacheFrames < 3 {
		cacheFrames = t.cache.Capacity()
	}
	if width < 1 {
		width = t.width
	}
	var s *Session
	err := t.gate.Do(func() (err error) {
		s, err = t.NewSessionOn(t.pool, cacheFrames, width)
		return err
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// NewSessionOn opens a read session whose buffer manager holds cacheFrames
// pages and whose scanners may keep up to width leaf reads in flight
// (width < 1 selects the volume's disk count). The session's whole budget —
// cacheFrames + 2×width frames — is reserved from pool immediately and
// returned by Close, so admission failures surface at open, not mid-query.
func (t *Tree) NewSessionOn(pool *pdm.Pool, cacheFrames, width int) (*Session, error) {
	if cacheFrames < 3 {
		return nil, fmt.Errorf("btree: session cache needs >= 3 frames, got %d", cacheFrames)
	}
	if width < 1 {
		width = t.vol.Disks()
	}
	// A session reads through its own buffer manager, so the volume — not
	// the tree's cache — must hold the current tree: flush any node still
	// dirty from construction or updates before the first session descent.
	if err := t.cache.Flush(); err != nil {
		return nil, err
	}
	budget := cacheFrames + 2*width
	reserve, err := pool.AllocN(budget)
	if err != nil {
		return nil, err
	}
	priv := pdm.NewPool(t.vol.BlockBytes(), budget)
	c, err := cache.New(t.vol, priv, cacheFrames)
	if err != nil {
		pdm.ReleaseAll(reserve)
		return nil, err
	}
	return &Session{t: t, cache: c, pool: priv, reserve: reserve, width: width}, nil
}

// Tree returns the tree the session reads.
func (s *Session) Tree() *Tree { return s.t }

// CacheStats exposes the session's private buffer-manager counters.
func (s *Session) CacheStats() cache.CacheStats { return s.cache.Stats() }

// Get is Tree.Get through the session's cache.
func (s *Session) Get(key uint64) (uint64, bool, error) {
	return s.t.getWith(s.cache, key)
}

// GetBatch is Tree.GetBatch through the session's cache: sorted, deduped,
// level-batched lookups at reads never above a loop of session Gets.
func (s *Session) GetBatch(keys []uint64) ([]uint64, []bool, error) {
	return s.t.getBatch(s.cache, keys)
}

// NewScanner opens a prefetched range scan served from the session's cache
// and frame budget. A nil opts — or a width above the session's — scans at
// the session's width, which is what the budget reserves for.
func (s *Session) NewScanner(lo, hi uint64, opts *ScanOptions) (*Scanner, error) {
	w := opts.width(s.width)
	if w > s.width {
		w = s.width
	}
	return s.t.newScanner(s.cache, s.pool, lo, hi, &ScanOptions{Width: w})
}

// Warm is Tree.Warm into the session's private cache.
func (s *Session) Warm() error { return s.t.warmWith(s.cache) }

// Close releases the session's cache and returns its reserved frames to
// the pool it was opened on. The cache holds only clean pages, so nothing
// is written back.
func (s *Session) Close() error {
	err := s.cache.Close()
	pdm.ReleaseAll(s.reserve)
	s.reserve = nil
	return err
}
