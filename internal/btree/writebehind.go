package btree

import (
	"em/internal/pdm"
)

// leafBatch is the bulk loader's write-behind leaf path. Leaves are written
// exactly once and never revisited, so they need none of the buffer
// manager's machinery: each leaf is packed directly into a pool frame, and
// every width completed leaves are flushed as one parallel batch through
// Volume.BatchWriteAsync while the loader packs the next group — the
// survey's full D-disk write parallelism applied to index construction.
//
// The batch holds 2×width pool frames (one group being packed, one in
// flight, the same double-buffer charge stream.AsyncWriter levies). Each
// leaf still costs exactly one block write, so counted write I/Os are
// identical to the cache path's; only the batching — and therefore the
// parallel-step count and the wall clock — changes.
type leafBatch struct {
	vol      *pdm.Volume
	frames   []*pdm.Frame // 2*width; nil after close/abort
	cur      []*pdm.Frame // group being packed
	flushing []*pdm.Frame // group in flight
	addrs    []int64      // block addresses of cur's completed+current leaves
	n        int          // completed leaves in cur
	width    int
	join     func() error // in-flight batch write; nil when none
	buf      []byte       // block image of the leaf under construction
}

func newLeafBatch(vol *pdm.Volume, pool *pdm.Pool, width int) (*leafBatch, error) {
	frames, err := pool.AllocN(2 * width)
	if err != nil {
		return nil, err
	}
	return &leafBatch{
		vol:      vol,
		frames:   frames,
		cur:      frames[:width],
		flushing: frames[width:],
		addrs:    make([]int64, 0, width),
		width:    width,
	}, nil
}

// start begins packing a new leaf destined for block addr in the next free
// frame of the current group.
func (w *leafBatch) start(addr int64) {
	w.buf = w.cur[w.n].Buf
	bufInitNode(w.buf, true)
	w.addrs = append(w.addrs, addr)
}

// put stores the i-th key/value pair of the current leaf.
func (w *leafBatch) put(i int, k, v uint64) { bufSetLeafKV(w.buf, i, k, v) }

// finish completes the current leaf with count records and its forward
// sibling pointer (next < 0 for the last leaf), dispatching the group once
// it is full. The successor's address is known before the leaf is sealed —
// the loader pre-allocates it — so no leaf is ever revisited to patch its
// pointer, which is what lets the whole level stream out write-behind.
func (w *leafBatch) finish(count int, next int64) error {
	bufSetCount(w.buf, count)
	if next >= 0 {
		bufSetNextLeaf(w.buf, next)
	}
	w.n++
	if w.n == w.width {
		return w.dispatch()
	}
	return nil
}

// dispatch joins the previous in-flight batch, hands the current group to
// the volume's async write engine, and swaps the double buffers. Addresses
// and buffers are copied out before the swap, so the engine owns them until
// the next join while the loader refills the other group.
func (w *leafBatch) dispatch() error {
	if err := w.joinFlush(); err != nil {
		return err
	}
	addrs := make([]int64, w.n)
	bufs := make([][]byte, w.n)
	for i := 0; i < w.n; i++ {
		addrs[i] = w.addrs[i]
		bufs[i] = w.cur[i].Buf
	}
	w.join = w.vol.BatchWriteAsync(addrs, bufs)
	w.cur, w.flushing = w.flushing, w.cur
	w.addrs = w.addrs[:0]
	w.n = 0
	return nil
}

// flush dispatches any completed leaves still buffered. The write stays in
// flight — close joins it — so the loader can build internal levels while
// the last leaf group is still travelling to the disks.
func (w *leafBatch) flush() error {
	if w.n > 0 {
		return w.dispatch()
	}
	return nil
}

// joinFlush waits for the in-flight batch, if any, and reports its error.
func (w *leafBatch) joinFlush() error {
	if w.join == nil {
		return nil
	}
	err := w.join()
	w.join = nil
	return err
}

// close joins the in-flight batch and releases the frames. Every completed
// leaf is durable once close returns nil.
func (w *leafBatch) close() error {
	err := w.joinFlush()
	pdm.ReleaseAll(w.frames)
	w.frames = nil
	return err
}

// abort is the failure-path close: it joins any in-flight write — the
// engine scribbles into our frames until the join returns, and a dispatched
// write must complete, not vanish — then returns the frames. Errors are
// ignored; the caller is already unwinding.
func (w *leafBatch) abort() {
	if w.join != nil {
		w.join()
		w.join = nil
	}
	if w.frames != nil {
		pdm.ReleaseAll(w.frames)
		w.frames = nil
	}
}
