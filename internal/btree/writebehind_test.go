package btree

import (
	"math/rand"
	"testing"
	"time"

	"em/internal/pdm"
	"em/internal/record"
	"em/internal/stream"
)

// forEachBackend runs fn against a memory-backed and a file-backed volume
// of identical shape, mirroring the pdm and stream harnesses.
func forEachBackend(t *testing.T, cfg pdm.Config, fn func(t *testing.T, vol *pdm.Volume, pool *pdm.Pool)) {
	t.Helper()
	t.Run("mem", func(t *testing.T) {
		vol := pdm.MustVolume(cfg)
		defer vol.Close()
		fn(t, vol, pdm.PoolFor(vol))
	})
	t.Run("file", func(t *testing.T) {
		c := cfg
		c.Dir = t.TempDir()
		vol := pdm.MustVolume(c)
		defer func() {
			if err := vol.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}()
		fn(t, vol, pdm.PoolFor(vol))
	})
}

// loadAndCollect bulk-loads vs on a fresh cfg-shaped volume, closes the
// tree, and returns the key/value pairs it holds and the Stats the load plus
// close charged.
func loadAndCollect(t *testing.T, cfg pdm.Config, vs []record.Record, cacheFrames int, opts *BulkLoadOptions) ([][2]uint64, pdm.Stats) {
	t.Helper()
	vol := pdm.MustVolume(cfg)
	defer vol.Close()
	pool := pdm.PoolFor(vol)
	f, err := stream.FromSlice(vol, pool, record.RecordCodec{}, vs)
	if err != nil {
		t.Fatal(err)
	}
	vol.Stats().Reset()
	tr, err := BulkLoad(vol, pool, cacheFrames, f, opts)
	if err != nil {
		t.Fatalf("opts=%+v: %v", opts, err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	st := vol.Stats().Snapshot()
	// Reopen a read path over the same volume to verify what actually
	// reached the disks — not what a cache might still be holding.
	tr2, err := New(vol, pool, cacheFrames)
	if err != nil {
		t.Fatal(err)
	}
	tr2.root, tr2.height, tr2.n = tr.root, tr.height, tr.n
	var kvs [][2]uint64
	if err := tr2.Range(0, ^uint64(0), func(k, v uint64) error {
		kvs = append(kvs, [2]uint64{k, v})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := tr2.Close(); err != nil {
		t.Fatal(err)
	}
	if pool.InUse() != 0 {
		t.Fatalf("opts=%+v: leaked %d frames", opts, pool.InUse())
	}
	return kvs, st
}

// TestBulkLoadWriteBehindMatchesSync bulk-loads the same sorted file through
// the cache leaf path and the write-behind leaf path at equal width and
// asserts identical trees and identical counted reads and writes — batching
// the leaf flushes changes parallel steps and the wall clock, never the
// transfer counts or the index. Parallel steps must not increase.
func TestBulkLoadWriteBehindMatchesSync(t *testing.T) {
	cfg := pdm.Config{BlockBytes: 256, MemBlocks: 32, Disks: 4}
	for _, width := range []int{1, 2, 4} {
		for _, n := range []int{0, 1, 100, 3000} {
			vs := sortedRecords(n)
			sKVs, sSt := loadAndCollect(t, cfg, vs, 8, &BulkLoadOptions{Width: width})
			wKVs, wSt := loadAndCollect(t, cfg, vs, 8, &BulkLoadOptions{Width: width, Async: true, WriteBehind: true})
			if len(sKVs) != n || len(wKVs) != n {
				t.Fatalf("w=%d n=%d: lengths sync=%d wb=%d", width, n, len(sKVs), len(wKVs))
			}
			for i := range sKVs {
				if sKVs[i] != wKVs[i] {
					t.Fatalf("w=%d n=%d: entry %d differs: %v vs %v", width, n, i, sKVs[i], wKVs[i])
				}
			}
			if sSt.Reads != wSt.Reads || sSt.Writes != wSt.Writes {
				t.Fatalf("w=%d n=%d: transfer counts diverge: sync %+v wb %+v", width, n, sSt, wSt)
			}
			if wSt.Steps > sSt.Steps {
				t.Fatalf("w=%d n=%d: write-behind costs more steps (%d) than sync (%d)",
					width, n, wSt.Steps, sSt.Steps)
			}
		}
	}
}

// TestWriteBehindEvictionRace is the cache/write-behind interaction
// property: while a batched leaf flush is in flight on the worker engine,
// the internal-level build evicts dirty pages through the same volume. No
// dirty page may be lost (every key must read back from disk) and none may
// be written twice (total writes must equal the cache path's, which writes
// each node exactly once). Runs on both backends; `make ci` runs it under
// the race detector.
func TestWriteBehindEvictionRace(t *testing.T) {
	cfg := pdm.Config{BlockBytes: 256, MemBlocks: 40, Disks: 4, DiskLatency: 100 * time.Microsecond}
	rng := rand.New(rand.NewSource(0xF11))
	sizes := []int{1, 500, 2000}
	for i := 0; i < 3; i++ {
		sizes = append(sizes, 1+rng.Intn(4000))
	}
	for _, n := range sizes {
		vs := sortedRecords(n)
		var want [][2]uint64
		var wantWrites uint64
		forEachBackend(t, cfg, func(t *testing.T, vol *pdm.Volume, pool *pdm.Pool) {
			f, err := stream.FromSlice(vol, pool, record.RecordCodec{}, vs)
			if err != nil {
				t.Fatal(err)
			}
			vol.Stats().Reset()
			// The minimum legal cache keeps the internal build evicting
			// constantly while leaf batches are still travelling.
			tr, err := BulkLoad(vol, pool, 3, f, &BulkLoadOptions{Width: 4, Async: true, WriteBehind: true})
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.Close(); err != nil {
				t.Fatal(err)
			}
			writes := vol.Stats().Snapshot().Writes
			var kvs [][2]uint64
			if err := tr.Range(0, ^uint64(0), func(k, v uint64) error {
				kvs = append(kvs, [2]uint64{k, v})
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			// The verification Range repopulated the flushed cache; close
			// again to hand its frames back.
			if err := tr.Close(); err != nil {
				t.Fatal(err)
			}
			if len(kvs) != n {
				t.Fatalf("n=%d: %d records survived the race", n, len(kvs))
			}
			for i, kv := range kvs {
				if kv[0] != vs[i].Key || kv[1] != vs[i].Val {
					t.Fatalf("n=%d: record %d corrupted: %v", n, i, kv)
				}
			}
			if want == nil {
				want, wantWrites = kvs, writes
				// The cache path on a latency-free volume is the
				// write-exactly-once reference.
				ref := pdm.Config{BlockBytes: cfg.BlockBytes, MemBlocks: cfg.MemBlocks, Disks: cfg.Disks}
				_, refSt := loadAndCollect(t, ref, vs, 3, &BulkLoadOptions{Width: 4})
				if writes != refSt.Writes {
					t.Fatalf("n=%d: write-behind wrote %d blocks, cache path writes %d (lost or doubled page)",
						n, writes, refSt.Writes)
				}
			} else if writes != wantWrites {
				t.Fatalf("n=%d: backends disagree on writes: %d vs %d", n, writes, wantWrites)
			}
			if pool.InUse() != 0 {
				t.Fatalf("n=%d: leaked %d frames", n, pool.InUse())
			}
		})
	}
}
