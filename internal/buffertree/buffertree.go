// Package buffertree implements Arge's buffer tree, the survey's batched
// alternative to the B-tree: updates are appended to per-node buffers and
// pushed down the tree one block at a time, so N inserts and deletes cost
// Θ((N/B)·log_m(N/B)) I/Os in total — an amortised O((1/B)·log_m n) per
// operation, a factor ≈ B/log better than a B-tree's Θ(log_B N) per insert
// (experiment T6).
//
// This implementation is an online distribution tree: every node owns an
// on-disk buffer of timestamped operations; when a buffer exceeds its
// capacity it is emptied into the node's children (splitting leaves as the
// tree deepens). The tree is consumed two ways:
//
//   - Seal drains every buffer and emits the final sorted key/value file —
//     the classic offline use driving batched problems (sorting, sweeps,
//     bulk index construction).
//   - SealOps drains to a sorted run of resolved operations with delete
//     tombstones kept, plus a sparse per-block key index (Run). This is the
//     write-front handover used by the store: the run merges against the
//     current B-tree generation, tombstones cancelling records, while the
//     next front keeps absorbing updates.
//
// For read-your-writes serving, Probe answers a point lookup against the
// buffered (unsealed or frozen) tree in O(path buffer blocks) I/Os. It
// relies on the push-down invariant: along any root-to-leaf path, every
// operation in a node's buffer is newer than every operation buffered in
// its descendants (ops enter at the root in sequence order and a flush
// always moves a node's entire buffer down), so the shallowest hit is the
// newest operation for the key. Operations sitting in the root's buffer
// since its last flush are mirrored in memory — faithful to Arge's model,
// where the root buffer is the tree's internal-memory block.
package buffertree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"em/internal/pdm"
	"em/internal/record"
	"em/internal/stream"
)

// ErrSealed reports an update to a sealed or frozen tree.
var ErrSealed = errors.New("buffertree: tree already sealed")

// Op is one buffered operation. Seq orders operations on the same key
// across the tree (and across successive write fronts via Config.StartSeq);
// its low bit marks deletions.
type Op struct {
	Key uint64
	Val uint64
	Seq uint64 // (sequence << 1) | delete-bit
}

// Deleted reports whether the operation is a delete tombstone.
func (o Op) Deleted() bool { return o.Seq&1 == 1 }

// opCodec encodes Op in 24 bytes.
type opCodec struct{}

func (opCodec) Size() int { return 24 }
func (opCodec) Encode(b []byte, o Op) {
	binary.LittleEndian.PutUint64(b[0:8], o.Key)
	binary.LittleEndian.PutUint64(b[8:16], o.Val)
	binary.LittleEndian.PutUint64(b[16:24], o.Seq)
}
func (opCodec) Decode(b []byte) Op {
	return Op{
		Key: binary.LittleEndian.Uint64(b[0:8]),
		Val: binary.LittleEndian.Uint64(b[8:16]),
		Seq: binary.LittleEndian.Uint64(b[16:24]),
	}
}

// Config tunes the tree's shape.
type Config struct {
	// Fanout is the number of children per internal node (the survey's
	// Θ(m)). Zero picks a value from the pool size.
	Fanout int
	// BufferRecords is each node's buffer capacity (the survey's Θ(M)).
	// Zero picks a value from the pool size.
	BufferRecords int
	// StartSeq seeds the operation sequence counter. A store opening a
	// fresh write front seeds it with the previous front's LastSeq so that
	// last-writer-wins resolution stays correct across front generations.
	StartSeq uint64
}

// node is one buffer-tree node. splitters and children are empty for
// leaves. The buffer file lives on disk; only this constant-size header is
// in memory (as the survey assumes for the O(N/B)-node catalog).
type node struct {
	buf       *stream.File[Op]
	splitters []uint64
	children  []*node
}

// Tree is a buffer tree accepting Insert and Delete until Freeze or Seal.
type Tree struct {
	vol    *pdm.Volume
	pool   *pdm.Pool
	cfg    Config
	root   *node
	rootW  *stream.Writer[Op]
	seq    uint64
	frozen bool
	sealed bool
	broken error // sticky: a failed flush leaves buffers duplicated below
	ops    int64
	// mirror holds the newest operation per key among the ops appended to
	// the root's buffer since its last flush (the root buffer is internal
	// memory in Arge's model). It serves Probe and CollectRange without
	// reading the root's buffer file, which the open root writer mutates.
	mirror map[uint64]Op
}

// New creates an empty buffer tree.
func New(vol *pdm.Volume, pool *pdm.Pool, cfg Config) (*Tree, error) {
	if cfg.Fanout == 0 {
		cfg.Fanout = pool.Capacity() - 4
	}
	if cfg.BufferRecords == 0 {
		per := vol.BlockBytes() / (opCodec{}).Size()
		cfg.BufferRecords = (pool.Capacity() - 4) * per
	}
	if cfg.Fanout < 2 {
		return nil, fmt.Errorf("buffertree: fanout must be >= 2, got %d", cfg.Fanout)
	}
	if cfg.BufferRecords < 2 {
		return nil, fmt.Errorf("buffertree: buffer must hold >= 2 records, got %d", cfg.BufferRecords)
	}
	t := &Tree{vol: vol, pool: pool, cfg: cfg, seq: cfg.StartSeq, mirror: make(map[uint64]Op)}
	t.root = &node{buf: stream.NewFile[Op](vol, opCodec{})}
	w, err := stream.NewWriter(t.root.buf, pool)
	if err != nil {
		return nil, err
	}
	t.rootW = w
	return t, nil
}

// Ops returns the number of operations accepted so far.
func (t *Tree) Ops() int64 { return t.ops }

// LastSeq returns the current sequence counter, the StartSeq for the next
// front in a generational store.
func (t *Tree) LastSeq() uint64 { return t.seq }

// Insert buffers an insertion of (key, val). Later operations on the same
// key win.
func (t *Tree) Insert(key, val uint64) error {
	return t.push(Op{Key: key, Val: val, Seq: t.nextSeq(false)})
}

// Delete buffers a deletion of key. Deleting an absent key is a no-op at
// seal time.
func (t *Tree) Delete(key uint64) error {
	return t.push(Op{Key: key, Seq: t.nextSeq(true)})
}

func (t *Tree) nextSeq(del bool) uint64 {
	t.seq++
	s := t.seq << 1
	if del {
		s |= 1
	}
	return s
}

func (t *Tree) push(o Op) error {
	if t.frozen || t.sealed {
		return ErrSealed
	}
	if t.broken != nil {
		return t.broken
	}
	if err := t.rootW.Append(o); err != nil {
		t.broken = err
		return err
	}
	t.ops++
	t.mirror[o.Key] = o // seqs are monotone, so overwrite is last-writer-wins
	if t.root.buf.Len() >= int64(t.cfg.BufferRecords) {
		// Re-open the root writer around the flush. Any failure below
		// poisons the tree for further updates: a partial flush may leave
		// ops duplicated between a node and its children (harmless for
		// probing and draining, which resolve by Seq, but not for going on
		// accepting writes through a writer of unknown state).
		if err := t.rootW.Close(); err != nil {
			t.rootW = nil
			t.broken = err
			return err
		}
		t.rootW = nil
		err := t.flush(t.root)
		if t.root.buf.Len() == 0 {
			// The root's buffer went down (even if a deeper flush then
			// failed); the mirror no longer covers anything.
			clear(t.mirror)
		}
		if err != nil {
			t.broken = err
			return err
		}
		w, err := stream.NewWriter(t.root.buf, t.pool)
		if err != nil {
			t.broken = err
			return err
		}
		t.rootW = w
	}
	return nil
}

// flush empties n's buffer into its children, splitting n if it is a leaf.
// Children that overflow are flushed recursively.
func (t *Tree) flush(n *node) error {
	if n.buf.Len() == 0 {
		return nil
	}
	if len(n.children) == 0 {
		if err := t.splitLeaf(n); err != nil {
			return err
		}
		// splitLeaf distributed the buffer; nothing left to flush here.
		return nil
	}
	if err := t.distribute(n); err != nil {
		return err
	}
	for _, c := range n.children {
		if c.buf.Len() >= int64(t.cfg.BufferRecords) {
			if err := t.flush(c); err != nil {
				return err
			}
		}
	}
	return nil
}

// splitLeaf converts an overflowing leaf into an internal node: its buffer
// is loaded (it holds Θ(M) records, which fit in memory by construction),
// sorted, and cut into fanout children by evenly spaced splitters. The old
// buffer is replaced only after the partitioned copies are durable, so a
// mid-pass failure leaves every op still reachable (duplicated at worst)
// and no block unreferenced.
func (t *Tree) splitLeaf(n *node) error {
	ops, err := stream.ToSlice(n.buf, t.pool)
	if err != nil {
		return err
	}
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].Key != ops[j].Key {
			return ops[i].Key < ops[j].Key
		}
		return ops[i].Seq < ops[j].Seq
	})
	f := t.cfg.Fanout
	n.splitters = make([]uint64, 0, f-1)
	for i := 1; i < f; i++ {
		n.splitters = append(n.splitters, ops[i*len(ops)/f].Key)
	}
	// Deduplicate splitters (heavy duplicate keys); fewer children result.
	n.splitters = dedupe(n.splitters)
	n.children = make([]*node, len(n.splitters)+1)
	for i := range n.children {
		n.children[i] = &node{buf: stream.NewFile[Op](t.vol, opCodec{})}
	}
	if err := t.writePartitioned(ops, n); err != nil {
		return err
	}
	old := n.buf
	n.buf = stream.NewFile[Op](t.vol, opCodec{})
	old.Release()
	return nil
}

func dedupe(xs []uint64) []uint64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// childIndex returns which child of n receives key k.
func childIndex(n *node, k uint64) int {
	return sort.Search(len(n.splitters), func(i int) bool { return k < n.splitters[i] })
}

// distribute streams n's buffer into its children's buffers and empties it.
// Every child writer is closed on every path — a Close failure must not
// strand the remaining writers' frames.
func (t *Tree) distribute(n *node) error {
	writers := make([]*stream.Writer[Op], len(n.children))
	closeAll := func() error {
		var first error
		for i, w := range writers {
			if w == nil {
				continue
			}
			writers[i] = nil
			if err := w.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	for i, c := range n.children {
		w, err := stream.NewWriter(c.buf, t.pool)
		if err != nil {
			closeAll()
			return err
		}
		writers[i] = w
	}
	err := stream.ForEach(n.buf, t.pool, func(o Op) error {
		return writers[childIndex(n, o.Key)].Append(o)
	})
	if cerr := closeAll(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	old := n.buf
	n.buf = stream.NewFile[Op](t.vol, opCodec{})
	old.Release()
	return nil
}

// writePartitioned appends in-memory ops to the children of n.
func (t *Tree) writePartitioned(ops []Op, n *node) error {
	cur := -1
	var w *stream.Writer[Op]
	defer func() {
		if w != nil {
			w.Close()
		}
	}()
	for _, o := range ops {
		ci := childIndex(n, o.Key)
		if ci != cur {
			if w != nil {
				if err := w.Close(); err != nil {
					w = nil
					return err
				}
			}
			var err error
			w, err = stream.NewWriter(n.children[ci].buf, t.pool)
			if err != nil {
				w = nil
				return err
			}
			cur = ci
		}
		if err := w.Append(o); err != nil {
			return err
		}
	}
	if w != nil {
		err := w.Close()
		w = nil
		return err
	}
	return nil
}

// Freeze stops the tree from accepting updates but keeps it probe-able: it
// closes the root writer (returning its frames) while every buffer —
// including the root mirror — stays in place. A store freezes the old
// front at swap time, while it still holds the writers' lock, so the
// background drain never races a writer over the root buffer's tail block.
// Freeze is idempotent.
func (t *Tree) Freeze() error {
	if t.frozen {
		return t.broken
	}
	t.frozen = true
	if t.rootW != nil {
		err := t.rootW.Close()
		t.rootW = nil
		if err != nil {
			t.broken = err
			return err
		}
	}
	return t.broken
}

// Probe answers a point lookup against the buffered tree: the newest
// operation for key, or ok=false if no operation mentions it. It costs at
// most the buffer blocks along one root-to-leaf path (the root's share is
// answered from the in-memory mirror). By the push-down invariant — ops
// only ever move down, and a flush moves a node's whole buffer — the
// shallowest node with a hit holds the newest operation.
//
// Probe is read-only and safe to call concurrently with other probes and
// CollectRange, but not with updates or a drain; a store interleaves them
// under its reader/writer lock.
func (t *Tree) Probe(key uint64) (Op, bool, error) {
	if o, ok := t.mirror[key]; ok {
		return o, true, nil
	}
	n := t.root
	for len(n.children) > 0 {
		n = n.children[childIndex(n, key)]
		var best Op
		found := false
		err := stream.ForEach(n.buf, t.pool, func(o Op) error {
			if o.Key == key && (!found || o.Seq > best.Seq) {
				best, found = o, true
			}
			return nil
		})
		if err != nil {
			return Op{}, false, err
		}
		if found {
			return best, true, nil
		}
	}
	return Op{}, false, nil
}

// CollectRange returns the resolved newest operation per key for every
// buffered key in [lo, hi], sorted by key, tombstones included. It reads
// every non-root buffer (the root's share comes from the mirror); the
// result is bounded by the tree's buffered op count, which a store keeps
// under its front threshold. Like Probe it is read-only.
func (t *Tree) CollectRange(lo, hi uint64) ([]Op, error) {
	var ops []Op
	for k, o := range t.mirror {
		if k >= lo && k <= hi {
			ops = append(ops, o)
		}
	}
	var walk func(n *node) error
	walk = func(n *node) error {
		for _, c := range n.children {
			err := stream.ForEach(c.buf, t.pool, func(o Op) error {
				if o.Key >= lo && o.Key <= hi {
					ops = append(ops, o)
				}
				return nil
			})
			if err != nil {
				return err
			}
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		return nil, err
	}
	var out []Op
	if err := resolveOps(ops, func(o Op) error {
		out = append(out, o)
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// Seal drains every buffer and returns the final key/value pairs as a file
// sorted by key, with deletions applied and the latest operation per key
// winning. The tree cannot accept further updates. On success the tree's
// buffer blocks are released; on failure the partial output is released,
// the drain's frames are returned, and the buffers stay intact, so the
// caller's Pool.Free is exactly restored and Seal may be retried.
func (t *Tree) Seal() (*stream.File[record.Record], error) {
	if t.sealed {
		return nil, ErrSealed
	}
	if err := t.Freeze(); err != nil {
		return nil, err
	}
	out := stream.NewFile[record.Record](t.vol, record.RecordCodec{})
	w, err := stream.NewWriter(out, t.pool)
	if err != nil {
		return nil, err
	}
	err = t.drainAll(func(leafOps []Op) error {
		return resolveOps(leafOps, func(o Op) error {
			if o.Deleted() {
				return nil
			}
			return w.Append(record.Record{Key: o.Key, Val: o.Val})
		})
	})
	if err == nil {
		err = w.Close()
	} else {
		w.Close()
	}
	if err != nil {
		out.Release()
		return nil, err
	}
	t.sealed = true
	t.ReleaseBuffers()
	return out, nil
}

// SealOps drains every buffer into a sorted run of resolved operations —
// one op per buffered key, newest by Seq, delete tombstones kept — and
// returns it with a sparse first-key-per-block index for point probes.
// This is the store's write-front handover: the run merges against the
// current B-tree generation (tombstones cancelling records) while probes
// keep being served from it at one read each.
//
// The drain is non-destructive: the tree's buffers remain intact and
// probe-able until the caller releases them with ReleaseBuffers, so a
// store can run SealOps in the background while readers still consult the
// frozen front. On failure the partial run is released and every frame
// returned; the caller may retry.
func (t *Tree) SealOps() (*Run, error) {
	if t.sealed {
		return nil, ErrSealed
	}
	if err := t.Freeze(); err != nil {
		return nil, err
	}
	out := stream.NewFile[Op](t.vol, opCodec{})
	w, err := stream.NewWriter(out, t.pool)
	if err != nil {
		return nil, err
	}
	r := &Run{file: out}
	per := int64(out.PerBlock())
	var cnt int64
	err = t.drainAll(func(leafOps []Op) error {
		return resolveOps(leafOps, func(o Op) error {
			if cnt%per == 0 {
				r.firstKeys = append(r.firstKeys, o.Key)
			}
			cnt++
			return w.Append(o)
		})
	})
	if err == nil {
		err = w.Close()
	} else {
		w.Close()
	}
	if err != nil {
		out.Release()
		return nil, err
	}
	t.sealed = true
	return r, nil
}

// ReleaseBuffers returns every buffer block (and the root writer's frames,
// if the tree was never frozen) to the volume and pool. The tree accepts
// no further operations and must no longer be probed. It is the
// counterpart of SealOps's non-destructive drain, and the teardown path
// for abandoning a tree part-way.
func (t *Tree) ReleaseBuffers() {
	t.frozen, t.sealed = true, true
	if t.rootW != nil {
		t.rootW.Close()
		t.rootW = nil
	}
	clear(t.mirror)
	var walk func(n *node)
	walk = func(n *node) {
		n.buf.Release()
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
}

// drainAll walks the tree in key order, handing each leaf's operations
// (its own buffer plus everything pushed down from ancestors, unresolved
// and unsorted) to emit. Buffers are read, never released — the caller
// decides when the tree's blocks go (ReleaseBuffers).
func (t *Tree) drainAll(emit func([]Op) error) error {
	return t.drainNode(t.root, nil, emit)
}

func (t *Tree) drainNode(n *node, pending []Op, emit func([]Op) error) error {
	ops, err := stream.ToSlice(n.buf, t.pool)
	if err != nil {
		return err
	}
	ops = append(ops, pending...)
	if len(n.children) == 0 {
		return emit(ops)
	}
	// Partition the residue among children and recurse in key order.
	parts := make([][]Op, len(n.children))
	for _, o := range ops {
		ci := childIndex(n, o.Key)
		parts[ci] = append(parts[ci], o)
	}
	for i, c := range n.children {
		if err := t.drainNode(c, parts[i], emit); err != nil {
			return err
		}
	}
	return nil
}

// resolveOps sorts ops by (key, seq) and hands the newest operation per
// key to fn in ascending key order — last-writer-wins by Seq, which holds
// across splitLeaf/distribute repartitioning and across write fronts
// (seqs are globally monotone). A partial flush may leave the same (key,
// seq) op duplicated between a node and its children; duplicates sort
// adjacent and collapse here.
func resolveOps(ops []Op, fn func(Op) error) error {
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].Key != ops[j].Key {
			return ops[i].Key < ops[j].Key
		}
		return ops[i].Seq < ops[j].Seq
	})
	for i := 0; i < len(ops); {
		j := i
		for j < len(ops) && ops[j].Key == ops[i].Key {
			j++
		}
		if err := fn(ops[j-1]); err != nil { // highest sequence number wins
			return err
		}
		i = j
	}
	return nil
}
