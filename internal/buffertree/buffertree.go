// Package buffertree implements Arge's buffer tree, the survey's batched
// alternative to the B-tree: updates are appended to per-node buffers and
// pushed down the tree one block at a time, so N inserts and deletes cost
// Θ((N/B)·log_m(N/B)) I/Os in total — an amortised O((1/B)·log_m n) per
// operation, a factor ≈ B/log better than a B-tree's Θ(log_B N) per insert
// (experiment T6).
//
// This implementation is an online distribution tree: every node owns an
// on-disk buffer of timestamped operations; when a buffer exceeds its
// capacity it is emptied into the node's children (splitting leaves as the
// tree deepens). Queries are answered after Seal, which drains every buffer
// and emits the final sorted key/value file — the classic way the buffer
// tree is used to drive batched problems (sorting, sweeps, and bulk index
// construction).
package buffertree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"em/internal/pdm"
	"em/internal/record"
	"em/internal/stream"
)

// ErrSealed reports an update to a sealed tree.
var ErrSealed = errors.New("buffertree: tree already sealed")

// op is one buffered operation. Seq orders operations on the same key; Del
// marks deletions.
type op struct {
	Key uint64
	Val uint64
	Seq uint64 // (sequence << 1) | delete-bit
}

func (o op) del() bool { return o.Seq&1 == 1 }

// opCodec encodes op in 24 bytes.
type opCodec struct{}

func (opCodec) Size() int { return 24 }
func (opCodec) Encode(b []byte, o op) {
	binary.LittleEndian.PutUint64(b[0:8], o.Key)
	binary.LittleEndian.PutUint64(b[8:16], o.Val)
	binary.LittleEndian.PutUint64(b[16:24], o.Seq)
}
func (opCodec) Decode(b []byte) op {
	return op{
		Key: binary.LittleEndian.Uint64(b[0:8]),
		Val: binary.LittleEndian.Uint64(b[8:16]),
		Seq: binary.LittleEndian.Uint64(b[16:24]),
	}
}

// Config tunes the tree's shape.
type Config struct {
	// Fanout is the number of children per internal node (the survey's
	// Θ(m)). Zero picks a value from the pool size.
	Fanout int
	// BufferRecords is each node's buffer capacity (the survey's Θ(M)).
	// Zero picks a value from the pool size.
	BufferRecords int
}

// node is one buffer-tree node. splitters and children are empty for
// leaves. The buffer file lives on disk; only this constant-size header is
// in memory (as the survey assumes for the O(N/B)-node catalog).
type node struct {
	buf       *stream.File[op]
	splitters []uint64
	children  []*node
}

// Tree is a buffer tree accepting Insert and Delete until Seal.
type Tree struct {
	vol    *pdm.Volume
	pool   *pdm.Pool
	cfg    Config
	root   *node
	rootW  *stream.Writer[op]
	seq    uint64
	sealed bool
	ops    int64
}

// New creates an empty buffer tree.
func New(vol *pdm.Volume, pool *pdm.Pool, cfg Config) (*Tree, error) {
	if cfg.Fanout == 0 {
		cfg.Fanout = pool.Capacity() - 4
	}
	if cfg.BufferRecords == 0 {
		per := vol.BlockBytes() / (opCodec{}).Size()
		cfg.BufferRecords = (pool.Capacity() - 4) * per
	}
	if cfg.Fanout < 2 {
		return nil, fmt.Errorf("buffertree: fanout must be >= 2, got %d", cfg.Fanout)
	}
	if cfg.BufferRecords < 2 {
		return nil, fmt.Errorf("buffertree: buffer must hold >= 2 records, got %d", cfg.BufferRecords)
	}
	t := &Tree{vol: vol, pool: pool, cfg: cfg}
	t.root = &node{buf: stream.NewFile[op](vol, opCodec{})}
	w, err := stream.NewWriter(t.root.buf, pool)
	if err != nil {
		return nil, err
	}
	t.rootW = w
	return t, nil
}

// Ops returns the number of operations accepted so far.
func (t *Tree) Ops() int64 { return t.ops }

// Insert buffers an insertion of (key, val). Later operations on the same
// key win.
func (t *Tree) Insert(key, val uint64) error {
	return t.push(op{Key: key, Val: val, Seq: t.nextSeq(false)})
}

// Delete buffers a deletion of key. Deleting an absent key is a no-op at
// seal time.
func (t *Tree) Delete(key uint64) error {
	return t.push(op{Key: key, Seq: t.nextSeq(true)})
}

func (t *Tree) nextSeq(del bool) uint64 {
	t.seq++
	s := t.seq << 1
	if del {
		s |= 1
	}
	return s
}

func (t *Tree) push(o op) error {
	if t.sealed {
		return ErrSealed
	}
	if err := t.rootW.Append(o); err != nil {
		return err
	}
	t.ops++
	if t.root.buf.Len() >= int64(t.cfg.BufferRecords) {
		// Re-open the root writer around the flush.
		if err := t.rootW.Close(); err != nil {
			return err
		}
		if err := t.flush(t.root); err != nil {
			return err
		}
		w, err := stream.NewWriter(t.root.buf, t.pool)
		if err != nil {
			return err
		}
		t.rootW = w
	}
	return nil
}

// flush empties n's buffer into its children, splitting n if it is a leaf.
// Children that overflow are flushed recursively.
func (t *Tree) flush(n *node) error {
	if n.buf.Len() == 0 {
		return nil
	}
	if len(n.children) == 0 {
		if err := t.splitLeaf(n); err != nil {
			return err
		}
		// splitLeaf distributed the buffer; nothing left to flush here.
		return nil
	}
	if err := t.distribute(n); err != nil {
		return err
	}
	for _, c := range n.children {
		if c.buf.Len() >= int64(t.cfg.BufferRecords) {
			if err := t.flush(c); err != nil {
				return err
			}
		}
	}
	return nil
}

// splitLeaf converts an overflowing leaf into an internal node: its buffer
// is loaded (it holds Θ(M) records, which fit in memory by construction),
// sorted, and cut into fanout children by evenly spaced splitters.
func (t *Tree) splitLeaf(n *node) error {
	ops, err := stream.ToSlice(n.buf, t.pool)
	if err != nil {
		return err
	}
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].Key != ops[j].Key {
			return ops[i].Key < ops[j].Key
		}
		return ops[i].Seq < ops[j].Seq
	})
	f := t.cfg.Fanout
	n.splitters = make([]uint64, 0, f-1)
	for i := 1; i < f; i++ {
		n.splitters = append(n.splitters, ops[i*len(ops)/f].Key)
	}
	// Deduplicate splitters (heavy duplicate keys); fewer children result.
	n.splitters = dedupe(n.splitters)
	n.children = make([]*node, len(n.splitters)+1)
	for i := range n.children {
		n.children[i] = &node{buf: stream.NewFile[op](t.vol, opCodec{})}
	}
	old := n.buf
	n.buf = stream.NewFile[op](t.vol, opCodec{})
	if err := t.writePartitioned(ops, n); err != nil {
		return err
	}
	old.Release()
	return nil
}

func dedupe(xs []uint64) []uint64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// childIndex returns which child of n receives key k.
func childIndex(n *node, k uint64) int {
	return sort.Search(len(n.splitters), func(i int) bool { return k < n.splitters[i] })
}

// distribute streams n's buffer into its children's buffers and empties it.
func (t *Tree) distribute(n *node) error {
	writers := make([]*stream.Writer[op], len(n.children))
	closeAll := func() {
		for _, w := range writers {
			if w != nil {
				w.Close()
			}
		}
	}
	for i, c := range n.children {
		w, err := stream.NewWriter(c.buf, t.pool)
		if err != nil {
			closeAll()
			return err
		}
		writers[i] = w
	}
	err := stream.ForEach(n.buf, t.pool, func(o op) error {
		return writers[childIndex(n, o.Key)].Append(o)
	})
	if err != nil {
		closeAll()
		return err
	}
	for _, w := range writers {
		if err := w.Close(); err != nil {
			return err
		}
	}
	old := n.buf
	n.buf = stream.NewFile[op](t.vol, opCodec{})
	old.Release()
	return nil
}

// writePartitioned appends in-memory ops to the children of n.
func (t *Tree) writePartitioned(ops []op, n *node) error {
	cur := -1
	var w *stream.Writer[op]
	defer func() {
		if w != nil {
			w.Close()
		}
	}()
	for _, o := range ops {
		ci := childIndex(n, o.Key)
		if ci != cur {
			if w != nil {
				if err := w.Close(); err != nil {
					return err
				}
			}
			var err error
			w, err = stream.NewWriter(n.children[ci].buf, t.pool)
			if err != nil {
				w = nil
				return err
			}
			cur = ci
		}
		if err := w.Append(o); err != nil {
			return err
		}
	}
	if w != nil {
		err := w.Close()
		w = nil
		return err
	}
	return nil
}

// Seal drains every buffer and returns the final key/value pairs as a file
// sorted by key, with deletions applied and the latest operation per key
// winning. The tree cannot accept further updates.
func (t *Tree) Seal() (*stream.File[record.Record], error) {
	if t.sealed {
		return nil, ErrSealed
	}
	t.sealed = true
	if err := t.rootW.Close(); err != nil {
		return nil, err
	}
	out := stream.NewFile[record.Record](t.vol, record.RecordCodec{})
	w, err := stream.NewWriter(out, t.pool)
	if err != nil {
		return nil, err
	}
	if err := t.drain(t.root, nil, w); err != nil {
		w.Close()
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// drain empties n and its subtree into w in key order. pending carries ops
// pushed down from ancestors whose buffers were smaller than a full flush.
func (t *Tree) drain(n *node, pending []op, w *stream.Writer[record.Record]) error {
	ops, err := stream.ToSlice(n.buf, t.pool)
	if err != nil {
		return err
	}
	n.buf.Release()
	ops = append(ops, pending...)
	if len(n.children) == 0 {
		return emit(ops, w)
	}
	// Partition the residue among children and recurse in key order.
	parts := make([][]op, len(n.children))
	for _, o := range ops {
		ci := childIndex(n, o.Key)
		parts[ci] = append(parts[ci], o)
	}
	for i, c := range n.children {
		if err := t.drain(c, parts[i], w); err != nil {
			return err
		}
	}
	return nil
}

// emit resolves a leaf's operations and writes surviving records in key
// order.
func emit(ops []op, w *stream.Writer[record.Record]) error {
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].Key != ops[j].Key {
			return ops[i].Key < ops[j].Key
		}
		return ops[i].Seq < ops[j].Seq
	})
	for i := 0; i < len(ops); {
		j := i
		for j < len(ops) && ops[j].Key == ops[i].Key {
			j++
		}
		last := ops[j-1] // highest sequence number wins
		if !last.del() {
			if err := w.Append(record.Record{Key: last.Key, Val: last.Val}); err != nil {
				return err
			}
		}
		i = j
	}
	return nil
}
