package buffertree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"em/internal/btree"
	"em/internal/pdm"
	"em/internal/record"
	"em/internal/stream"
)

func newEnv(t testing.TB) (*pdm.Volume, *pdm.Pool) {
	t.Helper()
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 96, MemBlocks: 16, Disks: 1})
	return vol, pdm.PoolFor(vol)
}

func seal(t *testing.T, tr *Tree) map[uint64]uint64 {
	t.Helper()
	f, err := tr.Seal()
	if err != nil {
		t.Fatal(err)
	}
	out := map[uint64]uint64{}
	var prev uint64
	first := true
	vol := f.Vol()
	pool := pdm.NewPool(vol.BlockBytes(), 4)
	err = stream.ForEach(f, pool, func(r record.Record) error {
		if !first && r.Key <= prev {
			t.Fatalf("seal output not strictly sorted: %d after %d", r.Key, prev)
		}
		prev, first = r.Key, false
		out[r.Key] = r.Val
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestInsertOnly(t *testing.T) {
	vol, pool := newEnv(t)
	tr, err := New(vol, pool, Config{})
	if err != nil {
		t.Fatal(err)
	}
	n := 2000
	for i := 0; i < n; i++ {
		if err := tr.Insert(uint64(i), uint64(i*7)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Ops() != int64(n) {
		t.Fatalf("ops = %d", tr.Ops())
	}
	got := seal(t, tr)
	if len(got) != n {
		t.Fatalf("sealed %d keys, want %d", len(got), n)
	}
	for i := 0; i < n; i++ {
		if got[uint64(i)] != uint64(i*7) {
			t.Fatalf("key %d = %d", i, got[uint64(i)])
		}
	}
	if pool.InUse() != 0 {
		t.Fatalf("leaked %d frames", pool.InUse())
	}
}

func TestOverwriteLatestWins(t *testing.T) {
	vol, pool := newEnv(t)
	tr, _ := New(vol, pool, Config{})
	for round := 0; round < 5; round++ {
		for k := uint64(0); k < 300; k++ {
			tr.Insert(k, uint64(round)*1000+k)
		}
	}
	got := seal(t, tr)
	if len(got) != 300 {
		t.Fatalf("got %d keys", len(got))
	}
	for k := uint64(0); k < 300; k++ {
		if got[k] != 4000+k {
			t.Fatalf("key %d = %d, want %d (last round)", k, got[k], 4000+k)
		}
	}
}

func TestDeletes(t *testing.T) {
	vol, pool := newEnv(t)
	tr, _ := New(vol, pool, Config{})
	for k := uint64(0); k < 1000; k++ {
		tr.Insert(k, k)
	}
	for k := uint64(0); k < 1000; k += 2 {
		tr.Delete(k)
	}
	tr.Delete(5000) // absent key: no-op
	got := seal(t, tr)
	if len(got) != 500 {
		t.Fatalf("got %d keys, want 500", len(got))
	}
	for k := uint64(1); k < 1000; k += 2 {
		if got[k] != k {
			t.Fatalf("odd key %d missing", k)
		}
	}
}

func TestDeleteThenReinsert(t *testing.T) {
	vol, pool := newEnv(t)
	tr, _ := New(vol, pool, Config{})
	tr.Insert(42, 1)
	tr.Delete(42)
	tr.Insert(42, 2)
	got := seal(t, tr)
	if got[42] != 2 {
		t.Fatalf("key 42 = %d, want 2 (reinsert after delete)", got[42])
	}
}

func TestSealedRejectsUpdates(t *testing.T) {
	vol, pool := newEnv(t)
	tr, _ := New(vol, pool, Config{})
	tr.Insert(1, 1)
	if _, err := tr.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(2, 2); err != ErrSealed {
		t.Fatalf("insert after seal: %v", err)
	}
	if err := tr.Delete(1); err != ErrSealed {
		t.Fatalf("delete after seal: %v", err)
	}
	if _, err := tr.Seal(); err != ErrSealed {
		t.Fatalf("double seal: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	vol, pool := newEnv(t)
	if _, err := New(vol, pool, Config{Fanout: 1}); err == nil {
		t.Fatal("fanout 1 accepted")
	}
	if _, err := New(vol, pool, Config{Fanout: 4, BufferRecords: 1}); err == nil {
		t.Fatal("buffer of 1 accepted")
	}
}

func TestHeavyDuplicateKeys(t *testing.T) {
	vol, pool := newEnv(t)
	tr, _ := New(vol, pool, Config{Fanout: 4, BufferRecords: 32})
	// Thousands of updates to only three distinct keys force splitter
	// degeneracy; the tree must still terminate and resolve correctly.
	for i := 0; i < 3000; i++ {
		tr.Insert(uint64(i%3), uint64(i))
	}
	got := seal(t, tr)
	if len(got) != 3 {
		t.Fatalf("got %d keys, want 3", len(got))
	}
	if got[0] != 2997 || got[1] != 2998 || got[2] != 2999 {
		t.Fatalf("latest values wrong: %v", got)
	}
}

func TestAmortizedInsertBeatsBTree(t *testing.T) {
	// Experiment T6's core claim: N random inserts into a buffer tree cost
	// a small multiple of Sort(N) ≪ N·log_B N for the B-tree.
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 256, MemBlocks: 32, Disks: 1})
	pool := pdm.PoolFor(vol)
	n := 5000
	rng := rand.New(rand.NewSource(1))
	keys := rng.Perm(n)

	vol.Stats().Reset()
	bt, err := New(vol, pool, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if err := bt.Insert(uint64(k), uint64(k)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := bt.Seal(); err != nil {
		t.Fatal(err)
	}
	bufIO := vol.Stats().Total()

	vol.Stats().Reset()
	bt2, err := btree.New(vol, pool, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if _, err := bt2.Insert(uint64(k), uint64(k)); err != nil {
			t.Fatal(err)
		}
	}
	bt2.Close()
	btreeIO := vol.Stats().Total()

	if bufIO*3 >= btreeIO {
		t.Fatalf("buffer tree (%d I/Os) should beat B-tree inserts (%d I/Os) by a wide margin", bufIO, btreeIO)
	}
}

// Property: the buffer tree's sealed contents equal a map reference for
// arbitrary operation sequences.
func TestQuickMatchesMap(t *testing.T) {
	type qop struct {
		Key uint64
		Val uint64
		Del bool
	}
	f := func(ops []qop) bool {
		vol := pdm.MustVolume(pdm.Config{BlockBytes: 96, MemBlocks: 12, Disks: 1})
		pool := pdm.PoolFor(vol)
		tr, err := New(vol, pool, Config{Fanout: 3, BufferRecords: 16})
		if err != nil {
			return false
		}
		ref := map[uint64]uint64{}
		for _, o := range ops {
			k := o.Key % 40
			if o.Del {
				if err := tr.Delete(k); err != nil {
					return false
				}
				delete(ref, k)
			} else {
				if err := tr.Insert(k, o.Val); err != nil {
					return false
				}
				ref[k] = o.Val
			}
		}
		out, err := tr.Seal()
		if err != nil {
			return false
		}
		got := map[uint64]uint64{}
		if err := stream.ForEach(out, pool, func(r record.Record) error {
			got[r.Key] = r.Val
			return nil
		}); err != nil {
			return false
		}
		if len(got) != len(ref) {
			return false
		}
		for k, v := range ref {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
