package buffertree

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"

	"em/internal/pdm"
	"em/internal/record"
	"em/internal/stream"
)

// forEachBackend runs fn against a memory-backed and a file-backed volume
// of identical shape, mirroring the pdm, stream, and btree harnesses.
func forEachBackend(t *testing.T, cfg pdm.Config, fn func(t *testing.T, vol *pdm.Volume, pool *pdm.Pool)) {
	t.Helper()
	t.Run("mem", func(t *testing.T) {
		vol := pdm.MustVolume(cfg)
		defer vol.Close()
		fn(t, vol, pdm.PoolFor(vol))
	})
	t.Run("file", func(t *testing.T) {
		c := cfg
		c.Dir = t.TempDir()
		vol := pdm.MustVolume(c)
		defer func() {
			if err := vol.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}()
		fn(t, vol, pdm.PoolFor(vol))
	})
}

// refOp is the reference resolution: the newest op per key.
type refOp struct {
	val uint64
	del bool
}

// driveOps plays a deterministic duplicate-heavy insert/delete mix that
// forces several splitLeaf and distribute repartitions at the test shape.
func driveOps(t *testing.T, tr *Tree, n int, seed int64, keySpace uint64) map[uint64]refOp {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ref := map[uint64]refOp{}
	for i := 0; i < n; i++ {
		k := uint64(rng.Intn(int(keySpace)))
		if rng.Intn(4) == 0 {
			if err := tr.Delete(k); err != nil {
				t.Fatal(err)
			}
			ref[k] = refOp{del: true}
		} else {
			v := uint64(i)
			if err := tr.Insert(k, v); err != nil {
				t.Fatal(err)
			}
			ref[k] = refOp{val: v}
		}
	}
	return ref
}

// TestProbeReadYourWrites checks Probe against the reference after every
// operation of a duplicate-heavy mix: the newest op must surface from
// whatever depth the flushes pushed it to. Both backends.
func TestProbeReadYourWrites(t *testing.T) {
	cfg := pdm.Config{BlockBytes: 96, MemBlocks: 24, Disks: 1}
	forEachBackend(t, cfg, func(t *testing.T, vol *pdm.Volume, pool *pdm.Pool) {
		tr, err := New(vol, pool, Config{Fanout: 3, BufferRecords: 8})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		ref := map[uint64]refOp{}
		const keySpace = 30
		for i := 0; i < 800; i++ {
			k := uint64(rng.Intn(keySpace))
			if rng.Intn(4) == 0 {
				if err := tr.Delete(k); err != nil {
					t.Fatal(err)
				}
				ref[k] = refOp{del: true}
			} else {
				if err := tr.Insert(k, uint64(i)); err != nil {
					t.Fatal(err)
				}
				ref[k] = refOp{val: uint64(i)}
			}
			q := uint64(rng.Intn(keySpace))
			op, ok, err := tr.Probe(q)
			if err != nil {
				t.Fatal(err)
			}
			want, wok := ref[q]
			if ok != wok {
				t.Fatalf("op %d: Probe(%d) ok=%v want %v", i, q, ok, wok)
			}
			if ok && (op.Deleted() != want.del || (!want.del && op.Val != want.val)) {
				t.Fatalf("op %d: Probe(%d) = (%d, del=%v), want (%d, del=%v)",
					i, q, op.Val, op.Deleted(), want.val, want.del)
			}
		}
		// Probes still served after Freeze; updates rejected.
		if err := tr.Freeze(); err != nil {
			t.Fatal(err)
		}
		if err := tr.Insert(1, 1); err != ErrSealed {
			t.Fatalf("insert after freeze: %v", err)
		}
		for q := uint64(0); q < keySpace; q++ {
			op, ok, err := tr.Probe(q)
			if err != nil {
				t.Fatal(err)
			}
			want, wok := ref[q]
			if ok != wok || (ok && op.Deleted() != want.del) || (ok && !want.del && op.Val != want.val) {
				t.Fatalf("frozen Probe(%d) mismatch", q)
			}
		}
		tr.ReleaseBuffers()
		if pool.InUse() != 0 {
			t.Fatalf("leaked %d frames", pool.InUse())
		}
		if live := vol.Allocated() - vol.FreeBlocks(); live != 0 {
			t.Fatalf("leaked %d blocks", live)
		}
	})
}

// TestSealOpsMatchesReference checks the run handed over by SealOps: one
// resolved op per key in strictly increasing key order, tombstones kept,
// Run.Probe and Run.OpenRange agreeing with the reference — and the
// tree's buffers still intact (probe-able) until ReleaseBuffers.
func TestSealOpsMatchesReference(t *testing.T) {
	cfg := pdm.Config{BlockBytes: 96, MemBlocks: 24, Disks: 1}
	forEachBackend(t, cfg, func(t *testing.T, vol *pdm.Volume, pool *pdm.Pool) {
		tr, err := New(vol, pool, Config{Fanout: 3, BufferRecords: 8})
		if err != nil {
			t.Fatal(err)
		}
		const keySpace = 60
		ref := driveOps(t, tr, 1200, 11, keySpace)
		run, err := tr.SealOps()
		if err != nil {
			t.Fatal(err)
		}
		if run.Len() != int64(len(ref)) {
			t.Fatalf("run holds %d ops, want %d", run.Len(), len(ref))
		}
		// The run file is sorted, resolved, and complete.
		got := map[uint64]Op{}
		last := int64(-1)
		if err := stream.ForEach(run.File(), pool, func(o Op) error {
			if int64(o.Key) <= last {
				t.Fatalf("run not strictly sorted: %d after %d", o.Key, last)
			}
			last = int64(o.Key)
			got[o.Key] = o
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for k, want := range ref {
			o, ok := got[k]
			if !ok || o.Deleted() != want.del || (!want.del && o.Val != want.val) {
				t.Fatalf("run[%d] = %+v (present %v), want %+v", k, o, ok, want)
			}
		}
		// Point probes: one counted read each, same answers.
		for k := uint64(0); k < keySpace+5; k++ {
			before := atomic.LoadUint64(&vol.Stats().Reads)
			o, ok, err := run.Probe(pool, k)
			if err != nil {
				t.Fatal(err)
			}
			if reads := atomic.LoadUint64(&vol.Stats().Reads) - before; reads > 1 {
				t.Fatalf("Run.Probe(%d) cost %d reads, want <= 1", k, reads)
			}
			want, wok := ref[k]
			if ok != wok || (ok && o.Deleted() != want.del) || (ok && !want.del && o.Val != want.val) {
				t.Fatalf("Run.Probe(%d) = (%+v,%v), want (%+v,%v)", k, o, ok, want, wok)
			}
		}
		// Range scans line up with the sorted reference.
		for _, r := range [][2]uint64{{0, ^uint64(0)}, {10, 30}, {keySpace, keySpace + 10}, {17, 17}} {
			sc := run.OpenRange(pool, r[0], r[1])
			seen := 0
			for {
				o, ok, err := sc.Next()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				if o.Key < r[0] || o.Key > r[1] {
					t.Fatalf("OpenRange[%d,%d] yielded %d", r[0], r[1], o.Key)
				}
				want := ref[o.Key]
				if o.Deleted() != want.del || (!want.del && o.Val != want.val) {
					t.Fatalf("OpenRange op mismatch at %d", o.Key)
				}
				seen++
			}
			sc.Close()
			wantN := 0
			for k := range ref {
				if k >= r[0] && k <= r[1] {
					wantN++
				}
			}
			if seen != wantN {
				t.Fatalf("OpenRange[%d,%d] yielded %d ops, want %d", r[0], r[1], seen, wantN)
			}
		}
		// The non-destructive drain left the buffers probe-able.
		for q := uint64(0); q < keySpace; q++ {
			op, ok, err := tr.Probe(q)
			if err != nil {
				t.Fatal(err)
			}
			want, wok := ref[q]
			if ok != wok || (ok && op.Deleted() != want.del) {
				t.Fatalf("post-SealOps Probe(%d) mismatch", q)
			}
		}
		tr.ReleaseBuffers()
		run.Release()
		if pool.InUse() != 0 {
			t.Fatalf("leaked %d frames", pool.InUse())
		}
		if live := vol.Allocated() - vol.FreeBlocks(); live != 0 {
			t.Fatalf("leaked %d blocks", live)
		}
	})
}

// TestCollectRange checks the in-memory range collection used by store
// scan snapshots against the reference, over several ranges.
func TestCollectRange(t *testing.T) {
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 96, MemBlocks: 24, Disks: 1})
	pool := pdm.PoolFor(vol)
	tr, err := New(vol, pool, Config{Fanout: 3, BufferRecords: 8})
	if err != nil {
		t.Fatal(err)
	}
	ref := driveOps(t, tr, 900, 5, 50)
	for _, r := range [][2]uint64{{0, ^uint64(0)}, {5, 25}, {49, 49}, {60, 90}} {
		ops, err := tr.CollectRange(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		last := int64(-1)
		for _, o := range ops {
			if int64(o.Key) <= last {
				t.Fatalf("CollectRange not sorted: %d after %d", o.Key, last)
			}
			last = int64(o.Key)
			want, ok := ref[o.Key]
			if !ok || o.Key < r[0] || o.Key > r[1] || o.Deleted() != want.del || (!want.del && o.Val != want.val) {
				t.Fatalf("CollectRange[%d,%d] wrong op %+v", r[0], r[1], o)
			}
		}
		wantN := 0
		for k := range ref {
			if k >= r[0] && k <= r[1] {
				wantN++
			}
		}
		if len(ops) != wantN {
			t.Fatalf("CollectRange[%d,%d] = %d ops, want %d", r[0], r[1], len(ops), wantN)
		}
	}
}

// TestStartSeqOrdersAcrossFronts checks that a successor front seeded with
// the predecessor's LastSeq resolves last-writer-wins across the pair —
// the property generational handover relies on.
func TestStartSeqOrdersAcrossFronts(t *testing.T) {
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 96, MemBlocks: 24, Disks: 1})
	pool := pdm.PoolFor(vol)
	a, err := New(vol, pool, Config{Fanout: 3, BufferRecords: 8})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 20; k++ {
		if err := a.Insert(k, 100+k); err != nil {
			t.Fatal(err)
		}
	}
	b, err := New(vol, pool, Config{Fanout: 3, BufferRecords: 8, StartSeq: a.LastSeq()})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Insert(5, 999); err != nil {
		t.Fatal(err)
	}
	if err := b.Delete(6); err != nil {
		t.Fatal(err)
	}
	runA, err := a.SealOps()
	if err != nil {
		t.Fatal(err)
	}
	runB, err := b.SealOps()
	if err != nil {
		t.Fatal(err)
	}
	opA, _, err := runA.Probe(pool, 5)
	if err != nil {
		t.Fatal(err)
	}
	opB, _, err := runB.Probe(pool, 5)
	if err != nil {
		t.Fatal(err)
	}
	if opB.Seq <= opA.Seq {
		t.Fatalf("successor front seq %d not above predecessor's %d", opB.Seq, opA.Seq)
	}
	var resolved []Op
	if err := resolveOps([]Op{opA, opB}, func(o Op) error {
		resolved = append(resolved, o)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(resolved) != 1 || resolved[0].Val != 999 {
		t.Fatalf("cross-front resolution picked %+v", resolved)
	}
	a.ReleaseBuffers()
	b.ReleaseBuffers()
	runA.Release()
	runB.Release()
}

// TestSealLeakSafety sweeps a starved pool across Insert/Seal: whatever
// point the budget runs out at, every frame must come back (Pool.Free
// exactly restored) and, after ReleaseBuffers, every block too. This is
// the satellite hardening of the Seal/drain/flush error paths.
func TestSealLeakSafety(t *testing.T) {
	cfg := pdm.Config{BlockBytes: 96, MemBlocks: 16, Disks: 1}
	forEachBackend(t, cfg, func(t *testing.T, vol *pdm.Volume, pool *pdm.Pool) {
		for hostages := 0; hostages < cfg.MemBlocks; hostages++ {
			taken, err := pool.AllocN(hostages)
			if err != nil {
				t.Fatal(err)
			}
			func() {
				defer pdm.ReleaseAll(taken)
				tr, err := New(vol, pool, Config{Fanout: 3, BufferRecords: 8})
				if err != nil {
					return // not even a root writer fits; nothing to leak
				}
				failed := false
				for i := 0; i < 400 && !failed; i++ {
					k := uint64(i % 25)
					if i%5 == 0 {
						failed = tr.Delete(k) != nil
					} else {
						failed = tr.Insert(k, uint64(i)) != nil
					}
				}
				if !failed {
					if out, err := tr.Seal(); err == nil {
						out.Release()
					} else {
						// Failed Seal keeps buffers; retry must also fail
						// or succeed cleanly, then release.
						if out2, err2 := tr.Seal(); err2 == nil {
							out2.Release()
						}
					}
				}
				tr.ReleaseBuffers()
				if got := pool.InUse(); got != hostages {
					t.Fatalf("hostages=%d: pool.InUse=%d after teardown", hostages, got)
				}
				if live := vol.Allocated() - vol.FreeBlocks(); live != 0 {
					t.Fatalf("hostages=%d: %d live blocks after teardown", hostages, live)
				}
			}()
		}
	})
}

// TestSealOpsLeakSafety is the same sweep through the SealOps path.
func TestSealOpsLeakSafety(t *testing.T) {
	cfg := pdm.Config{BlockBytes: 96, MemBlocks: 16, Disks: 1}
	forEachBackend(t, cfg, func(t *testing.T, vol *pdm.Volume, pool *pdm.Pool) {
		for hostages := 0; hostages < cfg.MemBlocks; hostages++ {
			taken, err := pool.AllocN(hostages)
			if err != nil {
				t.Fatal(err)
			}
			func() {
				defer pdm.ReleaseAll(taken)
				tr, err := New(vol, pool, Config{Fanout: 3, BufferRecords: 8})
				if err != nil {
					return
				}
				failed := false
				for i := 0; i < 400 && !failed; i++ {
					failed = tr.Insert(uint64(i%25), uint64(i)) != nil
				}
				if !failed {
					if run, err := tr.SealOps(); err == nil {
						run.Release()
					}
				}
				tr.ReleaseBuffers()
				if got := pool.InUse(); got != hostages {
					t.Fatalf("hostages=%d: pool.InUse=%d after teardown", hostages, got)
				}
				if live := vol.Allocated() - vol.FreeBlocks(); live != 0 {
					t.Fatalf("hostages=%d: %d live blocks after teardown", hostages, live)
				}
			}()
		}
	})
}

// TestStatsIdenticalAcrossBackends replays one workload on the simulated
// and file backends and asserts byte-identical counted I/O — the
// backend-abstraction invariant, now holding through the buffer tree's
// flush cascades and seal drains too.
func TestStatsIdenticalAcrossBackends(t *testing.T) {
	cfg := pdm.Config{BlockBytes: 96, MemBlocks: 24, Disks: 2}
	run := func(vol *pdm.Volume) (reads, writes, steps uint64) {
		pool := pdm.PoolFor(vol)
		tr, err := New(vol, pool, Config{Fanout: 3, BufferRecords: 8})
		if err != nil {
			t.Fatal(err)
		}
		ref := driveOps(t, tr, 1000, 3, 40)
		_ = ref
		run, err := tr.SealOps()
		if err != nil {
			t.Fatal(err)
		}
		for k := uint64(0); k < 40; k++ {
			if _, _, err := run.Probe(pool, k); err != nil {
				t.Fatal(err)
			}
		}
		tr.ReleaseBuffers()
		run.Release()
		s := vol.Stats()
		return atomic.LoadUint64(&s.Reads), atomic.LoadUint64(&s.Writes), atomic.LoadUint64(&s.Steps)
	}
	mem := pdm.MustVolume(cfg)
	defer mem.Close()
	r1, w1, s1 := run(mem)
	fcfg := cfg
	fcfg.Dir = t.TempDir()
	file := pdm.MustVolume(fcfg)
	defer file.Close()
	r2, w2, s2 := run(file)
	if r1 != r2 || w1 != w2 || s1 != s2 {
		t.Fatalf("stats diverge across backends: mem (r=%d w=%d s=%d) file (r=%d w=%d s=%d)",
			r1, w1, s1, r2, w2, s2)
	}
	if r1 == 0 || w1 == 0 {
		t.Fatal("workload charged no I/O; the comparison is vacuous")
	}
}

// TestQuickSealOpsBothBackends is the satellite-2 property strengthened to
// the online path: random op sequences resolve last-writer-wins through
// SealOps (tombstones kept), on both backends.
func TestQuickSealOpsBothBackends(t *testing.T) {
	cfg := pdm.Config{BlockBytes: 96, MemBlocks: 12, Disks: 1}
	forEachBackend(t, cfg, func(t *testing.T, vol *pdm.Volume, pool *pdm.Pool) {
		type qop struct {
			Key uint64
			Val uint64
			Del bool
		}
		f := func(ops []qop) bool {
			tr, err := New(vol, pool, Config{Fanout: 3, BufferRecords: 16})
			if err != nil {
				return false
			}
			ref := map[uint64]refOp{}
			for _, o := range ops {
				k := o.Key % 40
				if o.Del {
					if tr.Delete(k) != nil {
						return false
					}
					ref[k] = refOp{del: true}
				} else {
					if tr.Insert(k, o.Val) != nil {
						return false
					}
					ref[k] = refOp{val: o.Val}
				}
			}
			run, err := tr.SealOps()
			if err != nil {
				return false
			}
			defer func() {
				tr.ReleaseBuffers()
				run.Release()
			}()
			if run.Len() != int64(len(ref)) {
				return false
			}
			good := true
			if err := stream.ForEach(run.File(), pool, func(o Op) error {
				want, ok := ref[o.Key]
				if !ok || o.Deleted() != want.del || (!want.del && o.Val != want.val) {
					good = false
				}
				return nil
			}); err != nil {
				return false
			}
			return good
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Fatal(err)
		}
	})
}

// TestSealReleasesBlocks: the offline Seal path now returns every buffer
// block on success, leaving only the output file live.
func TestSealReleasesBlocks(t *testing.T) {
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 96, MemBlocks: 16, Disks: 1})
	pool := pdm.PoolFor(vol)
	tr, err := New(vol, pool, Config{Fanout: 3, BufferRecords: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := tr.Insert(uint64(i%60), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	out, err := tr.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if live := vol.Allocated() - vol.FreeBlocks(); live != int64(out.Blocks()) {
		t.Fatalf("%d live blocks after Seal, want only the %d output blocks", live, out.Blocks())
	}
	var prev record.Record
	first := true
	if err := stream.ForEach(out, pool, func(r record.Record) error {
		if !first && r.Key <= prev.Key {
			t.Fatalf("seal output unsorted")
		}
		prev, first = r, false
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	out.Release()
	if live := vol.Allocated() - vol.FreeBlocks(); live != 0 {
		t.Fatalf("%d live blocks after releasing output", live)
	}
}
