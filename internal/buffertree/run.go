package buffertree

import (
	"sort"

	"em/internal/pdm"
	"em/internal/stream"
)

// Run is the output of SealOps: a key-sorted file of resolved operations
// (one per key, tombstones kept) with a sparse in-memory index — the first
// key of every block, Θ(n/B) words, the classical sparse index over a
// sorted file. A store serves point probes from it at one counted read
// while the run is being merged into the next B-tree generation.
type Run struct {
	file      *stream.File[Op]
	firstKeys []uint64 // firstKeys[i] = key of the first op in block i
}

// Len returns the number of operations in the run.
func (r *Run) Len() int64 { return r.file.Len() }

// File exposes the underlying sorted op file, e.g. to open a full
// prefetched scan over it for the merge drain.
func (r *Run) File() *stream.File[Op] { return r.file }

// Release returns the run's blocks to the volume.
func (r *Run) Release() {
	r.file.Release()
	r.firstKeys = nil
}

// block reads block i of the run into fr and returns the ops it holds.
func (r *Run) block(i int, fr *pdm.Frame) (n int, err error) {
	per := int64(r.file.PerBlock())
	n = int(min(per, r.file.Len()-int64(i)*per))
	err = r.file.Vol().ReadBlock(stream.BlockAddrs(r.file)[i], fr.Buf)
	return n, err
}

// Probe looks up the newest resolved operation for key: exactly one
// counted read (the candidate block found through the sparse index), or
// zero when the index rules the key out.
func (r *Run) Probe(pool *pdm.Pool, key uint64) (Op, bool, error) {
	i := sort.Search(len(r.firstKeys), func(i int) bool { return r.firstKeys[i] > key }) - 1
	if i < 0 {
		return Op{}, false, nil
	}
	fr, err := pool.Alloc()
	if err != nil {
		return Op{}, false, err
	}
	defer fr.Release()
	n, err := r.block(i, fr)
	if err != nil {
		return Op{}, false, err
	}
	codec := opCodec{}
	sz := codec.Size()
	j := sort.Search(n, func(j int) bool { return codec.Decode(fr.Buf[j*sz:]).Key >= key })
	if j < n {
		if o := codec.Decode(fr.Buf[j*sz:]); o.Key == key {
			return o, true, nil
		}
	}
	return Op{}, false, nil
}

// RunScanner iterates the run's operations with keys in [lo, hi] in key
// order, starting at the block the sparse index selects. It implements
// stream.Source[Op] and holds one pool frame while open.
type RunScanner struct {
	r      *Run
	pool   *pdm.Pool
	frame  *pdm.Frame
	lo, hi uint64
	block  int // next block to read
	idx    int // next op within frame
	cnt    int // ops decoded into frame
	done   bool
}

// OpenRange opens a scanner over the run's operations in [lo, hi].
func (r *Run) OpenRange(pool *pdm.Pool, lo, hi uint64) *RunScanner {
	start := sort.Search(len(r.firstKeys), func(i int) bool { return r.firstKeys[i] > lo }) - 1
	if start < 0 {
		start = 0
	}
	return &RunScanner{r: r, pool: pool, lo: lo, hi: hi, block: start}
}

// Next returns the next in-range operation.
func (s *RunScanner) Next() (Op, bool, error) {
	codec := opCodec{}
	sz := codec.Size()
	for {
		if s.done {
			return Op{}, false, nil
		}
		if s.idx >= s.cnt {
			if s.block >= s.r.file.Blocks() {
				s.Close()
				return Op{}, false, nil
			}
			if s.frame == nil {
				fr, err := s.pool.Alloc()
				if err != nil {
					return Op{}, false, err
				}
				s.frame = fr
			}
			n, err := s.r.block(s.block, s.frame)
			if err != nil {
				s.Close()
				return Op{}, false, err
			}
			s.block++
			s.idx, s.cnt = 0, n
			continue
		}
		o := codec.Decode(s.frame.Buf[s.idx*sz:])
		s.idx++
		if o.Key < s.lo {
			continue
		}
		if o.Key > s.hi {
			s.Close()
			return Op{}, false, nil
		}
		return o, true, nil
	}
}

// Close releases the scanner's frame. Idempotent.
func (s *RunScanner) Close() {
	s.done = true
	if s.frame != nil {
		s.frame.Release()
		s.frame = nil
	}
}
