// Package cache provides a pinning, write-back block cache over a pdm.Volume
// together with offline paging-policy simulators (LRU, FIFO, CLOCK, and
// Belady's MIN) for the survey's caching and prefetching discussion.
//
// The live Cache is the buffer manager used by the online index structures
// (B-tree, extendible hashing): it keeps hot blocks pinned in pool frames,
// evicts with LRU among unpinned pages, and writes dirty pages back on
// eviction or Flush. The policy simulators replay reference strings without
// touching a volume and are the engine behind experiment F6.
package cache

import (
	"container/list"
	"errors"
	"fmt"

	"em/internal/pdm"
)

// ErrAllPinned reports that an eviction was required but every cached page
// was pinned — the working set exceeds the configured frame budget.
var ErrAllPinned = errors.New("cache: all pages pinned, cannot evict")

// Page is a cached block. Callers access its contents through Buf and must
// call MarkDirty before mutating, and Unpin when done.
type Page struct {
	// Buf is the block's in-memory image.
	Buf   []byte
	addr  int64
	pins  int
	dirty bool
	frame *pdm.Frame
	elem  *list.Element
}

// Addr returns the page's block address.
func (p *Page) Addr() int64 { return p.addr }

// MarkDirty records that the page's contents changed and must be written
// back before the frame is reused.
func (p *Page) MarkDirty() { p.dirty = true }

// CacheStats counts cache effectiveness.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	WriteBack uint64
}

// Cache is a fixed-capacity pinning block cache with LRU replacement.
type Cache struct {
	vol      *pdm.Volume
	pool     *pdm.Pool
	capacity int
	pages    map[int64]*Page
	lru      *list.List // front = most recently used; holds unpinned and pinned pages
	stats    CacheStats
}

// New creates a cache of at most capacity pages, drawing frames from pool.
func New(vol *pdm.Volume, pool *pdm.Pool, capacity int) (*Cache, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("cache: capacity must be >= 1, got %d", capacity)
	}
	return &Cache{
		vol:      vol,
		pool:     pool,
		capacity: capacity,
		pages:    make(map[int64]*Page, capacity),
		lru:      list.New(),
	}, nil
}

// Stats returns a copy of the hit/miss counters.
func (c *Cache) Stats() CacheStats { return c.stats }

// Len returns the number of resident pages.
func (c *Cache) Len() int { return len(c.pages) }

// Capacity returns the frame budget the cache was created with.
func (c *Cache) Capacity() int { return c.capacity }

// hit records a cache hit on p and pins it — the shared bookkeeping of
// every path that finds a resident page.
func (c *Cache) hit(p *Page) {
	c.stats.Hits++
	p.pins++
	c.lru.MoveToFront(p.elem)
}

// Get pins block addr, reading it from the volume on a miss. Every Get must
// be paired with an Unpin.
func (c *Cache) Get(addr int64) (*Page, error) {
	if p, ok := c.pages[addr]; ok {
		c.hit(p)
		return p, nil
	}
	c.stats.Misses++
	p, err := c.admit(addr)
	if err != nil {
		return nil, err
	}
	if err := c.vol.ReadBlock(addr, p.Buf); err != nil {
		c.discard(p)
		return nil, err
	}
	return p, nil
}

// GetNew pins block addr without reading it, for freshly allocated blocks
// whose on-disk contents are irrelevant. The page starts zeroed and dirty.
func (c *Cache) GetNew(addr int64) (*Page, error) {
	if p, ok := c.pages[addr]; ok {
		c.hit(p)
		p.dirty = true
		clear(p.Buf)
		return p, nil
	}
	c.stats.Misses++
	p, err := c.admit(addr)
	if err != nil {
		return nil, err
	}
	clear(p.Buf)
	p.dirty = true
	return p, nil
}

// Peek pins block addr if it is resident and returns nil — performing no
// I/O and admitting nothing — when it is not. It is the cache-residency
// probe behind the B-tree scanner's forecasting: upcoming leaf addresses are
// taken from parent nodes only while those parents are actually in memory,
// so forecasting never charges a block read the synchronous path would not.
func (c *Cache) Peek(addr int64) *Page {
	p, ok := c.pages[addr]
	if !ok {
		return nil
	}
	c.hit(p)
	return p
}

// GetBatchAsync pins every block of addrs — cache hits immediately, misses
// through one batched read dispatched on the volume's async engine — and
// returns the pinned pages aligned with addrs plus the batch's join. Hit
// pages are valid at once; miss pages hold their block's bytes only after
// join returns nil. This is read-only admission: no page is marked dirty,
// and making room evicts only unpinned pages (as always), so a concurrent
// writer's pinned working set is never disturbed. The caller must Unpin
// every page after a nil join; if the dispatch or the join fails, the cache
// has already unpinned everything and dropped the unfilled pages — the
// returned pages must not be used.
//
// The caller must keep len(addrs) below the cache capacity (the batch is
// pinned as a whole); duplicate addresses are allowed and share one page.
func (c *Cache) GetBatchAsync(addrs []int64) ([]*Page, func() error, error) {
	pages := make([]*Page, len(addrs))
	var miss []int
	for i, a := range addrs {
		if p, ok := c.pages[a]; ok {
			c.hit(p)
			pages[i] = p
			continue
		}
		c.stats.Misses++
		p, err := c.admit(a)
		if err != nil {
			c.failBatch(pages[:i], miss)
			return nil, nil, err
		}
		pages[i] = p
		miss = append(miss, i)
	}
	if len(miss) == 0 {
		return pages, func() error { return nil }, nil
	}
	mAddrs := make([]int64, len(miss))
	mBufs := make([][]byte, len(miss))
	for k, i := range miss {
		mAddrs[k] = addrs[i]
		mBufs[k] = pages[i].Buf
	}
	join := c.vol.BatchReadAsync(mAddrs, mBufs)
	return pages, func() error {
		err := join()
		if err != nil {
			c.failBatch(pages, miss)
		}
		return err
	}, nil
}

// failBatch unwinds a failed GetBatchAsync: every page loses the batch's
// pin, and the pages admitted for reads that never completed — which hold
// no valid block image — are dropped so a later Get cannot hit garbage.
// Miss pages are admitted clean, so discarding writes nothing back.
func (c *Cache) failBatch(pages []*Page, miss []int) {
	for _, p := range pages {
		if p.pins <= 0 {
			panic("cache: unpin of unpinned page")
		}
		p.pins--
	}
	for _, i := range miss {
		if i >= len(pages) {
			break
		}
		if p := pages[i]; p.pins == 0 {
			p.dirty = false
			c.discard(p)
		}
	}
}

// admit makes room if needed and installs a pinned page for addr.
func (c *Cache) admit(addr int64) (*Page, error) {
	if len(c.pages) >= c.capacity {
		if err := c.evictOne(); err != nil {
			return nil, err
		}
	}
	frame, err := c.pool.Alloc()
	if err != nil {
		return nil, err
	}
	p := &Page{Buf: frame.Buf, addr: addr, pins: 1, frame: frame}
	p.elem = c.lru.PushFront(p)
	c.pages[addr] = p
	return p, nil
}

// evictOne removes the least recently used unpinned page, writing it back if
// dirty.
func (c *Cache) evictOne() error {
	for e := c.lru.Back(); e != nil; e = e.Prev() {
		p := e.Value.(*Page)
		if p.pins > 0 {
			continue
		}
		if p.dirty {
			if err := c.vol.WriteBlock(p.addr, p.Buf); err != nil {
				return err
			}
			c.stats.WriteBack++
		}
		c.stats.Evictions++
		c.discard(p)
		return nil
	}
	return ErrAllPinned
}

// discard removes a page from all cache bookkeeping and returns its frame.
func (c *Cache) discard(p *Page) {
	c.lru.Remove(p.elem)
	delete(c.pages, p.addr)
	p.frame.Release()
	p.frame = nil
}

// Unpin releases one pin on p. Unpinning an unpinned page panics: it means
// the caller's pin accounting is corrupt.
func (c *Cache) Unpin(p *Page) {
	if p.pins <= 0 {
		panic("cache: unpin of unpinned page")
	}
	p.pins--
}

// Flush writes every dirty page back to the volume, keeping pages resident.
func (c *Cache) Flush() error {
	for _, p := range c.pages {
		if p.dirty {
			if err := c.vol.WriteBlock(p.addr, p.Buf); err != nil {
				return err
			}
			p.dirty = false
			c.stats.WriteBack++
		}
	}
	return nil
}

// Close flushes and drops every page, returning all frames to the pool.
// The cache must have no pinned pages.
func (c *Cache) Close() error {
	for _, p := range c.pages {
		if p.pins > 0 {
			return fmt.Errorf("cache: close with page %d still pinned", p.addr)
		}
	}
	if err := c.Flush(); err != nil {
		return err
	}
	for _, p := range c.pages {
		c.discard(p)
	}
	return nil
}

// Drop removes block addr from the cache without writing it back, for blocks
// that have been freed. No-op if absent or pinned.
func (c *Cache) Drop(addr int64) {
	if p, ok := c.pages[addr]; ok && p.pins == 0 {
		c.discard(p)
	}
}
