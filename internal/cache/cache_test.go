package cache

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"em/internal/pdm"
)

func newEnv(t *testing.T) (*pdm.Volume, *pdm.Pool) {
	t.Helper()
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 32, MemBlocks: 16, Disks: 1})
	return vol, pdm.PoolFor(vol)
}

func TestCacheHitMiss(t *testing.T) {
	vol, pool := newEnv(t)
	addr := vol.Alloc(4)
	buf := make([]byte, 32)
	for i := int64(0); i < 4; i++ {
		buf[0] = byte(i)
		if err := vol.WriteBlock(addr+i, buf); err != nil {
			t.Fatal(err)
		}
	}
	c, err := New(vol, pool, 2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Get(addr)
	if err != nil {
		t.Fatal(err)
	}
	if p.Buf[0] != 0 {
		t.Fatal("wrong block content")
	}
	c.Unpin(p)
	p2, err := c.Get(addr)
	if err != nil {
		t.Fatal(err)
	}
	c.Unpin(p2)
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCacheEvictionWritesBackDirty(t *testing.T) {
	vol, pool := newEnv(t)
	addr := vol.Alloc(3)
	zero := make([]byte, 32)
	for i := int64(0); i < 3; i++ {
		if err := vol.WriteBlock(addr+i, zero); err != nil {
			t.Fatal(err)
		}
	}
	c, err := New(vol, pool, 2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Get(addr)
	if err != nil {
		t.Fatal(err)
	}
	p.Buf[0] = 0xAB
	p.MarkDirty()
	c.Unpin(p)
	// Fill the cache past capacity so addr gets evicted.
	for i := int64(1); i < 3; i++ {
		q, err := c.Get(addr + i)
		if err != nil {
			t.Fatal(err)
		}
		c.Unpin(q)
	}
	got := make([]byte, 32)
	if err := vol.ReadBlock(addr, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xAB {
		t.Fatal("dirty page not written back on eviction")
	}
	if c.Stats().Evictions == 0 || c.Stats().WriteBack == 0 {
		t.Fatalf("stats = %+v", c.Stats())
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCacheAllPinned(t *testing.T) {
	vol, pool := newEnv(t)
	addr := vol.Alloc(3)
	zero := make([]byte, 32)
	for i := int64(0); i < 3; i++ {
		vol.WriteBlock(addr+i, zero)
	}
	c, _ := New(vol, pool, 2)
	p0, err := c.Get(addr)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := c.Get(addr + 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(addr + 2); !errors.Is(err, ErrAllPinned) {
		t.Fatalf("expected ErrAllPinned, got %v", err)
	}
	c.Unpin(p0)
	c.Unpin(p1)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCacheGetNewStartsZeroedDirty(t *testing.T) {
	vol, pool := newEnv(t)
	addr := vol.Alloc(1)
	c, _ := New(vol, pool, 2)
	p, err := c.GetNew(addr)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range p.Buf {
		if b != 0 {
			t.Fatal("GetNew page not zeroed")
		}
	}
	p.Buf[5] = 7
	c.Unpin(p)
	if err := c.Close(); err != nil { // flush
		t.Fatal(err)
	}
	got := make([]byte, 32)
	vol.ReadBlock(addr, got)
	if got[5] != 7 {
		t.Fatal("GetNew page not flushed")
	}
}

func TestCacheCloseWithPinnedFails(t *testing.T) {
	vol, pool := newEnv(t)
	addr := vol.Alloc(1)
	vol.WriteBlock(addr, make([]byte, 32))
	c, _ := New(vol, pool, 2)
	p, _ := c.Get(addr)
	if err := c.Close(); err == nil {
		t.Fatal("close with pinned page should fail")
	}
	c.Unpin(p)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if pool.InUse() != 0 {
		t.Fatalf("leaked %d frames", pool.InUse())
	}
}

func TestCacheUnpinUnderflowPanics(t *testing.T) {
	vol, pool := newEnv(t)
	addr := vol.Alloc(1)
	vol.WriteBlock(addr, make([]byte, 32))
	c, _ := New(vol, pool, 2)
	p, _ := c.Get(addr)
	c.Unpin(p)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Unpin(p)
}

func TestCacheDrop(t *testing.T) {
	vol, pool := newEnv(t)
	addr := vol.Alloc(1)
	vol.WriteBlock(addr, make([]byte, 32))
	c, _ := New(vol, pool, 2)
	p, _ := c.Get(addr)
	p.Buf[0] = 1
	p.MarkDirty()
	c.Unpin(p)
	c.Drop(addr)
	if c.Len() != 0 {
		t.Fatal("drop did not remove page")
	}
	got := make([]byte, 32)
	vol.ReadBlock(addr, got)
	if got[0] != 0 {
		t.Fatal("drop must not write back")
	}
	c.Close()
}

func TestPolicyScanFaultsEqualDistinct(t *testing.T) {
	refs := ScanRefs(50)
	for _, f := range []func([]int64, int) int{FaultsLRU, FaultsFIFO, FaultsCLOCK, FaultsMIN} {
		if got := f(refs, 8); got != 50 {
			t.Fatalf("cold scan should fault once per block, got %d", got)
		}
	}
}

func TestPolicyLoopLRUWorstCase(t *testing.T) {
	// A loop over n blocks with fewer than n frames makes LRU fault on every
	// reference; MIN does much better.
	refs := LoopRefs(10, 5)
	lru := FaultsLRU(refs, 9)
	min := FaultsMIN(refs, 9)
	if lru != len(refs) {
		t.Fatalf("LRU on loop should fault always, got %d/%d", lru, len(refs))
	}
	if min >= lru {
		t.Fatalf("MIN (%d) should beat LRU (%d) on loops", min, lru)
	}
}

func TestPolicyFitsInMemoryNoRefaults(t *testing.T) {
	refs := LoopRefs(8, 10)
	for _, f := range []func([]int64, int) int{FaultsLRU, FaultsFIFO, FaultsCLOCK, FaultsMIN} {
		if got := f(refs, 8); got != 8 {
			t.Fatalf("working set fits: want 8 compulsory faults, got %d", got)
		}
	}
}

func TestPolicyZeroFrames(t *testing.T) {
	refs := ScanRefs(5)
	for _, f := range []func([]int64, int) int{FaultsLRU, FaultsFIFO, FaultsCLOCK, FaultsMIN} {
		if got := f(refs, 0); got != 5 {
			t.Fatalf("zero frames: got %d", got)
		}
	}
}

// Property: MIN is optimal — no online policy beats it on any reference
// string and any frame count.
func TestQuickMINIsLowerBound(t *testing.T) {
	f := func(raw []uint8, framesRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 200 {
			raw = raw[:200]
		}
		refs := make([]int64, len(raw))
		for i, r := range raw {
			refs[i] = int64(r % 16)
		}
		frames := int(framesRaw%8) + 1
		min := FaultsMIN(refs, frames)
		return FaultsLRU(refs, frames) >= min &&
			FaultsFIFO(refs, frames) >= min &&
			FaultsCLOCK(refs, frames) >= min
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: more frames never increase MIN or LRU faults (stack property for
// LRU; optimality argument for MIN).
func TestQuickMoreFramesNeverHurt(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 150 {
			raw = raw[:150]
		}
		refs := make([]int64, len(raw))
		for i, r := range raw {
			refs[i] = int64(r % 12)
		}
		for k := 1; k < 8; k++ {
			if FaultsLRU(refs, k+1) > FaultsLRU(refs, k) {
				return false
			}
			if FaultsMIN(refs, k+1) > FaultsMIN(refs, k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkingSetRefsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	refs := WorkingSetRefs(1000, 10, 7, func() int64 { return rng.Int63() })
	if len(refs) != 1000 {
		t.Fatalf("len = %d", len(refs))
	}
	hot := 0
	for _, r := range refs {
		if r < 10 {
			hot++
		}
	}
	if hot < 500 || hot > 900 {
		t.Fatalf("expected ~70%% hot references, got %d/1000", hot)
	}
}

func TestGetBatchAsyncHitsMissesAndDuplicates(t *testing.T) {
	vol, pool := newEnv(t)
	addr := vol.Alloc(4)
	buf := make([]byte, 32)
	for i := int64(0); i < 4; i++ {
		buf[0] = byte(10 + i)
		if err := vol.WriteBlock(addr+i, buf); err != nil {
			t.Fatal(err)
		}
	}
	c, err := New(vol, pool, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-cache one block so the batch mixes a hit with misses.
	p, err := c.Get(addr + 1)
	if err != nil {
		t.Fatal(err)
	}
	c.Unpin(p)
	vol.Stats().Reset()

	pages, join, err := c.GetBatchAsync([]int64{addr, addr + 1, addr + 3, addr})
	if err != nil {
		t.Fatal(err)
	}
	if err := join(); err != nil {
		t.Fatal(err)
	}
	for i, want := range []byte{10, 11, 13, 10} {
		if pages[i].Buf[0] != want {
			t.Fatalf("page %d holds %d, want %d", i, pages[i].Buf[0], want)
		}
	}
	if pages[0] != pages[3] {
		t.Fatal("duplicate address did not share one page")
	}
	// One read for each distinct miss; the hit and the duplicate are free.
	if reads := vol.Stats().Snapshot().Reads; reads != 2 {
		t.Fatalf("batch cost %d reads, want 2", reads)
	}
	for _, p := range pages {
		c.Unpin(p)
	}
	// Read-only admission: closing writes nothing back.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if writes := vol.Stats().Snapshot().Writes; writes != 0 {
		t.Fatalf("read-only batch wrote %d blocks back", writes)
	}
	if pool.InUse() != 0 {
		t.Fatalf("frame leak: %d", pool.InUse())
	}
}

func TestGetBatchAsyncRespectsPins(t *testing.T) {
	vol, pool := newEnv(t)
	addr := vol.Alloc(6)
	zero := make([]byte, 32)
	for i := int64(0); i < 6; i++ {
		if err := vol.WriteBlock(addr+i, zero); err != nil {
			t.Fatal(err)
		}
	}
	c, err := New(vol, pool, 3)
	if err != nil {
		t.Fatal(err)
	}
	// A pinned (dirty) writer page must survive a batch that fills the rest
	// of the cache...
	w, err := c.Get(addr + 5)
	if err != nil {
		t.Fatal(err)
	}
	w.MarkDirty()
	pages, join, err := c.GetBatchAsync([]int64{addr, addr + 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := join(); err != nil {
		t.Fatal(err)
	}
	for _, p := range pages {
		c.Unpin(p)
	}
	// ...and a batch that cannot make room without evicting it must fail
	// cleanly rather than touch it.
	if _, _, err := c.GetBatchAsync([]int64{addr + 2, addr + 3, addr + 4}); err == nil {
		t.Fatal("over-capacity batch against a pinned page succeeded")
	}
	c.Unpin(w)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if pool.InUse() != 0 {
		t.Fatalf("frame leak: %d", pool.InUse())
	}
}

func TestPeekPinsResidentOnly(t *testing.T) {
	vol, pool := newEnv(t)
	addr := vol.Alloc(2)
	zero := make([]byte, 32)
	for i := int64(0); i < 2; i++ {
		if err := vol.WriteBlock(addr+i, zero); err != nil {
			t.Fatal(err)
		}
	}
	c, err := New(vol, pool, 4)
	if err != nil {
		t.Fatal(err)
	}
	vol.Stats().Reset()
	if p := c.Peek(addr); p != nil {
		t.Fatal("peek of absent block returned a page")
	}
	if reads := vol.Stats().Snapshot().Reads; reads != 0 {
		t.Fatalf("peek cost %d reads", reads)
	}
	p, err := c.Get(addr)
	if err != nil {
		t.Fatal(err)
	}
	c.Unpin(p)
	q := c.Peek(addr)
	if q == nil {
		t.Fatal("peek of resident block returned nil")
	}
	c.Unpin(q)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}
