package cache

// Offline paging-policy simulators. Each takes a reference string of block
// ids and a frame count and returns the number of page faults. These model
// the survey's discussion of demand paging: LRU and FIFO are the classical
// online policies, CLOCK is LRU's practical approximation, and MIN is
// Belady's optimal offline policy, the lower bound every online policy is
// compared against.

// FaultsLRU replays refs under least-recently-used replacement.
func FaultsLRU(refs []int64, frames int) int {
	if frames <= 0 {
		return len(refs)
	}
	type node struct {
		id         int64
		prev, next *node
	}
	resident := make(map[int64]*node, frames)
	var head, tail *node // head = most recent
	unlink := func(n *node) {
		if n.prev != nil {
			n.prev.next = n.next
		} else {
			head = n.next
		}
		if n.next != nil {
			n.next.prev = n.prev
		} else {
			tail = n.prev
		}
		n.prev, n.next = nil, nil
	}
	pushFront := func(n *node) {
		n.next = head
		if head != nil {
			head.prev = n
		}
		head = n
		if tail == nil {
			tail = n
		}
	}
	faults := 0
	for _, r := range refs {
		if n, ok := resident[r]; ok {
			unlink(n)
			pushFront(n)
			continue
		}
		faults++
		if len(resident) == frames {
			victim := tail
			unlink(victim)
			delete(resident, victim.id)
		}
		n := &node{id: r}
		pushFront(n)
		resident[r] = n
	}
	return faults
}

// FaultsFIFO replays refs under first-in-first-out replacement.
func FaultsFIFO(refs []int64, frames int) int {
	if frames <= 0 {
		return len(refs)
	}
	resident := make(map[int64]bool, frames)
	queue := make([]int64, 0, frames)
	faults := 0
	for _, r := range refs {
		if resident[r] {
			continue
		}
		faults++
		if len(queue) == frames {
			victim := queue[0]
			queue = queue[1:]
			delete(resident, victim)
		}
		queue = append(queue, r)
		resident[r] = true
	}
	return faults
}

// FaultsCLOCK replays refs under the second-chance (CLOCK) approximation of
// LRU.
func FaultsCLOCK(refs []int64, frames int) int {
	if frames <= 0 {
		return len(refs)
	}
	type slot struct {
		id  int64
		ref bool
	}
	slots := make([]slot, 0, frames)
	index := make(map[int64]int, frames)
	hand := 0
	faults := 0
	for _, r := range refs {
		if i, ok := index[r]; ok {
			slots[i].ref = true
			continue
		}
		faults++
		if len(slots) < frames {
			index[r] = len(slots)
			slots = append(slots, slot{id: r, ref: true})
			continue
		}
		for slots[hand].ref {
			slots[hand].ref = false
			hand = (hand + 1) % frames
		}
		delete(index, slots[hand].id)
		slots[hand] = slot{id: r, ref: true}
		index[r] = hand
		hand = (hand + 1) % frames
	}
	return faults
}

// FaultsMIN replays refs under Belady's optimal offline policy: evict the
// resident block whose next use is farthest in the future.
func FaultsMIN(refs []int64, frames int) int {
	if frames <= 0 {
		return len(refs)
	}
	// nextUse[i] = index of the next occurrence of refs[i] after i, or
	// len(refs) if none.
	next := make([]int, len(refs))
	last := make(map[int64]int)
	for i := len(refs) - 1; i >= 0; i-- {
		if j, ok := last[refs[i]]; ok {
			next[i] = j
		} else {
			next[i] = len(refs)
		}
		last[refs[i]] = i
	}
	// resident maps block id -> next use index.
	resident := make(map[int64]int, frames)
	faults := 0
	for i, r := range refs {
		if _, ok := resident[r]; ok {
			resident[r] = next[i]
			continue
		}
		faults++
		if len(resident) == frames {
			victimID, farthest := int64(-1), -1
			for id, nu := range resident {
				if nu > farthest {
					farthest = nu
					victimID = id
				}
			}
			delete(resident, victimID)
		}
		resident[r] = next[i]
	}
	return faults
}

// LoopRefs generates the reference string of k passes over blocks 0..n-1,
// the classic adversarial workload for LRU when n > frames.
func LoopRefs(n, passes int) []int64 {
	out := make([]int64, 0, n*passes)
	for p := 0; p < passes; p++ {
		for i := 0; i < n; i++ {
			out = append(out, int64(i))
		}
	}
	return out
}

// ScanRefs generates a single sequential pass over n blocks.
func ScanRefs(n int) []int64 { return LoopRefs(n, 1) }

// WorkingSetRefs interleaves a hot set of h blocks (probability pHot per
// reference, supplied as hot references out of every ten) with a cold
// sequential stream, modelling database index-plus-scan traffic. rng is any
// deterministic integer stream.
func WorkingSetRefs(total, hot int, hotOutOfTen int, rng func() int64) []int64 {
	out := make([]int64, total)
	cold := int64(hot)
	for i := range out {
		if int(rng()%10) < hotOutOfTen {
			out[i] = rng() % int64(hot)
		} else {
			out[i] = cold
			cold++
		}
	}
	return out
}
