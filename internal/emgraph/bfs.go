package emgraph

import (
	"fmt"

	"em/internal/extsort"
	"em/internal/pdm"
	"em/internal/record"
	"em/internal/stream"
)

// BFS runs external breadth-first search from src and returns (vertex,
// level) pairs for every reachable vertex, sorted by vertex. It is the
// level-synchronized sorting-and-scanning formulation of Munagala–Ranade,
// generalized to directed graphs: the next frontier is the sorted neighbour
// multiset of the current one minus the full visited set, which is itself
// maintained as a sorted file and extended by a two-way merge each round.
// The cost is O(V + Sort(E) + L·scan(V)) I/Os for a graph of L BFS levels;
// for undirected graphs BFSUndirected implements the survey's exact variant,
// which subtracts only the two most recent levels.
func BFS(g *Graph, pool *pdm.Pool, src int64) (*stream.File[record.Pair], error) {
	return bfsCore(g, pool, src, false)
}

// BFSUndirected is the Munagala–Ranade external BFS exactly as the survey
// states it, valid only when every edge is present in both directions (as
// produced by BuildUndirected): on an undirected graph a neighbour of level
// t-1 lies in level t-2, t-1, or t, so subtracting the two most recent
// levels suffices and the visited-set merge is avoided, giving the classical
// O(V + Sort(E)) bound. Running it on a general digraph with cycles would
// re-discover vertices and loop; use BFS there.
func BFSUndirected(g *Graph, pool *pdm.Pool, src int64) (*stream.File[record.Pair], error) {
	return bfsCore(g, pool, src, true)
}

func bfsCore(g *Graph, pool *pdm.Pool, src int64, undirected bool) (*stream.File[record.Pair], error) {
	if src < 0 || src >= g.v {
		return nil, fmt.Errorf("%w: source %d", ErrBadVertex, src)
	}
	out := stream.NewFile[record.Pair](g.vol, record.PairCodec{})
	ow, err := stream.NewWriter(out, pool)
	if err != nil {
		return nil, err
	}
	// prev and prev2 are the two most recent levels, each sorted. In the
	// general (directed) variant, visited accumulates every level seen so far
	// as one sorted file; in the undirected variant it stays unused.
	prev, err := stream.FromSlice(g.vol, pool, record.U64Codec{}, []uint64{uint64(src)})
	if err != nil {
		ow.Close()
		return nil, err
	}
	prev2 := stream.NewFile[uint64](g.vol, record.U64Codec{})
	var visited *stream.File[uint64]
	if !undirected {
		visited, err = stream.FromSlice(g.vol, pool, record.U64Codec{}, []uint64{uint64(src)})
		if err != nil {
			ow.Close()
			return nil, err
		}
	}
	if err := ow.Append(record.Pair{A: src, B: 0}); err != nil {
		ow.Close()
		return nil, err
	}

	for level := int64(1); prev.Len() > 0; level++ {
		// Gather the multiset of neighbours of the current frontier.
		raw := stream.NewFile[uint64](g.vol, record.U64Codec{})
		rw, err := stream.NewWriter(raw, pool)
		if err != nil {
			ow.Close()
			return nil, err
		}
		err = stream.ForEach(prev, pool, func(u uint64) error {
			return g.appendNeighbors(pool, int64(u), func(v int64) error {
				return rw.Append(uint64(v))
			})
		})
		if err != nil {
			rw.Close()
			ow.Close()
			return nil, err
		}
		if err := rw.Close(); err != nil {
			ow.Close()
			return nil, err
		}
		// Sort the multiset, then subtract the already-seen vertices in one
		// synchronized scan, deduplicating as we go.
		sorted, err := extsort.MergeSort(raw, pool, func(a, b uint64) bool { return a < b }, nil)
		if err != nil {
			ow.Close()
			return nil, err
		}
		raw.Release()
		var next *stream.File[uint64]
		if undirected {
			next, err = subtract(sorted, prev, prev2, pool)
		} else {
			next, err = subtract(sorted, visited, prev2, pool)
		}
		if err != nil {
			ow.Close()
			return nil, err
		}
		sorted.Release()
		if !undirected {
			merged, err := mergeSorted(visited, next, pool)
			if err != nil {
				ow.Close()
				return nil, err
			}
			visited.Release()
			visited = merged
		}
		prev2.Release()
		prev2, prev = prev, next
		if err := stream.ForEach(next, pool, func(u uint64) error {
			return ow.Append(record.Pair{A: int64(u), B: level})
		}); err != nil {
			ow.Close()
			return nil, err
		}
	}
	prev.Release()
	prev2.Release()
	if visited != nil {
		visited.Release()
	}
	if err := ow.Close(); err != nil {
		return nil, err
	}
	// Canonical order: sort by vertex id.
	res, err := extsort.MergeSort(out, pool, func(a, b record.Pair) bool { return a.A < b.A }, nil)
	if err != nil {
		return nil, err
	}
	out.Release()
	return res, nil
}

// mergeSorted merges two sorted duplicate-free files into one sorted
// duplicate-free file with a single synchronized scan.
func mergeSorted(a, b *stream.File[uint64], pool *pdm.Pool) (*stream.File[uint64], error) {
	out := stream.NewFile[uint64](a.Vol(), record.U64Codec{})
	w, err := stream.NewWriter(out, pool)
	if err != nil {
		return nil, err
	}
	ar, err := stream.NewReader(a, pool)
	if err != nil {
		w.Close()
		return nil, err
	}
	defer ar.Close()
	br, err := stream.NewReader(b, pool)
	if err != nil {
		w.Close()
		return nil, err
	}
	defer br.Close()
	av, aOK, err := ar.Next()
	if err != nil {
		w.Close()
		return nil, err
	}
	bv, bOK, err := br.Next()
	if err != nil {
		w.Close()
		return nil, err
	}
	for aOK || bOK {
		var v uint64
		switch {
		case aOK && bOK && av == bv:
			v = av
			if av, aOK, err = ar.Next(); err != nil {
				w.Close()
				return nil, err
			}
			if bv, bOK, err = br.Next(); err != nil {
				w.Close()
				return nil, err
			}
		case bOK && (!aOK || bv < av):
			v = bv
			if bv, bOK, err = br.Next(); err != nil {
				w.Close()
				return nil, err
			}
		default:
			v = av
			if av, aOK, err = ar.Next(); err != nil {
				w.Close()
				return nil, err
			}
		}
		if err := w.Append(v); err != nil {
			w.Close()
			return nil, err
		}
	}
	return out, w.Close()
}

// subtract returns the deduplicated elements of sorted (ascending, with
// duplicates) that appear in neither a nor b (both sorted, duplicate-free).
func subtract(sorted, a, b *stream.File[uint64], pool *pdm.Pool) (*stream.File[uint64], error) {
	out := stream.NewFile[uint64](sorted.Vol(), record.U64Codec{})
	w, err := stream.NewWriter(out, pool)
	if err != nil {
		return nil, err
	}
	sr, err := stream.NewReader(sorted, pool)
	if err != nil {
		w.Close()
		return nil, err
	}
	defer sr.Close()
	ar, err := stream.NewReader(a, pool)
	if err != nil {
		w.Close()
		return nil, err
	}
	defer ar.Close()
	br, err := stream.NewReader(b, pool)
	if err != nil {
		w.Close()
		return nil, err
	}
	defer br.Close()

	av, aOK, err := ar.Next()
	if err != nil {
		w.Close()
		return nil, err
	}
	bv, bOK, err := br.Next()
	if err != nil {
		w.Close()
		return nil, err
	}
	var last uint64
	haveLast := false
	for {
		v, ok, err := sr.Next()
		if err != nil {
			w.Close()
			return nil, err
		}
		if !ok {
			break
		}
		if haveLast && v == last {
			continue // dedupe
		}
		last, haveLast = v, true
		for aOK && av < v {
			av, aOK, err = ar.Next()
			if err != nil {
				w.Close()
				return nil, err
			}
		}
		if aOK && av == v {
			continue
		}
		for bOK && bv < v {
			bv, bOK, err = br.Next()
			if err != nil {
				w.Close()
				return nil, err
			}
		}
		if bOK && bv == v {
			continue
		}
		if err := w.Append(v); err != nil {
			w.Close()
			return nil, err
		}
	}
	return out, w.Close()
}

// NaiveBFS is the survey's baseline: textbook BFS with the visited set kept
// on disk as a bitmap, probed and updated once per arc — Θ(V + E) I/Os on
// unstructured graphs. The FIFO queue holds vertex ids only (Θ(V) words of
// catalog-scale memory, as with the adjacency offsets).
func NaiveBFS(g *Graph, pool *pdm.Pool, src int64) (*stream.File[record.Pair], error) {
	if src < 0 || src >= g.v {
		return nil, fmt.Errorf("%w: source %d", ErrBadVertex, src)
	}
	visited, err := newBitmap(g.vol, pool, g.v)
	if err != nil {
		return nil, err
	}
	out := stream.NewFile[record.Pair](g.vol, record.PairCodec{})
	w, err := stream.NewWriter(out, pool)
	if err != nil {
		return nil, err
	}
	if err := visited.set(pool, src); err != nil {
		w.Close()
		return nil, err
	}
	type qItem struct {
		v     int64
		level int64
	}
	queue := []qItem{{src, 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if err := w.Append(record.Pair{A: cur.v, B: cur.level}); err != nil {
			w.Close()
			return nil, err
		}
		var nbrs []int64
		if err := g.appendNeighbors(pool, cur.v, func(v int64) error {
			nbrs = append(nbrs, v)
			return nil
		}); err != nil {
			w.Close()
			return nil, err
		}
		for _, v := range nbrs {
			seen, err := visited.get(pool, v) // one I/O per arc: the Θ(E) term
			if err != nil {
				w.Close()
				return nil, err
			}
			if seen {
				continue
			}
			if err := visited.set(pool, v); err != nil {
				w.Close()
				return nil, err
			}
			queue = append(queue, qItem{v, cur.level + 1})
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	res, err := extsort.MergeSort(out, pool, func(a, b record.Pair) bool { return a.A < b.A }, nil)
	if err != nil {
		return nil, err
	}
	out.Release()
	return res, nil
}

// bitmap is an on-disk bit array with one-I/O get and read-modify-write set.
type bitmap struct {
	vol  *pdm.Volume
	base int64
	bits int64
}

func newBitmap(vol *pdm.Volume, pool *pdm.Pool, bits int64) (*bitmap, error) {
	bb := int64(vol.BlockBytes())
	blocks := (bits + bb*8 - 1) / (bb * 8)
	if blocks == 0 {
		blocks = 1
	}
	b := &bitmap{vol: vol, base: vol.Alloc(int(blocks)), bits: bits}
	// Clear every block: the volume reuses freed blocks without zeroing them
	// (it models a disk, not an allocator), and the survey's naive BFS pays
	// Θ(V/B) writes to initialize its visited bits in any case.
	fr, err := pool.Alloc()
	if err != nil {
		return nil, err
	}
	defer fr.Release()
	clear(fr.Buf)
	for i := int64(0); i < blocks; i++ {
		if err := vol.WriteBlock(b.base+i, fr.Buf); err != nil {
			return nil, err
		}
	}
	return b, nil
}

func (b *bitmap) locate(i int64) (blk int64, byteOff int, mask byte) {
	bitsPerBlock := int64(b.vol.BlockBytes()) * 8
	return b.base + i/bitsPerBlock, int((i % bitsPerBlock) / 8), 1 << uint((i%bitsPerBlock)%8)
}

func (b *bitmap) get(pool *pdm.Pool, i int64) (bool, error) {
	fr, err := pool.Alloc()
	if err != nil {
		return false, err
	}
	defer fr.Release()
	blk, off, mask := b.locate(i)
	if err := b.vol.ReadBlock(blk, fr.Buf); err != nil {
		return false, err
	}
	return fr.Buf[off]&mask != 0, nil
}

func (b *bitmap) set(pool *pdm.Pool, i int64) error {
	fr, err := pool.Alloc()
	if err != nil {
		return err
	}
	defer fr.Release()
	blk, off, mask := b.locate(i)
	if err := b.vol.ReadBlock(blk, fr.Buf); err != nil {
		return err
	}
	fr.Buf[off] |= mask
	return b.vol.WriteBlock(blk, fr.Buf)
}

// ConnectedComponents labels every vertex of an undirected graph with the
// smallest vertex id in its component, running one external BFS per
// component. The per-vertex "already labelled" set is catalog-scale memory
// (one bit per vertex), matching the offsets array's assumption.
func ConnectedComponents(g *Graph, pool *pdm.Pool) (*stream.File[record.Pair], error) {
	out := stream.NewFile[record.Pair](g.vol, record.PairCodec{})
	w, err := stream.NewWriter(out, pool)
	if err != nil {
		return nil, err
	}
	labelled := make([]bool, g.v)
	for src := int64(0); src < g.v; src++ {
		if labelled[src] {
			continue
		}
		levels, err := BFSUndirected(g, pool, src)
		if err != nil {
			w.Close()
			return nil, err
		}
		err = stream.ForEach(levels, pool, func(p record.Pair) error {
			labelled[p.A] = true
			return w.Append(record.Pair{A: p.A, B: src})
		})
		levels.Release()
		if err != nil {
			w.Close()
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	res, err := extsort.MergeSort(out, pool, func(a, b record.Pair) bool { return a.A < b.A }, nil)
	if err != nil {
		return nil, err
	}
	out.Release()
	return res, nil
}

// GridEdges generates the undirected edges of a rows×cols grid graph, the
// canonical large-diameter workload for BFS experiments.
func GridEdges(vol *pdm.Volume, pool *pdm.Pool, rows, cols int) (*stream.File[record.Pair], error) {
	f := stream.NewFile[record.Pair](vol, record.PairCodec{})
	w, err := stream.NewWriter(f, pool)
	if err != nil {
		return nil, err
	}
	id := func(r, c int) int64 { return int64(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				if err := w.Append(record.Pair{A: id(r, c), B: id(r, c+1)}); err != nil {
					w.Close()
					return nil, err
				}
			}
			if r+1 < rows {
				if err := w.Append(record.Pair{A: id(r, c), B: id(r+1, c)}); err != nil {
					w.Close()
					return nil, err
				}
			}
		}
	}
	return f, w.Close()
}
