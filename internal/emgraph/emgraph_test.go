package emgraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"em/internal/pdm"
	"em/internal/record"
	"em/internal/stream"
)

func newEnv(t testing.TB) (*pdm.Volume, *pdm.Pool) {
	t.Helper()
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 128, MemBlocks: 12, Disks: 1})
	return vol, pdm.PoolFor(vol)
}

func edgeFile(t testing.TB, vol *pdm.Volume, pool *pdm.Pool, edges [][2]int64) *stream.File[record.Pair] {
	t.Helper()
	pairs := make([]record.Pair, len(edges))
	for i, e := range edges {
		pairs[i] = record.Pair{A: e[0], B: e[1]}
	}
	f, err := stream.FromSlice(vol, pool, record.PairCodec{}, pairs)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func levelsOf(t *testing.T, f *stream.File[record.Pair], pool *pdm.Pool) map[int64]int64 {
	t.Helper()
	out := map[int64]int64{}
	if err := stream.ForEach(f, pool, func(p record.Pair) error {
		if _, dup := out[p.A]; dup {
			t.Fatalf("vertex %d reported twice", p.A)
		}
		out[p.A] = p.B
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// refBFS computes levels with a plain in-memory BFS.
func refBFS(v int64, edges [][2]int64, src int64, directed bool) map[int64]int64 {
	adj := make(map[int64][]int64)
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		if !directed {
			adj[e[1]] = append(adj[e[1]], e[0])
		}
	}
	lev := map[int64]int64{src: 0}
	queue := []int64{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range adj[u] {
			if _, ok := lev[w]; !ok {
				lev[w] = lev[u] + 1
				queue = append(queue, w)
			}
		}
	}
	return lev
}

func TestBuildAndDegrees(t *testing.T) {
	vol, pool := newEnv(t)
	edges := [][2]int64{{0, 1}, {0, 2}, {1, 2}, {3, 0}}
	f := edgeFile(t, vol, pool, edges)
	g, err := Build(vol, pool, 4, f)
	if err != nil {
		t.Fatal(err)
	}
	if g.V() != 4 || g.E() != 4 {
		t.Fatalf("V=%d E=%d", g.V(), g.E())
	}
	wantDeg := []int64{2, 1, 0, 1}
	for u, want := range wantDeg {
		d, err := g.Degree(int64(u))
		if err != nil || d != want {
			t.Fatalf("deg(%d) = %d,%v want %d", u, d, err, want)
		}
	}
	nbrs, err := g.Neighbors(pool, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbrs) != 2 || nbrs[0] != 1 || nbrs[1] != 2 {
		t.Fatalf("neighbors(0) = %v", nbrs)
	}
	if _, err := g.Degree(4); err == nil {
		t.Fatal("out-of-range degree accepted")
	}
}

func TestBuildRejectsBadArcs(t *testing.T) {
	vol, pool := newEnv(t)
	f := edgeFile(t, vol, pool, [][2]int64{{0, 5}})
	if _, err := Build(vol, pool, 3, f); err == nil {
		t.Fatal("arc to vertex 5 accepted with V=3")
	}
}

func TestBFSMatchesReferenceDirected(t *testing.T) {
	vol, pool := newEnv(t)
	edges := [][2]int64{{0, 1}, {1, 2}, {2, 3}, {0, 4}, {4, 3}, {3, 5}, {6, 0}}
	f := edgeFile(t, vol, pool, edges)
	g, err := Build(vol, pool, 7, f)
	if err != nil {
		t.Fatal(err)
	}
	out, err := BFS(g, pool, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := levelsOf(t, out, pool)
	want := refBFS(7, edges, 0, true)
	if len(got) != len(want) {
		t.Fatalf("visited %d vertices, want %d", len(got), len(want))
	}
	for v, l := range want {
		if got[v] != l {
			t.Fatalf("level(%d) = %d, want %d", v, got[v], l)
		}
	}
	if _, ok := got[6]; ok {
		t.Fatal("unreachable vertex reported")
	}
}

func TestBFSGrid(t *testing.T) {
	vol, pool := newEnv(t)
	rows, cols := 8, 8
	ef, err := GridEdges(vol, pool, rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildUndirected(vol, pool, int64(rows*cols), ef)
	if err != nil {
		t.Fatal(err)
	}
	out, err := BFS(g, pool, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := levelsOf(t, out, pool)
	if len(got) != rows*cols {
		t.Fatalf("visited %d of %d", len(got), rows*cols)
	}
	// On a grid, level = Manhattan distance from the corner.
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if got[int64(r*cols+c)] != int64(r+c) {
				t.Fatalf("level(%d,%d) = %d, want %d", r, c, got[int64(r*cols+c)], r+c)
			}
		}
	}
	if pool.InUse() != 0 {
		t.Fatalf("leaked %d frames", pool.InUse())
	}
}

func TestNaiveBFSMatchesBFS(t *testing.T) {
	vol, pool := newEnv(t)
	rng := rand.New(rand.NewSource(1))
	v := int64(60)
	var edges [][2]int64
	for i := 0; i < 150; i++ {
		edges = append(edges, [2]int64{rng.Int63n(v), rng.Int63n(v)})
	}
	f := edgeFile(t, vol, pool, edges)
	g, err := BuildUndirected(vol, pool, v, f)
	if err != nil {
		t.Fatal(err)
	}
	a, err := BFS(g, pool, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NaiveBFS(g, pool, 0)
	if err != nil {
		t.Fatal(err)
	}
	la := levelsOf(t, a, pool)
	lb := levelsOf(t, b, pool)
	if len(la) != len(lb) {
		t.Fatalf("visited sets differ: %d vs %d", len(la), len(lb))
	}
	for k, v := range la {
		if lb[k] != v {
			t.Fatalf("level(%d): %d vs %d", k, v, lb[k])
		}
	}
}

func TestExternalBFSBeatsNaiveIO(t *testing.T) {
	// F5: on a sparse random graph with realistic B, MR BFS ≈ V + Sort(E)
	// beats the naive Θ(V + E) visited-bit probing.
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 1024, MemBlocks: 12, Disks: 1})
	pool := pdm.PoolFor(vol)
	rng := rand.New(rand.NewSource(2))
	v := int64(2000)
	var edges [][2]int64
	// Connected ring plus random chords: degree ≈ 6.
	for i := int64(0); i < v; i++ {
		edges = append(edges, [2]int64{i, (i + 1) % v})
	}
	for i := 0; i < int(2*v); i++ {
		edges = append(edges, [2]int64{rng.Int63n(v), rng.Int63n(v)})
	}
	f := edgeFile(t, vol, pool, edges)
	g, err := BuildUndirected(vol, pool, v, f)
	if err != nil {
		t.Fatal(err)
	}
	vol.Stats().Reset()
	if _, err := NaiveBFS(g, pool, 0); err != nil {
		t.Fatal(err)
	}
	naiveIO := vol.Stats().Total()
	vol.Stats().Reset()
	if _, err := BFS(g, pool, 0); err != nil {
		t.Fatal(err)
	}
	mrIO := vol.Stats().Total()
	if mrIO >= naiveIO {
		t.Fatalf("MR BFS (%d I/Os) should beat naive BFS (%d I/Os)", mrIO, naiveIO)
	}
}

func TestConnectedComponents(t *testing.T) {
	vol, pool := newEnv(t)
	// Three components: {0,1,2}, {3,4}, {5}.
	edges := [][2]int64{{0, 1}, {1, 2}, {3, 4}}
	f := edgeFile(t, vol, pool, edges)
	g, err := BuildUndirected(vol, pool, 6, f)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ConnectedComponents(g, pool)
	if err != nil {
		t.Fatal(err)
	}
	got := levelsOf(t, out, pool) // (vertex, label)
	want := map[int64]int64{0: 0, 1: 0, 2: 0, 3: 3, 4: 3, 5: 5}
	if len(got) != len(want) {
		t.Fatalf("labelled %d vertices", len(got))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("component(%d) = %d, want %d", k, got[k], v)
		}
	}
}

// Property: MR BFS visits exactly the reference reachable set with correct
// levels on arbitrary sparse digraphs.
func TestQuickBFSMatchesReference(t *testing.T) {
	f := func(raw []uint16, vRaw uint8) bool {
		v := int64(vRaw%30) + 2
		var edges [][2]int64
		for i := 0; i+1 < len(raw) && i < 80; i += 2 {
			edges = append(edges, [2]int64{int64(raw[i]) % v, int64(raw[i+1]) % v})
		}
		vol := pdm.MustVolume(pdm.Config{BlockBytes: 128, MemBlocks: 12, Disks: 1})
		pool := pdm.PoolFor(vol)
		pairs := make([]record.Pair, len(edges))
		for i, e := range edges {
			pairs[i] = record.Pair{A: e[0], B: e[1]}
		}
		ef, err := stream.FromSlice(vol, pool, record.PairCodec{}, pairs)
		if err != nil {
			return false
		}
		g, err := Build(vol, pool, v, ef)
		if err != nil {
			return false
		}
		out, err := BFS(g, pool, 0)
		if err != nil {
			return false
		}
		got := map[int64]int64{}
		if err := stream.ForEach(out, pool, func(p record.Pair) error {
			got[p.A] = p.B
			return nil
		}); err != nil {
			return false
		}
		want := refBFS(v, edges, 0, true)
		if len(got) != len(want) {
			return false
		}
		for k, l := range want {
			if got[k] != l {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
