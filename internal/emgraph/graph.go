// Package emgraph implements the survey's external graph-search results on
// top of the sorting and scanning substrate: adjacency-list graph storage,
// the Munagala–Ranade external BFS with O(V + Sort(E)) I/Os, the naive BFS
// baseline whose per-edge visited-bit probes cost Θ(V + E) I/Os, and
// connected components by repeated external search (experiment F5).
package emgraph

import (
	"errors"
	"fmt"

	"em/internal/extsort"
	"em/internal/pdm"
	"em/internal/record"
	"em/internal/stream"
)

// ErrBadVertex reports a vertex id outside [0, V).
var ErrBadVertex = errors.New("emgraph: vertex out of range")

// Graph is a static directed graph with vertices 0..V-1 whose adjacency
// lists are packed, sorted by source, in a stream file. The per-vertex
// offset catalog is held in memory — Θ(V) words, the standard assumption
// for the adjacency-list format (the edge data itself never is).
type Graph struct {
	vol     *pdm.Volume
	adj     *stream.File[record.Pair]
	offsets []int64 // offsets[u]..offsets[u+1] are u's arcs; len V+1
	v       int64
}

// Build constructs a graph from an arbitrary-order arc file by sorting it
// with Sort(E) I/Os and recording per-vertex offsets. Arcs are (src, dst)
// pairs; parallel arcs are kept.
func Build(vol *pdm.Volume, pool *pdm.Pool, v int64, arcs *stream.File[record.Pair]) (*Graph, error) {
	if v < 1 {
		return nil, fmt.Errorf("emgraph: need at least one vertex, got %d", v)
	}
	sorted, err := extsort.MergeSort(arcs, pool, func(a, b record.Pair) bool {
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	}, nil)
	if err != nil {
		return nil, err
	}
	g := &Graph{vol: vol, adj: sorted, offsets: make([]int64, v+1), v: v}
	idx := int64(0)
	next := int64(0) // next vertex whose offset is unset
	err = stream.ForEach(sorted, pool, func(p record.Pair) error {
		if p.A < 0 || p.A >= v || p.B < 0 || p.B >= v {
			return fmt.Errorf("%w: arc (%d,%d) with V=%d", ErrBadVertex, p.A, p.B, v)
		}
		for next <= p.A {
			g.offsets[next] = idx
			next++
		}
		idx++
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ; next <= v; next++ {
		g.offsets[next] = idx
	}
	return g, nil
}

// BuildUndirected materialises both arc directions before building.
func BuildUndirected(vol *pdm.Volume, pool *pdm.Pool, v int64, edges *stream.File[record.Pair]) (*Graph, error) {
	arcs := stream.NewFile[record.Pair](vol, record.PairCodec{})
	w, err := stream.NewWriter(arcs, pool)
	if err != nil {
		return nil, err
	}
	if err := stream.ForEach(edges, pool, func(p record.Pair) error {
		if err := w.Append(p); err != nil {
			return err
		}
		return w.Append(record.Pair{A: p.B, B: p.A})
	}); err != nil {
		w.Close()
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	g, err := Build(vol, pool, v, arcs)
	if err != nil {
		return nil, err
	}
	arcs.Release()
	return g, nil
}

// V returns the vertex count.
func (g *Graph) V() int64 { return g.v }

// E returns the arc count.
func (g *Graph) E() int64 { return g.adj.Len() }

// Degree returns vertex u's out-degree.
func (g *Graph) Degree(u int64) (int64, error) {
	if u < 0 || u >= g.v {
		return 0, fmt.Errorf("%w: %d", ErrBadVertex, u)
	}
	return g.offsets[u+1] - g.offsets[u], nil
}

// appendNeighbors reads u's adjacency segment — O(1 + deg(u)/B) block reads
// — and appends each neighbour to w.
func (g *Graph) appendNeighbors(pool *pdm.Pool, u int64, emit func(int64) error) error {
	if u < 0 || u >= g.v {
		return fmt.Errorf("%w: %d", ErrBadVertex, u)
	}
	lo, hi := g.offsets[u], g.offsets[u+1]
	if lo == hi {
		return nil
	}
	fr, err := pool.Alloc()
	if err != nil {
		return err
	}
	defer fr.Release()
	per := int64(g.adj.PerBlock())
	codec := g.adj.Codec()
	addrs := stream.BlockAddrs(g.adj)
	i := lo
	for i < hi {
		blk := i / per
		if err := g.vol.ReadBlock(addrs[blk], fr.Buf); err != nil {
			return err
		}
		for ; i < hi && i/per == blk; i++ {
			off := int(i%per) * codec.Size()
			if err := emit(codec.Decode(fr.Buf[off:]).B); err != nil {
				return err
			}
		}
	}
	return nil
}

// Neighbors returns u's neighbours (for tests and small queries).
func (g *Graph) Neighbors(pool *pdm.Pool, u int64) ([]int64, error) {
	var out []int64
	err := g.appendNeighbors(pool, u, func(v int64) error {
		out = append(out, v)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
