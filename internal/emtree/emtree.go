// Package emtree implements the survey's Euler-tour technique for external
// tree computations: a rooted tree stored as an on-disk edge list is
// linearised into an Euler tour (a linked list of directed arcs) using
// O(Sort(N)) I/Os, after which weighted list ranking answers the classical
// batch queries — every node's depth and every node's subtree size — also
// in O(Sort(N)) I/Os. Pointer-chasing alternatives would pay Θ(N) I/Os.
//
// The tour of a tree with E = N-1 edges has 2E arcs: arc 2i travels edge i
// downward (parent to child) and arc 2i+1 travels it upward. The successor
// structure is computed with three sorted scans and two merge joins; no
// per-node state is held in memory beyond the constant-size scan frames.
package emtree

import (
	"errors"
	"fmt"

	"em/internal/extsort"
	"em/internal/listrank"
	"em/internal/pdm"
	"em/internal/record"
	"em/internal/stream"
)

// ErrBadTree reports a malformed parent/child edge list.
var ErrBadTree = errors.New("emtree: malformed tree")

// Tour is an Euler tour of a rooted tree, ready for list ranking.
type Tour struct {
	// Arcs holds one (arc, succArc, delta) triple per directed arc, where
	// delta is +1 for down arcs (even ids) and -1 for up arcs (odd ids),
	// and succArc is listrank.Tail for the final arc of the tour.
	Arcs *stream.File[record.Triple]
	// DownArcChild maps down arcs to the child node they enter: one
	// (downArcID, child) pair per tree edge, sorted by arc id.
	DownArcChild *stream.File[record.Pair]
	// Head is the first arc of the tour (the root's first down arc).
	Head int64
	// Root is the tree's root node.
	Root int64
	// N is the number of nodes.
	N int64
}

// Release frees the tour's files.
func (t *Tour) Release() {
	t.Arcs.Release()
	t.DownArcChild.Release()
}

// BuildEulerTour linearises a rooted tree given as (parent, child) pairs
// over nodes 0..n-1. Every node except root must appear exactly once as a
// child. The construction performs a constant number of sorts and merge
// scans: O(Sort(N)) I/Os.
func BuildEulerTour(edges *stream.File[record.Pair], pool *pdm.Pool, n, root int64) (*Tour, error) {
	vol := edges.Vol()
	if edges.Len() != n-1 {
		return nil, fmt.Errorf("%w: %d edges for %d nodes", ErrBadTree, edges.Len(), n)
	}
	if root < 0 || root >= n {
		return nil, fmt.Errorf("%w: root %d out of range", ErrBadTree, root)
	}

	// E: edges sorted by (parent, child); the position in E is the edge id.
	e, err := extsort.MergeSort(edges, pool, func(a, b record.Pair) bool {
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	}, nil)
	if err != nil {
		return nil, err
	}

	// One pass over E derives, per edge i: the parent p_i, child c_i, and
	// the next-sibling edge id (or -1). Simultaneously emit FC = (node,
	// firstChildEdge) per parent run — already sorted by node since E is
	// sorted by parent — and PE = (child, edgeID) for a later sort.
	type scanOut struct {
		fc *stream.File[record.Pair] // (parent, first child edge)
		pe *stream.File[record.Pair] // (child, edge id), unsorted by child
		ns *stream.File[record.Pair] // (edge id, next sibling edge id or -1)
	}
	so := scanOut{
		fc: stream.NewFile[record.Pair](vol, record.PairCodec{}),
		pe: stream.NewFile[record.Pair](vol, record.PairCodec{}),
		ns: stream.NewFile[record.Pair](vol, record.PairCodec{}),
	}
	fcw, err := stream.NewWriter(so.fc, pool)
	if err != nil {
		return nil, err
	}
	pew, err := stream.NewWriter(so.pe, pool)
	if err != nil {
		fcw.Close()
		return nil, err
	}
	nsw, err := stream.NewWriter(so.ns, pool)
	if err != nil {
		fcw.Close()
		pew.Close()
		return nil, err
	}
	closeScan := func() {
		fcw.Close()
		pew.Close()
		nsw.Close()
	}
	var prev record.Pair
	havePrev := false
	idx := int64(0)
	err = stream.ForEach(e, pool, func(p record.Pair) error {
		if p.B == root {
			return fmt.Errorf("%w: root %d appears as a child", ErrBadTree, root)
		}
		if p.A < 0 || p.A >= n || p.B < 0 || p.B >= n {
			return fmt.Errorf("%w: edge (%d,%d) out of range", ErrBadTree, p.A, p.B)
		}
		if havePrev && prev == p {
			return fmt.Errorf("%w: duplicate edge (%d,%d)", ErrBadTree, p.A, p.B)
		}
		if err := pew.Append(record.Pair{A: p.B, B: idx}); err != nil {
			return err
		}
		if !havePrev || prev.A != p.A {
			if err := fcw.Append(record.Pair{A: p.A, B: idx}); err != nil {
				return err
			}
		}
		if havePrev && prev.A == p.A {
			if err := nsw.Append(record.Pair{A: idx - 1, B: idx}); err != nil {
				return err
			}
		}
		if havePrev && prev.A != p.A {
			if err := nsw.Append(record.Pair{A: idx - 1, B: -1}); err != nil {
				return err
			}
		}
		prev, havePrev = p, true
		idx++
		return nil
	})
	if err != nil {
		closeScan()
		return nil, err
	}
	if havePrev {
		if err := nsw.Append(record.Pair{A: idx - 1, B: -1}); err != nil {
			closeScan()
			return nil, err
		}
	}
	closeScan()

	// PE sorted by child: each node's unique incoming edge. This is also
	// the down-arc→child map once arc ids are applied.
	pe, err := extsort.MergeSort(so.pe, pool, func(a, b record.Pair) bool { return a.A < b.A }, nil)
	if err != nil {
		return nil, err
	}
	so.pe.Release()
	// Validate: every non-root node appears exactly once as a child.
	var lastChild int64 = -1
	dup := false
	if err := stream.ForEach(pe, pool, func(p record.Pair) error {
		if p.A == lastChild {
			dup = true
		}
		lastChild = p.A
		return nil
	}); err != nil {
		return nil, err
	}
	if dup {
		return nil, fmt.Errorf("%w: a node has two parents", ErrBadTree)
	}

	// succDown: succ(down(i)) = down(firstChild(c_i)) or up(i).
	// Computed by merging PE (child-sorted: one request per edge, keyed by
	// its child) with FC (node-sorted first-child map).
	succDown, err := joinSuccDown(vol, pool, pe, so.fc)
	if err != nil {
		return nil, err
	}
	// succUp: succ(up(i)) = down(nextSibling(i)) if any, else
	// up(incomingEdge(p_i)) if p_i != root, else Tail.
	succUp, err := joinSuccUp(vol, pool, e, so.ns, pe, root)
	if err != nil {
		return nil, err
	}
	so.fc.Release()
	so.ns.Release()

	// Assemble the arc file sorted by arc id: merge the down and up
	// successor files (down arcs even, up arcs odd, both emitted in edge
	// order, so an alternating merge is a single scan).
	arcs := stream.NewFile[record.Triple](vol, record.TripleCodec{})
	aw, err := stream.NewWriter(arcs, pool)
	if err != nil {
		return nil, err
	}
	dr, err := stream.NewReader(succDown, pool)
	if err != nil {
		aw.Close()
		return nil, err
	}
	defer dr.Close()
	ur, err := stream.NewReader(succUp, pool)
	if err != nil {
		aw.Close()
		return nil, err
	}
	defer ur.Close()
	for i := int64(0); i < n-1; i++ {
		d, ok, err := dr.Next()
		if err != nil || !ok {
			aw.Close()
			return nil, fmt.Errorf("emtree: down succ stream ended early (err=%v)", err)
		}
		u, ok, err := ur.Next()
		if err != nil || !ok {
			aw.Close()
			return nil, fmt.Errorf("emtree: up succ stream ended early (err=%v)", err)
		}
		if err := aw.Append(record.Triple{A: d.A, B: d.B, C: +1}); err != nil {
			aw.Close()
			return nil, err
		}
		if err := aw.Append(record.Triple{A: u.A, B: u.B, C: -1}); err != nil {
			aw.Close()
			return nil, err
		}
	}
	if err := aw.Close(); err != nil {
		return nil, err
	}
	succDown.Release()
	succUp.Release()

	// The head arc is the root's first down arc: the first edge in the
	// (parent, child)-sorted list whose parent is the root.
	head := int64(-1)
	found := false
	i := int64(0)
	if err := stream.ForEach(e, pool, func(p record.Pair) error {
		if !found && p.A == root {
			head = 2 * i
			found = true
		}
		i++
		return nil
	}); err != nil {
		return nil, err
	}
	if !found && n > 1 {
		return nil, fmt.Errorf("%w: root %d has no children but tree has %d nodes", ErrBadTree, root, n)
	}

	// The down-arc→child map is PE with edge ids doubled, re-sorted by arc.
	dac := stream.NewFile[record.Pair](vol, record.PairCodec{})
	dw, err := stream.NewWriter(dac, pool)
	if err != nil {
		return nil, err
	}
	if err := stream.ForEach(pe, pool, func(p record.Pair) error {
		return dw.Append(record.Pair{A: 2 * p.B, B: p.A})
	}); err != nil {
		dw.Close()
		return nil, err
	}
	if err := dw.Close(); err != nil {
		return nil, err
	}
	sortedDac, err := extsort.MergeSort(dac, pool, func(a, b record.Pair) bool { return a.A < b.A }, nil)
	if err != nil {
		return nil, err
	}
	dac.Release()
	pe.Release()
	e.Release()

	return &Tour{Arcs: arcs, DownArcChild: sortedDac, Head: head, Root: root, N: n}, nil
}

// joinSuccDown computes succ(down(i)) for every edge i, returning (downArc,
// succArc) pairs in edge order. pe is (child, edgeID) sorted by child; fc is
// (node, firstChildEdge) sorted by node. The merge needs the output in edge
// order, so the joined result is sorted by edge id afterwards.
func joinSuccDown(vol *pdm.Volume, pool *pdm.Pool, pe, fc *stream.File[record.Pair]) (*stream.File[record.Pair], error) {
	joined := stream.NewFile[record.Pair](vol, record.PairCodec{})
	w, err := stream.NewWriter(joined, pool)
	if err != nil {
		return nil, err
	}
	fr, err := stream.NewReader(fc, pool)
	if err != nil {
		w.Close()
		return nil, err
	}
	defer fr.Close()
	f, fOK, err := fr.Next()
	if err != nil {
		w.Close()
		return nil, err
	}
	if err := stream.ForEach(pe, pool, func(p record.Pair) error {
		child, edge := p.A, p.B
		for fOK && f.A < child {
			f, fOK, err = fr.Next()
			if err != nil {
				return err
			}
		}
		succ := 2*edge + 1 // leaf child: bounce straight back up
		if fOK && f.A == child {
			succ = 2 * f.B // descend into the child's first child edge
		}
		return w.Append(record.Pair{A: 2 * edge, B: succ})
	}); err != nil {
		w.Close()
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	out, err := extsort.MergeSort(joined, pool, func(a, b record.Pair) bool { return a.A < b.A }, nil)
	if err != nil {
		return nil, err
	}
	joined.Release()
	return out, nil
}

// joinSuccUp computes succ(up(i)) for every edge i, in edge order. e is the
// edge list sorted by (parent, child) (edge order); ns is (edge,
// nextSibling) in edge order; pe is (child, edgeID) sorted by child — used
// to find the parent's own incoming edge.
func joinSuccUp(vol *pdm.Volume, pool *pdm.Pool, e, ns, pe *stream.File[record.Pair], root int64) (*stream.File[record.Pair], error) {
	// Pass 1: for edges with a next sibling the successor is known locally.
	// For the rest we need incoming(parent), a join keyed by parent — and e
	// is already sorted by parent, pe by child, so one merge scan suffices.
	out := stream.NewFile[record.Pair](vol, record.PairCodec{})
	w, err := stream.NewWriter(out, pool)
	if err != nil {
		return nil, err
	}
	er, err := stream.NewReader(e, pool)
	if err != nil {
		w.Close()
		return nil, err
	}
	defer er.Close()
	nr, err := stream.NewReader(ns, pool)
	if err != nil {
		w.Close()
		return nil, err
	}
	defer nr.Close()
	pr, err := stream.NewReader(pe, pool)
	if err != nil {
		w.Close()
		return nil, err
	}
	defer pr.Close()

	pv, pOK, err := pr.Next()
	if err != nil {
		w.Close()
		return nil, err
	}
	idx := int64(0)
	for {
		edge, ok, err := er.Next()
		if err != nil {
			w.Close()
			return nil, err
		}
		if !ok {
			break
		}
		nsRec, ok, err := nr.Next()
		if err != nil || !ok || nsRec.A != idx {
			w.Close()
			return nil, fmt.Errorf("emtree: sibling stream out of sync at edge %d (err=%v)", idx, err)
		}
		var succ int64
		if nsRec.B >= 0 {
			succ = 2 * nsRec.B // next sibling's down arc
		} else if edge.A == root {
			succ = listrank.Tail // tour ends back at the root
		} else {
			// Parent's incoming edge: advance pe (sorted by child) to the
			// parent. Parents appear in non-decreasing order in e, so the
			// merge never rewinds.
			for pOK && pv.A < edge.A {
				pv, pOK, err = pr.Next()
				if err != nil {
					w.Close()
					return nil, err
				}
			}
			if !pOK || pv.A != edge.A {
				w.Close()
				return nil, fmt.Errorf("%w: node %d has children but no parent and is not the root", ErrBadTree, edge.A)
			}
			succ = 2*pv.B + 1 // parent's up arc
		}
		if err := w.Append(record.Pair{A: 2*idx + 1, B: succ}); err != nil {
			w.Close()
			return nil, err
		}
		idx++
	}
	return out, w.Close()
}

// Depths computes every node's depth (root = 0) in O(Sort(N)) I/Os: it
// ranks the Euler tour with ±1 arc weights and reads each node's depth off
// its down arc. The output is (node, depth) sorted by node.
func Depths(t *Tour, pool *pdm.Pool) (*stream.File[record.Pair], error) {
	vol := t.Arcs.Vol()
	out := stream.NewFile[record.Pair](vol, record.PairCodec{})
	w, err := stream.NewWriter(out, pool)
	if err != nil {
		return nil, err
	}
	if err := w.Append(record.Pair{A: t.Root, B: 0}); err != nil {
		w.Close()
		return nil, err
	}
	if t.N > 1 {
		ranks, err := listrank.RankWeighted(t.Arcs, pool, t.Head)
		if err != nil {
			w.Close()
			return nil, err
		}
		// ranks is (arc, depthBeforeArc) sorted by arc; DownArcChild is
		// (downArc, child) sorted by arc: one merge scan joins them.
		rr, err := stream.NewReader(ranks, pool)
		if err != nil {
			w.Close()
			return nil, err
		}
		defer rr.Close()
		rv, rOK, err := rr.Next()
		if err != nil {
			w.Close()
			return nil, err
		}
		if err := stream.ForEach(t.DownArcChild, pool, func(p record.Pair) error {
			for rOK && rv.A < p.A {
				rv, rOK, err = rr.Next()
				if err != nil {
					return err
				}
			}
			if !rOK || rv.A != p.A {
				return fmt.Errorf("emtree: no rank for down arc %d", p.A)
			}
			// rank is the depth when the arc starts (at the parent); the
			// child sits one level deeper.
			return w.Append(record.Pair{A: p.B, B: rv.B + 1})
		}); err != nil {
			w.Close()
			return nil, err
		}
		ranks.Release()
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	res, err := extsort.MergeSort(out, pool, func(a, b record.Pair) bool { return a.A < b.A }, nil)
	if err != nil {
		return nil, err
	}
	out.Release()
	return res, nil
}

// SubtreeSizes computes every node's subtree size (leaves = 1, root = N) in
// O(Sort(N)) I/Os by ranking the tour with unit weights: the positions of a
// node's down and up arcs bracket exactly its subtree's arcs.
func SubtreeSizes(t *Tour, pool *pdm.Pool) (*stream.File[record.Pair], error) {
	vol := t.Arcs.Vol()
	out := stream.NewFile[record.Pair](vol, record.PairCodec{})
	w, err := stream.NewWriter(out, pool)
	if err != nil {
		return nil, err
	}
	if err := w.Append(record.Pair{A: t.Root, B: t.N}); err != nil {
		w.Close()
		return nil, err
	}
	if t.N > 1 {
		// Unit-weight tour: positions instead of depths.
		unit := stream.NewFile[record.Triple](vol, record.TripleCodec{})
		uw, err := stream.NewWriter(unit, pool)
		if err != nil {
			w.Close()
			return nil, err
		}
		if err := stream.ForEach(t.Arcs, pool, func(a record.Triple) error {
			return uw.Append(record.Triple{A: a.A, B: a.B, C: 1})
		}); err != nil {
			uw.Close()
			w.Close()
			return nil, err
		}
		if err := uw.Close(); err != nil {
			w.Close()
			return nil, err
		}
		pos, err := listrank.RankWeighted(unit, pool, t.Head)
		if err != nil {
			w.Close()
			return nil, err
		}
		unit.Release()
		// pos is sorted by arc id; arcs 2i and 2i+1 are adjacent, and
		// pos(up) - pos(down) = 2·size - 1.
		pr, err := stream.NewReader(pos, pool)
		if err != nil {
			w.Close()
			return nil, err
		}
		defer pr.Close()
		cr, err := stream.NewReader(t.DownArcChild, pool)
		if err != nil {
			w.Close()
			return nil, err
		}
		defer cr.Close()
		for {
			down, ok, err := pr.Next()
			if err != nil {
				w.Close()
				return nil, err
			}
			if !ok {
				break
			}
			up, ok, err := pr.Next()
			if err != nil || !ok {
				w.Close()
				return nil, fmt.Errorf("emtree: odd arc count in position file (err=%v)", err)
			}
			child, ok, err := cr.Next()
			if err != nil || !ok || child.A != down.A {
				w.Close()
				return nil, fmt.Errorf("emtree: arc/child misalignment at arc %d (err=%v)", down.A, err)
			}
			size := (up.B - down.B + 1) / 2
			if err := w.Append(record.Pair{A: child.B, B: size}); err != nil {
				w.Close()
				return nil, err
			}
		}
		pos.Release()
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	res, err := extsort.MergeSort(out, pool, func(a, b record.Pair) bool { return a.A < b.A }, nil)
	if err != nil {
		return nil, err
	}
	out.Release()
	return res, nil
}
