package emtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"em/internal/pdm"
	"em/internal/record"
	"em/internal/stream"
)

func newEnv(t testing.TB) (*pdm.Volume, *pdm.Pool) {
	t.Helper()
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 256, MemBlocks: 12, Disks: 1})
	return vol, pdm.PoolFor(vol)
}

// randomTree returns parent[] for a rooted tree on n nodes with root 0:
// parent[v] < v is chosen at random (a random recursive tree).
func randomTree(rng *rand.Rand, n int) []int64 {
	parent := make([]int64, n)
	parent[0] = -1
	for v := 1; v < n; v++ {
		parent[v] = int64(rng.Intn(v))
	}
	return parent
}

// pathTree is the deep pathological case: a path 0-1-2-...-n-1.
func pathTree(n int) []int64 {
	parent := make([]int64, n)
	parent[0] = -1
	for v := 1; v < n; v++ {
		parent[v] = int64(v - 1)
	}
	return parent
}

// starTree is the shallow pathological case: all nodes hang off the root.
func starTree(n int) []int64 {
	parent := make([]int64, n)
	parent[0] = -1
	for v := 1; v < n; v++ {
		parent[v] = 0
	}
	return parent
}

func edgeFile(t testing.TB, vol *pdm.Volume, pool *pdm.Pool, parent []int64) *stream.File[record.Pair] {
	t.Helper()
	var pairs []record.Pair
	for v, p := range parent {
		if p >= 0 {
			pairs = append(pairs, record.Pair{A: p, B: int64(v)})
		}
	}
	f, err := stream.FromSlice(vol, pool, record.PairCodec{}, pairs)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// refDepths computes depths in memory.
func refDepths(parent []int64) []int64 {
	d := make([]int64, len(parent))
	for v := range parent {
		u := int64(v)
		for parent[u] >= 0 {
			d[v]++
			u = parent[u]
		}
	}
	return d
}

// refSizes computes subtree sizes in memory.
func refSizes(parent []int64) []int64 {
	s := make([]int64, len(parent))
	for i := range s {
		s[i] = 1
	}
	// Children have larger ids than parents in our generators only for
	// random/path/star trees; accumulate bottom-up by repeated passes to
	// stay generator-agnostic.
	order := make([]int, 0, len(parent))
	var visit func(v int64)
	children := make(map[int64][]int64)
	for v, p := range parent {
		if p >= 0 {
			children[p] = append(children[p], int64(v))
		}
	}
	visit = func(v int64) {
		for _, c := range children[v] {
			visit(c)
		}
		order = append(order, int(v))
	}
	visit(0)
	for _, v := range order {
		if p := parent[v]; p >= 0 {
			s[p] += s[v]
		}
	}
	return s
}

func pairsToMap(t *testing.T, f *stream.File[record.Pair], pool *pdm.Pool) map[int64]int64 {
	t.Helper()
	m := map[int64]int64{}
	if err := stream.ForEach(f, pool, func(p record.Pair) error {
		if _, dup := m[p.A]; dup {
			t.Fatalf("node %d reported twice", p.A)
		}
		m[p.A] = p.B
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return m
}

func checkTree(t *testing.T, parent []int64) {
	t.Helper()
	vol, pool := newEnv(t)
	n := int64(len(parent))
	ef := edgeFile(t, vol, pool, parent)
	tour, err := BuildEulerTour(ef, pool, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tour.Release()

	depths, err := Depths(tour, pool)
	if err != nil {
		t.Fatal(err)
	}
	gotD := pairsToMap(t, depths, pool)
	wantD := refDepths(parent)
	if int64(len(gotD)) != n {
		t.Fatalf("depths for %d of %d nodes", len(gotD), n)
	}
	for v, d := range wantD {
		if gotD[int64(v)] != d {
			t.Fatalf("depth(%d) = %d, want %d", v, gotD[int64(v)], d)
		}
	}

	sizes, err := SubtreeSizes(tour, pool)
	if err != nil {
		t.Fatal(err)
	}
	gotS := pairsToMap(t, sizes, pool)
	wantS := refSizes(parent)
	for v, s := range wantS {
		if gotS[int64(v)] != s {
			t.Fatalf("size(%d) = %d, want %d", v, gotS[int64(v)], s)
		}
	}
	if pool.InUse() != 0 {
		t.Fatalf("leaked %d frames", pool.InUse())
	}
}

func TestSingleNode(t *testing.T)  { checkTree(t, []int64{-1}) }
func TestTwoNodes(t *testing.T)    { checkTree(t, []int64{-1, 0}) }
func TestPathTree(t *testing.T)    { checkTree(t, pathTree(300)) }
func TestStarTree(t *testing.T)    { checkTree(t, starTree(300)) }
func TestSmallBinary(t *testing.T) { checkTree(t, []int64{-1, 0, 0, 1, 1, 2, 2}) }

func TestRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 6; trial++ {
		n := 50 + rng.Intn(800)
		checkTree(t, randomTree(rng, n))
	}
}

func TestNonZeroRootIDs(t *testing.T) {
	// Tree with root 3: 3 -> {1, 4}, 1 -> {0, 2}.
	vol, pool := newEnv(t)
	pairs := []record.Pair{{A: 3, B: 1}, {A: 3, B: 4}, {A: 1, B: 0}, {A: 1, B: 2}}
	f, err := stream.FromSlice(vol, pool, record.PairCodec{}, pairs)
	if err != nil {
		t.Fatal(err)
	}
	tour, err := BuildEulerTour(f, pool, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	depths, err := Depths(tour, pool)
	if err != nil {
		t.Fatal(err)
	}
	got := pairsToMap(t, depths, pool)
	want := map[int64]int64{3: 0, 1: 1, 4: 1, 0: 2, 2: 2}
	for v, d := range want {
		if got[v] != d {
			t.Fatalf("depth(%d) = %d, want %d", v, got[v], d)
		}
	}
}

func TestRejectsMalformedTrees(t *testing.T) {
	vol, pool := newEnv(t)

	mk := func(pairs []record.Pair) *stream.File[record.Pair] {
		f, err := stream.FromSlice(vol, pool, record.PairCodec{}, pairs)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}

	// Wrong edge count.
	if _, err := BuildEulerTour(mk([]record.Pair{{A: 0, B: 1}}), pool, 3, 0); err == nil {
		t.Error("accepted 1 edge for 3 nodes")
	}
	// Root as a child.
	if _, err := BuildEulerTour(mk([]record.Pair{{A: 1, B: 0}, {A: 0, B: 2}}), pool, 3, 0); err == nil {
		t.Error("accepted root as a child")
	}
	// Node with two parents.
	if _, err := BuildEulerTour(mk([]record.Pair{{A: 0, B: 2}, {A: 1, B: 2}}), pool, 3, 0); err == nil {
		t.Error("accepted node with two parents")
	}
	// Duplicate edge.
	if _, err := BuildEulerTour(mk([]record.Pair{{A: 0, B: 1}, {A: 0, B: 1}}), pool, 3, 0); err == nil {
		t.Error("accepted duplicate edge")
	}
	// Out-of-range vertex.
	if _, err := BuildEulerTour(mk([]record.Pair{{A: 0, B: 9}, {A: 0, B: 1}}), pool, 3, 0); err == nil {
		t.Error("accepted out-of-range child")
	}
	// Bad root.
	if _, err := BuildEulerTour(mk([]record.Pair{{A: 0, B: 1}}), pool, 2, 7); err == nil {
		t.Error("accepted out-of-range root")
	}
	// Disconnected: 0 isolated, edge among {1,2} — root has no children.
	if _, err := BuildEulerTour(mk([]record.Pair{{A: 1, B: 2}}), pool, 2, 0); err == nil {
		t.Error("accepted tree whose root has no children")
	}
}

// Property: depths and sizes agree with the in-memory reference on random
// recursive trees of arbitrary seed and size.
func TestQuickEulerTour(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%200 + 2
		rng := rand.New(rand.NewSource(seed))
		parent := randomTree(rng, n)

		vol := pdm.MustVolume(pdm.Config{BlockBytes: 256, MemBlocks: 12, Disks: 1})
		pool := pdm.PoolFor(vol)
		var pairs []record.Pair
		for v, p := range parent {
			if p >= 0 {
				pairs = append(pairs, record.Pair{A: p, B: int64(v)})
			}
		}
		ef, err := stream.FromSlice(vol, pool, record.PairCodec{}, pairs)
		if err != nil {
			return false
		}
		tour, err := BuildEulerTour(ef, pool, int64(n), 0)
		if err != nil {
			return false
		}
		depths, err := Depths(tour, pool)
		if err != nil {
			return false
		}
		got := map[int64]int64{}
		if err := stream.ForEach(depths, pool, func(p record.Pair) error {
			got[p.A] = p.B
			return nil
		}); err != nil {
			return false
		}
		want := refDepths(parent)
		if len(got) != n {
			return false
		}
		for v, d := range want {
			if got[int64(v)] != d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestEulerTourIOBound asserts the O(Sort(N)) shape: the tour build plus a
// depth computation must cost far fewer I/Os than the Θ(N) pointer-chasing
// alternative (one random read per node) on a large tree with large blocks.
func TestEulerTourIOBound(t *testing.T) {
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 4096, MemBlocks: 16, Disks: 1})
	pool := pdm.PoolFor(vol)
	rng := rand.New(rand.NewSource(17))
	n := 20000
	parent := randomTree(rng, n)
	ef := edgeFile(t, vol, pool, parent)
	vol.Stats().Reset()
	tour, err := BuildEulerTour(ef, pool, int64(n), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Depths(tour, pool); err != nil {
		t.Fatal(err)
	}
	got := vol.Stats().Total()
	if got >= uint64(n) {
		t.Fatalf("Euler-tour depths used %d I/Os ≥ N=%d — not sublinear", got, n)
	}
	t.Logf("euler depths: %d I/Os for N=%d (naive ≈ %d)", got, n, n)
}
