package experiments

import (
	"fmt"
	"math/rand"

	"em/internal/cache"
	"em/internal/emgraph"
	"em/internal/geometry"
	"em/internal/listrank"
	"em/internal/matrix"
	"em/internal/permute"
	"em/internal/record"
	"em/internal/stream"
)

// T3Permuting sweeps N and compares the two branches of the survey's
// permuting bound Θ(min(N, Sort(N))): the naive mover costs ≈ N I/Os while
// the sort-based method costs ≈ Sort(N); the naive method wins only while
// N is small relative to Sort(N)'s pass structure.
func T3Permuting(ns []int) (*Table, error) {
	t := &Table{
		ID:    "T3",
		Title: "permuting Θ(min(N, Sort(N))): naive wins small, sort-based wins large",
		Notes: "naive grows ∝N; sort grows ∝Sort(N); sort wins from the first out-of-memory size",
	}
	for _, n := range ns {
		e := DefaultEnv()
		defer e.Close()
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = uint64(i)
		}
		f, err := stream.FromSlice(e.Vol, e.Pool, record.U64Codec{}, vals)
		if err != nil {
			return nil, err
		}
		perm, err := permute.BitReversal(n)
		if err != nil {
			return nil, err
		}

		e.Vol.Stats().Reset()
		nf, err := permute.Naive(f, e.Pool, perm)
		if err != nil {
			return nil, err
		}
		naiveIOs := float64(e.Vol.Stats().Total())
		nf.Release()

		e.Vol.Stats().Reset()
		sf, err := permute.BySorting(f, e.Pool, perm, nil)
		if err != nil {
			return nil, err
		}
		sortIOs := float64(e.Vol.Stats().Total())
		sf.Release()

		per := int64(e.Vol.BlockBytes() / (record.U64Codec{}).Size())
		t.Rows = append(t.Rows, Row{
			Label: fmt.Sprintf("N=%d", n),
			Cells: map[string]float64{
				"naive":    naiveIOs,
				"sort":     sortIOs,
				"estSort":  float64(permute.SortCostEstimate(int64(n), per, int64(e.Pool.Capacity()))),
				"winner01": boolTo01(sortIOs < naiveIOs), // 1 when sort-based wins
			},
			Order: []string{"naive", "sort", "estSort", "winner01"},
		})
	}
	return t, nil
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// T4Transpose compares the naive column-walk transpose (one input block
// read per output element once the matrix exceeds memory) against the
// blocked sub-matrix transpose, whose advantage approaches ×B.
func T4Transpose(sizes []int) (*Table, error) {
	t := &Table{
		ID:    "T4",
		Title: "matrix transpose: blocked beats naive column walk by ≈ ×B",
		Notes: "blocked/naive ratio grows toward B as the matrix leaves memory",
	}
	for _, s := range sizes {
		e := DefaultEnv()
		defer e.Close()
		data := make([]float64, s*s)
		for i := range data {
			data[i] = float64(i)
		}
		m, err := matrix.FromSlice(e.Vol, e.Pool, s, s, data)
		if err != nil {
			return nil, err
		}

		e.Vol.Stats().Reset()
		nt, err := matrix.TransposeNaive(m, e.Pool)
		if err != nil {
			return nil, err
		}
		naiveIOs := float64(e.Vol.Stats().Total())
		nt.Release()

		e.Vol.Stats().Reset()
		bt, err := matrix.TransposeBlocked(m, e.Pool)
		if err != nil {
			return nil, err
		}
		blockedIOs := float64(e.Vol.Stats().Total())
		bt.Release()

		t.Rows = append(t.Rows, Row{
			Label: fmt.Sprintf("%dx%d", s, s),
			Cells: map[string]float64{
				"naive":   naiveIOs,
				"blocked": blockedIOs,
				"speedup": ratio(naiveIOs, blockedIOs),
			},
			Order: []string{"naive", "blocked", "speedup"},
		})
	}
	return t, nil
}

// T8DistributionSweep compares the distribution sweep for orthogonal
// segment intersection, O(Sort(N) + Z/B), against the quadratic all-pairs
// baseline Θ(N²/B).
func T8DistributionSweep(ns []int) (*Table, error) {
	t := &Table{
		ID:    "T8",
		Title: "segment intersection: sweep O(Sort(N)+Z/B) vs all-pairs Θ(N²/B)",
		Notes: "sweep advantage grows with N; outputs agree",
	}
	for _, n := range ns {
		e := NewEnv(1024, 12, 1)
		defer e.Close()
		rng := rand.New(rand.NewSource(43))
		segs := make([]geometry.Segment, 0, n)
		span := 4 * float64(n)
		for i := 0; i < n/2; i++ {
			x1 := rng.Float64() * span
			segs = append(segs, geometry.Horizontal(int64(i), x1, x1+rng.Float64()*span/8, rng.Float64()*span))
		}
		for i := n / 2; i < n; i++ {
			y1 := rng.Float64() * span
			segs = append(segs, geometry.Vertical(int64(i), rng.Float64()*span, y1, y1+rng.Float64()*span/8))
		}
		f, err := stream.FromSlice(e.Vol, e.Pool, geometry.SegmentCodec{}, segs)
		if err != nil {
			return nil, err
		}

		e.Vol.Stats().Reset()
		sw, err := geometry.Intersections(f, e.Pool)
		if err != nil {
			return nil, err
		}
		sweepIOs := float64(e.Vol.Stats().Total())
		z := float64(sw.Len())
		sw.Release()

		e.Vol.Stats().Reset()
		nv, err := geometry.NaiveIntersections(f, e.Pool)
		if err != nil {
			return nil, err
		}
		naiveIOs := float64(e.Vol.Stats().Total())
		nv.Release()

		t.Rows = append(t.Rows, Row{
			Label: fmt.Sprintf("N=%d", n),
			Cells: map[string]float64{
				"sweep":   sweepIOs,
				"naive":   naiveIOs,
				"Z":       z,
				"speedup": ratio(naiveIOs, sweepIOs),
			},
			Order: []string{"sweep", "naive", "Z", "speedup"},
		})
	}
	return t, nil
}

// F4ListRanking compares list ranking by independent-set contraction,
// O(Sort(N)) I/Os, against pointer chasing, Θ(N) I/Os, on random lists.
func F4ListRanking(ns []int) (*Table, error) {
	t := &Table{
		ID:    "F4",
		Title: "list ranking: contraction O(Sort(N)) vs pointer chasing Θ(N)",
		Notes: "naive ≈ N I/Os; contraction grows like Sort(N); wins for all out-of-memory N",
	}
	for _, n := range ns {
		// Larger blocks than the default: pointer chasing costs one I/O per
		// node regardless of B, while contraction's cost is ∝ 1/B, so the
		// survey's claim concerns realistic (large) block sizes.
		e := NewEnv(4096, 16, 1)
		defer e.Close()
		list, head, err := randomList(e, 47, n)
		if err != nil {
			return nil, err
		}

		e.Vol.Stats().Reset()
		nr, err := listrank.NaiveRank(list, e.Pool, head)
		if err != nil {
			return nil, err
		}
		naiveIOs := float64(e.Vol.Stats().Total())
		nr.Release()

		e.Vol.Stats().Reset()
		cr, err := listrank.Rank(list, e.Pool, head)
		if err != nil {
			return nil, err
		}
		contractIOs := float64(e.Vol.Stats().Total())
		cr.Release()

		t.Rows = append(t.Rows, Row{
			Label: fmt.Sprintf("N=%d", n),
			Cells: map[string]float64{
				"naive":    naiveIOs,
				"contract": contractIOs,
				"speedup":  ratio(naiveIOs, contractIOs),
			},
			Order: []string{"naive", "contract", "speedup"},
		})
	}
	return t, nil
}

// randomList materialises a linked list of n nodes in random disk order and
// returns its head. Node i's record sits at position i; the successor
// ordering is a random permutation, so pointer chasing gets no locality.
func randomList(e Env, seed int64, n int) (*stream.File[record.Pair], int64, error) {
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(n) // order[k] is the k-th node on the list
	succ := make([]int64, n)
	for k := 0; k < n-1; k++ {
		succ[order[k]] = int64(order[k+1])
	}
	succ[order[n-1]] = listrank.Tail
	pairs := make([]record.Pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = record.Pair{A: int64(i), B: succ[i]}
	}
	f, err := stream.FromSlice(e.Vol, e.Pool, record.PairCodec{}, pairs)
	if err != nil {
		return nil, 0, err
	}
	e.Vol.Stats().Reset()
	return f, int64(order[0]), nil
}

// F5ExternalBFS compares the Munagala–Ranade external BFS, O(V + Sort(E)),
// against naive BFS with a disk-resident visited bitmap, Θ(V + E), on
// sparse random graphs (ring plus chords, so the graph is connected and has
// small diameter).
func F5ExternalBFS(vs []int) (*Table, error) {
	t := &Table{
		ID:    "F5",
		Title: "BFS: Munagala–Ranade O(V+Sort(E)) vs naive Θ(V+E)",
		Notes: "MR total ≪ naive on sparse unstructured graphs; outputs agree",
	}
	for _, v := range vs {
		e := NewEnv(1024, 16, 1)
		defer e.Close()
		rng := rand.New(rand.NewSource(53))
		var pairs []record.Pair
		for i := 0; i < v; i++ {
			pairs = append(pairs, record.Pair{A: int64(i), B: int64((i + 1) % v)})
		}
		for i := 0; i < 2*v; i++ {
			pairs = append(pairs, record.Pair{A: rng.Int63n(int64(v)), B: rng.Int63n(int64(v))})
		}
		ef, err := stream.FromSlice(e.Vol, e.Pool, record.PairCodec{}, pairs)
		if err != nil {
			return nil, err
		}
		g, err := emgraph.BuildUndirected(e.Vol, e.Pool, int64(v), ef)
		if err != nil {
			return nil, err
		}

		e.Vol.Stats().Reset()
		nb, err := emgraph.NaiveBFS(g, e.Pool, 0)
		if err != nil {
			return nil, err
		}
		naiveIOs := float64(e.Vol.Stats().Total())
		nb.Release()

		e.Vol.Stats().Reset()
		mr, err := emgraph.BFSUndirected(g, e.Pool, 0)
		if err != nil {
			return nil, err
		}
		mrIOs := float64(e.Vol.Stats().Total())
		mr.Release()

		t.Rows = append(t.Rows, Row{
			Label: fmt.Sprintf("V=%d", v),
			Cells: map[string]float64{
				"naive":   naiveIOs,
				"mr":      mrIOs,
				"speedup": ratio(naiveIOs, mrIOs),
			},
			Order: []string{"naive", "mr", "speedup"},
		})
	}
	return t, nil
}

// F6Paging compares page-fault counts of the classical online policies
// against Belady's optimal MIN on the survey's canonical reference
// patterns: repeated sequential loops (the LRU worst case), plain scans,
// and a skewed working set.
func F6Paging(pages, frames, passes int) (*Table, error) {
	t := &Table{
		ID:    "F6",
		Title: "paging: MIN ≤ all; LRU pathological on loops > frames; policies tie on scans",
		Notes: "MIN never worse than any policy; LRU faults every reference on a loop of size frames+k",
	}
	rng := rand.New(rand.NewSource(59))
	workloads := []struct {
		label string
		refs  []int64
	}{
		{"loop", cache.LoopRefs(pages, passes)},
		{"scan", cache.ScanRefs(pages * passes)},
		{"working-set", cache.WorkingSetRefs(pages*passes, frames/2, 9, func() int64 { return rng.Int63() })},
	}
	for _, w := range workloads {
		t.Rows = append(t.Rows, Row{
			Label: w.label,
			Cells: map[string]float64{
				"LRU":   float64(cache.FaultsLRU(w.refs, frames)),
				"FIFO":  float64(cache.FaultsFIFO(w.refs, frames)),
				"CLOCK": float64(cache.FaultsCLOCK(w.refs, frames)),
				"MIN":   float64(cache.FaultsMIN(w.refs, frames)),
				"refs":  float64(len(w.refs)),
			},
			Order: []string{"LRU", "FIFO", "CLOCK", "MIN", "refs"},
		})
	}
	return t, nil
}
