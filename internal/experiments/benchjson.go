package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"em/internal/btree"
	"em/internal/extsort"
	"em/internal/pdm"
	"em/internal/pipeline"
	"em/internal/record"
	"em/internal/store"
	"em/internal/stream"
)

// BenchResult is one machine-readable benchmark point of the repository's
// performance trajectory: a workload in one I/O mode at one disk count,
// with both currencies — wall-clock milliseconds and counted block I/Os.
// cmd/embench -json emits a slice of these (BENCH_*.json); future PRs
// compare their own trajectory files against the committed ones.
type BenchResult struct {
	// Workload is mergesort | distsort | bulkload | sortindex for the
	// build side, getbatch | rangescan for the query-serving side.
	Workload string `json:"workload"`
	// Mode is sync | async for the sorts; the bulk load adds writebehind
	// and the sortindex build reports its composition instead — sequential,
	// pipelined, or pipelined+wb, all on async streams. The query points
	// compare loop | batched point lookups and sync | prefetch scans.
	Mode    string  `json:"mode"`
	Disks   int     `json:"disks"`
	Records int     `json:"records"`
	WallMs  float64 `json:"wallMs"`
	Reads   uint64  `json:"reads"`
	Writes  uint64  `json:"writes"`
	Steps   uint64  `json:"steps"`
	// Retries counts transient service errors re-driven by the volume's
	// retry policy (zero on fault-free points); since PR 9 the faulted
	// serving points carry it so the trajectory shows the audit beside
	// the identical Reads/Writes.
	Retries uint64 `json:"retries,omitempty"`
	// P50Ms/P99Ms are per-request latency percentiles and Shed the count
	// of requests turned away by admission control, reported by the
	// open-loop robustness points (F15); zero elsewhere.
	P50Ms float64 `json:"p50Ms,omitempty"`
	P99Ms float64 `json:"p99Ms,omitempty"`
	Shed  uint64  `json:"shed,omitempty"`
}

// BenchTrajectory measures the repository's headline perf surface: merge
// sort, distribution sort, B-tree bulk load and the sort→index build —
// synchronous vs forecast-driven asynchronous, plus the write-behind and
// pipelined compositions — and, since PR 5, the query-serving side (looped
// vs batched point lookups, sync vs prefetched range scans), at D ∈ {1, 4},
// on a worker-engine volume with a fixed per-block service latency (so wall
// clock reflects the model's parallel-step cost, not host noise). Since
// PR 8 it also takes the sharded serving points: the merge-cut batched
// lookup and the stitched scan at S ∈ {1, 4} single-shape volumes, with
// aggregated counters. Since PR 9 it adds the robustness points (the F15
// surface): the open-loop YCSB-style mix at half and twice calibrated
// capacity under uniform and Zipf popularity, with p50/p99 latency and
// shed counts, and the clean-vs-faulted serving pair whose counted I/Os
// must stay identical with retries audited. Counted I/Os come from the
// same Stats every experiment table reports, reset per workload.
func BenchTrajectory(quick bool) ([]BenchResult, error) {
	n, latency := 1<<13, 2*time.Millisecond
	if quick {
		n, latency = 1<<11, 250*time.Microsecond
	}
	var out []BenchResult
	for _, d := range []int{1, 4} {
		for _, async := range []bool{false, true} {
			rs, err := benchPoint(n, d, async, latency)
			if err != nil {
				return nil, err
			}
			out = append(out, rs...)
		}
		rs, err := storeBenchPoint(n, d, latency)
		if err != nil {
			return nil, err
		}
		out = append(out, rs...)
	}
	rs, err := shardBenchPoint(n, latency)
	if err != nil {
		return nil, err
	}
	out = append(out, rs...)
	ops := 320
	if quick {
		ops = 160
	}
	rs, err = robustBenchPoint(n, ops, latency)
	if err != nil {
		return nil, err
	}
	out = append(out, rs...)
	return out, nil
}

// storeBenchPoint measures the online store's trajectory points at one
// disk count (the F13 surface): absorbing a random update mix through the
// buffer-tree front versus per-key B-tree inserts, and point-read serving
// quiesced versus with a generation handover in flight.
func storeBenchPoint(n, d int, latency time.Duration) ([]BenchResult, error) {
	cfg := pdm.Config{BlockBytes: 1024, MemBlocks: 256, Disks: d, DiskLatency: latency}
	vol, err := newVolume(cfg)
	if err != nil {
		return nil, err
	}
	defer vol.Close()
	pool := pdm.PoolFor(vol)

	var out []BenchResult
	measure := func(workload, mode string, records int, fn func() error) error {
		vol.Stats().Reset()
		start := time.Now()
		if err := fn(); err != nil {
			return fmt.Errorf("%s %s D=%d: %w", workload, mode, d, err)
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		s := vol.Stats().Snapshot()
		out = append(out, BenchResult{
			Workload: workload, Mode: mode, Disks: d, Records: records,
			WallMs: ms, Reads: s.Reads, Writes: s.Writes, Steps: s.Steps,
		})
		return nil
	}

	keys := rand.New(rand.NewSource(0xF13)).Perm(n)
	if err := measure("store", "btree-loop", n, func() error {
		tr, err := btree.New(vol, pool, 8)
		if err != nil {
			return err
		}
		for i, k := range keys {
			if _, err := tr.Insert(uint64(k+1), uint64(i)); err != nil {
				return err
			}
		}
		return tr.Release()
	}); err != nil {
		return nil, err
	}

	var st *store.Store
	if err := measure("store", "buffered", n, func() error {
		var err error
		st, err = store.Open(vol, pool, store.Config{FrontOps: int64(n / 2)})
		if err != nil {
			return err
		}
		for i, k := range keys {
			if err := st.Insert(uint64(k+1), uint64(i)); err != nil {
				return err
			}
		}
		return st.Drain()
	}); err != nil {
		return nil, err
	}

	const serveReads = 200
	rng := rand.New(rand.NewSource(0x5E12))
	read := func() error {
		k := uint64(rng.Intn(n) + 1)
		if _, ok, err := st.Get(k); err != nil || !ok {
			return fmt.Errorf("get(%d): ok=%v err=%v", k, ok, err)
		}
		return nil
	}
	if err := measure("store", "serve-quiesced", serveReads, func() error {
		for i := 0; i < serveReads; i++ {
			if err := read(); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	for i := 0; i < n/2; i++ {
		if err := st.Insert(uint64(rng.Intn(n)+1), uint64(i)); err != nil {
			return nil, err
		}
	}
	inDrain := 0
	if err := measure("store", "serve-drain", serveReads, func() error {
		if !st.StartDrain() {
			return nil
		}
		for st.Draining() {
			if err := read(); err != nil {
				return err
			}
			inDrain++
		}
		return nil
	}); err != nil {
		return nil, err
	}
	out[len(out)-1].Records = inDrain
	if err := st.Drain(); err != nil {
		return nil, err
	}
	if err := st.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// benchPoint runs the three workloads at one (disks, mode) coordinate,
// owning its volume for exactly its scope.
func benchPoint(n, d int, async bool, latency time.Duration) ([]BenchResult, error) {
	// MemBlocks matches F10: sized so the async paths' halved fan-out keeps
	// the same pass count as sync across the D sweep.
	cfg := pdm.Config{BlockBytes: 1024, MemBlocks: 96, Disks: d, DiskLatency: latency}
	vol, err := newVolume(cfg)
	if err != nil {
		return nil, err
	}
	defer vol.Close()
	pool := pdm.PoolFor(vol)
	mode := "sync"
	if async {
		mode = "async"
	}
	opts := &extsort.Options{Width: d, Async: async}

	var out []BenchResult
	measure := func(workload string, fn func() error) error {
		vol.Stats().Reset()
		start := time.Now()
		if err := fn(); err != nil {
			return fmt.Errorf("%s %s D=%d: %w", workload, mode, d, err)
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		s := vol.Stats().Snapshot()
		out = append(out, BenchResult{
			Workload: workload, Mode: mode, Disks: d, Records: n,
			WallMs: ms, Reads: s.Reads, Writes: s.Writes, Steps: s.Steps,
		})
		return nil
	}

	f, err := stream.FromSlice(vol, pool, record.RecordCodec{}, RandomRecords(41, n))
	if err != nil {
		return nil, err
	}
	if err := measure("mergesort", func() error {
		sorted, err := extsort.MergeSort(f, pool, record.Record.Less, opts)
		if err != nil {
			return err
		}
		sorted.Release()
		return nil
	}); err != nil {
		return nil, err
	}
	if err := measure("distsort", func() error {
		sorted, err := extsort.DistributionSort(f, pool, record.Record.Less, opts)
		if err != nil {
			return err
		}
		sorted.Release()
		return nil
	}); err != nil {
		return nil, err
	}

	sorted := make([]record.Record, n)
	for i := range sorted {
		sorted[i] = record.Record{Key: uint64(i + 1), Val: uint64(i)}
	}
	sf, err := stream.FromSlice(vol, pool, record.RecordCodec{}, sorted)
	if err != nil {
		return nil, err
	}
	if err := measure("bulkload", func() error {
		tr, err := btree.BulkLoad(vol, pool, 8, sf, &btree.BulkLoadOptions{Width: d, Async: async})
		if err != nil {
			return err
		}
		return tr.Close()
	}); err != nil {
		return nil, err
	}
	if !async {
		return out, nil
	}

	// The write-behind loader and the sort→index compositions ride the
	// async pass only: their interesting axis is composition, not the
	// stream mode, which is async throughout.
	mode = "writebehind"
	if err := measure("bulkload", func() error {
		tr, err := btree.BulkLoad(vol, pool, 8, sf, &btree.BulkLoadOptions{Width: d, Async: true, WriteBehind: true})
		if err != nil {
			return err
		}
		return tr.Close()
	}); err != nil {
		return nil, err
	}

	perm := make([]record.Record, n) // SortIndex needs distinct keys
	for i, k := range rand.New(rand.NewSource(43)).Perm(n) {
		perm[i] = record.Record{Key: uint64(k + 1), Val: uint64(i)}
	}
	pf, err := stream.FromSlice(vol, pool, record.RecordCodec{}, perm)
	if err != nil {
		return nil, err
	}
	for _, ix := range []struct {
		mode          string
		pipelined, wb bool
	}{
		{"sequential", false, false},
		{"pipelined", true, false},
		{"pipelined+wb", true, true},
	} {
		mode = ix.mode
		if err := measure("sortindex", func() error {
			tr, err := pipeline.SortIndex(pf, pool, &pipeline.Options{
				Width: d, Async: true, WriteBehind: ix.wb, Pipeline: ix.pipelined,
			})
			if err != nil {
				return err
			}
			return tr.Close()
		}); err != nil {
			return nil, err
		}
	}

	// The query-serving side (the F12 surface): one-at-a-time vs batched
	// point lookups and sync vs prefetched full scans over a bulk-loaded
	// tree with resident internals. The scans run before the point queries
	// so both see the same warm fan-out and cold leaves.
	tr, err := btree.BulkLoad(vol, pool, 16, sf, &btree.BulkLoadOptions{Width: d, Async: true, WriteBehind: true})
	if err != nil {
		return nil, err
	}
	// Rehome flushes the internals still dirty from construction so the
	// sync Range's window is not charged their write-backs; Warm then makes
	// the fan-out resident for every query point.
	if err := tr.Rehome(pool, 16); err != nil {
		return nil, err
	}
	if err := tr.Warm(); err != nil {
		return nil, err
	}
	full := ^uint64(0)
	mode = "prefetch"
	if err := measure("rangescan", func() error {
		return tr.RangePrefetch(pool, 0, full, nil, func(k, v uint64) error { return nil })
	}); err != nil {
		return nil, err
	}
	mode = "sync"
	if err := measure("rangescan", func() error {
		return tr.Range(0, full, func(k, v uint64) error { return nil })
	}); err != nil {
		return nil, err
	}
	// Re-warm: the sync Range just streamed the leaves through the tree
	// cache, evicting the fan-out the point paths are documented to start
	// from.
	if err := tr.Warm(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(47))
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = uint64(rng.Intn(n+n/8) + 1)
	}
	mode = "loop"
	if err := measure("getbatch", func() error {
		for _, k := range keys {
			if _, _, err := tr.Get(k); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	mode = "batched"
	if err := measure("getbatch", func() error {
		_, _, err := tr.GetBatch(keys)
		return err
	}); err != nil {
		return nil, err
	}
	if err := tr.Close(); err != nil {
		return nil, err
	}
	return out, nil
}
