// Package experiments implements every evaluation experiment of the survey
// reproduction — one function per table or figure listed in DESIGN.md §3.
//
// Each experiment builds its workload on a fresh instrumented volume, runs
// the algorithm(s) under test, and returns the measured I/O counts together
// with the survey's predicted value, so that callers can check the claimed
// shape (who wins, by what factor, where crossovers fall). Three callers
// share this package: the root bench_test.go benchmarks, the cmd/embench
// table printer, and the package's own shape-asserting tests.
package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"sync/atomic"

	"em/internal/pdm"
	"em/internal/record"
	"em/internal/stream"
)

// volumeDir, when non-empty, routes every experiment volume to file-backed
// storage. Each volume gets its own numbered subdirectory so parameter
// sweeps never collide on backing files.
var (
	volumeDir atomic.Value // string
	volumeSeq atomic.Int64
)

// SetVolumeDir makes every subsequently created experiment volume
// file-backed, one fresh subdirectory per volume under dir; the empty
// string restores the in-memory simulation. The I/O counts every experiment
// reports are identical either way — only the medium under the wall-clock
// columns changes. cmd/embench wires this to its -dir flag so the full
// catalogue (T1–T9, F1–F13) runs against real files with a flag flip.
func SetVolumeDir(dir string) { volumeDir.Store(dir) }

// newVolume creates one experiment volume honouring SetVolumeDir.
func newVolume(cfg pdm.Config) (*pdm.Volume, error) {
	if dir, _ := volumeDir.Load().(string); dir != "" {
		cfg.Dir = filepath.Join(dir, fmt.Sprintf("vol%04d", volumeSeq.Add(1)))
	}
	return pdm.NewVolume(cfg)
}

// Row is one line of an experiment table: a parameter point with measured
// and predicted quantities per algorithm.
type Row struct {
	// Label names the parameter point, e.g. "N=65536" or "D=4".
	Label string
	// Cells maps column name to value. Numeric values are float64 so that
	// both I/O counts and ratios fit.
	Cells map[string]float64
	// Order lists the column names in display order.
	Order []string
}

// Table is a complete experiment result.
type Table struct {
	// ID is the experiment id from DESIGN.md, e.g. "T1" or "F4".
	ID string
	// Title is the survey claim being reproduced.
	Title string
	// Rows are the parameter points in sweep order.
	Rows []Row
	// Notes records the shape check the experiment asserts.
	Notes string
}

// String renders the table as aligned text rows.
func (t *Table) String() string {
	s := fmt.Sprintf("== %s: %s ==\n", t.ID, t.Title)
	if len(t.Rows) == 0 {
		return s + "(no rows)\n"
	}
	cols := t.Rows[0].Order
	s += fmt.Sprintf("%-16s", "point")
	for _, c := range cols {
		s += fmt.Sprintf("%16s", c)
	}
	s += "\n"
	for _, r := range t.Rows {
		s += fmt.Sprintf("%-16s", r.Label)
		for _, c := range cols {
			v := r.Cells[c]
			if v == math.Trunc(v) && math.Abs(v) < 1e15 {
				s += fmt.Sprintf("%16.0f", v)
			} else {
				s += fmt.Sprintf("%16.2f", v)
			}
		}
		s += "\n"
	}
	if t.Notes != "" {
		s += "   shape: " + t.Notes + "\n"
	}
	return s
}

// Env bundles a fresh volume and pool for one experimental run.
type Env struct {
	Vol  *pdm.Volume
	Pool *pdm.Pool
}

// NewEnv creates a standard experiment environment: blockBytes-byte blocks,
// memBlocks frames of memory, and disks disks, on whichever storage backend
// SetVolumeDir selected.
func NewEnv(blockBytes, memBlocks, disks int) Env {
	vol, err := newVolume(pdm.Config{BlockBytes: blockBytes, MemBlocks: memBlocks, Disks: disks})
	if err != nil {
		panic(err)
	}
	return Env{Vol: vol, Pool: pdm.PoolFor(vol)}
}

// Close releases the environment's volume: a no-op for the in-memory
// simulation, the handle-closing step for file-backed runs (SetVolumeDir),
// where an unclosed Env would leak D file descriptors per experiment point.
func (e Env) Close() error { return e.Vol.Close() }

// DefaultEnv is the baseline device shape used across experiments:
// 1 KiB blocks (64 records of 16 bytes), 16 frames of memory, one disk.
func DefaultEnv() Env { return NewEnv(1024, 16, 1) }

// RandomRecords produces n uniform random 16-byte records with a fixed seed.
func RandomRecords(seed int64, n int) []record.Record {
	rng := rand.New(rand.NewSource(seed))
	rs := make([]record.Record, n)
	for i := range rs {
		rs[i] = record.Record{Key: rng.Uint64(), Val: uint64(i)}
	}
	return rs
}

// NearlySortedRecords produces n records whose keys are ascending except for
// a fraction frac of random displacements — the favourable case for
// replacement selection.
func NearlySortedRecords(seed int64, n int, frac float64) []record.Record {
	rng := rand.New(rand.NewSource(seed))
	rs := make([]record.Record, n)
	for i := range rs {
		rs[i] = record.Record{Key: uint64(i) << 16, Val: uint64(i)}
	}
	swaps := int(float64(n) * frac)
	for s := 0; s < swaps; s++ {
		i, j := rng.Intn(n), rng.Intn(n)
		rs[i], rs[j] = rs[j], rs[i]
	}
	return rs
}

// MaterialiseRecords writes records to a fresh file and resets the volume's
// I/O counters, so subsequent measurements exclude input construction.
func MaterialiseRecords(e Env, rs []record.Record) (*stream.File[record.Record], error) {
	f, err := stream.FromSlice(e.Vol, e.Pool, record.RecordCodec{}, rs)
	if err != nil {
		return nil, err
	}
	e.Vol.Stats().Reset()
	return f, nil
}

// SortPredicted evaluates the survey's Sort(N) formula in block transfers:
// 2·(N/(D·B))·(1 + ceil(log_{M/B}(N/M))) — one read+write pass over the data
// per merge level including run formation.
func SortPredicted(n, recPerBlock, memBlocks, disks int) float64 {
	nb := float64(n) / float64(recPerBlock)
	m := float64(memBlocks)
	passes := 1.0
	runs := float64(n) / (float64(memBlocks) * float64(recPerBlock))
	if runs > 1 {
		passes += math.Ceil(math.Log(runs) / math.Log(m-1))
	}
	return 2 * nb / float64(disks) * passes
}

// ScanPredicted is Scan(N) = ceil(N/(D·B)) block transfers (read only).
func ScanPredicted(n, recPerBlock, disks int) float64 {
	return math.Ceil(float64(n) / float64(recPerBlock) / float64(disks))
}

// SearchPredicted is Search(N) = ceil(log_B N) block reads.
func SearchPredicted(n, fanout int) float64 {
	if n <= 1 {
		return 1
	}
	return math.Ceil(math.Log(float64(n)) / math.Log(float64(fanout)))
}
