package experiments

import (
	"strings"
	"testing"
	"time"
)

// These tests run every experiment at reduced scale and assert the *shape*
// of the survey's claim — who wins, by roughly what factor, where the
// crossover falls — which is exactly what reproduction means for a survey
// of asymptotic bounds (see DESIGN.md §1).

func TestT1FundamentalBoundsShape(t *testing.T) {
	tab, err := T1FundamentalBounds([]int{1 << 12, 1 << 14, 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		if got, pred := r.Cells["scan"], r.Cells["scanPred"]; got < pred || got > 2*pred+4 {
			t.Errorf("%s: scan %g outside [pred, 2·pred] (pred %g)", r.Label, got, pred)
		}
		if got, pred := r.Cells["sort"], r.Cells["sortPred"]; got > 3*pred {
			t.Errorf("%s: sort %g exceeds 3×predicted %g", r.Label, got, pred)
		}
		if got, pred := r.Cells["search"], r.Cells["searchPred"]; got > pred+2 {
			t.Errorf("%s: search %g probes vs predicted %g", r.Label, got, pred)
		}
	}
}

func TestT2SortingShape(t *testing.T) {
	tab, err := T2SortingAlgorithms([]int{1 << 12, 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	last := tab.Rows[len(tab.Rows)-1]
	merge, dist, bt := last.Cells["merge"], last.Cells["dist"], last.Cells["btree"]
	if r := ratio(dist, merge); r > 2.5 || r < 0.4 {
		t.Errorf("merge (%g) vs distribution (%g): ratio %g outside [0.4, 2.5]", merge, dist, r)
	}
	if bt < 5*merge {
		t.Errorf("btree insertion sort (%g) should be ≥5× merge sort (%g)", bt, merge)
	}
}

func TestF1MergePassesShape(t *testing.T) {
	tab, err := F1MergePassesVsMemory(1<<15, []int{2, 4, 8, 16, 64})
	if err != nil {
		t.Fatal(err)
	}
	prev := 1e18
	for _, r := range tab.Rows {
		meas, pred := r.Cells["passes"], r.Cells["passPred"]
		// Measured passes count partial final blocks, so allow slack of one.
		if meas > pred+1 || meas < pred-1 {
			t.Errorf("%s: measured %.2f passes, predicted %.0f", r.Label, meas, pred)
		}
		if pred > prev {
			t.Errorf("passes increased when memory grew: %s", r.Label)
		}
		prev = pred
	}
	// More memory must strictly help between the extremes.
	if tab.Rows[0].Cells["passPred"] <= tab.Rows[len(tab.Rows)-1].Cells["passPred"] {
		t.Error("fan-in sweep did not reduce passes")
	}
}

func TestF2RunFormationShape(t *testing.T) {
	tab, err := F2RunFormation(1 << 14)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]Row{}
	for _, r := range tab.Rows {
		byLabel[r.Label] = r
	}
	ls := byLabel["load-sort/random"].Cells["lenOverM"]
	rs := byLabel["replsel/random"].Cells["lenOverM"]
	if ls > 1.01 {
		t.Errorf("load-sort run length %g·M exceeds M", ls)
	}
	if rs < 1.5 || rs > 3.0 {
		t.Errorf("replacement selection run length %g·M, want ≈2·M", rs)
	}
	sortedRS := byLabel["replsel/90%sorted"].Cells["lenOverM"]
	if sortedRS < rs {
		t.Errorf("replacement selection on nearly-sorted input (%g·M) should beat random (%g·M)", sortedRS, rs)
	}
}

func TestF3DiskStripingShape(t *testing.T) {
	tab, err := F3DiskStriping(1<<14, []int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	base := tab.Rows[0]
	for i, r := range tab.Rows[1:] {
		d := float64([]int{2, 4, 8}[i])
		// Scan block reads constant across D; steps fall by ≈ D.
		if r.Cells["scanReads"] != base.Cells["scanReads"] {
			t.Errorf("%s: scan reads changed with D", r.Label)
		}
		speedup := base.Cells["scanSteps"] / r.Cells["scanSteps"]
		if speedup < 0.8*d {
			t.Errorf("%s: scan step speedup %.2f, want ≈%g", r.Label, speedup, d)
		}
		// Sort steps must also fall (striping helps), block I/Os stay within 2x.
		if r.Cells["sortSteps"] >= base.Cells["sortSteps"] {
			t.Errorf("%s: striped sort steps did not fall", r.Label)
		}
		if r.Cells["sortIOs"] > 2*base.Cells["sortIOs"] {
			t.Errorf("%s: striped sort block I/Os blew up", r.Label)
		}
	}
}

func TestT3PermutingShape(t *testing.T) {
	tab, err := T3Permuting([]int{1 << 8, 1 << 12, 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	// Largest instance: sort-based must win (the survey's large-N branch).
	last := tab.Rows[len(tab.Rows)-1]
	if last.Cells["winner01"] != 1 {
		t.Errorf("sort-based permuting should win at N=2^14: naive=%g sort=%g",
			last.Cells["naive"], last.Cells["sort"])
	}
	// Naive cost must scale ∝ N (one I/O per record, ±2x).
	first := tab.Rows[0]
	growth := last.Cells["naive"] / first.Cells["naive"]
	if growth < 16 { // N grew 64-fold; naive must grow at least 16-fold
		t.Errorf("naive permute cost grew only %.1fx for 64x N", growth)
	}
}

func TestT4TransposeShape(t *testing.T) {
	tab, err := T4Transpose([]int{16, 64, 128})
	if err != nil {
		t.Fatal(err)
	}
	last := tab.Rows[len(tab.Rows)-1]
	if last.Cells["speedup"] < 4 {
		t.Errorf("blocked transpose speedup %.1fx at 128x128, want ≥4x", last.Cells["speedup"])
	}
	// Advantage must grow once the matrix no longer fits in memory.
	if tab.Rows[2].Cells["speedup"] < tab.Rows[0].Cells["speedup"] {
		t.Error("blocked-transpose advantage should grow with size")
	}
}

func TestT5OnlineSearchShape(t *testing.T) {
	tab, err := T5OnlineSearch(1<<15, 200)
	if err != nil {
		t.Fatal(err)
	}
	r := tab.Rows[0]
	bin, bt, hash := r.Cells["binary"], r.Cells["btree"], r.Cells["hash"]
	if !(bin > bt && bt > hash) {
		t.Errorf("expected binary (%g) > btree (%g) > hash (%g) reads/lookup", bin, bt, hash)
	}
	if bt > r.Cells["btHeight"]+1 {
		t.Errorf("btree reads/lookup %g exceeds height %g + 1", bt, r.Cells["btHeight"])
	}
	if hash > 3 {
		t.Errorf("hashing reads/lookup %g, want O(1) ≈ ≤3", hash)
	}
}

func TestT6BufferTreeShape(t *testing.T) {
	tab, err := T6BufferTreeVsBTree([]int{1 << 12, 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		if r.Cells["bufPerOp"] >= 1 {
			t.Errorf("%s: buffer tree %.3f I/Os per op, want ≪ 1", r.Label, r.Cells["bufPerOp"])
		}
		if r.Cells["speedup"] < 3 {
			t.Errorf("%s: buffer tree speedup %.1fx, want ≥3x", r.Label, r.Cells["speedup"])
		}
	}
}

func TestT7PriorityQueueShape(t *testing.T) {
	tab, err := T7PriorityQueue([]int{1 << 12, 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		if r.Cells["speedup"] < 3 {
			t.Errorf("%s: external PQ speedup %.1fx over B-tree PQ, want ≥3x", r.Label, r.Cells["speedup"])
		}
		if r.Cells["pq"] > 20*r.Cells["sortPred"] {
			t.Errorf("%s: PQ %.0f I/Os ≫ Sort(N) %.0f", r.Label, r.Cells["pq"], r.Cells["sortPred"])
		}
	}
}

func TestT8DistributionSweepShape(t *testing.T) {
	tab, err := T8DistributionSweep([]int{256, 1024})
	if err != nil {
		t.Fatal(err)
	}
	last := tab.Rows[len(tab.Rows)-1]
	if last.Cells["speedup"] < 4 {
		t.Errorf("sweep speedup %.1fx at N=1024, want ≥4x", last.Cells["speedup"])
	}
	if tab.Rows[1].Cells["speedup"] < tab.Rows[0].Cells["speedup"] {
		t.Error("sweep advantage should grow with N")
	}
}

func TestT9BulkLoadShape(t *testing.T) {
	tab, err := T9BulkLoad([]int{1 << 12, 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		if r.Cells["speedup"] < 3 {
			t.Errorf("%s: bulk load speedup %.1fx, want ≥3x", r.Label, r.Cells["speedup"])
		}
	}
	if tab.Rows[1].Cells["speedup"] < tab.Rows[0].Cells["speedup"] {
		t.Error("bulk-load advantage should grow with N")
	}
}

func TestF4ListRankingShape(t *testing.T) {
	tab, err := F4ListRanking([]int{1 << 10, 1 << 13})
	if err != nil {
		t.Fatal(err)
	}
	last := tab.Rows[len(tab.Rows)-1]
	if last.Cells["speedup"] < 2 {
		t.Errorf("list ranking speedup %.1fx at N=2^13, want ≥2x", last.Cells["speedup"])
	}
	// Naive cost ≈ one I/O per node.
	if last.Cells["naive"] < (1<<13)/2 {
		t.Errorf("naive ranking cost %.0f suspiciously small for N=%d", last.Cells["naive"], 1<<13)
	}
}

func TestF5ExternalBFSShape(t *testing.T) {
	tab, err := F5ExternalBFS([]int{500, 2000})
	if err != nil {
		t.Fatal(err)
	}
	last := tab.Rows[len(tab.Rows)-1]
	if last.Cells["speedup"] < 1.5 {
		t.Errorf("MR BFS speedup %.2fx at V=2000, want ≥1.5x", last.Cells["speedup"])
	}
}

func TestF6PagingShape(t *testing.T) {
	tab, err := F6Paging(24, 16, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		min := r.Cells["MIN"]
		for _, pol := range []string{"LRU", "FIFO", "CLOCK"} {
			if r.Cells[pol] < min {
				t.Errorf("%s: %s (%g) beat MIN (%g) — impossible", r.Label, pol, r.Cells[pol], min)
			}
		}
		if r.Label == "loop" {
			// Loop of 24 pages through 16 frames: LRU faults every reference.
			if r.Cells["LRU"] != r.Cells["refs"] {
				t.Errorf("loop: LRU faulted %g of %g refs, want all", r.Cells["LRU"], r.Cells["refs"])
			}
			if min >= r.Cells["LRU"] {
				t.Error("loop: MIN should beat LRU strictly")
			}
		}
	}
}

func TestF7FFTShape(t *testing.T) {
	tab, err := F7FFT([]int{1 << 8, 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		if r.Cells["speedup"] < 10 {
			t.Errorf("%s: six-step speedup %.1fx, want ≥10x", r.Label, r.Cells["speedup"])
		}
	}
	if tab.Rows[1].Cells["speedup"] < tab.Rows[0].Cells["speedup"] {
		t.Error("six-step advantage should grow with N")
	}
}

func TestF8TimeForwardShape(t *testing.T) {
	tab, err := F8TimeForward([]int{500, 2000})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		// The gap is ≈ B divided by the PQ's sort constant: large at every
		// size (it narrows slowly as extra merge passes appear, exactly the
		// E/Sort(E) shape, so no monotone-growth assertion).
		if r.Cells["speedup"] < 10 {
			t.Errorf("%s: time-forward speedup %.1fx, want ≥10x", r.Label, r.Cells["speedup"])
		}
		if r.Cells["timefwd"] >= r.Cells["E"] {
			t.Errorf("%s: time-forward %.0f I/Os not sublinear in E=%.0f", r.Label, r.Cells["timefwd"], r.Cells["E"])
		}
	}
}

func TestTableString(t *testing.T) {
	tab := &Table{
		ID:    "TX",
		Title: "demo",
		Rows: []Row{{
			Label: "N=1",
			Cells: map[string]float64{"a": 1, "b": 2.5},
			Order: []string{"a", "b"},
		}},
		Notes: "note",
	}
	s := tab.String()
	for _, want := range []string{"TX", "demo", "N=1", "2.50", "note"} {
		if !strings.Contains(s, want) {
			t.Errorf("table text missing %q:\n%s", want, s)
		}
	}
	empty := &Table{ID: "TY", Title: "none"}
	if !strings.Contains(empty.String(), "no rows") {
		t.Error("empty table should say so")
	}
}

func TestF9ParallelEngineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	tab, err := F9ParallelEngine(1<<11, []int{1, 4}, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	d1, d4 := tab.Rows[0], tab.Rows[1]
	if d1.Cells["blockReads"] != d4.Cells["blockReads"] {
		t.Errorf("block reads changed with D: %v vs %v", d1.Cells["blockReads"], d4.Cells["blockReads"])
	}
	// The model predicts 4x; 2x leaves headroom for scheduler noise.
	if speedup := d1.Cells["scanMs"] / d4.Cells["scanMs"]; speedup < 2 {
		t.Errorf("4-disk scan wall-clock speedup %.2fx, want >= 2x", speedup)
	}
	// Forecasting prefetch must not lose to the synchronous scan when
	// compute shares the clock (it should win; equality tolerates noise).
	for _, r := range tab.Rows {
		if r.Cells["asyncMs"] > 1.1*r.Cells["syncMs"] {
			t.Errorf("%s: prefetch scan %.1fms slower than sync %.1fms", r.Label, r.Cells["asyncMs"], r.Cells["syncMs"])
		}
	}
}

func TestF10ForecastShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	tab, err := F10ForecastSortIndex(1<<13, []int{1, 4}, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	d1, d4 := tab.Rows[0], tab.Rows[1]
	// The async paths must never lose to their synchronous twins at the
	// same D (they should win at D>1; 15% tolerates scheduler noise).
	for _, r := range tab.Rows {
		for _, w := range []string{"dist", "bulk"} {
			if r.Cells[w+"AsyncMs"] > 1.15*r.Cells[w+"SyncMs"] {
				t.Errorf("%s: async %s %.1fms slower than sync %.1fms",
					r.Label, w, r.Cells[w+"AsyncMs"], r.Cells[w+"SyncMs"])
			}
		}
	}
	// Forecasting plus striping must beat the serial baseline well past the
	// 1.5x gate: D=4 async vs D=1 sync.
	for _, w := range []string{"dist", "bulk"} {
		speedup := d1.Cells[w+"SyncMs"] / d4.Cells[w+"AsyncMs"]
		t.Logf("%s: D=1 sync %.1fms, D=4 async %.1fms, speedup %.2fx",
			w, d1.Cells[w+"SyncMs"], d4.Cells[w+"AsyncMs"], speedup)
		if speedup < 1.5 {
			t.Errorf("%s: D=4 async speedup %.2fx over D=1 sync, want >= 1.5x", w, speedup)
		}
	}
}

func TestF11WriteBehindShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	tab, err := F11WriteBehind(1<<13, []int{1, 4}, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	d1, d4 := tab.Rows[0], tab.Rows[1]
	for _, r := range tab.Rows {
		// Write-behind batches the same writes; it must never add any.
		if r.Cells["bulkWBWrites"] != r.Cells["bulkWrites"] {
			t.Errorf("%s: write-behind wrote %.0f blocks, cache path %.0f",
				r.Label, r.Cells["bulkWBWrites"], r.Cells["bulkWrites"])
		}
		// Nor may it lose on the clock at the same D (15% tolerates noise).
		if r.Cells["bulkWBMs"] > 1.15*r.Cells["bulkSyncMs"] {
			t.Errorf("%s: write-behind load %.1fms slower than sync %.1fms",
				r.Label, r.Cells["bulkWBMs"], r.Cells["bulkSyncMs"])
		}
		if r.Cells["pipeMs"] > 1.05*r.Cells["seqMs"] {
			t.Errorf("%s: pipelined build %.1fms slower than sequential %.1fms",
				r.Label, r.Cells["pipeMs"], r.Cells["seqMs"])
		}
		// The full stack — pipeline plus write-behind — sits on the
		// disk-bound floor and must not lose to either partial mode.
		if r.Cells["pipeWBMs"] > 1.1*r.Cells["pipeMs"] {
			t.Errorf("%s: pipeline+write-behind %.1fms slower than pipeline alone %.1fms",
				r.Label, r.Cells["pipeWBMs"], r.Cells["pipeMs"])
		}
	}
	// The ISSUE 4 acceptance gates: D=4 write-behind load beats the D=1
	// synchronous loader well past the old ~1.6x read-only-forecast mark,
	// and the D=4 pipeline is strictly below its sequential twin.
	speedup := d1.Cells["bulkSyncMs"] / d4.Cells["bulkWBMs"]
	t.Logf("bulk: D=1 sync %.1fms, D=4 write-behind %.1fms, speedup %.2fx",
		d1.Cells["bulkSyncMs"], d4.Cells["bulkWBMs"], speedup)
	if speedup < 2.5 {
		t.Errorf("D=4 write-behind speedup %.2fx over D=1 sync, want >= 2.5x", speedup)
	}
	t.Logf("index: D=4 sequential %.1fms, pipelined %.1fms", d4.Cells["seqMs"], d4.Cells["pipeMs"])
	if d4.Cells["pipeMs"] >= d4.Cells["seqMs"] {
		t.Errorf("D=4 pipelined build %.1fms not strictly below sequential %.1fms",
			d4.Cells["pipeMs"], d4.Cells["seqMs"])
	}
}

func TestF12QueryServingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	// F12 enforces its own acceptance gates at the D=4 points — batch
	// speedup and strict read saving, scan speedup at identical reads,
	// session QPS scaling on the file backend — and fails the run when one
	// is missed, so the assertions here are the gross shape on top.
	tab, err := F12QueryServing(1<<13, []int{1, 4}, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("expected 4 rows (D in {1,4} x {mem,file}), got %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		// Deduplication wins independently of D: the batch reads strictly
		// fewer blocks and must never lose on the clock.
		if r.Cells["batchReads"] >= r.Cells["loopReads"] {
			t.Errorf("%s: batch %0.f reads not below loop %0.f", r.Label, r.Cells["batchReads"], r.Cells["loopReads"])
		}
		if r.Cells["batchMs"] > r.Cells["loopMs"] {
			t.Errorf("%s: batch %.1fms slower than loop %.1fms", r.Label, r.Cells["batchMs"], r.Cells["loopMs"])
		}
		// The scan must never read more than Range. Its wall clock is only
		// asserted by the D=4 gates inside F12 itself, where the ~Dx win is
		// structural; at D=1 there is nothing to overlap but noise, and a
		// clock assertion there would be the flake mode the non-gating
		// bench job exists to avoid.
		if r.Cells["scanReads"] != r.Cells["rangeReads"] {
			t.Errorf("%s: scan %0.f reads != range %0.f", r.Label, r.Cells["scanReads"], r.Cells["rangeReads"])
		}
	}
	d4 := tab.Rows[len(tab.Rows)-1] // D=4/file
	t.Logf("D=4/file: loop %.1fms vs batch %.1fms (%.1fx, reads %0.f->%0.f); range %.1fms vs scan %.1fms (%.1fx); qps %0.f->%0.f",
		d4.Cells["loopMs"], d4.Cells["batchMs"], d4.Cells["loopMs"]/d4.Cells["batchMs"],
		d4.Cells["loopReads"], d4.Cells["batchReads"],
		d4.Cells["rangeMs"], d4.Cells["scanMs"], d4.Cells["rangeMs"]/d4.Cells["scanMs"],
		d4.Cells["qps1"], d4.Cells["qps4"])
}

func TestF13StoreOnlineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	// F13 enforces its own acceptance gates at the D=4 points — buffered
	// writes >= 2x faster than per-key B-tree inserts at strictly fewer
	// I/Os, in-drain read QPS >= half of quiesced — and fails the run when
	// one is missed, so the assertions here are the gross shape on top.
	tab, err := F13StoreOnline(1<<13, []int{1, 4}, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("expected 4 rows (D in {1,4} x {mem,file}), got %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		// The amortisation argument is independent of D: the front batches
		// ~B updates per buffer block, so the store's counted I/Os must be
		// strictly below the per-key insert loop's everywhere.
		if r.Cells["storeIOs"] >= r.Cells["btreeIOs"] {
			t.Errorf("%s: store %0.f I/Os not below per-key inserts %0.f",
				r.Label, r.Cells["storeIOs"], r.Cells["btreeIOs"])
		}
		if r.Cells["storeMs"] > r.Cells["btreeMs"] {
			t.Errorf("%s: store %.1fms slower than per-key inserts %.1fms",
				r.Label, r.Cells["storeMs"], r.Cells["btreeMs"])
		}
		if r.Cells["drains"] < 1 {
			t.Errorf("%s: no background drain ran", r.Label)
		}
	}
	d4 := tab.Rows[len(tab.Rows)-1] // D=4/file
	t.Logf("D=4/file: per-key %.1fms vs store %.1fms (%.1fx, I/Os %0.f->%0.f); qps quiesced %0.f vs in-drain %0.f (%d reads)",
		d4.Cells["btreeMs"], d4.Cells["storeMs"], d4.Cells["btreeMs"]/d4.Cells["storeMs"],
		d4.Cells["btreeIOs"], d4.Cells["storeIOs"],
		d4.Cells["qpsQuiet"], d4.Cells["qpsDrain"], int(d4.Cells["drainReads"]))
}

func TestF15RobustnessShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	// F15 enforces its own acceptance gates — typed sheds (and nothing
	// harder) under 2x oversubscription, counted-I/O identity and bounded
	// p99 under injected faults with retries, the partial-batch contract
	// across a crashed shard — and fails the run when one is missed, so
	// the assertions here are the gross shape on top.
	tab, err := F15Robustness(1<<11, 160, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]Row{}
	for _, r := range tab.Rows {
		rows[r.Label] = r
	}
	if len(rows) != 7 {
		t.Fatalf("expected 7 distinct rows, got %d", len(rows))
	}
	for _, label := range []string{"uniform/0.5x", "uniform/2x", "zipf/0.5x", "zipf/2x"} {
		r, ok := rows[label]
		if !ok {
			t.Fatalf("missing row %s", label)
		}
		if r.Cells["ok"] == 0 {
			t.Errorf("%s: no op succeeded", label)
		}
		if r.Cells["p99Ms"] < r.Cells["p50Ms"] {
			t.Errorf("%s: p99 %.2fms below p50 %.2fms", label, r.Cells["p99Ms"], r.Cells["p50Ms"])
		}
	}
	// The faulted serve must have exercised the retry path and read
	// exactly what the clean run read (the F15 identity gate already
	// compared full snapshots).
	if rows["serve/faulted"].Cells["retries"] == 0 {
		t.Error("serve/faulted: no retries recorded")
	}
	if cr, fr := rows["serve/clean"].Cells["reads"], rows["serve/faulted"].Cells["reads"]; cr != fr {
		t.Errorf("serve reads differ: clean %0.f vs faulted %0.f", cr, fr)
	}
	// The crashed shard dropped its half of the batch and the survivor
	// answered the rest.
	if crash := rows["crash/partial"]; crash.Cells["ok"] == 0 || crash.Cells["shed"] == 0 {
		t.Errorf("crash/partial: want both served and dropped keys, got ok=%0.f shed=%0.f",
			crash.Cells["ok"], crash.Cells["shed"])
	}
	two := rows["uniform/2x"]
	t.Logf("uniform 2x: ok %0.f shed %0.f (%.1f%%) p50 %.1fms p99 %.1fms; faulted serve: %0.f retries over %0.f injected",
		two.Cells["ok"], two.Cells["shed"], two.Cells["shedPct"], two.Cells["p50Ms"], two.Cells["p99Ms"],
		rows["serve/faulted"].Cells["retries"], rows["serve/faulted"].Cells["injected"])
}
