package experiments

import (
	"fmt"
	"math/rand"

	"em/internal/fft"
	"em/internal/stream"
)

// F7FFT compares the six-step external FFT, O(Sort(N)) I/Os, against the
// unblocked butterfly network, Θ(N·log₂N) I/Os — the survey's FFT row in
// the batched-problems table.
func F7FFT(ns []int) (*Table, error) {
	t := &Table{
		ID:    "F7",
		Title: "FFT: six-step O(Sort(N)) vs unblocked butterflies Θ(N·log₂N)",
		Notes: "six-step ≪ naive; gap grows as N·logN / Sort(N) ≈ B·log₂N/log_m n",
	}
	for _, n := range ns {
		e := NewEnv(1024, 16, 1)
		defer e.Close()
		rng := rand.New(rand.NewSource(73))
		x := make([]fft.Complex, n)
		for i := range x {
			x[i] = fft.Complex{Re: rng.NormFloat64(), Im: rng.NormFloat64()}
		}
		f, err := stream.FromSlice(e.Vol, e.Pool, fft.ComplexCodec{}, x)
		if err != nil {
			return nil, err
		}

		e.Vol.Stats().Reset()
		six, err := fft.Forward(f, e.Pool)
		if err != nil {
			return nil, err
		}
		sixIOs := float64(e.Vol.Stats().Total())
		six.Release()

		e.Vol.Stats().Reset()
		naive, err := fft.NaiveStages(f, e.Pool, -1)
		if err != nil {
			return nil, err
		}
		naiveIOs := float64(e.Vol.Stats().Total())
		naive.Release()

		per := e.Vol.BlockBytes() / (fft.ComplexCodec{}).Size()
		t.Rows = append(t.Rows, Row{
			Label: fmt.Sprintf("N=%d", n),
			Cells: map[string]float64{
				"sixstep":  sixIOs,
				"naive":    naiveIOs,
				"sortPred": SortPredicted(n, per, e.Pool.Capacity(), 1),
				"speedup":  ratio(naiveIOs, sixIOs),
			},
			Order: []string{"sixstep", "naive", "sortPred", "speedup"},
		})
	}
	return t, nil
}
