package experiments

import (
	"fmt"
	"time"

	"em/internal/btree"
	"em/internal/extsort"
	"em/internal/pdm"
	"em/internal/record"
	"em/internal/stream"
)

// F10ForecastSortIndex measures forecasting beyond the merge path: the
// synchronous and asynchronous distribution sort and B-tree bulk load on a
// worker-engine volume with a fixed per-block service latency, swept over
// disk counts. The async paths issue the same counted I/Os (pinned by the
// extsort and btree test suites at equal fan-out/width); what this
// experiment shows is the wall clock — elapsed milliseconds falling with D
// as width-D striping spreads each batch over the disks, and read-ahead /
// write-behind overlapping partition reads with bucket writes (sort) and
// input reads with node write-backs (bulk load).
//
// Like F9 this experiment's currency is wall-clock time, so absolute numbers
// vary with the host; the asserted shape is across D and async-vs-sync.
func F10ForecastSortIndex(n int, disks []int, latency time.Duration) (*Table, error) {
	t := &Table{
		ID:    "F10",
		Title: "forecasting beyond merge: async distribution sort and bulk load vs their sync paths across D",
		Notes: "asyncMs <= syncMs at each D; D=4 async beats D=1 sync >= 1.5x for both workloads",
	}
	for _, d := range disks {
		row, err := forecastPoint(n, d, latency)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, *row)
	}
	return t, nil
}

// forecastPoint runs the four timed workloads for one disk count, owning the
// volume for exactly its scope.
func forecastPoint(n, d int, latency time.Duration) (*Row, error) {
	// Memory is sized so the halved async fan-out still partitions in the
	// same number of levels as the synchronous path across the D sweep;
	// with a too-small M the async run pays extra passes (its fan-out is
	// half), which is the documented trade, not the overlap under test.
	cfg := pdm.Config{BlockBytes: 1024, MemBlocks: 96, Disks: d, DiskLatency: latency}
	vol, err := newVolume(cfg)
	if err != nil {
		return nil, err
	}
	defer vol.Close()
	pool := pdm.PoolFor(vol)

	f, err := stream.FromSlice(vol, pool, record.RecordCodec{}, RandomRecords(23, n))
	if err != nil {
		return nil, err
	}
	timeDist := func(async bool) (float64, error) {
		start := time.Now()
		out, err := extsort.DistributionSort(f, pool, record.Record.Less, &extsort.Options{Width: d, Async: async})
		if err != nil {
			return 0, err
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		out.Release()
		return ms, nil
	}
	distSyncMs, err := timeDist(false)
	if err != nil {
		return nil, err
	}
	distAsyncMs, err := timeDist(true)
	if err != nil {
		return nil, err
	}

	sorted := make([]record.Record, n)
	for i := range sorted {
		sorted[i] = record.Record{Key: uint64(i + 1), Val: uint64(i)}
	}
	sf, err := stream.FromSlice(vol, pool, record.RecordCodec{}, sorted)
	if err != nil {
		return nil, err
	}
	timeBulk := func(async bool) (float64, error) {
		start := time.Now()
		tr, err := btree.BulkLoad(vol, pool, 8, sf, &btree.BulkLoadOptions{Width: d, Async: async})
		if err != nil {
			return 0, err
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		return ms, tr.Close()
	}
	bulkSyncMs, err := timeBulk(false)
	if err != nil {
		return nil, err
	}
	bulkAsyncMs, err := timeBulk(true)
	if err != nil {
		return nil, err
	}

	return &Row{
		Label: fmt.Sprintf("D=%d", d),
		Cells: map[string]float64{
			"distSyncMs":  distSyncMs,
			"distAsyncMs": distAsyncMs,
			"bulkSyncMs":  bulkSyncMs,
			"bulkAsyncMs": bulkAsyncMs,
		},
		Order: []string{"distSyncMs", "distAsyncMs", "bulkSyncMs", "bulkAsyncMs"},
	}, nil
}
