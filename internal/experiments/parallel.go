package experiments

import (
	"fmt"
	"time"

	"em/internal/pdm"
	"em/internal/record"
	"em/internal/stream"
)

// F9ParallelEngine measures the concurrent per-disk I/O engine on a wall
// clock: the same striped scan workload at a fixed per-block service
// latency, swept over disk counts. Counted block reads stay constant while
// parallel steps and elapsed milliseconds both fall by ≈D — the parallel in
// the Parallel Disk Model made physical. A second column pair contrasts a
// synchronous scan with a forecasting (prefetching) scan whose consumer
// does per-record work, showing read-ahead overlapping compute with I/O.
//
// This is the one experiment whose currency is wall-clock time, so absolute
// numbers vary with the host; the asserted shape is the ratio across D.
func F9ParallelEngine(n int, disks []int, latency time.Duration) (*Table, error) {
	t := &Table{
		ID:    "F9",
		Title: "concurrent engine: elapsed ms falls ×D at equal block count; prefetch overlaps compute",
		Notes: "ms ≈ ms(D=1)/D; blockReads constant; asyncMs < syncMs under per-record compute",
	}
	for _, d := range disks {
		cfg := pdm.Config{BlockBytes: 1024, MemBlocks: 32, Disks: d, DiskLatency: latency}
		vol, err := pdm.NewVolume(cfg)
		if err != nil {
			return nil, err
		}
		pool := pdm.PoolFor(vol)
		rs := RandomRecords(17, n)
		f, err := stream.FromSlice(vol, pool, record.RecordCodec{}, rs)
		if err != nil {
			vol.Close()
			return nil, err
		}

		// Plain striped scan, width D: one parallel step per batch.
		vol.Stats().Reset()
		start := time.Now()
		r, err := stream.NewStripedReader(f, pool, d)
		if err != nil {
			vol.Close()
			return nil, err
		}
		for {
			_, ok, err := r.Next()
			if err != nil {
				vol.Close()
				return nil, err
			}
			if !ok {
				break
			}
		}
		r.Close()
		scanMs := float64(time.Since(start).Microseconds()) / 1000
		scanReads := float64(vol.Stats().Reads)
		scanSteps := float64(vol.Stats().Steps)

		// Synchronous vs forecasting scan with per-record compute sized so a
		// block's worth of processing is comparable to its service latency —
		// the regime where read-ahead pays.
		work := func(rec record.Record) {
			h := rec.Key
			for i := 0; i < 85000; i++ {
				h = h*2654435761 + rec.Val
			}
			_ = h
		}
		start = time.Now()
		sr, err := stream.NewStripedReader(f, pool, 1)
		if err != nil {
			vol.Close()
			return nil, err
		}
		for {
			v, ok, err := sr.Next()
			if err != nil {
				vol.Close()
				return nil, err
			}
			if !ok {
				break
			}
			work(v)
		}
		sr.Close()
		syncMs := float64(time.Since(start).Microseconds()) / 1000

		start = time.Now()
		if err := stream.AsyncForEach(f, pool, 1, func(v record.Record) error {
			work(v)
			return nil
		}); err != nil {
			vol.Close()
			return nil, err
		}
		asyncMs := float64(time.Since(start).Microseconds()) / 1000
		vol.Close()

		t.Rows = append(t.Rows, Row{
			Label: fmt.Sprintf("D=%d", d),
			Cells: map[string]float64{
				"blockReads": scanReads,
				"scanSteps":  scanSteps,
				"scanMs":     scanMs,
				"syncMs":     syncMs,
				"asyncMs":    asyncMs,
			},
			Order: []string{"blockReads", "scanSteps", "scanMs", "syncMs", "asyncMs"},
		})
	}
	return t, nil
}
