package experiments

import (
	"fmt"
	"time"

	"em/internal/pdm"
	"em/internal/record"
	"em/internal/stream"
)

// F9ParallelEngine measures the concurrent per-disk I/O engine on a wall
// clock: the same striped scan workload at a fixed per-block service
// latency, swept over disk counts. Counted block reads stay constant while
// parallel steps and elapsed milliseconds both fall by ≈D — the parallel in
// the Parallel Disk Model made physical. A second column pair contrasts a
// synchronous scan with a forecasting (prefetching) scan whose consumer
// does per-record work, showing read-ahead overlapping compute with I/O.
//
// This is the one experiment whose currency is wall-clock time, so absolute
// numbers vary with the host; the asserted shape is the ratio across D.
func F9ParallelEngine(n int, disks []int, latency time.Duration) (*Table, error) {
	t := &Table{
		ID:    "F9",
		Title: "concurrent engine: elapsed ms falls ×D at equal block count; prefetch overlaps compute",
		Notes: "ms ≈ ms(D=1)/D; blockReads constant; asyncMs < syncMs under per-record compute",
	}
	for _, d := range disks {
		row, err := enginePoint(n, d, latency)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, *row)
	}
	return t, nil
}

// enginePoint runs the three timed scans for one disk count, owning the
// volume (and each reader's frames) for exactly its scope.
func enginePoint(n, d int, latency time.Duration) (*Row, error) {
	cfg := pdm.Config{BlockBytes: 1024, MemBlocks: 32, Disks: d, DiskLatency: latency}
	vol, err := newVolume(cfg)
	if err != nil {
		return nil, err
	}
	defer vol.Close()
	pool := pdm.PoolFor(vol)
	rs := RandomRecords(17, n)
	f, err := stream.FromSlice(vol, pool, record.RecordCodec{}, rs)
	if err != nil {
		return nil, err
	}

	// timedScan drains f through a width-w striped reader, feeding each
	// record to fn, and returns the elapsed milliseconds.
	timedScan := func(width int, fn func(record.Record)) (float64, error) {
		start := time.Now()
		r, err := stream.NewStripedReader(f, pool, width)
		if err != nil {
			return 0, err
		}
		defer r.Close()
		if err := stream.Drain[record.Record](r, func(v record.Record) error {
			fn(v)
			return nil
		}); err != nil {
			return 0, err
		}
		return float64(time.Since(start).Microseconds()) / 1000, nil
	}

	// Plain striped scan, width D: one parallel step per batch.
	vol.Stats().Reset()
	scanMs, err := timedScan(d, func(record.Record) {})
	if err != nil {
		return nil, err
	}
	scanReads := float64(vol.Stats().Reads)
	scanSteps := float64(vol.Stats().Steps)

	// Synchronous vs forecasting scan with per-record compute sized so a
	// block's worth of processing is comparable to its service latency —
	// the regime where read-ahead pays.
	work := func(rec record.Record) {
		h := rec.Key
		for i := 0; i < 85000; i++ {
			h = h*2654435761 + rec.Val
		}
		_ = h
	}
	syncMs, err := timedScan(1, work)
	if err != nil {
		return nil, err
	}

	start := time.Now()
	if err := stream.AsyncForEach(f, pool, 1, func(v record.Record) error {
		work(v)
		return nil
	}); err != nil {
		return nil, err
	}
	asyncMs := float64(time.Since(start).Microseconds()) / 1000

	return &Row{
		Label: fmt.Sprintf("D=%d", d),
		Cells: map[string]float64{
			"blockReads": scanReads,
			"scanSteps":  scanSteps,
			"scanMs":     scanMs,
			"syncMs":     syncMs,
			"asyncMs":    asyncMs,
		},
		Order: []string{"blockReads", "scanSteps", "scanMs", "syncMs", "asyncMs"},
	}, nil
}
