package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"em/internal/btree"
	"em/internal/pdm"
	"em/internal/record"
	"em/internal/stream"
)

// F12QueryServing measures the read-serving side of the index — the
// workload a built tree actually exists for — on the worker engine, swept
// over disk counts with every point taken on both storage backends (the
// in-memory simulation and real per-disk files, regardless of -dir):
//
//   - batched point lookups: a 1k-key batch through Tree.GetBatch against a
//     loop of Tree.Get — the batch shares its upper-level node reads
//     (counted reads strictly fewer) and fetches each level's distinct
//     nodes D at a time (wall clock divided by up to D on top of that);
//   - prefetched range scans: a full scan through the forecasting Scanner
//     against the synchronous Range, at identical counted reads — internal
//     nodes are resident (Warm) and the scanner takes its upcoming leaf
//     addresses from them, keeping D sibling reads in flight;
//   - concurrent read sessions: QPS of a mixed point/range workload served
//     by 1 vs 4 sessions on their own goroutines, each with a private
//     reserved cache budget, scaling toward D as the per-disk engine
//     overlaps their transfers.
//
// Unlike the earlier timing experiments, F12 enforces its acceptance gates
// itself at the D=4 points — batch >= 2.5x at strictly fewer reads,
// prefetched scan >= 2x at identical reads, 4 sessions >= 2x QPS of 1 on
// the file backend — and returns an error when one fails, so cmd/embench
// exits non-zero and CI can gate on the sweep.
func F12QueryServing(n int, disks []int, latency time.Duration) (*Table, error) {
	t := &Table{
		ID:    "F12",
		Title: "query serving: batched lookups, prefetched scans, and concurrent sessions vs one-at-a-time",
		Notes: "gates at D=4: batch >= 2.5x with reads strictly fewer; scan >= 2x at identical reads; 4 sessions >= 2x QPS (file)",
	}
	for _, d := range disks {
		for _, backend := range []string{"mem", "file"} {
			row, err := queryPoint(n, d, latency, backend)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, *row)
			if d != 4 {
				continue
			}
			c := row.Cells
			if c["batchMs"]*2.5 > c["loopMs"] {
				return nil, fmt.Errorf("F12 %s gate: GetBatch %.1fms not >= 2.5x faster than Get loop %.1fms",
					row.Label, c["batchMs"], c["loopMs"])
			}
			if c["batchReads"] >= c["loopReads"] {
				return nil, fmt.Errorf("F12 %s gate: GetBatch %0.f reads not strictly below loop %0.f",
					row.Label, c["batchReads"], c["loopReads"])
			}
			if c["scanMs"]*2 > c["rangeMs"] {
				return nil, fmt.Errorf("F12 %s gate: prefetched scan %.1fms not >= 2x faster than Range %.1fms",
					row.Label, c["scanMs"], c["rangeMs"])
			}
			if c["scanReads"] != c["rangeReads"] {
				return nil, fmt.Errorf("F12 %s gate: scan %0.f reads != Range %0.f",
					row.Label, c["scanReads"], c["rangeReads"])
			}
			if backend == "file" && c["qps4"] < 2*c["qps1"] {
				return nil, fmt.Errorf("F12 %s gate: 4 sessions %.0f qps not >= 2x one session %.0f",
					row.Label, c["qps4"], c["qps1"])
			}
		}
	}
	return t, nil
}

// queryPoint runs the serving workloads for one (disks, backend)
// coordinate, owning its volume — and, on the file backend, its directory —
// for exactly its scope.
func queryPoint(n, d int, latency time.Duration, backend string) (*Row, error) {
	cfg := pdm.Config{BlockBytes: 1024, MemBlocks: 256, Disks: d, DiskLatency: latency}
	if backend == "file" {
		dir, err := os.MkdirTemp("", "emF12")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		cfg.Dir = dir
	}
	vol, err := pdm.NewVolume(cfg)
	if err != nil {
		return nil, err
	}
	defer vol.Close()
	pool := pdm.PoolFor(vol)

	sorted := make([]record.Record, n)
	for i := range sorted {
		sorted[i] = record.Record{Key: uint64(i + 1), Val: uint64(i)}
	}
	sf, err := stream.FromSlice(vol, pool, record.RecordCodec{}, sorted)
	if err != nil {
		return nil, err
	}
	tr, err := btree.BulkLoad(vol, pool, 16, sf, &btree.BulkLoadOptions{Width: d, Async: true, WriteBehind: true})
	if err != nil {
		return nil, err
	}
	defer tr.Close()
	// The serving posture: internal levels resident and clean, leaves on
	// disk. Rehome flushes the internals still dirty from construction, so
	// no timed window below pays a write-back the other side would not;
	// the scans then run first — the scanner's leaf reads bypass the
	// cache, so the warm fan-out and cold leaves both comparisons see are
	// identical.
	if err := tr.Rehome(pool, 16); err != nil {
		return nil, err
	}
	if err := tr.Warm(); err != nil {
		return nil, err
	}

	full := ^uint64(0)
	vol.Stats().Reset()
	start := time.Now()
	cnt := 0
	if err := tr.RangePrefetch(pool, 0, full, nil, func(k, v uint64) error { cnt++; return nil }); err != nil {
		return nil, err
	}
	scanMs := msSince(start)
	scanReads := vol.Stats().Snapshot().Reads
	if cnt != n {
		return nil, fmt.Errorf("F12: prefetched scan returned %d of %d records", cnt, n)
	}

	vol.Stats().Reset()
	start = time.Now()
	cnt = 0
	if err := tr.Range(0, full, func(k, v uint64) error { cnt++; return nil }); err != nil {
		return nil, err
	}
	rangeMs := msSince(start)
	rangeReads := vol.Stats().Snapshot().Reads
	if cnt != n {
		return nil, fmt.Errorf("F12: Range returned %d of %d records", cnt, n)
	}

	// A 1k-key point batch, ~1/8 misses, against the one-at-a-time loop.
	// Range's leaf stream just washed the warmed fan-out out of the cache;
	// re-adopt the serving posture so both point paths start from resident
	// internals, as documented.
	if err := tr.Warm(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(0xF12))
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = uint64(rng.Intn(n+n/8) + 1)
	}
	vol.Stats().Reset()
	start = time.Now()
	loopVals := make([]uint64, len(keys))
	loopFound := make([]bool, len(keys))
	for i, k := range keys {
		v, ok, err := tr.Get(k)
		if err != nil {
			return nil, err
		}
		loopVals[i], loopFound[i] = v, ok
	}
	loopMs := msSince(start)
	loopReads := vol.Stats().Snapshot().Reads

	vol.Stats().Reset()
	start = time.Now()
	vals, found, err := tr.GetBatch(keys)
	if err != nil {
		return nil, err
	}
	batchMs := msSince(start)
	batchReads := vol.Stats().Snapshot().Reads
	for i := range keys {
		if vals[i] != loopVals[i] || found[i] != loopFound[i] {
			return nil, fmt.Errorf("F12: GetBatch disagrees with Get on key %d", keys[i])
		}
	}

	qps1, err := sessionQPS(tr, pool, d, n, 1)
	if err != nil {
		return nil, err
	}
	qps4, err := sessionQPS(tr, pool, d, n, 4)
	if err != nil {
		return nil, err
	}

	return &Row{
		Label: fmt.Sprintf("D=%d/%s", d, backend),
		Cells: map[string]float64{
			"loopMs": loopMs, "batchMs": batchMs,
			"loopReads": float64(loopReads), "batchReads": float64(batchReads),
			"rangeMs": rangeMs, "scanMs": scanMs,
			"rangeReads": float64(rangeReads), "scanReads": float64(scanReads),
			"qps1": qps1, "qps4": qps4,
		},
		Order: []string{"loopMs", "batchMs", "loopReads", "batchReads",
			"rangeMs", "scanMs", "rangeReads", "scanReads", "qps1", "qps4"},
	}, nil
}

// sessionQPS serves a fixed mixed workload — 90% point lookups, 10% short
// range scans — from g concurrent read sessions and reports total queries
// per second. Each session owns a goroutine, a private reserved cache, and
// a deterministic key stream.
func sessionQPS(tr *btree.Tree, pool *pdm.Pool, d, n, g int) (float64, error) {
	const opsPerSession = 200
	sessions := make([]*btree.Session, g)
	for i := range sessions {
		s, err := tr.NewSessionOn(pool, 12, d)
		if err != nil {
			return 0, err
		}
		sessions[i] = s
		// Serving posture per session: fan-out resident before the clock
		// starts, so the measured QPS is leaf-bound like a warmed server's.
		if err := s.Warm(); err != nil {
			return 0, err
		}
	}
	defer func() {
		for _, s := range sessions {
			s.Close()
		}
	}()
	errs := make([]error, g)
	var wg sync.WaitGroup
	start := time.Now()
	for i, s := range sessions {
		wg.Add(1)
		go func(i int, s *btree.Session) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000*g + i)))
			for j := 0; j < opsPerSession; j++ {
				k := uint64(rng.Intn(n) + 1)
				if j%10 == 9 {
					sc, err := s.NewScanner(k, k+256, nil)
					if err != nil {
						errs[i] = err
						return
					}
					err = stream.Drain[record.Record](sc, func(record.Record) error { return nil })
					sc.Close()
					if err != nil {
						errs[i] = err
						return
					}
					continue
				}
				if _, ok, err := s.Get(k); err != nil || !ok {
					errs[i] = fmt.Errorf("F12 session get(%d): ok=%v err=%v", k, ok, err)
					return
				}
			}
		}(i, s)
	}
	wg.Wait()
	sec := time.Since(start).Seconds()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return float64(g*opsPerSession) / sec, nil
}

// msSince is the experiments' wall-clock unit.
func msSince(start time.Time) float64 {
	return float64(time.Since(start).Microseconds()) / 1000
}
