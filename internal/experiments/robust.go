package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"time"

	"em/internal/btree"
	"em/internal/index"
	"em/internal/pdm"
	"em/internal/record"
	"em/internal/shard"
	"em/internal/store"
	"em/internal/stream"
)

// F15 drives the robustness surface: an open-loop YCSB-style workload
// (fixed arrival rate, reads/inserts/scans, uniform and Zipf key
// popularity) against the admission-controlled store, a clean-vs-faulted
// serving comparison with retries enabled, and a sharded batch across a
// crashed shard. Each phase enforces its acceptance gates and the run
// fails when one is missed, so cmd/embench exits non-zero and CI gates on
// the sweep.

// The workload mix: mostly point-lookup batches, a writer's trickle of
// inserts, and enough range scans that their pool appetite is the
// contended resource admission control arbitrates.
const (
	opRead = iota
	opInsert
	opScan
)

// loadOp is one pre-generated request of the open-loop workload. The ops
// are fully materialized before the run so the concurrent driver never
// shares a rand.Rand and two runs with one seed issue identical requests.
type loadOp struct {
	kind   int
	keys   []uint64 // opRead: the batch
	k, v   uint64   // opInsert
	lo, hi uint64   // opScan
}

// makeOps pre-generates a mixed workload over keys 1..n: 70% 8-key read
// batches, 15% inserts of fresh keys, 15% 128-key range scans. Popular
// keys follow either the uniform distribution or a Zipf(1.2) — YCSB's
// skewed default — over the keyspace.
func makeOps(total, n int, zipfDist bool, seed int64) []loadOp {
	rng := rand.New(rand.NewSource(seed))
	var z *rand.Zipf
	if zipfDist {
		z = rand.NewZipf(rng, 1.2, 1, uint64(n-1))
	}
	draw := func() uint64 {
		if z != nil {
			return z.Uint64() + 1
		}
		return uint64(rng.Intn(n) + 1)
	}
	ops := make([]loadOp, total)
	ins := 0
	for i := range ops {
		switch r := rng.Float64(); {
		case r < 0.70:
			keys := make([]uint64, 8)
			for j := range keys {
				keys[j] = draw()
			}
			ops[i] = loadOp{kind: opRead, keys: keys}
		case r < 0.85:
			ins++
			ops[i] = loadOp{kind: opInsert, k: uint64(n + ins), v: uint64(i)}
		default:
			lo := draw()
			ops[i] = loadOp{kind: opScan, lo: lo, hi: lo + 127}
		}
	}
	return ops
}

// pctl returns the p-th percentile (0..1) of lats, which it sorts.
func pctl(lats []float64, p float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	sort.Float64s(lats)
	i := int(p * float64(len(lats)-1))
	return lats[i]
}

// openLoop fires ops at a fixed arrival period — an open loop: op i
// launches at start+i·period whether or not earlier ops finished, the
// YCSB arrival model — and measures each op's latency from its scheduled
// arrival, so queueing delay is charged to the system, not hidden by a
// stalled client. Ops shed by admission control (index.ErrOverload) are
// counted, not failed; any other error is a hard failure.
func openLoop(ops []loadOp, period time.Duration, do func(loadOp) error) (lats []float64, shed int, hard error) {
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for i := range ops {
		target := start.Add(time.Duration(i) * period)
		if d := time.Until(target); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(op loadOp, target time.Time) {
			defer wg.Done()
			err := do(op)
			lat := msSince(target)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				lats = append(lats, lat)
			case errors.Is(err, index.ErrOverload):
				shed++
			default:
				if hard == nil {
					hard = err
				}
			}
		}(ops[i], target)
	}
	wg.Wait()
	return lats, shed, hard
}

// closedLoop serves ops from a fixed worker count, each worker issuing
// its next request as soon as the last returns — the calibration loop
// that measures what the store can actually sustain.
func closedLoop(workers int, ops []loadOp, do func(loadOp) error) (ok, shed int, wallMs float64, hard error) {
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(ops); i += workers {
				err := do(ops[i])
				mu.Lock()
				switch {
				case err == nil:
					ok++
				case errors.Is(err, index.ErrOverload):
					shed++
				default:
					if hard == nil {
						hard = err
					}
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	return ok, shed, msSince(start), hard
}

// openLoopPoint is one measured (distribution, offered-rate) coordinate.
type openLoopPoint struct {
	dist, rate string
	ok, shed   int
	p50, p99   float64
	wallMs     float64
	stats      pdm.Stats
}

// robustOpenLoop builds an admission-controlled store over keys 1..n and
// serves the pre-generated mix at half and at twice its calibrated
// closed-loop capacity. The pool is soaked down so concurrent scans — the
// frame-hungry requests — genuinely contend: at 2x the only acceptable
// failure is a typed shed.
func robustOpenLoop(n, totalOps int, latency time.Duration, zipfDist bool) ([]openLoopPoint, error) {
	dist := "uniform"
	seed := int64(0xF15)
	if zipfDist {
		dist = "zipf"
		seed = 0x215F
	}
	vol, err := newVolume(pdm.Config{BlockBytes: 1024, MemBlocks: 192, Disks: 2, DiskLatency: latency})
	if err != nil {
		return nil, err
	}
	defer vol.Close()
	pool := pdm.PoolFor(vol)
	st, err := store.Open(vol, pool, store.Config{
		FrontOps: 1 << 20, CacheFrames: 8, Width: 2,
		AdmitQueue: 16, AdmitWait: 25 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	defer st.Close()
	for k := 1; k <= n; k++ {
		if err := st.Insert(uint64(k), uint64(k)*3); err != nil {
			return nil, err
		}
	}
	if err := st.Drain(); err != nil {
		return nil, err
	}

	do := func(op loadOp) error {
		switch op.kind {
		case opRead:
			_, _, err := st.GetBatch(op.keys)
			return err
		case opInsert:
			return st.Insert(op.k, op.v)
		default:
			sc, err := st.Scan(op.lo, op.hi)
			if err != nil {
				return err
			}
			for {
				_, ok, err := sc.Next()
				if err != nil {
					sc.Close()
					return err
				}
				if !ok {
					sc.Close()
					return nil
				}
			}
		}
	}

	// Warm the generation's point-read cache, then establish the scan's
	// frame appetite, so the soak below can leave room for only ~1.5
	// concurrent scans: overload must manifest as pool contention the
	// admission gate arbitrates, whatever the host's absolute speed.
	warm := makeOps(8, n, zipfDist, seed+1)
	for _, op := range warm {
		if op.kind == opInsert {
			continue
		}
		if err := do(op); err != nil {
			return nil, fmt.Errorf("F15 %s warm-up: %w", dist, err)
		}
	}
	before := pool.Free()
	sc, err := st.Scan(1, 128)
	if err != nil {
		return nil, err
	}
	scanCost := before - pool.Free()
	sc.Close()
	if target := scanCost + scanCost/2; pool.Free() > target {
		soak, err := pool.AllocN(pool.Free() - target)
		if err != nil {
			return nil, err
		}
		defer pdm.ReleaseAll(soak)
	}

	// Calibrate: a short closed loop measures sustainable throughput; the
	// open-loop rates are set relative to it so "2x oversubscribed" means
	// the same thing on a laptop and in CI.
	cal := makeOps(totalOps/3, n, zipfDist, seed+2)
	ok, _, calMs, hard := closedLoop(6, cal, do)
	if hard != nil {
		return nil, fmt.Errorf("F15 %s calibration: %w", dist, hard)
	}
	if ok == 0 {
		return nil, fmt.Errorf("F15 %s calibration: no op succeeded", dist)
	}
	perOp := time.Duration(calMs/float64(ok)*1e6) * time.Nanosecond

	var out []openLoopPoint
	for _, rate := range []struct {
		name   string
		period time.Duration
	}{
		{"0.5x", 2 * perOp},
		{"2x", perOp / 2},
	} {
		ops := makeOps(totalOps, n, zipfDist, seed+3)
		vol.Stats().Reset()
		start := time.Now()
		lats, shed, hard := openLoop(ops, rate.period, do)
		if hard != nil {
			return nil, fmt.Errorf("F15 %s/%s gate: hard error escaped admission control: %w", dist, rate.name, hard)
		}
		out = append(out, openLoopPoint{
			dist: dist, rate: rate.name,
			ok: len(lats), shed: shed,
			p50: pctl(lats, 0.50), p99: pctl(lats, 0.99),
			wallMs: msSince(start), stats: vol.Stats().Snapshot(),
		})
	}
	return out, nil
}

// servePoint is one clean-or-faulted serving measurement.
type servePoint struct {
	p50, p99          float64
	stats             pdm.Stats
	injected, retries uint64
	batches, served   int
}

// robustServe builds a bulk-loaded B-tree in the F12 serving posture on a
// volume with the given fault plan and retry policy, then serves a fixed
// sequence of 16-key batches single-threaded, recording per-batch
// latency. The same seed drives the clean and faulted twins, so their
// counted I/Os must come out identical when every fault retries to
// success.
func robustServe(n, batches int, latency time.Duration, plan *pdm.FaultPlan) (*servePoint, error) {
	cfg := pdm.Config{BlockBytes: 1024, MemBlocks: 256, Disks: 2, DiskLatency: latency}
	if plan != nil {
		cfg.Fault = plan
		cfg.Retry = &pdm.RetryPolicy{MaxRetries: 8}
	}
	vol, err := newVolume(cfg)
	if err != nil {
		return nil, err
	}
	defer vol.Close()
	pool := pdm.PoolFor(vol)
	recs := make([]record.Record, n)
	for i := range recs {
		recs[i] = record.Record{Key: uint64(i + 1), Val: uint64(i+1) * 3}
	}
	sf, err := stream.FromSlice(vol, pool, record.RecordCodec{}, recs)
	if err != nil {
		return nil, err
	}
	tr, err := btree.BulkLoad(vol, pool, 16, sf, &btree.BulkLoadOptions{Width: 2, Async: true, WriteBehind: true})
	if err != nil {
		return nil, err
	}
	defer tr.Close()
	if err := tr.Rehome(pool, 16); err != nil {
		return nil, err
	}
	if err := tr.Warm(); err != nil {
		return nil, err
	}

	vol.Stats().Reset()
	rng := rand.New(rand.NewSource(0xF15A))
	var lats []float64
	served := 0
	for b := 0; b < batches; b++ {
		keys := make([]uint64, 16)
		for i := range keys {
			keys[i] = uint64(rng.Intn(n) + 1)
		}
		start := time.Now()
		vals, found, err := tr.GetBatch(keys)
		if err != nil {
			return nil, fmt.Errorf("F15 serve batch %d: %w", b, err)
		}
		lats = append(lats, msSince(start))
		for i, k := range keys {
			if !found[i] || vals[i] != k*3 {
				return nil, fmt.Errorf("F15 serve: GetBatch(%d) = (%d,%v), want (%d,true)", k, vals[i], found[i], k*3)
			}
			served++
		}
	}
	pt := &servePoint{
		p50: pctl(lats, 0.50), p99: pctl(lats, 0.99),
		stats: vol.Stats().Snapshot(), batches: batches, served: served,
	}
	pt.retries = pt.stats.Retries
	if fb := vol.Fault(); fb != nil {
		pt.injected = uint64(fb.Injected())
	}
	return pt, nil
}

// crashedShardBatch builds a two-shard tree whose upper shard's volume
// crashes (FaultPlan.FailAfter) at the first serving op — the crash point
// is calibrated from a fault-free dry run of the identical build — and
// fans one batch across both shards. It returns the PartialError's shape:
// failed and answered shard counts and how many of the batch's keys the
// surviving shard served correctly.
func crashedShardBatch(n int, latency time.Duration) (failed, answered, servedKeys int, err error) {
	cfg := pdm.Config{BlockBytes: 1024, MemBlocks: 256, Disks: 2, DiskLatency: latency}
	build := func(c pdm.Config, lo, hi int) (*pdm.Volume, *btree.Tree, error) {
		vol, err := newVolume(c)
		if err != nil {
			return nil, nil, err
		}
		pool := pdm.PoolFor(vol)
		recs := make([]record.Record, 0, hi-lo+1)
		for k := lo; k <= hi; k++ {
			recs = append(recs, record.Record{Key: uint64(k), Val: uint64(k) * 3})
		}
		sf, err := stream.FromSlice(vol, pool, record.RecordCodec{}, recs)
		if err != nil {
			vol.Close()
			return nil, nil, err
		}
		tr, err := btree.BulkLoad(vol, pool, 16, sf, &btree.BulkLoadOptions{Width: 2, Async: true, WriteBehind: true})
		if err != nil {
			vol.Close()
			return nil, nil, err
		}
		if err := tr.Rehome(pool, 16); err != nil {
			tr.Close()
			vol.Close()
			return nil, nil, err
		}
		if err := tr.Warm(); err != nil {
			tr.Close()
			vol.Close()
			return nil, nil, err
		}
		return vol, tr, nil
	}

	// Dry run: the identical upper-shard build on a fault-free volume
	// counts the ops the build consumes, so FailAfter lands exactly on the
	// first serving op.
	dryVol, dryTr, err := build(cfg, n/2+1, n)
	if err != nil {
		return 0, 0, 0, err
	}
	s := dryVol.Stats().Snapshot()
	buildOps := int64(s.Reads + s.Writes)
	dryTr.Close()
	dryVol.Close()

	cleanVol, shard0, err := build(cfg, 1, n/2)
	if err != nil {
		return 0, 0, 0, err
	}
	defer cleanVol.Close()
	crashCfg := cfg
	crashCfg.Fault = &pdm.FaultPlan{Seed: 1, FailAfter: buildOps}
	crashVol, shard1, err := build(crashCfg, n/2+1, n)
	if err != nil {
		return 0, 0, 0, err
	}
	defer crashVol.Close()
	sharded, err := shard.NewTree([]*btree.Tree{shard0, shard1}, &shard.TreeOptions{Splits: []uint64{uint64(n/2) + 1}})
	if err != nil {
		return 0, 0, 0, err
	}
	// The crashed shard's Close fails with the volume dead; the check is
	// about the batch, not the teardown.
	defer sharded.Close() //nolint:errcheck

	keys := make([]uint64, 64)
	for i := range keys {
		keys[i] = uint64((i*n)/len(keys) + 1)
	}
	vals, found, err := sharded.GetBatch(keys)
	var pe *shard.PartialError
	if !errors.As(err, &pe) {
		return 0, 0, 0, fmt.Errorf("F15 crash gate: expected a *shard.PartialError, got %v", err)
	}
	if !errors.Is(err, pdm.ErrFaulted) {
		return 0, 0, 0, fmt.Errorf("F15 crash gate: cause does not unwrap to pdm.ErrFaulted: %v", err)
	}
	for i, k := range keys {
		if !pe.Served[i] {
			continue
		}
		if !found[i] || vals[i] != k*3 {
			return 0, 0, 0, fmt.Errorf("F15 crash gate: served key %d = (%d,%v), want (%d,true)", k, vals[i], found[i], k*3)
		}
		servedKeys++
	}
	return len(pe.Failed), len(pe.Answered), servedKeys, nil
}

// F15Robustness measures the serving stack under overload and faults and
// enforces the robustness gates:
//
//   - open loop at 2x the calibrated capacity sheds (typed ErrOverload)
//     rather than erroring — zero hard errors, some sheds, some successes
//     — under both uniform and Zipf key popularity;
//   - a faulted volume with retries serves the identical workload with
//     identical counted I/Os (Stats byte-identical modulo the Retries
//     audit), injected faults actually fired, and p99 within a bounded
//     multiple of the clean run's;
//   - a batch spanning a crashed shard degrades gracefully: a
//     *shard.PartialError naming the dead shard, the surviving shard's
//     answers intact.
func F15Robustness(n, totalOps int, latency time.Duration) (*Table, error) {
	t := &Table{
		ID:    "F15",
		Title: "robustness: open-loop overload sheds typed; faulted retries keep counted I/Os; crashed shard degrades",
		Notes: "gates: 2x load sheds>0 ok>0 hard=0; faulted p99 <= 8x clean, stats identical modulo retries; partial batch survives",
	}
	for _, zipfDist := range []bool{false, true} {
		pts, err := robustOpenLoop(n, totalOps, latency, zipfDist)
		if err != nil {
			return nil, err
		}
		for _, p := range pts {
			if p.rate == "2x" {
				if p.shed == 0 {
					return nil, fmt.Errorf("F15 %s/2x gate: oversubscribed load shed nothing (ok=%d)", p.dist, p.ok)
				}
				if p.ok == 0 {
					return nil, fmt.Errorf("F15 %s/2x gate: oversubscribed load served nothing (shed=%d)", p.dist, p.shed)
				}
			}
			total := p.ok + p.shed
			t.Rows = append(t.Rows, Row{
				Label: p.dist + "/" + p.rate,
				Cells: map[string]float64{
					"ok": float64(p.ok), "shed": float64(p.shed),
					"shedPct": 100 * float64(p.shed) / float64(total),
					"p50Ms":   p.p50, "p99Ms": p.p99,
					"reads": float64(p.stats.Reads), "retries": 0, "injected": 0,
				},
				Order: f15Cols,
			})
		}
	}

	batches := totalOps / 2
	clean, err := robustServe(n, batches, latency, nil)
	if err != nil {
		return nil, err
	}
	faulted, err := robustServe(n, batches, latency, &pdm.FaultPlan{
		Seed: 0xF15, ReadErr: 0.04, WriteErr: 0.02, StallEvery: 128, Stall: latency,
	})
	if err != nil {
		return nil, err
	}
	if faulted.injected == 0 {
		return nil, fmt.Errorf("F15 fault gate: the plan injected nothing — the workload is too short for its rates")
	}
	if faulted.retries == 0 {
		return nil, fmt.Errorf("F15 fault gate: no retries recorded despite %d injected faults", faulted.injected)
	}
	fs := faulted.stats
	fs.Retries = 0
	if !reflect.DeepEqual(clean.stats, fs) {
		return nil, fmt.Errorf("F15 fault gate: counted I/Os differ from the clean run:\nclean:   %+v\nfaulted: %+v", clean.stats, fs)
	}
	floor := float64(latency.Microseconds()) / 1000
	if bound := 8 * clean.p99; clean.p99 > 0 && faulted.p99 > bound && faulted.p99 > 8*floor {
		return nil, fmt.Errorf("F15 fault gate: faulted p99 %.2fms exceeds 8x clean p99 %.2fms", faulted.p99, clean.p99)
	}
	t.Rows = append(t.Rows,
		Row{
			Label: "serve/clean",
			Cells: map[string]float64{"ok": float64(clean.served), "shed": 0, "shedPct": 0,
				"p50Ms": clean.p50, "p99Ms": clean.p99,
				"reads": float64(clean.stats.Reads), "retries": 0, "injected": 0},
			Order: f15Cols,
		},
		Row{
			Label: "serve/faulted",
			Cells: map[string]float64{"ok": float64(faulted.served), "shed": 0, "shedPct": 0,
				"p50Ms": faulted.p50, "p99Ms": faulted.p99,
				"reads": float64(faulted.stats.Reads), "retries": float64(faulted.retries),
				"injected": float64(faulted.injected)},
			Order: f15Cols,
		})

	failedShards, answeredShards, servedKeys, err := crashedShardBatch(n, latency)
	if err != nil {
		return nil, err
	}
	if failedShards != 1 || answeredShards != 1 {
		return nil, fmt.Errorf("F15 crash gate: expected 1 failed + 1 answered shard, got %d + %d", failedShards, answeredShards)
	}
	if servedKeys == 0 {
		return nil, fmt.Errorf("F15 crash gate: the surviving shard served no keys")
	}
	// The crash row reuses the shared columns: ok is the keys the surviving
	// shard answered, shed the keys the dead shard dropped.
	t.Rows = append(t.Rows, Row{
		Label: "crash/partial",
		Cells: map[string]float64{"ok": float64(servedKeys), "shed": float64(64 - servedKeys),
			"shedPct": 100 * float64(64-servedKeys) / 64, "p50Ms": 0, "p99Ms": 0,
			"reads": 0, "retries": 0, "injected": 0},
		Order: f15Cols,
	})
	return t, nil
}

// f15Cols is the one column set every F15 row shares (Table.String renders
// the first row's Order for all rows).
var f15Cols = []string{"ok", "shed", "shedPct", "p50Ms", "p99Ms", "reads", "retries", "injected"}

// robustBenchPoint contributes the robustness trajectory points: the
// open-loop latency/shed profile per (distribution, offered rate), and
// the clean-vs-faulted serving pair whose counted I/Os must match.
func robustBenchPoint(n, totalOps int, latency time.Duration) ([]BenchResult, error) {
	var out []BenchResult
	for _, zipfDist := range []bool{false, true} {
		pts, err := robustOpenLoop(n, totalOps, latency, zipfDist)
		if err != nil {
			return nil, err
		}
		for _, p := range pts {
			out = append(out, BenchResult{
				Workload: "openloop", Mode: p.dist + "-" + p.rate, Disks: 2,
				Records: p.ok + p.shed, WallMs: p.wallMs,
				Reads: p.stats.Reads, Writes: p.stats.Writes, Steps: p.stats.Steps,
				Retries: p.stats.Retries, P50Ms: p.p50, P99Ms: p.p99, Shed: uint64(p.shed),
			})
		}
	}
	batches := totalOps / 2
	clean, err := robustServe(n, batches, latency, nil)
	if err != nil {
		return nil, err
	}
	faulted, err := robustServe(n, batches, latency, &pdm.FaultPlan{
		Seed: 0xF15, ReadErr: 0.04, WriteErr: 0.02, StallEvery: 128, Stall: latency,
	})
	if err != nil {
		return nil, err
	}
	for _, p := range []struct {
		mode string
		pt   *servePoint
	}{{"clean", clean}, {"faulted", faulted}} {
		out = append(out, BenchResult{
			Workload: "faulted-serve", Mode: p.mode, Disks: 2,
			Records: p.pt.batches, WallMs: 0,
			Reads: p.pt.stats.Reads, Writes: p.pt.stats.Writes, Steps: p.pt.stats.Steps,
			Retries: p.pt.retries, P50Ms: p.pt.p50, P99Ms: p.pt.p99,
		})
	}
	return out, nil
}
