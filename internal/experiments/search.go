package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"em/internal/btree"
	"em/internal/buffertree"
	"em/internal/extsort"
	"em/internal/hashing"
	"em/internal/pqueue"
	"em/internal/record"
	"em/internal/stream"
)

// bulkLoadFromSorted builds a B-tree from a key-sorted record file with a
// minimal cache, for search-cost measurements.
func bulkLoadFromSorted(e Env, sorted *stream.File[record.Record]) (*btree.Tree, error) {
	return btree.BulkLoad(e.Vol, e.Pool, 3, sorted, nil)
}

// coldLookupCost measures the average block reads per point lookup against
// bt with an effectively cold cache (the tree holds the minimum three
// frames, so nearly every level of the search path misses).
func coldLookupCost(e Env, bt *btree.Tree, lookups int) (float64, error) {
	rng := rand.New(rand.NewSource(17))
	start := e.Vol.Stats().Reads
	for i := 0; i < lookups; i++ {
		if _, _, err := bt.Get(rng.Uint64()); err != nil {
			return 0, err
		}
	}
	return float64(e.Vol.Stats().Reads-start) / float64(lookups), nil
}

// BinarySearchSorted looks key up in a key-sorted record file by binary
// search over record indices, one block read per probe: Θ(log₂ N) I/Os.
func BinarySearchSorted(e Env, f *stream.File[record.Record], key uint64) (record.Record, bool, error) {
	lo, hi := int64(0), f.Len()
	for lo < hi {
		mid := (lo + hi) / 2
		r, err := stream.ReadRecordAt(f, e.Pool, mid)
		if err != nil {
			return record.Record{}, false, err
		}
		switch {
		case r.Key == key:
			return r, true, nil
		case r.Key < key:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return record.Record{}, false, nil
}

// T5OnlineSearch compares the three online dictionaries the survey
// tabulates: binary search over a sorted file (Θ(log₂ N) probes), the
// B-tree (Θ(log_B N)), and extendible hashing (O(1) expected probes).
func T5OnlineSearch(n, lookups int) (*Table, error) {
	t := &Table{
		ID:    "T5",
		Title: "online search: binary Θ(log₂N) > B-tree Θ(log_B N) > hashing O(1) probes",
		Notes: "reads/lookup ordered binary > btree > hash; btree ≈ its height",
	}
	e := NewEnv(1024, 64, 1)
	defer e.Close()
	rs := RandomRecords(23, n)
	f, err := MaterialiseRecords(e, rs)
	if err != nil {
		return nil, err
	}
	sorted, err := extsort.MergeSort(f, e.Pool, record.Record.Less, nil)
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(29))
	probe := make([]uint64, lookups)
	for i := range probe {
		if i%2 == 0 {
			probe[i] = rs[rng.Intn(len(rs))].Key // present
		} else {
			probe[i] = rng.Uint64() // almost surely absent
		}
	}

	// Binary search over the sorted file.
	e.Vol.Stats().Reset()
	for _, k := range probe {
		if _, _, err := BinarySearchSorted(e, sorted, k); err != nil {
			return nil, err
		}
	}
	binReads := float64(e.Vol.Stats().Reads) / float64(lookups)

	// B-tree with minimal cache.
	bt, err := bulkLoadFromSorted(e, sorted)
	if err != nil {
		return nil, err
	}
	e.Vol.Stats().Reset()
	for _, k := range probe {
		if _, _, err := bt.Get(k); err != nil {
			return nil, err
		}
	}
	btReads := float64(e.Vol.Stats().Reads) / float64(lookups)
	height := float64(bt.Height())
	if err := bt.Close(); err != nil {
		return nil, err
	}

	// Extendible hashing with minimal cache.
	ht, err := hashing.New(e.Vol, e.Pool, 3)
	if err != nil {
		return nil, err
	}
	for _, r := range rs {
		if _, err := ht.Insert(r.Key, r.Val); err != nil {
			return nil, err
		}
	}
	e.Vol.Stats().Reset()
	for _, k := range probe {
		if _, _, err := ht.Get(k); err != nil {
			return nil, err
		}
	}
	hashReads := float64(e.Vol.Stats().Reads) / float64(lookups)
	if err := ht.Close(); err != nil {
		return nil, err
	}

	t.Rows = append(t.Rows, Row{
		Label: fmt.Sprintf("N=%d", n),
		Cells: map[string]float64{
			"binary":   binReads,
			"binPred":  math.Ceil(math.Log2(float64(n))),
			"btree":    btReads,
			"btHeight": height,
			"hash":     hashReads,
		},
		Order: []string{"binary", "binPred", "btree", "btHeight", "hash"},
	})
	return t, nil
}

// T6BufferTreeVsBTree streams N random inserts into a buffer tree and a
// B-tree and compares total I/Os: the buffer tree's amortised
// O((1/B)·log_m(N/B)) per op versus the B-tree's Θ(log_B N).
func T6BufferTreeVsBTree(ns []int) (*Table, error) {
	t := &Table{
		ID:    "T6",
		Title: "batched inserts: buffer tree amortised ≪ B-tree per-op",
		Notes: "bufIOs/op ≪ 1; btreeIOs/op ≥ 1; advantage grows with N",
	}
	for _, n := range ns {
		e := NewEnv(1024, 32, 1)
		defer e.Close()
		rng := rand.New(rand.NewSource(31))
		keys := rng.Perm(n)

		bt, err := buffertree.New(e.Vol, e.Pool, buffertree.Config{})
		if err != nil {
			return nil, err
		}
		e.Vol.Stats().Reset()
		for _, k := range keys {
			if err := bt.Insert(uint64(k), uint64(k)); err != nil {
				return nil, err
			}
		}
		sealed, err := bt.Seal()
		if err != nil {
			return nil, err
		}
		bufIOs := float64(e.Vol.Stats().Total())
		if sealed.Len() != int64(n) {
			return nil, fmt.Errorf("buffer tree lost records: %d != %d", sealed.Len(), n)
		}
		sealed.Release()

		bt2, err := btree.New(e.Vol, e.Pool, 4)
		if err != nil {
			return nil, err
		}
		e.Vol.Stats().Reset()
		for _, k := range keys {
			if _, err := bt2.Insert(uint64(k), uint64(k)); err != nil {
				return nil, err
			}
		}
		btreeIOs := float64(e.Vol.Stats().Total())
		if err := bt2.Close(); err != nil {
			return nil, err
		}

		t.Rows = append(t.Rows, Row{
			Label: fmt.Sprintf("N=%d", n),
			Cells: map[string]float64{
				"bufIOs":     bufIOs,
				"bufPerOp":   bufIOs / float64(n),
				"btreeIOs":   btreeIOs,
				"btreePerOp": btreeIOs / float64(n),
				"speedup":    ratio(btreeIOs, bufIOs),
			},
			Order: []string{"bufIOs", "bufPerOp", "btreeIOs", "btreePerOp", "speedup"},
		})
	}
	return t, nil
}

// T7PriorityQueue runs the heapsort workload — N pushes then N delete-mins —
// through the external priority queue (O(Sort(N)) total) and through a
// B-tree used as a priority queue (Θ(N·log_B N)).
func T7PriorityQueue(ns []int) (*Table, error) {
	t := &Table{
		ID:    "T7",
		Title: "priority queue: external PQ ≈ Sort(N) total; B-tree PQ ≈ N·log_B N",
		Notes: "pq total ≪ btree total; pq within a small multiple of sortPred",
	}
	for _, n := range ns {
		e := NewEnv(1024, 32, 1)
		defer e.Close()
		rng := rand.New(rand.NewSource(37))
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = rng.Uint64()
		}

		q, err := pqueue.New(e.Vol, e.Pool)
		if err != nil {
			return nil, err
		}
		e.Vol.Stats().Reset()
		for i, k := range keys {
			if err := q.Push(k, uint64(i)); err != nil {
				return nil, err
			}
		}
		var last uint64
		for i := 0; i < n; i++ {
			k, _, ok, err := q.PopMin()
			if err != nil || !ok {
				return nil, fmt.Errorf("popmin %d: ok=%v err=%v", i, ok, err)
			}
			if k < last {
				return nil, fmt.Errorf("pq order violation")
			}
			last = k
		}
		pqIOs := float64(e.Vol.Stats().Total())
		if err := q.Close(); err != nil {
			return nil, err
		}

		bt, err := btree.New(e.Vol, e.Pool, 4)
		if err != nil {
			return nil, err
		}
		e.Vol.Stats().Reset()
		for i, k := range keys {
			if _, err := bt.Insert(k, uint64(i)); err != nil {
				return nil, err
			}
		}
		for i := 0; i < n; i++ {
			k, _, ok, err := bt.Min()
			if err != nil || !ok {
				return nil, fmt.Errorf("btree min %d: ok=%v err=%v", i, ok, err)
			}
			if _, err := bt.Delete(k); err != nil {
				return nil, err
			}
		}
		btIOs := float64(e.Vol.Stats().Total())
		if err := bt.Close(); err != nil {
			return nil, err
		}

		per := e.Vol.BlockBytes() / (record.RecordCodec{}).Size()
		t.Rows = append(t.Rows, Row{
			Label: fmt.Sprintf("N=%d", n),
			Cells: map[string]float64{
				"pq":       pqIOs,
				"btree":    btIOs,
				"sortPred": SortPredicted(n, per, e.Pool.Capacity(), 1),
				"speedup":  ratio(btIOs, pqIOs),
			},
			Order: []string{"pq", "btree", "sortPred", "speedup"},
		})
	}
	return t, nil
}

// T9BulkLoad compares index construction: sort + bottom-up build (Sort(N))
// versus N repeated inserts (Θ(N·log_B N)).
func T9BulkLoad(ns []int) (*Table, error) {
	t := &Table{
		ID:    "T9",
		Title: "B-tree build: sort + bulk load ≈ Sort(N) vs repeated insertion Θ(N·log_B N)",
		Notes: "bulk (incl. sort) ≪ repeated inserts; gap grows with N",
	}
	for _, n := range ns {
		e := NewEnv(1024, 32, 1)
		defer e.Close()
		rs := RandomRecords(41, n)
		f, err := MaterialiseRecords(e, rs)
		if err != nil {
			return nil, err
		}

		e.Vol.Stats().Reset()
		sorted, err := extsort.MergeSort(f, e.Pool, record.Record.Less, nil)
		if err != nil {
			return nil, err
		}
		bt, err := btree.BulkLoad(e.Vol, e.Pool, 4, sorted, nil)
		if err != nil {
			return nil, err
		}
		bulkIOs := float64(e.Vol.Stats().Total())
		if bt.Len() != int64(n) {
			return nil, fmt.Errorf("bulk load lost records: %d != %d", bt.Len(), n)
		}
		if err := bt.Close(); err != nil {
			return nil, err
		}

		bt2, err := btree.New(e.Vol, e.Pool, 4)
		if err != nil {
			return nil, err
		}
		e.Vol.Stats().Reset()
		for _, r := range rs {
			if _, err := bt2.Insert(r.Key, r.Val); err != nil {
				return nil, err
			}
		}
		insIOs := float64(e.Vol.Stats().Total())
		if err := bt2.Close(); err != nil {
			return nil, err
		}

		t.Rows = append(t.Rows, Row{
			Label: fmt.Sprintf("N=%d", n),
			Cells: map[string]float64{
				"bulk":    bulkIOs,
				"inserts": insIOs,
				"speedup": ratio(insIOs, bulkIOs),
			},
			Order: []string{"bulk", "inserts", "speedup"},
		})
	}
	return t, nil
}
