package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"time"

	"em/internal/btree"
	"em/internal/pdm"
	"em/internal/record"
	"em/internal/shard"
	"em/internal/stream"
)

// F14ShardedServing measures the sharded serving facade — S independent
// volumes range-partitioned behind one index — against the single-volume
// layout, with every point taken on both storage backends:
//
//   - batched point lookups: rounds of a 1k-key batch through the sharded
//     GetBatch, whose merge cut fans per-shard sub-batches out concurrently
//     — S shards bring S volumes' disks to bear, so QPS scales toward S
//     while counted reads stay within S times the single layout's (each
//     shard's tree is at most as tall, but every shard pays its own root);
//   - stitched scans: one full-keyspace Scan through the concatenating
//     cross-shard Scanner, at leaf-bound reads on every layout.
//
// Like F12 and F13, F14 enforces its acceptance gates itself — S=4 batch
// QPS >= 2x S=1 on the file backend, S=4 reads within 4x of S=1 on both
// backends for batch and scan, and, the facade's defining invariant, the
// aggregated per-shard Stats byte-identical between the memory and file
// backends at every S — and returns an error when one fails, so
// cmd/embench exits non-zero and CI can gate on the sweep.
func F14ShardedServing(n int, shardCounts []int, latency time.Duration) (*Table, error) {
	t := &Table{
		ID:    "F14",
		Title: "sharded serving: merge-cut batches and stitched scans across S volumes vs one",
		Notes: "gates: S=4 batch QPS >= 2x S=1 (file); S=4 reads <= 4x S=1; aggregated stats byte-identical mem vs file",
	}
	type point struct {
		s       int
		backend string
	}
	stats := map[point]pdm.Stats{}
	rows := map[point]*Row{}
	for _, s := range shardCounts {
		for _, backend := range []string{"mem", "file"} {
			row, snap, err := shardedPoint(n, s, latency, backend)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, *row)
			stats[point{s, backend}] = snap
			rows[point{s, backend}] = row
		}
		if !reflect.DeepEqual(stats[point{s, "mem"}], stats[point{s, "file"}]) {
			return nil, fmt.Errorf("F14 S=%d gate: aggregated stats differ between backends:\nmem:  %+v\nfile: %+v",
				s, stats[point{s, "mem"}], stats[point{s, "file"}])
		}
	}
	for _, backend := range []string{"mem", "file"} {
		r1, r4 := rows[point{1, backend}], rows[point{4, backend}]
		if r1 == nil || r4 == nil {
			continue
		}
		if r4.Cells["batchReads"] > 4*r1.Cells["batchReads"] {
			return nil, fmt.Errorf("F14 %s gate: S=4 batch reads %.0f exceed 4x S=1's %.0f",
				backend, r4.Cells["batchReads"], r1.Cells["batchReads"])
		}
		if r4.Cells["scanReads"] > 4*r1.Cells["scanReads"] {
			return nil, fmt.Errorf("F14 %s gate: S=4 scan reads %.0f exceed 4x S=1's %.0f",
				backend, r4.Cells["scanReads"], r1.Cells["scanReads"])
		}
		if backend == "file" && r4.Cells["batchQps"] < 2*r1.Cells["batchQps"] {
			return nil, fmt.Errorf("F14 %s gate: S=4 batch QPS %.0f not >= 2x S=1's %.0f",
				backend, r4.Cells["batchQps"], r1.Cells["batchQps"])
		}
	}
	return t, nil
}

// shardBenchPoint measures the sharded serving trajectory points (the F14
// surface): the merge-cut batched lookup and the stitched full scan at
// S ∈ {1, 4} shards, each shard a two-disk volume of its own. Counters are
// the aggregated per-shard Stats.
func shardBenchPoint(n int, latency time.Duration) ([]BenchResult, error) {
	var out []BenchResult
	for _, s := range []int{1, 4} {
		vols := make([]*pdm.Volume, s)
		pools := make([]*pdm.Pool, s)
		for i := range vols {
			vol, err := newVolume(pdm.Config{BlockBytes: 1024, MemBlocks: 256, Disks: 2, DiskLatency: latency})
			if err != nil {
				return nil, err
			}
			defer vol.Close()
			vols[i] = vol
			pools[i] = pdm.PoolFor(vol)
		}
		splits := make([]uint64, s-1)
		for i := range splits {
			splits[i] = uint64((i+1)*n/s) + 1
		}
		shards := make([]*btree.Tree, s)
		for i := range shards {
			lo, hi := i*n/s+1, (i+1)*n/s
			recs := make([]record.Record, 0, hi-lo+1)
			for k := lo; k <= hi; k++ {
				recs = append(recs, record.Record{Key: uint64(k), Val: uint64(k) * 3})
			}
			sf, err := stream.FromSlice(vols[i], pools[i], record.RecordCodec{}, recs)
			if err != nil {
				return nil, err
			}
			tr, err := btree.BulkLoad(vols[i], pools[i], 16, sf,
				&btree.BulkLoadOptions{Width: 2, Async: true, WriteBehind: true})
			if err != nil {
				return nil, err
			}
			if err := tr.Rehome(pools[i], 16); err != nil {
				return nil, err
			}
			shards[i] = tr
		}
		sharded, err := shard.NewTree(shards, &shard.TreeOptions{Splits: splits})
		if err != nil {
			return nil, err
		}
		defer sharded.Close()
		if err := sharded.Warm(); err != nil {
			return nil, err
		}

		measure := func(workload string, records int, fn func() error) error {
			for _, v := range vols {
				v.Stats().Reset()
			}
			start := time.Now()
			if err := fn(); err != nil {
				return fmt.Errorf("%s S=%d: %w", workload, s, err)
			}
			ms := msSince(start)
			agg := sharded.Stats()
			out = append(out, BenchResult{
				Workload: workload, Mode: fmt.Sprintf("S=%d", s), Disks: 2, Records: records,
				WallMs: ms, Reads: agg.Reads, Writes: agg.Writes, Steps: agg.Steps,
			})
			return nil
		}

		// Scan first, then the batch, for the same cold-leaf reasoning as
		// shardedPoint and F12.
		if err := measure("sharded-scan", n, func() error {
			sc, err := sharded.Scan(0, ^uint64(0))
			if err != nil {
				return err
			}
			defer sc.Close()
			for {
				if _, ok, err := sc.Next(); err != nil {
					return err
				} else if !ok {
					return nil
				}
			}
		}); err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(0xF14))
		keys := make([]uint64, 1000)
		for i := range keys {
			keys[i] = uint64(rng.Intn(n+n/8) + 1)
		}
		if err := measure("sharded-getbatch", len(keys), func() error {
			_, _, err := sharded.GetBatch(keys)
			return err
		}); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// shardedPoint serves the fixed workload from an S-shard layout for one
// (shards, backend) coordinate, owning its volumes — and, on the file
// backend, their directories — for exactly its scope. It returns the
// aggregated serving-phase Stats beside the row so the caller can check
// cross-backend identity.
func shardedPoint(n, s int, latency time.Duration, backend string) (*Row, pdm.Stats, error) {
	vols := make([]*pdm.Volume, s)
	pools := make([]*pdm.Pool, s)
	for i := range vols {
		cfg := pdm.Config{BlockBytes: 1024, MemBlocks: 256, Disks: 2, DiskLatency: latency}
		if backend == "file" {
			dir, err := os.MkdirTemp("", "emF14")
			if err != nil {
				return nil, pdm.Stats{}, err
			}
			defer os.RemoveAll(dir)
			cfg.Dir = dir
		}
		vol, err := pdm.NewVolume(cfg)
		if err != nil {
			return nil, pdm.Stats{}, err
		}
		defer vol.Close()
		vols[i] = vol
		pools[i] = pdm.PoolFor(vol)
	}

	// An even range partition of keys 1..n: shard i owns
	// (i*n/s, (i+1)*n/s]; the top shard also fields the misses above n.
	splits := make([]uint64, s-1)
	for i := range splits {
		splits[i] = uint64((i+1)*n/s) + 1
	}
	shards := make([]*btree.Tree, s)
	for i := range shards {
		lo, hi := i*n/s+1, (i+1)*n/s
		recs := make([]record.Record, 0, hi-lo+1)
		for k := lo; k <= hi; k++ {
			recs = append(recs, record.Record{Key: uint64(k), Val: uint64(k) * 3})
		}
		sf, err := stream.FromSlice(vols[i], pools[i], record.RecordCodec{}, recs)
		if err != nil {
			return nil, pdm.Stats{}, err
		}
		tr, err := btree.BulkLoad(vols[i], pools[i], 16, sf,
			&btree.BulkLoadOptions{Width: 2, Async: true, WriteBehind: true})
		if err != nil {
			return nil, pdm.Stats{}, err
		}
		// The serving posture per shard, as in F12: internals flushed clean
		// and resident, so the timed phases below pay leaf reads only.
		if err := tr.Rehome(pools[i], 16); err != nil {
			return nil, pdm.Stats{}, err
		}
		shards[i] = tr
	}
	sharded, err := shard.NewTree(shards, &shard.TreeOptions{Splits: splits})
	if err != nil {
		return nil, pdm.Stats{}, err
	}
	defer sharded.Close()
	if err := sharded.Warm(); err != nil {
		return nil, pdm.Stats{}, err
	}

	for _, v := range vols {
		v.Stats().Reset()
	}

	// The scan runs first, as in F12: the stitched scanner's leaf reads
	// bypass the shard caches, but the batch rounds would admit leaves into
	// them, and a scan over cache-warm shards would flatter the sharded
	// layout — every layout's scan here sees cold leaves.
	start := time.Now()
	sc, err := sharded.Scan(0, ^uint64(0))
	if err != nil {
		return nil, pdm.Stats{}, err
	}
	cnt := 0
	for {
		_, ok, err := sc.Next()
		if err != nil {
			sc.Close()
			return nil, pdm.Stats{}, err
		}
		if !ok {
			break
		}
		cnt++
	}
	sc.Close()
	scanMs := msSince(start)
	scanReads := sharded.Stats().Reads
	if cnt != n {
		return nil, pdm.Stats{}, fmt.Errorf("F14: stitched scan returned %d of %d records", cnt, n)
	}

	// Rounds of a 1k-key batch, ~1/8 misses, through the merge-cut fan-out.
	rng := rand.New(rand.NewSource(0xF14))
	const rounds, batchKeys = 3, 1000
	start = time.Now()
	for r := 0; r < rounds; r++ {
		keys := make([]uint64, batchKeys)
		for i := range keys {
			keys[i] = uint64(rng.Intn(n+n/8) + 1)
		}
		vals, found, err := sharded.GetBatch(keys)
		if err != nil {
			return nil, pdm.Stats{}, err
		}
		for i, k := range keys {
			if want := k <= uint64(n); found[i] != want || (want && vals[i] != k*3) {
				return nil, pdm.Stats{}, fmt.Errorf("F14: GetBatch(%d) = (%d,%v), want (%d,%v)",
					k, vals[i], found[i], k*3, want)
			}
		}
	}
	batchMs := msSince(start)
	batchQps := rounds * batchKeys / (batchMs / 1000)
	snap := sharded.Stats()
	batchReads := snap.Reads - scanReads

	return &Row{
		Label: fmt.Sprintf("S=%d/%s", s, backend),
		Cells: map[string]float64{
			"batchMs": batchMs, "batchQps": batchQps, "batchReads": float64(batchReads),
			"scanMs": scanMs, "scanReads": float64(scanReads),
		},
		Order: []string{"batchMs", "batchQps", "batchReads", "scanMs", "scanReads"},
	}, snap, nil
}
