package experiments

import (
	"fmt"
	"math"

	"em/internal/extsort"
	"em/internal/pdm"
	"em/internal/record"
	"em/internal/stream"
)

// T1FundamentalBounds measures the fundamental operations against their
// Θ-formulas: Scan(N), Sort(N), and Search(N) (via B-tree lookups), for a
// sweep of N on the default device shape. Columns report measured block
// I/Os next to the formula's prediction; the shape claim is that the ratio
// measured/predicted stays bounded by a small constant as N grows 16-fold.
func T1FundamentalBounds(ns []int) (*Table, error) {
	t := &Table{
		ID:    "T1",
		Title: "fundamental bounds: Scan, Sort, Search vs Θ-formulas",
		Notes: "measured/predicted ratio stays within a small constant across the sweep",
	}
	for _, n := range ns {
		e := DefaultEnv()
		defer e.Close()
		per := e.Vol.BlockBytes() / (record.RecordCodec{}).Size()
		f, err := MaterialiseRecords(e, RandomRecords(42, n))
		if err != nil {
			return nil, err
		}

		// Scan.
		e.Vol.Stats().Reset()
		count := 0
		if err := stream.ForEach(f, e.Pool, func(record.Record) error { count++; return nil }); err != nil {
			return nil, err
		}
		scanIOs := float64(e.Vol.Stats().Total())

		// Sort.
		e.Vol.Stats().Reset()
		sorted, err := extsort.MergeSort(f, e.Pool, record.Record.Less, nil)
		if err != nil {
			return nil, err
		}
		sortIOs := float64(e.Vol.Stats().Total())

		// Search: build a B-tree by bulk load, then measure 100 point
		// lookups with a cold cache each time.
		bt, err := bulkLoadFromSorted(e, sorted)
		if err != nil {
			return nil, err
		}
		probes, err := coldLookupCost(e, bt, 100)
		if err != nil {
			return nil, err
		}

		r := Row{
			Label: fmt.Sprintf("N=%d", n),
			Cells: map[string]float64{
				"scan":       scanIOs,
				"scanPred":   ScanPredicted(n, per, 1),
				"sort":       sortIOs,
				"sortPred":   SortPredicted(n, per, e.Pool.Capacity(), 1),
				"search":     probes,
				"searchPred": SearchPredicted(n, bt.Fanout()),
			},
			Order: []string{"scan", "scanPred", "sort", "sortPred", "search", "searchPred"},
		}
		t.Rows = append(t.Rows, r)
	}
	return t, nil
}

// T2SortingAlgorithms compares the three sorting strategies the survey
// tabulates: multiway merge sort and distribution sort (both Sort(N)) versus
// B-tree insertion sort (Θ(N·log_B N) — worse by roughly B/log m).
func T2SortingAlgorithms(ns []int) (*Table, error) {
	t := &Table{
		ID:    "T2",
		Title: "sorting: merge ≈ distribution ≈ Sort(N); B-tree insertion loses by ~B/log m",
		Notes: "merge and distribution within 2x of each other; btree ≥ 5x worse at the largest N",
	}
	for _, n := range ns {
		e := DefaultEnv()
		defer e.Close()
		rs := RandomRecords(7, n)

		f, err := MaterialiseRecords(e, rs)
		if err != nil {
			return nil, err
		}
		e.Vol.Stats().Reset()
		ms, err := extsort.MergeSort(f, e.Pool, record.Record.Less, nil)
		if err != nil {
			return nil, err
		}
		mergeIOs := float64(e.Vol.Stats().Total())
		ms.Release()

		e.Vol.Stats().Reset()
		ds, err := extsort.DistributionSort(f, e.Pool, record.Record.Less, nil)
		if err != nil {
			return nil, err
		}
		distIOs := float64(e.Vol.Stats().Total())
		ds.Release()

		e.Vol.Stats().Reset()
		bs, err := extsort.SortViaBTree(f, e.Pool, e.Pool.Capacity()/2)
		if err != nil {
			return nil, err
		}
		btreeIOs := float64(e.Vol.Stats().Total())
		bs.Release()

		per := e.Vol.BlockBytes() / (record.RecordCodec{}).Size()
		t.Rows = append(t.Rows, Row{
			Label: fmt.Sprintf("N=%d", n),
			Cells: map[string]float64{
				"merge":    mergeIOs,
				"dist":     distIOs,
				"btree":    btreeIOs,
				"sortPred": SortPredicted(n, per, e.Pool.Capacity(), 1),
			},
			Order: []string{"merge", "dist", "btree", "sortPred"},
		})
	}
	return t, nil
}

// F1MergePassesVsMemory fixes N and sweeps the merge fan-in (the effective
// M/B), checking that the number of merge passes tracks
// ceil(log_fanin(initial runs)) — the figure-shaped claim that memory
// buys logarithmically fewer passes.
func F1MergePassesVsMemory(n int, fanins []int) (*Table, error) {
	t := &Table{
		ID:    "F1",
		Title: "merge passes shrink as ceil(log_m(N/M)) while memory grows",
		Notes: "measured passes equal predicted passes at every fan-in",
	}
	for _, fanin := range fanins {
		e := NewEnv(1024, 512, 1) // merge memory is ample; ForceFanIn is the knob
		defer e.Close()
		rs := RandomRecords(3, n)
		f, err := MaterialiseRecords(e, rs)
		if err != nil {
			return nil, err
		}
		// Form runs with a deliberately small separate budget (8 frames) so
		// the sweep starts from many initial runs; the fan-in knob then
		// models the memory available to the merge phase.
		runPool := pdm.NewPool(e.Vol.BlockBytes(), 8)
		opts := &extsort.Options{ForceFanIn: fanin}
		runs, err := extsort.FormRuns(f, runPool, record.Record.Less, opts)
		if err != nil {
			return nil, err
		}
		nRuns := len(runs)
		e.Vol.Stats().Reset()
		out, err := extsort.MergeRuns(runs, e.Pool, record.Record.Less, opts)
		if err != nil {
			return nil, err
		}
		mergeIOs := float64(e.Vol.Stats().Total())
		out.Release()

		per := e.Vol.BlockBytes() / (record.RecordCodec{}).Size()
		blocks := float64(n) / float64(per)
		// One pass reads and writes every block once: 2·N/B I/Os.
		measuredPasses := mergeIOs / (2 * blocks)
		predicted := float64(extsort.MergePassCount(nRuns, fanin))
		t.Rows = append(t.Rows, Row{
			Label: fmt.Sprintf("fanin=%d", fanin),
			Cells: map[string]float64{
				"runs":     float64(nRuns),
				"passes":   measuredPasses,
				"passPred": predicted,
				"mergeIOs": mergeIOs,
			},
			Order: []string{"runs", "passes", "passPred", "mergeIOs"},
		})
	}
	return t, nil
}

// F2RunFormation compares run formation techniques: replacement selection
// yields runs of expected length 2M on random input (vs exactly M for
// load-sort) and a single run on nearly sorted input.
func F2RunFormation(n int) (*Table, error) {
	t := &Table{
		ID:    "F2",
		Title: "replacement selection doubles run length on random input; one run when nearly sorted",
		Notes: "runLen/M ≈ 1 for load-sort, ≈ 2 for replacement on random, ≫ 2 nearly-sorted",
	}
	type variant struct {
		label string
		mode  extsort.RunMode
		data  []record.Record
	}
	variants := []variant{
		{"load-sort/random", extsort.LoadSort, RandomRecords(5, n)},
		{"replsel/random", extsort.ReplacementSelection, RandomRecords(5, n)},
		{"load-sort/90%sorted", extsort.LoadSort, NearlySortedRecords(5, n, 0.1)},
		{"replsel/90%sorted", extsort.ReplacementSelection, NearlySortedRecords(5, n, 0.1)},
	}
	for _, v := range variants {
		e := DefaultEnv()
		defer e.Close()
		f, err := MaterialiseRecords(e, v.data)
		if err != nil {
			return nil, err
		}
		runs, err := extsort.FormRuns(f, e.Pool, record.Record.Less, &extsort.Options{RunMode: v.mode})
		if err != nil {
			return nil, err
		}
		var total int64
		for _, r := range runs {
			total += r.Len()
			r.Release()
		}
		per := e.Vol.BlockBytes() / (record.RecordCodec{}).Size()
		mRecords := float64(e.Pool.Capacity() * per)
		avgLen := float64(total) / float64(len(runs))
		t.Rows = append(t.Rows, Row{
			Label: v.label,
			Cells: map[string]float64{
				"runs":     float64(len(runs)),
				"avgLen":   avgLen,
				"lenOverM": avgLen / mRecords,
			},
			Order: []string{"runs", "avgLen", "lenOverM"},
		})
	}
	return t, nil
}

// F3DiskStriping sweeps the disk count D: scanning speeds up by ×D in
// parallel steps, and striped merge sort keeps total block I/Os constant
// while parallel steps fall — but its effective merge arity drops from
// M/B to M/(D·B), the log(m)/log(m/D) wasted factor the survey derives.
func F3DiskStriping(n int, disks []int) (*Table, error) {
	t := &Table{
		ID:    "F3",
		Title: "disk striping: Scan steps fall ×D; striped sort pays reduced merge arity",
		Notes: "scanSteps ≈ scanSteps(D=1)/D; sort block I/Os flat, steps fall ~×D",
	}
	for _, d := range disks {
		e := NewEnv(1024, 32, d)
		defer e.Close()
		rs := RandomRecords(11, n)
		f, err := MaterialiseRecords(e, rs)
		if err != nil {
			return nil, err
		}

		// Striped scan with width D.
		e.Vol.Stats().Reset()
		r, err := stream.NewStripedReader(f, e.Pool, d)
		if err != nil {
			return nil, err
		}
		for {
			_, ok, err := r.Next()
			if err != nil {
				r.Close()
				return nil, err
			}
			if !ok {
				break
			}
		}
		r.Close()
		scanReads := float64(e.Vol.Stats().Reads)
		scanSteps := float64(e.Vol.Stats().Steps)

		// Striped merge sort with width D.
		e.Vol.Stats().Reset()
		out, err := extsort.MergeSort(f, e.Pool, record.Record.Less, &extsort.Options{Width: d})
		if err != nil {
			return nil, err
		}
		sortIOs := float64(e.Vol.Stats().Total())
		sortSteps := float64(e.Vol.Stats().Steps)
		out.Release()

		t.Rows = append(t.Rows, Row{
			Label: fmt.Sprintf("D=%d", d),
			Cells: map[string]float64{
				"scanReads": scanReads,
				"scanSteps": scanSteps,
				"sortIOs":   sortIOs,
				"sortSteps": sortSteps,
			},
			Order: []string{"scanReads", "scanSteps", "sortIOs", "sortSteps"},
		})
	}
	return t, nil
}

// ratio returns a/b guarding against division by zero.
func ratio(a, b float64) float64 {
	if b == 0 {
		return math.Inf(1)
	}
	return a / b
}
