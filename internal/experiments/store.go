package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"em/internal/btree"
	"em/internal/pdm"
	"em/internal/store"
)

// F13StoreOnline measures the online updatable store — the buffer-tree
// write front with generational B-tree handover — on the worker engine,
// swept over disk counts with every point taken on both storage backends:
//
//   - buffered write absorption: n random inserts through store.Insert
//     (including the background drains they trigger and a final Drain to
//     quiescence) against the same n keys driven one at a time into a
//     B-tree via Tree.Insert — the front batches ~B operations per buffer
//     block, so both wall clock and counted I/Os drop by the buffer-tree
//     amortisation factor;
//   - serving during handover: point-read throughput while a sealed front
//     is being merge-drained into the next generation, against the same
//     reads on the quiesced store — the drain runs on a private reserved
//     budget and readers keep the old generation until the swap, so QPS
//     must stay within 2x of quiesced.
//
// Like F12, F13 enforces its acceptance gates itself at the D=4 points —
// buffered writes >= 2x faster than per-key B-tree inserts at strictly
// fewer counted I/Os, and in-drain read QPS >= half of quiesced — and
// returns an error when one fails, so cmd/embench exits non-zero and CI
// gates on the sweep.
func F13StoreOnline(n int, disks []int, latency time.Duration) (*Table, error) {
	t := &Table{
		ID:    "F13",
		Title: "online store: buffered writes vs per-key B-tree inserts; read QPS through a generation handover",
		Notes: "gates at D=4: store absorbs n updates >= 2x faster at fewer I/Os; QPS during drain >= 0.5x quiesced",
	}
	for _, d := range disks {
		for _, backend := range []string{"mem", "file"} {
			row, err := storePoint(n, d, latency, backend)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, *row)
			if d != 4 {
				continue
			}
			c := row.Cells
			if c["storeMs"]*2 > c["btreeMs"] {
				return nil, fmt.Errorf("F13 %s gate: store %.1fms not >= 2x faster than per-key inserts %.1fms",
					row.Label, c["storeMs"], c["btreeMs"])
			}
			if c["storeIOs"] >= c["btreeIOs"] {
				return nil, fmt.Errorf("F13 %s gate: store %0.f I/Os not strictly below per-key inserts %0.f",
					row.Label, c["storeIOs"], c["btreeIOs"])
			}
			if 2*c["qpsDrain"] < c["qpsQuiet"] {
				return nil, fmt.Errorf("F13 %s gate: QPS during drain %.0f below half of quiesced %.0f",
					row.Label, c["qpsDrain"], c["qpsQuiet"])
			}
		}
	}
	return t, nil
}

// storePoint runs the online-store workloads for one (disks, backend)
// coordinate, owning its volume — and, on the file backend, its directory —
// for exactly its scope.
func storePoint(n, d int, latency time.Duration, backend string) (*Row, error) {
	cfg := pdm.Config{BlockBytes: 1024, MemBlocks: 256, Disks: d, DiskLatency: latency}
	if backend == "file" {
		dir, err := os.MkdirTemp("", "emF13")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		cfg.Dir = dir
	}
	vol, err := pdm.NewVolume(cfg)
	if err != nil {
		return nil, err
	}
	defer vol.Close()
	pool := pdm.PoolFor(vol)

	keys := rand.New(rand.NewSource(0xF13)).Perm(n)

	// Reference: the same updates one at a time into a plain B-tree, the
	// online index the survey's buffer tree is measured against.
	vol.Stats().Reset()
	start := time.Now()
	tr, err := btree.New(vol, pool, 8)
	if err != nil {
		return nil, err
	}
	for i, k := range keys {
		if _, err := tr.Insert(uint64(k+1), uint64(i)); err != nil {
			return nil, err
		}
	}
	btreeMs := msSince(start)
	bs := vol.Stats().Snapshot()
	btreeIOs := bs.Reads + bs.Writes
	if err := tr.Release(); err != nil {
		return nil, err
	}

	// The store absorbs the same updates through its write front; the
	// clock includes every background drain plus the final one to
	// quiescence, so the comparison is total work, not deferral.
	vol.Stats().Reset()
	start = time.Now()
	st, err := store.Open(vol, pool, store.Config{FrontOps: int64(n / 2)})
	if err != nil {
		return nil, err
	}
	for i, k := range keys {
		if err := st.Insert(uint64(k+1), uint64(i)); err != nil {
			return nil, err
		}
	}
	if err := st.Drain(); err != nil {
		return nil, err
	}
	storeMs := msSince(start)
	ss := vol.Stats().Snapshot()
	storeIOs := ss.Reads + ss.Writes

	// Quiesced point-read throughput over the loaded store.
	const serveReads = 200
	rng := rand.New(rand.NewSource(0x5E12))
	serve := func() (float64, error) {
		start := time.Now()
		for i := 0; i < serveReads; i++ {
			k := uint64(rng.Intn(n) + 1)
			if _, ok, err := st.Get(k); err != nil || !ok {
				return 0, fmt.Errorf("F13 get(%d): ok=%v err=%v", k, ok, err)
			}
		}
		return serveReads / time.Since(start).Seconds(), nil
	}
	qpsQuiet, err := serve()
	if err != nil {
		return nil, err
	}

	// The same reads with a generation handover in flight: buffer a fresh
	// batch of updates, seal it, and serve while the background drain
	// merges it into the next generation.
	for i := 0; i < n/2; i++ {
		if err := st.Insert(uint64(rng.Intn(n)+1), uint64(i)); err != nil {
			return nil, err
		}
	}
	var qpsDrain float64
	inDrain := 0
	if st.StartDrain() {
		start = time.Now()
		for st.Draining() {
			k := uint64(rng.Intn(n) + 1)
			if _, ok, err := st.Get(k); err != nil || !ok {
				return nil, fmt.Errorf("F13 in-drain get(%d): ok=%v err=%v", k, ok, err)
			}
			inDrain++
		}
		qpsDrain = float64(inDrain) / time.Since(start).Seconds()
	}
	if inDrain == 0 {
		// The drain outran the first read; serve quiesced numbers rather
		// than dividing by zero — the gate then compares like with like.
		qpsDrain = qpsQuiet
	}
	if err := st.Drain(); err != nil {
		return nil, err
	}
	if err := st.Close(); err != nil {
		return nil, err
	}

	return &Row{
		Label: fmt.Sprintf("D=%d/%s", d, backend),
		Cells: map[string]float64{
			"btreeMs": btreeMs, "storeMs": storeMs,
			"btreeIOs": float64(btreeIOs), "storeIOs": float64(storeIOs),
			"qpsQuiet": qpsQuiet, "qpsDrain": qpsDrain,
			"drainReads": float64(inDrain), "drains": float64(st.Drains()),
		},
		Order: []string{"btreeMs", "storeMs", "btreeIOs", "storeIOs",
			"qpsQuiet", "qpsDrain", "drainReads", "drains"},
	}, nil
}
