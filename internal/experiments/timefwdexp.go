package experiments

import (
	"fmt"
	"math/rand"

	"em/internal/record"
	"em/internal/stream"
	"em/internal/timefwd"
)

// F8TimeForward compares DAG (circuit) evaluation by time-forward
// processing, O(Sort(E)) I/Os, against per-arc random reads of predecessor
// values, Θ(E) I/Os — the survey's priority-queue application.
func F8TimeForward(vs []int) (*Table, error) {
	t := &Table{
		ID:    "F8",
		Title: "time-forward processing O(Sort(E)) vs per-arc random reads Θ(E)",
		Notes: "time-forward ≪ naive on out-of-memory DAGs; outputs agree",
	}
	sum := func(v int64, inputs []int64) int64 {
		s := v
		for _, x := range inputs {
			s += x
		}
		return s
	}
	for _, v := range vs {
		e := NewEnv(4096, 16, 1)
		defer e.Close()
		rng := rand.New(rand.NewSource(79))
		// Sparse layered DAG: each vertex receives ~4 arcs from earlier ones.
		var pairs []record.Pair
		for w := int64(1); w < int64(v); w++ {
			for d := 0; d < 4 && int64(d) < w; d++ {
				pairs = append(pairs, record.Pair{A: rng.Int63n(w), B: w})
			}
		}
		af, err := stream.FromSlice(e.Vol, e.Pool, record.PairCodec{}, pairs)
		if err != nil {
			return nil, err
		}

		e.Vol.Stats().Reset()
		tf, err := timefwd.Eval(e.Vol, e.Pool, int64(v), af, sum)
		if err != nil {
			return nil, err
		}
		tfIOs := float64(e.Vol.Stats().Total())
		tf.Release()

		e.Vol.Stats().Reset()
		nv, err := timefwd.EvalNaive(e.Vol, e.Pool, int64(v), af, sum)
		if err != nil {
			return nil, err
		}
		naiveIOs := float64(e.Vol.Stats().Total())
		nv.Release()

		t.Rows = append(t.Rows, Row{
			Label: fmt.Sprintf("V=%d", v),
			Cells: map[string]float64{
				"timefwd": tfIOs,
				"naive":   naiveIOs,
				"E":       float64(len(pairs)),
				"speedup": ratio(naiveIOs, tfIOs),
			},
			Order: []string{"timefwd", "naive", "E", "speedup"},
		})
	}
	return t, nil
}
