package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"em/internal/btree"
	"em/internal/pdm"
	"em/internal/pipeline"
	"em/internal/record"
	"em/internal/stream"
)

// F11WriteBehind measures the write side of index construction on the
// worker engine, swept over disk counts. The cache-path bulk load trickles
// its node write-backs out one synchronous block at a time — each write
// busies a single disk while the other D-1 idle — and that serialization is
// recovered two independent ways: write-behind (bulkWBMs) batches the
// leaves D at a time through BatchWriteAsync so every write step uses all
// disks, and the sort→index pipeline (pipeMs vs seqMs, measured on the
// cache-path loader) hides the loader's serialized writes inside the
// concurrently running sort's disk schedule. Combined (pipeWBMs) the build
// sits on the disk-bound floor: total transfers over D disks times the
// service latency, with nothing left to hide.
//
// The counted model never moves: write-behind issues exactly the write
// I/Os of the cache path (bulkWrites vs bulkWBWrites, asserted equal by
// the shape test), and the pipelined build issues exactly the sequential
// build's reads and writes (pinned by the em-level quick-checks). What
// falls is the wall clock, which is this experiment's currency; absolute
// numbers vary with the host, the asserted shape is across D and modes.
func F11WriteBehind(n int, disks []int, latency time.Duration) (*Table, error) {
	t := &Table{
		ID:    "F11",
		Title: "write-behind bulk load and sort→index pipeline vs their synchronous paths across D",
		Notes: "write I/Os identical; D=4 write-behind beats D=1 sync >= 2.5x; D=4 pipeline strictly under sequential",
	}
	for _, d := range disks {
		row, err := writeBehindPoint(n, d, latency)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, *row)
	}
	return t, nil
}

// writeBehindPoint runs the four timed workloads for one disk count, owning
// the volume for exactly its scope.
func writeBehindPoint(n, d int, latency time.Duration) (*Row, error) {
	// The pool grows by exactly SortIndex's reserved loader budget (8 cache
	// frames + 4×D stream frames), so the sort keeps F10's 96 effective
	// frames — and the same fan-out and pass structure — at every point of
	// the D sweep instead of starving at high D.
	cfg := pdm.Config{BlockBytes: 1024, MemBlocks: 96 + 8 + 4*d, Disks: d, DiskLatency: latency}
	vol, err := newVolume(cfg)
	if err != nil {
		return nil, err
	}
	defer vol.Close()
	pool := pdm.PoolFor(vol)

	sorted := make([]record.Record, n)
	for i := range sorted {
		sorted[i] = record.Record{Key: uint64(i + 1), Val: uint64(i)}
	}
	sf, err := stream.FromSlice(vol, pool, record.RecordCodec{}, sorted)
	if err != nil {
		return nil, err
	}
	timeBulk := func(opts *btree.BulkLoadOptions) (float64, uint64, error) {
		vol.Stats().Reset()
		start := time.Now()
		tr, err := btree.BulkLoad(vol, pool, 8, sf, opts)
		if err != nil {
			return 0, 0, err
		}
		if err := tr.Close(); err != nil {
			return 0, 0, err
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		return ms, vol.Stats().Snapshot().Writes, nil
	}
	bulkSyncMs, bulkWrites, err := timeBulk(&btree.BulkLoadOptions{Width: d})
	if err != nil {
		return nil, err
	}
	bulkWBMs, bulkWBWrites, err := timeBulk(&btree.BulkLoadOptions{Width: d, Async: true, WriteBehind: true})
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(0xF11))
	random := make([]record.Record, n)
	for i, k := range rng.Perm(n) {
		random[i] = record.Record{Key: uint64(k + 1), Val: uint64(i)}
	}
	rf, err := stream.FromSlice(vol, pool, record.RecordCodec{}, random)
	if err != nil {
		return nil, err
	}
	timeIndex := func(pipelined, writeBehind bool) (float64, error) {
		start := time.Now()
		tr, err := pipeline.SortIndex(rf, pool, &pipeline.Options{
			Width: d, Async: true, WriteBehind: writeBehind, Pipeline: pipelined,
		})
		if err != nil {
			return 0, err
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		return ms, tr.Close()
	}
	seqMs, err := timeIndex(false, false)
	if err != nil {
		return nil, err
	}
	pipeMs, err := timeIndex(true, false)
	if err != nil {
		return nil, err
	}
	pipeWBMs, err := timeIndex(true, true)
	if err != nil {
		return nil, err
	}

	return &Row{
		Label: fmt.Sprintf("D=%d", d),
		Cells: map[string]float64{
			"bulkSyncMs":   bulkSyncMs,
			"bulkWBMs":     bulkWBMs,
			"bulkWrites":   float64(bulkWrites),
			"bulkWBWrites": float64(bulkWBWrites),
			"seqMs":        seqMs,
			"pipeMs":       pipeMs,
			"pipeWBMs":     pipeWBMs,
		},
		Order: []string{"bulkSyncMs", "bulkWBMs", "bulkWrites", "bulkWBWrites", "seqMs", "pipeMs", "pipeWBMs"},
	}, nil
}
