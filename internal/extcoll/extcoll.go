// Package extcoll implements the survey's elementary external-memory
// collections: a stack and a FIFO queue whose operations cost amortised
// O(1/B) I/Os — the warm-up results the survey derives before the batched
// structures.
//
// The stack keeps the top of the stack in a two-block in-memory buffer:
// pushes and pops run in memory, and only when the buffer over- or
// under-flows does one block move to or from disk. Both directions transfer
// a whole block of B records, so any sequence of N operations costs at most
// O(N/B) block transfers. The queue uses the same idea with separate head
// and tail buffers.
package extcoll

import (
	"errors"
	"fmt"

	"em/internal/pdm"
	"em/internal/record"
)

// ErrClosed reports use of a closed collection.
var ErrClosed = errors.New("extcoll: closed")

// Stack is an external-memory LIFO of fixed-size records.
type Stack[T any] struct {
	vol    *pdm.Volume
	pool   *pdm.Pool
	codec  record.Codec[T]
	per    int // records per block
	buf    []T // in-memory top, at most 2·per records
	blocks []int64
	n      int64
	closed bool
}

// NewStack creates an empty stack on vol. It holds two frames' worth of
// records in memory (charged conceptually against the caller's budget; the
// frames are materialised only during spill I/O so the pool stays free for
// the caller between operations).
func NewStack[T any](vol *pdm.Volume, pool *pdm.Pool, codec record.Codec[T]) (*Stack[T], error) {
	per := vol.BlockBytes() / codec.Size()
	if per < 1 {
		return nil, fmt.Errorf("extcoll: record of %d bytes exceeds the %d-byte block", codec.Size(), vol.BlockBytes())
	}
	return &Stack[T]{vol: vol, pool: pool, codec: codec, per: per}, nil
}

// Len returns the number of records on the stack.
func (s *Stack[T]) Len() int64 { return s.n }

// Push adds v to the top of the stack: amortised O(1/B) I/Os. When the
// two-block buffer fills, the older block spills to disk.
func (s *Stack[T]) Push(v T) error {
	if s.closed {
		return ErrClosed
	}
	if len(s.buf) == 2*s.per {
		if err := s.spill(); err != nil {
			return err
		}
	}
	s.buf = append(s.buf, v)
	s.n++
	return nil
}

// Pop removes and returns the top record. ok is false when the stack is
// empty.
func (s *Stack[T]) Pop() (v T, ok bool, err error) {
	if s.closed {
		return v, false, ErrClosed
	}
	if s.n == 0 {
		return v, false, nil
	}
	if len(s.buf) == 0 {
		if err := s.refill(); err != nil {
			return v, false, err
		}
	}
	v = s.buf[len(s.buf)-1]
	s.buf = s.buf[:len(s.buf)-1]
	s.n--
	return v, true, nil
}

// Peek returns the top record without removing it.
func (s *Stack[T]) Peek() (v T, ok bool, err error) {
	v, ok, err = s.Pop()
	if err != nil || !ok {
		return v, ok, err
	}
	s.buf = s.buf[:len(s.buf)+1]
	s.n++
	return v, true, nil
}

// spill writes the oldest buffered block to disk.
func (s *Stack[T]) spill() error {
	fr, err := s.pool.Alloc()
	if err != nil {
		return err
	}
	defer fr.Release()
	for i := 0; i < s.per; i++ {
		s.codec.Encode(fr.Buf[i*s.codec.Size():], s.buf[i])
	}
	addr := s.vol.Alloc(1)
	if err := s.vol.WriteBlock(addr, fr.Buf); err != nil {
		return err
	}
	s.blocks = append(s.blocks, addr)
	copy(s.buf, s.buf[s.per:])
	s.buf = s.buf[:len(s.buf)-s.per]
	return nil
}

// refill loads the most recently spilled block back into the buffer.
func (s *Stack[T]) refill() error {
	if len(s.blocks) == 0 {
		return fmt.Errorf("extcoll: stack accounting corrupt (n=%d with no blocks)", s.n)
	}
	fr, err := s.pool.Alloc()
	if err != nil {
		return err
	}
	defer fr.Release()
	addr := s.blocks[len(s.blocks)-1]
	s.blocks = s.blocks[:len(s.blocks)-1]
	if err := s.vol.ReadBlock(addr, fr.Buf); err != nil {
		return err
	}
	s.vol.Free(addr)
	for i := 0; i < s.per; i++ {
		s.buf = append(s.buf, s.codec.Decode(fr.Buf[i*s.codec.Size():]))
	}
	return nil
}

// Close releases the stack's disk blocks.
func (s *Stack[T]) Close() {
	if s.closed {
		return
	}
	s.closed = true
	for _, b := range s.blocks {
		s.vol.Free(b)
	}
	s.blocks = nil
	s.buf = nil
}

// Queue is an external-memory FIFO of fixed-size records, with one block of
// buffering at the head and one at the tail: amortised O(1/B) I/Os per
// operation.
type Queue[T any] struct {
	vol    *pdm.Volume
	pool   *pdm.Pool
	codec  record.Codec[T]
	per    int
	head   []T     // records ready to pop, oldest first
	tail   []T     // records recently pushed, oldest first
	blocks []int64 // full blocks between head and tail, oldest first
	n      int64
	closed bool
}

// NewQueue creates an empty queue on vol.
func NewQueue[T any](vol *pdm.Volume, pool *pdm.Pool, codec record.Codec[T]) (*Queue[T], error) {
	per := vol.BlockBytes() / codec.Size()
	if per < 1 {
		return nil, fmt.Errorf("extcoll: record of %d bytes exceeds the %d-byte block", codec.Size(), vol.BlockBytes())
	}
	return &Queue[T]{vol: vol, pool: pool, codec: codec, per: per}, nil
}

// Len returns the number of records queued.
func (q *Queue[T]) Len() int64 { return q.n }

// Push appends v to the back of the queue.
func (q *Queue[T]) Push(v T) error {
	if q.closed {
		return ErrClosed
	}
	q.tail = append(q.tail, v)
	q.n++
	if len(q.tail) == q.per {
		return q.flushTail()
	}
	return nil
}

// Pop removes and returns the front record. ok is false when empty.
func (q *Queue[T]) Pop() (v T, ok bool, err error) {
	if q.closed {
		return v, false, ErrClosed
	}
	if q.n == 0 {
		return v, false, nil
	}
	if len(q.head) == 0 {
		if len(q.blocks) > 0 {
			if err := q.loadHead(); err != nil {
				return v, false, err
			}
		} else {
			// Everything lives in the tail buffer.
			q.head, q.tail = q.tail, nil
		}
	}
	v = q.head[0]
	q.head = q.head[1:]
	q.n--
	return v, true, nil
}

// flushTail writes the full tail buffer as one block.
func (q *Queue[T]) flushTail() error {
	fr, err := q.pool.Alloc()
	if err != nil {
		return err
	}
	defer fr.Release()
	for i, v := range q.tail {
		q.codec.Encode(fr.Buf[i*q.codec.Size():], v)
	}
	addr := q.vol.Alloc(1)
	if err := q.vol.WriteBlock(addr, fr.Buf); err != nil {
		return err
	}
	q.blocks = append(q.blocks, addr)
	q.tail = q.tail[:0]
	return nil
}

// loadHead reads the oldest full block into the head buffer.
func (q *Queue[T]) loadHead() error {
	fr, err := q.pool.Alloc()
	if err != nil {
		return err
	}
	defer fr.Release()
	addr := q.blocks[0]
	q.blocks = q.blocks[1:]
	if err := q.vol.ReadBlock(addr, fr.Buf); err != nil {
		return err
	}
	q.vol.Free(addr)
	q.head = q.head[:0]
	for i := 0; i < q.per; i++ {
		q.head = append(q.head, q.codec.Decode(fr.Buf[i*q.codec.Size():]))
	}
	return nil
}

// Close releases the queue's disk blocks.
func (q *Queue[T]) Close() {
	if q.closed {
		return
	}
	q.closed = true
	for _, b := range q.blocks {
		q.vol.Free(b)
	}
	q.blocks = nil
	q.head, q.tail = nil, nil
}
