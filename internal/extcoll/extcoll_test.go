package extcoll

import (
	"math/rand"
	"testing"
	"testing/quick"

	"em/internal/pdm"
	"em/internal/record"
)

func newEnv(t testing.TB) (*pdm.Volume, *pdm.Pool) {
	t.Helper()
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 128, MemBlocks: 8, Disks: 1})
	return vol, pdm.PoolFor(vol)
}

func TestStackLIFO(t *testing.T) {
	vol, pool := newEnv(t)
	s, err := NewStack(vol, pool, record.U64Codec{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	for i := uint64(0); i < n; i++ {
		if err := s.Push(i); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != n {
		t.Fatalf("len = %d", s.Len())
	}
	for i := uint64(n); i > 0; i-- {
		v, ok, err := s.Pop()
		if err != nil || !ok {
			t.Fatalf("pop: ok=%v err=%v", ok, err)
		}
		if v != i-1 {
			t.Fatalf("pop = %d, want %d", v, i-1)
		}
	}
	if _, ok, _ := s.Pop(); ok {
		t.Fatal("pop on empty returned a value")
	}
	if pool.InUse() != 0 {
		t.Fatalf("leaked %d frames", pool.InUse())
	}
}

func TestStackPeek(t *testing.T) {
	vol, pool := newEnv(t)
	s, _ := NewStack(vol, pool, record.U64Codec{})
	if _, ok, _ := s.Peek(); ok {
		t.Fatal("peek on empty returned a value")
	}
	s.Push(7)
	v, ok, err := s.Peek()
	if err != nil || !ok || v != 7 {
		t.Fatalf("peek = %d,%v,%v", v, ok, err)
	}
	if s.Len() != 1 {
		t.Fatalf("peek consumed: len=%d", s.Len())
	}
}

func TestStackMixedAgainstReference(t *testing.T) {
	vol, pool := newEnv(t)
	s, _ := NewStack(vol, pool, record.U64Codec{})
	rng := rand.New(rand.NewSource(3))
	var ref []uint64
	for op := 0; op < 20000; op++ {
		if rng.Intn(3) > 0 || len(ref) == 0 { // bias toward pushes
			v := rng.Uint64()
			ref = append(ref, v)
			if err := s.Push(v); err != nil {
				t.Fatal(err)
			}
		} else {
			want := ref[len(ref)-1]
			ref = ref[:len(ref)-1]
			got, ok, err := s.Pop()
			if err != nil || !ok || got != want {
				t.Fatalf("op %d: pop = %d,%v,%v want %d", op, got, ok, err, want)
			}
		}
		if s.Len() != int64(len(ref)) {
			t.Fatalf("op %d: len %d != ref %d", op, s.Len(), len(ref))
		}
	}
}

func TestStackAmortizedIO(t *testing.T) {
	// N pushes then N pops must cost O(N/B) I/Os: each record crosses the
	// disk boundary at most once in each direction.
	vol, pool := newEnv(t)
	s, _ := NewStack(vol, pool, record.U64Codec{})
	const n = 64_000
	vol.Stats().Reset()
	for i := uint64(0); i < n; i++ {
		if err := s.Push(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if _, _, err := s.Pop(); err != nil {
			t.Fatal(err)
		}
	}
	per := uint64(128 / 8)
	bound := 2 * 2 * n / per // one write + one read per block, slack 2x
	if got := vol.Stats().Total(); got > bound {
		t.Fatalf("stack used %d I/Os for %d ops, amortised bound %d", got, 2*n, bound)
	}
}

func TestQueueFIFO(t *testing.T) {
	vol, pool := newEnv(t)
	q, err := NewQueue(vol, pool, record.U64Codec{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	for i := uint64(0); i < n; i++ {
		if err := q.Push(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < n; i++ {
		v, ok, err := q.Pop()
		if err != nil || !ok {
			t.Fatalf("pop: ok=%v err=%v", ok, err)
		}
		if v != i {
			t.Fatalf("pop = %d, want %d", v, i)
		}
	}
	if _, ok, _ := q.Pop(); ok {
		t.Fatal("pop on empty returned a value")
	}
}

func TestQueueInterleavedAgainstReference(t *testing.T) {
	vol, pool := newEnv(t)
	q, _ := NewQueue(vol, pool, record.U64Codec{})
	rng := rand.New(rand.NewSource(5))
	var ref []uint64
	for op := 0; op < 20000; op++ {
		if rng.Intn(3) > 0 || len(ref) == 0 {
			v := rng.Uint64()
			ref = append(ref, v)
			if err := q.Push(v); err != nil {
				t.Fatal(err)
			}
		} else {
			want := ref[0]
			ref = ref[1:]
			got, ok, err := q.Pop()
			if err != nil || !ok || got != want {
				t.Fatalf("op %d: pop = %d,%v,%v want %d", op, got, ok, err, want)
			}
		}
		if q.Len() != int64(len(ref)) {
			t.Fatalf("op %d: len %d != ref %d", op, q.Len(), len(ref))
		}
	}
}

func TestQueueAmortizedIO(t *testing.T) {
	vol, pool := newEnv(t)
	q, _ := NewQueue(vol, pool, record.U64Codec{})
	const n = 64_000
	vol.Stats().Reset()
	for i := uint64(0); i < n; i++ {
		if err := q.Push(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if _, _, err := q.Pop(); err != nil {
			t.Fatal(err)
		}
	}
	per := uint64(128 / 8)
	bound := 2 * 2 * n / per
	if got := vol.Stats().Total(); got > bound {
		t.Fatalf("queue used %d I/Os for %d ops, amortised bound %d", got, 2*n, bound)
	}
}

func TestClosedCollectionsReject(t *testing.T) {
	vol, pool := newEnv(t)
	s, _ := NewStack(vol, pool, record.U64Codec{})
	s.Push(1)
	s.Close()
	s.Close() // idempotent
	if err := s.Push(2); err == nil {
		t.Error("push on closed stack accepted")
	}
	if _, _, err := s.Pop(); err == nil {
		t.Error("pop on closed stack accepted")
	}
	q, _ := NewQueue(vol, pool, record.U64Codec{})
	q.Push(1)
	q.Close()
	if err := q.Push(2); err == nil {
		t.Error("push on closed queue accepted")
	}
	if _, _, err := q.Pop(); err == nil {
		t.Error("pop on closed queue accepted")
	}
}

func TestRecordTooLarge(t *testing.T) {
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 8, MemBlocks: 4, Disks: 1})
	pool := pdm.PoolFor(vol)
	if _, err := NewStack(vol, pool, record.RecordCodec{}); err == nil {
		t.Error("16-byte record in 8-byte block accepted by stack")
	}
	if _, err := NewQueue(vol, pool, record.RecordCodec{}); err == nil {
		t.Error("16-byte record in 8-byte block accepted by queue")
	}
}

// Property: any boolean op-sequence drives the stack and a slice reference
// to identical observable states.
func TestQuickStackMatchesSlice(t *testing.T) {
	f := func(ops []bool, vals []uint64) bool {
		vol := pdm.MustVolume(pdm.Config{BlockBytes: 64, MemBlocks: 4, Disks: 1})
		pool := pdm.PoolFor(vol)
		s, err := NewStack(vol, pool, record.U64Codec{})
		if err != nil {
			return false
		}
		var ref []uint64
		vi := 0
		for _, push := range ops {
			if push || len(ref) == 0 {
				v := uint64(vi)
				if vi < len(vals) {
					v = vals[vi]
				}
				vi++
				ref = append(ref, v)
				if err := s.Push(v); err != nil {
					return false
				}
			} else {
				want := ref[len(ref)-1]
				ref = ref[:len(ref)-1]
				got, ok, err := s.Pop()
				if err != nil || !ok || got != want {
					return false
				}
			}
		}
		return s.Len() == int64(len(ref))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the queue preserves order for arbitrary push bursts.
func TestQuickQueuePreservesOrder(t *testing.T) {
	f := func(vals []uint64) bool {
		vol := pdm.MustVolume(pdm.Config{BlockBytes: 64, MemBlocks: 4, Disks: 1})
		pool := pdm.PoolFor(vol)
		q, err := NewQueue(vol, pool, record.U64Codec{})
		if err != nil {
			return false
		}
		for _, v := range vals {
			if err := q.Push(v); err != nil {
				return false
			}
		}
		for _, want := range vals {
			got, ok, err := q.Pop()
			if err != nil || !ok || got != want {
				return false
			}
		}
		_, ok, _ := q.Pop()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
