package extsort

import (
	"testing"
	"testing/quick"
	"time"

	"em/internal/pdm"
	"em/internal/record"
	"em/internal/stream"
)

// sortBoth sorts vs with and without async I/O at the same forced fan-in and
// returns the two outputs plus the two stats snapshots.
func sortBoth(t *testing.T, vs []record.Record, mode RunMode, width, fanIn int, latency time.Duration) (syncOut, asyncOut []record.Record, syncStats, asyncStats pdm.Stats) {
	t.Helper()
	run := func(async bool) ([]record.Record, pdm.Stats) {
		cfg := pdm.Config{BlockBytes: 64, MemBlocks: 24, Disks: 4, DiskLatency: latency}
		vol := pdm.MustVolume(cfg)
		defer vol.Close()
		pool := pdm.PoolFor(vol)
		f, err := stream.FromSlice(vol, pool, record.RecordCodec{}, vs)
		if err != nil {
			t.Fatal(err)
		}
		vol.Stats().Reset()
		opts := &Options{Width: width, RunMode: mode, ForceFanIn: fanIn, Async: async}
		out, err := MergeSort(f, pool, record.Record.Less, opts)
		if err != nil {
			t.Fatal(err)
		}
		st := vol.Stats().Snapshot()
		got, err := stream.ToSlice(out, pool)
		if err != nil {
			t.Fatal(err)
		}
		if pool.InUse() != 0 {
			t.Fatalf("async=%v: leaked %d frames", async, pool.InUse())
		}
		return got, st
	}
	syncOut, syncStats = run(false)
	asyncOut, asyncStats = run(true)
	return
}

// TestAsyncMergeSortMatchesSync asserts the forecast-driven async sort
// produces byte-identical output to the synchronous path across run modes
// and widths. (Whole-sort I/O counts may differ, because double-buffered
// streams leave fewer frames for the run buffer and thus form more runs;
// TestAsyncMergeRunsIdenticalStats pins counts at equal run structure.)
func TestAsyncMergeSortMatchesSync(t *testing.T) {
	for _, mode := range []RunMode{LoadSort, ReplacementSelection} {
		for _, width := range []int{1, 2} {
			for _, n := range []int{0, 1, 37, 256, 1000} {
				vs := make([]record.Record, n)
				for i := range vs {
					vs[i] = record.Record{Key: uint64((i * 2654435761) % 65536), Val: uint64(i)}
				}
				sOut, aOut, _, _ := sortBoth(t, vs, mode, width, 3, 0)
				if len(sOut) != len(aOut) || len(sOut) != n {
					t.Fatalf("%v w=%d n=%d: lengths sync=%d async=%d", mode, width, n, len(sOut), len(aOut))
				}
				for i := range sOut {
					if sOut[i] != aOut[i] {
						t.Fatalf("%v w=%d n=%d: record %d differs: %v vs %v", mode, width, n, i, sOut[i], aOut[i])
					}
				}
			}
		}
	}
}

// TestAsyncMergeRunsIdenticalStats forms the same runs synchronously on two
// identical volumes, merges one set synchronously and one asynchronously at
// the same fan-in, and asserts the outputs and every merge-phase counter are
// identical — the async engine must change overlap, never the counted model.
func TestAsyncMergeRunsIdenticalStats(t *testing.T) {
	for _, width := range []int{1, 2} {
		for _, n := range []int{64, 256, 1000} {
			vs := make([]record.Record, n)
			for i := range vs {
				vs[i] = record.Record{Key: uint64((i * 40503) % 4096), Val: uint64(i)}
			}
			run := func(async bool) ([]record.Record, pdm.Stats) {
				vol := pdm.MustVolume(pdm.Config{BlockBytes: 64, MemBlocks: 24, Disks: 4})
				pool := pdm.PoolFor(vol)
				f, err := stream.FromSlice(vol, pool, record.RecordCodec{}, vs)
				if err != nil {
					t.Fatal(err)
				}
				// Run formation is always synchronous here so both sides
				// merge byte-identical run sets.
				formOpts := &Options{Width: width, ForceFanIn: 3}
				runs, err := FormRuns(f, pool, record.Record.Less, formOpts)
				if err != nil {
					t.Fatal(err)
				}
				vol.Stats().Reset()
				mergeOpts := &Options{Width: width, ForceFanIn: 3, Async: async}
				out, err := MergeRuns(runs, pool, record.Record.Less, mergeOpts)
				if err != nil {
					t.Fatal(err)
				}
				st := vol.Stats().Snapshot()
				got, err := stream.ToSlice(out, pool)
				if err != nil {
					t.Fatal(err)
				}
				return got, st
			}
			sOut, sSt := run(false)
			aOut, aSt := run(true)
			if len(sOut) != len(aOut) {
				t.Fatalf("w=%d n=%d: lengths %d vs %d", width, n, len(sOut), len(aOut))
			}
			for i := range sOut {
				if sOut[i] != aOut[i] {
					t.Fatalf("w=%d n=%d: record %d differs", width, n, i)
				}
			}
			if sSt.Reads != aSt.Reads || sSt.Writes != aSt.Writes || sSt.Steps != aSt.Steps {
				t.Fatalf("w=%d n=%d: merge stats differ: sync %+v async %+v", width, n, sSt, aSt)
			}
		}
	}
}

// TestAsyncMergeSortQuick is the quick-check property over arbitrary inputs,
// run against a worker-engine volume so the async path genuinely overlaps
// I/O.
func TestAsyncMergeSortQuick(t *testing.T) {
	f := func(keys []uint16) bool {
		if len(keys) > 800 {
			keys = keys[:800]
		}
		vs := make([]record.Record, len(keys))
		for i, k := range keys {
			vs[i] = record.Record{Key: uint64(k), Val: uint64(i)}
		}
		sOut, aOut, _, _ := sortBoth(t, vs, LoadSort, 2, 4, 2*time.Microsecond)
		if len(sOut) != len(aOut) {
			return false
		}
		for i := range sOut {
			if sOut[i] != aOut[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncHalvesFanIn documents the memory trade: double-buffered streams
// cost twice the frames, so the supported fan-in halves.
func TestAsyncHalvesFanIn(t *testing.T) {
	pool := pdm.NewPool(64, 20)
	syncOpts := &Options{Width: 2}
	asyncOpts := &Options{Width: 2, Async: true}
	if got, want := maxFanIn(pool, syncOpts), 9; got != want {
		t.Fatalf("sync fan-in = %d, want %d", got, want)
	}
	if got, want := maxFanIn(pool, asyncOpts), 4; got != want {
		t.Fatalf("async fan-in = %d, want %d", got, want)
	}
}

// TestMinHeapMatchesContainerHeapSemantics pins the typed heap to the
// container/heap element order for duplicate keys, protecting merge
// determinism across the boxing removal.
func TestMinHeapMatchesContainerHeapSemantics(t *testing.T) {
	h := &minHeap[int]{less: func(a, b int) bool { return a < b }}
	h.items = []int{5, 3, 8, 1, 9, 2, 7}
	h.Init()
	h.Push(4)
	h.Push(0)
	var got []int
	for h.Len() > 0 {
		got = append(got, h.Pop())
	}
	want := []int{0, 1, 2, 3, 4, 5, 7, 8, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop sequence %v, want %v", got, want)
		}
	}
	// ReplaceTop behaves like heap.Fix at the root.
	h.items = []int{2, 5, 3}
	h.Init()
	h.ReplaceTop(7)
	if h.Top() != 3 {
		t.Fatalf("top after ReplaceTop = %d, want 3", h.Top())
	}
}
