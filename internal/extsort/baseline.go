package extsort

import (
	"em/internal/btree"
	"em/internal/pdm"
	"em/internal/record"
	"em/internal/stream"
)

// SortViaBTree is the survey's strawman: sort by inserting every record into
// a B-tree and then scanning the leaves. It costs Θ(N·log_B N) I/Os — worse
// than Sort(N) by roughly a factor of B/log(M/B), the gap experiment T2
// measures. Records must have distinct keys (values disambiguate ties by
// packing, so callers should pre-mix duplicates if needed).
//
// cacheFrames bounds the B-tree buffer manager; the remaining pool frames
// serve the input and output streams.
func SortViaBTree(f *stream.File[record.Record], pool *pdm.Pool, cacheFrames int) (*stream.File[record.Record], error) {
	t, err := btree.New(f.Vol(), pool, cacheFrames)
	if err != nil {
		return nil, err
	}
	err = stream.ForEach(f, pool, func(r record.Record) error {
		_, err := t.Insert(r.Key, r.Val)
		return err
	})
	if err != nil {
		return nil, err
	}
	out := stream.NewFile[record.Record](f.Vol(), f.Codec())
	w, err := stream.NewWriter(out, pool)
	if err != nil {
		return nil, err
	}
	err = t.Range(0, ^uint64(0), func(k, v uint64) error {
		return w.Append(record.Record{Key: k, Val: v})
	})
	if err != nil {
		w.Close()
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	if err := t.Close(); err != nil {
		return nil, err
	}
	return out, nil
}
