package extsort

import (
	"testing"

	"em/internal/pdm"
	"em/internal/record"
	"em/internal/stream"
)

func distinctRecs(n int) []record.Record {
	// Distinct keys in scrambled order (multiplicative hash of the index).
	out := make([]record.Record, n)
	for i := range out {
		out[i] = record.Record{Key: uint64(i) * 2654435761 % 1000003, Val: uint64(i)}
	}
	return out
}

func TestSortViaBTreeCorrect(t *testing.T) {
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 128, MemBlocks: 32, Disks: 1})
	pool := pdm.PoolFor(vol)
	in := distinctRecs(700)
	f, err := stream.FromSlice(vol, pool, record.RecordCodec{}, in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := SortViaBTree(f, pool, 8)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := IsSorted(out, pool, recLess)
	if err != nil || !ok {
		t.Fatalf("baseline output unsorted (%v)", err)
	}
	if out.Len() != f.Len() {
		t.Fatalf("lost records: %d of %d", out.Len(), f.Len())
	}
	if pool.InUse() != 0 {
		t.Fatalf("leaked %d frames", pool.InUse())
	}
}

func TestBTreeSortLosesToMergeSort(t *testing.T) {
	// The survey's headline comparison: Θ(N·log_B N) insertion sorting vs
	// Θ((N/B)·log_m(N/B)) merge sorting.
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 256, MemBlocks: 32, Disks: 1})
	pool := pdm.PoolFor(vol)
	in := distinctRecs(4000)
	f, err := stream.FromSlice(vol, pool, record.RecordCodec{}, in)
	if err != nil {
		t.Fatal(err)
	}
	vol.Stats().Reset()
	if _, err := MergeSort(f, pool, recLess, nil); err != nil {
		t.Fatal(err)
	}
	mergeIO := vol.Stats().Total()
	vol.Stats().Reset()
	if _, err := SortViaBTree(f, pool, 8); err != nil {
		t.Fatal(err)
	}
	btreeIO := vol.Stats().Total()
	if btreeIO < 4*mergeIO {
		t.Fatalf("B-tree sort (%d I/Os) should lose badly to merge sort (%d I/Os)", btreeIO, mergeIO)
	}
}
