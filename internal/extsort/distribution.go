package extsort

import (
	"fmt"
	"math/rand"
	"sort"

	"em/internal/pdm"
	"em/internal/stream"
)

// DistributionSort sorts f by less into a new file using the survey's
// distribution (bucket) sort: sample splitters, partition the input into
// Θ(M/B) buckets in one pass, recurse on each bucket until it fits in
// memory, then load-sort it. Like merge sort it performs Θ(n·log_m n) I/Os,
// but passes data top-down through splitters instead of bottom-up through
// merges.
func DistributionSort[T any](f *stream.File[T], pool *pdm.Pool, less func(a, b T) bool, opts *Options) (*stream.File[T], error) {
	w := opts.width()
	out := stream.NewFile[T](f.Vol(), f.Codec())
	ow, err := stream.NewStripedWriter(out, pool, w)
	if err != nil {
		return nil, err
	}
	d := &distSorter[T]{pool: pool, less: less, width: w, opts: opts, rng: rand.New(rand.NewSource(0x5EED))}
	if err := d.sortInto(f, ow, false); err != nil {
		ow.Close()
		return nil, err
	}
	if err := ow.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

type distSorter[T any] struct {
	pool  *pdm.Pool
	less  func(a, b T) bool
	width int
	opts  *Options
	rng   *rand.Rand
}

// memRecords returns how many records fit in the frames left after reserving
// reader and writer buffers.
func (d *distSorter[T]) memRecords(f *stream.File[T]) int {
	frames := d.pool.Free() - 2*d.width
	if frames < 1 {
		frames = 1
	}
	return frames * f.PerBlock()
}

// fanOut returns the number of buckets per level: one writer frame per
// bucket plus a reader and the (already open) output writer.
func (d *distSorter[T]) fanOut() int {
	fo := d.pool.Free() - 2*d.width
	if d.opts != nil && d.opts.ForceFanIn > 0 && d.opts.ForceFanIn < fo {
		fo = d.opts.ForceFanIn
	}
	return fo
}

// sortInto writes the sorted contents of f to ow. If owned, f is released
// once consumed.
func (d *distSorter[T]) sortInto(f *stream.File[T], ow *stream.Writer[T], owned bool) error {
	defer func() {
		if owned {
			f.Release()
		}
	}()
	if f.Len() == 0 {
		return nil
	}
	if f.Len() <= int64(d.memRecords(f)) {
		return d.baseCase(f, ow)
	}
	fo := d.fanOut()
	if fo < 2 {
		return fmt.Errorf("%w: fan-out %d", ErrEmptyPool, fo)
	}
	splitters, err := d.sampleSplitters(f, fo-1)
	if err != nil {
		return err
	}
	buckets, err := d.partition(f, splitters)
	if err != nil {
		return err
	}
	for _, b := range buckets {
		// A bucket equal to the whole input (all-equal keys defeat the
		// splitters) must fall back to the base case to guarantee progress.
		if b.Len() == f.Len() && b.Len() > int64(d.memRecords(f)) {
			if err := d.fallbackMerge(b, ow); err != nil {
				return err
			}
			continue
		}
		if err := d.sortInto(b, ow, true); err != nil {
			return err
		}
	}
	return nil
}

// baseCase load-sorts a memory-sized file into ow.
func (d *distSorter[T]) baseCase(f *stream.File[T], ow *stream.Writer[T]) error {
	buf := make([]T, 0, f.Len())
	if err := stream.ForEach(f, d.pool, func(v T) error {
		buf = append(buf, v)
		return nil
	}); err != nil {
		return err
	}
	sort.SliceStable(buf, func(i, j int) bool { return d.less(buf[i], buf[j]) })
	for _, v := range buf {
		if err := ow.Append(v); err != nil {
			return err
		}
	}
	return nil
}

// fallbackMerge handles pathological all-equal buckets with a merge sort,
// whose progress does not depend on key diversity. It writes sorted output
// to ow and releases b.
func (d *distSorter[T]) fallbackMerge(b *stream.File[T], ow *stream.Writer[T]) error {
	sorted, err := MergeSort(b, d.pool, d.less, d.opts)
	if err != nil {
		return err
	}
	b.Release()
	err = stream.ForEach(sorted, d.pool, func(v T) error { return ow.Append(v) })
	sorted.Release()
	return err
}

// sampleSplitters reservoir-samples the input and returns k approximate
// quantile splitters. Costs one scan — asymptotically absorbed by the
// partition pass that follows (the survey notes an O(n) sampling term).
func (d *distSorter[T]) sampleSplitters(f *stream.File[T], k int) ([]T, error) {
	sampleSize := 8 * (k + 1)
	sample := make([]T, 0, sampleSize)
	seen := 0
	err := stream.ForEach(f, d.pool, func(v T) error {
		seen++
		if len(sample) < sampleSize {
			sample = append(sample, v)
		} else if j := d.rng.Intn(seen); j < sampleSize {
			sample[j] = v
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.SliceStable(sample, func(i, j int) bool { return d.less(sample[i], sample[j]) })
	splitters := make([]T, 0, k)
	for i := 1; i <= k; i++ {
		splitters = append(splitters, sample[i*len(sample)/(k+1)])
	}
	return splitters, nil
}

// partition splits f into len(splitters)+1 bucket files in one pass. Bucket
// i receives records v with splitters[i-1] <= v < splitters[i] (boundary
// records with equal keys go to the leftmost eligible bucket).
func (d *distSorter[T]) partition(f *stream.File[T], splitters []T) ([]*stream.File[T], error) {
	nb := len(splitters) + 1
	buckets := make([]*stream.File[T], nb)
	writers := make([]*stream.Writer[T], nb)
	closeAll := func() {
		for _, w := range writers {
			if w != nil {
				w.Close()
			}
		}
	}
	for i := range buckets {
		buckets[i] = stream.NewFile[T](f.Vol(), f.Codec())
		w, err := stream.NewWriter(buckets[i], d.pool)
		if err != nil {
			closeAll()
			return nil, err
		}
		writers[i] = w
	}
	err := stream.ForEach(f, d.pool, func(v T) error {
		// Binary search for the first splitter greater than v.
		i := sort.Search(len(splitters), func(i int) bool { return d.less(v, splitters[i]) })
		return writers[i].Append(v)
	})
	if err != nil {
		closeAll()
		return nil, err
	}
	for _, w := range writers {
		if err := w.Close(); err != nil {
			return nil, err
		}
	}
	return buckets, nil
}
