package extsort

import (
	"fmt"
	"math/rand"
	"sort"

	"em/internal/pdm"
	"em/internal/stream"
)

// DistributionSort sorts f by less into a new file using the survey's
// distribution (bucket) sort: sample splitters, partition the input into
// Θ(M/B) buckets in one pass, recurse on each bucket until it fits in
// memory, then load-sort it. Like merge sort it performs Θ(n·log_m n) I/Os,
// but passes data top-down through splitters instead of bottom-up through
// merges.
//
// The same Options drive it as MergeSort: Width stripes every reader and
// bucket writer over the disks, and Async switches them to forecasting
// read-ahead and write-behind (a partitioning pass is consumed strictly in
// order, so the forecast block is the next sequential one, exactly as for a
// sorted run). Asynchronous streams hold 2×Width frames, so the fan-out
// halves — the distribution-side mirror of the merge fan-in trade. At equal
// fan-out the counted I/Os are identical to the synchronous path; only
// wall-clock overlap changes.
func DistributionSort[T any](f *stream.File[T], pool *pdm.Pool, less func(a, b T) bool, opts *Options) (*stream.File[T], error) {
	return DistributionSortNotify(f, pool, less, opts, nil)
}

// DistributionSortNotify is DistributionSort with a streaming emit mode:
// notify observes the final output writer's flushes, learning — strictly in
// key order, as the recursion finishes buckets smallest key range first —
// which block groups of the sorted output are durable while later buckets
// are still being split and sorted. Feeding a stream.TailPipe's Notify here
// is what lets a consumer (the B-tree bulk loader, via em.SortIndex) read
// sorted output concurrently with the sort, at counted I/Os identical to
// sorting to completion first: the notifications add no transfers, and the
// consumer's reads are the ones it would have issued afterwards anyway.
// A notify error aborts the sort through its normal error paths (buckets
// released, pool restored); a nil notify is exactly DistributionSort.
//
// Error cleanup differs between the two in one deliberate way: block
// groups already announced through notify may still be in a concurrent
// consumer's hands, so with a non-nil notify a failed sort returns the
// partial output file alongside the error instead of releasing it —
// freeing those blocks here would let them be reallocated and overwritten
// under a consumer mid-read. The caller must Release the returned file
// once the consumer has detached. With a nil notify (and on the
// DistributionSort path) a failed sort releases everything and returns
// (nil, err), as ever.
func DistributionSortNotify[T any](f *stream.File[T], pool *pdm.Pool, less func(a, b T) bool, opts *Options, notify stream.FlushFunc) (*stream.File[T], error) {
	out := stream.NewFile[T](f.Vol(), f.Codec())
	ow, err := stream.OpenSinkNotify(out, pool, opts.width(), opts.async(), notify)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*stream.File[T], error) {
		if notify != nil {
			return out, err
		}
		out.Release()
		return nil, err
	}
	d := &distSorter[T]{pool: pool, less: less, opts: opts, rng: rand.New(rand.NewSource(0x5EED))}
	if err := d.sortInto(f, ow, false); err != nil {
		ow.Close()
		return fail(err)
	}
	if err := ow.Close(); err != nil {
		return fail(err)
	}
	return out, nil
}

type distSorter[T any] struct {
	pool *pdm.Pool
	less func(a, b T) bool
	opts *Options
	rng  *rand.Rand
}

// memRecords returns how many records fit in the frames left after reserving
// the input reader's buffers (the output writer is already open, so its
// frames are charged). A pool that cannot host even the reader is an error,
// the same loud failure formRunsLoadSort gives.
func (d *distSorter[T]) memRecords(f *stream.File[T]) (int, error) {
	sf := d.opts.streamFrames()
	frames := d.pool.Free() - sf
	if frames < 1 {
		return 0, fmt.Errorf("%w: %d frames free, need > %d", ErrEmptyPool, d.pool.Free(), sf)
	}
	return frames * f.PerBlock(), nil
}

// fanOut returns the number of buckets per level: each bucket writer costs
// streamFrames() pool frames (Width synchronously, 2×Width asynchronously —
// the same per-stream charge maxFanIn levies on the merge side), as does the
// partition-pass reader; the output writer is already open.
func (d *distSorter[T]) fanOut() int {
	sf := d.opts.streamFrames()
	fo := (d.pool.Free() - sf) / sf
	if d.opts != nil && d.opts.ForceFanIn > 0 && d.opts.ForceFanIn < fo {
		fo = d.opts.ForceFanIn
	}
	return fo
}

// sortInto writes the sorted contents of f to ow. If owned, f is released
// once consumed.
func (d *distSorter[T]) sortInto(f *stream.File[T], ow stream.Sink[T], owned bool) error {
	defer func() {
		if owned {
			f.Release()
		}
	}()
	if f.Len() == 0 {
		return nil
	}
	memRecs, err := d.memRecords(f)
	if err != nil {
		return err
	}
	if f.Len() <= int64(memRecs) {
		return d.baseCase(f, ow)
	}
	fo := d.fanOut()
	if fo < 2 {
		return fmt.Errorf("%w: fan-out %d", ErrEmptyPool, fo)
	}
	splitters, err := d.sampleSplitters(f, fo-1)
	if err != nil {
		return err
	}
	buckets, err := d.partition(f, splitters)
	if err != nil {
		return err
	}
	for i, b := range buckets {
		// A bucket equal to the whole input (all-equal keys defeat the
		// splitters) must fall back to the base case to guarantee progress.
		if b.Len() == f.Len() && b.Len() > int64(memRecs) {
			err = d.fallbackMerge(b, ow)
		} else {
			err = d.sortInto(b, ow, true)
		}
		if err != nil {
			// The failed bucket was released by its consumer; the rest would
			// otherwise strand their blocks.
			for _, rest := range buckets[i+1:] {
				rest.Release()
			}
			return err
		}
	}
	return nil
}

// baseCase load-sorts a memory-sized file into ow. The record buffer is
// charged to the pool for its block equivalent — as formRunsLoadSort charges
// its run buffer — so the memory bound M stays enforced, not just computed.
func (d *distSorter[T]) baseCase(f *stream.File[T], ow stream.Sink[T]) error {
	bufFrames := int((f.Len() + int64(f.PerBlock()) - 1) / int64(f.PerBlock()))
	reserve, err := d.pool.AllocN(bufFrames)
	if err != nil {
		return err
	}
	defer pdm.ReleaseAll(reserve)
	buf := make([]T, 0, f.Len())
	if err := forEach(f, d.pool, d.opts, func(v T) error {
		buf = append(buf, v)
		return nil
	}); err != nil {
		return err
	}
	sort.SliceStable(buf, func(i, j int) bool { return d.less(buf[i], buf[j]) })
	for _, v := range buf {
		if err := ow.Append(v); err != nil {
			return err
		}
	}
	return nil
}

// fallbackMerge handles pathological all-equal buckets with a merge sort,
// whose progress does not depend on key diversity. It writes sorted output
// to ow and releases b, on the error paths included.
func (d *distSorter[T]) fallbackMerge(b *stream.File[T], ow stream.Sink[T]) error {
	sorted, err := MergeSort(b, d.pool, d.less, d.opts)
	b.Release()
	if err != nil {
		return err
	}
	err = forEach(sorted, d.pool, d.opts, func(v T) error { return ow.Append(v) })
	sorted.Release()
	return err
}

// sampleSplitters reservoir-samples the input and returns k approximate
// quantile splitters. Costs one scan — asymptotically absorbed by the
// partition pass that follows (the survey notes an O(n) sampling term).
func (d *distSorter[T]) sampleSplitters(f *stream.File[T], k int) ([]T, error) {
	sampleSize := 8 * (k + 1)
	sample := make([]T, 0, sampleSize)
	seen := 0
	err := forEach(f, d.pool, d.opts, func(v T) error {
		seen++
		if len(sample) < sampleSize {
			sample = append(sample, v)
		} else if j := d.rng.Intn(seen); j < sampleSize {
			sample[j] = v
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.SliceStable(sample, func(i, j int) bool { return d.less(sample[i], sample[j]) })
	splitters := make([]T, 0, k)
	for i := 1; i <= k; i++ {
		splitters = append(splitters, sample[i*len(sample)/(k+1)])
	}
	return splitters, nil
}

// partition splits f into len(splitters)+1 bucket files in one pass. Bucket
// i receives records v with splitters[i-1] <= v < splitters[i] (boundary
// records with equal keys go to the leftmost eligible bucket).
func (d *distSorter[T]) partition(f *stream.File[T], splitters []T) ([]*stream.File[T], error) {
	nb := len(splitters) + 1
	buckets := make([]*stream.File[T], nb)
	writers := make([]stream.Sink[T], nb)
	// fail closes every writer still open and releases every bucket file
	// created so far, so a mid-partition error can strand neither pool
	// frames nor volume blocks. Closing a closed writer is a no-op.
	fail := func(err error) error {
		for _, w := range writers {
			if w != nil {
				w.Close()
			}
		}
		for _, b := range buckets {
			if b != nil {
				b.Release()
			}
		}
		return err
	}
	for i := range buckets {
		buckets[i] = stream.NewFile[T](f.Vol(), f.Codec())
		w, err := openSink(buckets[i], d.pool, d.opts)
		if err != nil {
			return nil, fail(err)
		}
		writers[i] = w
	}
	err := forEach(f, d.pool, d.opts, func(v T) error {
		// Binary search for the first splitter greater than v.
		i := sort.Search(len(splitters), func(i int) bool { return d.less(v, splitters[i]) })
		return writers[i].Append(v)
	})
	if err != nil {
		return nil, fail(err)
	}
	for _, w := range writers {
		if err := w.Close(); err != nil {
			return nil, fail(err)
		}
	}
	return buckets, nil
}
