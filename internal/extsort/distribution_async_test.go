package extsort

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"em/internal/pdm"
	"em/internal/record"
	"em/internal/stream"
)

// distBoth distribution-sorts vs synchronously and asynchronously at the
// same forced fan-out and an equalised memory budget, returning both outputs
// and both stats snapshots.
//
// The async pool gets 2×width extra frames: the open output writer holds
// streamFrames() (width sync, 2×width async), so with the compensation both
// paths see the same free-frame budget at every memRecords/fanOut decision
// and take byte-identical recursion paths — the distribution-side analogue
// of TestAsyncMergeRunsIdenticalStats merging identical run sets.
func distBoth(t *testing.T, vs []record.Record, width, fanOut, syncCap int, latency time.Duration) (syncOut, asyncOut []record.Record, syncStats, asyncStats pdm.Stats) {
	t.Helper()
	run := func(async bool) ([]record.Record, pdm.Stats) {
		cfg := pdm.Config{BlockBytes: 64, MemBlocks: 24, Disks: 4, DiskLatency: latency}
		vol := pdm.MustVolume(cfg)
		defer vol.Close()
		capacity := syncCap
		if async {
			capacity += 2 * width
		}
		pool := pdm.NewPool(cfg.BlockBytes, capacity)
		f, err := stream.FromSlice(vol, pool, record.RecordCodec{}, vs)
		if err != nil {
			t.Fatal(err)
		}
		vol.Stats().Reset()
		opts := &Options{Width: width, ForceFanIn: fanOut, Async: async}
		out, err := DistributionSort(f, pool, record.Record.Less, opts)
		if err != nil {
			t.Fatal(err)
		}
		st := vol.Stats().Snapshot()
		got, err := stream.ToSlice(out, pool)
		if err != nil {
			t.Fatal(err)
		}
		if pool.InUse() != 0 {
			t.Fatalf("async=%v: leaked %d frames", async, pool.InUse())
		}
		return got, st
	}
	syncOut, syncStats = run(false)
	asyncOut, asyncStats = run(true)
	return
}

// distinctRecords produces n records with pairwise-distinct pseudo-random
// keys (an odd multiplier is a bijection mod 2^64), so the all-equal bucket
// fallback — whose inner merge sort sees different budgets sync vs async —
// never triggers and the recursion stays deterministic.
func distinctRecords(n int) []record.Record {
	vs := make([]record.Record, n)
	for i := range vs {
		vs[i] = record.Record{Key: uint64(i) * 2654435761, Val: uint64(i)}
	}
	return vs
}

// TestAsyncDistributionSortIdenticalStats asserts the forecast-driven
// distribution sort issues exactly the synchronous I/Os at equal fan-out:
// same outputs, same reads, writes, and parallel steps. The async engine
// must change overlap, never the counted model.
func TestAsyncDistributionSortIdenticalStats(t *testing.T) {
	for _, tc := range []struct{ width, syncCap int }{{1, 12}, {2, 20}} {
		for _, n := range []int{0, 1, 37, 256, 1000} {
			vs := distinctRecords(n)
			sOut, aOut, sSt, aSt := distBoth(t, vs, tc.width, 3, tc.syncCap, 0)
			if len(sOut) != len(aOut) || len(sOut) != n {
				t.Fatalf("w=%d n=%d: lengths sync=%d async=%d", tc.width, n, len(sOut), len(aOut))
			}
			for i := range sOut {
				if sOut[i] != aOut[i] {
					t.Fatalf("w=%d n=%d: record %d differs: %v vs %v", tc.width, n, i, sOut[i], aOut[i])
				}
			}
			if sSt.Reads != aSt.Reads || sSt.Writes != aSt.Writes || sSt.Steps != aSt.Steps {
				t.Fatalf("w=%d n=%d: stats differ: sync %+v async %+v", tc.width, n, sSt, aSt)
			}
		}
	}
}

// TestAsyncDistributionSortQuick is the quick-check property over arbitrary
// inputs on a worker-engine volume: output and every I/O counter of the
// async path match the synchronous path at equal fan-out.
func TestAsyncDistributionSortQuick(t *testing.T) {
	f := func(keys []uint16) bool {
		if len(keys) > 600 {
			keys = keys[:600]
		}
		vs := make([]record.Record, len(keys))
		for i, k := range keys {
			// Distinct keys ordered primarily by the arbitrary uint16.
			vs[i] = record.Record{Key: uint64(k)<<32 | uint64(i), Val: uint64(i)}
		}
		sOut, aOut, sSt, aSt := distBoth(t, vs, 1, 3, 12, 2*time.Microsecond)
		if len(sOut) != len(aOut) {
			return false
		}
		for i := range sOut {
			if sOut[i] != aOut[i] {
				return false
			}
		}
		return sSt.Reads == aSt.Reads && sSt.Writes == aSt.Writes && sSt.Steps == aSt.Steps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestDistributionSortHonoursAsyncOptions pins the regression this package
// fixed: DistributionSort used to silently drop Async and Width, so an async
// run left the pool's high-water mark at the synchronous level. A width-2
// async sort must charge double-buffered frame groups to the pool.
func TestDistributionSortHonoursAsyncOptions(t *testing.T) {
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 64, MemBlocks: 24, Disks: 4})
	pool := pdm.PoolFor(vol)
	f, err := stream.FromSlice(vol, pool, record.RecordCodec{}, distinctRecords(300))
	if err != nil {
		t.Fatal(err)
	}
	out, err := DistributionSort(f, pool, record.Record.Less, &Options{Width: 2, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	out.Release()
	// The output writer alone holds 2×width = 4 frames; any partition pass
	// adds a reader and at least two bucket writers on top.
	if peak := pool.Peak(); peak < 3*4 {
		t.Fatalf("pool peak %d: async width-2 streams not charged (options dropped?)", peak)
	}
	if pool.InUse() != 0 {
		t.Fatalf("leaked %d frames", pool.InUse())
	}
}

// TestDistributionSortFailsCleanlyWithoutMemory asserts the starved-pool
// behaviour the merge path already had: a pool that cannot host even the
// reader returns ErrEmptyPool — it must not silently proceed with an
// impossible one-frame budget — and leaks nothing.
func TestDistributionSortFailsCleanlyWithoutMemory(t *testing.T) {
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 64, MemBlocks: 16, Disks: 1})
	pool := pdm.PoolFor(vol)
	f, err := stream.FromSlice(vol, pool, record.RecordCodec{}, distinctRecords(200))
	if err != nil {
		t.Fatal(err)
	}
	for name, tc := range map[string]struct {
		capacity int
		opts     *Options
	}{
		// Two frames: the output writer takes one, the remaining single
		// frame cannot host a reader plus any record buffer.
		"sync/starved-mid-sort": {2, nil},
		// Async width 2 needs four frames for the output writer alone.
		"async/starved-at-open": {3, &Options{Width: 2, Async: true}},
	} {
		starved := pdm.NewPool(64, tc.capacity)
		preLive := vol.Allocated() - vol.FreeBlocks()
		_, err := DistributionSort(f, starved, record.Record.Less, tc.opts)
		if err == nil {
			t.Fatalf("%s: sort with %d frames succeeded", name, tc.capacity)
		}
		if name == "sync/starved-mid-sort" && !errors.Is(err, ErrEmptyPool) {
			t.Fatalf("%s: error %v, want ErrEmptyPool", name, err)
		}
		if starved.InUse() != 0 {
			t.Fatalf("%s: leaked %d frames", name, starved.InUse())
		}
		if live := vol.Allocated() - vol.FreeBlocks(); live != preLive {
			t.Fatalf("%s: stranded %d volume blocks", name, live-preLive)
		}
	}
	if pool.InUse() != 0 {
		t.Fatalf("leaked %d frames from the builder pool", pool.InUse())
	}
}

// TestPartitionErrorReleasesFramesAndBuckets injects an allocation failure
// into the middle of partition's writer-opening loop and asserts every
// already-open writer's frames come back and every already-created bucket
// file is released — the pool-frame leak this PR plugs.
func TestPartitionErrorReleasesFramesAndBuckets(t *testing.T) {
	for name, opts := range map[string]*Options{
		"sync":  nil,
		"async": {Width: 2, Async: true},
	} {
		vol := pdm.MustVolume(pdm.Config{BlockBytes: 64, MemBlocks: 32, Disks: 4})
		build := pdm.PoolFor(vol)
		f, err := stream.FromSlice(vol, build, record.RecordCodec{}, distinctRecords(200))
		if err != nil {
			t.Fatal(err)
		}
		// Six frames cannot host ten writers at >=1 frame each, so the open
		// loop fails partway with several writers (and bucket files) live.
		pool := pdm.NewPool(64, 6)
		d := &distSorter[record.Record]{pool: pool, less: record.Record.Less, opts: opts}
		splitters := make([]record.Record, 9)
		for i := range splitters {
			splitters[i] = record.Record{Key: uint64(i * 20)}
		}
		buckets, err := d.partition(f, splitters)
		if err == nil {
			t.Fatalf("%s: partition with 6 frames and 10 buckets succeeded", name)
		}
		if buckets != nil {
			t.Fatalf("%s: error return kept buckets", name)
		}
		if pool.InUse() != 0 {
			t.Fatalf("%s: leaked %d frames on partition failure", name, pool.InUse())
		}
	}
}

// TestFallbackMergeReleasesBucketOnError starves the merge sort inside the
// all-equal-bucket fallback and asserts the bucket file is released — its
// blocks returned to the volume — rather than stranded, and no frames leak.
func TestFallbackMergeReleasesBucketOnError(t *testing.T) {
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 64, MemBlocks: 32, Disks: 1})
	build := pdm.PoolFor(vol)
	b, err := stream.FromSlice(vol, build, record.RecordCodec{}, distinctRecords(100))
	if err != nil {
		t.Fatal(err)
	}
	// Two frames: MergeSort's run formation needs more than reader+writer.
	pool := pdm.NewPool(64, 2)
	d := &distSorter[record.Record]{pool: pool, less: record.Record.Less}
	if err := d.fallbackMerge(b, nil); err == nil {
		t.Fatal("fallback merge with a 2-frame pool succeeded")
	} else if !errors.Is(err, ErrEmptyPool) {
		t.Fatalf("error %v, want ErrEmptyPool", err)
	}
	if b.Blocks() != 0 || b.Len() != 0 {
		t.Fatalf("bucket not released on fallback failure: %d blocks, %d records", b.Blocks(), b.Len())
	}
	if pool.InUse() != 0 {
		t.Fatalf("leaked %d frames", pool.InUse())
	}
}

// TestMergeSortReleasesRunsOnMergeError forces run formation to succeed and
// the merge phase to fail (ForceFanIn below 2) and asserts the formed runs
// are released rather than stranded on the volume — the path the all-equal
// bucket fallback reaches when the shared pool is tight.
func TestMergeSortReleasesRunsOnMergeError(t *testing.T) {
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 64, MemBlocks: 32, Disks: 1})
	build := pdm.PoolFor(vol)
	f, err := stream.FromSlice(vol, build, record.RecordCodec{}, distinctRecords(40))
	if err != nil {
		t.Fatal(err)
	}
	preLive := vol.Allocated() - vol.FreeBlocks()
	pool := pdm.NewPool(64, 4) // enough to form several runs, never to merge
	_, err = MergeSort(f, pool, record.Record.Less, &Options{ForceFanIn: 1})
	if err == nil {
		t.Fatal("merge sort with fan-in 1 succeeded")
	} else if !errors.Is(err, ErrEmptyPool) {
		t.Fatalf("error %v, want ErrEmptyPool", err)
	}
	if live := vol.Allocated() - vol.FreeBlocks(); live != preLive {
		t.Fatalf("stranded %d volume blocks of formed runs", live-preLive)
	}
	if pool.InUse() != 0 {
		t.Fatalf("leaked %d frames", pool.InUse())
	}
}
