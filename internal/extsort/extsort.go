// Package extsort implements the survey's two optimal external sorting
// paradigms — multiway merge sort and distribution sort — plus the run
// formation techniques (load-sort and replacement selection) and the
// Θ(N·log_B N) B-tree-insertion strawman they are compared against.
//
// Both optimal sorts perform Θ(n·log_m n) I/Os where n = N/B blocks and
// m = M/B memory blocks: one pass to form Θ(N/M) initial runs or buckets,
// then ⌈log_m(N/M)⌉ passes of (M/B)-way merging or splitting. All buffers
// come from a pdm.Pool, so the memory bound M is enforced, and all I/O flows
// through pdm counters, so the claimed pass structure is directly observable.
package extsort

import (
	"errors"
	"fmt"
	"sort"

	"em/internal/pdm"
	"em/internal/stream"
)

// ErrEmptyPool reports that the pool cannot support even the minimal
// reader/writer configuration. It wraps pdm.ErrNoFrames, so every layer's
// starved-pool errors are uniform: errors.Is(err, pdm.ErrNoFrames) holds
// whether the starvation surfaced here, in a session open, or in a
// sharded fan-out.
var ErrEmptyPool = fmt.Errorf("extsort: pool too small for external sort: %w", pdm.ErrNoFrames)

// RunMode selects the run-formation technique.
type RunMode int

const (
	// LoadSort fills memory, sorts, and writes a run of exactly M records.
	LoadSort RunMode = iota
	// ReplacementSelection streams through an M-record tournament heap,
	// producing runs of expected length 2M on random input and a single run
	// on already-sorted input.
	ReplacementSelection
)

// String names the run mode.
func (m RunMode) String() string {
	switch m {
	case LoadSort:
		return "load-sort"
	case ReplacementSelection:
		return "replacement-selection"
	default:
		return fmt.Sprintf("RunMode(%d)", int(m))
	}
}

// Options tunes an external sort.
type Options struct {
	// Width is the striping width used by all readers and writers; set it to
	// the volume's disk count D to enable disk striping. Zero means 1.
	Width int
	// RunMode selects the run-formation technique for merge sort.
	RunMode RunMode
	// ForceFanIn caps the merge fan-in (or distribution fan-out) below what
	// the pool would allow; zero means use the maximum. Experiments use it
	// to sweep the effective M/B.
	ForceFanIn int
	// Async enables forecast-driven asynchronous I/O for both optimal sorts:
	// every reader keeps its next block group in flight (the survey's
	// forecasting read-ahead — for a sequentially consumed file the block
	// holding the smallest pending key is simply its next sequential block),
	// and writers flush behind the caller. In merge sort that covers the run
	// readers and the merged-output writer; in distribution sort the
	// splitter-sampling and partition readers and the per-bucket write-behind
	// writers. Each open stream then holds 2×Width frames instead of Width,
	// so the maximum merge fan-in — and, symmetrically, the distribution
	// fan-out — halves: the same memory-for-overlap trade the survey charges
	// striped merging. I/O counters are identical to the synchronous path at
	// equal fan-in/fan-out; only wall-clock overlap changes.
	Async bool
}

func (o *Options) width() int {
	if o == nil || o.Width < 1 {
		return 1
	}
	return o.Width
}

func (o *Options) runMode() RunMode {
	if o == nil {
		return LoadSort
	}
	return o.RunMode
}

func (o *Options) async() bool { return o != nil && o.Async }

// streamFrames returns the pool frames one open reader or writer consumes:
// width frames synchronously, double that with asynchronous double
// buffering.
func (o *Options) streamFrames() int {
	if o.async() {
		return 2 * o.width()
	}
	return o.width()
}

// openSource opens a reader over f according to opts: striped when
// synchronous, prefetching when async.
func openSource[T any](f *stream.File[T], pool *pdm.Pool, opts *Options) (stream.Source[T], error) {
	return stream.OpenSource(f, pool, opts.width(), opts.async())
}

// openSink opens a writer appending to f according to opts: striped when
// synchronous, write-behind when async.
func openSink[T any](f *stream.File[T], pool *pdm.Pool, opts *Options) (stream.Sink[T], error) {
	return stream.OpenSink(f, pool, opts.width(), opts.async())
}

// forEach streams every record of f through fn with an options-driven reader,
// the openSource analogue of stream.ForEach.
func forEach[T any](f *stream.File[T], pool *pdm.Pool, opts *Options, fn func(T) error) error {
	r, err := openSource(f, pool, opts)
	if err != nil {
		return err
	}
	defer r.Close()
	return stream.Drain(r, fn)
}

// MergeSort sorts f by less into a new file using multiway external merge
// sort. The input file is not modified.
func MergeSort[T any](f *stream.File[T], pool *pdm.Pool, less func(a, b T) bool, opts *Options) (*stream.File[T], error) {
	runs, err := FormRuns(f, pool, less, opts)
	if err != nil {
		return nil, err
	}
	out, err := MergeRuns(runs, pool, less, opts)
	if err != nil {
		// MergeRuns released the runs and its intermediates.
		return nil, err
	}
	for _, r := range runs {
		if r != out {
			r.Release()
		}
	}
	return out, nil
}

// FormRuns performs the run-formation pass, returning sorted runs whose
// concatenation is a permutation of f.
func FormRuns[T any](f *stream.File[T], pool *pdm.Pool, less func(a, b T) bool, opts *Options) ([]*stream.File[T], error) {
	if opts.runMode() == ReplacementSelection {
		return formRunsReplacement(f, pool, less, opts)
	}
	return formRunsLoadSort(f, pool, less, opts)
}

// formRunsLoadSort fills memory, sorts, writes, repeats. Each run holds
// exactly memRecords records except the last.
func formRunsLoadSort[T any](f *stream.File[T], pool *pdm.Pool, less func(a, b T) bool, opts *Options) ([]*stream.File[T], error) {
	sf := opts.streamFrames()
	// Reserve frames: reader (sf) + writer (sf); the rest hold the run buffer.
	bufFrames := pool.Free() - 2*sf
	if bufFrames < 1 {
		return nil, fmt.Errorf("%w: %d frames free, need > %d", ErrEmptyPool, pool.Free(), 2*sf)
	}
	reserve, err := pool.AllocN(bufFrames)
	if err != nil {
		return nil, err
	}
	defer pdm.ReleaseAll(reserve)
	memRecords := bufFrames * f.PerBlock()

	r, err := openSource(f, pool, opts)
	if err != nil {
		return nil, err
	}
	defer r.Close()

	var runs []*stream.File[T]
	// fail releases every run already written (a concurrent pool consumer
	// can starve a mid-pass allocation), so an aborted pass strands nothing.
	fail := func(err error) ([]*stream.File[T], error) {
		for _, run := range runs {
			run.Release()
		}
		return nil, err
	}
	buf := make([]T, 0, memRecords)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		sort.SliceStable(buf, func(i, j int) bool { return less(buf[i], buf[j]) })
		run := stream.NewFile[T](f.Vol(), f.Codec())
		rw, err := openSink(run, pool, opts)
		if err != nil {
			return err
		}
		for _, v := range buf {
			if err := rw.Append(v); err != nil {
				rw.Close()
				run.Release()
				return err
			}
		}
		if err := rw.Close(); err != nil {
			run.Release()
			return err
		}
		runs = append(runs, run)
		buf = buf[:0]
		return nil
	}
	for {
		v, ok, err := r.Next()
		if err != nil {
			return fail(err)
		}
		if !ok {
			break
		}
		buf = append(buf, v)
		if len(buf) == memRecords {
			if err := flush(); err != nil {
				return fail(err)
			}
		}
	}
	if err := flush(); err != nil {
		return fail(err)
	}
	if len(runs) == 0 {
		runs = append(runs, stream.NewFile[T](f.Vol(), f.Codec()))
	}
	return runs, nil
}

// rsItem is a replacement-selection heap entry: run-generation first, then
// the record ordering.
type rsItem[T any] struct {
	gen int
	v   T
}

// rsHeap orders replacement-selection entries without interface boxing.
func rsHeap[T any](less func(a, b T) bool) *minHeap[rsItem[T]] {
	return &minHeap[rsItem[T]]{less: func(a, b rsItem[T]) bool {
		if a.gen != b.gen {
			return a.gen < b.gen
		}
		return less(a.v, b.v)
	}}
}

// formRunsReplacement streams the input through an M-record tournament,
// emitting the smallest element that can still extend the current run. On
// random input the expected run length is 2M (the survey's "snowplow"
// argument); on sorted input it produces a single run.
func formRunsReplacement[T any](f *stream.File[T], pool *pdm.Pool, less func(a, b T) bool, opts *Options) ([]*stream.File[T], error) {
	sf := opts.streamFrames()
	bufFrames := pool.Free() - 2*sf
	if bufFrames < 1 {
		return nil, fmt.Errorf("%w: %d frames free, need > %d", ErrEmptyPool, pool.Free(), 2*sf)
	}
	reserve, err := pool.AllocN(bufFrames)
	if err != nil {
		return nil, err
	}
	defer pdm.ReleaseAll(reserve)
	memRecords := bufFrames * f.PerBlock()

	r, err := openSource(f, pool, opts)
	if err != nil {
		return nil, err
	}
	defer r.Close()

	h := rsHeap[T](less)
	// Prime the heap with up to M records, all in generation 0.
	for len(h.items) < memRecords {
		v, ok, err := r.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		h.items = append(h.items, rsItem[T]{gen: 0, v: v})
	}
	h.Init()

	var runs []*stream.File[T]
	var cur *stream.File[T]
	var cw stream.Sink[T]
	// fail closes the open run writer (returning its frames), abandons the
	// partial run, and releases every completed run.
	fail := func(err error) ([]*stream.File[T], error) {
		if cw != nil {
			cw.Close()
		}
		if cur != nil {
			cur.Release()
		}
		for _, run := range runs {
			run.Release()
		}
		return nil, err
	}
	curGen := 0
	openRun := func() error {
		cur = stream.NewFile[T](f.Vol(), f.Codec())
		w, err := openSink(cur, pool, opts)
		if err != nil {
			cur.Release()
			cur = nil
			return err
		}
		cw = w
		return nil
	}
	closeRun := func() error {
		if cw == nil {
			return nil
		}
		err := cw.Close()
		cw = nil
		if err != nil {
			return err
		}
		runs = append(runs, cur)
		cur = nil
		return nil
	}

	for h.Len() > 0 {
		it := h.Pop()
		if cw == nil || it.gen != curGen {
			if err := closeRun(); err != nil {
				return fail(err)
			}
			curGen = it.gen
			if err := openRun(); err != nil {
				return fail(err)
			}
		}
		if err := cw.Append(it.v); err != nil {
			return fail(err)
		}
		// Refill from input: the incoming record joins the current run if it
		// is not smaller than the record just emitted, else the next run.
		nv, ok, err := r.Next()
		if err != nil {
			return fail(err)
		}
		if ok {
			gen := curGen
			if less(nv, it.v) {
				gen = curGen + 1
			}
			h.Push(rsItem[T]{gen: gen, v: nv})
		}
	}
	if err := closeRun(); err != nil {
		return fail(err)
	}
	if len(runs) == 0 {
		runs = append(runs, stream.NewFile[T](f.Vol(), f.Codec()))
	}
	return runs, nil
}

// MaxFanIn returns the merge fan-in the pool supports at the given striping
// width. Disk striping treats a group of width blocks as one logical block,
// so each input run needs width frames and the fan-in drops from m to
// roughly m/D — exactly the suboptimality factor the survey attributes to
// striped merge sort.
func MaxFanIn(pool *pdm.Pool, width int) int {
	return (pool.Free() - width) / width
}

// maxFanIn is MaxFanIn generalised to the per-stream frame cost of the
// options: asynchronous streams hold double-buffered frame groups, so the
// fan-in halves again — memory traded for I/O/compute overlap.
func maxFanIn(pool *pdm.Pool, opts *Options) int {
	sf := opts.streamFrames()
	return (pool.Free() - sf) / sf
}

// MergeRuns repeatedly merges sorted runs fan-in at a time until one remains.
// The total cost is one read+write of the data per merge level, i.e.
// ⌈log_fanin(#runs)⌉ passes.
//
// With opts.Async set, each input run's reader keeps its next block group in
// flight while the merge consumes buffered records — the survey's
// forecasting technique for D-disk merging. A sorted run is consumed in
// order, so the block the forecast selects (the one holding the smallest
// pending key of that run) is exactly the run's next sequential block, and
// read-ahead fetches it before the merge blocks on it; the write-behind
// output overlaps symmetrically. Counted I/Os are unchanged at equal fan-in.
//
// On error the input runs and every intermediate merged file are released,
// so no blocks stay stranded on the volume.
func MergeRuns[T any](runs []*stream.File[T], pool *pdm.Pool, less func(a, b T) bool, opts *Options) (*stream.File[T], error) {
	if len(runs) == 0 {
		return nil, errors.New("extsort: MergeRuns with no runs")
	}
	releaseAll := func(files []*stream.File[T]) {
		for _, f := range files {
			f.Release()
		}
	}
	fanin := maxFanIn(pool, opts)
	if opts != nil && opts.ForceFanIn > 0 && opts.ForceFanIn < fanin {
		fanin = opts.ForceFanIn
	}
	if fanin < 2 {
		releaseAll(runs)
		return nil, fmt.Errorf("%w: fan-in %d", ErrEmptyPool, fanin)
	}
	level := runs
	for len(level) > 1 {
		var next []*stream.File[T]
		for lo := 0; lo < len(level); lo += fanin {
			hi := lo + fanin
			if hi > len(level) {
				hi = len(level)
			}
			merged, err := mergeOnce(level[lo:hi], pool, less, opts)
			if err != nil {
				// Release this level's finished intermediates and every
				// unconsumed input; inputs already consumed by earlier
				// groups re-release as no-ops.
				releaseAll(next)
				releaseAll(level)
				return nil, err
			}
			for _, r := range level[lo:hi] {
				r.Release()
			}
			next = append(next, merged)
		}
		level = next
	}
	return level[0], nil
}

// mergeItem is a k-way merge heap entry.
type mergeItem[T any] struct {
	v   T
	src int
}

// mergeOnce merges the given sorted runs into one sorted file in a single
// pass: one reader per run plus one writer, each synchronous or
// asynchronous per opts.
func mergeOnce[T any](runs []*stream.File[T], pool *pdm.Pool, less func(a, b T) bool, opts *Options) (*stream.File[T], error) {
	if len(runs) == 1 {
		// Copy-through keeps ownership semantics uniform (caller releases
		// inputs), at the cost of one extra pass on odd tails.
		return copyFile(runs[0], pool, opts)
	}
	vol := runs[0].Vol()
	out := stream.NewFile[T](vol, runs[0].Codec())
	ow, err := openSink(out, pool, opts)
	if err != nil {
		return nil, err
	}
	// fail abandons the partially written output: frames back to the pool,
	// blocks back to the volume.
	fail := func(err error) (*stream.File[T], error) {
		ow.Close()
		out.Release()
		return nil, err
	}
	readers := make([]stream.Source[T], len(runs))
	defer func() {
		for _, r := range readers {
			if r != nil {
				r.Close()
			}
		}
	}()
	h := &minHeap[mergeItem[T]]{less: func(a, b mergeItem[T]) bool { return less(a.v, b.v) }}
	for i, run := range runs {
		r, err := openSource(run, pool, opts)
		if err != nil {
			return fail(err)
		}
		readers[i] = r
		v, ok, err := r.Next()
		if err != nil {
			return fail(err)
		}
		if ok {
			h.items = append(h.items, mergeItem[T]{v: v, src: i})
		}
	}
	h.Init()
	for h.Len() > 0 {
		it := h.Top()
		if err := ow.Append(it.v); err != nil {
			return fail(err)
		}
		v, ok, err := readers[it.src].Next()
		if err != nil {
			return fail(err)
		}
		if ok {
			h.ReplaceTop(mergeItem[T]{v: v, src: it.src})
		} else {
			h.Pop()
		}
	}
	if err := ow.Close(); err != nil {
		out.Release()
		return nil, err
	}
	return out, nil
}

// copyFile copies src into a fresh file, abandoning the partial copy on
// error.
func copyFile[T any](src *stream.File[T], pool *pdm.Pool, opts *Options) (*stream.File[T], error) {
	dst := stream.NewFile[T](src.Vol(), src.Codec())
	w, err := openSink(dst, pool, opts)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*stream.File[T], error) {
		w.Close()
		dst.Release()
		return nil, err
	}
	r, err := openSource(src, pool, opts)
	if err != nil {
		return fail(err)
	}
	defer r.Close()
	for {
		v, ok, err := r.Next()
		if err != nil {
			return fail(err)
		}
		if !ok {
			break
		}
		if err := w.Append(v); err != nil {
			return fail(err)
		}
	}
	if err := w.Close(); err != nil {
		dst.Release()
		return nil, err
	}
	return dst, nil
}

// IsSorted scans f and reports whether it is ordered by less.
func IsSorted[T any](f *stream.File[T], pool *pdm.Pool, less func(a, b T) bool) (bool, error) {
	r, err := stream.NewReader(f, pool)
	if err != nil {
		return false, err
	}
	defer r.Close()
	var prev T
	first := true
	for {
		v, ok, err := r.Next()
		if err != nil {
			return false, err
		}
		if !ok {
			return true, nil
		}
		if !first && less(v, prev) {
			return false, nil
		}
		prev = v
		first = false
	}
}

// MergePassCount returns the number of merge passes ⌈log_fanin(runs)⌉ the
// merge phase performs — the quantity plotted in experiment F1.
func MergePassCount(runs, fanin int) int {
	if runs <= 1 {
		return 0
	}
	if fanin < 2 {
		return -1
	}
	passes := 0
	for runs > 1 {
		runs = (runs + fanin - 1) / fanin
		passes++
	}
	return passes
}
