// Package extsort implements the survey's two optimal external sorting
// paradigms — multiway merge sort and distribution sort — plus the run
// formation techniques (load-sort and replacement selection) and the
// Θ(N·log_B N) B-tree-insertion strawman they are compared against.
//
// Both optimal sorts perform Θ(n·log_m n) I/Os where n = N/B blocks and
// m = M/B memory blocks: one pass to form Θ(N/M) initial runs or buckets,
// then ⌈log_m(N/M)⌉ passes of (M/B)-way merging or splitting. All buffers
// come from a pdm.Pool, so the memory bound M is enforced, and all I/O flows
// through pdm counters, so the claimed pass structure is directly observable.
package extsort

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"em/internal/pdm"
	"em/internal/stream"
)

// ErrEmptyPool reports that the pool cannot support even the minimal
// reader/writer configuration.
var ErrEmptyPool = errors.New("extsort: pool too small for external sort")

// RunMode selects the run-formation technique.
type RunMode int

const (
	// LoadSort fills memory, sorts, and writes a run of exactly M records.
	LoadSort RunMode = iota
	// ReplacementSelection streams through an M-record tournament heap,
	// producing runs of expected length 2M on random input and a single run
	// on already-sorted input.
	ReplacementSelection
)

// String names the run mode.
func (m RunMode) String() string {
	switch m {
	case LoadSort:
		return "load-sort"
	case ReplacementSelection:
		return "replacement-selection"
	default:
		return fmt.Sprintf("RunMode(%d)", int(m))
	}
}

// Options tunes an external sort.
type Options struct {
	// Width is the striping width used by all readers and writers; set it to
	// the volume's disk count D to enable disk striping. Zero means 1.
	Width int
	// RunMode selects the run-formation technique for merge sort.
	RunMode RunMode
	// ForceFanIn caps the merge fan-in (or distribution fan-out) below what
	// the pool would allow; zero means use the maximum. Experiments use it
	// to sweep the effective M/B.
	ForceFanIn int
}

func (o *Options) width() int {
	if o == nil || o.Width < 1 {
		return 1
	}
	return o.Width
}

func (o *Options) runMode() RunMode {
	if o == nil {
		return LoadSort
	}
	return o.RunMode
}

// MergeSort sorts f by less into a new file using multiway external merge
// sort. The input file is not modified.
func MergeSort[T any](f *stream.File[T], pool *pdm.Pool, less func(a, b T) bool, opts *Options) (*stream.File[T], error) {
	runs, err := FormRuns(f, pool, less, opts)
	if err != nil {
		return nil, err
	}
	out, err := MergeRuns(runs, pool, less, opts)
	if err != nil {
		return nil, err
	}
	for _, r := range runs {
		if r != out {
			r.Release()
		}
	}
	return out, nil
}

// FormRuns performs the run-formation pass, returning sorted runs whose
// concatenation is a permutation of f.
func FormRuns[T any](f *stream.File[T], pool *pdm.Pool, less func(a, b T) bool, opts *Options) ([]*stream.File[T], error) {
	if opts.runMode() == ReplacementSelection {
		return formRunsReplacement(f, pool, less, opts)
	}
	return formRunsLoadSort(f, pool, less, opts)
}

// formRunsLoadSort fills memory, sorts, writes, repeats. Each run holds
// exactly memRecords records except the last.
func formRunsLoadSort[T any](f *stream.File[T], pool *pdm.Pool, less func(a, b T) bool, opts *Options) ([]*stream.File[T], error) {
	w := opts.width()
	// Reserve frames: reader (w) + writer (w); the rest hold the run buffer.
	bufFrames := pool.Free() - 2*w
	if bufFrames < 1 {
		return nil, fmt.Errorf("%w: %d frames free, need > %d", ErrEmptyPool, pool.Free(), 2*w)
	}
	reserve, err := pool.AllocN(bufFrames)
	if err != nil {
		return nil, err
	}
	defer pdm.ReleaseAll(reserve)
	memRecords := bufFrames * f.PerBlock()

	r, err := stream.NewStripedReader(f, pool, w)
	if err != nil {
		return nil, err
	}
	defer r.Close()

	var runs []*stream.File[T]
	buf := make([]T, 0, memRecords)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		sort.SliceStable(buf, func(i, j int) bool { return less(buf[i], buf[j]) })
		run := stream.NewFile[T](f.Vol(), f.Codec())
		rw, err := stream.NewStripedWriter(run, pool, w)
		if err != nil {
			return err
		}
		for _, v := range buf {
			if err := rw.Append(v); err != nil {
				rw.Close()
				return err
			}
		}
		if err := rw.Close(); err != nil {
			return err
		}
		runs = append(runs, run)
		buf = buf[:0]
		return nil
	}
	for {
		v, ok, err := r.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		buf = append(buf, v)
		if len(buf) == memRecords {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if len(runs) == 0 {
		runs = append(runs, stream.NewFile[T](f.Vol(), f.Codec()))
	}
	return runs, nil
}

// rsItem is a replacement-selection heap entry: run-generation first, then
// the record ordering.
type rsItem[T any] struct {
	gen int
	v   T
}

type rsHeap[T any] struct {
	items []rsItem[T]
	less  func(a, b T) bool
}

func (h *rsHeap[T]) Len() int { return len(h.items) }
func (h *rsHeap[T]) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.gen != b.gen {
		return a.gen < b.gen
	}
	return h.less(a.v, b.v)
}
func (h *rsHeap[T]) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *rsHeap[T]) Push(x interface{}) { h.items = append(h.items, x.(rsItem[T])) }
func (h *rsHeap[T]) Pop() interface{} {
	n := len(h.items)
	it := h.items[n-1]
	h.items = h.items[:n-1]
	return it
}

// formRunsReplacement streams the input through an M-record tournament,
// emitting the smallest element that can still extend the current run. On
// random input the expected run length is 2M (the survey's "snowplow"
// argument); on sorted input it produces a single run.
func formRunsReplacement[T any](f *stream.File[T], pool *pdm.Pool, less func(a, b T) bool, opts *Options) ([]*stream.File[T], error) {
	w := opts.width()
	bufFrames := pool.Free() - 2*w
	if bufFrames < 1 {
		return nil, fmt.Errorf("%w: %d frames free, need > %d", ErrEmptyPool, pool.Free(), 2*w)
	}
	reserve, err := pool.AllocN(bufFrames)
	if err != nil {
		return nil, err
	}
	defer pdm.ReleaseAll(reserve)
	memRecords := bufFrames * f.PerBlock()

	r, err := stream.NewStripedReader(f, pool, w)
	if err != nil {
		return nil, err
	}
	defer r.Close()

	h := &rsHeap[T]{less: less}
	// Prime the heap with up to M records, all in generation 0.
	for len(h.items) < memRecords {
		v, ok, err := r.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		h.items = append(h.items, rsItem[T]{gen: 0, v: v})
	}
	heap.Init(h)

	var runs []*stream.File[T]
	var cur *stream.File[T]
	var cw *stream.Writer[T]
	curGen := 0
	openRun := func() error {
		cur = stream.NewFile[T](f.Vol(), f.Codec())
		var err error
		cw, err = stream.NewStripedWriter(cur, pool, w)
		return err
	}
	closeRun := func() error {
		if cw == nil {
			return nil
		}
		if err := cw.Close(); err != nil {
			return err
		}
		runs = append(runs, cur)
		cur, cw = nil, nil
		return nil
	}

	for h.Len() > 0 {
		it := heap.Pop(h).(rsItem[T])
		if cw == nil || it.gen != curGen {
			if err := closeRun(); err != nil {
				return nil, err
			}
			curGen = it.gen
			if err := openRun(); err != nil {
				return nil, err
			}
		}
		if err := cw.Append(it.v); err != nil {
			return nil, err
		}
		// Refill from input: the incoming record joins the current run if it
		// is not smaller than the record just emitted, else the next run.
		nv, ok, err := r.Next()
		if err != nil {
			return nil, err
		}
		if ok {
			gen := curGen
			if less(nv, it.v) {
				gen = curGen + 1
			}
			heap.Push(h, rsItem[T]{gen: gen, v: nv})
		}
	}
	if err := closeRun(); err != nil {
		return nil, err
	}
	if len(runs) == 0 {
		runs = append(runs, stream.NewFile[T](f.Vol(), f.Codec()))
	}
	return runs, nil
}

// MaxFanIn returns the merge fan-in the pool supports at the given striping
// width. Disk striping treats a group of width blocks as one logical block,
// so each input run needs width frames and the fan-in drops from m to
// roughly m/D — exactly the suboptimality factor the survey attributes to
// striped merge sort.
func MaxFanIn(pool *pdm.Pool, width int) int {
	return (pool.Free() - width) / width
}

// MergeRuns repeatedly merges sorted runs fan-in at a time until one remains.
// The total cost is one read+write of the data per merge level, i.e.
// ⌈log_fanin(#runs)⌉ passes.
func MergeRuns[T any](runs []*stream.File[T], pool *pdm.Pool, less func(a, b T) bool, opts *Options) (*stream.File[T], error) {
	if len(runs) == 0 {
		return nil, errors.New("extsort: MergeRuns with no runs")
	}
	w := opts.width()
	fanin := MaxFanIn(pool, w)
	if opts != nil && opts.ForceFanIn > 0 && opts.ForceFanIn < fanin {
		fanin = opts.ForceFanIn
	}
	if fanin < 2 {
		return nil, fmt.Errorf("%w: fan-in %d", ErrEmptyPool, fanin)
	}
	level := runs
	for len(level) > 1 {
		var next []*stream.File[T]
		for lo := 0; lo < len(level); lo += fanin {
			hi := lo + fanin
			if hi > len(level) {
				hi = len(level)
			}
			merged, err := mergeOnce(level[lo:hi], pool, less, w)
			if err != nil {
				return nil, err
			}
			for _, r := range level[lo:hi] {
				r.Release()
			}
			next = append(next, merged)
		}
		level = next
	}
	return level[0], nil
}

// mergeItem is a k-way merge heap entry.
type mergeItem[T any] struct {
	v   T
	src int
}

type mergeHeap[T any] struct {
	items []mergeItem[T]
	less  func(a, b T) bool
}

func (h *mergeHeap[T]) Len() int           { return len(h.items) }
func (h *mergeHeap[T]) Less(i, j int) bool { return h.less(h.items[i].v, h.items[j].v) }
func (h *mergeHeap[T]) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *mergeHeap[T]) Push(x interface{}) { h.items = append(h.items, x.(mergeItem[T])) }
func (h *mergeHeap[T]) Pop() interface{} {
	n := len(h.items)
	it := h.items[n-1]
	h.items = h.items[:n-1]
	return it
}

// mergeOnce merges the given sorted runs into one sorted file in a single
// pass: one width-w reader per run plus one width-w writer.
func mergeOnce[T any](runs []*stream.File[T], pool *pdm.Pool, less func(a, b T) bool, width int) (*stream.File[T], error) {
	if len(runs) == 1 {
		// Copy-through keeps ownership semantics uniform (caller releases
		// inputs), at the cost of one extra pass on odd tails.
		return copyFile(runs[0], pool, width)
	}
	vol := runs[0].Vol()
	out := stream.NewFile[T](vol, runs[0].Codec())
	ow, err := stream.NewStripedWriter(out, pool, width)
	if err != nil {
		return nil, err
	}
	readers := make([]*stream.Reader[T], len(runs))
	defer func() {
		for _, r := range readers {
			if r != nil {
				r.Close()
			}
		}
	}()
	h := &mergeHeap[T]{less: less}
	for i, run := range runs {
		r, err := stream.NewStripedReader(run, pool, width)
		if err != nil {
			ow.Close()
			return nil, err
		}
		readers[i] = r
		v, ok, err := r.Next()
		if err != nil {
			ow.Close()
			return nil, err
		}
		if ok {
			h.items = append(h.items, mergeItem[T]{v: v, src: i})
		}
	}
	heap.Init(h)
	for h.Len() > 0 {
		it := h.items[0]
		if err := ow.Append(it.v); err != nil {
			ow.Close()
			return nil, err
		}
		v, ok, err := readers[it.src].Next()
		if err != nil {
			ow.Close()
			return nil, err
		}
		if ok {
			h.items[0] = mergeItem[T]{v: v, src: it.src}
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
	}
	if err := ow.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// copyFile copies src into a fresh file.
func copyFile[T any](src *stream.File[T], pool *pdm.Pool, width int) (*stream.File[T], error) {
	dst := stream.NewFile[T](src.Vol(), src.Codec())
	w, err := stream.NewStripedWriter(dst, pool, width)
	if err != nil {
		return nil, err
	}
	r, err := stream.NewStripedReader(src, pool, width)
	if err != nil {
		w.Close()
		return nil, err
	}
	defer r.Close()
	for {
		v, ok, err := r.Next()
		if err != nil {
			w.Close()
			return nil, err
		}
		if !ok {
			break
		}
		if err := w.Append(v); err != nil {
			w.Close()
			return nil, err
		}
	}
	return dst, w.Close()
}

// IsSorted scans f and reports whether it is ordered by less.
func IsSorted[T any](f *stream.File[T], pool *pdm.Pool, less func(a, b T) bool) (bool, error) {
	r, err := stream.NewReader(f, pool)
	if err != nil {
		return false, err
	}
	defer r.Close()
	var prev T
	first := true
	for {
		v, ok, err := r.Next()
		if err != nil {
			return false, err
		}
		if !ok {
			return true, nil
		}
		if !first && less(v, prev) {
			return false, nil
		}
		prev = v
		first = false
	}
}

// MergePassCount returns the number of merge passes ⌈log_fanin(runs)⌉ the
// merge phase performs — the quantity plotted in experiment F1.
func MergePassCount(runs, fanin int) int {
	if runs <= 1 {
		return 0
	}
	if fanin < 2 {
		return -1
	}
	passes := 0
	for runs > 1 {
		runs = (runs + fanin - 1) / fanin
		passes++
	}
	return passes
}
