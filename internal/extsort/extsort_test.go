package extsort

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"em/internal/pdm"
	"em/internal/record"
	"em/internal/stream"
)

func newEnv(t testing.TB, memBlocks, disks int) (*pdm.Volume, *pdm.Pool) {
	t.Helper()
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 64, MemBlocks: memBlocks, Disks: disks})
	return vol, pdm.PoolFor(vol)
}

func randRecs(n int, seed int64) []record.Record {
	rng := rand.New(rand.NewSource(seed))
	out := make([]record.Record, n)
	for i := range out {
		out[i] = record.Record{Key: rng.Uint64() % 1000, Val: uint64(i)}
	}
	return out
}

func recLess(a, b record.Record) bool { return a.Less(b) }

func sortedCopy(in []record.Record) []record.Record {
	cp := append([]record.Record(nil), in...)
	sort.SliceStable(cp, func(i, j int) bool { return cp[i].Less(cp[j]) })
	return cp
}

func checkSorted(t *testing.T, name string, got, in []record.Record) {
	t.Helper()
	want := sortedCopy(in)
	if len(got) != len(want) {
		t.Fatalf("%s: got %d records, want %d", name, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: record %d = %+v, want %+v", name, i, got[i], want[i])
		}
	}
}

func runSort(t *testing.T, sortFn func(*stream.File[record.Record], *pdm.Pool, func(a, b record.Record) bool, *Options) (*stream.File[record.Record], error), opts *Options, n int) {
	t.Helper()
	vol, pool := newEnv(t, 8, 1)
	in := randRecs(n, int64(n))
	f, err := stream.FromSlice(vol, pool, record.RecordCodec{}, in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sortFn(f, pool, recLess, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := stream.ToSlice(out, pool)
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, "sort", got, in)
	if pool.InUse() != 0 {
		t.Fatalf("leaked %d frames", pool.InUse())
	}
}

func TestMergeSortSizes(t *testing.T) {
	for _, n := range []int{0, 1, 2, 4, 5, 16, 100, 1000, 4096} {
		runSort(t, MergeSort, nil, n)
	}
}

func TestMergeSortReplacementSelection(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1000} {
		runSort(t, MergeSort, &Options{RunMode: ReplacementSelection}, n)
	}
}

func TestDistributionSortSizes(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5, 16, 100, 1000, 4096} {
		runSort(t, DistributionSort, nil, n)
	}
}

func TestSortAllEqualKeys(t *testing.T) {
	vol, pool := newEnv(t, 8, 1)
	in := make([]record.Record, 500)
	for i := range in {
		in[i] = record.Record{Key: 7, Val: uint64(i)}
	}
	f, err := stream.FromSlice(vol, pool, record.RecordCodec{}, in)
	if err != nil {
		t.Fatal(err)
	}
	for name, fn := range map[string]func(*stream.File[record.Record], *pdm.Pool, func(a, b record.Record) bool, *Options) (*stream.File[record.Record], error){
		"merge": MergeSort[record.Record], "distribution": DistributionSort[record.Record],
	} {
		out, err := fn(f, pool, recLess, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := stream.ToSlice(out, pool)
		if err != nil {
			t.Fatal(err)
		}
		checkSorted(t, name, got, in)
		out.Release()
	}
}

func TestSortAlreadySortedAndReversed(t *testing.T) {
	vol, pool := newEnv(t, 8, 1)
	n := 600
	asc := make([]record.Record, n)
	desc := make([]record.Record, n)
	for i := 0; i < n; i++ {
		asc[i] = record.Record{Key: uint64(i), Val: uint64(i)}
		desc[i] = record.Record{Key: uint64(n - i), Val: uint64(i)}
	}
	for _, in := range [][]record.Record{asc, desc} {
		f, err := stream.FromSlice(vol, pool, record.RecordCodec{}, in)
		if err != nil {
			t.Fatal(err)
		}
		out, err := MergeSort(f, pool, recLess, &Options{RunMode: ReplacementSelection})
		if err != nil {
			t.Fatal(err)
		}
		got, err := stream.ToSlice(out, pool)
		if err != nil {
			t.Fatal(err)
		}
		checkSorted(t, "rs", got, in)
		out.Release()
		f.Release()
	}
}

func TestReplacementSelectionRunLengths(t *testing.T) {
	// With M records of memory, load-sort runs are exactly M long while
	// replacement selection averages ~2M on random input and produces a
	// single run on sorted input.
	vol, pool := newEnv(t, 8, 1)
	n := 2000
	in := randRecs(n, 99)
	f, err := stream.FromSlice(vol, pool, record.RecordCodec{}, in)
	if err != nil {
		t.Fatal(err)
	}
	loadRuns, err := FormRuns(f, pool, recLess, &Options{RunMode: LoadSort})
	if err != nil {
		t.Fatal(err)
	}
	rsRuns, err := FormRuns(f, pool, recLess, &Options{RunMode: ReplacementSelection})
	if err != nil {
		t.Fatal(err)
	}
	if len(rsRuns) >= len(loadRuns) {
		t.Fatalf("replacement selection should form fewer runs: %d vs %d", len(rsRuns), len(loadRuns))
	}
	// Each run must itself be sorted, and the totals must match.
	var total int64
	for _, r := range append(loadRuns, rsRuns...) {
		ok, err := IsSorted(r, pool, recLess)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("run not sorted")
		}
	}
	for _, r := range rsRuns {
		total += r.Len()
	}
	if total != int64(n) {
		t.Fatalf("rs runs hold %d records, want %d", total, n)
	}
	// Sorted input: single run.
	sortedIn := sortedCopy(in)
	sf, err := stream.FromSlice(vol, pool, record.RecordCodec{}, sortedIn)
	if err != nil {
		t.Fatal(err)
	}
	oneRun, err := FormRuns(sf, pool, recLess, &Options{RunMode: ReplacementSelection})
	if err != nil {
		t.Fatal(err)
	}
	if len(oneRun) != 1 {
		t.Fatalf("sorted input should form 1 run, got %d", len(oneRun))
	}
}

func TestMergePassCount(t *testing.T) {
	cases := []struct{ runs, fanin, want int }{
		{1, 4, 0},
		{0, 4, 0},
		{2, 4, 1},
		{4, 4, 1},
		{5, 4, 2},
		{16, 4, 2},
		{17, 4, 3},
		{100, 10, 2},
		{5, 1, -1},
	}
	for _, c := range cases {
		if got := MergePassCount(c.runs, c.fanin); got != c.want {
			t.Fatalf("MergePassCount(%d,%d) = %d, want %d", c.runs, c.fanin, got, c.want)
		}
	}
}

func TestForceFanInIncreasesPasses(t *testing.T) {
	// Constraining fan-in must increase I/O (more merge passes) but keep the
	// output correct — this is the mechanism behind experiment F1.
	vol, pool := newEnv(t, 8, 1)
	in := randRecs(3000, 5)
	f, err := stream.FromSlice(vol, pool, record.RecordCodec{}, in)
	if err != nil {
		t.Fatal(err)
	}
	vol.Stats().Reset()
	wide, err := MergeSort(f, pool, recLess, nil)
	if err != nil {
		t.Fatal(err)
	}
	wideIO := vol.Stats().Total()
	vol.Stats().Reset()
	narrow, err := MergeSort(f, pool, recLess, &Options{ForceFanIn: 2})
	if err != nil {
		t.Fatal(err)
	}
	narrowIO := vol.Stats().Total()
	if narrowIO <= wideIO {
		t.Fatalf("fan-in 2 should cost more I/O: %d vs %d", narrowIO, wideIO)
	}
	g1, _ := stream.ToSlice(wide, pool)
	g2, _ := stream.ToSlice(narrow, pool)
	checkSorted(t, "wide", g1, in)
	checkSorted(t, "narrow", g2, in)
}

func TestSortIOWithinConstantOfScan(t *testing.T) {
	// With M/B = 8 frames and N/B = 250 blocks, the sort needs
	// ceil(log_m(n)) ≈ 3 levels; total I/O must stay within a small
	// constant of 2·passes·scan.
	vol, pool := newEnv(t, 8, 1)
	n := 1000 // 250 blocks of 4 records
	in := randRecs(n, 3)
	f, err := stream.FromSlice(vol, pool, record.RecordCodec{}, in)
	if err != nil {
		t.Fatal(err)
	}
	vol.Stats().Reset()
	out, err := MergeSort(f, pool, recLess, nil)
	if err != nil {
		t.Fatal(err)
	}
	io := vol.Stats().Total()
	scan := uint64(f.Blocks())
	if io > 20*scan {
		t.Fatalf("sort cost %d I/Os on a %d-block file — not O(scan·log)", io, scan)
	}
	if io < 2*scan {
		t.Fatalf("sort cost %d I/Os — impossibly low, accounting broken", io)
	}
	_ = out
}

func TestIsSorted(t *testing.T) {
	vol, pool := newEnv(t, 8, 1)
	f, err := stream.FromSlice(vol, pool, record.RecordCodec{}, []record.Record{
		{Key: 1}, {Key: 2}, {Key: 2}, {Key: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := IsSorted(f, pool, recLess)
	if err != nil || !ok {
		t.Fatalf("sorted file reported unsorted (%v)", err)
	}
	g, err := stream.FromSlice(vol, pool, record.RecordCodec{}, []record.Record{
		{Key: 2}, {Key: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ok, err = IsSorted(g, pool, recLess)
	if err != nil || ok {
		t.Fatalf("unsorted file reported sorted (%v)", err)
	}
}

func TestTinyPoolFails(t *testing.T) {
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 64, MemBlocks: 2, Disks: 1})
	pool := pdm.PoolFor(vol)
	f, err := stream.FromSlice(vol, pool, record.RecordCodec{}, randRecs(10, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeSort(f, pool, recLess, nil); err == nil {
		t.Fatal("2-frame pool should be rejected")
	}
}

func TestStripedSort(t *testing.T) {
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 64, MemBlocks: 16, Disks: 4})
	pool := pdm.PoolFor(vol)
	in := randRecs(2000, 11)
	f, err := stream.FromSlice(vol, pool, record.RecordCodec{}, in)
	if err != nil {
		t.Fatal(err)
	}
	vol.Stats().Reset()
	out, err := MergeSort(f, pool, recLess, &Options{Width: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, err := stream.ToSlice(out, pool)
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, "striped", got, in)
	s := vol.Stats()
	// Striping must reduce parallel steps well below total block I/Os.
	if s.Steps*2 >= s.Total() {
		t.Fatalf("striping ineffective: steps=%d total=%d", s.Steps, s.Total())
	}
}

// Property: MergeSort output is the sorted permutation of arbitrary input,
// under both run-formation modes.
func TestQuickMergeSort(t *testing.T) {
	f := func(keys []uint16, rs bool) bool {
		if len(keys) > 800 {
			keys = keys[:800]
		}
		in := make([]record.Record, len(keys))
		for i, k := range keys {
			in[i] = record.Record{Key: uint64(k), Val: uint64(i)}
		}
		vol := pdm.MustVolume(pdm.Config{BlockBytes: 64, MemBlocks: 6, Disks: 1})
		pool := pdm.PoolFor(vol)
		file, err := stream.FromSlice(vol, pool, record.RecordCodec{}, in)
		if err != nil {
			return false
		}
		opts := &Options{}
		if rs {
			opts.RunMode = ReplacementSelection
		}
		out, err := MergeSort(file, pool, recLess, opts)
		if err != nil {
			return false
		}
		got, err := stream.ToSlice(out, pool)
		if err != nil {
			return false
		}
		want := sortedCopy(in)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return pool.InUse() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: DistributionSort agrees with MergeSort on arbitrary input.
func TestQuickDistributionMatchesMerge(t *testing.T) {
	f := func(keys []uint16) bool {
		if len(keys) > 600 {
			keys = keys[:600]
		}
		in := make([]record.Record, len(keys))
		for i, k := range keys {
			in[i] = record.Record{Key: uint64(k % 50), Val: uint64(i)} // heavy duplicates
		}
		vol := pdm.MustVolume(pdm.Config{BlockBytes: 64, MemBlocks: 6, Disks: 1})
		pool := pdm.PoolFor(vol)
		file, err := stream.FromSlice(vol, pool, record.RecordCodec{}, in)
		if err != nil {
			return false
		}
		a, err := MergeSort(file, pool, recLess, nil)
		if err != nil {
			return false
		}
		b, err := DistributionSort(file, pool, recLess, nil)
		if err != nil {
			return false
		}
		ga, _ := stream.ToSlice(a, pool)
		gb, _ := stream.ToSlice(b, pool)
		if len(ga) != len(gb) {
			return false
		}
		for i := range ga {
			if ga[i] != gb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
