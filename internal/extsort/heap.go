package extsort

// minHeap is a typed binary min-heap used on the merge and run-formation hot
// paths. It replaces container/heap, whose Push/Pop signatures box every
// element in an interface{} — one allocation per record at merge time. The
// sift algorithms mirror container/heap's exactly (same comparison and swap
// order), so element order among equal keys is unchanged.
type minHeap[T any] struct {
	items []T
	less  func(a, b T) bool
}

// Len returns the number of buffered items.
func (h *minHeap[T]) Len() int { return len(h.items) }

// Init establishes the heap invariant over h.items.
func (h *minHeap[T]) Init() {
	n := len(h.items)
	for i := n/2 - 1; i >= 0; i-- {
		h.down(i, n)
	}
}

// Push inserts x.
func (h *minHeap[T]) Push(x T) {
	h.items = append(h.items, x)
	h.up(len(h.items) - 1)
}

// Pop removes and returns the minimum item.
func (h *minHeap[T]) Pop() T {
	n := len(h.items) - 1
	h.items[0], h.items[n] = h.items[n], h.items[0]
	h.down(0, n)
	it := h.items[n]
	var zero T
	h.items[n] = zero // release references held by popped slots
	h.items = h.items[:n]
	return it
}

// Top returns the minimum item without removing it.
func (h *minHeap[T]) Top() T { return h.items[0] }

// ReplaceTop substitutes the minimum item with x and restores the invariant
// — the k-way-merge fast path (equivalent to heap.Fix(h, 0)).
func (h *minHeap[T]) ReplaceTop(x T) {
	h.items[0] = x
	h.down(0, len(h.items))
}

func (h *minHeap[T]) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !h.less(h.items[j], h.items[i]) {
			break
		}
		h.items[i], h.items[j] = h.items[j], h.items[i]
		j = i
	}
}

func (h *minHeap[T]) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h.less(h.items[j2], h.items[j1]) {
			j = j2
		}
		if !h.less(h.items[j], h.items[i]) {
			break
		}
		h.items[i], h.items[j] = h.items[j], h.items[i]
		i = j
	}
}
