package extsort

import (
	"errors"
	"testing"

	"em/internal/pdm"
	"em/internal/record"
	"em/internal/stream"
)

// TestDistributionSortNotifyFailureKeepsOutput pins the streaming emit
// mode's error contract: when the sort dies with a consumer attached, the
// partial output file comes back un-released — its announced blocks may
// still be in the consumer's hands, so freeing them inside the sort would
// let a concurrent loader reallocate and overwrite blocks mid-read. The
// caller releases once the consumer has detached, restoring every block.
func TestDistributionSortNotifyFailureKeepsOutput(t *testing.T) {
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 256, MemBlocks: 48, Disks: 2})
	pool := pdm.PoolFor(vol)
	vs := make([]record.Record, 4000)
	for i := range vs {
		vs[i] = record.Record{Key: uint64(i * 7 % 4000), Val: uint64(i)}
	}
	f, err := stream.FromSlice(vol, pool, record.RecordCodec{}, vs)
	if err != nil {
		t.Fatal(err)
	}
	preFree := pool.Free()
	preLive := vol.Allocated() - vol.FreeBlocks()

	boom := errors.New("consumer gone")
	groups := 0
	notify := func(addrs []int64, recs int) error {
		groups++
		if groups > 2 {
			return boom // the consumer walked away mid-pipeline
		}
		return nil
	}
	out, err := DistributionSortNotify(f, pool, record.Record.Less, &Options{Width: 2}, notify)
	if !errors.Is(err, boom) {
		t.Fatalf("sort error = %v, want the notify failure", err)
	}
	if out == nil {
		t.Fatal("failed streaming sort released its partial output instead of returning it")
	}
	if pool.Free() != preFree || pool.InUse() != 0 {
		t.Fatalf("pool not restored: free %d (pre %d), in use %d", pool.Free(), preFree, pool.InUse())
	}
	out.Release()
	if live := vol.Allocated() - vol.FreeBlocks(); live != preLive {
		t.Fatalf("stranded %d volume blocks after releasing the partial output", live-preLive)
	}

	// A nil notify keeps the classic contract: failures release everything.
	unsortable := pdm.NewPool(256, 3) // too small for any sort
	if out, err := DistributionSortNotify(f, unsortable, record.Record.Less, nil, nil); err == nil || out != nil {
		t.Fatalf("starved sort with nil notify returned (%v, %v), want (nil, error)", out, err)
	}
}
