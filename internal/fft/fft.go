// Package fft implements the external-memory fast Fourier transform, the
// survey's third canonical batched problem (with sorting and permuting):
// FFT(N) = Θ(Sort(N)) I/Os.
//
// The external algorithm is the classical six-step FFT: view the length-N
// input (N = r·c, both powers of two) as an r×c matrix in row-major order,
// then
//
//  1. transpose              (sort-based: O(Sort(N)) I/Os)
//  2. FFT each length-r row  (rows fit in memory: one scan)
//  3. scale by twiddle factors (same scan)
//  4. transpose back
//  5. FFT each length-c row  (one scan)
//  6. transpose to natural order
//
// for O(Sort(N)) I/Os in total whenever √N ≤ M, the case the survey treats.
// The baseline NaiveStages runs the textbook iterative butterfly network
// with one random read-modify-write per butterfly point: Θ(N·log₂N) I/Os,
// the cost of ignoring blocking entirely.
package fft

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"

	"em/internal/pdm"
	"em/internal/permute"
	"em/internal/stream"
)

// ErrBadSize reports a transform length that is not a power of two.
var ErrBadSize = errors.New("fft: length must be a power of two")

// ErrTooLarge reports an instance with √N exceeding memory, outside the
// six-step algorithm's single-level regime.
var ErrTooLarge = errors.New("fft: row length exceeds memory (√N > M)")

// Complex is a complex sample stored as two float64s.
type Complex struct {
	Re, Im float64
}

// Add returns a + b.
func (a Complex) Add(b Complex) Complex { return Complex{a.Re + b.Re, a.Im + b.Im} }

// Sub returns a - b.
func (a Complex) Sub(b Complex) Complex { return Complex{a.Re - b.Re, a.Im - b.Im} }

// Mul returns a · b.
func (a Complex) Mul(b Complex) Complex {
	return Complex{a.Re*b.Re - a.Im*b.Im, a.Re*b.Im + a.Im*b.Re}
}

// ComplexCodec encodes Complex in 16 bytes.
type ComplexCodec struct{}

// Size implements record.Codec.
func (ComplexCodec) Size() int { return 16 }

// Encode implements record.Codec.
func (ComplexCodec) Encode(b []byte, v Complex) {
	binary.LittleEndian.PutUint64(b[0:8], math.Float64bits(v.Re))
	binary.LittleEndian.PutUint64(b[8:16], math.Float64bits(v.Im))
}

// Decode implements record.Codec.
func (ComplexCodec) Decode(b []byte) Complex {
	return Complex{
		Re: math.Float64frombits(binary.LittleEndian.Uint64(b[0:8])),
		Im: math.Float64frombits(binary.LittleEndian.Uint64(b[8:16])),
	}
}

// twiddle returns e^(sign·2πi·k/n).
func twiddle(k, n int64, sign float64) Complex {
	ang := sign * 2 * math.Pi * float64(k) / float64(n)
	return Complex{math.Cos(ang), math.Sin(ang)}
}

// InMemory computes the DFT of x in place with the iterative radix-2
// algorithm (bit-reversal plus log₂n butterfly stages). sign is -1 for the
// forward transform and +1 for the inverse (unscaled).
func InMemory(x []Complex, sign float64) error {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) != 0 {
		return fmt.Errorf("%w: %d", ErrBadSize, n)
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for m := 2; m <= n; m <<= 1 {
		wm := twiddle(1, int64(m), sign)
		for base := 0; base < n; base += m {
			w := Complex{1, 0}
			for k := 0; k < m/2; k++ {
				a, b := x[base+k], x[base+k+m/2].Mul(w)
				x[base+k] = a.Add(b)
				x[base+k+m/2] = a.Sub(b)
				w = w.Mul(wm)
			}
		}
	}
	return nil
}

// splitRC chooses the row/column factorisation N = r·c with r ≤ c, both
// powers of two.
func splitRC(n int64) (r, c int64) {
	k := bits.Len64(uint64(n)) - 1
	k1 := k / 2
	return 1 << k1, 1 << (k - k1)
}

// Transform computes the DFT of f (length a power of two) with the six-step
// external algorithm in O(Sort(N)) I/Os. sign is -1 forward, +1 inverse
// (unscaled: the inverse leaves a factor N, as is conventional for raw
// butterfly networks; use Inverse for the scaled round trip).
func Transform(f *stream.File[Complex], pool *pdm.Pool, sign float64) (*stream.File[Complex], error) {
	n := f.Len()
	if n == 0 {
		out := stream.NewFile[Complex](f.Vol(), ComplexCodec{})
		return out, nil
	}
	if n&(n-1) != 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadSize, n)
	}
	if n == 1 {
		return copyComplex(f, pool)
	}
	r, c := splitRC(n)
	per := int64(f.PerBlock())
	memRecords := int64(pool.Capacity()-2) * per
	if c > memRecords {
		return nil, fmt.Errorf("%w: rows of %d records, memory holds %d", ErrTooLarge, c, memRecords)
	}

	// Step 1: transpose the r×c row-major view to c×r. An element at
	// (i, j) moves from index i·c+j to j·r+i; permute.Transposition provides
	// exactly this permutation and the sort-based permuter applies it in
	// Sort(N) I/Os.
	t1, err := permute.BySorting(f, pool, permute.Transposition(int(r), int(c)), nil)
	if err != nil {
		return nil, err
	}

	// Steps 2+3: FFT each length-r row of the c×r intermediate, then apply
	// the twiddle factor w^(i·j) to element (j, i) — one streaming pass.
	t2, err := rowFFTTwiddle(t1, pool, c, r, n, sign, true)
	if err != nil {
		return nil, err
	}
	t1.Release()

	// Step 4: transpose back to r×c.
	t3, err := permute.BySorting(t2, pool, permute.Transposition(int(c), int(r)), nil)
	if err != nil {
		return nil, err
	}
	t2.Release()

	// Step 5: FFT each length-c row, no twiddles.
	t4, err := rowFFTTwiddle(t3, pool, r, c, n, sign, false)
	if err != nil {
		return nil, err
	}
	t3.Release()

	// Step 6: final transpose delivers the spectrum in natural order.
	out, err := permute.BySorting(t4, pool, permute.Transposition(int(r), int(c)), nil)
	if err != nil {
		return nil, err
	}
	t4.Release()
	return out, nil
}

// Forward computes the forward DFT.
func Forward(f *stream.File[Complex], pool *pdm.Pool) (*stream.File[Complex], error) {
	return Transform(f, pool, -1)
}

// Inverse computes the inverse DFT, scaled by 1/N so that
// Inverse(Forward(x)) = x.
func Inverse(f *stream.File[Complex], pool *pdm.Pool) (*stream.File[Complex], error) {
	raw, err := Transform(f, pool, +1)
	if err != nil {
		return nil, err
	}
	n := float64(raw.Len())
	if n == 0 {
		return raw, nil
	}
	out := stream.NewFile[Complex](raw.Vol(), ComplexCodec{})
	w, err := stream.NewWriter(out, pool)
	if err != nil {
		return nil, err
	}
	if err := stream.ForEach(raw, pool, func(v Complex) error {
		return w.Append(Complex{v.Re / n, v.Im / n})
	}); err != nil {
		w.Close()
		return nil, err
	}
	raw.Release()
	return out, w.Close()
}

// rowFFTTwiddle streams a rows×cols row-major file, FFTs each row in
// memory, and (when twiddles is set) multiplies element (rowIdx, k) by
// w_n^(rowIdx·k) — the fused steps 2+3 of the six-step algorithm. Each row
// is at most M records by the caller's check.
func rowFFTTwiddle(f *stream.File[Complex], pool *pdm.Pool, rows, cols, n int64, sign float64, twiddles bool) (*stream.File[Complex], error) {
	out := stream.NewFile[Complex](f.Vol(), ComplexCodec{})
	w, err := stream.NewWriter(out, pool)
	if err != nil {
		return nil, err
	}
	r, err := stream.NewReader(f, pool)
	if err != nil {
		w.Close()
		return nil, err
	}
	defer r.Close()
	row := make([]Complex, cols)
	for i := int64(0); i < rows; i++ {
		for j := int64(0); j < cols; j++ {
			v, ok, err := r.Next()
			if err != nil || !ok {
				w.Close()
				return nil, fmt.Errorf("fft: input ended at row %d col %d (err=%v)", i, j, err)
			}
			row[j] = v
		}
		if err := InMemory(row, sign); err != nil {
			w.Close()
			return nil, err
		}
		for j := int64(0); j < cols; j++ {
			v := row[j]
			if twiddles {
				v = v.Mul(twiddle(i*j%n, n, sign))
			}
			if err := w.Append(v); err != nil {
				w.Close()
				return nil, err
			}
		}
	}
	return out, w.Close()
}

// copyComplex duplicates a file with one scan.
func copyComplex(f *stream.File[Complex], pool *pdm.Pool) (*stream.File[Complex], error) {
	out := stream.NewFile[Complex](f.Vol(), ComplexCodec{})
	w, err := stream.NewWriter(out, pool)
	if err != nil {
		return nil, err
	}
	if err := stream.ForEach(f, pool, func(v Complex) error { return w.Append(v) }); err != nil {
		w.Close()
		return nil, err
	}
	return out, w.Close()
}

// NaiveStages runs the iterative butterfly network directly on disk with
// one random read-modify-write pair per butterfly: Θ(N·log₂N) I/Os — the
// survey's point of contrast for the blocked algorithm. sign as in
// Transform.
func NaiveStages(f *stream.File[Complex], pool *pdm.Pool, sign float64) (*stream.File[Complex], error) {
	n := f.Len()
	if n == 0 {
		out := stream.NewFile[Complex](f.Vol(), ComplexCodec{})
		return out, nil
	}
	if n&(n-1) != 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadSize, n)
	}
	// Bit-reversal permutation first (naively, one record at a time, like
	// the in-memory algorithm's swap loop).
	perm, err := permute.BitReversal(int(n))
	if err != nil {
		return nil, err
	}
	work, err := permute.Naive(f, pool, perm)
	if err != nil {
		return nil, err
	}
	for m := int64(2); m <= n; m <<= 1 {
		wm := twiddle(1, m, sign)
		for base := int64(0); base < n; base += m {
			w := Complex{1, 0}
			for k := int64(0); k < m/2; k++ {
				a, err := stream.ReadRecordAt(work, pool, base+k)
				if err != nil {
					return nil, err
				}
				b, err := stream.ReadRecordAt(work, pool, base+k+m/2)
				if err != nil {
					return nil, err
				}
				b = b.Mul(w)
				if err := stream.WriteRecordAt(work, pool, base+k, a.Add(b)); err != nil {
					return nil, err
				}
				if err := stream.WriteRecordAt(work, pool, base+k+m/2, a.Sub(b)); err != nil {
					return nil, err
				}
				w = w.Mul(wm)
			}
		}
	}
	return work, nil
}
