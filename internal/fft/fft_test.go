package fft

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"em/internal/pdm"
	"em/internal/stream"
)

func newEnv(t testing.TB, memBlocks int) (*pdm.Volume, *pdm.Pool) {
	t.Helper()
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 256, MemBlocks: memBlocks, Disks: 1})
	return vol, pdm.PoolFor(vol)
}

// dftRef is the O(N²) definition of the DFT, the ground truth.
func dftRef(x []Complex, sign float64) []Complex {
	n := len(x)
	out := make([]Complex, n)
	for k := 0; k < n; k++ {
		var acc Complex
		for m := 0; m < n; m++ {
			acc = acc.Add(x[m].Mul(twiddle(int64(m*k%n), int64(n), sign)))
		}
		out[k] = acc
	}
	return out
}

func randomSignal(rng *rand.Rand, n int) []Complex {
	x := make([]Complex, n)
	for i := range x {
		x[i] = Complex{rng.NormFloat64(), rng.NormFloat64()}
	}
	return x
}

func maxErr(a, b []Complex) float64 {
	m := 0.0
	for i := range a {
		m = math.Max(m, math.Abs(a[i].Re-b[i].Re))
		m = math.Max(m, math.Abs(a[i].Im-b[i].Im))
	}
	return m
}

func TestComplexCodecRoundTrip(t *testing.T) {
	c := ComplexCodec{}
	f := func(re, im float64) bool {
		b := make([]byte, c.Size())
		c.Encode(b, Complex{re, im})
		got := c.Decode(b)
		return got == Complex{re, im}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestComplexArithmetic(t *testing.T) {
	a, b := Complex{1, 2}, Complex{3, -1}
	if got := a.Add(b); got != (Complex{4, 1}) {
		t.Fatalf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Complex{-2, 3}) {
		t.Fatalf("Sub = %v", got)
	}
	// (1+2i)(3-i) = 3 - i + 6i - 2i² = 5 + 5i
	if got := a.Mul(b); got != (Complex{5, 5}) {
		t.Fatalf("Mul = %v", got)
	}
}

func TestInMemoryMatchesDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 4, 8, 32, 128} {
		x := randomSignal(rng, n)
		want := dftRef(x, -1)
		got := append([]Complex(nil), x...)
		if err := InMemory(got, -1); err != nil {
			t.Fatal(err)
		}
		if e := maxErr(got, want); e > 1e-9 {
			t.Fatalf("n=%d: max error %g", n, e)
		}
	}
}

func TestInMemoryRejectsNonPowerOfTwo(t *testing.T) {
	if err := InMemory(make([]Complex, 12), -1); err == nil {
		t.Fatal("length 12 accepted")
	}
}

func TestExternalMatchesDefinitionSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{2, 4, 16, 64, 256} {
		vol, pool := newEnv(t, 12)
		x := randomSignal(rng, n)
		f, err := stream.FromSlice(vol, pool, ComplexCodec{}, x)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Forward(f, pool)
		if err != nil {
			t.Fatal(err)
		}
		got, err := stream.ToSlice(out, pool)
		if err != nil {
			t.Fatal(err)
		}
		want := dftRef(x, -1)
		if e := maxErr(got, want); e > 1e-8 {
			t.Fatalf("n=%d: max error %g", n, e)
		}
		if pool.InUse() != 0 {
			t.Fatalf("leaked %d frames", pool.InUse())
		}
	}
}

func TestExternalMatchesInMemoryLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 1 << 12
	vol, pool := newEnv(t, 16) // memory: 16 blocks · 16 records = 256 ≥ √N = 64
	x := randomSignal(rng, n)
	f, err := stream.FromSlice(vol, pool, ComplexCodec{}, x)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Forward(f, pool)
	if err != nil {
		t.Fatal(err)
	}
	got, err := stream.ToSlice(out, pool)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]Complex(nil), x...)
	if err := InMemory(want, -1); err != nil {
		t.Fatal(err)
	}
	if e := maxErr(got, want); e > 1e-7 {
		t.Fatalf("max error %g", e)
	}
}

func TestForwardInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 1 << 10
	vol, pool := newEnv(t, 16)
	x := randomSignal(rng, n)
	f, err := stream.FromSlice(vol, pool, ComplexCodec{}, x)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := Forward(f, pool)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Inverse(fw, pool)
	if err != nil {
		t.Fatal(err)
	}
	got, err := stream.ToSlice(back, pool)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxErr(got, x); e > 1e-9 {
		t.Fatalf("round trip error %g", e)
	}
}

func TestParseval(t *testing.T) {
	// Σ|x|² = (1/N)·Σ|X|², a global invariant that catches twiddle bugs.
	rng := rand.New(rand.NewSource(9))
	n := 1 << 8
	vol, pool := newEnv(t, 12)
	x := randomSignal(rng, n)
	f, _ := stream.FromSlice(vol, pool, ComplexCodec{}, x)
	out, err := Forward(f, pool)
	if err != nil {
		t.Fatal(err)
	}
	X, _ := stream.ToSlice(out, pool)
	var ex, eX float64
	for i := range x {
		ex += x[i].Re*x[i].Re + x[i].Im*x[i].Im
		eX += X[i].Re*X[i].Re + X[i].Im*X[i].Im
	}
	if math.Abs(ex-eX/float64(n)) > 1e-6*ex {
		t.Fatalf("Parseval violated: %g vs %g", ex, eX/float64(n))
	}
}

func TestImpulseAndConstant(t *testing.T) {
	vol, pool := newEnv(t, 12)
	n := 64
	// Impulse -> flat spectrum of ones.
	imp := make([]Complex, n)
	imp[0] = Complex{1, 0}
	f, _ := stream.FromSlice(vol, pool, ComplexCodec{}, imp)
	out, err := Forward(f, pool)
	if err != nil {
		t.Fatal(err)
	}
	X, _ := stream.ToSlice(out, pool)
	for k, v := range X {
		if math.Abs(v.Re-1) > 1e-9 || math.Abs(v.Im) > 1e-9 {
			t.Fatalf("impulse spectrum[%d] = %v", k, v)
		}
	}
	// Constant -> impulse at DC of height n.
	con := make([]Complex, n)
	for i := range con {
		con[i] = Complex{1, 0}
	}
	f2, _ := stream.FromSlice(vol, pool, ComplexCodec{}, con)
	out2, err := Forward(f2, pool)
	if err != nil {
		t.Fatal(err)
	}
	X2, _ := stream.ToSlice(out2, pool)
	if math.Abs(X2[0].Re-float64(n)) > 1e-9 {
		t.Fatalf("DC = %v, want %d", X2[0], n)
	}
	for k := 1; k < n; k++ {
		if math.Abs(X2[k].Re) > 1e-9 || math.Abs(X2[k].Im) > 1e-9 {
			t.Fatalf("constant spectrum[%d] = %v, want 0", k, X2[k])
		}
	}
}

func TestTransformRejectsBadInput(t *testing.T) {
	vol, pool := newEnv(t, 12)
	rng := rand.New(rand.NewSource(11))
	f, _ := stream.FromSlice(vol, pool, ComplexCodec{}, randomSignal(rng, 12))
	if _, err := Forward(f, pool); err == nil {
		t.Error("length 12 accepted")
	}
	// √N beyond memory must be rejected, not silently spilled.
	tiny := pdm.NewPool(256, 3)
	big, _ := stream.FromSlice(vol, pool, ComplexCodec{}, randomSignal(rng, 1<<12))
	if _, err := Transform(big, tiny, -1); err == nil {
		t.Error("√N > M accepted")
	}
}

func TestNaiveStagesMatchesDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	vol, pool := newEnv(t, 12)
	n := 64
	x := randomSignal(rng, n)
	f, _ := stream.FromSlice(vol, pool, ComplexCodec{}, x)
	out, err := NaiveStages(f, pool, -1)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := stream.ToSlice(out, pool)
	want := dftRef(x, -1)
	if e := maxErr(got, want); e > 1e-9 {
		t.Fatalf("max error %g", e)
	}
}

func TestSixStepBeatsNaiveOnIOs(t *testing.T) {
	// The F7 shape: six-step ≈ Sort(N) ≪ naive butterflies Θ(N log N).
	rng := rand.New(rand.NewSource(15))
	n := 1 << 10
	x := randomSignal(rng, n)

	vol, pool := newEnv(t, 16)
	f, _ := stream.FromSlice(vol, pool, ComplexCodec{}, x)
	vol.Stats().Reset()
	out, err := Forward(f, pool)
	if err != nil {
		t.Fatal(err)
	}
	sixIOs := vol.Stats().Total()
	out.Release()

	vol2, pool2 := newEnv(t, 16)
	f2, _ := stream.FromSlice(vol2, pool2, ComplexCodec{}, x)
	vol2.Stats().Reset()
	out2, err := NaiveStages(f2, pool2, -1)
	if err != nil {
		t.Fatal(err)
	}
	naiveIOs := vol2.Stats().Total()
	out2.Release()

	if sixIOs*10 > naiveIOs {
		t.Fatalf("six-step %d I/Os vs naive %d: expected ≥10x advantage", sixIOs, naiveIOs)
	}
	t.Logf("six-step=%d naive=%d (%.0fx)", sixIOs, naiveIOs, float64(naiveIOs)/float64(sixIOs))
}

// Property: forward-then-inverse is the identity for arbitrary signals and
// power-of-two sizes.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw) % 9 // n up to 256
		n := 1 << k
		rng := rand.New(rand.NewSource(seed))
		x := randomSignal(rng, n)
		vol := pdm.MustVolume(pdm.Config{BlockBytes: 256, MemBlocks: 12, Disks: 1})
		pool := pdm.PoolFor(vol)
		ff, err := stream.FromSlice(vol, pool, ComplexCodec{}, x)
		if err != nil {
			return false
		}
		fw, err := Forward(ff, pool)
		if err != nil {
			return false
		}
		back, err := Inverse(fw, pool)
		if err != nil {
			return false
		}
		got, err := stream.ToSlice(back, pool)
		if err != nil {
			return false
		}
		return maxErr(got, x) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
