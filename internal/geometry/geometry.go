// Package geometry implements the distribution-sweep paradigm on the
// survey's flagship batched geometric problem: orthogonal segment
// intersection. Given N axis-parallel segments, report every
// horizontal/vertical crossing pair in O(Sort(N) + Z/B) I/Os, where Z is
// the output size — versus the Θ(N²/B) blockwise all-pairs baseline
// (experiment T8).
//
// The sweep divides the x-range into Θ(m) slabs, sweeps the y-sorted event
// stream downward once per recursion level, keeps one active list of
// vertical segments per slab, and reports a horizontal segment against every
// slab it completely spans; the partial end pieces recurse inside their end
// slabs. Each vertical segment is written once per level and each scan
// element either produces output or is expired, which is what gives the
// output-sensitive bound.
package geometry

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"em/internal/extsort"
	"em/internal/pdm"
	"em/internal/record"
	"em/internal/stream"
)

// ErrBadSegment reports a degenerate segment.
var ErrBadSegment = errors.New("geometry: malformed segment")

// Segment is an axis-parallel segment with an integer identity. Horizontal
// segments run (X1,Y)-(X2,Y) with X1 <= X2; vertical segments run
// (X1,Y)-(X1,Y2) with Y <= Y2 and X2 unused.
type Segment struct {
	ID       int64
	Vertical bool
	X1, X2   float64 // for vertical segments X2 == X1
	Y, Y2    float64 // horizontal: Y only; vertical: low Y and high Y2
}

// SegmentCodec encodes Segment in 41 bytes.
type SegmentCodec struct{}

// Size implements record.Codec.
func (SegmentCodec) Size() int { return 41 }

// Encode implements record.Codec.
func (SegmentCodec) Encode(b []byte, s Segment) {
	binary.LittleEndian.PutUint64(b[0:8], uint64(s.ID))
	if s.Vertical {
		b[8] = 1
	} else {
		b[8] = 0
	}
	binary.LittleEndian.PutUint64(b[9:17], math.Float64bits(s.X1))
	binary.LittleEndian.PutUint64(b[17:25], math.Float64bits(s.X2))
	binary.LittleEndian.PutUint64(b[25:33], math.Float64bits(s.Y))
	binary.LittleEndian.PutUint64(b[33:41], math.Float64bits(s.Y2))
}

// Decode implements record.Codec.
func (SegmentCodec) Decode(b []byte) Segment {
	return Segment{
		ID:       int64(binary.LittleEndian.Uint64(b[0:8])),
		Vertical: b[8] == 1,
		X1:       math.Float64frombits(binary.LittleEndian.Uint64(b[9:17])),
		X2:       math.Float64frombits(binary.LittleEndian.Uint64(b[17:25])),
		Y:        math.Float64frombits(binary.LittleEndian.Uint64(b[25:33])),
		Y2:       math.Float64frombits(binary.LittleEndian.Uint64(b[33:41])),
	}
}

// Horizontal constructs a horizontal segment.
func Horizontal(id int64, x1, x2, y float64) Segment {
	if x1 > x2 {
		x1, x2 = x2, x1
	}
	return Segment{ID: id, X1: x1, X2: x2, Y: y}
}

// Vertical constructs a vertical segment.
func Vertical(id int64, x, y1, y2 float64) Segment {
	if y1 > y2 {
		y1, y2 = y2, y1
	}
	return Segment{ID: id, Vertical: true, X1: x, X2: x, Y: y1, Y2: y2}
}

// crosses reports whether horizontal h and vertical v intersect (closed
// segments).
func crosses(h, v Segment) bool {
	return v.X1 >= h.X1 && v.X1 <= h.X2 && h.Y >= v.Y && h.Y <= v.Y2
}

// Validate checks a segment's invariants.
func (s Segment) Validate() error {
	if s.Vertical {
		if s.Y > s.Y2 {
			return fmt.Errorf("%w: vertical with Y %g > Y2 %g", ErrBadSegment, s.Y, s.Y2)
		}
		return nil
	}
	if s.X1 > s.X2 {
		return fmt.Errorf("%w: horizontal with X1 %g > X2 %g", ErrBadSegment, s.X1, s.X2)
	}
	return nil
}

// NaiveIntersections is the blockwise all-pairs baseline: every horizontal
// is tested against every vertical, Θ((N_h·N_v)/B²·B) = Θ(N²/B) I/Os once
// neither side fits in memory. Pairs are emitted as (horizontalID,
// verticalID).
func NaiveIntersections(segs *stream.File[Segment], pool *pdm.Pool) (*stream.File[record.Pair], error) {
	vol := segs.Vol()
	hs := stream.NewFile[Segment](vol, SegmentCodec{})
	vs := stream.NewFile[Segment](vol, SegmentCodec{})
	hw, err := stream.NewWriter(hs, pool)
	if err != nil {
		return nil, err
	}
	vw, err := stream.NewWriter(vs, pool)
	if err != nil {
		hw.Close()
		return nil, err
	}
	if err := stream.ForEach(segs, pool, func(s Segment) error {
		if s.Vertical {
			return vw.Append(s)
		}
		return hw.Append(s)
	}); err != nil {
		hw.Close()
		vw.Close()
		return nil, err
	}
	if err := hw.Close(); err != nil {
		vw.Close()
		return nil, err
	}
	if err := vw.Close(); err != nil {
		return nil, err
	}

	out := stream.NewFile[record.Pair](vol, record.PairCodec{})
	ow, err := stream.NewWriter(out, pool)
	if err != nil {
		return nil, err
	}
	// For each horizontal, rescan all verticals: the quadratic baseline.
	err = stream.ForEach(hs, pool, func(h Segment) error {
		return stream.ForEach(vs, pool, func(v Segment) error {
			if crosses(h, v) {
				return ow.Append(record.Pair{A: h.ID, B: v.ID})
			}
			return nil
		})
	})
	if err != nil {
		ow.Close()
		return nil, err
	}
	hs.Release()
	vs.Release()
	return out, ow.Close()
}

// Intersections runs the distribution sweep, emitting every crossing
// (horizontalID, verticalID) pair in O(Sort(N) + Z/B) I/Os.
func Intersections(segs *stream.File[Segment], pool *pdm.Pool) (*stream.File[record.Pair], error) {
	vol := segs.Vol()
	out := stream.NewFile[record.Pair](vol, record.PairCodec{})
	ow, err := stream.NewWriter(out, pool)
	if err != nil {
		return nil, err
	}
	// Events sorted by descending y. A vertical segment's event is its top
	// endpoint (Y2); a horizontal's event is its y. Verticals sort before
	// horizontals at equal y so a vertical is active when a collinear
	// horizontal arrives (closed-segment semantics).
	sorted, err := extsort.MergeSort(segs, pool, eventLess, nil)
	if err != nil {
		ow.Close()
		return nil, err
	}
	ds := &sweeper{vol: vol, pool: pool, out: ow}
	if err := ds.sweep(sorted, math.Inf(-1), math.Inf(1)); err != nil {
		ow.Close()
		return nil, err
	}
	sorted.Release()
	if err := ow.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// eventLess orders segments by descending event y, verticals first on ties.
func eventLess(a, b Segment) bool {
	ay, by := eventY(a), eventY(b)
	if ay != by {
		return ay > by
	}
	if a.Vertical != b.Vertical {
		return a.Vertical
	}
	return a.ID < b.ID
}

func eventY(s Segment) float64 {
	if s.Vertical {
		return s.Y2
	}
	return s.Y
}

type sweeper struct {
	vol  *pdm.Volume
	pool *pdm.Pool
	out  *stream.Writer[record.Pair]
}

// memRecords is the base-case threshold in segments.
func (d *sweeper) memRecords() int {
	per := d.vol.BlockBytes() / (SegmentCodec{}).Size()
	if per < 1 {
		per = 1
	}
	n := (d.pool.Free() - 4) * per
	if n < 4 {
		n = 4
	}
	return n
}

// fanOut is the slab count per level: each slab needs an active-list writer
// frame plus one recursion file writer frame when repartitioning, but those
// phases are sequential, so the budget is shared.
func (d *sweeper) fanOut() int {
	f := (d.pool.Free() - 4) / 2
	if f < 2 {
		f = 2
	}
	return f
}

// sweep processes the y-sorted event file evs restricted to x-range
// [xlo, xhi). It consumes (releases) evs.
func (d *sweeper) sweep(evs *stream.File[Segment], xlo, xhi float64) error {
	if evs.Len() <= int64(d.memRecords()) {
		return d.baseCase(evs)
	}
	// Choose slab boundaries from the x-coordinates of the verticals (and
	// horizontal endpoints) by sampling.
	bounds, err := d.slabBounds(evs, xlo, xhi)
	if err != nil {
		return err
	}
	nSlabs := len(bounds) + 1
	if nSlabs < 2 {
		// No usable splitters (all x equal): fall back to the in-memory
		// sweep in chunks — degenerate inputs have all verticals at one x,
		// so a y-ordered scan with one active list suffices.
		return d.baseCase(evs)
	}
	// Slab i covers the half-open x-range [boundary(i-1), boundary(i)).
	slabOf := func(x float64) int {
		return sort.Search(len(bounds), func(i int) bool { return x < bounds[i] })
	}

	// Per-slab active list of verticals and per-slab recursion event file.
	// Both writer sets stay open for the whole pass — 2·nSlabs frames, which
	// is what caps fanOut at half the free budget.
	active := make([]*stream.File[Segment], nSlabs)
	recurse := make([]*stream.File[Segment], nSlabs)
	aw := make([]*stream.Writer[Segment], nSlabs)
	rw := make([]*stream.Writer[Segment], nSlabs)
	closeAll := func() {
		for _, w := range aw {
			if w != nil {
				w.Close()
			}
		}
		for _, w := range rw {
			if w != nil {
				w.Close()
			}
		}
	}
	for i := 0; i < nSlabs; i++ {
		active[i] = stream.NewFile[Segment](d.vol, SegmentCodec{})
		recurse[i] = stream.NewFile[Segment](d.vol, SegmentCodec{})
		w, err := stream.NewWriter(active[i], d.pool)
		if err != nil {
			closeAll()
			return err
		}
		aw[i] = w
		w, err = stream.NewWriter(recurse[i], d.pool)
		if err != nil {
			closeAll()
			return err
		}
		rw[i] = w
	}

	err = stream.ForEach(evs, d.pool, func(s Segment) error {
		if s.Vertical {
			slab := slabOf(s.X1)
			if err := aw[slab].Append(s); err != nil {
				return err
			}
			return rw[slab].Append(s)
		}
		// Horizontal: slabs fully spanned are reported here; end slabs
		// recurse.
		lo, hi := slabOf(s.X1), slabOf(s.X2)
		for slab := lo; slab <= hi; slab++ {
			slabLo := xlo
			if slab > 0 {
				slabLo = bounds[slab-1]
			}
			slabHi := xhi
			if slab < len(bounds) {
				slabHi = bounds[slab]
			}
			full := s.X1 <= slabLo && s.X2 >= slabHi
			if full {
				// Flush the slab's active writer so the report scan sees
				// every buffered vertical, then reopen it on the rewritten
				// list. O(1) extra I/Os charged to this horizontal.
				if err := aw[slab].Close(); err != nil {
					return err
				}
				aw[slab] = nil
				if err := d.reportSlab(active[slab], s); err != nil {
					return err
				}
				w, err := stream.NewWriter(active[slab], d.pool)
				if err != nil {
					return err
				}
				aw[slab] = w
			} else if err := rw[slab].Append(s); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		closeAll()
		return err
	}
	for i := 0; i < nSlabs; i++ {
		if err := aw[i].Close(); err != nil {
			return err
		}
		aw[i] = nil
		if err := rw[i].Close(); err != nil {
			return err
		}
		rw[i] = nil
	}
	for i := 0; i < nSlabs; i++ {
		active[i].Release()
		slabLo := xlo
		if i > 0 {
			slabLo = bounds[i-1]
		}
		slabHi := xhi
		if i < len(bounds) {
			slabHi = bounds[i]
		}
		// Guard against non-shrinking recursion (degenerate splits).
		if recurse[i].Len() >= evs.Len() {
			if err := d.baseCase(recurse[i]); err != nil {
				return err
			}
			continue
		}
		if err := d.sweep(recurse[i], slabLo, slabHi); err != nil {
			return err
		}
	}
	evs.Release()
	return nil
}

// reportSlab scans a slab's active list, reporting verticals that still
// span the horizontal's y and lazily expiring dead ones by rewriting the
// list. Each scanned element either reports an intersection or is expired,
// giving the amortised O(Z/B) bound.
func (d *sweeper) reportSlab(act *stream.File[Segment], h Segment) error {
	if act.Len() == 0 {
		return nil
	}
	kept := stream.NewFile[Segment](d.vol, SegmentCodec{})
	kw, err := stream.NewWriter(kept, d.pool)
	if err != nil {
		return err
	}
	err = stream.ForEach(act, d.pool, func(v Segment) error {
		if v.Y > h.Y { // vertical ended above the sweep line: expire
			return nil
		}
		if err := d.out.Append(record.Pair{A: h.ID, B: v.ID}); err != nil {
			return err
		}
		return kw.Append(v)
	})
	if err != nil {
		kw.Close()
		return err
	}
	if err := kw.Close(); err != nil {
		return err
	}
	act.Release()
	*act = *kept
	return nil
}

// slabBounds samples x-coordinates and returns up to fanOut-1 distinct
// interior boundaries within (xlo, xhi).
func (d *sweeper) slabBounds(evs *stream.File[Segment], xlo, xhi float64) ([]float64, error) {
	target := d.fanOut() - 1
	sampleCap := 8 * (target + 1)
	var xs []float64
	seen := 0
	err := stream.ForEach(evs, d.pool, func(s Segment) error {
		x := s.X1
		seen++
		if len(xs) < sampleCap {
			xs = append(xs, x)
		} else if j := seen % sampleCap; j < sampleCap { // deterministic thinning
			xs[(seen*2654435761)%sampleCap] = x
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Float64s(xs)
	var bounds []float64
	for i := 1; i <= target; i++ {
		b := xs[i*len(xs)/(target+1)]
		if b <= xlo || b >= xhi {
			continue
		}
		if len(bounds) == 0 || b > bounds[len(bounds)-1] {
			bounds = append(bounds, b)
		}
	}
	return bounds, nil
}

// baseCase solves a memory-sized instance with an in-memory sweep.
func (d *sweeper) baseCase(evs *stream.File[Segment]) error {
	segs, err := stream.ToSlice(evs, d.pool)
	if err != nil {
		return err
	}
	evs.Release()
	sort.Slice(segs, func(i, j int) bool { return eventLess(segs[i], segs[j]) })
	// Active verticals ordered by x (slice scan; instance is memory-sized).
	var active []Segment
	for _, s := range segs {
		if s.Vertical {
			active = append(active, s)
			continue
		}
		keep := active[:0]
		for _, v := range active {
			if v.Y > s.Y {
				continue // expired
			}
			keep = append(keep, v)
			if crosses(s, v) {
				if err := d.out.Append(record.Pair{A: s.ID, B: v.ID}); err != nil {
					return err
				}
			}
		}
		active = keep
	}
	return nil
}
