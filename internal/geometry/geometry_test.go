package geometry

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"em/internal/pdm"
	"em/internal/record"
	"em/internal/stream"
)

func testVolume(t testing.TB, memBlocks int) (*pdm.Volume, *pdm.Pool) {
	t.Helper()
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 512, MemBlocks: memBlocks, Disks: 1})
	return vol, pdm.PoolFor(vol)
}

// randomSegments generates nh horizontal and nv vertical segments with
// coordinates drawn from a small integer grid so intersections are common.
func randomSegments(rng *rand.Rand, nh, nv int, span float64) []Segment {
	segs := make([]Segment, 0, nh+nv)
	id := int64(0)
	for i := 0; i < nh; i++ {
		x1 := rng.Float64() * span
		x2 := x1 + rng.Float64()*span/4
		y := rng.Float64() * span
		segs = append(segs, Horizontal(id, x1, x2, y))
		id++
	}
	for i := 0; i < nv; i++ {
		x := rng.Float64() * span
		y1 := rng.Float64() * span
		y2 := y1 + rng.Float64()*span/4
		segs = append(segs, Vertical(id, x, y1, y2))
		id++
	}
	return segs
}

// referenceIntersections computes crossings by brute force in memory.
func referenceIntersections(segs []Segment) []record.Pair {
	var out []record.Pair
	for _, h := range segs {
		if h.Vertical {
			continue
		}
		for _, v := range segs {
			if !v.Vertical {
				continue
			}
			if crosses(h, v) {
				out = append(out, record.Pair{A: h.ID, B: v.ID})
			}
		}
	}
	sortPairs(out)
	return out
}

func sortPairs(ps []record.Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].A != ps[j].A {
			return ps[i].A < ps[j].A
		}
		return ps[i].B < ps[j].B
	})
}

func runSweep(t *testing.T, segs []Segment, memBlocks int) []record.Pair {
	t.Helper()
	vol, pool := testVolume(t, memBlocks)
	f, err := stream.FromSlice(vol, pool, SegmentCodec{}, segs)
	if err != nil {
		t.Fatalf("FromSlice: %v", err)
	}
	out, err := Intersections(f, pool)
	if err != nil {
		t.Fatalf("Intersections: %v", err)
	}
	got, err := stream.ToSlice(out, pool)
	if err != nil {
		t.Fatalf("ToSlice: %v", err)
	}
	if pool.InUse() != 0 {
		t.Fatalf("frame leak: %d frames still in use", pool.InUse())
	}
	sortPairs(got)
	return got
}

func pairsEqual(a, b []record.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSegmentCodecRoundTrip(t *testing.T) {
	c := SegmentCodec{}
	f := func(id int64, vert bool, x1, x2, y, y2 float64) bool {
		s := Segment{ID: id, Vertical: vert, X1: x1, X2: x2, Y: y, Y2: y2}
		b := make([]byte, c.Size())
		c.Encode(b, s)
		return c.Decode(b) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConstructorsNormalise(t *testing.T) {
	h := Horizontal(1, 5, 2, 3)
	if h.X1 != 2 || h.X2 != 5 {
		t.Fatalf("Horizontal did not swap endpoints: %+v", h)
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	v := Vertical(2, 1, 9, 4)
	if v.Y != 4 || v.Y2 != 9 {
		t.Fatalf("Vertical did not swap endpoints: %+v", v)
	}
	if err := v.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	bad := Segment{ID: 1, Vertical: true, Y: 5, Y2: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for inverted vertical")
	}
	bad = Segment{ID: 2, X1: 9, X2: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for inverted horizontal")
	}
}

func TestCrosses(t *testing.T) {
	h := Horizontal(0, 0, 10, 5)
	cases := []struct {
		v    Segment
		want bool
	}{
		{Vertical(1, 5, 0, 10), true},   // clean crossing
		{Vertical(2, 0, 0, 10), true},   // touches left endpoint
		{Vertical(3, 10, 0, 10), true},  // touches right endpoint
		{Vertical(4, 5, 5, 10), true},   // vertical starts exactly on h
		{Vertical(5, 5, 0, 5), true},    // vertical ends exactly on h
		{Vertical(6, 11, 0, 10), false}, // right of h
		{Vertical(7, 5, 6, 10), false},  // above h
		{Vertical(8, 5, 0, 4), false},   // below h
	}
	for _, c := range cases {
		if got := crosses(h, c.v); got != c.want {
			t.Errorf("crosses(h, %+v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestIntersectionsTiny(t *testing.T) {
	segs := []Segment{
		Horizontal(0, 0, 10, 5),
		Vertical(1, 5, 0, 10),
		Vertical(2, 20, 0, 10),
	}
	got := runSweep(t, segs, 16)
	want := []record.Pair{{A: 0, B: 1}}
	if !pairsEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestIntersectionsEmptyAndSingle(t *testing.T) {
	if got := runSweep(t, nil, 8); len(got) != 0 {
		t.Fatalf("empty input produced %v", got)
	}
	if got := runSweep(t, []Segment{Horizontal(0, 0, 1, 0)}, 8); len(got) != 0 {
		t.Fatalf("single horizontal produced %v", got)
	}
	if got := runSweep(t, []Segment{Vertical(0, 0, 0, 1)}, 8); len(got) != 0 {
		t.Fatalf("single vertical produced %v", got)
	}
}

func TestIntersectionsMatchesReferenceInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	segs := randomSegments(rng, 40, 40, 50)
	got := runSweep(t, segs, 64) // large memory: base case path
	want := referenceIntersections(segs)
	if !pairsEqual(got, want) {
		t.Fatalf("got %d pairs, want %d", len(got), len(want))
	}
}

func TestIntersectionsMatchesReferenceExternal(t *testing.T) {
	// Small memory forces recursion through the distribution sweep.
	rng := rand.New(rand.NewSource(11))
	segs := randomSegments(rng, 300, 300, 100)
	got := runSweep(t, segs, 12)
	want := referenceIntersections(segs)
	if !pairsEqual(got, want) {
		t.Fatalf("sweep disagrees with reference: got %d pairs, want %d", len(got), len(want))
	}
}

func TestIntersectionsDegenerateSharedX(t *testing.T) {
	// Every vertical at the same x: splitter selection degenerates, the
	// sweeper must fall back without looping forever.
	var segs []Segment
	for i := 0; i < 200; i++ {
		segs = append(segs, Vertical(int64(i), 5, float64(i), float64(i+3)))
	}
	for i := 0; i < 200; i++ {
		segs = append(segs, Horizontal(int64(1000+i), 0, 10, float64(i)+0.5))
	}
	got := runSweep(t, segs, 10)
	want := referenceIntersections(segs)
	if !pairsEqual(got, want) {
		t.Fatalf("degenerate input: got %d pairs, want %d", len(got), len(want))
	}
}

func TestIntersectionsCollinearTouching(t *testing.T) {
	// Horizontal collinear with vertical endpoints (closed-segment semantics:
	// touching counts).
	segs := []Segment{
		Horizontal(0, 0, 10, 5),
		Vertical(1, 3, 5, 9),  // bottom endpoint on h
		Vertical(2, 7, 1, 5),  // top endpoint on h
		Vertical(3, 10, 5, 6), // corner touch at (10,5)
	}
	got := runSweep(t, segs, 16)
	want := referenceIntersections(segs)
	if !pairsEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestNaiveMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	segs := randomSegments(rng, 30, 30, 40)
	vol, pool := testVolume(t, 16)
	f, err := stream.FromSlice(vol, pool, SegmentCodec{}, segs)
	if err != nil {
		t.Fatal(err)
	}
	out, err := NaiveIntersections(f, pool)
	if err != nil {
		t.Fatal(err)
	}
	got, err := stream.ToSlice(out, pool)
	if err != nil {
		t.Fatal(err)
	}
	sortPairs(got)
	want := referenceIntersections(segs)
	if !pairsEqual(got, want) {
		t.Fatalf("naive: got %d pairs, want %d", len(got), len(want))
	}
	if pool.InUse() != 0 {
		t.Fatalf("frame leak: %d in use", pool.InUse())
	}
}

func TestSweepRandomisedAgainstNaiveProperty(t *testing.T) {
	// Property: for arbitrary random instances and several memory budgets,
	// sweep output == naive output as a multiset.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 8; trial++ {
		nh := 20 + rng.Intn(150)
		nv := 20 + rng.Intn(150)
		segs := randomSegments(rng, nh, nv, 60)
		mem := []int{10, 16, 48}[trial%3]
		got := runSweep(t, segs, mem)
		want := referenceIntersections(segs)
		if !pairsEqual(got, want) {
			t.Fatalf("trial %d (nh=%d nv=%d mem=%d): got %d pairs, want %d",
				trial, nh, nv, mem, len(got), len(want))
		}
	}
}

func TestSweepBeatsNaiveOnIOs(t *testing.T) {
	// Experiment T8's shape: for a dense instance the distribution sweep must
	// use far fewer I/Os than the quadratic baseline.
	rng := rand.New(rand.NewSource(21))
	segs := randomSegments(rng, 600, 600, 200)

	vol, pool := testVolume(t, 12)
	f, err := stream.FromSlice(vol, pool, SegmentCodec{}, segs)
	if err != nil {
		t.Fatal(err)
	}
	vol.Stats().Reset()
	out, err := Intersections(f, pool)
	if err != nil {
		t.Fatal(err)
	}
	sweepIOs := vol.Stats().Total()
	out.Release()

	vol2, pool2 := testVolume(t, 12)
	f2, err := stream.FromSlice(vol2, pool2, SegmentCodec{}, segs)
	if err != nil {
		t.Fatal(err)
	}
	vol2.Stats().Reset()
	out2, err := NaiveIntersections(f2, pool2)
	if err != nil {
		t.Fatal(err)
	}
	naiveIOs := vol2.Stats().Total()
	out2.Release()

	if sweepIOs*4 > naiveIOs {
		t.Fatalf("sweep %d I/Os vs naive %d: expected at least 4x advantage", sweepIOs, naiveIOs)
	}
	t.Logf("sweep=%d naive=%d (%.1fx)", sweepIOs, naiveIOs, float64(naiveIOs)/float64(sweepIOs))
}
