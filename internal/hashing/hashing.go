// Package hashing implements extendible hashing, the survey's external
// hashing scheme: point lookups in one block I/O (plus a directory probe
// that stays in memory), inserts in O(1) expected I/Os, with bucket splits
// that double only the in-memory directory, never rehashing the whole file.
package hashing

import (
	"encoding/binary"
	"errors"
	"fmt"

	"em/internal/cache"
	"em/internal/pdm"
)

// ErrFull reports a pathological split cascade: all keys in an over-full
// bucket share so many hash bits that the directory would exceed its bound.
var ErrFull = errors.New("hashing: bucket split cascade exceeded directory limit")

// maxGlobalDepth bounds the in-memory directory at 2^24 entries.
const maxGlobalDepth = 24

// Bucket block layout (little-endian):
//
//	off 0 uint16 localDepth
//	off 2 uint16 count
//	off 8 count × (key uint64, val uint64)
const (
	offDepth   = 0
	offCount   = 2
	offEntries = 8
)

// Table is an extendible hash table mapping uint64 keys to uint64 values.
// The directory lives in memory (its size is Θ(N/B) pointers, the usual
// assumption); buckets live on the volume behind a pinning cache.
type Table struct {
	vol     *pdm.Volume
	cache   *cache.Cache
	dir     []int64
	global  uint
	bCap    int
	n       int64
	splits  int
	doubles int
}

// New creates an empty table with a one-bucket directory.
func New(vol *pdm.Volume, pool *pdm.Pool, cacheFrames int) (*Table, error) {
	bCap := (vol.BlockBytes() - offEntries) / 16
	if bCap < 2 {
		return nil, fmt.Errorf("hashing: block of %d bytes holds %d entries, need >= 2", vol.BlockBytes(), bCap)
	}
	if cacheFrames < 2 {
		return nil, fmt.Errorf("hashing: cache needs >= 2 frames, got %d", cacheFrames)
	}
	c, err := cache.New(vol, pool, cacheFrames)
	if err != nil {
		return nil, err
	}
	t := &Table{vol: vol, cache: c, bCap: bCap}
	p, err := t.newBucket(0)
	if err != nil {
		return nil, err
	}
	t.dir = []int64{p.Addr()}
	c.Unpin(p)
	return t, nil
}

// Close flushes and releases the bucket cache.
func (t *Table) Close() error { return t.cache.Close() }

// Len returns the number of stored keys.
func (t *Table) Len() int64 { return t.n }

// GlobalDepth returns the directory's depth (directory size is 2^depth).
func (t *Table) GlobalDepth() uint { return t.global }

// Splits returns the number of bucket splits performed.
func (t *Table) Splits() int { return t.splits }

// DirectoryDoubles returns how many times the directory doubled.
func (t *Table) DirectoryDoubles() int { return t.doubles }

// mix is the splitmix64 finaliser, giving well-distributed hash bits even
// for sequential keys.
func mix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func (t *Table) slot(key uint64) int {
	if t.global == 0 {
		return 0
	}
	return int(mix(key) & ((1 << t.global) - 1))
}

func depth(p *cache.Page) uint { return uint(binary.LittleEndian.Uint16(p.Buf[offDepth:])) }
func setDepth(p *cache.Page, d uint) {
	binary.LittleEndian.PutUint16(p.Buf[offDepth:], uint16(d))
	p.MarkDirty()
}
func count(p *cache.Page) int { return int(binary.LittleEndian.Uint16(p.Buf[offCount:])) }
func setCount(p *cache.Page, n int) {
	binary.LittleEndian.PutUint16(p.Buf[offCount:], uint16(n))
	p.MarkDirty()
}
func entryKey(p *cache.Page, i int) uint64 {
	return binary.LittleEndian.Uint64(p.Buf[offEntries+16*i:])
}
func entryVal(p *cache.Page, i int) uint64 {
	return binary.LittleEndian.Uint64(p.Buf[offEntries+16*i+8:])
}
func setEntry(p *cache.Page, i int, k, v uint64) {
	binary.LittleEndian.PutUint64(p.Buf[offEntries+16*i:], k)
	binary.LittleEndian.PutUint64(p.Buf[offEntries+16*i+8:], v)
	p.MarkDirty()
}

func (t *Table) newBucket(d uint) (*cache.Page, error) {
	addr := t.vol.Alloc(1)
	p, err := t.cache.GetNew(addr)
	if err != nil {
		return nil, err
	}
	setDepth(p, d)
	setCount(p, 0)
	return p, nil
}

// find returns the index of key in bucket p, or -1.
func find(p *cache.Page, key uint64) int {
	n := count(p)
	for i := 0; i < n; i++ {
		if entryKey(p, i) == key {
			return i
		}
	}
	return -1
}

// Get returns the value stored under key: one bucket I/O.
func (t *Table) Get(key uint64) (uint64, bool, error) {
	p, err := t.cache.Get(t.dir[t.slot(key)])
	if err != nil {
		return 0, false, err
	}
	defer t.cache.Unpin(p)
	if i := find(p, key); i >= 0 {
		return entryVal(p, i), true, nil
	}
	return 0, false, nil
}

// Insert stores value under key, overwriting any existing value; it reports
// whether the key was new.
func (t *Table) Insert(key, val uint64) (bool, error) {
	for attempt := 0; ; attempt++ {
		if attempt > maxGlobalDepth+1 {
			return false, ErrFull
		}
		addr := t.dir[t.slot(key)]
		p, err := t.cache.Get(addr)
		if err != nil {
			return false, err
		}
		if i := find(p, key); i >= 0 {
			setEntry(p, i, key, val)
			t.cache.Unpin(p)
			return false, nil
		}
		if n := count(p); n < t.bCap {
			setEntry(p, n, key, val)
			setCount(p, n+1)
			t.cache.Unpin(p)
			t.n++
			return true, nil
		}
		// Bucket full: split and retry.
		if err := t.split(p); err != nil {
			t.cache.Unpin(p)
			return false, err
		}
		t.cache.Unpin(p)
	}
}

// split divides an over-full bucket by one more hash bit, doubling the
// directory when the bucket's local depth equals the global depth.
func (t *Table) split(p *cache.Page) error {
	d := depth(p)
	if d == t.global {
		if t.global >= maxGlobalDepth {
			return ErrFull
		}
		// Double the directory; new halves mirror the old pointers.
		t.dir = append(t.dir, t.dir...)
		t.global++
		t.doubles++
	}
	newP, err := t.newBucket(d + 1)
	if err != nil {
		return err
	}
	defer t.cache.Unpin(newP)
	setDepth(p, d+1)
	// Redistribute: entries whose (d)'th hash bit is 1 move to the new
	// bucket.
	bit := uint64(1) << d
	keep := 0
	moved := 0
	n := count(p)
	for i := 0; i < n; i++ {
		k, v := entryKey(p, i), entryVal(p, i)
		if mix(k)&bit != 0 {
			setEntry(newP, moved, k, v)
			moved++
		} else {
			if keep != i {
				setEntry(p, keep, k, v)
			}
			keep++
		}
	}
	setCount(p, keep)
	setCount(newP, moved)
	t.splits++
	// Repoint directory entries: among the slots that referenced the old
	// bucket, those with bit d set now point at the new bucket.
	oldAddr := p.Addr()
	for s := range t.dir {
		if t.dir[s] == oldAddr && uint64(s)&bit != 0 {
			t.dir[s] = newP.Addr()
		}
	}
	return nil
}

// Delete removes key, reporting whether it was present. Buckets are not
// merged on underflow (the classical scheme leaves coalescing optional;
// space is reclaimed only on Close of the enclosing volume).
func (t *Table) Delete(key uint64) (bool, error) {
	p, err := t.cache.Get(t.dir[t.slot(key)])
	if err != nil {
		return false, err
	}
	defer t.cache.Unpin(p)
	i := find(p, key)
	if i < 0 {
		return false, nil
	}
	n := count(p)
	if i != n-1 {
		setEntry(p, i, entryKey(p, n-1), entryVal(p, n-1))
	}
	setCount(p, n-1)
	t.n--
	return true, nil
}

// ForEach visits every (key, value) pair in unspecified order.
func (t *Table) ForEach(fn func(k, v uint64) error) error {
	seen := make(map[int64]bool, len(t.dir))
	for _, addr := range t.dir {
		if seen[addr] {
			continue
		}
		seen[addr] = true
		p, err := t.cache.Get(addr)
		if err != nil {
			return err
		}
		n := count(p)
		for i := 0; i < n; i++ {
			if err := fn(entryKey(p, i), entryVal(p, i)); err != nil {
				t.cache.Unpin(p)
				return err
			}
		}
		t.cache.Unpin(p)
	}
	return nil
}
