package hashing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"em/internal/pdm"
)

func newTable(t testing.TB, blockBytes, cacheFrames int) (*Table, *pdm.Volume, *pdm.Pool) {
	t.Helper()
	vol := pdm.MustVolume(pdm.Config{BlockBytes: blockBytes, MemBlocks: 32, Disks: 1})
	pool := pdm.PoolFor(vol)
	tab, err := New(vol, pool, cacheFrames)
	if err != nil {
		t.Fatal(err)
	}
	return tab, vol, pool
}

func TestValidation(t *testing.T) {
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 16, MemBlocks: 8, Disks: 1})
	if _, err := New(vol, pdm.PoolFor(vol), 4); err == nil {
		t.Fatal("16-byte blocks should be rejected")
	}
	vol2 := pdm.MustVolume(pdm.Config{BlockBytes: 128, MemBlocks: 8, Disks: 1})
	if _, err := New(vol2, pdm.PoolFor(vol2), 1); err == nil {
		t.Fatal("1-frame cache should be rejected")
	}
}

func TestInsertGet(t *testing.T) {
	tab, _, _ := newTable(t, 128, 8)
	defer tab.Close()
	n := uint64(5000)
	for k := uint64(0); k < n; k++ {
		added, err := tab.Insert(k, k*2+1)
		if err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
		if !added {
			t.Fatalf("key %d reported duplicate", k)
		}
	}
	if tab.Len() != int64(n) {
		t.Fatalf("len = %d", tab.Len())
	}
	if tab.Splits() == 0 || tab.DirectoryDoubles() == 0 {
		t.Fatal("expected splits and directory doubling")
	}
	for k := uint64(0); k < n; k++ {
		v, ok, err := tab.Get(k)
		if err != nil || !ok || v != k*2+1 {
			t.Fatalf("get(%d) = %d,%v,%v", k, v, ok, err)
		}
	}
	if _, ok, _ := tab.Get(n + 5); ok {
		t.Fatal("absent key found")
	}
}

func TestOverwrite(t *testing.T) {
	tab, _, _ := newTable(t, 128, 8)
	defer tab.Close()
	tab.Insert(9, 1)
	added, err := tab.Insert(9, 2)
	if err != nil || added {
		t.Fatalf("overwrite: added=%v err=%v", added, err)
	}
	if tab.Len() != 1 {
		t.Fatalf("len = %d", tab.Len())
	}
	v, ok, _ := tab.Get(9)
	if !ok || v != 2 {
		t.Fatal("overwrite lost")
	}
}

func TestDelete(t *testing.T) {
	tab, _, _ := newTable(t, 128, 8)
	defer tab.Close()
	for k := uint64(0); k < 1000; k++ {
		tab.Insert(k, k)
	}
	for k := uint64(0); k < 1000; k += 2 {
		removed, err := tab.Delete(k)
		if err != nil || !removed {
			t.Fatalf("delete(%d): %v %v", k, removed, err)
		}
	}
	if removed, _ := tab.Delete(0); removed {
		t.Fatal("double delete succeeded")
	}
	if tab.Len() != 500 {
		t.Fatalf("len = %d", tab.Len())
	}
	for k := uint64(0); k < 1000; k++ {
		_, ok, _ := tab.Get(k)
		if (k%2 == 0) == ok {
			t.Fatalf("key %d presence wrong: %v", k, ok)
		}
	}
}

func TestForEach(t *testing.T) {
	tab, _, _ := newTable(t, 128, 8)
	defer tab.Close()
	for k := uint64(0); k < 300; k++ {
		tab.Insert(k, k+100)
	}
	got := map[uint64]uint64{}
	err := tab.ForEach(func(k, v uint64) error {
		if _, dup := got[k]; dup {
			t.Fatalf("key %d visited twice", k)
		}
		got[k] = v
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 300 {
		t.Fatalf("visited %d keys", len(got))
	}
	for k, v := range got {
		if v != k+100 {
			t.Fatalf("key %d value %d", k, v)
		}
	}
}

func TestLookupIsOneIO(t *testing.T) {
	tab, vol, _ := newTable(t, 128, 4)
	defer tab.Close()
	rng := rand.New(rand.NewSource(1))
	for k := uint64(0); k < 4000; k++ {
		if _, err := tab.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	vol.Stats().Reset()
	const probes = 200
	for i := 0; i < probes; i++ {
		k := uint64(rng.Intn(4000))
		if _, ok, err := tab.Get(k); err != nil || !ok {
			t.Fatal("probe failed")
		}
	}
	perProbe := float64(vol.Stats().Reads) / probes
	// Expected exactly one bucket read per probe (cache may save a few).
	if perProbe > 1.01 {
		t.Fatalf("hash lookup costs %.2f I/Os per probe, want <= 1", perProbe)
	}
}

func TestSkewedKeysStillWork(t *testing.T) {
	// Keys with identical low bits stress the split path; splitmix64 must
	// spread them.
	tab, _, _ := newTable(t, 128, 8)
	defer tab.Close()
	for i := uint64(0); i < 2000; i++ {
		k := i << 20 // low 20 bits zero
		if _, err := tab.Insert(k, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 2000; i++ {
		v, ok, _ := tab.Get(i << 20)
		if !ok || v != i {
			t.Fatalf("skewed key %d broken", i)
		}
	}
}

// Property: table agrees with a map under arbitrary operation sequences.
func TestQuickMatchesMap(t *testing.T) {
	type op struct {
		Key uint64
		Val uint64
		Del bool
	}
	f := func(ops []op) bool {
		vol := pdm.MustVolume(pdm.Config{BlockBytes: 64, MemBlocks: 16, Disks: 1})
		pool := pdm.PoolFor(vol)
		tab, err := New(vol, pool, 4)
		if err != nil {
			return false
		}
		defer tab.Close()
		ref := map[uint64]uint64{}
		for _, o := range ops {
			k := o.Key % 128
			if o.Del {
				removed, err := tab.Delete(k)
				if err != nil {
					return false
				}
				_, had := ref[k]
				if removed != had {
					return false
				}
				delete(ref, k)
			} else {
				if _, err := tab.Insert(k, o.Val); err != nil {
					return false
				}
				ref[k] = o.Val
			}
		}
		if tab.Len() != int64(len(ref)) {
			return false
		}
		for k, v := range ref {
			got, ok, err := tab.Get(k)
			if err != nil || !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
