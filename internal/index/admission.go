package index

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"em/internal/pdm"
)

// ErrOverload is the marker for a request shed by admission control: the
// serving layer was starved of frames, the request waited its bounded turn,
// and the queue or the deadline overflowed. Every shed error matches both
// errors.Is(err, ErrOverload) — "the system chose to shed" — and
// errors.Is(err, pdm.ErrNoFrames) — the starvation underneath — so callers
// can distinguish backpressure from a hard memory-budget violation.
var ErrOverload = errors.New("em: overloaded, request shed")

// OverloadError carries the admission decision behind a shed request.
type OverloadError struct {
	// Queue is the admission-queue depth observed when the request was
	// shed (the configured bound when it was turned away at the door).
	Queue int
	// Wait is how long the request waited before shedding.
	Wait time.Duration
	// Cause is the starvation that sent the request into admission; it
	// wraps pdm.ErrNoFrames.
	Cause error
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("em: overloaded, request shed after %v (queue %d): %v", e.Wait, e.Queue, e.Cause)
}

// Unwrap exposes the starvation cause, so errors.Is sees pdm.ErrNoFrames.
func (e *OverloadError) Unwrap() error { return e.Cause }

// Is matches the ErrOverload marker.
func (e *OverloadError) Is(target error) bool { return target == ErrOverload }

// Gate is bounded-FIFO admission control over one pool: an operation that
// fails with pdm.ErrNoFrames joins the queue and waits — in arrival order,
// woken frame release by frame release — for capacity to retry on, up to a
// deadline and a maximum queue depth. Past either bound the request is shed
// with an OverloadError instead of surfacing the bare starvation, which
// turns "budget M exceeded" from a hard error into backpressure the caller
// can act on.
//
// Retrying the whole operation is safe because every serving entry point
// unwinds an ErrNoFrames failure completely (the leak quick-checks pin
// this), so a retry starts from clean pool accounting.
//
// A nil *Gate is valid and admits everything without waiting — admission
// off. Gate is safe for concurrent use.
type Gate struct {
	pool     *pdm.Pool
	maxQueue int
	wait     time.Duration

	mu     sync.Mutex
	queued int
}

// Admission defaults: a queue bound or a deadline left zero when the other
// is set picks these.
const (
	defaultAdmitQueue = 64
	defaultAdmitWait  = 10 * time.Millisecond
)

// NewGate builds a gate on pool. maxQueue bounds the waiters queued at
// once, wait bounds each request's time in the queue; a zero (or negative)
// value for one of them picks the default when the other is set. If both
// are unset the gate is nil: admission control off, starvation surfaces
// immediately as pdm.ErrNoFrames.
func NewGate(pool *pdm.Pool, maxQueue int, wait time.Duration) *Gate {
	if maxQueue <= 0 && wait <= 0 {
		return nil
	}
	if maxQueue <= 0 {
		maxQueue = defaultAdmitQueue
	}
	if wait <= 0 {
		wait = defaultAdmitWait
	}
	return &Gate{pool: pool, maxQueue: maxQueue, wait: wait}
}

// Do runs op, and on pool starvation queues and retries it under the
// gate's bounds. Success and non-starvation errors pass through untouched;
// a starved request past the bounds sheds with an *OverloadError.
func (g *Gate) Do(op func() error) error {
	if g == nil {
		return op()
	}
	err := op()
	if err == nil || !errors.Is(err, pdm.ErrNoFrames) || errors.Is(err, ErrOverload) {
		return err
	}
	start := time.Now()
	g.mu.Lock()
	if g.queued >= g.maxQueue {
		depth := g.queued
		g.mu.Unlock()
		return &OverloadError{Queue: depth, Cause: err}
	}
	g.queued++
	g.mu.Unlock()
	defer func() {
		g.mu.Lock()
		g.queued--
		g.mu.Unlock()
	}()
	deadline := start.Add(g.wait)
	for {
		if !g.pool.WaitRelease(deadline) {
			g.mu.Lock()
			depth := g.queued
			g.mu.Unlock()
			return &OverloadError{Queue: depth, Wait: time.Since(start), Cause: err}
		}
		if err = op(); err == nil || !errors.Is(err, pdm.ErrNoFrames) {
			return err
		}
	}
}
