package index

import (
	"errors"
	"sync"
	"testing"
	"time"

	"em/internal/pdm"
)

// TestGateNilPassThrough: a nil gate is admission-off.
func TestGateNilPassThrough(t *testing.T) {
	var g *Gate
	sentinel := errors.New("boom")
	if err := g.Do(func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("nil gate must pass errors through, got %v", err)
	}
	if NewGate(pdm.NewPool(64, 1), 0, 0) != nil {
		t.Fatal("both bounds zero must disable the gate")
	}
}

// TestGateShedsTyped: a starved op past the deadline sheds with an error
// matching both ErrOverload and pdm.ErrNoFrames.
func TestGateShedsTyped(t *testing.T) {
	p := pdm.NewPool(64, 1)
	f := p.MustAlloc() // starve the pool for the whole test
	defer f.Release()
	g := NewGate(p, 4, 5*time.Millisecond)
	err := g.Do(func() error {
		_, err := p.Alloc()
		return err
	})
	if err == nil {
		t.Fatal("expected a shed")
	}
	if !errors.Is(err, ErrOverload) {
		t.Fatalf("shed must match ErrOverload: %v", err)
	}
	if !errors.Is(err, pdm.ErrNoFrames) {
		t.Fatalf("shed must still match pdm.ErrNoFrames: %v", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("shed must carry an *OverloadError: %v", err)
	}
	if oe.Wait <= 0 {
		t.Fatalf("the request should have waited, got %v", oe.Wait)
	}
	// Non-starvation errors bypass admission entirely.
	sentinel := errors.New("not starvation")
	if err := g.Do(func() error { return sentinel }); !errors.Is(err, sentinel) || errors.Is(err, ErrOverload) {
		t.Fatalf("non-starvation error mishandled: %v", err)
	}
}

// TestGateWaitsForRelease: a starved request parked in the gate succeeds
// once the frame holder releases, instead of shedding.
func TestGateWaitsForRelease(t *testing.T) {
	p := pdm.NewPool(64, 1)
	f := p.MustAlloc()
	g := NewGate(p, 4, 5*time.Second)
	done := make(chan error, 1)
	go func() {
		done <- g.Do(func() error {
			got, err := p.Alloc()
			if err == nil {
				got.Release()
			}
			return err
		})
	}()
	time.Sleep(20 * time.Millisecond) // let the request park
	f.Release()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("parked request should have succeeded after the release: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked request never woke")
	}
}

// TestGateQueueBound: waiters beyond AdmitQueue are turned away at the
// door with zero wait.
func TestGateQueueBound(t *testing.T) {
	p := pdm.NewPool(64, 1)
	f := p.MustAlloc()
	g := NewGate(p, 2, time.Minute)
	var wg sync.WaitGroup
	parked := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.Do(func() error {
				fr, err := p.Alloc()
				if err != nil {
					select {
					case parked <- struct{}{}:
					default:
					}
					return err
				}
				fr.Release()
				return nil
			})
		}()
	}
	<-parked
	<-parked
	time.Sleep(20 * time.Millisecond) // both now in the queue
	err := g.Do(func() error {
		_, err := p.Alloc()
		return err
	})
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("third request should shed at the door: %v", err)
	}
	if oe.Wait != 0 {
		t.Fatalf("door shed should not have waited, got %v", oe.Wait)
	}
	f.Release() // unblock the queued requests; each release hands off in turn
	wg.Wait()
}
