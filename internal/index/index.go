// Package index declares the unified serving surface every key-value
// index in the module presents: the B+-tree (btree.Tree), the online
// updatable store (store.Store), and the sharded facades over both
// (shard.Tree, shard.Store). The em facade re-exports these interfaces as
// em.Index and em.Session, so serving code — examples, experiments,
// benchmarks — programs against one contract and runs unchanged over any
// backend.
//
// The package sits below every implementation and imports only the model
// layers (pdm, record, stream), so btree and store can return these types
// without an import cycle through the facade.
package index

import (
	"em/internal/pdm"
	"em/internal/record"
	"em/internal/stream"
)

// Scanner is the streaming side of a range query: records of [lo, hi] in
// key order behind the same pull interface file readers serve, so a scan
// can feed anything a reader can — stream.Drain, a Patch merge, or a bulk
// load of another tree. Close releases the scan's frames and pins and must
// run on every path.
type Scanner = stream.Source[record.Record]

// Session is a read-only query handle with its own reserved cache budget,
// served beside other sessions from one index. Each session is for one
// goroutine; distinct sessions are safe concurrently. Close returns the
// session's frames to the pool it was opened on.
type Session interface {
	// Get returns the value stored under key.
	Get(key uint64) (uint64, bool, error)
	// GetBatch answers a batch of point lookups, values and presence
	// flags aligned with keys, at counted reads never above a loop of
	// Gets from the same cache state.
	GetBatch(keys []uint64) ([]uint64, []bool, error)
	// Close releases the session's budget.
	Close() error
}

// Index is the read-serving contract shared by every key-value index in
// the module: point lookups, batched lookups, prefetched range scans,
// concurrent read sessions, and the I/O counters behind them all.
type Index interface {
	// Get returns the value stored under key.
	Get(key uint64) (uint64, bool, error)
	// GetBatch answers a batch of point lookups, values and presence
	// flags aligned with keys.
	GetBatch(keys []uint64) ([]uint64, []bool, error)
	// Scan streams every record with lo <= key <= hi in key order. The
	// scanner must be Closed on every path.
	Scan(lo, hi uint64) (Scanner, error)
	// NewSession opens a read session with a private cache of cacheFrames
	// pages and scan/batch striping of width. Implementations substitute
	// their configured defaults for out-of-range values (cacheFrames < 3,
	// width < 1), so NewSession(0, 0) always means "the index's defaults".
	NewSession(cacheFrames, width int) (Session, error)
	// Stats returns a snapshot of the index's I/O counters — for a
	// sharded index, the per-shard volumes' counters aggregated.
	Stats() pdm.Stats
	// Close flushes and releases the index's caches.
	Close() error
}
