// Package listrank implements external-memory list ranking, the survey's
// gateway problem for external graph algorithms: given a linked list of N
// nodes scattered on disk, compute each node's distance from the head.
//
// Pointer chasing costs Θ(N) I/Os because every hop lands in a different
// block. The external algorithm removes an independent set of nodes,
// splices their neighbours together with accumulated edge weights, recurses
// on the (geometrically smaller) remainder, and patches the removed nodes'
// ranks back in with sorting joins — O(Sort(N)) I/Os in total (experiment
// F4).
package listrank

import (
	"errors"
	"fmt"

	"em/internal/extsort"
	"em/internal/pdm"
	"em/internal/record"
	"em/internal/stream"
)

// ErrBadList reports a malformed successor list.
var ErrBadList = errors.New("listrank: malformed list")

// Tail is the successor value marking the end of the list.
const Tail int64 = -1

// NaiveRank chases pointers from head, costing one random block read per
// node: Θ(N) I/Os. list holds (node, succ) pairs with node ids 0..N-1 and
// record i describing node i.
func NaiveRank(list *stream.File[record.Pair], pool *pdm.Pool, head int64) (*stream.File[record.Pair], error) {
	n := list.Len()
	out := stream.NewFile[record.Pair](list.Vol(), record.PairCodec{})
	w, err := stream.NewWriter(out, pool)
	if err != nil {
		return nil, err
	}
	cur := head
	for rank := int64(0); rank < n; rank++ {
		if cur < 0 || cur >= n {
			w.Close()
			return nil, fmt.Errorf("%w: walked to node %d after %d steps", ErrBadList, cur, rank)
		}
		p, err := stream.ReadRecordAt(list, pool, cur) // the Θ(N) random reads
		if err != nil {
			w.Close()
			return nil, err
		}
		if err := w.Append(record.Pair{A: cur, B: rank}); err != nil {
			w.Close()
			return nil, err
		}
		cur = p.B
	}
	if cur != Tail {
		w.Close()
		return nil, fmt.Errorf("%w: list longer than %d nodes", ErrBadList, n)
	}
	return out, w.Close()
}

// RankWeighted computes (node, rank) pairs for a weighted list in
// O(Sort(N)) I/Os, where rank(x) is the sum of the edge weights along the
// path from head to x (rank(head) = 0). list holds (node, succ, weight)
// triples, one per node; weights may be negative, which is what the Euler
// tour technique uses (+1 down-arcs, -1 up-arcs) to compute tree depths.
// The output is sorted by node id.
func RankWeighted(list *stream.File[record.Triple], pool *pdm.Pool, head int64) (*stream.File[record.Pair], error) {
	// Copy so the ranker may consume (release) its working file without
	// destroying the caller's input.
	edges := stream.NewFile[record.Triple](list.Vol(), record.TripleCodec{})
	w, err := stream.NewWriter(edges, pool)
	if err != nil {
		return nil, err
	}
	if err := stream.ForEach(list, pool, func(t record.Triple) error {
		return w.Append(t)
	}); err != nil {
		w.Close()
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	r := &ranker{vol: list.Vol(), pool: pool}
	ranks, err := r.rank(edges, head, 0)
	if err != nil {
		return nil, err
	}
	out, err := extsort.MergeSort(ranks, pool, func(a, b record.Pair) bool { return a.A < b.A }, nil)
	if err != nil {
		return nil, err
	}
	ranks.Release()
	return out, nil
}

// Rank computes (node, rank) pairs for every node using independent-set
// contraction in O(Sort(N)) I/Os. list holds (node, succ) pairs, one per
// node, with arbitrary node ids; head is the node with no predecessor.
// The output is sorted by node id.
func Rank(list *stream.File[record.Pair], pool *pdm.Pool, head int64) (*stream.File[record.Pair], error) {
	// Edges carry spliced weights: (node, succ, weight-to-succ).
	edges := stream.NewFile[record.Triple](list.Vol(), record.TripleCodec{})
	w, err := stream.NewWriter(edges, pool)
	if err != nil {
		return nil, err
	}
	if err := stream.ForEach(list, pool, func(p record.Pair) error {
		return w.Append(record.Triple{A: p.A, B: p.B, C: 1})
	}); err != nil {
		w.Close()
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	r := &ranker{vol: list.Vol(), pool: pool}
	ranks, err := r.rank(edges, head, 0)
	if err != nil {
		return nil, err
	}
	// Final pass: sort ranks by node id for a canonical output.
	out, err := extsort.MergeSort(ranks, pool, func(a, b record.Pair) bool { return a.A < b.A }, nil)
	if err != nil {
		return nil, err
	}
	ranks.Release()
	return out, nil
}

type ranker struct {
	vol  *pdm.Volume
	pool *pdm.Pool
}

// memRecords is the in-memory base-case threshold.
func (r *ranker) memRecords() int64 {
	per := r.vol.BlockBytes() / (record.TripleCodec{}).Size()
	return int64((r.pool.Free() - 2) * per)
}

// coin returns a deterministic pseudo-random bit for node v at a contraction
// level.
func coin(v int64, level int) bool {
	x := uint64(v) ^ (uint64(level)+1)*0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return (x^(x>>31))&1 == 1
}

// rank solves the weighted list described by edges, returning (node, rank)
// pairs in arbitrary order. It consumes (releases) edges.
func (r *ranker) rank(edges *stream.File[record.Triple], head int64, level int) (*stream.File[record.Pair], error) {
	if edges.Len() <= r.memRecords() {
		return r.baseCase(edges, head)
	}

	// Annotate each node with its predecessor by sorting incoming edges by
	// target and merge-joining against the node-ordered edge list. The edge
	// list is kept sorted by node id as an invariant: the top-level input is
	// written in node order and contraction preserves the order.
	bySucc, err := r.incomingSorted(edges)
	if err != nil {
		return nil, err
	}
	byNode := edges

	// One synchronized scan decides membership of the independent set and
	// emits the contracted edge list plus the patch records.
	contracted := stream.NewFile[record.Triple](r.vol, record.TripleCodec{})
	patches := stream.NewFile[record.Triple](r.vol, record.TripleCodec{}) // (removedNode, pred, weightPredToNode)
	removedAny, err := r.contract(byNode, bySucc, contracted, patches, level)
	if err != nil {
		return nil, err
	}
	bySucc.Release()
	if !removedAny {
		// Unlucky coins: retry with a different level salt. Progress is
		// expected within O(1) retries.
		contracted.Release()
		patches.Release()
		return r.rank(byNode, head, level+1)
	}
	byNode.Release()

	ranks, err := r.rank(contracted, head, level+1)
	if err != nil {
		return nil, err
	}
	return r.applyPatches(ranks, patches)
}

// incomingSorted builds (succ, node, w) triples sorted by succ, dropping
// tail markers.
func (r *ranker) incomingSorted(edges *stream.File[record.Triple]) (*stream.File[record.Triple], error) {
	in := stream.NewFile[record.Triple](r.vol, record.TripleCodec{})
	w, err := stream.NewWriter(in, r.pool)
	if err != nil {
		return nil, err
	}
	if err := stream.ForEach(edges, r.pool, func(t record.Triple) error {
		if t.B == Tail {
			return nil
		}
		return w.Append(record.Triple{A: t.B, B: t.A, C: t.C})
	}); err != nil {
		w.Close()
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	sorted, err := extsort.MergeSort(in, r.pool,
		func(a, b record.Triple) bool { return a.A < b.A }, nil)
	if err != nil {
		return nil, err
	}
	in.Release()
	return sorted, nil
}

// contract performs the synchronized scan over nodes (sorted by id) and
// incoming edges (sorted by target). A node u joins the independent set when
// it has a predecessor p, coin(u) is heads, and coin(p) is tails; then p's
// edge is spliced over u and (u, p, w(p,u)) is recorded as a patch.
func (r *ranker) contract(byNode, bySucc *stream.File[record.Triple], contracted, patches *stream.File[record.Triple], level int) (bool, error) {
	nodeR, err := stream.NewReader(byNode, r.pool)
	if err != nil {
		return false, err
	}
	defer nodeR.Close()
	succR, err := stream.NewReader(bySucc, r.pool)
	if err != nil {
		return false, err
	}
	defer succR.Close()
	cw, err := stream.NewWriter(contracted, r.pool)
	if err != nil {
		return false, err
	}
	pw, err := stream.NewWriter(patches, r.pool)
	if err != nil {
		cw.Close()
		return false, err
	}

	// First pass: classify each node. A removed node u is spliced by
	// rewriting its predecessor's edge; because the pred p is NOT in the
	// independent set (coin(p)=tails) and u's successor s may itself not be
	// removed (coin(s) heads requires coin(u)=tails), the splice touches
	// disjoint pairs and one merge pass suffices.
	removed := false
	inEdge, inOK, err := succR.Next()
	if err != nil {
		cw.Close()
		pw.Close()
		return false, err
	}
	// Splices cannot be collected in an in-memory map at scale; instead emit
	// "pred rewrite" records and join them back with a sort.
	rewrites := stream.NewFile[record.Triple](r.vol, record.TripleCodec{}) // (pred, newSucc, addedWeight)
	rw, err := stream.NewWriter(rewrites, r.pool)
	if err != nil {
		cw.Close()
		pw.Close()
		return false, err
	}
	fail := func(e error) (bool, error) {
		cw.Close()
		pw.Close()
		rw.Close()
		return false, e
	}
	for {
		node, ok, err := nodeR.Next()
		if err != nil {
			return fail(err)
		}
		if !ok {
			break
		}
		// Advance the incoming-edge stream to this node.
		for inOK && inEdge.A < node.A {
			inEdge, inOK, err = succR.Next()
			if err != nil {
				return fail(err)
			}
		}
		hasPred := inOK && inEdge.A == node.A
		u := node.A
		if hasPred && coin(u, level) && !coin(inEdge.B, level) {
			// u is removed: patch (u, pred, w(pred,u)) and rewrite pred.
			removed = true
			if err := pw.Append(record.Triple{A: u, B: inEdge.B, C: inEdge.C}); err != nil {
				return fail(err)
			}
			if err := rw.Append(record.Triple{A: inEdge.B, B: node.B, C: node.C}); err != nil {
				return fail(err)
			}
		} else {
			if err := cw.Append(node); err != nil {
				return fail(err)
			}
		}
	}
	if err := cw.Close(); err != nil {
		pw.Close()
		rw.Close()
		return false, err
	}
	if err := pw.Close(); err != nil {
		rw.Close()
		return false, err
	}
	if err := rw.Close(); err != nil {
		return false, err
	}
	if !removed {
		rewrites.Release()
		return false, nil
	}
	// Apply rewrites: sort both by node id and merge, replacing the edge of
	// every rewritten predecessor.
	if err := r.applyRewrites(contracted, rewrites); err != nil {
		return false, err
	}
	rewrites.Release()
	return true, nil
}

// applyRewrites merges (pred, newSucc, addWeight) records into the
// contracted list, replacing each rewritten node's successor and adding the
// removed node's weight. The result replaces contracted's contents.
func (r *ranker) applyRewrites(contracted, rewrites *stream.File[record.Triple]) error {
	// contracted is already sorted by node id (the contraction scan emits in
	// order); only the rewrites, which are keyed by predecessor, need a sort.
	sortedC := contracted
	sortedR, err := extsort.MergeSort(rewrites, r.pool,
		func(a, b record.Triple) bool { return a.A < b.A }, nil)
	if err != nil {
		return err
	}
	out := stream.NewFile[record.Triple](r.vol, record.TripleCodec{})
	w, err := stream.NewWriter(out, r.pool)
	if err != nil {
		return err
	}
	cr, err := stream.NewReader(sortedC, r.pool)
	if err != nil {
		w.Close()
		return err
	}
	defer cr.Close()
	rr, err := stream.NewReader(sortedR, r.pool)
	if err != nil {
		w.Close()
		return err
	}
	defer rr.Close()
	rew, rewOK, err := rr.Next()
	if err != nil {
		w.Close()
		return err
	}
	for {
		node, ok, err := cr.Next()
		if err != nil {
			w.Close()
			return err
		}
		if !ok {
			break
		}
		if rewOK && rew.A == node.A {
			node.B = rew.B
			node.C += rew.C
			rew, rewOK, err = rr.Next()
			if err != nil {
				w.Close()
				return err
			}
		}
		if err := w.Append(node); err != nil {
			w.Close()
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	sortedC.Release()
	sortedR.Release()
	// Swap out's contents into contracted.
	contracted.Release()
	*contracted = *out
	return nil
}

// applyPatches computes ranks for removed nodes: rank(u) = rank(pred) + w.
// It consumes both inputs and returns the combined rank file.
func (r *ranker) applyPatches(ranks *stream.File[record.Pair], patches *stream.File[record.Triple]) (*stream.File[record.Pair], error) {
	if patches.Len() == 0 {
		patches.Release()
		return ranks, nil
	}
	// Sort patches by predecessor and ranks by node; one merge emits the
	// removed nodes' ranks.
	sortedP, err := extsort.MergeSort(patches, r.pool,
		func(a, b record.Triple) bool { return a.B < b.B }, nil)
	if err != nil {
		return nil, err
	}
	patches.Release()
	sortedRk, err := extsort.MergeSort(ranks, r.pool,
		func(a, b record.Pair) bool { return a.A < b.A }, nil)
	if err != nil {
		return nil, err
	}
	ranks.Release()

	out := stream.NewFile[record.Pair](r.vol, record.PairCodec{})
	w, err := stream.NewWriter(out, r.pool)
	if err != nil {
		return nil, err
	}
	pr, err := stream.NewReader(sortedP, r.pool)
	if err != nil {
		w.Close()
		return nil, err
	}
	defer pr.Close()
	rr, err := stream.NewReader(sortedRk, r.pool)
	if err != nil {
		w.Close()
		return nil, err
	}
	defer rr.Close()
	patch, pOK, err := pr.Next()
	if err != nil {
		w.Close()
		return nil, err
	}
	for {
		rk, ok, err := rr.Next()
		if err != nil {
			w.Close()
			return nil, err
		}
		if !ok {
			break
		}
		if err := w.Append(rk); err != nil {
			w.Close()
			return nil, err
		}
		for pOK && patch.B == rk.A {
			if err := w.Append(record.Pair{A: patch.A, B: rk.B + patch.C}); err != nil {
				w.Close()
				return nil, err
			}
			patch, pOK, err = pr.Next()
			if err != nil {
				w.Close()
				return nil, err
			}
		}
	}
	if pOK {
		w.Close()
		return nil, fmt.Errorf("%w: patch for unknown predecessor %d", ErrBadList, patch.B)
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	sortedP.Release()
	sortedRk.Release()
	return out, nil
}

// baseCase ranks a memory-sized list directly. It consumes edges.
func (r *ranker) baseCase(edges *stream.File[record.Triple], head int64) (*stream.File[record.Pair], error) {
	items, err := stream.ToSlice(edges, r.pool)
	if err != nil {
		return nil, err
	}
	edges.Release()
	succ := make(map[int64]record.Triple, len(items))
	for _, t := range items {
		succ[t.A] = t
	}
	out := stream.NewFile[record.Pair](r.vol, record.PairCodec{})
	w, err := stream.NewWriter(out, r.pool)
	if err != nil {
		return nil, err
	}
	cur, rank := head, int64(0)
	for i := 0; i < len(items); i++ {
		t, ok := succ[cur]
		if !ok {
			w.Close()
			return nil, fmt.Errorf("%w: node %d missing at rank %d", ErrBadList, cur, rank)
		}
		if err := w.Append(record.Pair{A: cur, B: rank}); err != nil {
			w.Close()
			return nil, err
		}
		rank += t.C
		cur = t.B
	}
	if cur != Tail {
		w.Close()
		return nil, fmt.Errorf("%w: cycle or stray tail at node %d", ErrBadList, cur)
	}
	return out, w.Close()
}
