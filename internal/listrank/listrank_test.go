package listrank

import (
	"math/rand"
	"testing"
	"testing/quick"

	"em/internal/pdm"
	"em/internal/record"
	"em/internal/stream"
)

func newEnv(t testing.TB) (*pdm.Volume, *pdm.Pool) {
	t.Helper()
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 96, MemBlocks: 10, Disks: 1})
	return vol, pdm.PoolFor(vol)
}

// buildList creates a random list over nodes 0..n-1 (record i = node i) and
// returns the file, the head, and the expected rank of each node.
func buildList(t testing.TB, vol *pdm.Volume, pool *pdm.Pool, n int, seed int64) (*stream.File[record.Pair], int64, []int64) {
	if t != nil {
		t.Helper()
	}
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(n) // order[r] = node at rank r
	succ := make([]int64, n)
	want := make([]int64, n)
	for r, node := range order {
		want[node] = int64(r)
		if r+1 < n {
			succ[node] = int64(order[r+1])
		} else {
			succ[node] = Tail
		}
	}
	pairs := make([]record.Pair, n)
	for i := range pairs {
		pairs[i] = record.Pair{A: int64(i), B: succ[i]}
	}
	f, err := stream.FromSlice(vol, pool, record.PairCodec{}, pairs)
	if err != nil {
		if t != nil {
			t.Fatal(err)
		}
		panic(err)
	}
	return f, int64(order[0]), want
}

func checkRanks(t *testing.T, name string, f *stream.File[record.Pair], pool *pdm.Pool, want []int64) {
	t.Helper()
	got, err := stream.ToSlice(f, pool)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: %d ranks for %d nodes", name, len(got), len(want))
	}
	seen := make([]bool, len(want))
	for _, p := range got {
		if p.A < 0 || p.A >= int64(len(want)) {
			t.Fatalf("%s: bogus node %d", name, p.A)
		}
		if seen[p.A] {
			t.Fatalf("%s: node %d ranked twice", name, p.A)
		}
		seen[p.A] = true
		if p.B != want[p.A] {
			t.Fatalf("%s: rank(%d) = %d, want %d", name, p.A, p.B, want[p.A])
		}
	}
}

func TestNaiveRank(t *testing.T) {
	for _, n := range []int{1, 2, 5, 50, 300} {
		vol, pool := newEnv(t)
		f, head, want := buildList(t, vol, pool, n, int64(n))
		out, err := NaiveRank(f, pool, head)
		if err != nil {
			t.Fatal(err)
		}
		checkRanks(t, "naive", out, pool, want)
		if pool.InUse() != 0 {
			t.Fatalf("leaked %d frames", pool.InUse())
		}
	}
}

func TestRankSmallFitsMemory(t *testing.T) {
	vol, pool := newEnv(t)
	f, head, want := buildList(t, vol, pool, 10, 1)
	out, err := Rank(f, pool, head)
	if err != nil {
		t.Fatal(err)
	}
	checkRanks(t, "base-case", out, pool, want)
}

func TestRankLargeContracts(t *testing.T) {
	for _, n := range []int{100, 500, 2000} {
		vol, pool := newEnv(t)
		f, head, want := buildList(t, vol, pool, n, int64(n)+7)
		out, err := Rank(f, pool, head)
		if err != nil {
			t.Fatal(err)
		}
		checkRanks(t, "contracted", out, pool, want)
		if pool.InUse() != 0 {
			t.Fatalf("n=%d: leaked %d frames", n, pool.InUse())
		}
	}
}

func TestRankSequentialList(t *testing.T) {
	// Already-ordered lists (node i -> i+1) exercise degenerate coin runs.
	vol, pool := newEnv(t)
	n := 800
	pairs := make([]record.Pair, n)
	want := make([]int64, n)
	for i := range pairs {
		succ := int64(i + 1)
		if i == n-1 {
			succ = Tail
		}
		pairs[i] = record.Pair{A: int64(i), B: succ}
		want[i] = int64(i)
	}
	f, err := stream.FromSlice(vol, pool, record.PairCodec{}, pairs)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Rank(f, pool, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkRanks(t, "sequential", out, pool, want)
}

func TestNaiveRankDetectsCycle(t *testing.T) {
	vol, pool := newEnv(t)
	pairs := []record.Pair{{A: 0, B: 1}, {A: 1, B: 0}} // 2-cycle
	f, err := stream.FromSlice(vol, pool, record.PairCodec{}, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NaiveRank(f, pool, 0); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestRankIOBeatsNaive(t *testing.T) {
	// Experiment F4's claim: contraction ranking ≈ Sort(N) ≪ N pointer
	// chases once blocks hold many records.
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 4096, MemBlocks: 10, Disks: 1})
	pool := pdm.PoolFor(vol)
	n := 8000
	f, head, _ := buildList(t, vol, pool, n, 9)
	vol.Stats().Reset()
	if _, err := NaiveRank(f, pool, head); err != nil {
		t.Fatal(err)
	}
	naiveIO := vol.Stats().Total()
	vol.Stats().Reset()
	if _, err := Rank(f, pool, head); err != nil {
		t.Fatal(err)
	}
	emIO := vol.Stats().Total()
	if emIO >= naiveIO {
		t.Fatalf("external ranking (%d I/Os) should beat pointer chasing (%d I/Os)", emIO, naiveIO)
	}
}

// Property: Rank agrees with NaiveRank on arbitrary permutations.
func TestQuickRankMatchesNaive(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%400) + 1
		vol := pdm.MustVolume(pdm.Config{BlockBytes: 96, MemBlocks: 10, Disks: 1})
		pool := pdm.PoolFor(vol)
		list, head, want := buildList(nil, vol, pool, n, seed)
		out, err := Rank(list, pool, head)
		if err != nil {
			return false
		}
		got, err := stream.ToSlice(out, pool)
		if err != nil || len(got) != n {
			return false
		}
		for _, p := range got {
			if want[p.A] != p.B {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
