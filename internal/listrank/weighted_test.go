package listrank

import (
	"math/rand"
	"testing"

	"em/internal/pdm"
	"em/internal/record"
	"em/internal/stream"
)

// buildWeighted materialises a weighted list visiting nodes in the random
// order given, with the given weights, and returns the expected prefix sums.
func buildWeighted(t *testing.T, vol *pdm.Volume, pool *pdm.Pool, order []int, weights []int64) (*stream.File[record.Triple], int64, map[int64]int64) {
	t.Helper()
	n := len(order)
	succ := make([]record.Triple, n)
	want := make(map[int64]int64, n)
	acc := int64(0)
	for k, node := range order {
		want[int64(node)] = acc
		next := Tail
		if k+1 < n {
			next = int64(order[k+1])
		}
		succ[node] = record.Triple{A: int64(node), B: next, C: weights[k]}
		acc += weights[k]
	}
	f, err := stream.FromSlice(vol, pool, record.TripleCodec{}, succ)
	if err != nil {
		t.Fatal(err)
	}
	return f, int64(order[0]), want
}

func TestRankWeightedSmall(t *testing.T) {
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 256, MemBlocks: 12, Disks: 1})
	pool := pdm.PoolFor(vol)
	f, head, want := buildWeighted(t, vol, pool, []int{2, 0, 1}, []int64{5, -3, 0})
	ranks, err := RankWeighted(f, pool, head)
	if err != nil {
		t.Fatal(err)
	}
	got, err := stream.ToSlice(ranks, pool)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("ranked %d nodes", len(got))
	}
	for _, p := range got {
		if want[p.A] != p.B {
			t.Fatalf("rank(%d) = %d, want %d", p.A, p.B, want[p.A])
		}
	}
	if pool.InUse() != 0 {
		t.Fatalf("leaked %d frames", pool.InUse())
	}
}

func TestRankWeightedExternalScaleNegativeWeights(t *testing.T) {
	// Large enough to force several contraction levels with a tiny memory,
	// with mixed-sign weights (the Euler-tour use case).
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 128, MemBlocks: 8, Disks: 1})
	pool := pdm.PoolFor(vol)
	rng := rand.New(rand.NewSource(31))
	n := 3000
	order := rng.Perm(n)
	weights := make([]int64, n)
	for i := range weights {
		weights[i] = rng.Int63n(21) - 10 // [-10, 10]
	}
	f, head, want := buildWeighted(t, vol, pool, order, weights)
	ranks, err := RankWeighted(f, pool, head)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := stream.ForEach(ranks, pool, func(p record.Pair) error {
		count++
		if want[p.A] != p.B {
			t.Fatalf("rank(%d) = %d, want %d", p.A, p.B, want[p.A])
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("ranked %d of %d nodes", count, n)
	}
}

func TestRankWeightedDoesNotConsumeInput(t *testing.T) {
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 256, MemBlocks: 12, Disks: 1})
	pool := pdm.PoolFor(vol)
	f, head, _ := buildWeighted(t, vol, pool, []int{0, 1, 2}, []int64{1, 1, 1})
	before := f.Len()
	if _, err := RankWeighted(f, pool, head); err != nil {
		t.Fatal(err)
	}
	if f.Len() != before {
		t.Fatalf("input length changed: %d -> %d", before, f.Len())
	}
	// A second ranking over the same input must still work.
	if _, err := RankWeighted(f, pool, head); err != nil {
		t.Fatalf("second ranking failed: %v", err)
	}
}

func TestRankWeightedMalformed(t *testing.T) {
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 256, MemBlocks: 12, Disks: 1})
	pool := pdm.PoolFor(vol)
	// 0 -> 1 -> 0: a cycle.
	cyc, err := stream.FromSlice(vol, pool, record.TripleCodec{}, []record.Triple{
		{A: 0, B: 1, C: 1}, {A: 1, B: 0, C: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RankWeighted(cyc, pool, 0); err == nil {
		t.Error("cyclic weighted list accepted")
	}
}
