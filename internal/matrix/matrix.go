// Package matrix implements dense external-memory matrices with the
// survey's two headline kernels: matrix transposition (naive column walk vs
// blocked sub-matrices) and blocked matrix multiplication.
//
// A matrix is stored row-major as a stream.File of float64s. The naive
// transpose touches one block per element, Θ(N) I/Os; the blocked transpose
// moves s×s tiles that fit in memory, Θ(N/B · (1 + s/B overhead)) I/Os —
// experiment T4 measures the ≈×B separation. Blocked multiplication of k×k
// matrices achieves the classical Θ(k³/(B·√M)) I/Os.
package matrix

import (
	"fmt"
	"math"

	"em/internal/pdm"
	"em/internal/record"
	"em/internal/stream"
)

// Matrix is a rows×cols dense matrix of float64s stored row-major on a
// volume.
type Matrix struct {
	f    *stream.File[float64]
	rows int
	cols int
}

// New creates a zero rows×cols matrix.
func New(vol *pdm.Volume, pool *pdm.Pool, rows, cols int) (*Matrix, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("matrix: dimensions must be positive, got %dx%d", rows, cols)
	}
	f := stream.NewFile[float64](vol, record.F64Codec{})
	w, err := stream.NewWriter(f, pool)
	if err != nil {
		return nil, err
	}
	for i := 0; i < rows*cols; i++ {
		if err := w.Append(0); err != nil {
			w.Close()
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return &Matrix{f: f, rows: rows, cols: cols}, nil
}

// FromSlice creates a matrix from row-major data.
func FromSlice(vol *pdm.Volume, pool *pdm.Pool, rows, cols int, data []float64) (*Matrix, error) {
	if len(data) != rows*cols {
		return nil, fmt.Errorf("matrix: %d values for %dx%d", len(data), rows, cols)
	}
	f, err := stream.FromSlice(vol, pool, record.F64Codec{}, data)
	if err != nil {
		return nil, err
	}
	return &Matrix{f: f, rows: rows, cols: cols}, nil
}

// Rows returns the row count.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the column count.
func (m *Matrix) Cols() int { return m.cols }

// File exposes the backing file.
func (m *Matrix) File() *stream.File[float64] { return m.f }

// ToSlice reads the matrix back row-major.
func (m *Matrix) ToSlice(pool *pdm.Pool) ([]float64, error) {
	return stream.ToSlice(m.f, pool)
}

// At reads element (r, c) with one block I/O.
func (m *Matrix) At(pool *pdm.Pool, r, c int) (float64, error) {
	if r < 0 || r >= m.rows || c < 0 || c >= m.cols {
		return 0, fmt.Errorf("matrix: index (%d,%d) out of %dx%d", r, c, m.rows, m.cols)
	}
	return stream.ReadRecordAt(m.f, pool, int64(r)*int64(m.cols)+int64(c))
}

// Set writes element (r, c) with one read-modify-write.
func (m *Matrix) Set(pool *pdm.Pool, r, c int, v float64) error {
	if r < 0 || r >= m.rows || c < 0 || c >= m.cols {
		return fmt.Errorf("matrix: index (%d,%d) out of %dx%d", r, c, m.rows, m.cols)
	}
	return stream.WriteRecordAt(m.f, pool, int64(r)*int64(m.cols)+int64(c), v)
}

// Release frees the matrix's blocks.
func (m *Matrix) Release() { m.f.Release() }

// TransposeNaive produces the transpose by walking the output row-major and
// fetching each input element with its own block read — the column-walk
// strategy whose cost is Θ(N) I/Os once the matrix no longer fits in memory.
func TransposeNaive(m *Matrix, pool *pdm.Pool) (*Matrix, error) {
	vol := m.f.Vol()
	out := stream.NewFile[float64](vol, record.F64Codec{})
	w, err := stream.NewWriter(out, pool)
	if err != nil {
		return nil, err
	}
	for c := 0; c < m.cols; c++ {
		for r := 0; r < m.rows; r++ {
			v, err := stream.ReadRecordAt(m.f, pool, int64(r)*int64(m.cols)+int64(c))
			if err != nil {
				w.Close()
				return nil, err
			}
			if err := w.Append(v); err != nil {
				w.Close()
				return nil, err
			}
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return &Matrix{f: out, rows: m.cols, cols: m.rows}, nil
}

// TransposeBlocked produces the transpose tile by tile: an s×s tile is read
// with s partial-row transfers, transposed in memory, and written with s
// partial-row transfers, where s is chosen so a tile plus working buffers
// fits in the pool. For B ≤ s this costs O(N/B · (1 + B/s)) = O(N/B) I/Os.
func TransposeBlocked(m *Matrix, pool *pdm.Pool) (*Matrix, error) {
	vol := m.f.Vol()
	out, err := New(vol, pool, m.cols, m.rows)
	if err != nil {
		return nil, err
	}
	per := m.f.PerBlock()
	// Budget: tile of s² records must fit in (free-2) frames' worth.
	budget := (pool.Free() - 2) * per
	if budget < 1 {
		return nil, fmt.Errorf("matrix: pool too small for blocked transpose")
	}
	s := int(math.Sqrt(float64(budget)))
	if s < 1 {
		s = 1
	}
	tile := make([]float64, 0, s*s)
	for r0 := 0; r0 < m.rows; r0 += s {
		rHi := min(r0+s, m.rows)
		for c0 := 0; c0 < m.cols; c0 += s {
			cHi := min(c0+s, m.cols)
			tile = tile[:0]
			// Read tile rows; consecutive elements of a row are contiguous
			// on disk, so each row segment costs O(1 + s/B) block reads.
			for r := r0; r < rHi; r++ {
				seg, err := readSegment(m.f, pool, int64(r)*int64(m.cols)+int64(c0), cHi-c0)
				if err != nil {
					return nil, err
				}
				tile = append(tile, seg...)
			}
			// Write transposed tile rows into the output.
			tw := cHi - c0
			th := rHi - r0
			colBuf := make([]float64, th)
			for c := 0; c < tw; c++ {
				for r := 0; r < th; r++ {
					colBuf[r] = tile[r*tw+c]
				}
				dst := int64(c0+c)*int64(out.cols) + int64(r0)
				if err := writeSegment(out.f, pool, dst, colBuf); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// readSegment reads n consecutive records starting at index start, touching
// each underlying block once.
func readSegment(f *stream.File[float64], pool *pdm.Pool, start int64, n int) ([]float64, error) {
	fr, err := pool.Alloc()
	if err != nil {
		return nil, err
	}
	defer fr.Release()
	per := int64(f.PerBlock())
	codec := f.Codec()
	addrs := stream.BlockAddrs(f)
	out := make([]float64, 0, n)
	i := start
	for i < start+int64(n) {
		blk := i / per
		if err := f.Vol().ReadBlock(addrs[blk], fr.Buf); err != nil {
			return nil, err
		}
		for ; i < start+int64(n) && i/per == blk; i++ {
			off := int(i%per) * codec.Size()
			out = append(out, codec.Decode(fr.Buf[off:]))
		}
	}
	return out, nil
}

// writeSegment overwrites n consecutive records starting at index start,
// read-modify-writing each underlying block once.
func writeSegment(f *stream.File[float64], pool *pdm.Pool, start int64, vals []float64) error {
	fr, err := pool.Alloc()
	if err != nil {
		return err
	}
	defer fr.Release()
	per := int64(f.PerBlock())
	codec := f.Codec()
	addrs := stream.BlockAddrs(f)
	i := start
	j := 0
	for j < len(vals) {
		blk := i / per
		if err := f.Vol().ReadBlock(addrs[blk], fr.Buf); err != nil {
			return err
		}
		for ; j < len(vals) && i/per == blk; i, j = i+1, j+1 {
			off := int(i%per) * codec.Size()
			codec.Encode(fr.Buf[off:], vals[j])
		}
		if err := f.Vol().WriteBlock(addrs[blk], fr.Buf); err != nil {
			return err
		}
	}
	return nil
}

// Multiply computes A·B with the blocked (tiled) algorithm: tiles of side s
// with 3s² ≤ M are combined with the classic three-loop schedule, giving the
// survey's Θ(k³/(B·√M)) bound for k×k inputs.
func Multiply(a, b *Matrix, pool *pdm.Pool) (*Matrix, error) {
	if a.cols != b.rows {
		return nil, fmt.Errorf("matrix: cannot multiply %dx%d by %dx%d", a.rows, a.cols, b.rows, b.cols)
	}
	vol := a.f.Vol()
	out, err := New(vol, pool, a.rows, b.cols)
	if err != nil {
		return nil, err
	}
	per := a.f.PerBlock()
	budget := (pool.Free() - 2) * per
	s := int(math.Sqrt(float64(budget) / 3))
	if s < 1 {
		s = 1
	}
	readTile := func(m *Matrix, r0, c0, rh, ch int) ([]float64, int, error) {
		w := ch - c0
		t := make([]float64, 0, (rh-r0)*w)
		for r := r0; r < rh; r++ {
			seg, err := readSegment(m.f, pool, int64(r)*int64(m.cols)+int64(c0), w)
			if err != nil {
				return nil, 0, err
			}
			t = append(t, seg...)
		}
		return t, w, nil
	}
	for i0 := 0; i0 < a.rows; i0 += s {
		iHi := min(i0+s, a.rows)
		for j0 := 0; j0 < b.cols; j0 += s {
			jHi := min(j0+s, b.cols)
			acc := make([]float64, (iHi-i0)*(jHi-j0))
			for k0 := 0; k0 < a.cols; k0 += s {
				kHi := min(k0+s, a.cols)
				ta, wa, err := readTile(a, i0, k0, iHi, kHi)
				if err != nil {
					return nil, err
				}
				tb, wb, err := readTile(b, k0, j0, kHi, jHi)
				if err != nil {
					return nil, err
				}
				for i := 0; i < iHi-i0; i++ {
					for k := 0; k < kHi-k0; k++ {
						av := ta[i*wa+k]
						if av == 0 {
							continue
						}
						row := tb[k*wb : k*wb+wb]
						for j, bv := range row {
							acc[i*(jHi-j0)+j] += av * bv
						}
					}
				}
			}
			for i := 0; i < iHi-i0; i++ {
				dst := int64(i0+i)*int64(out.cols) + int64(j0)
				if err := writeSegment(out.f, pool, dst, acc[i*(jHi-j0):(i+1)*(jHi-j0)]); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
