package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"

	"em/internal/pdm"
)

func newEnv(t testing.TB) (*pdm.Volume, *pdm.Pool) {
	t.Helper()
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 64, MemBlocks: 16, Disks: 1})
	return vol, pdm.PoolFor(vol)
}

func randMatrix(t testing.TB, vol *pdm.Volume, pool *pdm.Pool, rows, cols int, seed int64) (*Matrix, []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, rows*cols)
	for i := range data {
		data[i] = float64(rng.Intn(100)) - 50
	}
	m, err := FromSlice(vol, pool, rows, cols, data)
	if err != nil {
		t.Fatal(err)
	}
	return m, data
}

func transposeRef(data []float64, rows, cols int) []float64 {
	out := make([]float64, len(data))
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			out[c*rows+r] = data[r*cols+c]
		}
	}
	return out
}

func mulRef(a, b []float64, n, k, m int) []float64 {
	out := make([]float64, n*m)
	for i := 0; i < n; i++ {
		for kk := 0; kk < k; kk++ {
			av := a[i*k+kk]
			for j := 0; j < m; j++ {
				out[i*m+j] += av * b[kk*m+j]
			}
		}
	}
	return out
}

func TestNewAndDims(t *testing.T) {
	vol, pool := newEnv(t)
	m, err := New(vol, pool, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 3 || m.Cols() != 5 {
		t.Fatal("dims wrong")
	}
	got, err := m.ToSlice(pool)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range got {
		if v != 0 {
			t.Fatal("new matrix not zero")
		}
	}
	if _, err := New(vol, pool, 0, 5); err == nil {
		t.Fatal("zero rows should fail")
	}
	if _, err := New(vol, pool, 3, -1); err == nil {
		t.Fatal("negative cols should fail")
	}
}

func TestFromSliceValidation(t *testing.T) {
	vol, pool := newEnv(t)
	if _, err := FromSlice(vol, pool, 2, 2, []float64{1, 2, 3}); err == nil {
		t.Fatal("length mismatch should fail")
	}
}

func TestAtSet(t *testing.T) {
	vol, pool := newEnv(t)
	m, data := randMatrix(t, vol, pool, 4, 6, 1)
	v, err := m.At(pool, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v != data[2*6+3] {
		t.Fatal("At wrong")
	}
	if err := m.Set(pool, 2, 3, 123.5); err != nil {
		t.Fatal(err)
	}
	v, _ = m.At(pool, 2, 3)
	if v != 123.5 {
		t.Fatal("Set did not stick")
	}
	if _, err := m.At(pool, 4, 0); err == nil {
		t.Fatal("row out of range should fail")
	}
	if err := m.Set(pool, 0, 6, 1); err == nil {
		t.Fatal("col out of range should fail")
	}
}

func TestTransposeBothStrategies(t *testing.T) {
	cases := []struct{ r, c int }{{1, 1}, {1, 7}, {7, 1}, {4, 4}, {5, 9}, {16, 16}, {13, 27}}
	for _, tc := range cases {
		vol, pool := newEnv(t)
		m, data := randMatrix(t, vol, pool, tc.r, tc.c, int64(tc.r*100+tc.c))
		want := transposeRef(data, tc.r, tc.c)
		for name, fn := range map[string]func(*Matrix, *pdm.Pool) (*Matrix, error){
			"naive": TransposeNaive, "blocked": TransposeBlocked,
		} {
			tr, err := fn(m, pool)
			if err != nil {
				t.Fatalf("%s %dx%d: %v", name, tc.r, tc.c, err)
			}
			if tr.Rows() != tc.c || tr.Cols() != tc.r {
				t.Fatalf("%s: dims %dx%d", name, tr.Rows(), tr.Cols())
			}
			got, err := tr.ToSlice(pool)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s %dx%d: element %d = %v, want %v", name, tc.r, tc.c, i, got[i], want[i])
				}
			}
			tr.Release()
		}
		if pool.InUse() != 0 {
			t.Fatalf("leaked %d frames", pool.InUse())
		}
	}
}

func TestBlockedBeatsNaiveIO(t *testing.T) {
	// The ≈×B separation needs a realistic block size: 512-byte blocks hold
	// B = 64 float64s, and 80 frames give tiles of side ≥ B.
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 512, MemBlocks: 80, Disks: 1})
	pool := pdm.PoolFor(vol)
	m, _ := randMatrix(t, vol, pool, 64, 64, 3)
	vol.Stats().Reset()
	if _, err := TransposeNaive(m, pool); err != nil {
		t.Fatal(err)
	}
	naiveIO := vol.Stats().Total()
	vol.Stats().Reset()
	if _, err := TransposeBlocked(m, pool); err != nil {
		t.Fatal(err)
	}
	blockedIO := vol.Stats().Total()
	if blockedIO*2 >= naiveIO {
		t.Fatalf("blocked transpose (%d I/Os) should clearly beat naive (%d I/Os)", blockedIO, naiveIO)
	}
}

func TestTransposeInvolution(t *testing.T) {
	vol, pool := newEnv(t)
	m, data := randMatrix(t, vol, pool, 9, 5, 7)
	t1, err := TransposeBlocked(m, pool)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := TransposeBlocked(t1, pool)
	if err != nil {
		t.Fatal(err)
	}
	got, err := t2.ToSlice(pool)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatal("transpose twice != identity")
		}
	}
}

func TestMultiply(t *testing.T) {
	cases := []struct{ n, k, m int }{{1, 1, 1}, {2, 3, 4}, {5, 5, 5}, {8, 8, 8}, {7, 11, 3}, {16, 16, 16}}
	for _, tc := range cases {
		vol, pool := newEnv(t)
		a, da := randMatrix(t, vol, pool, tc.n, tc.k, 11)
		b, db := randMatrix(t, vol, pool, tc.k, tc.m, 13)
		c, err := Multiply(a, b, pool)
		if err != nil {
			t.Fatalf("%v: %v", tc, err)
		}
		want := mulRef(da, db, tc.n, tc.k, tc.m)
		got, err := c.ToSlice(pool)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: element %d = %v, want %v", tc, i, got[i], want[i])
			}
		}
		if pool.InUse() != 0 {
			t.Fatalf("leaked %d frames", pool.InUse())
		}
	}
}

func TestMultiplyDimensionMismatch(t *testing.T) {
	vol, pool := newEnv(t)
	a, _ := randMatrix(t, vol, pool, 2, 3, 1)
	b, _ := randMatrix(t, vol, pool, 4, 2, 2)
	if _, err := Multiply(a, b, pool); err == nil {
		t.Fatal("dimension mismatch should fail")
	}
}

func TestMultiplyIdentity(t *testing.T) {
	vol, pool := newEnv(t)
	n := 6
	id := make([]float64, n*n)
	for i := 0; i < n; i++ {
		id[i*n+i] = 1
	}
	eye, err := FromSlice(vol, pool, n, n, id)
	if err != nil {
		t.Fatal(err)
	}
	a, da := randMatrix(t, vol, pool, n, n, 9)
	c, err := Multiply(a, eye, pool)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := c.ToSlice(pool)
	for i := range da {
		if got[i] != da[i] {
			t.Fatal("A·I != A")
		}
	}
}

// Property: blocked transpose equals the reference transpose for arbitrary
// shapes and data.
func TestQuickTranspose(t *testing.T) {
	f := func(rRaw, cRaw uint8, seed int64) bool {
		r := int(rRaw%20) + 1
		c := int(cRaw%20) + 1
		vol := pdm.MustVolume(pdm.Config{BlockBytes: 64, MemBlocks: 16, Disks: 1})
		pool := pdm.PoolFor(vol)
		rng := rand.New(rand.NewSource(seed))
		data := make([]float64, r*c)
		for i := range data {
			data[i] = rng.Float64()
		}
		m, err := FromSlice(vol, pool, r, c, data)
		if err != nil {
			return false
		}
		tr, err := TransposeBlocked(m, pool)
		if err != nil {
			return false
		}
		got, err := tr.ToSlice(pool)
		if err != nil {
			return false
		}
		want := transposeRef(data, r, c)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
