package pdm

// Backend stores the block contents of the D simulated disks behind a
// Volume. It is the seam between the model's accounting — addresses,
// counters, service-time reservations, per-disk queues, all owned by
// Volume — and the medium actually holding the bytes. Two implementations
// ship with the package: the in-memory simulation (the default) and the
// file-backed store selected by Config.Dir, which maps each disk to its own
// file so the same algorithms drive real hardware with identical counted
// I/Os; every counter is charged by Volume before the backend is invoked,
// so Stats cannot differ across backends by construction.
//
// Volume serialises Service calls per disk (each simulated disk's lock is
// held around its transfers), so implementations need no internal locking
// for per-disk state; Service calls for distinct disks run concurrently.
type Backend interface {
	// Service performs one block transfer on the given disk: buf, exactly
	// one block long, is written to or read from the disk's slot (the
	// disk-local block index; byte position slot×BlockBytes on a physical
	// medium). Reading a slot that was never written must fill buf with
	// zeros, mirroring a freshly formatted disk region.
	Service(disk int, slot int64, buf []byte, write bool) error
	// Close releases the backend's resources. Volume.Close calls it exactly
	// once, after all workers have drained and no Service call is in flight.
	Close() error
}

// memBackend is the in-memory simulation: one growable slice of blocks per
// disk. Blocks materialise on first write; its transfers cannot fail.
type memBackend struct {
	blockBytes int
	disks      [][][]byte // [disk][slot] -> block, nil until first write
}

func newMemBackend(disks, blockBytes int) *memBackend {
	return &memBackend{blockBytes: blockBytes, disks: make([][][]byte, disks)}
}

func (m *memBackend) Service(disk int, slot int64, buf []byte, write bool) error {
	blocks := m.disks[disk]
	if write {
		for int64(len(blocks)) <= slot {
			blocks = append(blocks, nil)
		}
		if blocks[slot] == nil {
			blocks[slot] = make([]byte, m.blockBytes)
		}
		copy(blocks[slot], buf)
		m.disks[disk] = blocks
		return nil
	}
	if slot < int64(len(blocks)) && blocks[slot] != nil {
		copy(buf, blocks[slot])
	} else {
		clear(buf)
	}
	return nil
}

func (m *memBackend) Close() error { return nil }
