package pdm

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"unsafe"
)

// fileBackend maps each simulated disk to its own file under a
// caller-supplied directory: disk d's slot s occupies bytes
// [s·BlockBytes, (s+1)·BlockBytes) of dir/diskDDD.dat. Where the platform
// and filesystem allow — Linux, block size a multiple of 4 KiB, and a
// filesystem that accepts the flag — files are opened with O_DIRECT so
// transfers bypass the page cache and reach the medium; everywhere else the
// backend transparently falls back to ordinary buffered I/O, which keeps
// the counters and semantics identical and only changes what the wall clock
// measures. O_DIRECT requires aligned user buffers, so each disk under
// direct I/O stages transfers through one 4 KiB-aligned bounce buffer —
// safe because the Volume serialises Service calls per disk.
//
// Backing files are created — truncated if a previous run left them behind,
// since a fresh volume's never-written slots must read as zeros — at volume
// construction and grow sparsely as high slots are written; a read of a
// slot beyond the data written so far yields zeros, exactly like the
// in-memory simulation. The backend never fsyncs: the model
// measures transfer scheduling, not durability. Close closes the files but
// leaves them on disk for inspection; callers who want cleanup own the
// directory (tests use t.TempDir()).
type fileBackend struct {
	blockBytes int
	files      []*os.File
	direct     []bool
	bounce     [][]byte // per-disk aligned staging buffer; nil unless direct
}

// directAlign is the alignment direct-I/O transfers are staged at: 4 KiB
// satisfies the logical block size of every mainstream filesystem.
const directAlign = 4096

func newFileBackend(dir string, disks, blockBytes int) (*fileBackend, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("pdm: file backend: %w", err)
	}
	fb := &fileBackend{
		blockBytes: blockBytes,
		files:      make([]*os.File, disks),
		direct:     make([]bool, disks),
		bounce:     make([][]byte, disks),
	}
	for d := range fb.files {
		path := filepath.Join(dir, fmt.Sprintf("disk%03d.dat", d))
		f, direct, err := openDiskFile(path, blockBytes)
		if err != nil {
			fb.Close()
			return nil, fmt.Errorf("pdm: file backend: %w", err)
		}
		fb.files[d] = f
		fb.direct[d] = direct
		if direct {
			fb.bounce[d] = alignedBlock(blockBytes)
		}
	}
	return fb, nil
}

// alignedBlock returns a blockBytes-long slice whose base address is
// directAlign-aligned, carved out of a slightly larger allocation.
func alignedBlock(blockBytes int) []byte {
	raw := make([]byte, blockBytes+directAlign)
	off := 0
	if rem := int(uintptr(unsafe.Pointer(&raw[0])) % directAlign); rem != 0 {
		off = directAlign - rem
	}
	return raw[off : off+blockBytes : off+blockBytes]
}

func (fb *fileBackend) Service(disk int, slot int64, buf []byte, write bool) error {
	f := fb.files[disk]
	off := slot * int64(fb.blockBytes)
	tr := buf
	if fb.direct[disk] {
		tr = fb.bounce[disk]
	}
	if write {
		if fb.direct[disk] {
			copy(tr, buf)
		}
		if _, err := f.WriteAt(tr, off); err != nil {
			return fmt.Errorf("pdm: disk %d write slot %d: %w", disk, slot, err)
		}
		return nil
	}
	n, err := f.ReadAt(tr, off)
	if err != nil && err != io.EOF {
		return fmt.Errorf("pdm: disk %d read slot %d: %w", disk, slot, err)
	}
	// A slot past the bytes written so far reads as a zero block, mirroring
	// the simulation's freshly formatted regions. Whole blocks are always
	// written, so a short read can only mean end of file.
	clear(tr[n:])
	if fb.direct[disk] {
		copy(buf, tr)
	}
	return nil
}

func (fb *fileBackend) Close() error {
	var first error
	for _, f := range fb.files {
		if f == nil {
			continue
		}
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
