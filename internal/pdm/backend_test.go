package pdm

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
	"time"
	"unsafe"
)

// forEachBackend runs fn once against the in-memory simulation and once
// against the file-backed store (rooted in a fresh t.TempDir()), with an
// otherwise identical configuration. It is the shared harness every
// backend-parameterised test in this module builds on.
func forEachBackend(t *testing.T, cfg Config, fn func(t *testing.T, v *Volume)) {
	t.Helper()
	t.Run("mem", func(t *testing.T) {
		v := MustVolume(cfg)
		defer v.Close()
		fn(t, v)
	})
	t.Run("file", func(t *testing.T) {
		c := cfg
		c.Dir = t.TempDir()
		v := MustVolume(c)
		defer func() {
			if err := v.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}()
		fn(t, v)
	})
}

// TestBackendRoundTrip checks single-block and batched write/read round
// trips plus zero-fill of never-written blocks on both backends.
func TestBackendRoundTrip(t *testing.T) {
	cfg := Config{BlockBytes: 64, MemBlocks: 8, Disks: 3}
	forEachBackend(t, cfg, func(t *testing.T, v *Volume) {
		base := v.Alloc(12)
		src := make([]byte, 64)
		got := make([]byte, 64)
		for i := int64(0); i < 6; i++ {
			for j := range src {
				src[j] = byte(i*31 + int64(j))
			}
			if err := v.WriteBlock(base+i, src); err != nil {
				t.Fatal(err)
			}
			if err := v.ReadBlock(base+i, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(src, got) {
				t.Fatalf("block %d round trip mismatch", i)
			}
		}
		// Blocks 6..11 were allocated but never written: zero reads.
		if err := v.ReadBlock(base+9, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, make([]byte, 64)) {
			t.Fatal("unwritten block not zero")
		}
		// Batched round trip over all three disks.
		addrs := []int64{base, base + 1, base + 2, base + 5}
		srcs := make([][]byte, len(addrs))
		dsts := make([][]byte, len(addrs))
		for i := range addrs {
			srcs[i] = bytes.Repeat([]byte{byte(0xA0 + i)}, 64)
			dsts[i] = make([]byte, 64)
		}
		if err := v.BatchWrite(addrs, srcs); err != nil {
			t.Fatal(err)
		}
		if err := v.BatchRead(addrs, dsts); err != nil {
			t.Fatal(err)
		}
		for i := range addrs {
			if !bytes.Equal(srcs[i], dsts[i]) {
				t.Fatalf("batch item %d mismatch", i)
			}
		}
	})
}

// TestFileBackendWritesRealFiles verifies the on-disk layout contract: one
// file per disk under Dir, with block address a stored on disk a mod D at
// byte offset (a div D)·BlockBytes.
func TestFileBackendWritesRealFiles(t *testing.T) {
	const (
		blockBytes = 32
		disks      = 2
	)
	dir := t.TempDir()
	v := MustVolume(Config{BlockBytes: blockBytes, MemBlocks: 4, Disks: disks, Dir: dir})
	base := v.Alloc(4) // disk0 slots 0,1 and disk1 slots 0,1 (base is 0 on a fresh volume)
	for i := int64(0); i < 4; i++ {
		if err := v.WriteBlock(base+i, bytes.Repeat([]byte{byte(i + 1)}, blockBytes)); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	for d := 0; d < disks; d++ {
		raw, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("disk%03d.dat", d)))
		if err != nil {
			t.Fatal(err)
		}
		for slot := 0; slot < 2; slot++ {
			addr := base + int64(slot*disks+d)
			want := bytes.Repeat([]byte{byte(addr - base + 1)}, blockBytes)
			got := raw[slot*blockBytes : (slot+1)*blockBytes]
			if !bytes.Equal(got, want) {
				t.Fatalf("disk %d slot %d: got %v want %v", d, slot, got[0], want[0])
			}
		}
	}
}

// TestFileBackendTruncatesStaleFiles checks that a fresh volume pointed at
// a directory holding a previous run's disk files starts from zeros: the
// Backend contract says never-written slots read as zero blocks, and
// without truncation the first volume's bytes would leak into the second.
func TestFileBackendTruncatesStaleFiles(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{BlockBytes: 32, MemBlocks: 4, Disks: 2, Dir: dir}
	v1 := MustVolume(cfg)
	base := v1.Alloc(4)
	for i := int64(0); i < 4; i++ {
		if err := v1.WriteBlock(base+i, bytes.Repeat([]byte{0xEE}, 32)); err != nil {
			t.Fatal(err)
		}
	}
	if err := v1.Close(); err != nil {
		t.Fatal(err)
	}

	v2 := MustVolume(cfg)
	defer v2.Close()
	got := make([]byte, 32)
	if err := v2.ReadBlock(v2.Alloc(4), got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 32)) {
		t.Fatalf("fresh volume read stale bytes from a previous run: % x", got[:4])
	}
}

// TestFileBackendBadDir checks that an unusable directory fails volume
// construction instead of failing the first transfer.
func TestFileBackendBadDir(t *testing.T) {
	// A path routed through a regular file cannot be MkdirAll'd.
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o666); err != nil {
		t.Fatal(err)
	}
	_, err := NewVolume(Config{BlockBytes: 32, MemBlocks: 4, Disks: 2, Dir: filepath.Join(blocker, "sub")})
	if err == nil {
		t.Fatal("NewVolume succeeded under an unusable directory")
	}
}

// TestFileBackendServiceError checks that a backend transfer failure
// surfaces through the batched join rather than being swallowed. The files
// are yanked out from under a live volume — crude, but exactly what a dying
// disk looks like to the engine.
func TestFileBackendServiceError(t *testing.T) {
	dir := t.TempDir()
	v := MustVolume(Config{BlockBytes: 32, MemBlocks: 4, Disks: 2, Dir: dir})
	base := v.Alloc(4)
	buf := bytes.Repeat([]byte{1}, 32)
	if err := v.WriteBlock(base, buf); err != nil {
		t.Fatal(err)
	}
	// Close the underlying files directly; subsequent transfers must error.
	fb := v.backend.(*fileBackend)
	for _, f := range fb.files {
		f.Close()
	}
	if err := v.WriteBlock(base+1, buf); err == nil {
		t.Fatal("write on closed backing file succeeded")
	}
	dsts := [][]byte{make([]byte, 32), make([]byte, 32)}
	if err := v.BatchRead([]int64{base, base + 1}, dsts); err == nil {
		t.Fatal("batched read on closed backing file succeeded")
	}
}

// TestFileBackendDirectIO runs a round trip at a 4 KiB-multiple block size,
// the shape that qualifies for O_DIRECT on Linux. Whether direct I/O
// actually engages depends on the filesystem under TMPDIR (tmpfs refuses
// the flag and falls back to buffered I/O), so the test asserts only
// correctness and reports which path served it.
func TestFileBackendDirectIO(t *testing.T) {
	const blockBytes = 4096
	v := MustVolume(Config{BlockBytes: blockBytes, MemBlocks: 4, Disks: 2, Dir: t.TempDir()})
	defer v.Close()
	fb := v.backend.(*fileBackend)
	t.Logf("direct I/O engaged per disk: %v", fb.direct)
	base := v.Alloc(8)
	src := make([]byte, blockBytes)
	got := make([]byte, blockBytes)
	for i := int64(0); i < 8; i++ {
		for j := range src {
			src[j] = byte(int64(j)*7 + i)
		}
		if err := v.WriteBlock(base+i, src); err != nil {
			t.Fatal(err)
		}
		if err := v.ReadBlock(base+i, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(src, got) {
			t.Fatalf("block %d round trip mismatch", i)
		}
	}
	// Past-EOF read on a block-aligned file: still a zero block.
	if err := v.ReadBlock(base+7, got); err != nil {
		t.Fatal(err)
	}
}

// TestAlignedBlock checks the O_DIRECT staging buffer really is aligned and
// exactly one block long.
func TestAlignedBlock(t *testing.T) {
	for _, n := range []int{512, 4096, 8192} {
		b := alignedBlock(n)
		if len(b) != n || cap(b) != n {
			t.Fatalf("alignedBlock(%d): len %d cap %d", n, len(b), cap(b))
		}
		if rem := uintptr(unsafe.Pointer(&b[0])) % directAlign; rem != 0 {
			t.Fatalf("alignedBlock(%d): misaligned by %d", n, rem)
		}
	}
}

// backendWorkload drives a deterministic mixed workload — allocation,
// single-block and batched transfers, frees, reuse — against v and returns
// the final counters plus a digest of every block read.
func backendWorkload(t *testing.T, v *Volume, seed int64) (Stats, []byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	bb := v.BlockBytes()
	base := v.Alloc(64)
	var digest []byte
	buf := make([]byte, bb)
	for op := 0; op < 200; op++ {
		switch rng.Intn(4) {
		case 0: // single write
			addr := base + rng.Int63n(64)
			for j := range buf {
				buf[j] = byte(rng.Intn(256))
			}
			if err := v.WriteBlock(addr, buf); err != nil {
				t.Fatal(err)
			}
		case 1: // single read
			addr := base + rng.Int63n(64)
			if err := v.ReadBlock(addr, buf); err != nil {
				t.Fatal(err)
			}
			digest = append(digest, buf...)
		case 2: // batched write of k distinct blocks
			k := 1 + rng.Intn(6)
			addrs := make([]int64, k)
			srcs := make([][]byte, k)
			for i := range addrs {
				addrs[i] = base + rng.Int63n(64)
				srcs[i] = bytes.Repeat([]byte{byte(rng.Intn(256))}, bb)
			}
			if err := v.BatchWrite(addrs, srcs); err != nil {
				t.Fatal(err)
			}
		case 3: // batched read
			k := 1 + rng.Intn(6)
			addrs := make([]int64, k)
			dsts := make([][]byte, k)
			for i := range addrs {
				addrs[i] = base + rng.Int63n(64)
				dsts[i] = make([]byte, bb)
			}
			if err := v.BatchRead(addrs, dsts); err != nil {
				t.Fatal(err)
			}
			for _, d := range dsts {
				digest = append(digest, d...)
			}
		}
	}
	return v.stats.Snapshot(), digest
}

// TestQuickBackendsAgree is the engine-level sim==file property: the same
// seeded workload on a memory-backed and a file-backed volume must produce
// byte-identical Stats snapshots (reads, writes, steps, per-disk shards)
// and byte-identical read contents.
func TestQuickBackendsAgree(t *testing.T) {
	prop := func(seedRaw uint32, disksRaw uint8, latencyOn bool) bool {
		seed := int64(seedRaw)
		disks := 1 + int(disksRaw)%4
		var latency time.Duration
		if latencyOn {
			latency = 5 * time.Microsecond
		}
		cfg := Config{BlockBytes: 48, MemBlocks: 8, Disks: disks, DiskLatency: latency}

		mv := MustVolume(cfg)
		memStats, memDigest := backendWorkload(t, mv, seed)
		mv.Close()

		fcfg := cfg
		fcfg.Dir = t.TempDir()
		fv := MustVolume(fcfg)
		fileStats, fileDigest := backendWorkload(t, fv, seed)
		if err := fv.Close(); err != nil {
			t.Logf("file volume close: %v", err)
			return false
		}

		if !reflect.DeepEqual(memStats, fileStats) {
			t.Logf("stats diverge: mem %+v file %+v", memStats, fileStats)
			return false
		}
		if !bytes.Equal(memDigest, fileDigest) {
			t.Logf("read contents diverge (seed %d, D=%d)", seed, disks)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
