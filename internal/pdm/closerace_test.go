package pdm

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestCloseFailsOutstandingJoins pins the Close-vs-async contract: closing
// a volume while Batch*Async handles are outstanding must fail those joins
// cleanly (nil for shares already serviced, ErrClosed otherwise) and return
// promptly — not run out the queued reservation horizon, hang, or leak a
// worker. Run under -race in `make ci`, this doubles as the race test for
// the dispatch/close interleaving.
func TestCloseFailsOutstandingJoins(t *testing.T) {
	const (
		batches  = 24
		perBatch = 8
		latency  = 2 * time.Millisecond
	)
	v := MustVolume(Config{BlockBytes: 256, MemBlocks: 8, Disks: 2, DiskLatency: latency})
	addr := v.Alloc(batches * perBatch)
	joins := make([]func() error, 0, batches)
	var mu sync.Mutex
	var wg sync.WaitGroup
	// Dispatch from several goroutines so Close races real concurrent
	// dispatchers, not a quiesced queue.
	for b := 0; b < batches; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			addrs := make([]int64, perBatch)
			srcs := make([][]byte, perBatch)
			for i := range addrs {
				addrs[i] = addr + int64(b*perBatch+i)
				srcs[i] = make([]byte, 256)
			}
			j := v.BatchWriteAsync(addrs, srcs)
			mu.Lock()
			joins = append(joins, j)
			mu.Unlock()
		}(b)
	}
	wg.Wait()

	// The queued backlog reserves batches*perBatch*latency ≈ 380ms per
	// disk; a Close that waited the horizon out would blow this deadline.
	start := time.Now()
	done := make(chan error, 1)
	go func() { done <- v.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on the outstanding async backlog")
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("Close took %v; it must not run out the reserved horizon", el)
	}
	for i, j := range joins {
		if err := j(); err != nil && !errors.Is(err, ErrClosed) {
			t.Fatalf("join %d: want nil or ErrClosed, got %v", i, err)
		}
	}
	// Joins after Close must still be answerable (no hang) and dispatch
	// must refuse cleanly.
	if err := v.BatchWrite([]int64{addr}, [][]byte{make([]byte, 256)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close dispatch: want ErrClosed, got %v", err)
	}
}

// TestPoolWaitRelease pins the admission primitive: a Release wakes the
// head waiter, a deadline parks out with false, and a signal racing a
// timeout is passed on rather than swallowed.
func TestPoolWaitRelease(t *testing.T) {
	p := NewPool(64, 1)
	f, err := p.Alloc()
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	// Deadline with no release: false, promptly.
	if p.WaitRelease(time.Now().Add(5 * time.Millisecond)) {
		t.Fatal("WaitRelease returned true without any release")
	}
	// A parked waiter is woken by Release.
	woke := make(chan bool, 1)
	go func() { woke <- p.WaitRelease(time.Now().Add(5 * time.Second)) }()
	time.Sleep(10 * time.Millisecond) // let it park
	f.Release()
	select {
	case ok := <-woke:
		if !ok {
			t.Fatal("waiter timed out despite the release")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Release did not wake the waiter")
	}
	// FIFO order: with two waiters, one release wakes exactly the first.
	f = p.MustAlloc()
	order := make(chan int, 2)
	ready := make(chan struct{})
	go func() {
		close(ready)
		if p.WaitRelease(time.Now().Add(5 * time.Second)) {
			order <- 1
		}
	}()
	<-ready
	time.Sleep(10 * time.Millisecond)
	go func() {
		if p.WaitRelease(time.Now().Add(5 * time.Second)) {
			order <- 2
		}
	}()
	time.Sleep(10 * time.Millisecond)
	f.Release()
	select {
	case first := <-order:
		if first != 1 {
			t.Fatalf("release woke waiter %d; the FIFO head was 1", first)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no waiter woke")
	}
	select {
	case second := <-order:
		t.Fatalf("one release woke two waiters (second: %d)", second)
	case <-time.After(50 * time.Millisecond):
	}
}
