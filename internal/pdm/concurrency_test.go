package pdm

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestConcurrentSingleBlockIO hammers a shared volume with parallel readers
// and writers on disjoint address ranges; under -race it fails if the engine
// drops a lock. Each goroutine owns a contiguous address range, so data
// verification is exact. It runs against both storage backends.
func TestConcurrentSingleBlockIO(t *testing.T) {
	forEachBackend(t, Config{BlockBytes: 32, MemBlocks: 4, Disks: 3}, testConcurrentSingleBlockIO)
}

func testConcurrentSingleBlockIO(t *testing.T, v *Volume) {
	const (
		workers   = 8
		perWorker = 64
	)
	base := v.Alloc(workers * perWorker)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, 32)
			got := make([]byte, 32)
			for i := 0; i < perWorker; i++ {
				addr := base + int64(w*perWorker+i)
				for j := range buf {
					buf[j] = byte(w ^ i ^ j)
				}
				if err := v.WriteBlock(addr, buf); err != nil {
					errs <- err
					return
				}
				if err := v.ReadBlock(addr, got); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(buf, got) {
					errs <- fmt.Errorf("worker %d block %d: round trip mismatch", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	s := v.Stats().Snapshot()
	if want := uint64(workers * perWorker); s.Writes != want || s.Reads != want {
		t.Fatalf("counts: reads=%d writes=%d, want %d each", s.Reads, s.Writes, want)
	}
	var perDisk uint64
	for _, c := range s.PerDiskWrites {
		perDisk += c
	}
	if perDisk != s.Writes {
		t.Fatalf("per-disk writes sum %d != total %d", perDisk, s.Writes)
	}
}

// TestConcurrentBatchIO runs parallel batched writers and readers through
// the per-disk worker engine (non-zero latency) and checks both data and
// counter integrity, against both storage backends.
func TestConcurrentBatchIO(t *testing.T) {
	cfg := Config{BlockBytes: 16, MemBlocks: 8, Disks: 4, DiskLatency: 20 * time.Microsecond}
	forEachBackend(t, cfg, testConcurrentBatchIO)
}

func testConcurrentBatchIO(t *testing.T, v *Volume) {
	const (
		workers = 4
		batches = 8
		batchSz = 6
	)
	base := v.Alloc(workers * batches * batchSz)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				addrs := make([]int64, batchSz)
				srcs := make([][]byte, batchSz)
				dsts := make([][]byte, batchSz)
				for i := range addrs {
					addrs[i] = base + int64(((w*batches+b)*batchSz + i))
					srcs[i] = bytes.Repeat([]byte{byte(w*31 + b*7 + i)}, 16)
					dsts[i] = make([]byte, 16)
				}
				if err := v.BatchWrite(addrs, srcs); err != nil {
					errs <- err
					return
				}
				if err := v.BatchRead(addrs, dsts); err != nil {
					errs <- err
					return
				}
				for i := range dsts {
					if !bytes.Equal(srcs[i], dsts[i]) {
						errs <- fmt.Errorf("worker %d batch %d item %d: mismatch", w, b, i)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	s := v.Stats().Snapshot()
	want := uint64(workers * batches * batchSz)
	if s.Writes != want || s.Reads != want {
		t.Fatalf("counts: reads=%d writes=%d, want %d each", s.Reads, s.Writes, want)
	}
}

// TestConcurrentAllocFreeChurn exercises the allocator metadata under
// parallel alloc/free/write churn.
func TestConcurrentAllocFreeChurn(t *testing.T) {
	v := MustVolume(Config{BlockBytes: 8, MemBlocks: 4, Disks: 2})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 8)
			for i := 0; i < 200; i++ {
				a := v.Alloc(1)
				if err := v.WriteBlock(a, buf); err != nil {
					panic(err)
				}
				if i%3 == 0 {
					v.Free(a)
				}
			}
		}()
	}
	wg.Wait()
	if v.Allocated() <= 0 {
		t.Fatal("no blocks allocated")
	}
}

// TestConcurrentPoolChurn exercises Pool alloc/free churn from many
// goroutines; -race plus the accounting assertions catch lost updates.
func TestConcurrentPoolChurn(t *testing.T) {
	p := NewPool(16, 32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]*Frame, 0, 4)
			for i := 0; i < 500; i++ {
				if len(local) < 4 {
					if f, err := p.Alloc(); err == nil {
						f.Buf[0] = byte(i)
						local = append(local, f)
						continue
					}
				}
				if len(local) > 0 {
					local[len(local)-1].Release()
					local = local[:len(local)-1]
				}
			}
			ReleaseAll(local)
		}()
	}
	wg.Wait()
	if got := p.InUse(); got != 0 {
		t.Fatalf("in-use after churn = %d, want 0", got)
	}
	if p.Peak() > p.Capacity() {
		t.Fatalf("peak %d exceeds capacity %d", p.Peak(), p.Capacity())
	}
}

// TestStatsSnapshotDuringIO reads Snapshot concurrently with in-flight I/O;
// it must never race and the final snapshot must match the work done.
func TestStatsSnapshotDuringIO(t *testing.T) {
	v := MustVolume(Config{BlockBytes: 8, MemBlocks: 4, Disks: 2})
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 8)
		base := v.Alloc(256)
		for i := int64(0); i < 256; i++ {
			if err := v.WriteBlock(base+i, buf); err != nil {
				panic(err)
			}
		}
	}()
	for {
		select {
		case <-done:
			if s := v.Stats().Snapshot(); s.Writes != 256 {
				t.Fatalf("final writes = %d, want 256", s.Writes)
			}
			return
		default:
			_ = v.Stats().Snapshot()
			_ = v.Stats().Total()
		}
	}
}

// TestCloseIdempotentAndRejectsIO checks worker shutdown semantics.
func TestCloseIdempotentAndRejectsIO(t *testing.T) {
	v := MustVolume(Config{BlockBytes: 8, MemBlocks: 4, Disks: 2, DiskLatency: time.Microsecond})
	base := v.Alloc(2)
	bufs := [][]byte{make([]byte, 8), make([]byte, 8)}
	addrs := []int64{base, base + 1}
	if err := v.BatchWrite(addrs, bufs); err != nil {
		t.Fatal(err)
	}
	v.Close()
	v.Close() // idempotent
	before := v.Stats().Snapshot()
	if err := v.BatchRead(addrs, bufs); err != ErrClosed {
		t.Fatalf("batch after close: got %v, want ErrClosed", err)
	}
	// Single-block I/O is refused too — the backend may hold real file
	// handles that Close released.
	if err := v.ReadBlock(addrs[0], bufs[0]); err != ErrClosed {
		t.Fatalf("read after close: got %v, want ErrClosed", err)
	}
	if err := v.WriteBlock(addrs[0], bufs[0]); err != ErrClosed {
		t.Fatalf("write after close: got %v, want ErrClosed", err)
	}
	// Refused I/O must not charge any counter: no phantom transfers.
	after := v.Stats().Snapshot()
	if after.Reads != before.Reads || after.Writes != before.Writes || after.Steps != before.Steps {
		t.Fatalf("closed I/O charged counters: before %+v after %+v", before, after)
	}
	// Zero-latency volumes never start workers; Close must still be safe.
	v2 := MustVolume(Config{BlockBytes: 8, MemBlocks: 4, Disks: 2})
	v2.Close()
}

// measureBatchRead writes then re-reads `blocks` blocks through striped
// batches of size `width` on a freshly built volume, returning elapsed
// read time.
func measureBatchRead(t *testing.T, disks int, latency time.Duration, blocks, width int) time.Duration {
	t.Helper()
	v := MustVolume(Config{BlockBytes: 64, MemBlocks: 2 * width, Disks: disks, DiskLatency: latency})
	defer v.Close()
	base := v.Alloc(blocks)
	src := make([]byte, 64)
	bufs := make([][]byte, width)
	addrs := make([]int64, width)
	for i := range bufs {
		bufs[i] = make([]byte, 64)
	}
	for b := 0; b < blocks; b++ {
		copy(src, []byte{byte(b)})
		if err := v.WriteBlock(base+int64(b), src); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	for b := 0; b < blocks; b += width {
		for i := 0; i < width; i++ {
			addrs[i] = base + int64(b+i)
		}
		if err := v.BatchRead(addrs, bufs); err != nil {
			t.Fatal(err)
		}
	}
	return time.Since(start)
}

// TestDiskLatencyParallelSpeedup is the acceptance check for the concurrent
// engine: at equal total block count and non-zero service latency, striped
// batches on 4 disks must run at least 2x faster on the wall clock than on
// 1 disk (the model predicts 4x; 2x leaves headroom for scheduler noise).
func TestDiskLatencyParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const (
		// Well above the host's sleep granularity (~1ms), so per-batch
		// service times, not timer floors, dominate the measurement.
		latency = 2 * time.Millisecond
		blocks  = 64
		width   = 4
	)
	serial := measureBatchRead(t, 1, latency, blocks, width)
	parallel := measureBatchRead(t, 4, latency, blocks, width)
	if parallel <= 0 {
		t.Fatal("degenerate timing")
	}
	speedup := float64(serial) / float64(parallel)
	t.Logf("D=1: %v  D=4: %v  speedup %.2fx", serial, parallel, speedup)
	if speedup < 2 {
		t.Fatalf("4-disk speedup %.2fx < 2x (D=1 %v, D=4 %v)", speedup, serial, parallel)
	}
}

// TestLatencyStatsMatchSerial asserts the counted model is unchanged by the
// worker engine or the storage backend: the same workload on latency and
// no-latency volumes, memory- and file-backed, yields identical Stats.
func TestLatencyStatsMatchSerial(t *testing.T) {
	run := func(cfg Config) Stats {
		v := MustVolume(cfg)
		defer v.Close()
		base := v.Alloc(16)
		bufs := make([][]byte, 4)
		addrs := make([]int64, 4)
		for i := range bufs {
			bufs[i] = make([]byte, 32)
		}
		for b := 0; b < 16; b += 4 {
			for i := 0; i < 4; i++ {
				addrs[i] = base + int64(b+i)
			}
			if err := v.BatchWrite(addrs, bufs); err != nil {
				panic(err)
			}
		}
		for i := 0; i < 4; i++ {
			addrs[i] = base + int64(i*4) // collide on one disk
		}
		if err := v.BatchRead(addrs, bufs); err != nil {
			panic(err)
		}
		return v.Stats().Snapshot()
	}
	serial := run(Config{BlockBytes: 32, MemBlocks: 8, Disks: 4})
	variants := map[string]Config{
		"engine":      {BlockBytes: 32, MemBlocks: 8, Disks: 4, DiskLatency: 10 * time.Microsecond},
		"file":        {BlockBytes: 32, MemBlocks: 8, Disks: 4, Dir: t.TempDir()},
		"file+engine": {BlockBytes: 32, MemBlocks: 8, Disks: 4, DiskLatency: 10 * time.Microsecond, Dir: t.TempDir()},
	}
	for name, cfg := range variants {
		got := run(cfg)
		if serial.Reads != got.Reads || serial.Writes != got.Writes || serial.Steps != got.Steps {
			t.Fatalf("%s stats diverge: serial %+v got %+v", name, serial, got)
		}
		for i := range serial.PerDiskReads {
			if serial.PerDiskReads[i] != got.PerDiskReads[i] || serial.PerDiskWrites[i] != got.PerDiskWrites[i] {
				t.Fatalf("%s per-disk stats diverge on disk %d", name, i)
			}
		}
	}
}
