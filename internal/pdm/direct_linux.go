//go:build linux

package pdm

import (
	"os"
	"syscall"
)

// openDiskFile opens the backing file for one simulated disk — creating it
// if absent, truncating any previous contents so a fresh volume's
// never-written slots read as zeros — attempting O_DIRECT when the block
// size permits aligned transfers. Filesystems that refuse the flag — tmpfs,
// some overlay and network filesystems — fall back to buffered I/O
// transparently, so the reported bool, not the platform, says whether
// transfers bypass the page cache.
func openDiskFile(path string, blockBytes int) (*os.File, bool, error) {
	if blockBytes%directAlign == 0 {
		if f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC|syscall.O_DIRECT, 0o666); err == nil {
			return f, true, nil
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o666)
	return f, false, err
}
