//go:build !linux

package pdm

import "os"

// openDiskFile opens the backing file for one simulated disk — creating it
// if absent, truncating any previous contents so a fresh volume's
// never-written slots read as zeros. Direct I/O is Linux-only in this
// package (macOS's F_NOCACHE and Windows' FILE_FLAG_NO_BUFFERING are not
// wired up), so every other platform uses ordinary buffered I/O — the
// portable fallback the file backend documents.
func openDiskFile(path string, _ int) (*os.File, bool, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o666)
	return f, false, err
}
