package pdm

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"
)

// Fault classification. Transient errors are the retryable class — a flaky
// pread, a device momentarily busy — that the Volume's retry policy (see
// Config.Retry) may re-drive; everything else is permanent and propagates
// unchanged. The classification is a wrapping marker, so any backend (or
// test double) can tag its own errors without depending on the injector.
var (
	// ErrTransient is the marker matched by IsTransient. It never surfaces
	// alone; Transient wraps it together with the underlying cause.
	ErrTransient = errors.New("pdm: transient I/O error")
	// ErrFaulted is the permanent error a FaultBackend returns once its
	// fail-after-N crash point has been reached: the disk is dead, retries
	// are pointless, and every subsequent transfer fails the same way.
	ErrFaulted = errors.New("pdm: disk failed (fault-plan crash point)")
)

// transientErr tags an error as transient. Unwrap exposes both the marker
// and the cause, so errors.Is sees ErrTransient and the original error.
type transientErr struct{ cause error }

func (e *transientErr) Error() string   { return e.cause.Error() }
func (e *transientErr) Unwrap() []error { return []error{ErrTransient, e.cause} }

// Transient classifies err as retryable. Transient(nil) is nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientErr{cause: err}
}

// IsTransient reports whether err is classified retryable.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// FaultPlan is a deterministic, seeded schedule of injected faults. Wrapped
// around any Backend (via Config.Fault or NewFaultBackend) it exercises the
// unwind and retry paths mechanically: the same seed replays the same
// faults, so a test that survives once survives always.
//
// Faults are injected before the wrapped backend moves any data, so a
// transient fault never leaves a partial transfer behind: a read that
// retries to success yields exactly the clean run's bytes, and — because
// the Volume charges its counters before the backend is invoked at all —
// exactly the clean run's counted I/Os. The sim==file byte-identity
// invariant therefore extends to faulted runs that retry to success.
type FaultPlan struct {
	// Seed fixes the per-disk random streams. Two backends with the same
	// plan inject the same faults at the same per-disk service sequence
	// positions, on any backend and any medium.
	Seed int64
	// ReadErr and WriteErr are the per-transfer probabilities, in [0, 1],
	// of failing a read (resp. write) with a Transient-classified error.
	ReadErr  float64
	WriteErr float64
	// StallEvery injects a latency spike: every k-th service call on a
	// disk sleeps Stall before transferring. Zero disables stalls.
	StallEvery int
	// Stall is the duration of an injected spike.
	Stall time.Duration
	// FailAfter, when positive, is the crash point: after this many
	// successful transfers (volume-wide) every call fails permanently
	// with ErrFaulted. Zero means the disk never dies.
	FailAfter int64
}

// Validate reports whether the plan is usable.
func (p FaultPlan) Validate() error {
	if p.ReadErr < 0 || p.ReadErr > 1 || p.WriteErr < 0 || p.WriteErr > 1 {
		return fmt.Errorf("pdm: fault probabilities must be in [0,1], got read %v write %v", p.ReadErr, p.WriteErr)
	}
	if p.StallEvery < 0 || p.Stall < 0 {
		return fmt.Errorf("pdm: stall plan must be non-negative, got every %d for %v", p.StallEvery, p.Stall)
	}
	if p.FailAfter < 0 {
		return fmt.Errorf("pdm: FailAfter must be non-negative, got %d", p.FailAfter)
	}
	return nil
}

// faultDisk is one disk's injection state. No lock: the Volume serialises
// Service calls per disk (see the Backend contract), so the stream of draws
// on a disk is deterministic under any goroutine interleaving.
type faultDisk struct {
	rng *rand.Rand
	ops int64 // service calls on this disk, including faulted attempts
}

// FaultBackend wraps a Backend with a FaultPlan. Construct one directly for
// tests that need the injection counters, or set Config.Fault to have
// NewVolume wrap whichever backend the config selects.
type FaultBackend struct {
	inner Backend
	plan  FaultPlan
	disks []faultDisk

	good     atomic.Int64 // successful transfers, volume-wide (FailAfter clock)
	injected atomic.Int64 // transient faults injected
	stalls   atomic.Int64 // latency spikes injected
}

// NewFaultBackend wraps inner for a volume of disks disks. The plan must
// validate.
func NewFaultBackend(inner Backend, disks int, plan FaultPlan) (*FaultBackend, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if disks < 1 {
		return nil, fmt.Errorf("pdm: fault backend needs at least one disk, got %d", disks)
	}
	f := &FaultBackend{inner: inner, plan: plan, disks: make([]faultDisk, disks)}
	for i := range f.disks {
		// One independent deterministic stream per disk, derived from the
		// plan seed; the odd multiplier decorrelates the disks.
		f.disks[i].rng = rand.New(rand.NewSource(plan.Seed ^ (int64(i+1) * 0x5851f42d4c957f2d)))
	}
	return f, nil
}

// Service injects the plan's faults, then delegates to the wrapped backend.
// Transient faults fire before any data moves, so a retried transfer is
// indistinguishable from a clean one.
func (f *FaultBackend) Service(disk int, slot int64, buf []byte, write bool) error {
	if f.plan.FailAfter > 0 && f.good.Load() >= f.plan.FailAfter {
		return fmt.Errorf("%w: disk %d slot %d", ErrFaulted, disk, slot)
	}
	d := &f.disks[disk]
	d.ops++
	if f.plan.StallEvery > 0 && f.plan.Stall > 0 && d.ops%int64(f.plan.StallEvery) == 0 {
		f.stalls.Add(1)
		time.Sleep(f.plan.Stall)
	}
	p, kind := f.plan.ReadErr, "read"
	if write {
		p, kind = f.plan.WriteErr, "write"
	}
	if p > 0 && d.rng.Float64() < p {
		f.injected.Add(1)
		return Transient(fmt.Errorf("pdm: injected %s fault on disk %d slot %d", kind, disk, slot))
	}
	if err := f.inner.Service(disk, slot, buf, write); err != nil {
		return err
	}
	f.good.Add(1)
	return nil
}

// Close closes the wrapped backend.
func (f *FaultBackend) Close() error { return f.inner.Close() }

// Injected returns the number of transient faults injected so far.
func (f *FaultBackend) Injected() int64 { return f.injected.Load() }

// Stalls returns the number of latency spikes injected so far.
func (f *FaultBackend) Stalls() int64 { return f.stalls.Load() }

// Crashed reports whether the fail-after-N crash point has been reached.
func (f *FaultBackend) Crashed() bool {
	return f.plan.FailAfter > 0 && f.good.Load() >= f.plan.FailAfter
}

// RetryPolicy drives the Volume's handling of Transient-classified service
// errors: capped exponential backoff under a per-op deadline. Permanent
// errors are never retried. Zero-valued fields pick the defaults noted on
// each; the zero policy as a whole is therefore usable.
type RetryPolicy struct {
	// MaxRetries bounds the re-drives of one block transfer (the first
	// attempt is not a retry). Zero means 4.
	MaxRetries int
	// BaseBackoff is the sleep before the first retry; it doubles per
	// retry up to MaxBackoff. Zero means 50µs.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff. Zero means 2ms.
	MaxBackoff time.Duration
	// OpDeadline bounds one transfer's total retry budget, backoff
	// included: a retry that cannot complete its sleep before the
	// deadline is not attempted and the transfer fails with the last
	// transient error. Zero means no deadline.
	OpDeadline time.Duration
}

// Validate reports whether the policy is usable.
func (r RetryPolicy) Validate() error {
	if r.MaxRetries < 0 {
		return fmt.Errorf("pdm: MaxRetries must be non-negative, got %d", r.MaxRetries)
	}
	if r.BaseBackoff < 0 || r.MaxBackoff < 0 || r.OpDeadline < 0 {
		return fmt.Errorf("pdm: retry durations must be non-negative, got base %v max %v deadline %v",
			r.BaseBackoff, r.MaxBackoff, r.OpDeadline)
	}
	return nil
}

func (r RetryPolicy) maxRetries() int {
	if r.MaxRetries == 0 {
		return 4
	}
	return r.MaxRetries
}

func (r RetryPolicy) base() time.Duration {
	if r.BaseBackoff == 0 {
		return 50 * time.Microsecond
	}
	return r.BaseBackoff
}

func (r RetryPolicy) cap() time.Duration {
	if r.MaxBackoff == 0 {
		return 2 * time.Millisecond
	}
	return r.MaxBackoff
}
