package pdm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"
)

// TestTransientClassification pins the marker contract: Transient wraps
// both the marker and the cause, permanent errors stay permanent.
func TestTransientClassification(t *testing.T) {
	if Transient(nil) != nil {
		t.Fatal("Transient(nil) must be nil")
	}
	cause := errors.New("flaky pread")
	err := Transient(cause)
	if !IsTransient(err) {
		t.Fatal("Transient error not classified transient")
	}
	if !errors.Is(err, cause) {
		t.Fatal("Transient must preserve the cause for errors.Is")
	}
	if wrapped := fmt.Errorf("outer: %w", err); !IsTransient(wrapped) {
		t.Fatal("classification must survive further wrapping")
	}
	if IsTransient(cause) {
		t.Fatal("unwrapped cause must not be transient")
	}
	if IsTransient(ErrFaulted) {
		t.Fatal("the crash-point error is permanent by definition")
	}
}

// faultWorkload writes then reads back n blocks through both the single
// and batched paths, returning the read-back payloads.
func faultWorkload(t *testing.T, v *Volume, n int) [][]byte {
	t.Helper()
	bb := v.BlockBytes()
	addr := v.Alloc(n)
	srcs := make([][]byte, n)
	addrs := make([]int64, n)
	for i := range srcs {
		srcs[i] = make([]byte, bb)
		binary.LittleEndian.PutUint64(srcs[i], uint64(i)*0x9e37+1)
		addrs[i] = addr + int64(i)
	}
	half := n / 2
	for i := 0; i < half; i++ {
		if err := v.WriteBlock(addrs[i], srcs[i]); err != nil {
			t.Fatalf("WriteBlock: %v", err)
		}
	}
	if err := v.BatchWrite(addrs[half:], srcs[half:]); err != nil {
		t.Fatalf("BatchWrite: %v", err)
	}
	dsts := make([][]byte, n)
	for i := range dsts {
		dsts[i] = make([]byte, bb)
	}
	for i := 0; i < half; i++ {
		if err := v.ReadBlock(addrs[i], dsts[i]); err != nil {
			t.Fatalf("ReadBlock: %v", err)
		}
	}
	if err := v.BatchRead(addrs[half:], dsts[half:]); err != nil {
		t.Fatalf("BatchRead: %v", err)
	}
	for i := range dsts {
		if !reflect.DeepEqual(srcs[i], dsts[i]) {
			t.Fatalf("block %d corrupted by faulted run", i)
		}
	}
	return dsts
}

// TestRetryToSuccessIdentity is the tentpole invariant: a seeded transient
// fault plan with retries enabled completes with output and counted I/Os
// identical to the clean run, the extra attempts visible only in
// Stats.Retries — on the in-memory and the file backend alike.
func TestRetryToSuccessIdentity(t *testing.T) {
	const n = 64
	for _, lat := range []time.Duration{0, 100 * time.Microsecond} {
		for _, file := range []bool{false, true} {
			name := fmt.Sprintf("file=%v/latency=%v", file, lat)
			cfg := Config{BlockBytes: 512, MemBlocks: 32, Disks: 4, DiskLatency: lat}
			if file {
				cfg.Dir = t.TempDir()
			}
			clean := MustVolume(cfg)
			faultCfg := cfg
			if file {
				faultCfg.Dir = t.TempDir()
			}
			faultCfg.Fault = &FaultPlan{Seed: 42, ReadErr: 0.05, WriteErr: 0.05}
			faultCfg.Retry = &RetryPolicy{MaxRetries: 8, BaseBackoff: 10 * time.Microsecond}
			faulted := MustVolume(faultCfg)

			cleanOut := faultWorkload(t, clean, n)
			faultOut := faultWorkload(t, faulted, n)
			if !reflect.DeepEqual(cleanOut, faultOut) {
				t.Fatalf("%s: faulted output differs from clean run", name)
			}
			cs, fs := clean.Stats().Snapshot(), faulted.Stats().Snapshot()
			injected := faulted.Fault().Injected()
			if injected == 0 {
				t.Fatalf("%s: fault plan injected nothing; the gate is vacuous", name)
			}
			if fs.Retries != uint64(injected) {
				t.Fatalf("%s: retries %d != injected faults %d", name, fs.Retries, injected)
			}
			fs.Retries = 0
			if !reflect.DeepEqual(cs, fs) {
				t.Fatalf("%s: counted I/Os differ from clean run:\nclean   %+v\nfaulted %+v", name, cs, fs)
			}
			if clean.Fault() != nil {
				t.Fatalf("%s: clean volume reports a fault backend", name)
			}
			if err := faulted.Close(); err != nil {
				t.Fatalf("%s: close faulted: %v", name, err)
			}
			if err := clean.Close(); err != nil {
				t.Fatalf("%s: close clean: %v", name, err)
			}
		}
	}
}

// TestFaultDeterminism: the same seed replays the same faults.
func TestFaultDeterminism(t *testing.T) {
	run := func() (Stats, int64) {
		cfg := Config{BlockBytes: 256, MemBlocks: 16, Disks: 3,
			Fault: &FaultPlan{Seed: 7, ReadErr: 0.1, WriteErr: 0.1},
			Retry: &RetryPolicy{MaxRetries: 10, BaseBackoff: time.Microsecond}}
		v := MustVolume(cfg)
		defer v.Close()
		faultWorkload(t, v, 40)
		return v.Stats().Snapshot(), v.Fault().Injected()
	}
	s1, i1 := run()
	s2, i2 := run()
	if !reflect.DeepEqual(s1, s2) || i1 != i2 {
		t.Fatalf("same seed diverged: %+v/%d vs %+v/%d", s1, i1, s2, i2)
	}
}

// flakyBackend always fails with a transient error; it counts attempts.
type flakyBackend struct {
	attempts int
	after    int // succeed after this many failures per call sequence; <0 = never
	inner    Backend
}

func (f *flakyBackend) Service(disk int, slot int64, buf []byte, write bool) error {
	f.attempts++
	if f.after >= 0 && f.attempts > f.after {
		return f.inner.Service(disk, slot, buf, write)
	}
	return Transient(errors.New("injected"))
}

func (f *flakyBackend) Close() error { return f.inner.Close() }

// TestRetriesExhausted: a transient error that outlives the retry budget
// escalates to the caller, still classified transient, with every attempt
// counted.
func TestRetriesExhausted(t *testing.T) {
	cfg := Config{BlockBytes: 128, MemBlocks: 4, Disks: 1,
		Retry: &RetryPolicy{MaxRetries: 3, BaseBackoff: time.Microsecond}}
	v := MustVolume(cfg)
	defer v.Close()
	fb := &flakyBackend{after: -1, inner: v.backend}
	v.backend = fb
	addr := v.Alloc(1)
	err := v.WriteBlock(addr, make([]byte, 128))
	if err == nil {
		t.Fatal("expected exhausted retries to fail")
	}
	if !IsTransient(err) {
		t.Fatalf("exhausted transient error lost its classification: %v", err)
	}
	if fb.attempts != 4 { // 1 first attempt + 3 retries
		t.Fatalf("attempts = %d, want 4", fb.attempts)
	}
	if got := v.Stats().Snapshot().Retries; got != 3 {
		t.Fatalf("Retries = %d, want 3", got)
	}
	// Counters were charged exactly once for the failed op.
	if s := v.Stats().Snapshot(); s.Writes != 1 {
		t.Fatalf("Writes = %d, want 1", s.Writes)
	}
}

// TestRetryOpDeadline: the per-op deadline sheds a retry whose backoff
// cannot complete in time.
func TestRetryOpDeadline(t *testing.T) {
	cfg := Config{BlockBytes: 128, MemBlocks: 4, Disks: 1,
		Retry: &RetryPolicy{MaxRetries: 100, BaseBackoff: 50 * time.Millisecond, OpDeadline: time.Millisecond}}
	v := MustVolume(cfg)
	defer v.Close()
	v.backend = &flakyBackend{after: -1, inner: v.backend}
	addr := v.Alloc(1)
	start := time.Now()
	err := v.WriteBlock(addr, make([]byte, 128))
	if err == nil {
		t.Fatal("expected deadline to fail the op")
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("deadline did not bound the op: took %v", el)
	}
	if got := v.Stats().Snapshot().Retries; got != 0 {
		t.Fatalf("no retry should have been attempted, got %d", got)
	}
}

// TestPermanentNotRetried: non-transient backend errors propagate unchanged
// with zero retries, even under an aggressive policy.
func TestPermanentNotRetried(t *testing.T) {
	cfg := Config{BlockBytes: 128, MemBlocks: 8, Disks: 2,
		Fault: &FaultPlan{Seed: 1, FailAfter: 4},
		Retry: &RetryPolicy{MaxRetries: 50, BaseBackoff: time.Microsecond}}
	v := MustVolume(cfg)
	defer v.Close()
	addr := v.Alloc(8)
	buf := make([]byte, 128)
	var firstErr error
	for i := 0; i < 8; i++ {
		if err := v.WriteBlock(addr+int64(i), buf); err != nil {
			firstErr = err
			break
		}
	}
	if firstErr == nil {
		t.Fatal("crash point never fired")
	}
	if !errors.Is(firstErr, ErrFaulted) {
		t.Fatalf("want ErrFaulted, got %v", firstErr)
	}
	if IsTransient(firstErr) {
		t.Fatal("crash-point error must not be transient")
	}
	if got := v.Stats().Snapshot().Retries; got != 0 {
		t.Fatalf("permanent error was retried %d times", got)
	}
	if !v.Fault().Crashed() {
		t.Fatal("Crashed() should report the crash point")
	}
}
