// Package pdm implements the Parallel Disk Model of Vitter and Shriver as an
// instrumented, in-process block device.
//
// The model has four parameters:
//
//	N — problem size in records (a property of the workload, not the device)
//	M — internal memory capacity in records
//	B — block size in records
//	D — number of independent disks
//
// A Volume exposes a linear space of fixed-size blocks striped round-robin
// across D simulated disks and counts every block transfer. Two costs are
// tracked: total block I/Os (the classical single-disk measure) and parallel
// I/O steps, where one step may transfer up to D blocks provided they reside
// on distinct disks. Algorithms built on pdm therefore report exactly the
// quantities the external-memory literature reasons about, free of page-cache
// and garbage-collector noise.
//
// Memory is modelled by Pool, which hands out at most M/B block-sized frames
// and refuses further allocation, so an algorithm that exceeds its stated
// memory bound fails its tests rather than silently borrowing RAM.
package pdm

import (
	"errors"
	"fmt"
)

// Common errors returned by Volume operations.
var (
	// ErrBadAddress reports a block address outside the allocated space.
	ErrBadAddress = errors.New("pdm: block address out of range")
	// ErrBadBuffer reports a caller buffer whose length is not the block size.
	ErrBadBuffer = errors.New("pdm: buffer length != block size")
	// ErrNoFrames reports that the buffer pool is exhausted, i.e. the
	// algorithm attempted to exceed its internal-memory budget M.
	ErrNoFrames = errors.New("pdm: buffer pool exhausted (memory budget M exceeded)")
)

// Config fixes the device-shape parameters of a parallel disk model instance.
// The problem size N is a property of each workload and does not appear here.
type Config struct {
	// BlockBytes is the size of one block in bytes (the survey's B, here in
	// bytes; divide by a record size to obtain B in records).
	BlockBytes int
	// MemBlocks is the number of block frames that fit in internal memory,
	// i.e. M/B. A Pool created from this config enforces the budget.
	MemBlocks int
	// Disks is D, the number of independent disks blocks are striped over.
	Disks int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.BlockBytes <= 0 {
		return fmt.Errorf("pdm: BlockBytes must be positive, got %d", c.BlockBytes)
	}
	if c.MemBlocks < 2 {
		return fmt.Errorf("pdm: MemBlocks must be at least 2, got %d", c.MemBlocks)
	}
	if c.Disks < 1 {
		return fmt.Errorf("pdm: Disks must be at least 1, got %d", c.Disks)
	}
	return nil
}

// Stats accumulates I/O counts for a Volume. Counts are in block transfers.
type Stats struct {
	// Reads and Writes count individual block transfers.
	Reads  uint64
	Writes uint64
	// Steps counts parallel I/O steps: a batch transfer of k blocks spread
	// over the disks costs max-blocks-per-single-disk steps; an unbatched
	// transfer costs one step.
	Steps uint64
	// PerDiskReads and PerDiskWrites break transfers down by disk.
	PerDiskReads  []uint64
	PerDiskWrites []uint64
}

// Total returns reads plus writes.
func (s *Stats) Total() uint64 { return s.Reads + s.Writes }

// Reset zeroes all counters in place, preserving the per-disk slices.
func (s *Stats) Reset() {
	s.Reads, s.Writes, s.Steps = 0, 0, 0
	for i := range s.PerDiskReads {
		s.PerDiskReads[i] = 0
	}
	for i := range s.PerDiskWrites {
		s.PerDiskWrites[i] = 0
	}
}

// Snapshot returns a copy of the current counters.
func (s *Stats) Snapshot() Stats {
	cp := *s
	cp.PerDiskReads = append([]uint64(nil), s.PerDiskReads...)
	cp.PerDiskWrites = append([]uint64(nil), s.PerDiskWrites...)
	return cp
}

// String renders the counters compactly for logs and experiment tables.
func (s *Stats) String() string {
	return fmt.Sprintf("reads=%d writes=%d total=%d steps=%d", s.Reads, s.Writes, s.Total(), s.Steps)
}

// disk is one simulated disk: a growable array of blocks.
type disk struct {
	blocks [][]byte
}

// Volume is a linear block address space striped round-robin over D disks.
// Block address a lives on disk a mod D at position a div D. Volumes grow on
// demand through Alloc and never shrink; Free records reusable addresses.
//
// Volume is not safe for concurrent use; the external-memory algorithms in
// this module are sequential by design, as in the survey.
type Volume struct {
	cfg      Config
	disks    []disk
	next     int64 // next unallocated block address
	freeList []int64
	stats    Stats
}

// NewVolume creates an empty volume with the given configuration.
func NewVolume(cfg Config) (*Volume, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	v := &Volume{cfg: cfg, disks: make([]disk, cfg.Disks)}
	v.stats.PerDiskReads = make([]uint64, cfg.Disks)
	v.stats.PerDiskWrites = make([]uint64, cfg.Disks)
	return v, nil
}

// MustVolume is NewVolume for tests and examples with known-good configs.
func MustVolume(cfg Config) *Volume {
	v, err := NewVolume(cfg)
	if err != nil {
		panic(err)
	}
	return v
}

// Config returns the volume's configuration.
func (v *Volume) Config() Config { return v.cfg }

// BlockBytes returns the block size in bytes.
func (v *Volume) BlockBytes() int { return v.cfg.BlockBytes }

// Disks returns D, the number of disks.
func (v *Volume) Disks() int { return v.cfg.Disks }

// Stats returns the live counter set. Callers may Reset or Snapshot it.
func (v *Volume) Stats() *Stats { return &v.stats }

// Allocated returns the number of blocks ever allocated (the high-water
// address), including freed blocks.
func (v *Volume) Allocated() int64 { return v.next }

// Alloc reserves n fresh blocks and returns the address of the first.
// Addresses of a single Alloc are contiguous, so they stripe evenly over the
// disks. Freed blocks are reused only for single-block allocations.
func (v *Volume) Alloc(n int) int64 {
	if n <= 0 {
		panic("pdm: Alloc of non-positive block count")
	}
	if n == 1 && len(v.freeList) > 0 {
		addr := v.freeList[len(v.freeList)-1]
		v.freeList = v.freeList[:len(v.freeList)-1]
		return addr
	}
	addr := v.next
	v.next += int64(n)
	return addr
}

// Free marks a block address reusable. The block's contents remain until
// overwritten; reading a freed block is permitted (it models a disk, not an
// allocator with poisoning).
func (v *Volume) Free(addr int64) {
	v.freeList = append(v.freeList, addr)
}

// locate resolves a block address to its disk and slot, growing the disk's
// backing store as needed when writing.
func (v *Volume) locate(addr int64, grow bool) (*disk, int64, error) {
	if addr < 0 || addr >= v.next {
		return nil, 0, fmt.Errorf("%w: %d (allocated %d)", ErrBadAddress, addr, v.next)
	}
	d := &v.disks[int(addr)%v.cfg.Disks]
	slot := addr / int64(v.cfg.Disks)
	if int64(len(d.blocks)) <= slot {
		if !grow {
			// Reading a block that was allocated but never written yields a
			// zero block, mirroring a freshly formatted disk region.
			return d, slot, nil
		}
		for int64(len(d.blocks)) <= slot {
			d.blocks = append(d.blocks, nil)
		}
	}
	return d, slot, nil
}

// ReadBlock copies block addr into dst, which must be exactly one block long.
// It costs one block read and one parallel step.
func (v *Volume) ReadBlock(addr int64, dst []byte) error {
	if len(dst) != v.cfg.BlockBytes {
		return fmt.Errorf("%w: got %d want %d", ErrBadBuffer, len(dst), v.cfg.BlockBytes)
	}
	d, slot, err := v.locate(addr, false)
	if err != nil {
		return err
	}
	v.stats.Reads++
	v.stats.Steps++
	v.stats.PerDiskReads[int(addr)%v.cfg.Disks]++
	if slot < int64(len(d.blocks)) && d.blocks[slot] != nil {
		copy(dst, d.blocks[slot])
	} else {
		clear(dst)
	}
	return nil
}

// WriteBlock stores src as block addr. It costs one block write and one
// parallel step.
func (v *Volume) WriteBlock(addr int64, src []byte) error {
	if len(src) != v.cfg.BlockBytes {
		return fmt.Errorf("%w: got %d want %d", ErrBadBuffer, len(src), v.cfg.BlockBytes)
	}
	d, slot, err := v.locate(addr, true)
	if err != nil {
		return err
	}
	v.stats.Writes++
	v.stats.Steps++
	v.stats.PerDiskWrites[int(addr)%v.cfg.Disks]++
	if d.blocks[slot] == nil {
		d.blocks[slot] = make([]byte, v.cfg.BlockBytes)
	}
	copy(d.blocks[slot], src)
	return nil
}

// stepCost returns the parallel-step cost of touching the given addresses in
// one batch: the maximum number of them that collide on a single disk.
func (v *Volume) stepCost(addrs []int64) uint64 {
	if v.cfg.Disks == 1 {
		return uint64(len(addrs))
	}
	counts := make([]int, v.cfg.Disks)
	maxC := 0
	for _, a := range addrs {
		c := counts[int(a)%v.cfg.Disks] + 1
		counts[int(a)%v.cfg.Disks] = c
		if c > maxC {
			maxC = c
		}
	}
	return uint64(maxC)
}

// BatchRead reads len(addrs) blocks as one parallel batch. dsts[i] receives
// block addrs[i]. The batch costs len(addrs) block reads but only as many
// parallel steps as the worst single disk must serve.
func (v *Volume) BatchRead(addrs []int64, dsts [][]byte) error {
	if len(addrs) != len(dsts) {
		return fmt.Errorf("pdm: BatchRead length mismatch: %d addrs, %d buffers", len(addrs), len(dsts))
	}
	if len(addrs) == 0 {
		return nil
	}
	for i, a := range addrs {
		if len(dsts[i]) != v.cfg.BlockBytes {
			return fmt.Errorf("%w: buffer %d has %d bytes", ErrBadBuffer, i, len(dsts[i]))
		}
		d, slot, err := v.locate(a, false)
		if err != nil {
			return err
		}
		v.stats.Reads++
		v.stats.PerDiskReads[int(a)%v.cfg.Disks]++
		if slot < int64(len(d.blocks)) && d.blocks[slot] != nil {
			copy(dsts[i], d.blocks[slot])
		} else {
			clear(dsts[i])
		}
	}
	v.stats.Steps += v.stepCost(addrs)
	return nil
}

// BatchWrite writes len(addrs) blocks as one parallel batch, the write-side
// dual of BatchRead.
func (v *Volume) BatchWrite(addrs []int64, srcs [][]byte) error {
	if len(addrs) != len(srcs) {
		return fmt.Errorf("pdm: BatchWrite length mismatch: %d addrs, %d buffers", len(addrs), len(srcs))
	}
	if len(addrs) == 0 {
		return nil
	}
	for i, a := range addrs {
		if len(srcs[i]) != v.cfg.BlockBytes {
			return fmt.Errorf("%w: buffer %d has %d bytes", ErrBadBuffer, i, len(srcs[i]))
		}
		d, slot, err := v.locate(a, true)
		if err != nil {
			return err
		}
		v.stats.Writes++
		v.stats.PerDiskWrites[int(a)%v.cfg.Disks]++
		if d.blocks[slot] == nil {
			d.blocks[slot] = make([]byte, v.cfg.BlockBytes)
		}
		copy(d.blocks[slot], srcs[i])
	}
	v.stats.Steps += v.stepCost(addrs)
	return nil
}
