// Package pdm implements the Parallel Disk Model of Vitter and Shriver as an
// instrumented, in-process block device.
//
// The model has four parameters:
//
//	N — problem size in records (a property of the workload, not the device)
//	M — internal memory capacity in records
//	B — block size in records
//	D — number of independent disks
//
// A Volume exposes a linear space of fixed-size blocks striped round-robin
// across D simulated disks and counts every block transfer. Two costs are
// tracked: total block I/Os (the classical single-disk measure) and parallel
// I/O steps, where one step may transfer up to D blocks provided they reside
// on distinct disks. Algorithms built on pdm therefore report exactly the
// quantities the external-memory literature reasons about, free of page-cache
// and garbage-collector noise.
//
// # Concurrency model
//
// A Volume is safe for concurrent use. Each simulated disk has its own lock,
// so transfers addressed to distinct disks proceed in parallel, while
// transfers to the same disk serialise — exactly the contention the PDM
// charges for. When Config.DiskLatency is non-zero the volume additionally
// runs one worker goroutine per disk, each draining a per-disk request
// queue; BatchRead and BatchWrite split a batch by disk, dispatch the pieces
// to all D workers, and join, so a batch's wall-clock time is governed by
// the worst single disk (the model's parallel-step cost) rather than by the
// batch size. Each block transfer reserves DiskLatency on its disk's
// timeline at dispatch — the disk is a serial resource whose queue of
// reserved service times runs forward from the moment work is submitted —
// and the join returns when the reservation has elapsed, which makes D-way
// speedups directly measurable with a stopwatch and keeps overlap honest
// even on a single-CPU host. BatchReadAsync and BatchWriteAsync expose the
// dispatch/join split directly; package stream builds forecasting
// read-ahead and write-behind on them. Volumes with a non-zero DiskLatency
// own goroutines and should be Closed when no longer needed; Close is
// idempotent and a nil latency volume never starts workers, so existing
// synchronous callers need not change. With DiskLatency zero, batches are
// serviced inline on the calling goroutine and every I/O count is
// bit-for-bit what the serial implementation charged.
//
// # Stats semantics
//
// Counters are updated with sharded atomics: Reads, Writes and Steps are
// single atomic words, and the per-disk breakdowns are one shard per disk so
// workers never contend on a shared counter. Volume.Stats returns a live
// view — sequential callers may read its exported fields directly, as every
// Volume method completes its counter updates before returning. Callers that
// overlap I/O from several goroutines must use Stats.Snapshot (or establish
// their own happens-before edge, e.g. WaitGroup.Wait) rather than reading
// fields mid-flight. Reset and Snapshot are always safe to call concurrently
// with I/O.
//
// # Storage backends
//
// Where the bytes of each simulated disk actually live is pluggable through
// the Backend interface, carved out of the per-disk service seam: the
// Volume owns addressing, counters, reservations and worker scheduling, and
// delegates only the final one-block transfer. The default backend is the
// in-memory simulation; setting Config.Dir selects the file-backed store,
// which maps each of the D disks to its own file (O_DIRECT on Linux where
// the block size and filesystem allow, buffered I/O otherwise) so the same
// algorithms exercise real hardware. Counters are charged before the
// backend is invoked, so Stats are identical across backends for the same
// workload — the sim==file invariant the backend tests pin down.
//
// Memory is modelled by Pool, which hands out at most M/B block-sized frames
// and refuses further allocation, so an algorithm that exceeds its stated
// memory bound fails its tests rather than silently borrowing RAM. Pool is
// likewise safe for concurrent use, which lets asynchronous readers and
// writers (see package stream) charge their prefetch buffers to the same
// budget M as everything else.
package pdm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Common errors returned by Volume operations.
var (
	// ErrBadAddress reports a block address outside the allocated space.
	ErrBadAddress = errors.New("pdm: block address out of range")
	// ErrBadBuffer reports a caller buffer whose length is not the block size.
	ErrBadBuffer = errors.New("pdm: buffer length != block size")
	// ErrNoFrames reports that the buffer pool is exhausted, i.e. the
	// algorithm attempted to exceed its internal-memory budget M.
	ErrNoFrames = errors.New("pdm: buffer pool exhausted (memory budget M exceeded)")
	// ErrClosed reports I/O on a volume whose workers have been shut down.
	ErrClosed = errors.New("pdm: volume closed")
)

// Config fixes the device-shape parameters of a parallel disk model instance.
// The problem size N is a property of each workload and does not appear here.
type Config struct {
	// BlockBytes is the size of one block in bytes (the survey's B, here in
	// bytes; divide by a record size to obtain B in records).
	BlockBytes int
	// MemBlocks is the number of block frames that fit in internal memory,
	// i.e. M/B. A Pool created from this config enforces the budget.
	MemBlocks int
	// Disks is D, the number of independent disks blocks are striped over.
	Disks int
	// DiskLatency is the simulated service time per block transfer. Zero
	// (the default) services every transfer inline with no delay, preserving
	// the purely-counted model. A non-zero latency starts one worker
	// goroutine per disk and makes batch wall-clock time proportional to the
	// parallel-step cost, so striping speedups show up on a stopwatch; such
	// volumes should be Closed when done.
	DiskLatency time.Duration
	// Dir, when non-empty, stores the disks' blocks in real files — one per
	// simulated disk — under this directory (created if absent) instead of
	// in memory. See the package comment's storage-backend section; all
	// counters and semantics are identical, only the medium changes. Close
	// the volume to close the files; the files themselves are left behind.
	Dir string
	// Fault, when non-nil, wraps whichever backend the config selects in a
	// deterministic fault-injecting layer driven by this plan — transient
	// errors, latency spikes, a fail-after-N crash point — so unwind and
	// retry paths are mechanically exercisable on both media. See FaultPlan.
	Fault *FaultPlan
	// Retry, when non-nil, re-drives Transient-classified backend errors in
	// the per-disk service loop with capped exponential backoff under a
	// per-op deadline, on the single-block and batched paths alike.
	// Permanent errors propagate unchanged; every retry is counted in
	// Stats.Retries. See RetryPolicy.
	Retry *RetryPolicy
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.BlockBytes <= 0 {
		return fmt.Errorf("pdm: BlockBytes must be positive, got %d", c.BlockBytes)
	}
	if c.MemBlocks < 2 {
		return fmt.Errorf("pdm: MemBlocks must be at least 2, got %d", c.MemBlocks)
	}
	if c.Disks < 1 {
		return fmt.Errorf("pdm: Disks must be at least 1, got %d", c.Disks)
	}
	if c.DiskLatency < 0 {
		return fmt.Errorf("pdm: DiskLatency must be non-negative, got %v", c.DiskLatency)
	}
	if c.Fault != nil {
		if err := c.Fault.Validate(); err != nil {
			return err
		}
	}
	if c.Retry != nil {
		if err := c.Retry.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Stats accumulates I/O counts for a Volume. Counts are in block transfers.
//
// The counters are maintained with atomic operations, sharded per disk, so
// concurrent transfers never contend on one cache line. Reading the exported
// fields directly is fine for sequential code (every Volume call completes
// its updates before returning); code that overlaps I/O across goroutines
// should use Snapshot, which loads atomically.
type Stats struct {
	// Reads and Writes count individual block transfers.
	Reads  uint64
	Writes uint64
	// Steps counts parallel I/O steps: a batch transfer of k blocks spread
	// over the disks costs max-blocks-per-single-disk steps; an unbatched
	// transfer costs one step.
	Steps uint64
	// Retries counts transient-error re-drives performed under
	// Config.Retry. Retried attempts are not re-charged to Reads/Writes —
	// the transfer is the same block op, however many attempts it took —
	// so a faulted run that retries to success reports counted I/Os
	// identical to the clean run's, with its extra work auditable here.
	Retries uint64
	// PerDiskReads and PerDiskWrites break transfers down by disk. Each
	// entry is its own atomic shard.
	PerDiskReads  []uint64
	PerDiskWrites []uint64
}

// Total returns reads plus writes.
func (s *Stats) Total() uint64 {
	return atomic.LoadUint64(&s.Reads) + atomic.LoadUint64(&s.Writes)
}

// Reset zeroes all counters in place, preserving the per-disk slices.
func (s *Stats) Reset() {
	atomic.StoreUint64(&s.Reads, 0)
	atomic.StoreUint64(&s.Writes, 0)
	atomic.StoreUint64(&s.Steps, 0)
	atomic.StoreUint64(&s.Retries, 0)
	for i := range s.PerDiskReads {
		atomic.StoreUint64(&s.PerDiskReads[i], 0)
	}
	for i := range s.PerDiskWrites {
		atomic.StoreUint64(&s.PerDiskWrites[i], 0)
	}
}

// Snapshot returns an atomically-loaded copy of the current counters. It is
// the safe way to observe Stats while I/O may be in flight on other
// goroutines.
func (s *Stats) Snapshot() Stats {
	cp := Stats{
		Reads:         atomic.LoadUint64(&s.Reads),
		Writes:        atomic.LoadUint64(&s.Writes),
		Steps:         atomic.LoadUint64(&s.Steps),
		Retries:       atomic.LoadUint64(&s.Retries),
		PerDiskReads:  make([]uint64, len(s.PerDiskReads)),
		PerDiskWrites: make([]uint64, len(s.PerDiskWrites)),
	}
	for i := range s.PerDiskReads {
		cp.PerDiskReads[i] = atomic.LoadUint64(&s.PerDiskReads[i])
	}
	for i := range s.PerDiskWrites {
		cp.PerDiskWrites[i] = atomic.LoadUint64(&s.PerDiskWrites[i])
	}
	return cp
}

// String renders the counters compactly for logs and experiment tables.
// Retries appear only when any fired, so clean-run output is unchanged.
func (s *Stats) String() string {
	cp := s.Snapshot()
	out := fmt.Sprintf("reads=%d writes=%d total=%d steps=%d", cp.Reads, cp.Writes, cp.Reads+cp.Writes, cp.Steps)
	if cp.Retries > 0 {
		out += fmt.Sprintf(" retries=%d", cp.Retries)
	}
	return out
}

// addRead charges one read on disk d.
func (s *Stats) addRead(d int) {
	atomic.AddUint64(&s.Reads, 1)
	atomic.AddUint64(&s.PerDiskReads[d], 1)
}

// addWrite charges one write on disk d.
func (s *Stats) addWrite(d int) {
	atomic.AddUint64(&s.Writes, 1)
	atomic.AddUint64(&s.PerDiskWrites[d], 1)
}

// addSteps charges n parallel steps.
func (s *Stats) addSteps(n uint64) { atomic.AddUint64(&s.Steps, n) }

// addRetry counts one transient-error re-drive.
func (s *Stats) addRetry() { atomic.AddUint64(&s.Retries, 1) }

// disk is one simulated disk's scheduling state: the lock that serialises
// its transfers (the backend holds the actual blocks) and the service-time
// reservation horizon. Service time is modelled as a per-disk timeline:
// every transfer reserves DiskLatency on its disk at dispatch time, so a
// disk's k-th queued block completes k·DiskLatency after the disk went busy
// regardless of when the worker goroutine is actually scheduled — which
// keeps overlap measurements honest even on a single-CPU host.
type disk struct {
	mu        sync.Mutex
	busyUntil time.Time // reservation horizon; meaningful only with latency
}

// batchErr collects the first transfer error of a batch across the per-disk
// workers servicing it; the batch's join returns it.
type batchErr struct {
	mu  sync.Mutex
	err error
}

func (b *batchErr) record(err error) {
	if err == nil {
		return
	}
	b.mu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.mu.Unlock()
}

func (b *batchErr) first() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// diskJob is one per-disk slice of a batch: the blocks a single disk must
// service, the deadline its reservation runs to, the batch's shared error
// collector, and the join point the dispatcher waits on.
type diskJob struct {
	write    bool
	slots    []int64
	bufs     [][]byte
	deadline time.Time
	errs     *batchErr
	wg       *sync.WaitGroup
}

// Volume is a linear block address space striped round-robin over D disks.
// Block address a lives on disk a mod D at position a div D. Volumes grow on
// demand through Alloc and never shrink; Free records reusable addresses.
//
// Volume is safe for concurrent use; see the package comment for the
// concurrency model and the wall-clock semantics of Config.DiskLatency.
type Volume struct {
	cfg     Config
	disks   []disk
	backend Backend
	fault   *FaultBackend // non-nil when cfg.Fault wrapped the backend
	stats   Stats

	mu       sync.Mutex // guards next and freeList
	next     int64      // next unallocated block address
	freeList []int64

	queues    []chan diskJob // per-disk request queues; nil when DiskLatency == 0
	workerWG  sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
	closeMu   sync.RWMutex  // dispatchers hold R, Close holds W
	closed    bool          // guarded by closeMu
	closing   chan struct{} // closed by Close before the queues shut
}

// NewVolume creates an empty volume with the given configuration. When
// cfg.DiskLatency is non-zero the volume starts one worker goroutine per
// disk; when cfg.Dir is non-empty the blocks live in one file per disk
// under that directory. Call Close to stop the workers and close the files.
func NewVolume(cfg Config) (*Volume, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	v := &Volume{cfg: cfg, disks: make([]disk, cfg.Disks), closing: make(chan struct{})}
	if cfg.Dir != "" {
		fb, err := newFileBackend(cfg.Dir, cfg.Disks, cfg.BlockBytes)
		if err != nil {
			return nil, err
		}
		v.backend = fb
	} else {
		v.backend = newMemBackend(cfg.Disks, cfg.BlockBytes)
	}
	if cfg.Fault != nil {
		fb, err := NewFaultBackend(v.backend, cfg.Disks, *cfg.Fault)
		if err != nil {
			v.backend.Close()
			return nil, err
		}
		v.backend = fb
		v.fault = fb
	}
	v.stats.PerDiskReads = make([]uint64, cfg.Disks)
	v.stats.PerDiskWrites = make([]uint64, cfg.Disks)
	if cfg.DiskLatency > 0 {
		v.queues = make([]chan diskJob, cfg.Disks)
		for i := range v.queues {
			v.queues[i] = make(chan diskJob, 16)
			v.workerWG.Add(1)
			go v.diskWorker(i)
		}
	}
	return v, nil
}

// MustVolume is NewVolume for tests and examples with known-good configs.
func MustVolume(cfg Config) *Volume {
	v, err := NewVolume(cfg)
	if err != nil {
		panic(err)
	}
	return v
}

// Close stops the per-disk workers, if any, then closes the storage
// backend (a no-op for the in-memory simulation; the file backend closes
// its per-disk files and returns the first close error). It is idempotent —
// repeated calls return the first call's result — and safe to call on
// volumes that never started workers. Close waits for the transfer a worker
// is executing to finish, but an outstanding Batch*Async handle does not
// hold Close hostage: jobs still queued when Close runs are failed with
// ErrClosed without touching the backend, their reservations rolled back,
// and reservation sleeps already in progress are cut short — the join
// returns promptly (ErrClosed for any unserviced share) instead of running
// out the reserved horizon. I/O submitted after Close returns ErrClosed
// without charging counters, on the single-block and batched paths alike.
func (v *Volume) Close() error {
	v.closeOnce.Do(func() {
		v.closeMu.Lock()
		v.closed = true
		// Order matters: closing is observable before the queues close, so
		// a worker draining the queue backlog sees the shutdown and fails
		// the leftovers instead of servicing a backend about to close.
		close(v.closing)
		for _, q := range v.queues {
			close(q)
		}
		v.closeMu.Unlock()
		v.workerWG.Wait()
		v.closeErr = v.backend.Close()
	})
	return v.closeErr
}

// diskWorker drains disk i's request queue: it performs the data transfers
// immediately, then holds the job until its reserved deadline passes, so a
// batch's join completes exactly when the model says the worst disk is done.
// Once Close has fired, remaining queued jobs fail fast with ErrClosed —
// no transfer, no reservation sleep — and their reserved service time is
// returned to the disk's timeline, so outstanding joins complete cleanly.
func (v *Volume) diskWorker(i int) {
	defer v.workerWG.Done()
	for job := range v.queues[i] {
		select {
		case <-v.closing:
			job.errs.record(ErrClosed)
			v.unreserve(&v.disks[i], len(job.slots))
			job.wg.Done()
			continue
		default:
		}
		for k, slot := range job.slots {
			job.errs.record(v.service(i, slot, job.bufs[k], job.write))
		}
		v.sleepUntilOrClosing(job.deadline)
		job.wg.Done()
	}
}

// reserve books n block-services on disk d's timeline and returns the time
// the last of them completes. Reservations are made at dispatch, on the
// caller's goroutine, so queued service time accrues even before a worker
// picks the job up.
func (v *Volume) reserve(d *disk, n int) time.Time {
	d.mu.Lock()
	defer d.mu.Unlock()
	if now := time.Now(); d.busyUntil.Before(now) {
		d.busyUntil = now
	}
	d.busyUntil = d.busyUntil.Add(time.Duration(n) * v.cfg.DiskLatency)
	return d.busyUntil
}

// sleepUntil blocks until the deadline, if it is still in the future.
func sleepUntil(deadline time.Time) {
	if dt := time.Until(deadline); dt > 0 {
		time.Sleep(dt)
	}
}

// sleepUntilOrClosing is sleepUntil cut short by Close: once the volume is
// shutting down nobody is measuring reservation horizons any more, and a
// join blocked on simulated service time would otherwise stall Close for
// the whole reserved backlog.
func (v *Volume) sleepUntilOrClosing(deadline time.Time) {
	dt := time.Until(deadline)
	if dt <= 0 {
		return
	}
	t := time.NewTimer(dt)
	defer t.Stop()
	select {
	case <-t.C:
	case <-v.closing:
	}
}

// unreserve returns n block-services to disk d's timeline — the undo of
// reserve, used when Close fails a queued job without servicing it.
func (v *Volume) unreserve(d *disk, n int) {
	d.mu.Lock()
	d.busyUntil = d.busyUntil.Add(-time.Duration(n) * v.cfg.DiskLatency)
	d.mu.Unlock()
}

// service performs one block transfer on disk di at the given slot, holding
// the disk's lock so the backend sees per-disk serialised access. With
// Config.Retry set, Transient-classified backend errors are re-driven with
// capped exponential backoff under the policy's per-op deadline; permanent
// errors (and transient ones once the budget is exhausted) propagate.
func (v *Volume) service(di int, slot int64, buf []byte, write bool) error {
	d := &v.disks[di]
	d.mu.Lock()
	defer d.mu.Unlock()
	err := v.backend.Service(di, slot, buf, write)
	if err == nil || v.cfg.Retry == nil || !IsTransient(err) {
		return err
	}
	return v.retryService(di, slot, buf, write, err)
}

// retryService re-drives one transient-failed transfer. The caller holds
// the disk's lock throughout — the disk is a serial resource, and a
// stalling, retrying transfer holds up that disk's queue exactly as a real
// flaky spindle would — while the other disks keep servicing. Counters are
// not re-charged: the transfer was charged once at dispatch, and only
// Stats.Retries records the extra attempts.
func (v *Volume) retryService(di int, slot int64, buf []byte, write bool, err error) error {
	r := v.cfg.Retry
	var deadline time.Time
	if r.OpDeadline > 0 {
		deadline = time.Now().Add(r.OpDeadline)
	}
	backoff := r.base()
	for attempt := 0; attempt < r.maxRetries(); attempt++ {
		if !deadline.IsZero() && !time.Now().Add(backoff).Before(deadline) {
			return fmt.Errorf("pdm: retry deadline %v exceeded after %d attempts: %w", r.OpDeadline, attempt+1, err)
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > r.cap() {
			backoff = r.cap()
		}
		v.stats.addRetry()
		if err = v.backend.Service(di, slot, buf, write); err == nil || !IsTransient(err) {
			return err
		}
	}
	return fmt.Errorf("pdm: retries exhausted after %d attempts: %w", r.maxRetries()+1, err)
}

// Fault returns the fault-injecting backend installed by Config.Fault, or
// nil — tests and experiments use it to audit how many faults actually
// fired against the retries the Stats report.
func (v *Volume) Fault() *FaultBackend { return v.fault }

// Config returns the volume's configuration.
func (v *Volume) Config() Config { return v.cfg }

// BlockBytes returns the block size in bytes.
func (v *Volume) BlockBytes() int { return v.cfg.BlockBytes }

// Disks returns D, the number of disks.
func (v *Volume) Disks() int { return v.cfg.Disks }

// Stats returns the live counter set. Callers may Reset or Snapshot it; see
// the package comment for which reads are safe under concurrency.
func (v *Volume) Stats() *Stats { return &v.stats }

// Allocated returns the number of blocks ever allocated (the high-water
// address), including freed blocks.
func (v *Volume) Allocated() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.next
}

// Alloc reserves n fresh blocks and returns the address of the first.
// Addresses of a single Alloc are contiguous, so they stripe evenly over the
// disks. Freed blocks are reused only for single-block allocations.
func (v *Volume) Alloc(n int) int64 {
	if n <= 0 {
		panic("pdm: Alloc of non-positive block count")
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if n == 1 && len(v.freeList) > 0 {
		addr := v.freeList[len(v.freeList)-1]
		v.freeList = v.freeList[:len(v.freeList)-1]
		return addr
	}
	addr := v.next
	v.next += int64(n)
	return addr
}

// Free marks a block address reusable. The block's contents remain until
// overwritten; reading a freed block is permitted (it models a disk, not an
// allocator with poisoning).
func (v *Volume) Free(addr int64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.freeList = append(v.freeList, addr)
}

// FreeBlocks returns the number of freed block addresses awaiting reuse.
// Allocated()-FreeBlocks() is the live-block count, which leak tests assert
// is restored after an aborted operation.
func (v *Volume) FreeBlocks() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return int64(len(v.freeList))
}

// checkAddr validates a block address against the allocation high-water mark.
func (v *Volume) checkAddr(addr int64) error {
	v.mu.Lock()
	next := v.next
	v.mu.Unlock()
	if addr < 0 || addr >= next {
		return fmt.Errorf("%w: %d (allocated %d)", ErrBadAddress, addr, next)
	}
	return nil
}

// ReadBlock copies block addr into dst, which must be exactly one block long.
// It costs one block read and one parallel step. After Close it returns
// ErrClosed without charging counters.
func (v *Volume) ReadBlock(addr int64, dst []byte) error {
	return v.single(addr, dst, false)
}

// WriteBlock stores src as block addr. It costs one block write and one
// parallel step. After Close it returns ErrClosed without charging counters.
func (v *Volume) WriteBlock(addr int64, src []byte) error {
	return v.single(addr, src, true)
}

// single performs one unbatched transfer in either direction. The close
// lock is held in read mode for the duration of the transfer, so Close —
// which takes it in write mode before shutting the backend down — cannot
// yank the backend out from under an in-flight Service call.
func (v *Volume) single(addr int64, buf []byte, write bool) error {
	if len(buf) != v.cfg.BlockBytes {
		return fmt.Errorf("%w: got %d want %d", ErrBadBuffer, len(buf), v.cfg.BlockBytes)
	}
	if err := v.checkAddr(addr); err != nil {
		return err
	}
	v.closeMu.RLock()
	defer v.closeMu.RUnlock()
	if v.closed {
		return ErrClosed
	}
	di := int(addr) % v.cfg.Disks
	if write {
		v.stats.addWrite(di)
	} else {
		v.stats.addRead(di)
	}
	v.stats.addSteps(1)
	var deadline time.Time
	if v.cfg.DiskLatency > 0 {
		deadline = v.reserve(&v.disks[di], 1)
	}
	err := v.service(di, addr/int64(v.cfg.Disks), buf, write)
	sleepUntil(deadline)
	return err
}

// stepCost returns the parallel-step cost of touching the given addresses in
// one batch: the maximum number of them that collide on a single disk.
func (v *Volume) stepCost(addrs []int64) uint64 {
	if v.cfg.Disks == 1 {
		return uint64(len(addrs))
	}
	counts := make([]int, v.cfg.Disks)
	maxC := 0
	for _, a := range addrs {
		c := counts[int(a)%v.cfg.Disks] + 1
		counts[int(a)%v.cfg.Disks] = c
		if c > maxC {
			maxC = c
		}
	}
	return uint64(maxC)
}

// serviceInline performs the given transfers sequentially on the calling
// goroutine, in batch order. On a backend error it keeps servicing the
// remaining transfers — the counters were already charged for all of them —
// and returns the first error.
func (v *Volume) serviceInline(addrs []int64, bufs [][]byte, write bool) error {
	var first error
	for i, a := range addrs {
		if err := v.service(int(a)%v.cfg.Disks, a/int64(v.cfg.Disks), bufs[i], write); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// errJoin is the no-op join returned when a batch failed (or completed)
// during dispatch.
func errJoin(err error) func() error { return func() error { return err } }

// batch validates and dispatches one batched transfer in either direction,
// returning a join function that blocks until the transfer is complete.
// Validation happens block by block in batch order, and on error the already
// validated prefix is transferred and charged (with no step cost), exactly
// as the serial implementation behaved. Once the whole batch is validated it
// is split by disk, each disk's share reserves its service time on that
// disk's timeline, and the shares are dispatched to the per-disk workers
// (DiskLatency > 0) or serviced inline (zero latency, where the join is a
// no-op and the transfer is already done).
func (v *Volume) batch(addrs []int64, bufs [][]byte, write bool) func() error {
	verb := "BatchRead"
	if write {
		verb = "BatchWrite"
	}
	if len(addrs) != len(bufs) {
		return errJoin(fmt.Errorf("pdm: %s length mismatch: %d addrs, %d buffers", verb, len(addrs), len(bufs)))
	}
	if len(addrs) == 0 {
		return errJoin(nil)
	}
	// Refuse closed volumes before any counter is charged or block moved,
	// so an ErrClosed batch has no side effects at all — on zero-latency
	// volumes too, where no worker queue exists to reject the I/O. The read
	// lock is held until batch returns: through dispatch with workers, so
	// Close cannot shut the queues down between this check and the sends,
	// and through the inline servicing without them, so Close cannot close
	// the backend under an in-flight transfer.
	v.closeMu.RLock()
	defer v.closeMu.RUnlock()
	if v.closed {
		return errJoin(ErrClosed)
	}
	for i, a := range addrs {
		if len(bufs[i]) != v.cfg.BlockBytes {
			// The validation error wins over any backend error on the prefix.
			_ = v.serviceInline(addrs[:i], bufs[:i], write)
			return errJoin(fmt.Errorf("%w: buffer %d has %d bytes", ErrBadBuffer, i, len(bufs[i])))
		}
		if err := v.checkAddr(a); err != nil {
			_ = v.serviceInline(addrs[:i], bufs[:i], write)
			return errJoin(err)
		}
		if write {
			v.stats.addWrite(int(a) % v.cfg.Disks)
		} else {
			v.stats.addRead(int(a) % v.cfg.Disks)
		}
	}
	v.stats.addSteps(v.stepCost(addrs))

	if v.queues == nil {
		return errJoin(v.serviceInline(addrs, bufs, write))
	}
	// Split the batch by disk and dispatch one job per involved disk, each
	// with its service time reserved now; the join completes when the worst
	// disk's reservation has run out — the parallel-step cost on a clock —
	// and returns the first transfer error any disk hit.
	jobs := make([]diskJob, v.cfg.Disks)
	wg := new(sync.WaitGroup)
	be := new(batchErr)
	for i, a := range addrs {
		di := int(a) % v.cfg.Disks
		jobs[di].slots = append(jobs[di].slots, a/int64(v.cfg.Disks))
		jobs[di].bufs = append(jobs[di].bufs, bufs[i])
	}
	for di := range jobs {
		if len(jobs[di].slots) == 0 {
			continue
		}
		jobs[di].write = write
		jobs[di].deadline = v.reserve(&v.disks[di], len(jobs[di].slots))
		jobs[di].errs = be
		jobs[di].wg = wg
		wg.Add(1)
		v.queues[di] <- jobs[di]
	}
	return func() error {
		wg.Wait()
		return be.first()
	}
}

// BatchRead reads len(addrs) blocks as one parallel batch. dsts[i] receives
// block addrs[i]. The batch costs len(addrs) block reads but only as many
// parallel steps as the worst single disk must serve, and — with a non-zero
// DiskLatency — only that much wall-clock time, because the per-disk workers
// service their shares concurrently.
func (v *Volume) BatchRead(addrs []int64, dsts [][]byte) error {
	return v.batch(addrs, dsts, false)()
}

// BatchWrite writes len(addrs) blocks as one parallel batch, the write-side
// dual of BatchRead.
func (v *Volume) BatchWrite(addrs []int64, srcs [][]byte) error {
	return v.batch(addrs, srcs, true)()
}

// BatchReadAsync dispatches a batched read and returns immediately with a
// join function; the read is complete (and dsts are valid) only after join
// returns. Counters are charged at dispatch. Service time is reserved on
// the per-disk timelines at dispatch too, so the caller can overlap
// computation with the simulated transfer — this is the primitive the
// stream prefetcher builds forecasting read-ahead on.
func (v *Volume) BatchReadAsync(addrs []int64, dsts [][]byte) (join func() error) {
	return v.batch(addrs, dsts, false)
}

// BatchWriteAsync dispatches a batched write and returns immediately with a
// join function; srcs must not be modified until join returns. It is the
// write-behind dual of BatchReadAsync.
func (v *Volume) BatchWriteAsync(addrs []int64, srcs [][]byte) (join func() error) {
	return v.batch(addrs, srcs, true)
}
