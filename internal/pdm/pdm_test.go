package pdm

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func testConfig() Config {
	return Config{BlockBytes: 64, MemBlocks: 16, Disks: 4}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"valid", Config{BlockBytes: 64, MemBlocks: 4, Disks: 1}, true},
		{"zero block", Config{BlockBytes: 0, MemBlocks: 4, Disks: 1}, false},
		{"negative block", Config{BlockBytes: -8, MemBlocks: 4, Disks: 1}, false},
		{"one frame", Config{BlockBytes: 64, MemBlocks: 1, Disks: 1}, false},
		{"zero disks", Config{BlockBytes: 64, MemBlocks: 4, Disks: 0}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.ok && err != nil {
				t.Fatalf("expected valid, got %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("expected error, got nil")
			}
		})
	}
}

func TestVolumeReadWriteRoundTrip(t *testing.T) {
	v := MustVolume(testConfig())
	addr := v.Alloc(1)
	src := make([]byte, 64)
	for i := range src {
		src[i] = byte(i)
	}
	if err := v.WriteBlock(addr, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 64)
	if err := v.ReadBlock(addr, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src, dst) {
		t.Fatal("round trip mismatch")
	}
}

func TestVolumeReadUnwrittenIsZero(t *testing.T) {
	v := MustVolume(testConfig())
	addr := v.Alloc(3)
	dst := make([]byte, 64)
	dst[0] = 0xFF
	if err := v.ReadBlock(addr+2, dst); err != nil {
		t.Fatal(err)
	}
	for i, b := range dst {
		if b != 0 {
			t.Fatalf("byte %d = %#x, want 0", i, b)
		}
	}
}

func TestVolumeBadAddress(t *testing.T) {
	v := MustVolume(testConfig())
	buf := make([]byte, 64)
	if err := v.ReadBlock(0, buf); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("unallocated read: got %v, want ErrBadAddress", err)
	}
	v.Alloc(2)
	if err := v.ReadBlock(5, buf); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("past-end read: got %v, want ErrBadAddress", err)
	}
	if err := v.WriteBlock(-1, buf); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("negative write: got %v, want ErrBadAddress", err)
	}
}

func TestVolumeBadBuffer(t *testing.T) {
	v := MustVolume(testConfig())
	addr := v.Alloc(1)
	if err := v.WriteBlock(addr, make([]byte, 63)); !errors.Is(err, ErrBadBuffer) {
		t.Fatalf("short write buffer: got %v", err)
	}
	if err := v.ReadBlock(addr, make([]byte, 65)); !errors.Is(err, ErrBadBuffer) {
		t.Fatalf("long read buffer: got %v", err)
	}
}

func TestStatsCounting(t *testing.T) {
	v := MustVolume(testConfig())
	addr := v.Alloc(8)
	buf := make([]byte, 64)
	for i := int64(0); i < 8; i++ {
		if err := v.WriteBlock(addr+i, buf); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 4; i++ {
		if err := v.ReadBlock(addr+i, buf); err != nil {
			t.Fatal(err)
		}
	}
	s := v.Stats()
	if s.Writes != 8 || s.Reads != 4 || s.Total() != 12 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Steps != 12 {
		t.Fatalf("unbatched steps = %d, want 12", s.Steps)
	}
	s.Reset()
	if s.Total() != 0 || s.Steps != 0 {
		t.Fatal("reset failed")
	}
}

func TestStatsPerDisk(t *testing.T) {
	v := MustVolume(Config{BlockBytes: 16, MemBlocks: 4, Disks: 2})
	addr := v.Alloc(4) // addresses 0..3 stripe disks 0,1,0,1
	buf := make([]byte, 16)
	for i := int64(0); i < 4; i++ {
		if err := v.WriteBlock(addr+i, buf); err != nil {
			t.Fatal(err)
		}
	}
	s := v.Stats()
	if s.PerDiskWrites[0] != 2 || s.PerDiskWrites[1] != 2 {
		t.Fatalf("per-disk writes = %v", s.PerDiskWrites)
	}
}

func TestBatchParallelSteps(t *testing.T) {
	v := MustVolume(Config{BlockBytes: 16, MemBlocks: 8, Disks: 4})
	base := v.Alloc(4) // one block on each of the 4 disks
	bufs := make([][]byte, 4)
	addrs := make([]int64, 4)
	for i := range bufs {
		bufs[i] = make([]byte, 16)
		addrs[i] = base + int64(i)
	}
	if err := v.BatchWrite(addrs, bufs); err != nil {
		t.Fatal(err)
	}
	if got := v.Stats().Steps; got != 1 {
		t.Fatalf("striped batch of 4 on 4 disks should cost 1 step, got %d", got)
	}
	v.Stats().Reset()
	// Four blocks all on the same disk: addresses congruent mod 4.
	same := v.Alloc(13) // 13 blocks; pick addrs base2, base2+4, base2+8, base2+12
	collide := []int64{same, same + 4, same + 8, same + 12}
	if err := v.BatchWrite(collide, bufs); err != nil {
		t.Fatal(err)
	}
	if got := v.Stats().Steps; got != 4 {
		t.Fatalf("colliding batch of 4 should cost 4 steps, got %d", got)
	}
}

func TestBatchLengthMismatch(t *testing.T) {
	v := MustVolume(testConfig())
	base := v.Alloc(2)
	if err := v.BatchRead([]int64{base, base + 1}, [][]byte{make([]byte, 64)}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	if err := v.BatchWrite([]int64{base}, nil); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestBatchEmptyIsFree(t *testing.T) {
	v := MustVolume(testConfig())
	if err := v.BatchRead(nil, nil); err != nil {
		t.Fatal(err)
	}
	if v.Stats().Total() != 0 || v.Stats().Steps != 0 {
		t.Fatal("empty batch should cost nothing")
	}
}

func TestAllocFreeReuse(t *testing.T) {
	v := MustVolume(testConfig())
	a := v.Alloc(1)
	b := v.Alloc(1)
	v.Free(a)
	c := v.Alloc(1)
	if c != a {
		t.Fatalf("freed block not reused: got %d want %d", c, a)
	}
	if b == c {
		t.Fatal("distinct live blocks share an address")
	}
	// Multi-block allocations skip the free list to stay contiguous.
	v.Free(b)
	d := v.Alloc(2)
	if d == b {
		t.Fatal("multi-block alloc must not come from the free list")
	}
}

func TestPoolBudget(t *testing.T) {
	p := NewPool(64, 3)
	f1 := p.MustAlloc()
	f2 := p.MustAlloc()
	f3 := p.MustAlloc()
	if _, err := p.Alloc(); !errors.Is(err, ErrNoFrames) {
		t.Fatalf("4th alloc: got %v, want ErrNoFrames", err)
	}
	if p.InUse() != 3 || p.Free() != 0 || p.Peak() != 3 {
		t.Fatalf("accounting: inUse=%d free=%d peak=%d", p.InUse(), p.Free(), p.Peak())
	}
	f2.Release()
	if p.InUse() != 2 || p.Free() != 1 {
		t.Fatal("release accounting wrong")
	}
	f4, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	f1.Release()
	f3.Release()
	f4.Release()
	if p.InUse() != 0 {
		t.Fatal("not all frames returned")
	}
	if p.Peak() != 3 {
		t.Fatalf("peak should remain 3, got %d", p.Peak())
	}
}

func TestPoolDoubleReleasePanics(t *testing.T) {
	p := NewPool(8, 2)
	f := p.MustAlloc()
	f.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release should panic")
		}
	}()
	f.Release()
}

func TestPoolAllocNRollsBack(t *testing.T) {
	p := NewPool(8, 3)
	held := p.MustAlloc()
	if _, err := p.AllocN(3); !errors.Is(err, ErrNoFrames) {
		t.Fatalf("AllocN beyond budget: %v", err)
	}
	if p.InUse() != 1 {
		t.Fatalf("failed AllocN must roll back, inUse=%d", p.InUse())
	}
	frames, err := p.AllocN(2)
	if err != nil {
		t.Fatal(err)
	}
	ReleaseAll(frames)
	held.Release()
}

func TestPoolFrameReuseKeepsSize(t *testing.T) {
	p := NewPool(32, 2)
	f := p.MustAlloc()
	buf := f.Buf
	f.Release()
	g := p.MustAlloc()
	if len(g.Buf) != 32 {
		t.Fatalf("recycled frame has %d bytes", len(g.Buf))
	}
	if &buf[0] != &g.Buf[0] {
		t.Fatal("frame buffer should be recycled, not reallocated")
	}
	g.Release()
}

// Property: any sequence of writes followed by reads returns exactly the
// written data, regardless of address order.
func TestQuickWriteReadConsistency(t *testing.T) {
	cfg := Config{BlockBytes: 32, MemBlocks: 4, Disks: 3}
	f := func(payloads [][32]byte) bool {
		if len(payloads) == 0 {
			return true
		}
		if len(payloads) > 64 {
			payloads = payloads[:64]
		}
		v := MustVolume(cfg)
		base := v.Alloc(len(payloads))
		for i, p := range payloads {
			if err := v.WriteBlock(base+int64(i), p[:]); err != nil {
				return false
			}
		}
		buf := make([]byte, 32)
		// Read back in reverse order.
		for i := len(payloads) - 1; i >= 0; i-- {
			if err := v.ReadBlock(base+int64(i), buf); err != nil {
				return false
			}
			if !bytes.Equal(buf, payloads[i][:]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: parallel step cost of a batch is between ceil(k/D) and k.
func TestQuickStepCostBounds(t *testing.T) {
	v := MustVolume(Config{BlockBytes: 8, MemBlocks: 4, Disks: 4})
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 32 {
			raw = raw[:32]
		}
		addrs := make([]int64, len(raw))
		for i, r := range raw {
			addrs[i] = int64(r % 1024)
		}
		cost := v.stepCost(addrs)
		k := uint64(len(addrs))
		lo := (k + 3) / 4
		return cost >= lo && cost <= k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
