package pdm

import (
	"fmt"
	"sync"
	"time"
)

// Pool enforces the internal-memory budget of the model: it hands out at most
// MemBlocks block-sized frames. Every algorithm in this module draws its
// working buffers from a Pool, so an implementation that needs more than M/B
// frames cannot pass its tests by silently using extra RAM.
//
// Pool is safe for concurrent use: asynchronous prefetchers and write-behind
// writers allocate and release frames from background goroutines, and their
// buffers are charged to the same budget M as everything else.
//
// Frames are recycled through a free list, so steady-state allocation does
// not touch the garbage collector.
type Pool struct {
	blockBytes int
	capacity   int

	mu      sync.Mutex
	inUse   int
	peak    int
	free    []*Frame
	waiters []chan struct{} // FIFO of WaitRelease parkers; head signalled per Release
}

// Frame is one block-sized memory buffer on loan from a Pool.
type Frame struct {
	// Buf is the frame's storage, exactly one block long.
	Buf  []byte
	pool *Pool
}

// NewPool creates a pool of capacity frames of blockBytes each.
func NewPool(blockBytes, capacity int) *Pool {
	return &Pool{blockBytes: blockBytes, capacity: capacity}
}

// PoolFor creates the pool implied by a volume's configuration: MemBlocks
// frames of BlockBytes bytes.
func PoolFor(v *Volume) *Pool {
	return NewPool(v.cfg.BlockBytes, v.cfg.MemBlocks)
}

// Capacity returns the frame budget M/B.
func (p *Pool) Capacity() int { return p.capacity }

// InUse returns the number of frames currently on loan.
func (p *Pool) InUse() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.inUse
}

// Free returns the number of frames still available.
func (p *Pool) Free() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.capacity - p.inUse
}

// Peak returns the high-water mark of simultaneous frames on loan, useful
// for asserting that an algorithm stayed within a sub-budget.
func (p *Pool) Peak() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.peak
}

// Alloc borrows one frame. It returns ErrNoFrames when the budget is
// exhausted, which signals a violation of the algorithm's stated memory
// bound.
func (p *Pool) Alloc() (*Frame, error) {
	p.mu.Lock()
	if p.inUse >= p.capacity {
		p.mu.Unlock()
		return nil, fmt.Errorf("%w: capacity %d", ErrNoFrames, p.capacity)
	}
	p.inUse++
	if p.inUse > p.peak {
		p.peak = p.inUse
	}
	if n := len(p.free); n > 0 {
		f := p.free[n-1]
		p.free = p.free[:n-1]
		f.pool = p
		p.mu.Unlock()
		return f, nil
	}
	p.mu.Unlock()
	return &Frame{Buf: make([]byte, p.blockBytes), pool: p}, nil
}

// MustAlloc is Alloc for callers that have already reserved their budget and
// treat exhaustion as a programming error.
func (p *Pool) MustAlloc() *Frame {
	f, err := p.Alloc()
	if err != nil {
		panic(err)
	}
	return f
}

// AllocN borrows n frames, releasing any partial allocation on failure.
func (p *Pool) AllocN(n int) ([]*Frame, error) {
	frames := make([]*Frame, 0, n)
	for i := 0; i < n; i++ {
		f, err := p.Alloc()
		if err != nil {
			for _, g := range frames {
				g.Release()
			}
			return nil, err
		}
		frames = append(frames, f)
	}
	return frames, nil
}

// WaitRelease parks the caller in the pool's FIFO until some frame is
// released (true) or the deadline passes (false). It is the admission
// primitive behind the serving layer's overload handling: a request that
// found the pool starved parks here, each Release wakes exactly the head
// waiter, and the woken request retries its allocation. WaitRelease does
// not itself allocate anything — capacity seen on wake-up can be claimed
// by a non-waiting caller first, so callers loop: park, retry, park.
func (p *Pool) WaitRelease(deadline time.Time) bool {
	ch := make(chan struct{})
	p.mu.Lock()
	p.waiters = append(p.waiters, ch)
	p.mu.Unlock()
	t := time.NewTimer(time.Until(deadline))
	defer t.Stop()
	select {
	case <-ch:
		return true
	case <-t.C:
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, w := range p.waiters {
		if w == ch {
			p.waiters = append(p.waiters[:i], p.waiters[i+1:]...)
			return false
		}
	}
	// Signalled concurrently with the timeout: the deadline still governs
	// this caller, but the release it consumed is passed on to the next
	// waiter rather than swallowed.
	p.signalLocked()
	return false
}

// signalLocked wakes the head waiter, if any. Caller holds p.mu.
func (p *Pool) signalLocked() {
	if len(p.waiters) > 0 {
		close(p.waiters[0])
		p.waiters = p.waiters[1:]
	}
}

// Release returns the frame to its pool. Releasing twice panics, as it
// indicates corrupted buffer accounting.
func (f *Frame) Release() {
	if f.pool == nil {
		panic("pdm: double release of frame")
	}
	p := f.pool
	f.pool = nil
	p.mu.Lock()
	p.inUse--
	p.free = append(p.free, f)
	p.signalLocked()
	p.mu.Unlock()
}

// ReleaseAll releases every frame in frames.
func ReleaseAll(frames []*Frame) {
	for _, f := range frames {
		f.Release()
	}
}
