// Package permute implements external permuting, the problem the survey uses
// to separate computation from data movement: rearrange N records according
// to a given permutation.
//
// The survey's bound is Perm(N) = Θ(min(N/D, Sort(N))): for small N (or huge
// B) moving each record individually is cheaper, while beyond the crossover
// it is cheaper to attach target addresses and sort. Both algorithms are
// implemented here so the crossover itself can be measured (experiment T3).
package permute

import (
	"fmt"

	"em/internal/extsort"
	"em/internal/pdm"
	"em/internal/record"
	"em/internal/stream"
)

// validate checks that perm is a permutation of [0, n).
func validate(perm []int64, n int64) error {
	if int64(len(perm)) != n {
		return fmt.Errorf("permute: permutation has %d entries for %d records", len(perm), n)
	}
	seen := make([]bool, n)
	for i, p := range perm {
		if p < 0 || p >= n {
			return fmt.Errorf("permute: target %d of record %d out of range", p, i)
		}
		if seen[p] {
			return fmt.Errorf("permute: duplicate target %d", p)
		}
		seen[p] = true
	}
	return nil
}

// Naive permutes f so that output position perm[i] holds record i, moving
// one record at a time: a sequential scan of the input plus one
// read-modify-write of the target block per record, Θ(N) I/Os in total.
// This is the survey's lower-tier strategy, optimal only when N/D < Sort(N).
func Naive[T any](f *stream.File[T], pool *pdm.Pool, perm []int64) (*stream.File[T], error) {
	if err := validate(perm, f.Len()); err != nil {
		return nil, err
	}
	out := stream.NewFile[T](f.Vol(), f.Codec())
	// Pre-size the output with zero records so WriteRecordAt can address it.
	w, err := stream.NewWriter(out, pool)
	if err != nil {
		return nil, err
	}
	var zero T
	for i := int64(0); i < f.Len(); i++ {
		if err := w.Append(zero); err != nil {
			w.Close()
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	r, err := stream.NewReader(f, pool)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	i := int64(0)
	for {
		v, ok, err := r.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if err := stream.WriteRecordAt(out, pool, perm[i], v); err != nil {
			return nil, err
		}
		i++
	}
	return out, nil
}

// BySorting permutes f so that output position perm[i] holds record i by
// tagging every record with its target address and running an external merge
// sort on the tags: Θ(Sort(N)) I/Os, the upper-tier strategy of the
// Perm(N) = Θ(min(N/D, Sort(N))) bound.
func BySorting[T any](f *stream.File[T], pool *pdm.Pool, perm []int64, opts *extsort.Options) (*stream.File[T], error) {
	if err := validate(perm, f.Len()); err != nil {
		return nil, err
	}
	kc := record.KeyedCodec[T]{C: f.Codec()}
	tagged := stream.NewFile[record.Keyed[T]](f.Vol(), kc)
	tw, err := stream.NewWriter(tagged, pool)
	if err != nil {
		return nil, err
	}
	r, err := stream.NewReader(f, pool)
	if err != nil {
		tw.Close()
		return nil, err
	}
	i := int64(0)
	for {
		v, ok, err := r.Next()
		if err != nil {
			r.Close()
			tw.Close()
			return nil, err
		}
		if !ok {
			break
		}
		if err := tw.Append(record.Keyed[T]{Key: uint64(perm[i]), Value: v}); err != nil {
			r.Close()
			tw.Close()
			return nil, err
		}
		i++
	}
	r.Close()
	if err := tw.Close(); err != nil {
		return nil, err
	}
	sorted, err := extsort.MergeSort(tagged, pool,
		func(a, b record.Keyed[T]) bool { return a.Key < b.Key }, opts)
	if err != nil {
		return nil, err
	}
	tagged.Release()
	out := stream.NewFile[T](f.Vol(), f.Codec())
	ow, err := stream.NewWriter(out, pool)
	if err != nil {
		return nil, err
	}
	if err := stream.ForEach(sorted, pool, func(kv record.Keyed[T]) error {
		return ow.Append(kv.Value)
	}); err != nil {
		ow.Close()
		return nil, err
	}
	if err := ow.Close(); err != nil {
		return nil, err
	}
	sorted.Release()
	return out, nil
}

// Auto picks the cheaper strategy per the Perm(N) bound: Naive when the
// estimated naive cost N·2 is below the estimated sort cost, BySorting
// otherwise.
func Auto[T any](f *stream.File[T], pool *pdm.Pool, perm []int64, opts *extsort.Options) (*stream.File[T], error) {
	n := f.Len()
	if n == 0 {
		return stream.NewFile[T](f.Vol(), f.Codec()), nil
	}
	naiveCost := 2 * n // read-modify-write per record, plus the scan's n/B
	sortCost := SortCostEstimate(n, int64(f.PerBlock()), int64(pool.Capacity()))
	if naiveCost < sortCost {
		return Naive(f, pool, perm)
	}
	return BySorting(f, pool, perm, opts)
}

// SortCostEstimate returns the textbook 2·(N/B)·(1+⌈log_m(N/M)⌉)-ish I/O
// estimate for externally sorting N records with B records per block and m
// memory frames. It is an estimate for strategy selection, not an exact
// count.
func SortCostEstimate(n, perBlock, frames int64) int64 {
	if n == 0 || perBlock <= 0 || frames <= 1 {
		return 0
	}
	blocks := (n + perBlock - 1) / perBlock
	memRecords := frames * perBlock
	runs := (n + memRecords - 1) / memRecords
	passes := int64(1) // run formation
	fanin := frames - 1
	if fanin < 2 {
		fanin = 2
	}
	for runs > 1 {
		runs = (runs + fanin - 1) / fanin
		passes++
	}
	return 2 * blocks * passes
}

// Identity returns the identity permutation on n elements.
func Identity(n int) []int64 {
	p := make([]int64, n)
	for i := range p {
		p[i] = int64(i)
	}
	return p
}

// Reverse returns the reversal permutation on n elements.
func Reverse(n int) []int64 {
	p := make([]int64, n)
	for i := range p {
		p[i] = int64(n - 1 - i)
	}
	return p
}

// BitReversal returns the bit-reversal permutation on n = 2^k elements, the
// access pattern at the heart of the FFT dataflow the survey discusses
// alongside permutation networks.
func BitReversal(n int) ([]int64, error) {
	if n <= 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("permute: bit reversal needs a power of two, got %d", n)
	}
	bits := 0
	for 1<<bits < n {
		bits++
	}
	p := make([]int64, n)
	for i := 0; i < n; i++ {
		rev := 0
		for b := 0; b < bits; b++ {
			if i&(1<<b) != 0 {
				rev |= 1 << (bits - 1 - b)
			}
		}
		p[i] = int64(rev)
	}
	return p, nil
}

// Transposition returns the permutation that maps row-major position
// i = r·cols+c of a rows×cols matrix to position c·rows+r, i.e. matrix
// transposition expressed as a permutation.
func Transposition(rows, cols int) []int64 {
	p := make([]int64, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			p[r*cols+c] = int64(c*rows + r)
		}
	}
	return p
}
