package permute

import (
	"math/rand"
	"testing"
	"testing/quick"

	"em/internal/pdm"
	"em/internal/record"
	"em/internal/stream"
)

func newEnv(t testing.TB) (*pdm.Volume, *pdm.Pool) {
	t.Helper()
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 64, MemBlocks: 8, Disks: 1})
	return vol, pdm.PoolFor(vol)
}

func inputFile(t testing.TB, vol *pdm.Volume, pool *pdm.Pool, n int) (*stream.File[record.Record], []record.Record) {
	t.Helper()
	in := make([]record.Record, n)
	for i := range in {
		in[i] = record.Record{Key: uint64(i), Val: uint64(i * 10)}
	}
	f, err := stream.FromSlice(vol, pool, record.RecordCodec{}, in)
	if err != nil {
		t.Fatal(err)
	}
	return f, in
}

func randomPerm(n int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	p := make([]int64, n)
	for i, v := range rng.Perm(n) {
		p[i] = int64(v)
	}
	return p
}

func checkPermuted(t *testing.T, name string, got, in []record.Record, perm []int64) {
	t.Helper()
	if len(got) != len(in) {
		t.Fatalf("%s: got %d records, want %d", name, len(got), len(in))
	}
	for i := range in {
		if got[perm[i]] != in[i] {
			t.Fatalf("%s: output[%d] = %+v, want input[%d] = %+v", name, perm[i], got[perm[i]], i, in[i])
		}
	}
}

func TestNaivePermute(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64, 200} {
		vol, pool := newEnv(t)
		f, in := inputFile(t, vol, pool, n)
		perm := randomPerm(n, int64(n))
		out, err := Naive(f, pool, perm)
		if err != nil {
			t.Fatal(err)
		}
		got, err := stream.ToSlice(out, pool)
		if err != nil {
			t.Fatal(err)
		}
		checkPermuted(t, "naive", got, in, perm)
		if pool.InUse() != 0 {
			t.Fatalf("leaked %d frames", pool.InUse())
		}
	}
}

func TestBySortingPermute(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64, 500} {
		vol, pool := newEnv(t)
		f, in := inputFile(t, vol, pool, n)
		perm := randomPerm(n, int64(n)+1)
		out, err := BySorting(f, pool, perm, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := stream.ToSlice(out, pool)
		if err != nil {
			t.Fatal(err)
		}
		checkPermuted(t, "sort-based", got, in, perm)
		if pool.InUse() != 0 {
			t.Fatalf("leaked %d frames", pool.InUse())
		}
	}
}

func TestAutoPermute(t *testing.T) {
	vol, pool := newEnv(t)
	f, in := inputFile(t, vol, pool, 300)
	perm := randomPerm(300, 5)
	out, err := Auto(f, pool, perm, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := stream.ToSlice(out, pool)
	if err != nil {
		t.Fatal(err)
	}
	checkPermuted(t, "auto", got, in, perm)
	// Empty input short-circuits.
	empty := stream.NewFile[record.Record](vol, record.RecordCodec{})
	eo, err := Auto(empty, pool, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if eo.Len() != 0 {
		t.Fatal("empty auto permute should be empty")
	}
}

func TestPermuteValidation(t *testing.T) {
	vol, pool := newEnv(t)
	f, _ := inputFile(t, vol, pool, 4)
	bad := [][]int64{
		{0, 1, 2},     // wrong length
		{0, 1, 2, 4},  // out of range
		{0, 1, 1, 3},  // duplicate
		{-1, 1, 2, 3}, // negative
	}
	for _, p := range bad {
		if _, err := Naive(f, pool, p); err == nil {
			t.Fatalf("perm %v should be rejected", p)
		}
		if _, err := BySorting(f, pool, p, nil); err == nil {
			t.Fatalf("perm %v should be rejected by sorting path", p)
		}
	}
}

func TestIdentityReverse(t *testing.T) {
	id := Identity(5)
	for i, v := range id {
		if v != int64(i) {
			t.Fatal("identity wrong")
		}
	}
	rev := Reverse(5)
	for i, v := range rev {
		if v != int64(4-i) {
			t.Fatal("reverse wrong")
		}
	}
}

func TestBitReversal(t *testing.T) {
	p, err := BitReversal(8)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 4, 2, 6, 1, 5, 3, 7}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("bit reversal = %v", p)
		}
	}
	// Involution: applying twice is the identity.
	for i := range p {
		if p[p[i]] != int64(i) {
			t.Fatal("bit reversal is not an involution")
		}
	}
	if _, err := BitReversal(6); err == nil {
		t.Fatal("non power of two should fail")
	}
	if _, err := BitReversal(0); err == nil {
		t.Fatal("zero should fail")
	}
}

func TestTranspositionPermutation(t *testing.T) {
	p := Transposition(2, 3)
	// Row-major 2x3: [a b c; d e f] -> column-major positions in 3x2.
	want := []int64{0, 2, 4, 1, 3, 5}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("transposition perm = %v, want %v", p, want)
		}
	}
}

func TestNaiveCostLinearInN(t *testing.T) {
	vol, pool := newEnv(t)
	n := 256
	f, _ := inputFile(t, vol, pool, n)
	perm := randomPerm(n, 1)
	vol.Stats().Reset()
	if _, err := Naive(f, pool, perm); err != nil {
		t.Fatal(err)
	}
	io := vol.Stats().Total()
	// Expect ≈ scan + 2 I/Os per record; certainly ≥ N.
	if io < uint64(n) {
		t.Fatalf("naive permute cost %d I/Os for n=%d — too low", io, n)
	}
	if io > uint64(4*n) {
		t.Fatalf("naive permute cost %d I/Os for n=%d — too high", io, n)
	}
}

func TestSortBasedBeatsNaiveAtScale(t *testing.T) {
	// The Perm(N) = min(N, Sort(N)) crossover requires a realistic block
	// size: with B = 64 records per block, Sort(N) ≈ 4·N/B ≪ N.
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 1024, MemBlocks: 16, Disks: 1})
	pool := pdm.PoolFor(vol)
	n := 2048
	f, _ := inputFile(t, vol, pool, n)
	perm := randomPerm(n, 2)
	vol.Stats().Reset()
	if _, err := Naive(f, pool, perm); err != nil {
		t.Fatal(err)
	}
	naiveIO := vol.Stats().Total()
	vol.Stats().Reset()
	if _, err := BySorting(f, pool, perm, nil); err != nil {
		t.Fatal(err)
	}
	sortIO := vol.Stats().Total()
	if sortIO >= naiveIO {
		t.Fatalf("sort-based (%d I/Os) should beat naive (%d I/Os) at n=%d", sortIO, naiveIO, n)
	}
}

// Property: both strategies compute the same result for arbitrary
// permutations.
func TestQuickStrategiesAgree(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		vol := pdm.MustVolume(pdm.Config{BlockBytes: 64, MemBlocks: 8, Disks: 1})
		pool := pdm.PoolFor(vol)
		in := make([]record.Record, n)
		for i := range in {
			in[i] = record.Record{Key: uint64(i), Val: uint64(seed)}
		}
		file, err := stream.FromSlice(vol, pool, record.RecordCodec{}, in)
		if err != nil {
			return false
		}
		perm := randomPerm(n, seed)
		a, err := Naive(file, pool, perm)
		if err != nil {
			return false
		}
		b, err := BySorting(file, pool, perm, nil)
		if err != nil {
			return false
		}
		ga, _ := stream.ToSlice(a, pool)
		gb, _ := stream.ToSlice(b, pool)
		if len(ga) != len(gb) {
			return false
		}
		for i := range ga {
			if ga[i] != gb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSortCostEstimate(t *testing.T) {
	if SortCostEstimate(0, 4, 8) != 0 {
		t.Fatal("empty estimate should be 0")
	}
	small := SortCostEstimate(100, 4, 8)
	big := SortCostEstimate(100000, 4, 8)
	if small <= 0 || big <= small {
		t.Fatalf("estimates not monotone: %d %d", small, big)
	}
}
