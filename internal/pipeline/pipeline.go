// Package pipeline composes the sort and index layers into the survey's
// write-optimal index construction: a distribution sort feeding a bottom-up
// B-tree bulk load, optionally overlapped so the loader consumes sorted
// output while later buckets still sort. The em facade re-exports SortIndex;
// the experiments package drives it directly.
package pipeline

import (
	"em/internal/btree"
	"em/internal/extsort"
	"em/internal/pdm"
	"em/internal/record"
	"em/internal/stream"
)

// Options tunes SortIndex; see em.SortIndexOptions for the full story.
type Options struct {
	// Width is the striping width for every stream of both stages; set it
	// to the volume's disk count D. Zero means 1.
	Width int
	// Async switches every stream to forecast-driven read-ahead and
	// write-behind (double buffers, same counted I/Os at equal fan-out).
	Async bool
	// WriteBehind batches the loader's leaf writes (see
	// btree.BulkLoadOptions).
	WriteBehind bool
	// CacheFrames sizes the tree's buffer manager; zero means 8.
	CacheFrames int
	// Pipeline overlaps the two stages through a bounded TailPipe.
	Pipeline bool
	// PipeDepth bounds how many block groups the sort may run ahead of the
	// loader in pipeline mode; zero means 4.
	PipeDepth int
}

func (o *Options) width() int {
	if o == nil || o.Width < 1 {
		return 1
	}
	return o.Width
}

func (o *Options) cacheFrames() int {
	if o == nil || o.CacheFrames < 1 {
		return 8
	}
	return o.CacheFrames
}

func (o *Options) pipeDepth() int {
	if o == nil || o.PipeDepth < 1 {
		return 4
	}
	return o.PipeDepth
}

// loaderFrames is the bulk loader's reserved frame budget: buffer manager
// plus the worst-case stream charge — an input double buffer and a leaf
// write-behind double buffer. The reservation is deliberately
// mode-independent (a synchronous loader leaves part of it idle) so that
// every mode combination at one width presents the sort with the same free
// pool and therefore the same fan-out, pass structure, and counted I/Os.
func (o *Options) loaderFrames() int {
	return o.cacheFrames() + 4*o.width()
}

func (o *Options) sortOptions() *extsort.Options {
	return &extsort.Options{Width: o.width(), Async: o != nil && o.Async}
}

func (o *Options) loadOptions() *btree.BulkLoadOptions {
	return &btree.BulkLoadOptions{
		Width:       o.width(),
		Async:       o != nil && o.Async,
		WriteBehind: o != nil && o.WriteBehind,
	}
}

// SortIndex builds a B+-tree over an unsorted record file: distribution
// sort into key order, then bottom-up bulk load — Θ(Sort(N)) I/Os end to
// end. See em.SortIndex for the mode semantics and invariants.
func SortIndex(f *stream.File[record.Record], pool *pdm.Pool, opts *Options) (*btree.Tree, error) {
	vol := f.Vol()
	// Reserve the loader's budget for the whole call, and run the loader on
	// a private pool of exactly that size: the sort then sees the same free
	// frames — and picks the same fan-out, pass structure, and therefore
	// I/O counts — whether the loader runs after it or beside it.
	reserve, err := pool.AllocN(opts.loaderFrames())
	if err != nil {
		return nil, err
	}
	defer pdm.ReleaseAll(reserve)
	loaderPool := pdm.NewPool(vol.BlockBytes(), opts.loaderFrames())

	var tr *btree.Tree
	if opts != nil && opts.Pipeline {
		tr, err = pipelined(f, pool, loaderPool, opts)
	} else {
		tr, err = sequential(f, pool, loaderPool, opts)
	}
	if err != nil {
		return nil, err
	}
	// The construction budget is about to be released; rehome the tree's
	// buffer manager onto the caller's pool.
	if err := tr.Rehome(pool, opts.cacheFrames()); err != nil {
		return nil, err
	}
	return tr, nil
}

// sequential sorts to completion, then loads.
func sequential(f *stream.File[record.Record], pool, loaderPool *pdm.Pool, opts *Options) (*btree.Tree, error) {
	sorted, err := extsort.DistributionSort(f, pool, record.Record.Less, opts.sortOptions())
	if err != nil {
		return nil, err
	}
	tr, err := btree.BulkLoad(f.Vol(), loaderPool, opts.cacheFrames(), sorted, opts.loadOptions())
	sorted.Release()
	return tr, err
}

// pipelined runs the sort on a background goroutine, streaming its durable
// output groups to the loader through a bounded TailPipe.
func pipelined(f *stream.File[record.Record], pool, loaderPool *pdm.Pool, opts *Options) (*btree.Tree, error) {
	vol := f.Vol()
	pipe := stream.NewTailPipe(opts.pipeDepth())
	src, err := stream.NewTailSource[record.Record](vol, f.Codec(), loaderPool, pipe, opts.width(), opts != nil && opts.Async)
	if err != nil {
		return nil, err
	}

	var sorted *stream.File[record.Record]
	var sortErr error
	sortDone := make(chan struct{})
	go func() {
		defer close(sortDone)
		sorted, sortErr = extsort.DistributionSortNotify(f, pool, record.Record.Less, opts.sortOptions(), pipe.Notify)
		pipe.CloseSend(sortErr)
	}()

	tr, loadErr := btree.BulkLoadFrom(vol, loaderPool, opts.cacheFrames(), src, opts.loadOptions())
	// Closing the source end unblocks a producer mid-Notify if the loader
	// bailed out early; then wait for the sort to finish unwinding before
	// touching its output. A failed sort hands its partial output file back
	// un-released (see DistributionSortNotify) precisely so that its blocks
	// cannot be reallocated under the loader mid-read; with both sides
	// detached it is safe to release here, on the error paths included.
	src.Close()
	<-sortDone
	if sorted != nil {
		sorted.Release()
	}
	if loadErr != nil {
		// A sort failure reaches the loader through the pipe, so loadErr
		// already carries the root cause.
		return nil, loadErr
	}
	if sortErr != nil {
		// The loader drained the pipe cleanly but the sort failed after its
		// last flush; the half-built index is not trustworthy.
		tr.Close()
		return nil, sortErr
	}
	return tr, nil
}
