// Package pqueue implements the survey's merge-based external priority
// queue: an in-memory insertion heap of Θ(M) records plus a collection of
// sorted runs on disk, merged lazily as minima are consumed. A workload of N
// inserts and N delete-mins costs Θ(Sort(N)) I/Os in total — amortised
// O((1/B)·log_m n) per operation — versus Θ(log_B N) per operation for a
// B-tree used as a priority queue (experiment T7).
package pqueue

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"em/internal/pdm"
	"em/internal/record"
	"em/internal/stream"
)

// ErrClosed reports use of a closed queue.
var ErrClosed = errors.New("pqueue: closed")

// recHeap is a binary min-heap of records ordered by Record.Less.
type recHeap []record.Record

func (h recHeap) Len() int            { return len(h) }
func (h recHeap) Less(i, j int) bool  { return h[i].Less(h[j]) }
func (h recHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *recHeap) Push(x interface{}) { *h = append(*h, x.(record.Record)) }
func (h *recHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// run is one sorted on-disk run with its open reader and buffered head.
type run struct {
	f    *stream.File[record.Record]
	r    *stream.Reader[record.Record]
	head record.Record
	ok   bool
}

// Queue is an external-memory priority queue of Records ordered by
// (Key, Val). Duplicates are permitted.
type Queue struct {
	vol     *pdm.Volume
	pool    *pdm.Pool
	reserve []*pdm.Frame // frames standing in for the in-memory heap's budget
	mem     recHeap
	memCap  int
	runs    []*run
	maxRuns int
	n       int64
	closed  bool
}

// New creates an empty queue. Half the pool's frames are reserved as the
// in-memory heap's budget; the rest serve run readers and spill writers.
func New(vol *pdm.Volume, pool *pdm.Pool) (*Queue, error) {
	per := vol.BlockBytes() / (record.RecordCodec{}).Size()
	if per < 1 {
		return nil, fmt.Errorf("pqueue: block of %d bytes holds no records", vol.BlockBytes())
	}
	half := pool.Free() / 2
	if half < 1 || pool.Free()-half < 3 {
		return nil, fmt.Errorf("pqueue: pool of %d free frames is too small", pool.Free())
	}
	reserve, err := pool.AllocN(half)
	if err != nil {
		return nil, err
	}
	maxRuns := pool.Free() - 2
	if maxRuns < 2 {
		// A compaction leaves one merged run and the next spill adds one, so
		// two concurrent runs is the irreducible minimum.
		maxRuns = 2
	}
	return &Queue{
		vol:     vol,
		pool:    pool,
		reserve: reserve,
		memCap:  half * per,
		maxRuns: maxRuns,
	}, nil
}

// Len returns the number of records in the queue.
func (q *Queue) Len() int64 { return q.n }

// Runs returns the current number of on-disk runs (for tests and
// instrumentation).
func (q *Queue) Runs() int { return len(q.runs) }

// Push inserts a record.
func (q *Queue) Push(key, val uint64) error {
	if q.closed {
		return ErrClosed
	}
	heap.Push(&q.mem, record.Record{Key: key, Val: val})
	q.n++
	if len(q.mem) >= q.memCap {
		return q.spill()
	}
	return nil
}

// spill writes the in-memory heap as one sorted run and empties it.
func (q *Queue) spill() error {
	if len(q.mem) == 0 {
		return nil
	}
	if len(q.runs) >= q.maxRuns {
		if err := q.compactRuns(); err != nil {
			return err
		}
	}
	buf := append([]record.Record(nil), q.mem...)
	sort.Slice(buf, func(i, j int) bool { return buf[i].Less(buf[j]) })
	f := stream.NewFile[record.Record](q.vol, record.RecordCodec{})
	w, err := stream.NewWriter(f, q.pool)
	if err != nil {
		return err
	}
	for _, r := range buf {
		if err := w.Append(r); err != nil {
			w.Close()
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	ru := &run{f: f}
	if err := q.openRun(ru); err != nil {
		return err
	}
	q.runs = append(q.runs, ru)
	q.mem = q.mem[:0]
	return nil
}

// openRun opens the run's reader and primes its head.
func (q *Queue) openRun(ru *run) error {
	r, err := stream.NewReader(ru.f, q.pool)
	if err != nil {
		return err
	}
	ru.r = r
	return q.advance(ru)
}

// advance loads the run's next head record.
func (q *Queue) advance(ru *run) error {
	v, ok, err := ru.r.Next()
	if err != nil {
		return err
	}
	ru.head, ru.ok = v, ok
	if !ok {
		ru.r.Close()
		ru.r = nil
		ru.f.Release()
	}
	return nil
}

// compactRuns k-way merges the unconsumed remainder of every run into a
// single fresh run, freeing reader frames. This bounds simultaneous runs by
// the memory budget, mirroring the survey's cascade of run merges.
func (q *Queue) compactRuns() error {
	live := q.liveRuns()
	if len(live) <= 1 {
		q.runs = live
		return nil
	}
	out := stream.NewFile[record.Record](q.vol, record.RecordCodec{})
	w, err := stream.NewWriter(out, q.pool)
	if err != nil {
		return err
	}
	// Merge by repeatedly taking the minimal head; the run count here is
	// bounded by maxRuns, so a simple linear scan per pop is acceptable for
	// the model (it costs CPU, not I/Os).
	for {
		best := -1
		for i, ru := range live {
			if !ru.ok {
				continue
			}
			if best < 0 || ru.head.Less(live[best].head) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		if err := w.Append(live[best].head); err != nil {
			w.Close()
			return err
		}
		if err := q.advance(live[best]); err != nil {
			w.Close()
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	merged := &run{f: out}
	if err := q.openRun(merged); err != nil {
		return err
	}
	if merged.ok {
		q.runs = []*run{merged}
	} else {
		q.runs = nil
	}
	return nil
}

// liveRuns filters out exhausted runs.
func (q *Queue) liveRuns() []*run {
	out := q.runs[:0]
	for _, ru := range q.runs {
		if ru.ok {
			out = append(out, ru)
		}
	}
	return out
}

// PopMin removes and returns the minimal record. ok is false when empty.
func (q *Queue) PopMin() (key, val uint64, ok bool, err error) {
	if q.closed {
		return 0, 0, false, ErrClosed
	}
	if q.n == 0 {
		return 0, 0, false, nil
	}
	// Find the minimum among the memory heap and all run heads.
	best := -1 // -1 = memory heap
	var bestRec record.Record
	have := false
	if len(q.mem) > 0 {
		bestRec, have = q.mem[0], true
	}
	for i, ru := range q.runs {
		if ru.ok && (!have || ru.head.Less(bestRec)) {
			bestRec, have, best = ru.head, true, i
		}
	}
	if !have {
		return 0, 0, false, fmt.Errorf("pqueue: internal accounting mismatch (n=%d but no records)", q.n)
	}
	if best < 0 {
		heap.Pop(&q.mem)
	} else if err := q.advance(q.runs[best]); err != nil {
		return 0, 0, false, err
	}
	q.n--
	if q.n%1024 == 0 {
		q.runs = q.liveRuns()
	}
	return bestRec.Key, bestRec.Val, true, nil
}

// Close releases all frames. The queue's remaining contents are discarded.
func (q *Queue) Close() error {
	if q.closed {
		return nil
	}
	q.closed = true
	for _, ru := range q.runs {
		if ru.r != nil {
			ru.r.Close()
			ru.f.Release()
		}
	}
	q.runs = nil
	pdm.ReleaseAll(q.reserve)
	q.reserve = nil
	return nil
}
