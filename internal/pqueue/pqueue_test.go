package pqueue

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"em/internal/pdm"
)

func newQueue(t testing.TB, memBlocks int) (*Queue, *pdm.Volume, *pdm.Pool) {
	t.Helper()
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 64, MemBlocks: memBlocks, Disks: 1})
	pool := pdm.PoolFor(vol)
	q, err := New(vol, pool)
	if err != nil {
		t.Fatal(err)
	}
	return q, vol, pool
}

func TestEmptyPop(t *testing.T) {
	q, _, _ := newQueue(t, 8)
	defer q.Close()
	_, _, ok, err := q.PopMin()
	if err != nil || ok {
		t.Fatalf("pop on empty: ok=%v err=%v", ok, err)
	}
}

func TestPushPopInMemoryOnly(t *testing.T) {
	q, vol, _ := newQueue(t, 16)
	defer q.Close()
	for _, k := range []uint64{5, 1, 9, 3} {
		if err := q.Push(k, k*10); err != nil {
			t.Fatal(err)
		}
	}
	if vol.Stats().Total() != 0 {
		t.Fatal("small pushes should stay in memory")
	}
	want := []uint64{1, 3, 5, 9}
	for _, w := range want {
		k, v, ok, err := q.PopMin()
		if err != nil || !ok {
			t.Fatal(err)
		}
		if k != w || v != w*10 {
			t.Fatalf("pop = %d,%d want %d,%d", k, v, w, w*10)
		}
	}
	if q.Len() != 0 {
		t.Fatal("not empty")
	}
}

func TestHeapsortLarge(t *testing.T) {
	q, _, pool := newQueue(t, 8)
	defer q.Close()
	rng := rand.New(rand.NewSource(1))
	n := 5000
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(rng.Intn(100000))
		if err := q.Push(keys[i], uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if q.Runs() == 0 {
		t.Fatal("expected spills to disk")
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for i := 0; i < n; i++ {
		k, _, ok, err := q.PopMin()
		if err != nil || !ok {
			t.Fatalf("pop %d: ok=%v err=%v", i, ok, err)
		}
		if k != keys[i] {
			t.Fatalf("pop %d = %d, want %d", i, k, keys[i])
		}
	}
	if _, _, ok, _ := q.PopMin(); ok {
		t.Fatal("queue should be empty")
	}
	q.Close()
	if pool.InUse() != 0 {
		t.Fatalf("leaked %d frames", pool.InUse())
	}
}

func TestInterleavedPushPop(t *testing.T) {
	q, _, _ := newQueue(t, 8)
	defer q.Close()
	rng := rand.New(rand.NewSource(2))
	var ref []uint64
	for i := 0; i < 8000; i++ {
		if rng.Intn(3) != 0 || len(ref) == 0 {
			k := uint64(rng.Intn(10000))
			q.Push(k, 0)
			ref = append(ref, k)
			sort.Slice(ref, func(a, b int) bool { return ref[a] < ref[b] })
		} else {
			k, _, ok, err := q.PopMin()
			if err != nil || !ok {
				t.Fatal(err)
			}
			if k != ref[0] {
				t.Fatalf("step %d: pop %d, want %d", i, k, ref[0])
			}
			ref = ref[1:]
		}
	}
	if q.Len() != int64(len(ref)) {
		t.Fatalf("len %d, want %d", q.Len(), len(ref))
	}
}

func TestRunCompaction(t *testing.T) {
	// A tiny pool forces frequent spills, which must trigger compaction
	// rather than exhausting reader frames.
	q, _, _ := newQueue(t, 6)
	defer q.Close()
	n := 4000
	rng := rand.New(rand.NewSource(3))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(rng.Intn(1 << 30))
		if err := q.Push(keys[i], 0); err != nil {
			t.Fatal(err)
		}
	}
	if q.Runs() > q.maxRuns {
		t.Fatalf("runs %d exceed budget %d", q.Runs(), q.maxRuns)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for i := 0; i < n; i++ {
		k, _, ok, err := q.PopMin()
		if err != nil || !ok || k != keys[i] {
			t.Fatalf("pop %d = %d,%v,%v want %d", i, k, ok, err, keys[i])
		}
	}
}

func TestDuplicateKeys(t *testing.T) {
	q, _, _ := newQueue(t, 8)
	defer q.Close()
	for i := 0; i < 300; i++ {
		q.Push(7, uint64(i))
	}
	seen := map[uint64]bool{}
	for i := 0; i < 300; i++ {
		k, v, ok, err := q.PopMin()
		if err != nil || !ok || k != 7 {
			t.Fatal("duplicate key lost")
		}
		if seen[v] {
			t.Fatalf("value %d popped twice", v)
		}
		seen[v] = true
	}
}

func TestClosedQueue(t *testing.T) {
	q, _, pool := newQueue(t, 8)
	q.Push(1, 1)
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil {
		t.Fatal("double close should be nil")
	}
	if err := q.Push(2, 2); err != ErrClosed {
		t.Fatalf("push after close: %v", err)
	}
	if _, _, _, err := q.PopMin(); err != ErrClosed {
		t.Fatalf("pop after close: %v", err)
	}
	if pool.InUse() != 0 {
		t.Fatalf("leaked %d frames", pool.InUse())
	}
}

func TestTinyPoolRejected(t *testing.T) {
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 64, MemBlocks: 3, Disks: 1})
	if _, err := New(vol, pdm.PoolFor(vol)); err == nil {
		t.Fatal("3-frame pool should be rejected")
	}
}

// Property: popping everything yields the multiset sorted, for arbitrary
// inputs.
func TestQuickHeapsort(t *testing.T) {
	f := func(keys []uint16) bool {
		if len(keys) > 2000 {
			keys = keys[:2000]
		}
		vol := pdm.MustVolume(pdm.Config{BlockBytes: 64, MemBlocks: 8, Disks: 1})
		pool := pdm.PoolFor(vol)
		q, err := New(vol, pool)
		if err != nil {
			return false
		}
		defer q.Close()
		for i, k := range keys {
			if err := q.Push(uint64(k), uint64(i)); err != nil {
				return false
			}
		}
		want := append([]uint16(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for _, w := range want {
			k, _, ok, err := q.PopMin()
			if err != nil || !ok || k != uint64(w) {
				return false
			}
		}
		_, _, ok, _ := q.PopMin()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
