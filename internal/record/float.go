package record

import "math"

// Thin wrappers so record.go reads uniformly; they compile to the intrinsic.

func mathFloat64bits(v float64) uint64     { return math.Float64bits(v) }
func mathFloat64frombits(b uint64) float64 { return math.Float64frombits(b) }
