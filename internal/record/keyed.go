package record

import "encoding/binary"

// Keyed attaches a uint64 sort key to an arbitrary payload. It is the
// standard trick behind sort-based permuting, time-forward processing, and
// distribution sweep: tag each item with the key it must travel under, sort,
// then strip the tag.
type Keyed[T any] struct {
	Key   uint64
	Value T
}

// KeyedCodec encodes Keyed[T] as an 8-byte key followed by the payload
// encoding.
type KeyedCodec[T any] struct {
	// C encodes the payload.
	C Codec[T]
}

// Size implements Codec.
func (k KeyedCodec[T]) Size() int { return 8 + k.C.Size() }

// Encode implements Codec.
func (k KeyedCodec[T]) Encode(b []byte, v Keyed[T]) {
	binary.LittleEndian.PutUint64(b[0:8], v.Key)
	k.C.Encode(b[8:], v.Value)
}

// Decode implements Codec.
func (k KeyedCodec[T]) Decode(b []byte) Keyed[T] {
	return Keyed[T]{
		Key:   binary.LittleEndian.Uint64(b[0:8]),
		Value: k.C.Decode(b[8:]),
	}
}
