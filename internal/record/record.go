// Package record defines the fixed-size record types and binary codecs used
// throughout the external-memory algorithm suite.
//
// The Parallel Disk Model measures everything in records, so every type
// stored on a pdm.Volume has a Codec that fixes its exact byte width. All
// encodings are little-endian and allocation-free; no reflection is used.
package record

import "encoding/binary"

// Codec converts values of type T to and from their fixed-width binary form.
// Size must be constant for all values, and Encode/Decode must be exact
// inverses.
type Codec[T any] interface {
	// Size returns the encoded width in bytes, constant for the codec.
	Size() int
	// Encode writes v into b[:Size()].
	Encode(b []byte, v T)
	// Decode reads a value from b[:Size()].
	Decode(b []byte) T
}

// Record is the workhorse 16-byte key/value record: a uint64 sort key and a
// uint64 payload (commonly a row id or a pointer).
type Record struct {
	Key uint64
	Val uint64
}

// Less orders records by key, breaking ties by value so that sorting is
// deterministic.
func (r Record) Less(o Record) bool {
	if r.Key != o.Key {
		return r.Key < o.Key
	}
	return r.Val < o.Val
}

// RecordCodec encodes Record in 16 bytes.
type RecordCodec struct{}

// Size implements Codec.
func (RecordCodec) Size() int { return 16 }

// Encode implements Codec.
func (RecordCodec) Encode(b []byte, r Record) {
	binary.LittleEndian.PutUint64(b[0:8], r.Key)
	binary.LittleEndian.PutUint64(b[8:16], r.Val)
}

// Decode implements Codec.
func (RecordCodec) Decode(b []byte) Record {
	return Record{
		Key: binary.LittleEndian.Uint64(b[0:8]),
		Val: binary.LittleEndian.Uint64(b[8:16]),
	}
}

// U64Codec encodes a bare uint64 in 8 bytes.
type U64Codec struct{}

// Size implements Codec.
func (U64Codec) Size() int { return 8 }

// Encode implements Codec.
func (U64Codec) Encode(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }

// Decode implements Codec.
func (U64Codec) Decode(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

// Pair is a generic two-field record of int64s, used by the graph and list
// algorithms for (node, pointer) and (src, dst) tuples.
type Pair struct {
	A int64
	B int64
}

// PairCodec encodes Pair in 16 bytes.
type PairCodec struct{}

// Size implements Codec.
func (PairCodec) Size() int { return 16 }

// Encode implements Codec.
func (PairCodec) Encode(b []byte, p Pair) {
	binary.LittleEndian.PutUint64(b[0:8], uint64(p.A))
	binary.LittleEndian.PutUint64(b[8:16], uint64(p.B))
}

// Decode implements Codec.
func (PairCodec) Decode(b []byte) Pair {
	return Pair{
		A: int64(binary.LittleEndian.Uint64(b[0:8])),
		B: int64(binary.LittleEndian.Uint64(b[8:16])),
	}
}

// Triple is a three-field record of int64s, used by list ranking ("node,
// successor, rank") and by graph edge lists carrying weights or labels.
type Triple struct {
	A int64
	B int64
	C int64
}

// TripleCodec encodes Triple in 24 bytes.
type TripleCodec struct{}

// Size implements Codec.
func (TripleCodec) Size() int { return 24 }

// Encode implements Codec.
func (TripleCodec) Encode(b []byte, t Triple) {
	binary.LittleEndian.PutUint64(b[0:8], uint64(t.A))
	binary.LittleEndian.PutUint64(b[8:16], uint64(t.B))
	binary.LittleEndian.PutUint64(b[16:24], uint64(t.C))
}

// Decode implements Codec.
func (TripleCodec) Decode(b []byte) Triple {
	return Triple{
		A: int64(binary.LittleEndian.Uint64(b[0:8])),
		B: int64(binary.LittleEndian.Uint64(b[8:16])),
		C: int64(binary.LittleEndian.Uint64(b[16:24])),
	}
}

// F64Codec encodes a float64 in 8 bytes, for geometric coordinates.
type F64Codec struct{}

// Size implements Codec.
func (F64Codec) Size() int { return 8 }

// Encode implements Codec.
func (F64Codec) Encode(b []byte, v float64) {
	binary.LittleEndian.PutUint64(b, mathFloat64bits(v))
}

// Decode implements Codec.
func (F64Codec) Decode(b []byte) float64 {
	return mathFloat64frombits(binary.LittleEndian.Uint64(b))
}
