package record

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRecordCodecRoundTrip(t *testing.T) {
	f := func(k, v uint64) bool {
		var c RecordCodec
		b := make([]byte, c.Size())
		c.Encode(b, Record{Key: k, Val: v})
		got := c.Decode(b)
		return got.Key == k && got.Val == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestU64CodecRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		var c U64Codec
		b := make([]byte, c.Size())
		c.Encode(b, v)
		return c.Decode(b) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPairCodecRoundTrip(t *testing.T) {
	f := func(a, b int64) bool {
		var c PairCodec
		buf := make([]byte, c.Size())
		c.Encode(buf, Pair{A: a, B: b})
		got := c.Decode(buf)
		return got.A == a && got.B == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTripleCodecRoundTrip(t *testing.T) {
	f := func(a, b, c int64) bool {
		var cd TripleCodec
		buf := make([]byte, cd.Size())
		cd.Encode(buf, Triple{A: a, B: b, C: c})
		got := cd.Decode(buf)
		return got.A == a && got.B == b && got.C == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestF64CodecRoundTrip(t *testing.T) {
	cases := []float64{0, 1, -1, math.Pi, math.Inf(1), math.Inf(-1), math.SmallestNonzeroFloat64, math.MaxFloat64}
	var c F64Codec
	b := make([]byte, c.Size())
	for _, v := range cases {
		c.Encode(b, v)
		if got := c.Decode(b); got != v {
			t.Fatalf("round trip %v -> %v", v, got)
		}
	}
	// NaN round-trips bit-exactly even though NaN != NaN.
	c.Encode(b, math.NaN())
	if !math.IsNaN(c.Decode(b)) {
		t.Fatal("NaN did not survive")
	}
}

func TestRecordLessTotalOrder(t *testing.T) {
	a := Record{Key: 1, Val: 5}
	b := Record{Key: 1, Val: 7}
	c := Record{Key: 2, Val: 0}
	if !a.Less(b) || b.Less(a) {
		t.Fatal("tie-break by value broken")
	}
	if !a.Less(c) || !b.Less(c) {
		t.Fatal("key ordering broken")
	}
	if a.Less(a) {
		t.Fatal("irreflexivity broken")
	}
}

func TestRecordLessTrichotomy(t *testing.T) {
	f := func(k1, v1, k2, v2 uint64) bool {
		a := Record{Key: k1, Val: v1}
		b := Record{Key: k2, Val: v2}
		less, greater := a.Less(b), b.Less(a)
		equal := a == b
		// Exactly one of less, greater, equal.
		n := 0
		if less {
			n++
		}
		if greater {
			n++
		}
		if equal {
			n++
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCodecSizesAreConstant(t *testing.T) {
	if (RecordCodec{}).Size() != 16 {
		t.Fatal("RecordCodec size")
	}
	if (U64Codec{}).Size() != 8 {
		t.Fatal("U64Codec size")
	}
	if (PairCodec{}).Size() != 16 {
		t.Fatal("PairCodec size")
	}
	if (TripleCodec{}).Size() != 24 {
		t.Fatal("TripleCodec size")
	}
	if (F64Codec{}).Size() != 8 {
		t.Fatal("F64Codec size")
	}
}
