package shard

import (
	"em/internal/index"
	"em/internal/record"
	"em/internal/stream"
)

// scanSeg is one shard's slice of a cross-shard scan. Tree scans open
// lazily (open is called when the scan reaches the shard); Store scans
// open eagerly at Scan time so every shard's snapshot is taken at the same
// moment, and park the scanner in src.
type scanSeg struct {
	shard int
	open  func() (index.Scanner, error)
	src   index.Scanner
}

// Scanner stitches per-shard scanners into one key-ordered stream. Range
// partitioning makes every key in shard i smaller than every key in shard
// i+1, so concatenation in shard order is the merge: no heap, no
// comparisons, each shard's scanner drained in turn with its own
// prefetched leaf reads in flight on its own disks. It implements
// stream.Source[record.Record].
type Scanner struct {
	segs   []scanSeg
	cur    int
	err    error
	closed bool
}

// Next returns the next record in the range, crossing shard boundaries
// transparently. A shard's error is wrapped with its index and sticks.
func (sc *Scanner) Next() (record.Record, bool, error) {
	var zero record.Record
	if sc.closed {
		return zero, false, stream.ErrClosed
	}
	if sc.err != nil {
		return zero, false, sc.err
	}
	for sc.cur < len(sc.segs) {
		sg := &sc.segs[sc.cur]
		if sg.src == nil {
			if sg.open == nil {
				sc.cur++
				continue
			}
			src, err := sg.open()
			sg.open = nil
			if err != nil {
				sc.err = wrapShard(sg.shard, err)
				return zero, false, sc.err
			}
			sg.src = src
		}
		r, ok, err := sg.src.Next()
		if err != nil {
			sc.err = wrapShard(sg.shard, err)
			return zero, false, sc.err
		}
		if ok {
			return r, true, nil
		}
		sg.src.Close()
		sg.src = nil
		sc.cur++
	}
	return zero, false, nil
}

// Close releases every still-open per-shard scanner (and, for eager Store
// scans, their generation pins and session budgets). Idempotent.
func (sc *Scanner) Close() {
	if sc.closed {
		return
	}
	sc.closed = true
	for i := range sc.segs {
		if sc.segs[i].src != nil {
			sc.segs[i].src.Close()
			sc.segs[i].src = nil
		}
		sc.segs[i].open = nil
	}
}
