package shard

import (
	"em/internal/index"
)

// Session composes per-shard read sessions behind the index.Session
// surface: point lookups route to the owning shard's session, batches fan
// out concurrently across them. Each underlying session carries its own
// reserved cache budget on its own shard's pool, so S sessions' worth of
// frames back one composed handle. Safe for one goroutine at a time, like
// the sessions it wraps — the fan-out below touches each shard's session
// from exactly one goroutine per call.
type Session struct {
	splits []uint64
	sess   []index.Session
	closed bool
}

// newSession opens one session per shard, unwinding the ones already open
// when a shard fails — typically a starved pool, reported with the shard's
// index wrapped around pdm.ErrNoFrames.
func newSession(splits []uint64, shards int, open func(i int) (index.Session, error)) (*Session, error) {
	ss := make([]index.Session, shards)
	for i := 0; i < shards; i++ {
		s, err := open(i)
		if err != nil {
			for j := 0; j < i; j++ {
				ss[j].Close()
			}
			return nil, wrapShard(i, err)
		}
		ss[i] = s
	}
	return &Session{splits: append([]uint64(nil), splits...), sess: ss}, nil
}

// Get routes a point lookup to the owning shard's session.
func (s *Session) Get(key uint64) (uint64, bool, error) {
	if s.closed {
		return 0, false, ErrClosed
	}
	sh := ownerOf(s.splits, key)
	v, ok, err := s.sess[sh].Get(key)
	if err != nil {
		return 0, false, wrapShard(sh, err)
	}
	return v, ok, nil
}

// GetBatch cuts the sorted batch view at the partition boundaries and
// fans the sub-batches out concurrently across the per-shard sessions.
func (s *Session) GetBatch(keys []uint64) ([]uint64, []bool, error) {
	if s.closed {
		return nil, nil, ErrClosed
	}
	return fanOutBatch(s.splits, keys, func(sh int, sub []uint64) ([]uint64, []bool, error) {
		return s.sess[sh].GetBatch(sub)
	})
}

// Close releases every per-shard session and its reserved frames,
// reporting the first failure with its shard index but closing the rest
// regardless. Idempotent.
func (s *Session) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for i, sub := range s.sess {
		if err := sub.Close(); err != nil && first == nil {
			first = wrapShard(i, err)
		}
	}
	return first
}
